/**
 * @file
 * Telemetry overhead gate: the unified metrics/tracing subsystem must
 * cost <= 2% of throughput when enabled and nothing when disabled, on
 * the two instrumented serving paths — the dynamic-batching router
 * (bench_hot_path's compute behind the router.* spans and counters)
 * and the pipelined shard scatter/gather loop (bench_shard's smoke
 * shape behind the shard.* and wire.* instrumentation).
 *
 * Two measurements per workload:
 *
 *   - A/B throughput with telemetry off / metrics on / metrics+tracing
 *     on, interleaved best-of-N. Reported for the record, but NOT
 *     gated: on a 1-hardware-thread container the run-to-run noise of
 *     a millisecond-scale step dwarfs a 2% budget (the deltas here
 *     routinely come out negative).
 *   - The gated estimator: per-event micro-costs (counter add,
 *     histogram record, trace-span begin/end pair — tight loops,
 *     best-of-3) times the workload's measured instrumentation rate
 *     (metric ops and trace events per step, counted from registry
 *     deltas and the exported trace). Cost-per-step over step-time
 *     gives the implied overhead; it is noise-free at the 0.01% level
 *     and is what the <= 2% gate enforces.
 *
 * The traced router run also exports TRACE_obs.json (Chrome trace-
 * event format, loadable in Perfetto) so the span wiring is exercised
 * end to end. Results land in BENCH_obs.json. The gate is enforced
 * only in full mode: `--smoke` (the sanitizer CI configuration) runs
 * everything and writes the JSON, but sanitizer instrumentation
 * inflates the micro-costs past any honest budget, so the smoke run
 * reports without failing.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/bench_env.h"
#include "common/random.h"
#include "obs/obs.h"
#include "serve/router.h"
#include "shard/local_cluster.h"
#include "workload/arrival.h"

namespace hima {
namespace {

/** Telemetry states the A/B comparison runs under. */
enum class Mode
{
    Off,
    Metrics,
    Traced,
};

void
applyMode(Mode m)
{
    obs::setMetricsEnabled(m != Mode::Off);
    obs::setTracingEnabled(m == Mode::Traced);
}

/** Small serve config: enough lanes to exercise every router phase. */
DncConfig
routerConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 64;
    cfg.memoryWidth = 32;
    cfg.readHeads = 2;
    cfg.batchSize = 4;
    cfg.numThreads = 1; // single-threaded: timing, not scaling
    return cfg;
}

/**
 * Router serving loop at a fixed sub-capacity offered load: one
 * 5-step request every 2 engine steps onto 4 lanes, so the queue
 * stays bounded and every step runs the full evict/bind/engine/
 * harvest phase chain the spans instrument. `steps`, when non-null,
 * runs exactly that many steps instead of the timed loop (the
 * event-rate counting pass).
 */
double
routerRate(Mode mode, double minSeconds, const long *steps = nullptr)
{
    applyMode(mode);
    const DncConfig cfg = routerConfig();
    Router router(cfg, 1, greedyAdmission());

    // A fixed pool of request scripts, resubmitted round-robin.
    ArrivalSpec spec;
    spec.rate = 0.5;
    Rng rng(4242);
    const auto trace = makeArrivalTrace(spec, 64, rng);
    std::vector<std::vector<Vector>> scripts;
    for (const ArrivalEvent &event : trace)
        scripts.push_back(requestTokens(event, cfg.inputSize, 5));

    Index nextId = 0;
    const auto stepFn = [&] {
        if (router.now() % 2 == 0 && router.queuedRequests() < 8) {
            ServeRequest request;
            request.id = nextId;
            request.tokens = scripts[nextId % scripts.size()];
            router.submit(std::move(request));
            ++nextId;
        }
        router.step();
    };
    double rate = 0.0;
    if (steps) {
        for (long i = 0; i < *steps; ++i)
            stepFn();
    } else {
        rate = benchStepsPerSecond(stepFn, minSeconds);
    }
    router.drain();
    return rate;
}

/** Randomized but valid interface traffic (bench_shard's generator). */
InterfaceVector
randomIface(const DncConfig &cfg, Rng &rng)
{
    InterfaceVector iface;
    for (Index h = 0; h < cfg.readHeads; ++h)
        iface.readKeys.push_back(rng.normalVector(cfg.memoryWidth));
    iface.readStrengths.assign(cfg.readHeads, 1.0 + rng.uniform(0.0, 8.0));
    iface.writeKey = rng.normalVector(cfg.memoryWidth);
    iface.writeStrength = 1.0 + rng.uniform(0.0, 8.0);
    iface.eraseVector = rng.uniformVector(cfg.memoryWidth, 0.05, 0.95);
    iface.writeVector = rng.normalVector(cfg.memoryWidth);
    iface.freeGates.assign(cfg.readHeads, rng.uniform(0.0, 0.4));
    iface.allocationGate = rng.uniform();
    iface.writeGate = rng.uniform(0.2, 1.0);
    const Real b = rng.uniform(0.0, 1.0);
    const Real c = rng.uniform(0.0, 1.0 - b);
    iface.readModes.assign(cfg.readHeads, ReadMode{b, c, 1.0 - b - c});
    return iface;
}

/**
 * Pipelined shard scatter/gather over loopback: bench_shard's smoke
 * shape (2 workers x 2 tiles, 4 lanes in one batch) without socket
 * threads, so the measured path is scatter/encode/gather/merge with
 * its shard.* and wire.* instrumentation.
 */
double
shardRate(Mode mode, double minSeconds, const long *steps = nullptr)
{
    applyMode(mode);
    DncConfig cfg;
    cfg.memoryRows = 128; // 64 rows per tile: keeps N > W per shard
    cfg.memoryWidth = 32;
    cfg.readHeads = 2;
    const Index tiles = 2;
    const Index lanes = 4;
    LocalLaneCluster cluster =
        makeLocalLaneCluster(ClusterTransport::Loopback, cfg, tiles, lanes,
                             /*workerCount=*/2);

    Rng rng(7);
    std::vector<InterfaceVector> ifaces;
    std::vector<Index> batch;
    std::vector<const InterfaceVector *> ifacePtrs;
    std::vector<MemoryReadout> outs(lanes);
    std::vector<MemoryReadout *> outPtrs;
    for (Index lane = 0; lane < lanes; ++lane) {
        ifaces.push_back(randomIface(cfg, rng));
        batch.push_back(lane);
        outPtrs.push_back(&outs[lane]);
    }
    for (Index lane = 0; lane < lanes; ++lane)
        ifacePtrs.push_back(&ifaces[lane]);

    const auto stepFn = [&] {
        cluster.group->scatter(batch, ifacePtrs);
        cluster.group->gather(outPtrs);
    };
    if (steps) {
        for (long i = 0; i < *steps; ++i)
            stepFn();
        return 0.0;
    }
    return benchStepsPerSecond(stepFn, minSeconds);
}

// --------------------------------------------------------------------
// Per-event micro-costs (the gated estimator's price list).
// --------------------------------------------------------------------

template <typename Fn>
double
nanosPerOp(long iters, Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    const auto start = Clock::now();
    for (long i = 0; i < iters; ++i)
        fn(i);
    return std::chrono::duration<double, std::nano>(Clock::now() - start)
               .count() /
           static_cast<double>(iters);
}

/** Best (minimum) of `rounds` — the uninterrupted run. */
template <typename Fn>
double
bestNanosPerOp(long iters, int rounds, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < rounds; ++r) {
        const double ns = nanosPerOp(iters, fn);
        best = r == 0 ? ns : std::min(best, ns);
    }
    return best;
}

struct MicroCosts
{
    double disabledAddNs;  ///< counter add with metrics off
    double counterAddNs;   ///< counter add with metrics on
    double histRecordNs;   ///< histogram record with metrics on
    double spanPairNs;     ///< TraceSpan begin+end with tracing on
};

MicroCosts
measureMicroCosts(long iters, int rounds)
{
    MicroCosts costs{};
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &counter = reg.counter("bench_obs.micro.counter");
    obs::Histogram &hist = reg.histogram("bench_obs.micro.hist");

    applyMode(Mode::Off);
    costs.disabledAddNs =
        bestNanosPerOp(iters, rounds, [&](long) { counter.add(); });

    applyMode(Mode::Metrics);
    costs.counterAddNs =
        bestNanosPerOp(iters, rounds, [&](long) { counter.add(); });
    costs.histRecordNs = bestNanosPerOp(iters, rounds, [&](long i) {
        hist.record(static_cast<std::uint64_t>(i));
    });

    applyMode(Mode::Traced);
    costs.spanPairNs = bestNanosPerOp(iters / 4, rounds, [&](long i) {
        obs::TraceSpan span("bench_obs.micro.span",
                            static_cast<std::uint64_t>(i));
    });

    applyMode(Mode::Off);
    return costs;
}

// --------------------------------------------------------------------
// Instrumentation event rates per workload step.
// --------------------------------------------------------------------

/** Counter increments + histogram records in a snapshot (sum view). */
void
sumOps(const obs::Snapshot &snap, double *counterSum, double *histCount)
{
    *counterSum = 0.0;
    *histCount = 0.0;
    for (const obs::SnapshotEntry &e : snap.entries) {
        if (e.kind == obs::MetricKind::Counter)
            *counterSum += static_cast<double>(e.counter);
        else if (e.kind == obs::MetricKind::Histogram)
            *histCount += static_cast<double>(e.hist.count);
    }
}

struct EventRates
{
    double counterAddsPerStep; ///< upper bound: sum of count deltas
    double histRecordsPerStep;
    double gaugeSetsPerStep; ///< fixed allowance (sets are untallied)
    double traceEventsPerStep;
};

/**
 * Run `workload` for `steps` steps with metrics+tracing on and count
 * what it emits: registry counter/histogram deltas (counter deltas
 * over-count call sites that add >1 per call — an upper bound, which
 * is the conservative direction for an overhead gate) and the trace
 * events recovered from a fresh export.
 */
template <typename WorkloadFn>
EventRates
measureEventRates(WorkloadFn &&workload, long steps)
{
    applyMode(Mode::Traced);
    obs::Snapshot before, after;
    obs::processSnapshot(before);
    obs::traceReset();
    workload(steps);
    obs::processSnapshot(after);
    std::string traceJson;
    obs::traceExportJson(traceJson);
    applyMode(Mode::Off);

    double counterBefore = 0.0, histBefore = 0.0;
    double counterAfter = 0.0, histAfter = 0.0;
    sumOps(before, &counterBefore, &histBefore);
    sumOps(after, &counterAfter, &histAfter);

    double traceEvents = 0.0;
    for (std::size_t pos = traceJson.find("\"ph\":");
         pos != std::string::npos;
         pos = traceJson.find("\"ph\":", pos + 1))
        traceEvents += 1.0;

    EventRates rates{};
    const double n = static_cast<double>(steps);
    rates.counterAddsPerStep = (counterAfter - counterBefore) / n;
    rates.histRecordsPerStep = (histAfter - histBefore) / n;
    rates.gaugeSetsPerStep = 4.0; // generous flat allowance
    rates.traceEventsPerStep = traceEvents / n;
    return rates;
}

struct WorkloadRow
{
    const char *name;
    double rate[3] = {0.0, 0.0, 0.0}; ///< A/B best-of, indexed by Mode
    EventRates events{};
    double impliedMetricsPct = 0.0;
    double impliedTracedPct = 0.0;

    double
    measuredOverheadPct(Mode m) const
    {
        return rate[0] <= 0.0
                   ? 0.0
                   : (1.0 - rate[static_cast<int>(m)] / rate[0]) * 100.0;
    }
};

/** The gated quantity: implied cost per step over the off step-time. */
void
computeImplied(WorkloadRow &row, const MicroCosts &costs)
{
    if (row.rate[0] <= 0.0)
        return;
    const double stepNanos = 1e9 / row.rate[0];
    const double metricNanos =
        row.events.counterAddsPerStep * costs.counterAddNs +
        row.events.histRecordsPerStep * costs.histRecordNs +
        row.events.gaugeSetsPerStep * costs.counterAddNs;
    const double traceNanos =
        row.events.traceEventsPerStep * costs.spanPairNs / 2.0;
    row.impliedMetricsPct = metricNanos / stepNanos * 100.0;
    row.impliedTracedPct = (metricNanos + traceNanos) / stepNanos * 100.0;
}

} // namespace
} // namespace hima

int
main(int argc, char **argv)
{
    using namespace hima;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    // Generous rings so the event-rate pass keeps every span (set
    // before the first emission creates the per-thread rings).
    obs::setTraceCapacity(1u << 15);

    const double minSeconds = smoke ? 0.05 : 0.3;
    const int reps = smoke ? 1 : 3;
    const long microIters = smoke ? 20000 : 400000;
    const long rateSteps = smoke ? 32 : 128;
    constexpr double kMaxOverheadPct = 2.0;
    const Mode modes[] = {Mode::Off, Mode::Metrics, Mode::Traced};

    WorkloadRow rows[2] = {{"router_serve"}, {"shard_pipeline"}};

    // A/B throughput, interleaved best-of-N (reported, not gated).
    for (int rep = 0; rep < reps; ++rep) {
        for (Mode mode : modes) {
            const int m = static_cast<int>(mode);
            rows[0].rate[m] =
                std::max(rows[0].rate[m], routerRate(mode, minSeconds));
            rows[1].rate[m] =
                std::max(rows[1].rate[m], shardRate(mode, minSeconds));
        }
    }

    // Per-event costs and per-step event rates -> implied overhead.
    const MicroCosts costs = measureMicroCosts(microIters, 3);
    std::printf("micro-costs: disabled add %.1f ns, counter add %.1f ns, "
                "histogram record %.1f ns, span pair %.1f ns\n",
                costs.disabledAddNs, costs.counterAddNs,
                costs.histRecordNs, costs.spanPairNs);

    // Router last: each pass resets the rings, and the export below
    // should hold the router's phase spans.
    rows[1].events = measureEventRates(
        [&](long steps) { shardRate(Mode::Traced, 0.0, &steps); },
        rateSteps);
    rows[0].events = measureEventRates(
        [&](long steps) { routerRate(Mode::Traced, 0.0, &steps); },
        rateSteps);

    for (WorkloadRow &row : rows) {
        computeImplied(row, costs);
        std::printf("%-14s  off %10.1f steps/s   metrics %10.1f "
                    "(measured %+.2f%%)   traced %10.1f "
                    "(measured %+.2f%%)\n",
                    row.name, row.rate[0], row.rate[1],
                    row.measuredOverheadPct(Mode::Metrics), row.rate[2],
                    row.measuredOverheadPct(Mode::Traced));
        std::printf("%-14s  %.1f metric ops + %.1f trace events per step "
                    "-> implied overhead: metrics %.4f%%, traced %.4f%%\n",
                    row.name,
                    row.events.counterAddsPerStep +
                        row.events.histRecordsPerStep +
                        row.events.gaugeSetsPerStep,
                    row.events.traceEventsPerStep, row.impliedMetricsPct,
                    row.impliedTracedPct);
    }

    // Export the traced router run's spans as Chrome trace-event JSON
    // (the rings still hold the event-rate pass's spans).
    const bool traceWritten = obs::traceWriteFile("TRACE_obs.json");
    std::printf("trace export: TRACE_obs.json %s\n",
                traceWritten ? "written" : "FAILED");

    bool pass = traceWritten;
    for (const WorkloadRow &row : rows) {
        if (row.impliedMetricsPct > kMaxOverheadPct ||
            row.impliedTracedPct > kMaxOverheadPct)
            pass = false;
    }

    FILE *json = std::fopen("BENCH_obs.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot open BENCH_obs.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    writeBenchContext(json);
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json,
                 "  \"micro_costs_ns\": {\"disabled_add\": %.2f, "
                 "\"counter_add\": %.2f, \"histogram_record\": %.2f, "
                 "\"span_pair\": %.2f},\n",
                 costs.disabledAddNs, costs.counterAddNs,
                 costs.histRecordNs, costs.spanPairNs);
    std::fprintf(json, "  \"workloads\": [\n");
    for (std::size_t i = 0; i < 2; ++i) {
        const WorkloadRow &row = rows[i];
        std::fprintf(json,
                     "    {\"name\": \"%s\", "
                     "\"off_steps_per_sec\": %.2f, "
                     "\"metrics_steps_per_sec\": %.2f, "
                     "\"traced_steps_per_sec\": %.2f, "
                     "\"measured_metrics_overhead_pct\": %.3f, "
                     "\"measured_traced_overhead_pct\": %.3f, "
                     "\"metric_ops_per_step\": %.2f, "
                     "\"trace_events_per_step\": %.2f, "
                     "\"implied_metrics_overhead_pct\": %.4f, "
                     "\"implied_traced_overhead_pct\": %.4f}%s\n",
                     row.name, row.rate[0], row.rate[1], row.rate[2],
                     row.measuredOverheadPct(Mode::Metrics),
                     row.measuredOverheadPct(Mode::Traced),
                     row.events.counterAddsPerStep +
                         row.events.histRecordsPerStep +
                         row.events.gaugeSetsPerStep,
                     row.events.traceEventsPerStep,
                     row.impliedMetricsPct, row.impliedTracedPct,
                     i == 0 ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"gate\": {\"max_overhead_pct\": %.1f, "
                 "\"enforced\": %s, \"pass\": %s},\n",
                 kMaxOverheadPct, smoke ? "false" : "true",
                 pass ? "true" : "false");
    obs::Snapshot snap;
    obs::processSnapshot(snap);
    std::fprintf(json, "  \"telemetry\": ");
    writeTelemetrySnapshot(json, snap);
    std::fprintf(json, "\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_obs.json (gate %s%s)\n",
                pass ? "pass" : "FAIL",
                smoke ? ", advisory under --smoke" : "");

    // Leave the process at the library defaults (metrics on).
    obs::setMetricsEnabled(true);
    obs::setTracingEnabled(false);

    if (!smoke && !pass) {
        std::fprintf(stderr,
                     "FATAL: implied telemetry overhead exceeded %.1f%% "
                     "(or the trace export failed) — see BENCH_obs.json\n",
                     kMaxOverheadPct);
        return 1;
    }
    return 0;
}
