/**
 * @file
 * Regenerates Fig. 12:
 *   (a) area and power scalability of HiMA-DNC and HiMA-DNC-D over
 *       Nt in {4, 8, 16, 32};
 *   (b)-(d) speed, area, power and the derived area/energy efficiencies
 *       of HiMA (Nt = 16) against Farm, MANNA, GPU and CPU.
 *
 * HiMA numbers are measured from the engine; Farm/MANNA/GPU/CPU are the
 * published anchors reconstructed in arch/baselines.h (see DESIGN.md).
 * Area is normalized to 40 nm by quadratic feature-size scaling, and
 * speedups are normalized to the GPU exactly as in the paper.
 */

#include <iostream>

#include "arch/baselines.h"
#include "common/table.h"

namespace hima {
namespace {

void
panelA()
{
    std::cout << "Fig. 12(a): area and power scalability (normalized to "
                 "Nt = 4)\n";
    Table table({"Nt", "DNC area", "DNC power", "DNC-D area",
                 "DNC-D power"});
    Real baseArea[2] = {0.0, 0.0};
    Real basePower[2] = {0.0, 0.0};
    for (Index nt : {4, 8, 16, 32}) {
        HimaEngine dnc(himaDncConfig(nt));
        HimaEngine dncd(himaDncDConfig(nt));
        const Real area[2] = {dnc.area().totalMm2, dncd.area().totalMm2};
        const Real power[2] = {dnc.power().totalW, dncd.power().totalW};
        if (baseArea[0] == 0.0) {
            baseArea[0] = area[0];
            baseArea[1] = area[1];
            basePower[0] = power[0];
            basePower[1] = power[1];
        }
        table.addRow({std::to_string(nt),
                      fmtRatio(area[0] / baseArea[0]),
                      fmtRatio(power[0] / basePower[0]),
                      fmtRatio(area[1] / baseArea[1]),
                      fmtRatio(power[1] / basePower[1])});
    }
    table.print(std::cout);
    std::cout << "(paper: DNC power grows super-linearly with Nt; DNC-D "
                 "stays near linear)\n";
}

void
panelBcd()
{
    std::cout << "\nFig. 12(b)-(d): comparison with state-of-the-art "
                 "(Nt = 16; speed normalized to GPU, area/power to "
                 "Farm, 40 nm-equivalent)\n";

    HimaEngine baseEngine(himaBaselineConfig(16));
    HimaEngine dncEngine(himaDncConfig(16));
    ArchConfig dncdCfg = himaDncDConfig(16);
    dncdCfg.dnc.skimRate = 0.2;
    dncdCfg.dnc.approximateSoftmax = true;
    HimaEngine dncdEngine(dncdCfg);

    std::vector<PlatformRecord> records = {
        cpuRecord(),
        gpuRecord(),
        farmRecord(),
        mannaRecord(),
        himaRecord("HiMA-baseline", baseEngine),
        himaRecord("HiMA-DNC", dncEngine),
        himaRecord("HiMA-DNC-D", dncdEngine),
    };

    const PlatformRecord &gpu = records[1];
    const PlatformRecord &farm = records[2];

    Table table({"Design", "us/test", "Speed vs GPU", "Area (norm)",
                 "Power (norm)", "Area eff", "Energy eff", "Max N"});
    for (const PlatformRecord &rec : records) {
        const Real speed = gpu.inferenceUsPerTest / rec.inferenceUsPerTest;
        std::string areaStr = "-", powerStr = "-", areaEff = "-",
                    energyEff = "-";
        if (rec.areaMm2 > 0.0) {
            const Real area = normalizedArea(rec, 40.0) / farm.areaMm2;
            const Real power = rec.powerW / farm.powerW;
            areaStr = fmtRatio(area);
            powerStr = fmtRatio(power);
            // Efficiency = throughput / resource, normalized to Farm.
            const Real farmThroughput = 1.0 / farm.inferenceUsPerTest;
            const Real throughput = 1.0 / rec.inferenceUsPerTest;
            areaEff = fmtRatio((throughput / normalizedArea(rec, 40.0)) /
                               (farmThroughput / farm.areaMm2));
            energyEff = fmtRatio((throughput / rec.powerW) /
                                 (farmThroughput / farm.powerW));
        }
        table.addRow({rec.name, fmtReal(rec.inferenceUsPerTest, 1),
                      fmtRatio(speed, 1), areaStr, powerStr, areaEff,
                      energyEff,
                      rec.memoryRows ? std::to_string(rec.memoryRows)
                                     : "-"});
    }
    table.print(std::cout);

    // The paper's headline ratios against MANNA.
    const PlatformRecord &manna = records[3];
    const PlatformRecord &himaDnc = records[5];
    const PlatformRecord &himaDncd = records[6];
    auto ratios = [&](const PlatformRecord &h) {
        const Real speed = manna.inferenceUsPerTest / h.inferenceUsPerTest;
        const Real areaEff = speed * normalizedArea(manna, 40.0) /
                             normalizedArea(h, 40.0);
        const Real energyEff = speed * manna.powerW / h.powerW;
        std::cout << "  " << h.name << " vs MANNA: speed "
                  << fmtRatio(speed) << ", area eff " << fmtRatio(areaEff)
                  << ", energy eff " << fmtRatio(energyEff) << "\n";
    };
    std::cout << "\nHeadline ratios (paper: HiMA-DNC 6.47x/22.8x/6.1x, "
                 "HiMA-DNC-D 39.1x/164.3x/61.2x):\n";
    ratios(himaDnc);
    ratios(himaDncd);
    std::cout << "Speedup vs GPU (paper: up to 437x DNC, 2646x DNC-D): "
              << fmtRatio(gpu.inferenceUsPerTest /
                          himaDnc.inferenceUsPerTest, 0)
              << " and "
              << fmtRatio(gpu.inferenceUsPerTest /
                          himaDncd.inferenceUsPerTest, 0)
              << "\n";
}

} // namespace
} // namespace hima

int
main()
{
    hima::panelA();
    hima::panelBcd();
    return 0;
}
