/**
 * @file
 * Dynamic-batching router benchmark: request latency percentiles and
 * per-lane throughput vs offered load.
 *
 * An open-loop Poisson arrival process (episodes drawn from the 20-task
 * suite) is replayed through the Router at several utilization levels of
 * the lane pool, and for each level the bench records end-to-end request
 * latency (p50/p95/p99, in router steps and milliseconds), queueing
 * delay, mean lane occupancy, and throughput (requests/s and
 * lane-steps/s). Results accumulate in BENCH_router.json (CI artifact),
 * alongside BENCH_hot_path.json and BENCH_batched.json.
 *
 * Before timing anything the harness serves a small trace and checks
 * every completed request bit-for-bit against a dedicated sequential
 * Dnc run — the same refusal gate the other benches use: never
 * benchmark unequal computations. `--smoke` runs the gate plus one tiny
 * load point (the ASan/UBSan CI configuration, where full horizons
 * would be needlessly slow).
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_env.h"
#include "common/stats.h"
#include "dnc/dnc.h"
#include "obs/obs.h"
#include "serve/router.h"
#include "workload/arrival.h"

namespace hima {
namespace {

constexpr std::uint64_t kWeightSeed = 1;
constexpr std::uint64_t kTokenSeed = 77;

DncConfig
serveConfig()
{
    // Paper-like word width and head count; N reduced so the saturated
    // load points stay laptop-friendly at capacity-16 lane pools.
    DncConfig cfg;
    cfg.memoryRows = 128;
    cfg.memoryWidth = 64;
    cfg.readHeads = 4;
    cfg.controllerSize = 128;
    cfg.inputSize = 64;
    cfg.outputSize = 64;
    cfg.batchSize = 16;
    cfg.routerQueueCapacity = 4096; // open loop: observe queueing, don't drop
    return cfg;
}

/** Mean service demand of the task suite, in engine steps. */
double
meanEpisodeSteps()
{
    const auto suite = taskSuite();
    double total = 0.0;
    for (const TaskSpec &spec : suite)
        total += static_cast<double>(episodeSteps(spec));
    return total / static_cast<double>(suite.size());
}

/**
 * Serve one trace through a fresh router, submitting each arrival at
 * its step boundary and draining at the end.
 *
 * @return wall-clock seconds of the serve loop
 */
double
serveTrace(Router &router, const std::vector<ArrivalEvent> &trace,
           Index inputSize, Index *laneStepsOut)
{
    using Clock = std::chrono::steady_clock;
    Index laneSteps = 0;
    std::size_t next = 0;
    const auto start = Clock::now();
    while (next < trace.size() || !router.idle()) {
        while (next < trace.size() && trace[next].step <= router.now()) {
            ServeRequest request;
            request.id = trace[next].ordinal;
            request.tokens =
                requestTokens(trace[next], inputSize, kTokenSeed);
            router.submit(std::move(request));
            ++next;
        }
        router.step();
        // Lanes stepped this round: still-Active lanes plus the ones
        // that just finished (Draining until the next boundary).
        laneSteps += router.engine().activeLanes() +
                     router.engine().drainingLanes();
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (laneStepsOut)
        *laneStepsOut = laneSteps;
    return seconds;
}

/** Bit-exact refusal gate: routed requests vs dedicated reference runs. */
bool
crossCheck(bool fixedPoint)
{
    DncConfig cfg = serveConfig();
    cfg.memoryRows = 72; // small: this is a correctness gate, not timing
    cfg.controllerSize = 48;
    cfg.batchSize = 4;
    cfg.numThreads = 2;
    cfg.fixedPoint = fixedPoint;

    Router router(cfg, kWeightSeed);
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Bursty; // bursts force queueing + churn
    spec.rate = 0.1;
    spec.burstProbability = 0.2;
    spec.burstSize = 6;
    Rng traceRng(101);
    const auto trace = makeArrivalTrace(spec, 24, traceRng);
    if (trace.empty())
        return false;
    serveTrace(router, trace, cfg.inputSize, nullptr);

    // The gate must cover the whole trace: a queue overflow here means
    // the gate config is wrong (capacity 4096 vs a 24-step trace), not
    // that the engine diverged.
    if (router.rejectedRequests() != 0) {
        std::fprintf(stderr,
                     "cross-check: %zu submissions hit back-pressure — "
                     "widen routerQueueCapacity for the gate\n",
                     router.rejectedRequests());
        return false;
    }
    if (router.completed().size() != trace.size())
        return false;
    DncConfig refCfg = cfg;
    refCfg.batchSize = 1;
    refCfg.numThreads = 1;
    Dnc ref(refCfg, kWeightSeed);
    for (const ServeResult &result : router.completed()) {
        const ArrivalEvent &event = trace[result.id];
        const auto tokens = requestTokens(event, cfg.inputSize, kTokenSeed);
        if (result.outputs.size() != tokens.size())
            return false;
        ref.reset();
        for (Index t = 0; t < tokens.size(); ++t)
            if (!(ref.step(tokens[t]) == result.outputs[t]))
                return false;
    }
    return true;
}

struct LoadResult
{
    double utilization;     ///< offered lane-steps / lane capacity
    double arrivalsPerStep; ///< Poisson rate
    Index requests;
    Index rejected;         ///< queue-overflow drops (skew the tail!)
    Index laneSteps;
    double seconds;
    double meanOccupancy;   ///< mean active lanes during the run
    double p50Steps, p95Steps, p99Steps; ///< latency in router steps
    double p50Ms, p95Ms, p99Ms;          ///< latency in wall milliseconds
    double p95QueueSteps;                ///< queueing component
    double requestsPerSec;
    double laneStepsPerSec;
};

LoadResult
runLoadPoint(const DncConfig &cfg, double utilization, Index horizon,
             std::uint64_t traceSeed)
{
    const double meanLen = meanEpisodeSteps();
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.rate = utilization * static_cast<double>(cfg.batchSize) / meanLen;

    Rng traceRng(traceSeed);
    const auto trace = makeArrivalTrace(spec, horizon, traceRng);

    Router router(cfg, kWeightSeed);
    Index laneSteps = 0;
    const double seconds =
        serveTrace(router, trace, cfg.inputSize, &laneSteps);

    LoadResult r{};
    r.utilization = utilization;
    r.arrivalsPerStep = spec.rate;
    r.requests = router.completed().size();
    r.rejected = router.rejectedRequests();
    r.laneSteps = laneSteps;
    r.seconds = seconds;
    r.meanOccupancy = router.now()
                          ? static_cast<double>(laneSteps) /
                                static_cast<double>(router.now())
                          : 0.0;

    const double msPerStep =
        router.now() ? 1e3 * seconds / static_cast<double>(router.now())
                     : 0.0;
    std::vector<double> latency, queueing;
    latency.reserve(router.completed().size());
    for (const ServeResult &result : router.completed()) {
        latency.push_back(static_cast<double>(result.latencySteps()));
        queueing.push_back(static_cast<double>(result.queueSteps()));
    }
    const std::vector<double> lat =
        percentiles(std::move(latency), {0.50, 0.95, 0.99});
    r.p50Steps = lat[0];
    r.p95Steps = lat[1];
    r.p99Steps = lat[2];
    r.p50Ms = r.p50Steps * msPerStep;
    r.p95Ms = r.p95Steps * msPerStep;
    r.p99Ms = r.p99Steps * msPerStep;
    r.p95QueueSteps = percentile(std::move(queueing), 0.95);
    r.requestsPerSec =
        seconds > 0.0 ? static_cast<double>(r.requests) / seconds : 0.0;
    r.laneStepsPerSec =
        seconds > 0.0 ? static_cast<double>(laneSteps) / seconds : 0.0;
    return r;
}

} // namespace
} // namespace hima

int
main(int argc, char **argv)
{
    using namespace hima;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    if (!crossCheck(false) || !crossCheck(true)) {
        std::fprintf(stderr,
                     "FATAL: routed requests diverged from the reference "
                     "runs — refusing to benchmark unequal computations\n");
        return 1;
    }
    std::printf("cross-check: routed requests bit-identical to dedicated "
                "sequential runs (float and fixed-point)\n");

    DncConfig cfg = serveConfig();
    const unsigned hw = std::thread::hardware_concurrency();
    cfg.numThreads = std::min<Index>(4, hw > 0 ? hw : 1);

    const Index horizon = smoke ? 64 : 2000;
    const std::vector<double> loads =
        smoke ? std::vector<double>{0.5}
              : std::vector<double>{0.25, 0.5, 0.75, 0.95};

    std::printf("router bench: capacity %zu lanes, %zu pool threads, "
                "mean episode %.1f steps, horizon %zu%s\n",
                cfg.batchSize, cfg.numThreads, meanEpisodeSteps(), horizon,
                smoke ? " (smoke)" : "");

    std::vector<LoadResult> results;
    for (double load : loads) {
        const LoadResult r = runLoadPoint(cfg, load, horizon, 31);
        results.push_back(r);
        std::printf("load %.2f (%.3f req/step)  %5zu reqs  occ %5.2f  "
                    "p50 %5.0f  p95 %5.0f  p99 %5.0f steps  "
                    "(p50 %.2f ms)  %8.1f lane-steps/s\n",
                    r.utilization, r.arrivalsPerStep, r.requests,
                    r.meanOccupancy, r.p50Steps, r.p95Steps, r.p99Steps,
                    r.p50Ms, r.laneStepsPerSec);
        if (r.rejected)
            std::printf("  WARNING: %zu submissions rejected by queue "
                        "back-pressure; tail percentiles cover survivors "
                        "only\n",
                        r.rejected);
    }

    FILE *json = std::fopen("BENCH_router.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot open BENCH_router.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    writeBenchContext(json);
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json,
                 "  \"config\": {\"memory_rows\": %zu, \"memory_width\": "
                 "%zu, \"read_heads\": %zu, \"controller_size\": %zu, "
                 "\"capacity\": %zu, \"threads\": %zu},\n",
                 cfg.memoryRows, cfg.memoryWidth, cfg.readHeads,
                 cfg.controllerSize, cfg.batchSize, cfg.numThreads);
    std::fprintf(json, "  \"mean_episode_steps\": %.2f,\n",
                 meanEpisodeSteps());
    std::fprintf(json, "  \"horizon_steps\": %zu,\n", horizon);
    std::fprintf(json, "  \"loads\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const LoadResult &r = results[i];
        std::fprintf(
            json,
            "    {\"utilization\": %.2f, \"arrivals_per_step\": %.4f, "
            "\"requests\": %zu, \"rejected\": %zu, "
            "\"mean_occupancy\": %.3f, "
            "\"latency_steps\": {\"p50\": %.1f, \"p95\": %.1f, "
            "\"p99\": %.1f}, "
            "\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
            "\"p99\": %.3f}, "
            "\"queue_steps_p95\": %.1f, "
            "\"requests_per_sec\": %.2f, "
            "\"lane_steps_per_sec\": %.2f}%s\n",
            r.utilization, r.arrivalsPerStep, r.requests, r.rejected,
            r.meanOccupancy,
            r.p50Steps, r.p95Steps, r.p99Steps, r.p50Ms, r.p95Ms, r.p99Ms,
            r.p95QueueSteps, r.requestsPerSec, r.laneStepsPerSec,
            i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    // The router.* series accumulated across every load point above.
    obs::Snapshot telemetry;
    obs::processSnapshot(telemetry);
    std::fprintf(json, "  \"telemetry\": ");
    writeTelemetrySnapshot(json, telemetry);
    std::fprintf(json, "\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_router.json (%zu load points)\n",
                results.size());
    return 0;
}
