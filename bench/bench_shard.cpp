/**
 * @file
 * Sharded-serving benchmark: confidence-merge round-trip cost vs tile
 * count and transport. For each (transport, tiles) point the harness
 * drives broadcast query steps through a ShardCoordinator — workers
 * in-process for loopback, on threads behind real Unix-domain/TCP
 * sockets otherwise — and records steps/s plus wire bytes per step,
 * against the in-process DncD baseline (no serialization at all).
 * Results land in BENCH_shard.json (CI artifact) next to the other
 * bench JSONs.
 *
 * Like every bench here, a bit-exactness gate runs first: the sharded
 * stack must reproduce the in-process model exactly (float and fixed
 * point) or the bench refuses to time it. `--smoke` runs the gate plus
 * two tiny points (the ASan/UBSan CI configuration).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_env.h"
#include "common/random.h"
#include "shard/local_cluster.h"

namespace hima {
namespace {

DncConfig
benchConfig(Index tiles)
{
    DncConfig cfg;
    cfg.memoryRows = 1024; // the paper's evaluation N
    cfg.memoryWidth = 64;
    cfg.readHeads = 4;
    (void)tiles;
    return cfg;
}

/** Randomized but valid mixed read/write interface traffic. */
InterfaceVector
randomIface(const DncConfig &cfg, Rng &rng)
{
    InterfaceVector iface;
    for (Index h = 0; h < cfg.readHeads; ++h)
        iface.readKeys.push_back(rng.normalVector(cfg.memoryWidth));
    iface.readStrengths.assign(cfg.readHeads, 1.0 + rng.uniform(0.0, 8.0));
    iface.writeKey = rng.normalVector(cfg.memoryWidth);
    iface.writeStrength = 1.0 + rng.uniform(0.0, 8.0);
    iface.eraseVector = rng.uniformVector(cfg.memoryWidth, 0.05, 0.95);
    iface.writeVector = rng.normalVector(cfg.memoryWidth);
    iface.freeGates.assign(cfg.readHeads, rng.uniform(0.0, 0.4));
    iface.allocationGate = rng.uniform();
    iface.writeGate = rng.uniform(0.2, 1.0);
    const Real b = rng.uniform(0.0, 1.0);
    const Real c = rng.uniform(0.0, 1.0 - b);
    iface.readModes.assign(cfg.readHeads, ReadMode{b, c, 1.0 - b - c});
    return iface;
}

/** Bench rows cover the wire transports plus the no-wire baseline. */
enum class Transport
{
    InProcess, ///< DncD baseline: no wire at all
    Loopback,
    Unix,
    Tcp,
};

const char *
transportName(Transport t)
{
    switch (t) {
    case Transport::InProcess:
        return "in_process";
    case Transport::Loopback:
        return "loopback";
    case Transport::Unix:
        return "unix";
    default:
        return "tcp";
    }
}

ClusterTransport
toCluster(Transport t)
{
    switch (t) {
    case Transport::Loopback:
        return ClusterTransport::Loopback;
    case Transport::Unix:
        return ClusterTransport::UnixSocket;
    default:
        return ClusterTransport::Tcp;
    }
}

/** Bit-exact refusal gate: wire stack vs in-process DncD. */
bool
crossCheck(bool fixedPoint)
{
    DncConfig cfg = benchConfig(4);
    cfg.memoryRows = 64; // small: correctness, not timing
    cfg.fixedPoint = fixedPoint;
    const Index tiles = 4;
    // Full weightings on: the gate compares the whole readout.
    LoopbackShard stack = makeLoopbackShard(cfg, tiles, 2);
    DncD ref(cfg, tiles);
    Rng rng(23);
    std::vector<InterfaceVector> perTile(tiles);
    for (int step = 0; step < 6; ++step) {
        const InterfaceVector iface = randomIface(cfg, rng);
        MemoryReadout a, b;
        if (step % 2 == 0) {
            a = ref.stepInterface(iface);
            b = stack.coordinator->stepInterface(iface);
        } else {
            for (Index t = 0; t < tiles; ++t) {
                perTile[t] = iface;
                if (t != static_cast<Index>(step) % tiles)
                    perTile[t].writeGate = 0.0;
            }
            a = ref.stepInterfaces(perTile);
            b = stack.coordinator->stepInterfaces(perTile);
        }
        for (Index h = 0; h < cfg.readHeads; ++h) {
            if (!(a.readVectors[h] == b.readVectors[h]) ||
                !(a.readWeightings[h] == b.readWeightings[h]))
                return false;
        }
        if (!(a.writeWeighting == b.writeWeighting))
            return false;
    }
    return true;
}

struct Point
{
    Transport transport;
    Index tiles;
    Index workers;
    double stepsPerSec;
    double bytesPerStep; ///< total wire traffic, both directions
};

Point
runPoint(Transport transport, Index tiles, Index workers)
{
    const DncConfig cfg = benchConfig(tiles);
    Rng rng(7);
    const InterfaceVector iface = randomIface(cfg, rng);

    Point p{};
    p.transport = transport;
    p.tiles = tiles;
    p.workers = workers;

    if (transport == Transport::InProcess) {
        DncD model(cfg, tiles);
        p.stepsPerSec =
            benchStepsPerSecond([&] { model.stepInterface(iface); });
        p.bytesPerStep = 0.0;
        return p;
    }

    LocalShardCluster stack = makeLocalCluster(
        toCluster(transport), cfg, tiles, workers, MergePolicy::Confidence,
        /*wantWeightings=*/false);
    MemoryReadout out;
    std::uint64_t steps = 0;
    std::uint64_t bytes0 = 0;
    for (Index k = 0; k < stack.coordinator->channelCount(); ++k)
        bytes0 += stack.coordinator->channel(k).bytesSent() +
                  stack.coordinator->channel(k).bytesReceived();
    p.stepsPerSec = benchStepsPerSecond([&] {
        stack.coordinator->stepInterfaceInto(iface, out);
        ++steps;
    });
    std::uint64_t bytes1 = 0;
    for (Index k = 0; k < stack.coordinator->channelCount(); ++k)
        bytes1 += stack.coordinator->channel(k).bytesSent() +
                  stack.coordinator->channel(k).bytesReceived();
    p.bytesPerStep = steps ? static_cast<double>(bytes1 - bytes0) /
                                 static_cast<double>(steps)
                           : 0.0;
    return p;
}

} // namespace
} // namespace hima

int
main(int argc, char **argv)
{
    using namespace hima;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    if (!crossCheck(false) || !crossCheck(true)) {
        std::fprintf(stderr,
                     "FATAL: sharded stack diverged from the in-process "
                     "DncD — refusing to benchmark unequal computations\n");
        return 1;
    }
    std::printf("cross-check: sharded merge bit-identical to in-process "
                "DncD (float and fixed-point)\n");

    struct Case
    {
        Transport transport;
        Index tiles;
        Index workers;
    };
    std::vector<Case> cases;
    if (smoke) {
        cases = {{Transport::Loopback, 4, 2}, {Transport::Unix, 4, 2}};
    } else {
        for (Index tiles : {Index(2), Index(4), Index(8), Index(16)}) {
            const Index workers = tiles >= 4 ? 4 : tiles;
            cases.push_back({Transport::InProcess, tiles, 0});
            cases.push_back({Transport::Loopback, tiles, workers});
            cases.push_back({Transport::Unix, tiles, workers});
            cases.push_back({Transport::Tcp, tiles, workers});
        }
    }

    std::printf("bench_shard: N=1024, W=64, R=4; merge round trips "
                "(lean frames: read vectors + confidence logits)%s\n",
                smoke ? " (smoke)" : "");
    std::vector<Point> points;
    for (const Case &c : cases) {
        const Point p = runPoint(c.transport, c.tiles, c.workers);
        points.push_back(p);
        std::printf("%-10s tiles=%2zu workers=%zu  %9.1f steps/s  %8.1f "
                    "wire B/step\n",
                    transportName(p.transport), p.tiles, p.workers,
                    p.stepsPerSec, p.bytesPerStep);
    }

    FILE *json = std::fopen("BENCH_shard.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot open BENCH_shard.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    writeBenchContext(json);
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json,
                 "  \"config\": {\"memory_rows\": 1024, \"memory_width\": "
                 "64, \"read_heads\": 4, \"want_weightings\": false},\n");
    std::fprintf(json, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(json,
                     "    {\"transport\": \"%s\", \"tiles\": %zu, "
                     "\"workers\": %zu, \"steps_per_sec\": %.2f, "
                     "\"wire_bytes_per_step\": %.1f}%s\n",
                     transportName(p.transport), p.tiles, p.workers,
                     p.stepsPerSec, p.bytesPerStep,
                     i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_shard.json (%zu points)\n", points.size());
    return 0;
}
