/**
 * @file
 * Sharded-serving benchmark: confidence-merge round-trip cost vs tile
 * count and transport. Two modes per (transport, tiles) point:
 *
 *   - sync: the single-lane ShardCoordinator, one full round trip per
 *     step (the PR-4 baseline rows, retained for comparison);
 *   - pipelined: a ShardLaneGroup fleet serving `kBenchLanes` lanes,
 *     swept over lanes-per-batch — k lanes ride one LaneStep frame per
 *     worker and consecutive batches overlap in the double-buffered
 *     window, so syscalls/wakeups amortize k-fold. Reported steps/s are
 *     aggregate *lane*-steps/s (each lane-step does the same tile work
 *     as one sync step), i.e. serving throughput on the same fleet.
 *
 * Workers run in-process for loopback and on threads behind real
 * Unix-domain/TCP sockets or zero-copy shared-memory rings otherwise;
 * the in-process DncD baseline (no serialization at all) bounds both
 * modes from above on one box. Every
 * point stamps per-message-type frame/byte counts per (lane-)step from
 * the channels' WireTrafficStats. Results land in BENCH_shard.json (CI
 * artifact) next to the other bench JSONs.
 *
 * The fault-tolerance sweep (wire v3) rides the same harness: sync
 * rows re-run with periodic checkpointing armed (interval in steps; 0
 * = the untracked baseline) so the steady-state cost of the checkpoint
 * pulls and the replay log shows up in steps/s and in the per-type
 * wire stats, and dedicated recovery rows kill a worker mid-run half a
 * checkpoint interval past the last pull and report the wall time of
 * the recovering step (detect + respawn + Rejoin + Restore + replay)
 * next to a normal step.
 *
 * Like every bench here, a bit-exactness gate runs first: the sharded
 * stack — sync *and* pipelined — must reproduce the in-process model
 * exactly (float and fixed point) or the bench refuses to time it.
 * `--smoke` runs the gate plus a few tiny points, including one
 * injected kill + recovery (the sanitizer CI configuration).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_env.h"
#include "common/random.h"
#include "dnc/memory_unit.h"
#include "obs/obs.h"
#include "shard/local_cluster.h"
#include "shard/wire.h"

namespace hima {
namespace {

/** The paper's evaluation N; wire-bound rows shrink it (see below). */
constexpr Index kBenchRows = 1024;

DncConfig
benchConfig(Index tiles, Index rows = kBenchRows)
{
    DncConfig cfg;
    cfg.memoryRows = rows;
    cfg.memoryWidth = 64;
    cfg.readHeads = 4;
    (void)tiles;
    return cfg;
}

/** Randomized but valid mixed read/write interface traffic. */
InterfaceVector
randomIface(const DncConfig &cfg, Rng &rng)
{
    InterfaceVector iface;
    for (Index h = 0; h < cfg.readHeads; ++h)
        iface.readKeys.push_back(rng.normalVector(cfg.memoryWidth));
    iface.readStrengths.assign(cfg.readHeads, 1.0 + rng.uniform(0.0, 8.0));
    iface.writeKey = rng.normalVector(cfg.memoryWidth);
    iface.writeStrength = 1.0 + rng.uniform(0.0, 8.0);
    iface.eraseVector = rng.uniformVector(cfg.memoryWidth, 0.05, 0.95);
    iface.writeVector = rng.normalVector(cfg.memoryWidth);
    iface.freeGates.assign(cfg.readHeads, rng.uniform(0.0, 0.4));
    iface.allocationGate = rng.uniform();
    iface.writeGate = rng.uniform(0.2, 1.0);
    const Real b = rng.uniform(0.0, 1.0);
    const Real c = rng.uniform(0.0, 1.0 - b);
    iface.readModes.assign(cfg.readHeads, ReadMode{b, c, 1.0 - b - c});
    return iface;
}

/** Bench rows cover the wire transports plus the no-wire baseline. */
enum class Transport
{
    InProcess, ///< DncD baseline: no wire at all
    Loopback,
    Unix,
    Tcp,
    Shm, ///< zero-copy shared-memory rings
};

const char *
transportName(Transport t)
{
    switch (t) {
    case Transport::InProcess:
        return "in_process";
    case Transport::Loopback:
        return "loopback";
    case Transport::Unix:
        return "unix";
    case Transport::Shm:
        return "shm";
    default:
        return "tcp";
    }
}

ClusterTransport
toCluster(Transport t)
{
    switch (t) {
    case Transport::Loopback:
        return ClusterTransport::Loopback;
    case Transport::Unix:
        return ClusterTransport::UnixSocket;
    case Transport::Shm:
        return ClusterTransport::Shm;
    default:
        return ClusterTransport::Tcp;
    }
}

/** Lanes served by every pipelined bench point. */
constexpr Index kBenchLanes = 8;

/** Bit-exact refusal gate: wire stack vs in-process DncD. */
bool
crossCheck(bool fixedPoint)
{
    DncConfig cfg = benchConfig(4);
    cfg.memoryRows = 64; // small: correctness, not timing
    cfg.fixedPoint = fixedPoint;
    const Index tiles = 4;
    // Full weightings on: the gate compares the whole readout.
    LoopbackShard stack = makeLoopbackShard(cfg, tiles, 2);
    DncD ref(cfg, tiles);
    Rng rng(23);
    std::vector<InterfaceVector> perTile(tiles);
    for (int step = 0; step < 6; ++step) {
        const InterfaceVector iface = randomIface(cfg, rng);
        MemoryReadout a, b;
        if (step % 2 == 0) {
            a = ref.stepInterface(iface);
            b = stack.coordinator->stepInterface(iface);
        } else {
            for (Index t = 0; t < tiles; ++t) {
                perTile[t] = iface;
                if (t != static_cast<Index>(step) % tiles)
                    perTile[t].writeGate = 0.0;
            }
            a = ref.stepInterfaces(perTile);
            b = stack.coordinator->stepInterfaces(perTile);
        }
        for (Index h = 0; h < cfg.readHeads; ++h) {
            if (!(a.readVectors[h] == b.readVectors[h]) ||
                !(a.readWeightings[h] == b.readWeightings[h]))
                return false;
        }
        if (!(a.writeWeighting == b.writeWeighting))
            return false;
    }
    return true;
}

/**
 * Pipelined gate: every lane of an overlapped, lane-batched group must
 * match its own in-process DncD reference — including through a
 * per-lane admit — or the bench refuses to time the pipelined points.
 */
bool
crossCheckPipelined(bool fixedPoint)
{
    DncConfig cfg = benchConfig(4);
    cfg.memoryRows = 64;
    cfg.fixedPoint = fixedPoint;
    const Index tiles = 4;
    const Index lanes = 3;
    LocalLaneCluster cluster = makeLocalLaneCluster(
        ClusterTransport::Loopback, cfg, tiles, lanes, /*workerCount=*/2,
        MergePolicy::Confidence, /*wantWeightings=*/true);
    std::vector<std::unique_ptr<DncD>> refs;
    for (Index lane = 0; lane < lanes; ++lane)
        refs.push_back(std::make_unique<DncD>(cfg, tiles));

    Rng rng(29);
    std::vector<InterfaceVector> ifaces(lanes);
    std::vector<MemoryReadout> outs(lanes);
    const std::vector<Index> batchA = {0, 1};
    const std::vector<Index> batchB = {2};
    for (int step = 0; step < 6; ++step) {
        if (step == 3) { // recycle lane 1 mid-stream
            cluster.group->admitLane(1);
            refs[1]->reset();
        }
        for (Index lane = 0; lane < lanes; ++lane)
            ifaces[lane] = randomIface(cfg, rng);
        cluster.group->scatter(batchA, {&ifaces[0], &ifaces[1]});
        cluster.group->scatter(batchB, {&ifaces[2]});
        cluster.group->gather({&outs[0], &outs[1]});
        cluster.group->gather({&outs[2]});
        for (Index lane = 0; lane < lanes; ++lane) {
            const MemoryReadout want =
                refs[lane]->stepInterface(ifaces[lane]);
            for (Index h = 0; h < cfg.readHeads; ++h) {
                if (!(want.readVectors[h] == outs[lane].readVectors[h]) ||
                    !(want.readWeightings[h] ==
                      outs[lane].readWeightings[h]))
                    return false;
            }
            if (!(want.writeWeighting == outs[lane].writeWeighting))
                return false;
        }
    }
    return true;
}

struct Point
{
    Transport transport;
    Index tiles;
    Index workers;
    Index lanes;        ///< 1 for sync rows
    Index lanesPerBatch; ///< 0 for sync rows
    Index checkpointInterval; ///< 0 = fault tolerance unarmed
    Index rows = kBenchRows;  ///< memory rows (wire-bound rows shrink it)
    double stepsPerSec; ///< lane-steps/s for pipelined rows
    // Per-type wire traffic per (lane-)step, both directions.
    WireTrafficStats sent;
    WireTrafficStats received;
    double statSteps = 0.0; ///< divisor for the per-step stats

    bool pipelined() const { return lanesPerBatch > 0; }
};

/** Accumulate (channel stats - baseline) into the point's counters. */
void
diffStats(const Channel &chan, const WireTrafficStats &sentBase,
          const WireTrafficStats &recvBase, Point &p)
{
    p.sent += chan.sentStats().diffFrom(sentBase);
    p.received += chan.receivedStats().diffFrom(recvBase);
}

Point
runPoint(Transport transport, Index tiles, Index workers,
         Index checkpointInterval = 0, Index rows = kBenchRows)
{
    DncConfig cfg = benchConfig(tiles, rows);
    cfg.shardCheckpointIntervalSteps = checkpointInterval;
    Rng rng(7);
    const InterfaceVector iface = randomIface(cfg, rng);

    Point p{};
    p.transport = transport;
    p.tiles = tiles;
    p.workers = workers;
    p.lanes = 1;
    p.lanesPerBatch = 0;
    p.checkpointInterval = checkpointInterval;
    p.rows = rows;

    if (transport == Transport::InProcess) {
        DncD model(cfg, tiles);
        p.stepsPerSec =
            benchStepsPerSecond([&] { model.stepInterface(iface); });
        p.statSteps = 1.0; // no wire: stats stay zero
        return p;
    }

    LocalShardCluster stack = makeLocalCluster(
        toCluster(transport), cfg, tiles, workers, MergePolicy::Confidence,
        /*wantWeightings=*/false);
    // A nonzero interval arms the full fault-tolerance path — frame
    // tracking, the replay log, periodic CheckpointState pulls — so
    // these rows price exactly what a recoverable deployment pays.
    std::shared_ptr<RespawnHarness> harness;
    if (checkpointInterval > 0)
        harness = armClusterRecovery(stack, toCluster(transport));
    MemoryReadout out;
    std::uint64_t steps = 0;
    // Stats are differenced around the timed loop so handshake and
    // warmup traffic is excluded; one warm step sizes every buffer.
    stack.coordinator->stepInterfaceInto(iface, out);
    std::vector<WireTrafficStats> sentBase, recvBase;
    for (Index k = 0; k < stack.coordinator->channelCount(); ++k) {
        sentBase.push_back(stack.coordinator->channel(k).sentStats());
        recvBase.push_back(stack.coordinator->channel(k).receivedStats());
    }
    p.stepsPerSec = benchStepsPerSecond([&] {
        stack.coordinator->stepInterfaceInto(iface, out);
        ++steps;
    });
    for (Index k = 0; k < stack.coordinator->channelCount(); ++k)
        diffStats(stack.coordinator->channel(k), sentBase[k], recvBase[k],
                  p);
    p.statSteps = static_cast<double>(steps);
    return p;
}

/**
 * Pipelined point: kBenchLanes lanes stepped in batches of
 * `lanesPerBatch` with the engine's overlapped schedule (scatter batch
 * b, then gather batch b-1), no controller in the loop — the same
 * per-lane-step tile work as a sync step, so the sync rows are the
 * apples-to-apples baseline.
 */
Point
runPipelinedPoint(Transport transport, Index tiles, Index workers,
                  Index lanesPerBatch)
{
    const DncConfig cfg = benchConfig(tiles);
    Rng rng(7);
    const InterfaceVector iface = randomIface(cfg, rng);

    Point p{};
    p.transport = transport;
    p.tiles = tiles;
    p.workers = workers;
    p.lanes = kBenchLanes;
    p.lanesPerBatch = lanesPerBatch;

    LocalLaneCluster cluster = makeLocalLaneCluster(
        toCluster(transport), cfg, tiles, kBenchLanes, workers);
    ShardLaneGroup &group = *cluster.group;

    // Precompute the batch schedule (lane lists, iface and out views).
    std::vector<std::vector<Index>> batches;
    std::vector<std::vector<const InterfaceVector *>> batchIfaces;
    std::vector<MemoryReadout> outs(kBenchLanes);
    std::vector<std::vector<MemoryReadout *>> batchOuts;
    for (Index first = 0; first < kBenchLanes; first += lanesPerBatch) {
        const Index count = std::min(lanesPerBatch, kBenchLanes - first);
        batches.emplace_back();
        batchIfaces.emplace_back();
        batchOuts.emplace_back();
        for (Index j = 0; j < count; ++j) {
            batches.back().push_back(first + j);
            batchIfaces.back().push_back(&iface);
            batchOuts.back().push_back(&outs[first + j]);
        }
    }

    auto engineStep = [&] {
        // The overlapped schedule: batch b's scatter rides while batch
        // b-1's round trip drains.
        Index prev = batches.size(); // sentinel
        for (Index b = 0; b < batches.size(); ++b) {
            group.scatter(batches[b], batchIfaces[b]);
            if (prev < batches.size())
                group.gather(batchOuts[prev]);
            prev = b;
        }
        group.gather(batchOuts[prev]);
    };

    engineStep(); // warm every buffer on both ends
    std::vector<WireTrafficStats> sentBase, recvBase;
    for (Index k = 0; k < group.channelCount(); ++k) {
        sentBase.push_back(group.channel(k).sentStats());
        recvBase.push_back(group.channel(k).receivedStats());
    }
    std::uint64_t engineSteps = 0;
    const double engineStepsPerSec = benchStepsPerSecond([&] {
        engineStep();
        ++engineSteps;
    });
    p.stepsPerSec = engineStepsPerSec * static_cast<double>(kBenchLanes);
    for (Index k = 0; k < group.channelCount(); ++k)
        diffStats(group.channel(k), sentBase[k], recvBase[k], p);
    p.statSteps =
        static_cast<double>(engineSteps) * static_cast<double>(kBenchLanes);
    return p;
}

/** One measured kill + recovery on the sync coordinator. */
/**
 * Byte sizes of one tile's checkpoint frame under the v6 sparse
 * encoding vs the dense escape, plus the bit-identity verdict of a
 * restore from the sparse frame. The traffic is allocation-gated
 * (early-episode), where the active set is a small fraction of N and
 * the sparse frames must win by bytes.
 */
struct CheckpointFrameReport
{
    bool ok = false;         ///< sparse restore replayed bit-identically
    Index rows = 0;          ///< tile N
    Index activeRows = 0;    ///< touched slots at capture time
    std::size_t sparseBytes = 0;
    std::size_t denseBytes = 0;
};

/**
 * Fatal gate for the v6 sparse checkpoint path: at an early-episode
 * active set the frame must be byte-smaller than the dense encoding
 * AND restore a replica that replays bit-identically against the
 * uninterrupted tile.
 */
CheckpointFrameReport
sparseCheckpointGate()
{
    CheckpointFrameReport rep;
    const DncConfig cfg = benchConfig(1);
    DncConfig denseCfg = cfg;
    denseCfg.linkageDenseSweep = true;
    rep.rows = cfg.memoryRows;

    std::vector<std::unique_ptr<MemoryUnit>> sparse, dense;
    sparse.push_back(std::make_unique<MemoryUnit>(cfg));
    dense.push_back(std::make_unique<MemoryUnit>(denseCfg));
    Rng rng(11);
    MemoryReadout out;
    for (int step = 0; step < 16; ++step) {
        InterfaceVector iface = randomIface(cfg, rng);
        iface.allocationGate = 1.0; // early-episode one-hot writes
        iface.writeGate = 1.0;
        sparse[0]->stepInto(iface, out);
        dense[0]->stepInto(iface, out);
    }
    rep.activeRows = sparse[0]->linkage().touchedSlots().size();

    WireWriter sparseFrame, denseFrame;
    encodeCheckpointState(1, sparse, cfg, sparseFrame);
    encodeCheckpointState(1, dense, denseCfg, denseFrame);
    rep.sparseBytes = sparseFrame.buffer().size();
    rep.denseBytes = denseFrame.buffer().size();
    if (rep.sparseBytes >= rep.denseBytes)
        return rep;

    MemoryTileState snap;
    MemoryTileState *slots[] = {&snap};
    std::uint64_t seq = 0;
    if (!decodeCheckpointState(sparseFrame.buffer().data(), rep.sparseBytes,
                               cfg, slots, 1, seq))
        return rep;
    MemoryUnit replica(cfg);
    replica.restoreState(snap);
    MemoryReadout a, b;
    for (int step = 0; step < 8; ++step) {
        const InterfaceVector iface = randomIface(cfg, rng);
        sparse[0]->stepInto(iface, a);
        replica.stepInto(iface, b);
        for (Index h = 0; h < cfg.readHeads; ++h)
            if (!(a.readVectors[h] == b.readVectors[h]))
                return rep;
        if (!(a.writeWeighting == b.writeWeighting))
            return rep;
    }
    rep.ok = true;
    return rep;
}

struct RecoveryRow
{
    Transport transport;
    Index tiles;
    Index workers;
    Index interval;    ///< checkpoint cadence (steps)
    bool denseFrames;  ///< dense escape: pre-sparsity checkpoint frames
    double stepMs;     ///< fastest normal step just before the kill
    double recoveryMs; ///< the killed step: detect + respawn + restore + replay
};

/**
 * Measure recovery latency: run past one checkpoint pull, kill worker 0
 * half an interval later (so the replay log holds interval/2 steps),
 * and time the step that detects the loss and recovers through it.
 *
 * Traffic is allocation-gated so the run sits in the early-episode
 * regime where the v6 sparse checkpoint frames apply; `denseFrames`
 * re-runs the same workload through the dense escape (dense sweeps and
 * dense frames — the pre-sparsity behavior) for comparison.
 */
RecoveryRow
runRecoveryRow(Transport transport, Index tiles, Index workers,
               Index interval, bool denseFrames = false)
{
    DncConfig cfg = benchConfig(tiles);
    cfg.shardCheckpointIntervalSteps = interval;
    cfg.linkageDenseSweep = denseFrames;
    Rng rng(7);
    InterfaceVector iface = randomIface(cfg, rng);
    iface.allocationGate = 1.0;
    iface.writeGate = 1.0;

    RecoveryRow row{};
    row.transport = transport;
    row.tiles = tiles;
    row.workers = workers;
    row.interval = interval;
    row.denseFrames = denseFrames;

    LocalShardCluster stack = makeLocalCluster(
        toCluster(transport), cfg, tiles, workers, MergePolicy::Confidence,
        /*wantWeightings=*/false);
    auto harness = armClusterRecovery(stack, toCluster(transport));

    using Clock = std::chrono::steady_clock;
    const auto stepMs = [&](MemoryReadout &out) {
        const auto t0 = Clock::now();
        stack.coordinator->stepInterfaceInto(iface, out);
        return std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    };

    MemoryReadout out;
    Index sent = 0; // Step frames every worker has received
    for (Index i = 0; i < interval + 2; ++i, ++sent)
        stack.coordinator->stepInterfaceInto(iface, out);
    row.stepMs = 1e9;
    for (Index i = 0; i < 5; ++i, ++sent)
        row.stepMs = std::min(row.stepMs, stepMs(out));

    FaultSpec kill;
    kill.killAtStepFrame = sent + interval / 2;
    stack.workers[0]->injectFault(kill);
    while (stack.coordinator->recoveries() == 0) {
        row.recoveryMs = stepMs(out);
        ++sent;
    }
    return row;
}

/** Emit one point's per-type wire stats as a JSON object. */
void
writeWireStats(FILE *json, const Point &p)
{
    std::fprintf(json, "\"wire_per_step\": {");
    bool firstType = true;
    for (const WireTrafficRow &row :
         wireTrafficRows(p.sent, p.received, p.statSteps)) {
        std::fprintf(json,
                     "%s\"%s\": {\"frames\": %.3f, \"bytes_out\": %.1f, "
                     "\"bytes_in\": %.1f}",
                     firstType ? "" : ", ", row.name, row.framesPerStep,
                     row.bytesOutPerStep, row.bytesInPerStep);
        firstType = false;
    }
    std::fprintf(json, "}");
}

} // namespace
} // namespace hima

int
main(int argc, char **argv)
{
    using namespace hima;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    if (!crossCheck(false) || !crossCheck(true) ||
        !crossCheckPipelined(false) || !crossCheckPipelined(true)) {
        std::fprintf(stderr,
                     "FATAL: sharded stack diverged from the in-process "
                     "DncD — refusing to benchmark unequal computations\n");
        return 1;
    }
    std::printf("cross-check: sync and pipelined sharded merges "
                "bit-identical to in-process DncD (float and "
                "fixed-point)\n");

    const CheckpointFrameReport frames = sparseCheckpointGate();
    if (!frames.ok) {
        std::fprintf(stderr,
                     "FATAL: v6 sparse checkpoint frames failed the gate "
                     "(sparse %zu B vs dense %zu B at A=%zu/N=%zu) — "
                     "either the frame did not shrink or the restore "
                     "diverged\n",
                     frames.sparseBytes, frames.denseBytes,
                     frames.activeRows, frames.rows);
        return 1;
    }
    std::printf("cross-check: sparse checkpoint frame %zu B vs dense "
                "%zu B (%.1fx smaller at A=%zu/N=%zu), restore "
                "bit-identical\n",
                frames.sparseBytes, frames.denseBytes,
                static_cast<double>(frames.denseBytes) /
                    static_cast<double>(frames.sparseBytes),
                frames.activeRows, frames.rows);

    struct Case
    {
        Transport transport;
        Index tiles;
        Index workers;
        Index lanesPerBatch;      ///< 0 = sync coordinator
        Index checkpointInterval; ///< 0 = fault tolerance unarmed
        Index rows = kBenchRows;  ///< memory rows (wire-bound rows shrink)
    };
    struct RecoveryCase
    {
        Transport transport;
        Index tiles;
        Index workers;
        Index interval;
        bool denseFrames = false;
    };
    std::vector<Case> cases;
    std::vector<RecoveryCase> recoveryCases;
    if (smoke) {
        cases = {{Transport::Loopback, 4, 2, 0, 0},
                 {Transport::Unix, 4, 2, 0, 0},
                 {Transport::Shm, 4, 2, 0, 0},
                 {Transport::Loopback, 4, 2, 2, 0},
                 {Transport::Unix, 4, 2, 4, 0},
                 {Transport::Shm, 4, 2, 4, 0},
                 // Fault tolerance armed: checkpoint pulls in the loop.
                 {Transport::Unix, 4, 2, 0, 16},
                 {Transport::Shm, 4, 2, 0, 16}};
        // Injected kill + recovery under the sanitizers — the shm row
        // drives ring re-rendezvous + replay through TSan/ASan too.
        // One sparse-frame row and one dense-escape row, so both
        // checkpoint encodings recover under the sanitizers.
        recoveryCases = {{Transport::Unix, 4, 2, 16, false},
                         {Transport::Shm, 4, 2, 16, true}};
    } else {
        for (Index tiles : {Index(2), Index(4), Index(8), Index(16)}) {
            const Index workers = tiles >= 4 ? 4 : tiles;
            cases.push_back({Transport::InProcess, tiles, 0, 0, 0});
            cases.push_back({Transport::Loopback, tiles, workers, 0, 0});
            cases.push_back({Transport::Unix, tiles, workers, 0, 0});
            cases.push_back({Transport::Tcp, tiles, workers, 0, 0});
            cases.push_back({Transport::Shm, tiles, workers, 0, 0});
        }
        // The pipelined sweep at the tile counts where the sync
        // round-trip gap is widest (see the sync rows).
        for (Index tiles : {Index(8), Index(16)}) {
            const Index workers = 4;
            for (Index k : {Index(1), Index(2), Index(4), Index(8)}) {
                cases.push_back({Transport::Loopback, tiles, workers, k, 0});
                cases.push_back({Transport::Unix, tiles, workers, k, 0});
                cases.push_back({Transport::Tcp, tiles, workers, k, 0});
                cases.push_back({Transport::Shm, tiles, workers, k, 0});
            }
        }
        // Wire-bound rows: N small enough that the transport, not the
        // tile datapath, is the bottleneck — this is where the
        // zero-copy shm rings separate from the socket transports
        // (at the paper's N the per-step compute masks the wire).
        for (Transport t : {Transport::InProcess, Transport::Loopback,
                            Transport::Unix, Transport::Tcp,
                            Transport::Shm})
            cases.push_back({t, 16, 4, 0, 0, 128});
        // Checkpoint-overhead sweep: the interval-0 baseline is the
        // plain sync row above; 64 and 256 price the recoverable
        // configurations.
        for (Index interval : {Index(64), Index(256)}) {
            cases.push_back({Transport::Loopback, 8, 4, 0, interval});
            cases.push_back({Transport::Unix, 8, 4, 0, interval});
            cases.push_back({Transport::Shm, 8, 4, 0, interval});
        }
        // Recovery latency per injected kill.
        for (Index interval : {Index(64), Index(256)}) {
            recoveryCases.push_back({Transport::Unix, 8, 4, interval});
            recoveryCases.push_back({Transport::Tcp, 8, 4, interval});
            recoveryCases.push_back({Transport::Shm, 8, 4, interval});
        }
        // Dense-escape twins at interval 64: same workload recovered
        // through dense checkpoint frames, pricing the v6 sparse-frame
        // restore against the pre-sparsity baseline.
        recoveryCases.push_back({Transport::Unix, 8, 4, 64, true});
        recoveryCases.push_back({Transport::Shm, 8, 4, 64, true});
    }

    std::printf("bench_shard: N=1024, W=64, R=4; merge round trips "
                "(lean frames: read vectors + confidence logits); "
                "pipelined rows serve %zu lanes (aggregate "
                "lane-steps/s)%s\n",
                kBenchLanes, smoke ? " (smoke)" : "");
    std::vector<Point> points;
    for (const Case &c : cases) {
        const Point p =
            c.lanesPerBatch == 0
                ? runPoint(c.transport, c.tiles, c.workers,
                           c.checkpointInterval, c.rows)
                : runPipelinedPoint(c.transport, c.tiles, c.workers,
                                    c.lanesPerBatch);
        points.push_back(p);
        double wireBytes = 0.0;
        for (std::size_t t = 0; t < kMsgTypeCount; ++t)
            wireBytes += static_cast<double>(p.sent.bytes[t] +
                                             p.received.bytes[t]);
        if (p.pipelined())
            std::printf("%-10s tiles=%2zu workers=%zu pipelined k=%zu  "
                        "%9.1f lane-steps/s  %8.1f wire B/step\n",
                        transportName(p.transport), p.tiles, p.workers,
                        p.lanesPerBatch, p.stepsPerSec,
                        wireBytes / p.statSteps);
        else if (p.checkpointInterval > 0)
            std::printf("%-10s tiles=%2zu workers=%zu sync ckpt=%-4zu"
                        "%9.1f steps/s       %8.1f wire B/step\n",
                        transportName(p.transport), p.tiles, p.workers,
                        p.checkpointInterval, p.stepsPerSec,
                        wireBytes / p.statSteps);
        else if (p.rows != kBenchRows)
            std::printf("%-10s tiles=%2zu workers=%zu sync N=%-5zu "
                        "%9.1f steps/s       %8.1f wire B/step\n",
                        transportName(p.transport), p.tiles, p.workers,
                        p.rows, p.stepsPerSec, wireBytes / p.statSteps);
        else
            std::printf("%-10s tiles=%2zu workers=%zu sync         "
                        "%9.1f steps/s       %8.1f wire B/step\n",
                        transportName(p.transport), p.tiles, p.workers,
                        p.stepsPerSec, wireBytes / p.statSteps);
    }

    std::vector<RecoveryRow> recoveries;
    for (const RecoveryCase &c : recoveryCases) {
        const RecoveryRow r = runRecoveryRow(c.transport, c.tiles, c.workers,
                                             c.interval, c.denseFrames);
        recoveries.push_back(r);
        std::printf("%-10s tiles=%2zu workers=%zu recovery ckpt=%-4zu "
                    "%s frames  killed worker recovered in %.2f ms "
                    "(normal step %.3f ms)\n",
                    transportName(r.transport), r.tiles, r.workers,
                    r.interval, r.denseFrames ? "dense " : "sparse",
                    r.recoveryMs, r.stepMs);
    }

    FILE *json = std::fopen("BENCH_shard.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot open BENCH_shard.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    writeBenchContext(json);
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json,
                 "  \"config\": {\"memory_rows\": 1024, \"memory_width\": "
                 "64, \"read_heads\": 4, \"want_weightings\": false, "
                 "\"pipelined_lanes\": %zu},\n",
                 kBenchLanes);
    std::fprintf(json, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &p = points[i];
        std::fprintf(json,
                     "    {\"transport\": \"%s\", \"mode\": \"%s\", "
                     "\"tiles\": %zu, \"workers\": %zu, \"lanes\": %zu, "
                     "\"lanes_per_batch\": %zu, "
                     "\"checkpoint_interval\": %zu, "
                     "\"memory_rows\": %zu, "
                     "\"steps_per_sec\": %.2f, ",
                     transportName(p.transport),
                     p.pipelined() ? "pipelined" : "sync", p.tiles,
                     p.workers, p.lanes, p.lanesPerBatch,
                     p.checkpointInterval, p.rows, p.stepsPerSec);
        writeWireStats(json, p);
        std::fprintf(json, "}%s\n", i + 1 < points.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"recovery\": [\n");
    for (std::size_t i = 0; i < recoveries.size(); ++i) {
        const RecoveryRow &r = recoveries[i];
        std::fprintf(json,
                     "    {\"transport\": \"%s\", \"tiles\": %zu, "
                     "\"workers\": %zu, \"checkpoint_interval\": %zu, "
                     "\"dense_frames\": %s, "
                     "\"step_ms\": %.4f, \"recovery_ms\": %.4f}%s\n",
                     transportName(r.transport), r.tiles, r.workers,
                     r.interval, r.denseFrames ? "true" : "false", r.stepMs,
                     r.recoveryMs, i + 1 < recoveries.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"checkpoint_frames\": {\"memory_rows\": %zu, "
                 "\"active_rows\": %zu, \"sparse_frame_bytes\": %zu, "
                 "\"dense_frame_bytes\": %zu, \"shrink_factor\": %.2f, "
                 "\"restore_bit_identical\": true},\n",
                 frames.rows, frames.activeRows, frames.sparseBytes,
                 frames.denseBytes,
                 static_cast<double>(frames.denseBytes) /
                     static_cast<double>(frames.sparseBytes));
    // The process registry accumulated over every point above (workers
    // run in-process here): the run's own telemetry, machine-readable.
    obs::Snapshot telemetry;
    obs::processSnapshot(telemetry);
    std::fprintf(json, "  \"telemetry\": ");
    writeTelemetrySnapshot(json, telemetry);
    std::fprintf(json, "\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_shard.json (%zu points)\n", points.size());
    return 0;
}
