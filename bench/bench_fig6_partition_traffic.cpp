/**
 * @file
 * Regenerates Fig. 6(c) and Fig. 6(d): inter-tile traffic of the
 * memory-read kernel versus the external-memory partition, and of the
 * forward-backward kernel versus the linkage-memory partition, for
 * Nt in {4, 16, 32, 48, 64} over the full Nt_w sweep.
 *
 * Values come straight from the closed forms (Eqs. 2 and 3) implemented
 * in arch/partition.h, normalized per series exactly as the paper plots
 * them. The reported minima reproduce the paper's conclusions: row-wise
 * for the external memory, balanced submatrix (4 x 4 at Nt = 16) for the
 * linkage memory.
 */

#include <cmath>
#include <iostream>

#include "arch/partition.h"
#include "common/table.h"

namespace hima {
namespace {

void
run()
{
    const Index n = 1024, w = 64;
    const Index tileCounts[] = {4, 16, 32, 48, 64};

    std::cout << "Fig. 6(c): memory-read kernel traffic vs external "
                 "memory partition (N x W = 1024 x 64)\n"
              << "Rows are log2(Nt_w); values normalized to each "
                 "series' minimum.\n";

    {
        std::vector<std::string> headers = {"log2(Ntw)"};
        for (Index nt : tileCounts)
            headers.push_back("Nt=" + std::to_string(nt));
        Table table(headers);

        for (Index lw = 0; (Index{1} << lw) <= 64; ++lw) {
            const Index ntw = Index{1} << lw;
            std::vector<std::string> row = {std::to_string(lw)};
            for (Index nt : tileCounts) {
                if (nt % ntw != 0 || ntw > nt) {
                    row.push_back("-");
                    continue;
                }
                const Partition p{nt / ntw, ntw};
                // Normalize by the series minimum.
                std::uint64_t best = ~0ull;
                for (const Partition &q : enumeratePartitions(nt))
                    best = std::min(best, memoryReadTraffic(n, w, q));
                const Real norm =
                    static_cast<Real>(memoryReadTraffic(n, w, p)) /
                    static_cast<Real>(best);
                row.push_back(fmtRatio(norm));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        for (Index nt : tileCounts) {
            const Partition opt = optimizeExternalPartition(n, w, nt);
            std::cout << "  Nt=" << nt << ": optimal external partition "
                      << opt.blockRows << "x" << opt.blockCols
                      << " (paper: row-wise)\n";
        }
    }

    std::cout << "\nFig. 6(d): forward-backward kernel traffic vs "
                 "linkage memory partition (N x N = 1024 x 1024)\n";
    {
        std::vector<std::string> headers = {"log2(Ntw)"};
        for (Index nt : tileCounts)
            headers.push_back("Nt=" + std::to_string(nt));
        Table table(headers);

        for (Index lw = 0; (Index{1} << lw) <= 64; ++lw) {
            const Index ntw = Index{1} << lw;
            std::vector<std::string> row = {std::to_string(lw)};
            for (Index nt : tileCounts) {
                if (nt % ntw != 0 || ntw > nt) {
                    row.push_back("-");
                    continue;
                }
                const Partition p{nt / ntw, ntw};
                Real best = 1e300;
                for (const Partition &q : enumeratePartitions(nt))
                    best = std::min(best, forwardBackwardTraffic(n, q));
                row.push_back(
                    fmtRatio(forwardBackwardTraffic(n, p) / best));
            }
            table.addRow(row);
        }
        table.print(std::cout);
        for (Index nt : tileCounts) {
            const Partition opt = optimizeLinkagePartition(n, nt);
            std::cout << "  Nt=" << nt << ": optimal linkage partition "
                      << opt.blockRows << "x" << opt.blockCols << "\n";
        }
        std::cout << "  (paper: both extremes suboptimal; 4x4 optimal at "
                     "Nt = 16)\n";
    }
}

} // namespace
} // namespace hima

int
main()
{
    hima::run();
    return 0;
}
