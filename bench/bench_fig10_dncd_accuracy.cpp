/**
 * @file
 * Regenerates Fig. 10: DNC-D inference error over DNC across the 20-task
 * suite, for Nt in {4, 16, 32} (top panel) and for usage skimming rates
 * K in {0%, 20%, 50%} at Nt = 16 (bottom panel).
 *
 * Metric (see DESIGN.md substitution table): both models run identical
 * scripted episodes; "error over DNC" is the retrieval error rate of the
 * DNC-D/skimmed configuration minus the monolithic DNC's on the same
 * episodes. The paper's qualitative findings to reproduce: error grows
 * with Nt (below ~6% average at Nt <= 32), K = 20% adds a few percent,
 * K = 50% pushes past 15% on the harder tasks.
 */

#include <iostream>

#include "common/table.h"
#include "workload/task_suite.h"

namespace hima {
namespace {

DncConfig
benchConfig(Real skim = 0.0)
{
    DncConfig cfg;
    // Small enough to create genuine memory pressure (the regime where
    // DNC-D sharding and skimming cost accuracy), large enough for all
    // Nt in the sweep.
    cfg.memoryRows = 256;
    cfg.memoryWidth = 32;
    cfg.readHeads = 2;
    cfg.skimRate = skim;
    return cfg;
}

struct TaskError
{
    Real dnc = 0.0;
    Real variant = 0.0;
};

/** Mean error over episodes for one task on DNC and one DNC-D config. */
TaskError
evaluateTask(const TaskSpec &spec, Index tiles, Real skim,
             std::uint64_t seed, Index pressure = 1)
{
    // `pressure` multiplies the story length: the skimming study needs
    // episodes long enough to exercise allocation under load (otherwise
    // every shard has spare slots and skimming is free by construction).
    TaskSpec scaled = spec;
    scaled.items *= pressure;
    scaled.distractors *= pressure;
    scaled.queries *= pressure;

    DncConfig plainCfg = benchConfig(0.0);
    DncConfig variantCfg = benchConfig(skim);
    if (pressure > 1) {
        // Tighten capacity so the shards actually fill.
        plainCfg.memoryRows = 128;
        variantCfg.memoryRows = 128;
    }
    const Index vocab = 1024;

    TokenCodebook keys(vocab, plainCfg.memoryWidth / 2, 101);
    TokenCodebook values(vocab, plainCfg.memoryWidth / 2, 202);
    InterfaceScripter scripter(plainCfg, keys, values);

    Dnc dnc(plainCfg, 1);
    DncD dncd(variantCfg, tiles);

    Rng rng(seed);
    const int episodes = 3;
    TaskError err;
    for (int e = 0; e < episodes; ++e) {
        const Episode ep = makeEpisode(scaled, vocab, rng);
        err.dnc += runEpisode(dnc, scripter, ep).errorRate();
        err.variant +=
            runEpisodeDistributed(dncd, scripter, ep).errorRate();
    }
    err.dnc /= episodes;
    err.variant /= episodes;
    return err;
}

void
run()
{
    const auto suite = taskSuite();

    std::cout << "Fig. 10 (top): DNC-D error over DNC per task, by tile "
                 "count (N = 256)\n";
    {
        Table table({"Task", "Name", "Nt=4", "Nt=16", "Nt=32"});
        Real avg[3] = {};
        for (const TaskSpec &spec : suite) {
            std::vector<std::string> row = {std::to_string(spec.id),
                                            spec.name};
            const Index tiles[3] = {4, 16, 32};
            for (int t = 0; t < 3; ++t) {
                const TaskError err =
                    evaluateTask(spec, tiles[t], 0.0, 7000 + spec.id);
                const Real over = std::max(0.0, err.variant - err.dnc);
                avg[t] += over;
                row.push_back(fmtPercent(over));
            }
            table.addRow(row);
        }
        table.addRule();
        table.addRow({"avg", "",
                      fmtPercent(avg[0] / suite.size()),
                      fmtPercent(avg[1] / suite.size()),
                      fmtPercent(avg[2] / suite.size())});
        table.print(std::cout);
        std::cout << "(paper: error grows with Nt; average below ~6% for "
                     "Nt <= 32)\n";
    }

    std::cout << "\nFig. 10 (bottom): DNC-D error over DNC with usage "
                 "skimming, Nt = 16\n";
    {
        Table table({"Task", "Name", "K=0%", "K=20%", "K=50%"});
        Real avg[3] = {};
        const Real rates[3] = {0.0, 0.2, 0.5};
        for (const TaskSpec &spec : suite) {
            std::vector<std::string> row = {std::to_string(spec.id),
                                            spec.name};
            for (int k = 0; k < 3; ++k) {
                const TaskError err =
                    evaluateTask(spec, 16, rates[k], 9000 + spec.id, 4);
                const Real over = std::max(0.0, err.variant - err.dnc);
                avg[k] += over;
                row.push_back(fmtPercent(over));
            }
            table.addRow(row);
        }
        table.addRule();
        table.addRow({"avg", "",
                      fmtPercent(avg[0] / suite.size()),
                      fmtPercent(avg[1] / suite.size()),
                      fmtPercent(avg[2] / suite.size())});
        table.print(std::cout);
        std::cout << "(paper: K = 20% adds ~5.8% error at Nt = 16; "
                     "K = 50% exceeds 15% on the harder tasks)\n";
    }
}

} // namespace
} // namespace hima

int
main()
{
    hima::run();
    return 0;
}
