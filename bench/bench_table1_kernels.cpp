/**
 * @file
 * Regenerates Table 1: the analysis of DNC kernels — key primitives,
 * external/state memory access and NoC traffic per kernel.
 *
 * Unlike the paper's asymptotic table, every number here is *measured*:
 * the functional DNC runs one full step at the paper's evaluation point
 * (N x W = 1024 x 64, R = 4) with the KernelProfiler attached, and NoC
 * traffic is the per-kernel flit count the HiMA engine injects at Nt = 16
 * with the paper's partitions. The asymptotic class from Table 1 is
 * printed alongside for comparison.
 */

#include <iostream>
#include <map>

#include "arch/engine.h"
#include "common/table.h"
#include "dnc/dnc.h"

namespace hima {
namespace {

const char *
primitives(Kernel k)
{
    switch (k) {
      case Kernel::Normalize: return "inner-prod, sqrt";
      case Kernel::Similarity: return "inner-prod, softmax";
      case Kernel::MemoryWrite: return "el-add/sub/mult, outer-prod";
      case Kernel::MemoryRead: return "transpose, mat-vec mult";
      case Kernel::Retention: return "el-mult, vec acc-prod";
      case Kernel::Usage: return "el-add/sub/mult";
      case Kernel::UsageSort: return "sort (two-stage)";
      case Kernel::Allocation: return "vec acc-prod";
      case Kernel::WriteMerge: return "el-add/sub";
      case Kernel::Linkage: return "mat expand, outer-prod, el-ops";
      case Kernel::Precedence: return "el-add, vec acc-sum";
      case Kernel::ForwardBackward: return "transpose, mat-vec mult";
      case Kernel::ReadMerge: return "el-add";
      case Kernel::Lstm: return "mat-vec mult, sigmoid/tanh";
      default: return "?";
    }
}

const char *
asymptotic(Kernel k)
{
    switch (k) {
      case Kernel::Normalize:
      case Kernel::Similarity:
      case Kernel::MemoryWrite:
      case Kernel::MemoryRead: return "O(NW)";
      case Kernel::Retention: return "O(RN)";
      case Kernel::Usage:
      case Kernel::UsageSort:
      case Kernel::Allocation:
      case Kernel::WriteMerge:
      case Kernel::Precedence: return "O(N)";
      case Kernel::Linkage: return "O(N^2)";
      case Kernel::ForwardBackward: return "O(RN^2)";
      case Kernel::ReadMerge: return "O(RN)";
      case Kernel::Lstm: return "O(H^2)";
      default: return "?";
    }
}

void
run()
{
    std::cout << "Table 1: Analysis of DNC kernels (measured, one step)\n"
              << "N x W = 1024 x 64, R = 4, LSTM 256; NoC traffic at "
                 "Nt = 16 (row-wise ext, 4x4 linkage partition)\n";

    // Measured functional profile.
    DncConfig cfg;
    Dnc dnc(cfg, 1);
    Rng input(7);
    dnc.step(input.normalVector(cfg.inputSize));
    const KernelProfiler &prof = dnc.profiler();

    // Per-kernel NoC flits measured from the engine's traffic batches.
    HimaEngine engine(himaDncConfig(16));
    const StepTiming step = engine.simulateStep();
    std::map<int, std::uint64_t> nocCycles;
    for (const StageTiming &stage : step.stages)
        nocCycles[static_cast<int>(stage.kernel)] += stage.nocCycles;

    // "Skipped Rows" reports the software-side active-row savings of
    // the sparse linkage sweep (ops/mem columns still charge the full
    // hardware cost model). A fresh soft-traffic step activates every
    // row, so the column is zero here and nonzero in allocation-gated
    // or fixed-point serving regimes.
    Table table({"Type", "Kernel", "Key Primitives", "Total Ops",
                 "Ext Mem", "State Mem", "Skipped Rows", "Class",
                 "NoC cyc (Nt=16)"});

    const Kernel accessKernels[] = {Kernel::Normalize, Kernel::Similarity,
                                    Kernel::MemoryWrite,
                                    Kernel::MemoryRead};
    const Kernel stateKernels[] = {
        Kernel::Retention, Kernel::Usage, Kernel::UsageSort,
        Kernel::Allocation, Kernel::WriteMerge, Kernel::Linkage,
        Kernel::Precedence, Kernel::ForwardBackward, Kernel::ReadMerge};

    auto addRow = [&](const char *type, Kernel k) {
        const KernelCounters &c = prof.at(k);
        table.addRow({type, kernelName(k), primitives(k),
                      fmtCount(c.totalOps()), fmtCount(c.extMemAccesses),
                      fmtCount(c.stateMemAccesses), fmtCount(c.skippedRows),
                      asymptotic(k),
                      fmtCount(nocCycles[static_cast<int>(k)])});
    };

    for (Kernel k : accessKernels)
        addRow("Access", k);
    table.addRule();
    for (Kernel k : stateKernels)
        addRow("State (new in DNC)", k);
    table.addRule();
    addRow("NN", Kernel::Lstm);

    table.print(std::cout);

    const KernelCounters total = prof.grandTotal();
    std::cout << "\nTotals: " << fmtCount(total.totalOps()) << " ops, "
              << fmtCount(total.extMemAccesses) << " ext mem words, "
              << fmtCount(total.stateMemAccesses)
              << " state mem words per step\n";
    std::cout << "State kernels exist only in DNC; NTM needs the access "
                 "kernels alone (Sec. 2.2).\n";
}

} // namespace
} // namespace hima

int
main()
{
    hima::run();
    return 0;
}
