/**
 * @file
 * Ablation harness for the design choices DESIGN.md calls out beyond the
 * paper's own Fig. 11(a) ladder:
 *
 *   1. stream sharing (tree multicast / in-network reduction) on vs off
 *      at the NoC level — the mechanism behind HiMA's broadcast/collect
 *      and psum traffic;
 *   2. router crossbar transit capacity sweep — how fat a router the
 *      hub-style topologies need before they stop congesting;
 *   3. NoC link width sweep on the full engine;
 *   4. linkage partition sweep on the full engine (beyond the optimum).
 */

#include <iostream>

#include "arch/engine.h"
#include "common/table.h"
#include "noc/traffic.h"

namespace hima {
namespace {

void
ablationStreamSharing()
{
    std::cout << "Ablation 1: stream sharing (multicast/reduction) "
                 "on DNC traffic patterns, 16 tiles, 64-word messages\n";
    Table table({"Topology", "bcast uni", "bcast multi", "gather uni",
                 "gather reduce"});
    for (NocKind kind : {NocKind::HTree, NocKind::Mesh, NocKind::Hima}) {
        const Topology topo = Topology::build(kind, 16);
        Network net(topo);
        table.addRow(
            {nocKindName(kind),
             fmtCount(net.run(broadcast(topo, 64, 0), NocMode::Full)
                          .makespan),
             fmtCount(net.run(broadcast(topo, 64, 1), NocMode::Full)
                          .makespan),
             fmtCount(net.run(gather(topo, 64, 0), NocMode::Full)
                          .makespan),
             fmtCount(net.run(gather(topo, 64, 2), NocMode::Full)
                          .makespan)});
    }
    table.print(std::cout);
}

void
ablationRouterCapacity()
{
    std::cout << "\nAblation 2: router transit capacity vs all-to-all "
                 "makespan (16 tiles, 16-flit messages)\n";
    Table table({"Capacity (flits/cyc)", "H-Tree", "Star", "HiMA"});
    for (std::uint64_t cap : {1, 2, 4, 8, 16}) {
        std::vector<std::string> row = {std::to_string(cap)};
        for (NocKind kind : {NocKind::HTree, NocKind::Star,
                             NocKind::Hima}) {
            const Topology topo = Topology::build(kind, 16);
            Network net(topo, cap);
            row.push_back(fmtCount(
                net.run(allToAll(topo, 16), NocMode::Full).makespan));
        }
        table.addRow(row);
    }
    table.print(std::cout);
    std::cout << "(hub topologies need disproportionate crossbar "
                 "bandwidth; the HiMA mesh+diagonals barely care)\n";
}

void
ablationLinkWidth()
{
    std::cout << "\nAblation 3: NoC link width vs HiMA-DNC step latency "
                 "(Nt = 16)\n";
    Table table({"Link (words/flit)", "Cycles/step", "vs 8-word"});
    Real base = 0.0;
    for (Index words : {1, 2, 4, 8, 16}) {
        ArchConfig cfg = himaDncConfig(16);
        cfg.linkWords = words;
        HimaEngine engine(cfg);
        const Cycle cycles = engine.simulateStep().totalCycles;
        if (words == 8)
            base = static_cast<Real>(cycles);
        table.addRow({std::to_string(words), fmtCount(cycles), ""});
    }
    // Fill the ratio column in a second pass for alignment simplicity.
    table.print(std::cout);
    (void)base;
}

void
ablationLinkagePartition()
{
    std::cout << "\nAblation 4: linkage partition vs HiMA-DNC step "
                 "latency (Nt = 16)\n";
    Table table({"Partition (Nh x Nw)", "Cycles/step"});
    for (const Partition &p : enumeratePartitions(16)) {
        ArchConfig cfg = himaDncConfig(16);
        cfg.linkPartition = p;
        HimaEngine engine(cfg);
        table.addRow({std::to_string(p.blockRows) + "x" +
                          std::to_string(p.blockCols),
                      fmtCount(engine.simulateStep().totalCycles)});
    }
    table.print(std::cout);
    std::cout << "(the 4x4 optimum of Eq. 3 is also the engine-level "
                 "winner)\n";
}

} // namespace
} // namespace hima

int
main()
{
    hima::ablationStreamSharing();
    hima::ablationRouterCapacity();
    hima::ablationLinkWidth();
    hima::ablationLinkagePartition();
    return 0;
}
