/**
 * @file
 * Regenerates Fig. 5(d): normalized DNC speedup versus processing-tile
 * count for H-tree, binary tree, mesh, star and HiMA NoCs, plus HiMA
 * running DNC-D and the ideal (linear) line.
 *
 * Method: the HiMA engine simulates one DNC step at each (NoC, Nt)
 * point; speedup is the single-tile latency divided by the Nt-tile
 * latency. The fixed NoCs saturate once inter-tile traffic dominates
 * (the H-tree root serializes), HiMA's diagonals hold on longer, and
 * DNC-D tracks close to ideal because it eliminates inter-PT traffic —
 * the qualitative ordering of the paper's figure.
 */

#include <iostream>

#include "arch/engine.h"
#include "common/table.h"

namespace hima {
namespace {

Cycle
stepCycles(NocKind noc, Index tiles, bool distributed)
{
    ArchConfig cfg = himaDncConfig(tiles);
    cfg.noc = noc;
    cfg.multiModeRouting = (noc == NocKind::Hima);
    cfg.distributed = distributed;
    cfg.finalize();
    HimaEngine engine(cfg);
    return engine.simulateStep().totalCycles;
}

void
run()
{
    std::cout << "Fig. 5(d): speedup scalability by NoC topology "
                 "(normalized to Nt = 1)\n";

    const Index tileCounts[] = {1, 2, 4, 8, 16, 32, 64};
    struct Series
    {
        const char *name;
        NocKind noc;
        bool dncd;
    };
    const Series series[] = {
        {"H-Tree, DNC", NocKind::HTree, false},
        {"Bi-Tree, DNC", NocKind::BinaryTree, false},
        {"Mesh, DNC", NocKind::Mesh, false},
        {"Star, DNC", NocKind::Star, false},
        {"HiMA, DNC", NocKind::Hima, false},
        {"HiMA, DNC-D", NocKind::Hima, true},
    };

    std::vector<std::string> headers = {"PT count"};
    for (const Series &s : series)
        headers.push_back(s.name);
    headers.push_back("Ideal");
    Table table(headers);

    // Common normalization baseline: one tile, no meaningful NoC.
    const Cycle base = stepCycles(NocKind::Hima, 1, false);

    for (Index nt : tileCounts) {
        std::vector<std::string> row = {std::to_string(nt)};
        for (const Series &s : series) {
            const Cycle cycles = stepCycles(s.noc, nt, s.dncd);
            row.push_back(fmtRatio(static_cast<Real>(base) /
                                   static_cast<Real>(cycles)));
        }
        row.push_back(fmtRatio(static_cast<Real>(nt), 1));
        table.addRow(row);
    }
    table.print(std::cout);

    // The paper's headline observations, checked numerically.
    const Real htree64 = static_cast<Real>(base) /
                         static_cast<Real>(stepCycles(NocKind::HTree, 64,
                                                      false));
    const Real hima64 = static_cast<Real>(base) /
                        static_cast<Real>(stepCycles(NocKind::Hima, 64,
                                                     false));
    const Real dncd64 = static_cast<Real>(base) /
                        static_cast<Real>(stepCycles(NocKind::Hima, 64,
                                                     true));
    std::cout << "\nAt Nt = 64: H-tree " << fmtRatio(htree64) << ", HiMA "
              << fmtRatio(hima64) << ", HiMA DNC-D " << fmtRatio(dncd64)
              << " (paper: fixed NoCs saturate beyond ~8 tiles; HiMA "
                 "scales further; DNC-D is near-ideal)\n";
}

} // namespace
} // namespace hima

int
main()
{
    hima::run();
    return 0;
}
