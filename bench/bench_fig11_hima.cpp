/**
 * @file
 * Regenerates Fig. 11 (all panels) at Nt = 16:
 *   (a) inference speedup ladder over the HiMA-baseline as the
 *       architectural features stack, ending with DNC-D + skimming;
 *   (b) kernel runtime breakdown of HiMA-DNC and HiMA-DNC-D;
 *   (c) power ladder for the same feature steps;
 *   (d) kernel power breakdown;
 *   (e) silicon area and power table;
 *   (f) module power breakdown.
 */

#include <iostream>

#include "arch/engine.h"
#include "common/table.h"

namespace hima {
namespace {

struct LadderStep
{
    const char *name;
    ArchConfig cfg;
};

std::vector<LadderStep>
featureLadder()
{
    std::vector<LadderStep> ladder;
    ArchConfig baseline = himaBaselineConfig(16);
    ladder.push_back({"HiMA-baseline", baseline});

    ArchConfig sorted = baseline;
    sorted.twoStageSort = true;
    ladder.push_back({"+ 2-stage sort", sorted});

    ArchConfig noc = sorted;
    noc.noc = NocKind::Hima;
    noc.multiModeRouting = true;
    ladder.push_back({"+ HiMA-NoC", noc});

    ArchConfig submat = noc;
    submat.linkPartition = optimizeLinkagePartition(1024, 16);
    ladder.push_back({"+ Submat partition (= HiMA-DNC)", submat});

    ArchConfig dncd = submat;
    dncd.distributed = true;
    ladder.push_back({"DNC-D Nt=16", dncd});

    ArchConfig skim = dncd;
    skim.dnc.skimRate = 0.2;
    skim.dnc.approximateSoftmax = true;
    ladder.push_back({"+ K=20% skim & softmax approx (= HiMA-DNC-D)",
                      skim});
    return ladder;
}

void
panelA(const std::vector<LadderStep> &ladder)
{
    std::cout << "Fig. 11(a): inference speedup over HiMA-baseline\n";
    Table table({"Configuration", "Cycles/step", "us/test", "Speedup",
                 "Paper"});
    const char *paper[] = {"1.00x", "1.12x", "1.23x", "1.39x", "8.29x",
                           "8.42x"};
    Real base = 0.0;
    int i = 0;
    for (const LadderStep &step : ladder) {
        HimaEngine engine(step.cfg);
        const Cycle cycles = engine.simulateStep().totalCycles;
        HimaEngine engine2(step.cfg);
        const Real us = engine2.testLatencyUs();
        if (base == 0.0)
            base = static_cast<Real>(cycles);
        table.addRow({step.name, fmtCount(cycles), fmtReal(us, 2),
                      fmtRatio(base / static_cast<Real>(cycles)),
                      paper[i++]});
    }
    table.print(std::cout);
}

void
panelB(const ArchConfig &dnc, const ArchConfig &dncd)
{
    std::cout << "\nFig. 11(b): kernel runtime breakdown\n";
    HimaEngine ednc(dnc), edncd(dncd);
    const StepTiming a = ednc.simulateStep();
    const StepTiming b = edncd.simulateStep();

    Table table({"Category", "HiMA-DNC", "share", "HiMA-DNC-D", "share",
                 "Paper DNC", "Paper DNC-D"});
    const char *paperDnc[] = {"20%", "21%", "24%", "33%", "2%"};
    const char *paperDncd[] = {"21%", "28%", "19%", "20%", "12%"};
    for (int c = 0; c < static_cast<int>(KernelCategory::NumCategories);
         ++c) {
        const auto cat = static_cast<KernelCategory>(c);
        table.addRow(
            {categoryName(cat), fmtCount(a.categoryCycles(cat)),
             fmtPercent(static_cast<Real>(a.categoryCycles(cat)) /
                        static_cast<Real>(a.totalCycles)),
             fmtCount(b.categoryCycles(cat)),
             fmtPercent(static_cast<Real>(b.categoryCycles(cat)) /
                        static_cast<Real>(b.totalCycles)),
             paperDnc[c], paperDncd[c]});
    }
    table.print(std::cout);
    std::cout << "(paper: history-based write/read weighting dominate "
                 "DNC; DNC-D cuts both by ~87-89%)\n";
}

void
panelC(const std::vector<LadderStep> &ladder)
{
    std::cout << "\nFig. 11(c): normalized power vs HiMA-baseline\n";
    Table table({"Configuration", "Power (W)", "Normalized", "Paper"});
    const char *paper[] = {"1.000x", "1.091x", "1.130x", "0.991x",
                           "0.612x", "0.603x"};
    Real base = 0.0;
    int i = 0;
    for (const LadderStep &step : ladder) {
        HimaEngine engine(step.cfg);
        const Real watts = engine.power().totalW;
        if (base == 0.0)
            base = watts;
        table.addRow({step.name, fmtReal(watts, 2),
                      fmtRatio(watts / base, 3), paper[i++]});
    }
    table.print(std::cout);
}

void
panelD(const ArchConfig &dnc, const ArchConfig &dncd)
{
    std::cout << "\nFig. 11(d): kernel power breakdown\n";
    HimaEngine ednc(dnc), edncd(dncd);
    const PowerReport a = ednc.power();
    const PowerReport b = edncd.power();

    Real aTotal = 0.0, bTotal = 0.0;
    for (int c = 0; c < static_cast<int>(KernelCategory::NumCategories);
         ++c) {
        aTotal += a.categoryW[c];
        bTotal += b.categoryW[c];
    }

    Table table({"Category", "DNC (W)", "share", "DNC-D (W)", "share",
                 "Paper DNC", "Paper DNC-D"});
    const char *paperDnc[] = {"31%", "19%", "18%", "22%", "10%"};
    const char *paperDncd[] = {"27%", "25%", "6%", "25%", "16%"};
    for (int c = 0; c < static_cast<int>(KernelCategory::NumCategories);
         ++c) {
        const auto cat = static_cast<KernelCategory>(c);
        table.addRow({categoryName(cat), fmtReal(a.categoryW[c], 2),
                      fmtPercent(a.categoryW[c] / aTotal),
                      fmtReal(b.categoryW[c], 2),
                      fmtPercent(b.categoryW[c] / bTotal), paperDnc[c],
                      paperDncd[c]});
    }
    table.print(std::cout);
}

void
panelE(const ArchConfig &baselineCfg, const ArchConfig &dnc,
       const ArchConfig &dncd)
{
    std::cout << "\nFig. 11(e): silicon area and power (40 nm)\n";
    Table table({"Metric", "HiMA-baseline", "HiMA-DNC", "HiMA-DNC-D",
                 "Paper (base/DNC/DNC-D)"});
    HimaEngine eb(baselineCfg), ed(dnc), edd(dncd);
    const AreaReport ab = eb.area(), ad = ed.area(), add = edd.area();
    table.addRow({"PT (mm^2)", fmtReal(ab.ptMm2, 2), fmtReal(ad.ptMm2, 2),
                  fmtReal(add.ptMm2, 2), "4.92 / 5.01 / 4.22"});
    table.addRow({"PT Mem (mm^2)", fmtReal(ab.ptMemMm2, 2),
                  fmtReal(ad.ptMemMm2, 2), fmtReal(add.ptMemMm2, 2),
                  "2.07 / 2.07 / 1.53"});
    table.addRow({"CT (mm^2)", fmtReal(ab.ctMm2, 2), fmtReal(ad.ctMm2, 2),
                  fmtReal(add.ctMm2, 2), "0.43 / 0.52 / 0.18"});
    table.addRow({"Total (mm^2)", fmtReal(ab.totalMm2, 2),
                  fmtReal(ad.totalMm2, 2), fmtReal(add.totalMm2, 2),
                  "79.14 / 80.69 / 67.71"});
    table.addRow({"Power (W)", fmtReal(eb.power().totalW, 2),
                  fmtReal(ed.power().totalW, 2),
                  fmtReal(edd.power().totalW, 2),
                  "16.80 / 16.96 / 10.28"});
    table.print(std::cout);
}

void
panelF(const ArchConfig &dnc, const ArchConfig &dncd)
{
    std::cout << "\nFig. 11(f): module power breakdown\n";
    HimaEngine ednc(dnc), edncd(dncd);
    const ModuleEnergy a = ednc.power().modulePower;
    const ModuleEnergy b = edncd.power().modulePower;

    Table table({"Module", "DNC (W)", "share", "DNC-D (W)", "share",
                 "Paper DNC", "Paper DNC-D"});
    struct Row
    {
        const char *name;
        Real da, db;
        const char *pa, *pb;
    };
    const Row rows[] = {
        {"PT Mem. System", a.ptMemJ, b.ptMemJ, "28.7%", "30.6%"},
        {"PT M-M Engine", a.ptEngineJ, b.ptEngineJ, "47.8%", "52.4%"},
        {"PT Router", a.ptRouterJ, b.ptRouterJ, "9.0%", "0.24%"},
        {"PT Other Logic", a.ptOtherJ, b.ptOtherJ, "13.6%", "16.4%"},
        {"CT Logic", a.ctJ, b.ctJ, "0.9%", "0.35%"},
    };
    for (const Row &r : rows) {
        table.addRow({r.name, fmtReal(r.da, 2),
                      fmtPercent(r.da / a.total()), fmtReal(r.db, 2),
                      fmtPercent(r.db / b.total()), r.pa, r.pb});
    }
    table.print(std::cout);
    const Real routerCut = 1.0 - b.ptRouterJ / a.ptRouterJ;
    std::cout << "DNC-D router power cut: " << fmtPercent(routerCut)
              << " (paper: 98.4%)\n";
}

void
run()
{
    std::cout << "Fig. 11: HiMA speed, area and power at Nt = 16\n\n";
    const auto ladder = featureLadder();
    const ArchConfig &baselineCfg = ladder[0].cfg;
    const ArchConfig &dnc = ladder[3].cfg;  // HiMA-DNC
    const ArchConfig &dncd = ladder[5].cfg; // HiMA-DNC-D (skim+approx)

    panelA(ladder);
    panelB(dnc, dncd);
    panelC(ladder);
    panelD(dnc, dncd);
    panelE(baselineCfg, dnc, dncd);
    panelF(dnc, dncd);
}

} // namespace
} // namespace hima

int
main()
{
    hima::run();
    return 0;
}
