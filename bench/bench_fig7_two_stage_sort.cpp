/**
 * @file
 * Regenerates the Sec. 4.3 / Fig. 7 usage-sort comparison: the
 * centralized merge sort (N log2 N cycles) against HiMA's local-global
 * two-stage sort (6(P + D_DPBS) + n + D_PMS), sweeping N and Nt.
 *
 * Both sorters also run *functionally* on the same random usage vector
 * and their output permutations are verified identical before the cycle
 * numbers are reported — the speedup is not bought with a wrong sort.
 */

#include <iostream>

#include "common/random.h"
#include "common/table.h"
#include "sort/two_stage_sort.h"

namespace hima {
namespace {

void
run()
{
    std::cout << "Fig. 7 / Sec. 4.3: usage sort latency — centralized "
                 "merge sort vs two-stage sort\n";

    Table table({"N", "Nt", "Central cyc", "Stage1 (MDSA)",
                 "Stage2 (PMS)", "Two-stage cyc", "Speedup",
                 "Outputs match"});

    Rng rng(42);
    const Index configs[][2] = {{256, 4},  {512, 4},  {1024, 4},
                                {1024, 8}, {1024, 16}, {1024, 32},
                                {2048, 16}, {4096, 16}};
    for (const auto &cfgPair : configs) {
        const Index n = cfgPair[0];
        const Index nt = cfgPair[1];

        std::vector<SortRecord> input(n);
        for (Index i = 0; i < n; ++i)
            input[i] = {rng.uniform(), i};

        CentralizedSorter central;
        const SortResult refResult =
            central.sort(input, SortOrder::Ascending);

        TwoStageSorter twoStage(n, nt);
        const SortResult hwResult =
            twoStage.sort(input, SortOrder::Ascending);
        const TwoStageTiming timing = twoStage.modelTiming();

        const bool match = refResult.records == hwResult.records;
        table.addRow({std::to_string(n), std::to_string(nt),
                      fmtCount(refResult.cycles),
                      fmtCount(timing.localCycles),
                      fmtCount(timing.globalCycles),
                      fmtCount(timing.totalCycles),
                      fmtRatio(static_cast<Real>(refResult.cycles) /
                               static_cast<Real>(timing.totalCycles)),
                      match ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nPaper example: N = 1024, Nt = 4 -> "
                 "6*(16+5) + 256 + 7 = 389 cycles vs N log N = 10240 "
                 "(26.3x).\n";
    const TwoStageTiming t = TwoStageSorter(1024, 4).modelTiming();
    std::cout << "Measured: " << t.totalCycles << " cycles vs "
              << CentralizedSorter::modelCycles(1024) << " ("
              << fmtRatio(static_cast<Real>(
                              CentralizedSorter::modelCycles(1024)) /
                          static_cast<Real>(t.totalCycles))
              << ")\n";
}

} // namespace
} // namespace hima

int
main()
{
    hima::run();
    return 0;
}
