/**
 * @file
 * Batched-serving throughput benchmark: per-lane timesteps/sec of the
 * BatchedDnc engine vs batch size B in {1, 4, 16, 64}, against the
 * sequential one-Dnc-at-a-time baseline. Emits BENCH_batched.json so the
 * serving-throughput trajectory accumulates across PRs (CI uploads it as
 * an artifact; local single-core runs only show the weight-streaming and
 * overhead-amortization component of the win — the lane-parallel
 * component needs hardware threads).
 *
 * Before timing anything the harness cross-checks the engine bit-for-bit
 * against per-lane reference Dnc runs, the same refusal gate
 * bench_hot_path uses: never benchmark unequal computations.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_env.h"
#include "common/random.h"
#include "dnc/dnc.h"
#include "serve/batched_dnc.h"

namespace hima {
namespace {

DncConfig
serveConfig()
{
    // Paper-like word width and head count; N reduced from 1024 so the
    // B=64 point (64 lanes x N^2 linkage tiles) stays laptop-friendly.
    DncConfig cfg;
    cfg.memoryRows = 256;
    cfg.memoryWidth = 64;
    cfg.readHeads = 4;
    cfg.controllerSize = 256;
    cfg.inputSize = 64;
    cfg.outputSize = 64;
    return cfg;
}

/** Bit-exact refusal gate: engine lanes vs sequential reference runs. */
bool
crossCheck()
{
    DncConfig cfg = serveConfig();
    cfg.memoryRows = 64; // small: this is a correctness gate, not timing
    cfg.batchSize = 3;
    cfg.numThreads = 2;
    BatchedDnc engine(cfg, 42);
    std::vector<Dnc> refs;
    refs.reserve(cfg.batchSize);
    for (Index b = 0; b < cfg.batchSize; ++b)
        refs.emplace_back(cfg, 42);

    Rng rng(7);
    std::vector<Vector> outputs;
    for (int step = 0; step < 4; ++step) {
        std::vector<Vector> inputs;
        for (Index b = 0; b < cfg.batchSize; ++b)
            inputs.push_back(rng.normalVector(cfg.inputSize));
        engine.stepInto(inputs, outputs);
        for (Index b = 0; b < cfg.batchSize; ++b)
            if (!(refs[b].step(inputs[b]) == outputs[b]))
                return false;
    }
    return true;
}

struct BatchedResult
{
    Index batch;
    Index threads;
    double stepsPerSec;        ///< whole-batch steps/sec
    double perLaneStepsPerSec; ///< batch * stepsPerSec
    double speedup;            ///< per-lane vs sequential baseline
};

} // namespace
} // namespace hima

int
main()
{
    using namespace hima;

    if (!crossCheck()) {
        std::fprintf(stderr,
                     "FATAL: batched engine diverged from the reference "
                     "lanes — refusing to benchmark unequal computations\n");
        return 1;
    }
    std::printf("cross-check: batched lanes bit-identical to reference\n");

    const DncConfig base = serveConfig();
    const unsigned hw = std::thread::hardware_concurrency();

    // Rotating input batches keep the engine off a fixed point without
    // timing the generator.
    constexpr int kInputSets = 4;
    Rng rng(11);

    // Sequential baseline: one Dnc stepped the way a naive server would.
    double baseline = 0.0;
    {
        Dnc model(base, 1);
        std::vector<Vector> tokens;
        for (int i = 0; i < kInputSets; ++i)
            tokens.push_back(rng.normalVector(base.inputSize));
        long i = 0;
        baseline = benchStepsPerSecond(
            [&] { model.step(tokens[static_cast<std::size_t>(i++) %
                                    kInputSets]); },
            /*minSeconds=*/0.3);
        std::printf("sequential baseline: %10.1f steps/s (N=%zu)\n",
                    baseline, base.memoryRows);
    }

    std::vector<Index> threadSet = {1};
    const Index pooled = std::min<Index>(4, hw > 0 ? hw : 1);
    if (pooled > 1)
        threadSet.push_back(pooled);

    const std::vector<Index> batchSizes = {1, 4, 16, 64};
    std::vector<BatchedResult> results;
    for (Index threads : threadSet) {
        for (Index batch : batchSizes) {
            DncConfig cfg = base;
            cfg.batchSize = batch;
            cfg.numThreads = threads;
            BatchedDnc engine(cfg, 1);

            std::vector<std::vector<Vector>> batches;
            for (int s = 0; s < kInputSets; ++s) {
                std::vector<Vector> inputs;
                for (Index b = 0; b < batch; ++b)
                    inputs.push_back(rng.normalVector(cfg.inputSize));
                batches.push_back(std::move(inputs));
            }

            std::vector<Vector> outputs;
            long i = 0;
            const double rate = benchStepsPerSecond(
                [&] {
                    engine.stepInto(batches[static_cast<std::size_t>(i++) %
                                            kInputSets],
                                    outputs);
                },
                /*minSeconds=*/0.3);
            const double perLane = rate * static_cast<double>(batch);
            results.push_back(
                {batch, threads, rate, perLane, perLane / baseline});
            std::printf("B=%3zu threads=%zu  %10.1f batch-steps/s  "
                        "%10.1f lane-steps/s  %5.2fx vs sequential\n",
                        batch, threads, rate, perLane, perLane / baseline);
        }
    }

    double headline = 0.0;
    for (const BatchedResult &r : results)
        if (r.batch == 16 && r.speedup > headline)
            headline = r.speedup;

    FILE *json = std::fopen("BENCH_batched.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot open BENCH_batched.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    writeBenchContext(json);
    std::fprintf(json,
                 "  \"config\": {\"memory_rows\": %zu, \"memory_width\": "
                 "%zu, \"read_heads\": %zu, \"controller_size\": %zu},\n",
                 base.memoryRows, base.memoryWidth, base.readHeads,
                 base.controllerSize);
    std::fprintf(json, "  \"sequential_baseline_steps_per_sec\": %.2f,\n",
                 baseline);
    std::fprintf(json, "  \"batched\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BatchedResult &r = results[i];
        std::fprintf(json,
                     "    {\"batch\": %zu, \"threads\": %zu, "
                     "\"steps_per_sec\": %.2f, "
                     "\"per_lane_steps_per_sec\": %.2f, "
                     "\"speedup_vs_sequential\": %.3f}%s\n",
                     r.batch, r.threads, r.stepsPerSec,
                     r.perLaneStepsPerSec, r.speedup,
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"headline\": {\"b16_speedup\": %.3f}\n", headline);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_batched.json (best B=16 per-lane speedup "
                "%.2fx)\n",
                headline);
    return 0;
}
