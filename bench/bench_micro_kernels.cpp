/**
 * @file
 * google-benchmark microkernels for the primitive operations the paper's
 * kernels decompose into: exact vs PLA+LUT softmax, the sorter family,
 * content addressing, linkage update, forward/backward mat-vec, and a
 * full memory-unit step. These quantify host-side costs of the
 * functional model (the substrate every harness above runs on).
 */

#include <benchmark/benchmark.h>

#include "approx/softmax_approx.h"
#include "common/math_util.h"
#include "common/random.h"
#include "dnc/memory_unit.h"
#include "sort/centralized_sort.h"
#include "sort/two_stage_sort.h"

namespace hima {
namespace {

void
BM_SoftmaxExact(benchmark::State &state)
{
    Rng rng(1);
    const Vector x = rng.normalVector(state.range(0), 0.0, 3.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(softmax(x));
}
BENCHMARK(BM_SoftmaxExact)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_SoftmaxPla(benchmark::State &state)
{
    Rng rng(1);
    SoftmaxApprox approx(8);
    const Vector x = rng.normalVector(state.range(0), 0.0, 3.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(approx.eval(x));
}
BENCHMARK(BM_SoftmaxPla)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_CentralizedSort(benchmark::State &state)
{
    Rng rng(2);
    std::vector<SortRecord> recs(state.range(0));
    for (Index i = 0; i < recs.size(); ++i)
        recs[i] = {rng.uniform(), i};
    CentralizedSorter sorter;
    for (auto _ : state)
        benchmark::DoNotOptimize(sorter.sort(recs, SortOrder::Ascending));
}
BENCHMARK(BM_CentralizedSort)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_TwoStageSort(benchmark::State &state)
{
    Rng rng(3);
    std::vector<SortRecord> recs(state.range(0));
    for (Index i = 0; i < recs.size(); ++i)
        recs[i] = {rng.uniform(), i};
    TwoStageSorter sorter(recs.size(), 16);
    for (auto _ : state)
        benchmark::DoNotOptimize(sorter.sort(recs, SortOrder::Ascending));
}
BENCHMARK(BM_TwoStageSort)->Arg(1024)->Arg(4096);

void
BM_ContentAddressing(benchmark::State &state)
{
    Rng rng(4);
    const Index n = state.range(0);
    const Matrix mem = rng.normalMatrix(n, 64);
    const Vector key = rng.normalVector(64);
    ContentAddressing ca;
    for (auto _ : state)
        benchmark::DoNotOptimize(ca.weighting(mem, key, 5.0));
}
BENCHMARK(BM_ContentAddressing)->Arg(256)->Arg(1024);

void
BM_ContentAddressingCached(benchmark::State &state)
{
    // The allocation-free path with the row-norm cache the MemoryUnit
    // maintains: no per-call norm recompute, no temporaries.
    Rng rng(4);
    const Index n = state.range(0);
    const Matrix mem = rng.normalMatrix(n, 64);
    const Vector key = rng.normalVector(64);
    Vector norms(n);
    for (Index i = 0; i < n; ++i)
        norms[i] = rowNorm(mem, i);
    ContentAddressing ca;
    Vector scores, out;
    for (auto _ : state) {
        ca.weightingInto(mem, key, 5.0, &norms, scores, out);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ContentAddressingCached)->Arg(256)->Arg(1024);

void
BM_LinkageUpdate(benchmark::State &state)
{
    const Index n = state.range(0);
    TemporalLinkage tl(n);
    Rng rng(5);
    Vector w = rng.uniformVector(n);
    w = scale(w, 1.0 / w.sum());
    for (auto _ : state) {
        tl.updateLinkage(w);
        tl.updatePrecedence(w);
    }
}
BENCHMARK(BM_LinkageUpdate)->Arg(256)->Arg(1024);

void
BM_ForwardBackward(benchmark::State &state)
{
    const Index n = state.range(0);
    TemporalLinkage tl(n);
    Rng rng(6);
    Vector w = rng.uniformVector(n);
    w = scale(w, 1.0 / w.sum());
    tl.updateLinkage(w);
    tl.updatePrecedence(w);
    for (auto _ : state) {
        benchmark::DoNotOptimize(tl.forwardWeighting(w));
        benchmark::DoNotOptimize(tl.backwardWeighting(w));
    }
}
BENCHMARK(BM_ForwardBackward)->Arg(256)->Arg(1024);

void
BM_MemoryUnitStep(benchmark::State &state)
{
    DncConfig cfg;
    cfg.memoryRows = state.range(0);
    cfg.memoryWidth = 64;
    cfg.readHeads = 4;
    MemoryUnit mu(cfg);
    Rng rng(7);

    InterfaceVector iface;
    iface.readKeys.assign(cfg.readHeads, rng.normalVector(64));
    iface.readStrengths.assign(cfg.readHeads, 5.0);
    iface.writeKey = rng.normalVector(64);
    iface.writeStrength = 5.0;
    iface.eraseVector = Vector(64, 0.5);
    iface.writeVector = rng.normalVector(64);
    iface.freeGates.assign(cfg.readHeads, 0.1);
    iface.allocationGate = 0.9;
    iface.writeGate = 1.0;
    iface.readModes.assign(cfg.readHeads, ReadMode{0.1, 0.8, 0.1});

    for (auto _ : state)
        benchmark::DoNotOptimize(mu.step(iface));
}
BENCHMARK(BM_MemoryUnitStep)->Arg(256)->Arg(1024);

void
BM_MemoryUnitStepInto(benchmark::State &state)
{
    // The zero-steady-state-allocation path: the readout and every
    // temporary are reused across steps.
    DncConfig cfg;
    cfg.memoryRows = state.range(0);
    cfg.memoryWidth = 64;
    cfg.readHeads = 4;
    MemoryUnit mu(cfg);
    Rng rng(7);

    InterfaceVector iface;
    iface.readKeys.assign(cfg.readHeads, rng.normalVector(64));
    iface.readStrengths.assign(cfg.readHeads, 5.0);
    iface.writeKey = rng.normalVector(64);
    iface.writeStrength = 5.0;
    iface.eraseVector = Vector(64, 0.5);
    iface.writeVector = rng.normalVector(64);
    iface.freeGates.assign(cfg.readHeads, 0.1);
    iface.allocationGate = 0.9;
    iface.writeGate = 1.0;
    iface.readModes.assign(cfg.readHeads, ReadMode{0.1, 0.8, 0.1});

    MemoryReadout out;
    for (auto _ : state) {
        mu.stepInto(iface, out);
        benchmark::DoNotOptimize(out.writeWeighting.data());
    }
}
BENCHMARK(BM_MemoryUnitStepInto)->Arg(256)->Arg(1024);

} // namespace
} // namespace hima
