/**
 * @file
 * Hot-path throughput benchmark: wall-clock timesteps/sec of the DNC
 * memory unit, comparing the pre-refactor ("legacy") kernels against
 * the allocation-free destination-passing path, plus DNC-D tile
 * scaling on the thread pool. Emits BENCH_hot_path.json so the perf
 * trajectory is tracked across PRs.
 *
 * The legacy path is a faithful replica of the seed implementation:
 * bounds-checked element accessors, value-returning kernels that
 * allocate every temporary, and per-head O(N*W) row-norm recomputes in
 * content addressing. Both paths implement identical math — the bench
 * cross-checks them bit-for-bit before timing, and likewise gates the
 * active-row sparse linkage sweep against a forced-dense sweep before
 * timing the linkageSkipThreshold sections.
 *
 * `--smoke` runs both cross-check gates plus a reduced grid (small N,
 * short sweeps) — the sanitizer CI job's configuration.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_env.h"
#include "common/math_util.h"
#include "common/random.h"
#include "dnc/dncd.h"
#include "dnc/memory_unit.h"
#include "workload/retrieval.h"
#include "workload/task_suite.h"

namespace hima {
namespace {

// --------------------------------------------------------------------
// Legacy replica of the seed memory unit (pre-refactor kernels).
// --------------------------------------------------------------------
namespace legacy {

Vector
matVec(const Matrix &m, const Vector &x)
{
    Vector y(m.rows());
    for (Index r = 0; r < m.rows(); ++r) {
        Real acc = 0.0;
        for (Index c = 0; c < m.cols(); ++c)
            acc += m(r, c) * x[c];
        y[r] = acc;
    }
    return y;
}

Vector
matTVec(const Matrix &m, const Vector &x)
{
    Vector y(m.cols());
    for (Index r = 0; r < m.rows(); ++r) {
        const Real xv = x[r];
        for (Index c = 0; c < m.cols(); ++c)
            y[c] += m(r, c) * xv;
    }
    return y;
}

Vector
contentWeighting(const Matrix &memory, const Vector &key, Real strength)
{
    const Index n = memory.rows();
    const Index w = memory.cols();
    Vector rowNorms(n);
    for (Index i = 0; i < n; ++i) {
        Real acc = 0.0;
        for (Index c = 0; c < w; ++c) {
            const Real v = memory(i, c);
            acc += v * v;
        }
        rowNorms[i] = std::sqrt(acc);
    }
    const Real keyNorm = key.norm();
    constexpr Real eps = 1e-6;
    Vector scores(n);
    for (Index i = 0; i < n; ++i) {
        Real acc = 0.0;
        for (Index c = 0; c < w; ++c)
            acc += memory(i, c) * key[c];
        scores[i] = strength * acc / (rowNorms[i] * keyNorm + eps);
    }
    return softmax(scores);
}

/** The seed MemoryUnit dataflow, allocation-per-kernel. */
struct MemoryUnitSim
{
    explicit MemoryUnitSim(const DncConfig &config)
        : cfg(config), memory(cfg.memoryRows, cfg.memoryWidth),
          usage(cfg.memoryRows), linkage(cfg.memoryRows, cfg.memoryRows),
          precedence(cfg.memoryRows), writeWeighting(cfg.memoryRows),
          readWeightings(cfg.readHeads, Vector(cfg.memoryRows))
    {}

    MemoryReadout
    step(const InterfaceVector &iface)
    {
        const Index n = cfg.memoryRows;
        const Index w = cfg.memoryWidth;

        // CW: content write weighting (norms recomputed from scratch).
        const Vector contentW =
            contentWeighting(memory, iface.writeKey, iface.writeStrength);

        // HW: retention, usage, sort, allocation.
        Vector psi(n, 1.0);
        for (Index r = 0; r < readWeightings.size(); ++r) {
            const Real gate = iface.freeGates[r];
            for (Index i = 0; i < n; ++i)
                psi[i] *= 1.0 - gate * readWeightings[r][i];
        }
        Vector newUsage(n);
        for (Index i = 0; i < n; ++i) {
            const Real u = usage[i];
            const Real wv = writeWeighting[i];
            newUsage[i] = (u + wv - u * wv) * psi[i];
        }
        usage = newUsage;

        std::vector<SortRecord> records;
        records.reserve(n);
        for (Index i = 0; i < n; ++i)
            records.push_back({usage[i], i});
        const SortResult sorted =
            referenceUsageSort(records, SortOrder::Ascending);
        Vector alloc(n, 0.0);
        Real runningProduct = 1.0;
        for (const SortRecord &rec : sorted.records) {
            alloc[rec.idx] = (1.0 - rec.key) * runningProduct;
            runningProduct *= rec.key;
        }

        // WM: gate merge.
        Vector ww(n);
        const Real ga = iface.allocationGate;
        const Real gw = iface.writeGate;
        for (Index i = 0; i < n; ++i)
            ww[i] = gw * (ga * alloc[i] + (1.0 - ga) * contentW[i]);

        // MW: erase + add, row at a time.
        for (Index i = 0; i < n; ++i) {
            const Real wi = ww[i];
            if (wi == 0.0)
                continue;
            for (Index c = 0; c < w; ++c)
                memory(i, c) = memory(i, c) * (1.0 - wi * iface.eraseVector[c])
                             + wi * iface.writeVector[c];
        }

        // HR.(1)-(2): linkage then precedence.
        for (Index i = 0; i < n; ++i) {
            const Real wi = ww[i];
            for (Index j = 0; j < n; ++j) {
                if (i == j) {
                    linkage(i, j) = 0.0;
                    continue;
                }
                linkage(i, j) = (1.0 - wi - ww[j]) * linkage(i, j)
                              + wi * precedence[j];
            }
        }
        const Real keep = 1.0 - ww.sum();
        for (Index i = 0; i < n; ++i)
            precedence[i] = keep * precedence[i] + ww[i];
        writeWeighting = ww;

        MemoryReadout out;
        out.writeWeighting = ww;
        for (Index head = 0; head < cfg.readHeads; ++head) {
            const Vector fwd = legacy::matVec(linkage, readWeightings[head]);
            const Vector bwd = legacy::matTVec(linkage, readWeightings[head]);
            const Vector content = contentWeighting(
                memory, iface.readKeys[head], iface.readStrengths[head]);
            Vector weighting(n);
            const ReadMode &mode = iface.readModes[head];
            for (Index i = 0; i < n; ++i) {
                weighting[i] = mode.backward * bwd[i]
                             + mode.content * content[i]
                             + mode.forward * fwd[i];
            }
            Vector readVector = legacy::matTVec(memory, weighting);
            readWeightings[head] = weighting;
            out.readWeightings.push_back(std::move(weighting));
            out.readVectors.push_back(std::move(readVector));
        }
        return out;
    }

    DncConfig cfg;
    Matrix memory;
    Vector usage;
    Matrix linkage;
    Vector precedence;
    Vector writeWeighting;
    std::vector<Vector> readWeightings;
};

} // namespace legacy

// --------------------------------------------------------------------
// Harness.
// --------------------------------------------------------------------

DncConfig
benchConfig(Index n)
{
    DncConfig cfg;
    cfg.memoryRows = n;
    cfg.memoryWidth = 64;
    cfg.readHeads = 4;
    return cfg;
}

InterfaceVector
benchIface(const DncConfig &cfg, Rng &rng)
{
    InterfaceVector iface;
    iface.readKeys.clear();
    for (Index h = 0; h < cfg.readHeads; ++h)
        iface.readKeys.push_back(rng.normalVector(cfg.memoryWidth));
    iface.readStrengths.assign(cfg.readHeads, 5.0);
    iface.writeKey = rng.normalVector(cfg.memoryWidth);
    iface.writeStrength = 5.0;
    iface.eraseVector = Vector(cfg.memoryWidth, 0.5);
    iface.writeVector = rng.normalVector(cfg.memoryWidth);
    iface.freeGates.assign(cfg.readHeads, 0.1);
    iface.allocationGate = 0.9;
    iface.writeGate = 1.0;
    iface.readModes.assign(cfg.readHeads, ReadMode{0.1, 0.8, 0.1});
    return iface;
}

/** Bit-exact cross-check of the legacy replica vs the optimized path. */
bool
crossCheck()
{
    const DncConfig cfg = benchConfig(256);
    legacy::MemoryUnitSim legacySim(cfg);
    MemoryUnit optimized(cfg);
    MemoryReadout optOut;
    Rng rng(42);
    for (int step = 0; step < 4; ++step) {
        const InterfaceVector iface = benchIface(cfg, rng);
        const MemoryReadout a = legacySim.step(iface);
        optimized.stepInto(iface, optOut);
        for (Index h = 0; h < cfg.readHeads; ++h) {
            if (!(a.readVectors[h] == optOut.readVectors[h]) ||
                !(a.readWeightings[h] == optOut.readWeightings[h]))
                return false;
        }
        if (!(a.writeWeighting == optOut.writeWeighting))
            return false;
    }
    return true;
}

/**
 * Bit-exact cross-check of the active-row sparse linkage sweep at
 * threshold 0 against a forced dense sweep, over both regimes: the
 * early-episode allocation traffic the sparse path is built for (one-
 * hot writes, most rows never touched) and mixed soft traffic with
 * episode resets. Compares readouts and the full linkage state every
 * step; the bench refuses to time if a single bit differs.
 */
bool
sparseDenseGate()
{
    const DncConfig sparseCfg = benchConfig(256);
    DncConfig denseCfg = sparseCfg;
    denseCfg.linkageDenseSweep = true;
    MemoryUnit sparse(sparseCfg);
    MemoryUnit dense(denseCfg);
    MemoryReadout a, b;
    Rng rng(99);
    for (int episode = 0; episode < 3; ++episode) {
        sparse.reset();
        dense.reset();
        for (int t = 0; t < 40; ++t) {
            InterfaceVector iface = benchIface(sparseCfg, rng);
            if (episode == 0) {
                // Early-episode regime: pure allocation-gated writes.
                iface.allocationGate = 1.0;
                iface.writeGate = 1.0;
            } else {
                iface.allocationGate = rng.uniform();
                iface.writeGate = rng.uniform(0.3, 1.0);
            }
            sparse.stepInto(iface, a);
            dense.stepInto(iface, b);
            for (Index h = 0; h < sparseCfg.readHeads; ++h) {
                if (!(a.readVectors[h] == b.readVectors[h]) ||
                    !(a.readWeightings[h] == b.readWeightings[h]))
                    return false;
            }
            if (!(a.writeWeighting == b.writeWeighting))
                return false;
            if (!(sparse.linkage().linkage() == dense.linkage().linkage()) ||
                !(sparse.linkage().precedence() ==
                  dense.linkage().precedence()))
                return false;
        }
    }
    return true;
}

struct SingleTileResult
{
    Index n;
    double legacyStepsPerSec;
    double optimizedStepsPerSec;
    double speedup;
};

struct DncdResult
{
    Index n;
    Index tiles;
    Index threads;
    double stepsPerSec;
};

// --------------------------------------------------------------------
// Exactness-vs-speed knob (Fig. 10-style): sweep writeSkipThreshold,
// reporting memory-unit timesteps/s at the paper's N alongside the
// retrieval-task error-rate delta vs the exact (threshold 0) run.
// --------------------------------------------------------------------

struct SkipResult
{
    Real threshold;
    double stepsPerSec;  ///< MemoryUnit stepInto at N=1024
    double errorRate;    ///< mean over the retrieval task subset
    double errorDelta;   ///< errorRate - exact baseline
    double cosineMargin; ///< mean correct-answer margin (continuous)
    double marginDelta;  ///< cosineMargin - exact baseline
    double readRms;      ///< read-vector RMS divergence on soft traffic
};

/**
 * Mean retrieval-task error rate and cosine margin for a Dnc built
 * from `cfg`: the shared accuracy leg of the writeSkipThreshold and
 * linkageSkipThreshold sweeps (fewer episodes under --smoke).
 */
std::pair<double, double>
retrievalAccuracy(const DncConfig &cfg, bool smoke)
{
    Dnc model(cfg, 3);
    TokenCodebook keys(64, cfg.memoryWidth / 2, 1);
    TokenCodebook values(64, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);
    Rng episodeRng(11);
    const auto suite = taskSuite();
    const Index tasks = smoke ? 2 : 8;
    double err = 0.0;
    double margin = 0.0;
    for (Index t = 0; t < tasks; ++t) {
        const Episode ep = makeEpisode(suite[t], 64, episodeRng);
        const EpisodeResult res = runEpisode(model, scripter, ep);
        err += res.errorRate();
        margin += res.meanScore;
    }
    return {err / static_cast<double>(tasks),
            margin / static_cast<double>(tasks)};
}

/**
 * State-level exactness loss: lockstep a skipping MemoryUnit against an
 * exact one on randomized *soft* traffic (mixed content/allocation
 * writes, spread weightings — where sub-threshold rows actually carry
 * mass) and report the RMS divergence of the read vectors. This is the
 * knob's true error signal; the scripted retrieval tasks above sit in
 * the one-hot regime where it never surfaces as task error.
 */
double
readDivergence(const DncConfig &skipCfg)
{
    DncConfig exactCfg = benchConfig(skipCfg.memoryRows);
    MemoryUnit exact(exactCfg);
    MemoryUnit skip(skipCfg);
    MemoryReadout outA, outB;
    Rng rng(77);
    double sumSq = 0.0;
    std::uint64_t count = 0;
    for (int step = 0; step < 50; ++step) {
        InterfaceVector iface = benchIface(exactCfg, rng);
        iface.allocationGate = rng.uniform(); // mix content-heavy writes
        iface.writeGate = rng.uniform(0.3, 1.0);
        exact.stepInto(iface, outA);
        skip.stepInto(iface, outB);
        for (Index h = 0; h < exactCfg.readHeads; ++h) {
            for (Index i = 0; i < exactCfg.memoryWidth; ++i) {
                const double d =
                    outA.readVectors[h][i] - outB.readVectors[h][i];
                sumSq += d * d;
                ++count;
            }
        }
    }
    return std::sqrt(sumSq / static_cast<double>(count));
}

std::vector<SkipResult>
writeSkipSweep(bool smoke)
{
    const std::vector<Real> thresholds =
        smoke ? std::vector<Real>{0.0, 1e-6}
              : std::vector<Real>{0.0, 1e-12, 1e-9, 1e-6, 1e-4, 1e-2, 0.2};
    std::vector<SkipResult> results;
    double baseErr = 0.0;
    double baseMargin = 0.0;
    for (Real th : thresholds) {
        // Throughput leg: the same N=1024 hot loop the headline uses.
        DncConfig cfg = benchConfig(smoke ? 256 : 1024);
        cfg.writeSkipThreshold = th;
        Rng rng(7);
        const InterfaceVector iface = benchIface(cfg, rng);
        MemoryUnit mu(cfg);
        MemoryReadout out;
        const double rate =
            benchStepsPerSecond([&] { mu.stepInto(iface, out); });

        // Accuracy leg: scripted retrieval episodes from the task suite
        // through a full Dnc with the same knob.
        DncConfig acc = benchConfig(256);
        acc.writeSkipThreshold = th;
        const auto [err, margin] = retrievalAccuracy(acc, smoke);
        if (th == 0.0) {
            baseErr = err;
            baseMargin = margin;
        }
        DncConfig div = benchConfig(256);
        div.writeSkipThreshold = th;
        const double rms = readDivergence(div);
        results.push_back({th, rate, err, err - baseErr, margin,
                           margin - baseMargin, rms});
        std::printf("writeSkip %.0e  %10.1f steps/s  error %.4f "
                    "(delta %+.4f)  margin %.5f  read RMS div %.2e\n",
                    th, rate, err, err - baseErr, margin, rms);
    }
    return results;
}

// --------------------------------------------------------------------
// Active-row linkage sweep (the PR's tentpole): throughput of the
// sparse O(A*N) sweep vs the forced-dense O(N^2) one on the regime it
// targets — early-episode serving, where allocation-gated writes are
// one-hot and A stays <= N/4 — plus a linkageSkipThreshold exactness
// sweep in the same Fig. 10 style as writeSkipThreshold above.
// --------------------------------------------------------------------

struct LinkSkipResult
{
    Real threshold;
    double earlyStepsPerSec;   ///< episodic allocation traffic, A <= N/4
    double earlySpeedup;       ///< vs the forced-dense baseline
    double meanActiveRows;     ///< measured A over the early-episode run
    double steadyStepsPerSec;  ///< soft traffic, no resets (dense regime)
    double errorRate;          ///< mean over the retrieval task subset
    double errorDelta;         ///< errorRate - exact baseline
    double readRms;            ///< read-vector RMS divergence, soft traffic
};

/**
 * Timesteps/s of an early-episode serving loop at `cfg`'s N: pure
 * allocation-gated writes with an episode reset every `episodeLen`
 * steps, so at most episodeLen slots ever hold linkage mass. Also
 * reports the measured mean active rows per step via the profiler's
 * skipped-row counters.
 */
double
earlyEpisodeRate(const DncConfig &cfg, Index episodeLen, double *meanActive,
                 double *readSkippedPerScore = nullptr)
{
    Rng rng(7);
    InterfaceVector iface = benchIface(cfg, rng);
    iface.allocationGate = 1.0; // one-hot allocation writes
    iface.writeGate = 1.0;
    MemoryUnit mu(cfg);
    MemoryReadout out;
    long stepCount = 0;
    const double rate = benchStepsPerSecond([&] {
        if (stepCount % static_cast<long>(episodeLen) == 0)
            mu.reset();
        ++stepCount;
        mu.stepInto(iface, out);
    });
    const KernelCounters &link = mu.profiler().at(Kernel::Linkage);
    const double skippedPerStep =
        link.invocations == 0
            ? 0.0
            : static_cast<double>(link.skippedRows) /
                  static_cast<double>(link.invocations);
    *meanActive = static_cast<double>(cfg.memoryRows) - skippedPerStep;
    if (readSkippedPerScore) {
        // Mean zero-norm rows the read stage skipped per scored content
        // weighting (the write CW plus R read CRs each count one).
        const KernelCounters &sim = mu.profiler().at(Kernel::Similarity);
        *readSkippedPerScore =
            sim.invocations == 0
                ? 0.0
                : static_cast<double>(sim.skippedRows) /
                      static_cast<double>(sim.invocations);
    }
    return rate;
}

struct ActiveCurvePoint
{
    Index n;
    Index episodeLen;
    double meanActiveRows;
    double sparseStepsPerSec;
    double denseStepsPerSec;
    double speedup;
};

/**
 * Measured A-vs-N curve at threshold 0: for each memory size, the mean
 * active-row count and the sparse-vs-dense throughput on the same
 * early-episode workload (episodes of N/4 steps).
 */
std::vector<ActiveCurvePoint>
activeRowsCurve(bool smoke)
{
    const std::vector<Index> ns = smoke ? std::vector<Index>{64, 256}
                                        : std::vector<Index>{256, 1024, 4096};
    std::vector<ActiveCurvePoint> curve;
    for (Index n : ns) {
        const Index episodeLen = n / 4;
        DncConfig sparseCfg = benchConfig(n);
        double meanActive = 0.0;
        const double sparse =
            earlyEpisodeRate(sparseCfg, episodeLen, &meanActive);
        DncConfig denseCfg = benchConfig(n);
        denseCfg.linkageDenseSweep = true;
        double denseActive = 0.0;
        const double dense =
            earlyEpisodeRate(denseCfg, episodeLen, &denseActive);
        curve.push_back(
            {n, episodeLen, meanActive, sparse, dense, sparse / dense});
        std::printf("activeRows N=%5zu  mean A %7.1f  sparse %10.1f "
                    "steps/s  dense %10.1f steps/s  speedup %.2fx\n",
                    n, meanActive, sparse, dense, sparse / dense);
    }
    return curve;
}

std::vector<LinkSkipResult>
linkageSkipSweep(bool smoke, double *denseEarlyRate, Index *sweepRows,
                 Index *episodeLenOut)
{
    const Index n = smoke ? 256 : 1024;
    const Index episodeLen = n / 4; // A <= N/4 by construction
    *sweepRows = n;
    *episodeLenOut = episodeLen;

    // Dense baseline: same workload, skipping disabled.
    double denseActive = 0.0;
    DncConfig denseCfg = benchConfig(n);
    denseCfg.linkageDenseSweep = true;
    *denseEarlyRate = earlyEpisodeRate(denseCfg, episodeLen, &denseActive);
    std::printf("linkageSweep dense    %10.1f steps/s (early-episode "
                "N=%zu, episode %zu)\n",
                *denseEarlyRate, n, episodeLen);

    const std::vector<Real> thresholds =
        smoke ? std::vector<Real>{0.0, 1e-6}
              : std::vector<Real>{0.0, 1e-9, 1e-6, 1e-4, 1e-2};
    std::vector<LinkSkipResult> results;
    double baseErr = 0.0;
    for (Real th : thresholds) {
        DncConfig cfg = benchConfig(n);
        cfg.linkageSkipThreshold = th;
        double meanActive = 0.0;
        const double early = earlyEpisodeRate(cfg, episodeLen, &meanActive);

        // Steady-state soft traffic: every row active at threshold 0,
        // so this leg shows the no-regression side of the knob.
        Rng rng(7);
        const InterfaceVector iface = benchIface(cfg, rng);
        MemoryUnit mu(cfg);
        MemoryReadout out;
        const double steady =
            benchStepsPerSecond([&] { mu.stepInto(iface, out); });

        DncConfig acc = benchConfig(256);
        acc.linkageSkipThreshold = th;
        const auto [err, margin] = retrievalAccuracy(acc, smoke);
        (void)margin;
        if (th == 0.0)
            baseErr = err;
        DncConfig div = benchConfig(256);
        div.linkageSkipThreshold = th;
        const double rms = readDivergence(div);

        results.push_back({th, early, early / *denseEarlyRate, meanActive,
                           steady, err, err - baseErr, rms});
        std::printf("linkageSweep %.0e  early %10.1f steps/s (%.2fx, "
                    "mean A %.1f)  steady %10.1f steps/s  error %.4f "
                    "(delta %+.4f)  read RMS div %.2e\n",
                    th, early, early / *denseEarlyRate, meanActive, steady,
                    err, err - baseErr, rms);
    }
    return results;
}

struct ReadSkipResult
{
    Index n;
    Real threshold;
    double earlyStepsPerSec;
    double earlySpeedup;        ///< vs the forced-dense baseline at this N
    double meanActiveRows;      ///< linkage-sweep active rows
    double meanReadSkippedRows; ///< zero-norm rows skipped per content score
};

/**
 * Read-stage rows of the sparsity sweep: the threshold drives the whole
 * pipeline (content-score norm skip, sparse memory read and the
 * column-sparse linkage sweeps together, as the knobs ship) against the
 * forced-dense baseline on the same early-episode workload.
 */
std::vector<ReadSkipResult>
readSkipSweep(bool smoke)
{
    const std::vector<Index> ns = smoke ? std::vector<Index>{64, 256}
                                        : std::vector<Index>{1024, 4096};
    const std::vector<Real> thresholds = {0.0, 1e-2};
    std::vector<ReadSkipResult> rows;
    for (Index n : ns) {
        const Index episodeLen = n / 4;
        DncConfig denseCfg = benchConfig(n);
        denseCfg.linkageDenseSweep = true;
        double denseActive = 0.0;
        const double dense =
            earlyEpisodeRate(denseCfg, episodeLen, &denseActive);
        for (Real th : thresholds) {
            DncConfig cfg = benchConfig(n);
            cfg.readSkipThreshold = th;
            cfg.linkageSkipThreshold = th;
            double meanActive = 0.0;
            double readSkipped = 0.0;
            const double early =
                earlyEpisodeRate(cfg, episodeLen, &meanActive, &readSkipped);
            rows.push_back(
                {n, th, early, early / dense, meanActive, readSkipped});
            std::printf("readSweep N=%5zu th=%.0e  early %10.1f steps/s "
                        "(%.2fx vs dense %.1f)  mean A %.1f  read-skip "
                        "%.1f rows/score\n",
                        n, th, early, early / dense, dense, meanActive,
                        readSkipped);
        }
    }
    return rows;
}

} // namespace
} // namespace hima

int
main(int argc, char **argv)
{
    using namespace hima;

    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    if (!crossCheck()) {
        std::fprintf(stderr,
                     "FATAL: legacy and optimized paths diverged — "
                     "refusing to benchmark unequal computations\n");
        return 1;
    }
    std::printf("cross-check: legacy and optimized paths bit-identical\n");

    if (!sparseDenseGate()) {
        std::fprintf(stderr,
                     "FATAL: sparse linkage sweep diverged from the dense "
                     "sweep at threshold 0 — refusing to benchmark\n");
        return 1;
    }
    std::printf("cross-check: sparse and dense linkage sweeps "
                "bit-identical at threshold 0\n");

    const std::vector<Index> sizes =
        smoke ? std::vector<Index>{64, 256}
              : std::vector<Index>{64, 256, 1024, 4096};
    std::vector<SingleTileResult> single;
    for (Index n : sizes) {
        const DncConfig cfg = benchConfig(n);
        Rng rng(7);
        const InterfaceVector iface = benchIface(cfg, rng);

        legacy::MemoryUnitSim legacySim(cfg);
        const double legacyRate = benchStepsPerSecond(
            [&] { legacySim.step(iface); });

        MemoryUnit mu(cfg);
        MemoryReadout out;
        const double optRate = benchStepsPerSecond(
            [&] { mu.stepInto(iface, out); });

        single.push_back({n, legacyRate, optRate, optRate / legacyRate});
        std::printf("N=%5zu  legacy %10.1f steps/s   optimized %10.1f "
                    "steps/s   speedup %.2fx\n",
                    n, legacyRate, optRate, optRate / legacyRate);
    }

    const std::vector<Index> tileCounts =
        smoke ? std::vector<Index>{1} : std::vector<Index>{1, 4, 16};
    const std::vector<Index> threadCounts =
        smoke ? std::vector<Index>{1} : std::vector<Index>{1, 4};
    std::vector<DncdResult> dncd;
    const Index dncdRows = 1024;
    for (Index tiles : tileCounts) {
        for (Index threads : threadCounts) {
            DncConfig cfg = benchConfig(dncdRows);
            cfg.numThreads = threads;
            DncD model(cfg, tiles);
            Rng rng(11);
            const InterfaceVector iface = benchIface(cfg, rng);
            const double rate = benchStepsPerSecond(
                [&] { model.stepInterface(iface); });
            dncd.push_back({dncdRows, tiles, threads, rate});
            std::printf("DNC-D N=%zu tiles=%2zu threads=%zu  %10.1f "
                        "steps/s\n",
                        dncdRows, tiles, threads, rate);
        }
    }

    double scaling16 = 0.0;
    {
        double t1 = 0.0, t4 = 0.0;
        for (const DncdResult &r : dncd) {
            if (r.tiles == 16 && r.threads == 1)
                t1 = r.stepsPerSec;
            if (r.tiles == 16 && r.threads == 4)
                t4 = r.stepsPerSec;
        }
        if (t1 > 0.0)
            scaling16 = t4 / t1;
    }

    std::printf("\nwriteSkipThreshold exactness-vs-speed sweep "
                "(Fig. 10-style):\n");
    const std::vector<SkipResult> skips = writeSkipSweep(smoke);

    std::printf("\nlinkageSkipThreshold active-row sweep:\n");
    double denseEarlyRate = 0.0;
    Index sweepRows = 0;
    Index sweepEpisodeLen = 0;
    const std::vector<LinkSkipResult> linkSkips =
        linkageSkipSweep(smoke, &denseEarlyRate, &sweepRows,
                         &sweepEpisodeLen);

    std::printf("\nread-stage sparsity sweep (early-episode):\n");
    const std::vector<ReadSkipResult> readSkips = readSkipSweep(smoke);

    std::printf("\nactive rows vs N (threshold 0, early-episode):\n");
    const std::vector<ActiveCurvePoint> curve = activeRowsCurve(smoke);

    double headline = 0.0;
    for (const SingleTileResult &r : single)
        if (r.n == 1024)
            headline = r.speedup;

    FILE *json = std::fopen("BENCH_hot_path.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot open BENCH_hot_path.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    writeBenchContext(json);
    std::fprintf(json, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(json,
                 "  \"config\": {\"memory_width\": 64, \"read_heads\": 4},\n");
    std::fprintf(json, "  \"single_tile\": [\n");
    for (std::size_t i = 0; i < single.size(); ++i) {
        const SingleTileResult &r = single[i];
        std::fprintf(json,
                     "    {\"n\": %zu, \"legacy_steps_per_sec\": %.2f, "
                     "\"optimized_steps_per_sec\": %.2f, "
                     "\"speedup\": %.3f}%s\n",
                     r.n, r.legacyStepsPerSec, r.optimizedStepsPerSec,
                     r.speedup, i + 1 < single.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"dncd\": [\n");
    for (std::size_t i = 0; i < dncd.size(); ++i) {
        const DncdResult &r = dncd[i];
        std::fprintf(json,
                     "    {\"n\": %zu, \"tiles\": %zu, \"threads\": %zu, "
                     "\"steps_per_sec\": %.2f}%s\n",
                     r.n, r.tiles, r.threads, r.stepsPerSec,
                     i + 1 < dncd.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"dncd_thread_scaling_16_tiles\": "
                 "{\"threads4_over_threads1\": %.3f},\n",
                 scaling16);
    std::fprintf(json, "  \"write_skip_sweep\": [\n");
    for (std::size_t i = 0; i < skips.size(); ++i) {
        const SkipResult &r = skips[i];
        std::fprintf(json,
                     "    {\"threshold\": %.0e, "
                     "\"steps_per_sec_n1024\": %.2f, "
                     "\"retrieval_error_rate\": %.5f, "
                     "\"error_delta_vs_exact\": %.5f, "
                     "\"mean_cosine_margin\": %.6f, "
                     "\"margin_delta_vs_exact\": %.6f, "
                     "\"read_rms_divergence\": %.3e}%s\n",
                     r.threshold, r.stepsPerSec, r.errorRate, r.errorDelta,
                     r.cosineMargin, r.marginDelta, r.readRms,
                     i + 1 < skips.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"linkage_dense_baseline\": {\"n\": %zu, "
                 "\"episode_len\": %zu, \"early_steps_per_sec\": %.2f},\n",
                 sweepRows, sweepEpisodeLen, denseEarlyRate);
    std::fprintf(json, "  \"linkage_skip_sweep\": [\n");
    for (std::size_t i = 0; i < linkSkips.size(); ++i) {
        const LinkSkipResult &r = linkSkips[i];
        std::fprintf(json,
                     "    {\"threshold\": %.0e, "
                     "\"early_steps_per_sec\": %.2f, "
                     "\"early_speedup_vs_dense\": %.3f, "
                     "\"mean_active_rows_early\": %.1f, "
                     "\"steady_steps_per_sec\": %.2f, "
                     "\"retrieval_error_rate\": %.5f, "
                     "\"error_delta_vs_exact\": %.5f, "
                     "\"read_rms_divergence\": %.3e}%s\n",
                     r.threshold, r.earlyStepsPerSec, r.earlySpeedup,
                     r.meanActiveRows, r.steadyStepsPerSec, r.errorRate,
                     r.errorDelta, r.readRms,
                     i + 1 < linkSkips.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"read_skip_sweep\": [\n");
    for (std::size_t i = 0; i < readSkips.size(); ++i) {
        const ReadSkipResult &r = readSkips[i];
        std::fprintf(json,
                     "    {\"n\": %zu, \"threshold\": %.0e, "
                     "\"early_steps_per_sec\": %.2f, "
                     "\"early_speedup_vs_dense\": %.3f, "
                     "\"mean_active_rows_early\": %.1f, "
                     "\"mean_read_skipped_rows_per_score\": %.1f}%s\n",
                     r.n, r.threshold, r.earlyStepsPerSec, r.earlySpeedup,
                     r.meanActiveRows, r.meanReadSkippedRows,
                     i + 1 < readSkips.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"linkage_active_rows_curve\": [\n");
    for (std::size_t i = 0; i < curve.size(); ++i) {
        const ActiveCurvePoint &r = curve[i];
        std::fprintf(json,
                     "    {\"n\": %zu, \"episode_len\": %zu, "
                     "\"mean_active_rows\": %.1f, "
                     "\"sparse_steps_per_sec\": %.2f, "
                     "\"dense_steps_per_sec\": %.2f, "
                     "\"speedup\": %.3f}%s\n",
                     r.n, r.episodeLen, r.meanActiveRows,
                     r.sparseStepsPerSec, r.denseStepsPerSec, r.speedup,
                     i + 1 < curve.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"headline\": {\"n1024_speedup\": %.3f}\n",
                 headline);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_hot_path.json (N=1024 speedup %.2fx, "
                "16-tile 4-thread scaling %.2fx, early-episode linkage "
                "speedup %.2fx)\n",
                headline, scaling16,
                linkSkips.empty() ? 0.0 : linkSkips[0].earlySpeedup);
    return 0;
}
