/**
 * @file
 * Hot-path throughput benchmark: wall-clock timesteps/sec of the DNC
 * memory unit, comparing the pre-refactor ("legacy") kernels against
 * the allocation-free destination-passing path, plus DNC-D tile
 * scaling on the thread pool. Emits BENCH_hot_path.json so the perf
 * trajectory is tracked across PRs.
 *
 * The legacy path is a faithful replica of the seed implementation:
 * bounds-checked element accessors, value-returning kernels that
 * allocate every temporary, and per-head O(N*W) row-norm recomputes in
 * content addressing. Both paths implement identical math — the bench
 * cross-checks them bit-for-bit before timing.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_env.h"
#include "common/math_util.h"
#include "common/random.h"
#include "dnc/dncd.h"
#include "dnc/memory_unit.h"
#include "workload/retrieval.h"
#include "workload/task_suite.h"

namespace hima {
namespace {

// --------------------------------------------------------------------
// Legacy replica of the seed memory unit (pre-refactor kernels).
// --------------------------------------------------------------------
namespace legacy {

Vector
matVec(const Matrix &m, const Vector &x)
{
    Vector y(m.rows());
    for (Index r = 0; r < m.rows(); ++r) {
        Real acc = 0.0;
        for (Index c = 0; c < m.cols(); ++c)
            acc += m(r, c) * x[c];
        y[r] = acc;
    }
    return y;
}

Vector
matTVec(const Matrix &m, const Vector &x)
{
    Vector y(m.cols());
    for (Index r = 0; r < m.rows(); ++r) {
        const Real xv = x[r];
        for (Index c = 0; c < m.cols(); ++c)
            y[c] += m(r, c) * xv;
    }
    return y;
}

Vector
contentWeighting(const Matrix &memory, const Vector &key, Real strength)
{
    const Index n = memory.rows();
    const Index w = memory.cols();
    Vector rowNorms(n);
    for (Index i = 0; i < n; ++i) {
        Real acc = 0.0;
        for (Index c = 0; c < w; ++c) {
            const Real v = memory(i, c);
            acc += v * v;
        }
        rowNorms[i] = std::sqrt(acc);
    }
    const Real keyNorm = key.norm();
    constexpr Real eps = 1e-6;
    Vector scores(n);
    for (Index i = 0; i < n; ++i) {
        Real acc = 0.0;
        for (Index c = 0; c < w; ++c)
            acc += memory(i, c) * key[c];
        scores[i] = strength * acc / (rowNorms[i] * keyNorm + eps);
    }
    return softmax(scores);
}

/** The seed MemoryUnit dataflow, allocation-per-kernel. */
struct MemoryUnitSim
{
    explicit MemoryUnitSim(const DncConfig &config)
        : cfg(config), memory(cfg.memoryRows, cfg.memoryWidth),
          usage(cfg.memoryRows), linkage(cfg.memoryRows, cfg.memoryRows),
          precedence(cfg.memoryRows), writeWeighting(cfg.memoryRows),
          readWeightings(cfg.readHeads, Vector(cfg.memoryRows))
    {}

    MemoryReadout
    step(const InterfaceVector &iface)
    {
        const Index n = cfg.memoryRows;
        const Index w = cfg.memoryWidth;

        // CW: content write weighting (norms recomputed from scratch).
        const Vector contentW =
            contentWeighting(memory, iface.writeKey, iface.writeStrength);

        // HW: retention, usage, sort, allocation.
        Vector psi(n, 1.0);
        for (Index r = 0; r < readWeightings.size(); ++r) {
            const Real gate = iface.freeGates[r];
            for (Index i = 0; i < n; ++i)
                psi[i] *= 1.0 - gate * readWeightings[r][i];
        }
        Vector newUsage(n);
        for (Index i = 0; i < n; ++i) {
            const Real u = usage[i];
            const Real wv = writeWeighting[i];
            newUsage[i] = (u + wv - u * wv) * psi[i];
        }
        usage = newUsage;

        std::vector<SortRecord> records;
        records.reserve(n);
        for (Index i = 0; i < n; ++i)
            records.push_back({usage[i], i});
        const SortResult sorted =
            referenceUsageSort(records, SortOrder::Ascending);
        Vector alloc(n, 0.0);
        Real runningProduct = 1.0;
        for (const SortRecord &rec : sorted.records) {
            alloc[rec.idx] = (1.0 - rec.key) * runningProduct;
            runningProduct *= rec.key;
        }

        // WM: gate merge.
        Vector ww(n);
        const Real ga = iface.allocationGate;
        const Real gw = iface.writeGate;
        for (Index i = 0; i < n; ++i)
            ww[i] = gw * (ga * alloc[i] + (1.0 - ga) * contentW[i]);

        // MW: erase + add, row at a time.
        for (Index i = 0; i < n; ++i) {
            const Real wi = ww[i];
            if (wi == 0.0)
                continue;
            for (Index c = 0; c < w; ++c)
                memory(i, c) = memory(i, c) * (1.0 - wi * iface.eraseVector[c])
                             + wi * iface.writeVector[c];
        }

        // HR.(1)-(2): linkage then precedence.
        for (Index i = 0; i < n; ++i) {
            const Real wi = ww[i];
            for (Index j = 0; j < n; ++j) {
                if (i == j) {
                    linkage(i, j) = 0.0;
                    continue;
                }
                linkage(i, j) = (1.0 - wi - ww[j]) * linkage(i, j)
                              + wi * precedence[j];
            }
        }
        const Real keep = 1.0 - ww.sum();
        for (Index i = 0; i < n; ++i)
            precedence[i] = keep * precedence[i] + ww[i];
        writeWeighting = ww;

        MemoryReadout out;
        out.writeWeighting = ww;
        for (Index head = 0; head < cfg.readHeads; ++head) {
            const Vector fwd = legacy::matVec(linkage, readWeightings[head]);
            const Vector bwd = legacy::matTVec(linkage, readWeightings[head]);
            const Vector content = contentWeighting(
                memory, iface.readKeys[head], iface.readStrengths[head]);
            Vector weighting(n);
            const ReadMode &mode = iface.readModes[head];
            for (Index i = 0; i < n; ++i) {
                weighting[i] = mode.backward * bwd[i]
                             + mode.content * content[i]
                             + mode.forward * fwd[i];
            }
            Vector readVector = legacy::matTVec(memory, weighting);
            readWeightings[head] = weighting;
            out.readWeightings.push_back(std::move(weighting));
            out.readVectors.push_back(std::move(readVector));
        }
        return out;
    }

    DncConfig cfg;
    Matrix memory;
    Vector usage;
    Matrix linkage;
    Vector precedence;
    Vector writeWeighting;
    std::vector<Vector> readWeightings;
};

} // namespace legacy

// --------------------------------------------------------------------
// Harness.
// --------------------------------------------------------------------

DncConfig
benchConfig(Index n)
{
    DncConfig cfg;
    cfg.memoryRows = n;
    cfg.memoryWidth = 64;
    cfg.readHeads = 4;
    return cfg;
}

InterfaceVector
benchIface(const DncConfig &cfg, Rng &rng)
{
    InterfaceVector iface;
    iface.readKeys.clear();
    for (Index h = 0; h < cfg.readHeads; ++h)
        iface.readKeys.push_back(rng.normalVector(cfg.memoryWidth));
    iface.readStrengths.assign(cfg.readHeads, 5.0);
    iface.writeKey = rng.normalVector(cfg.memoryWidth);
    iface.writeStrength = 5.0;
    iface.eraseVector = Vector(cfg.memoryWidth, 0.5);
    iface.writeVector = rng.normalVector(cfg.memoryWidth);
    iface.freeGates.assign(cfg.readHeads, 0.1);
    iface.allocationGate = 0.9;
    iface.writeGate = 1.0;
    iface.readModes.assign(cfg.readHeads, ReadMode{0.1, 0.8, 0.1});
    return iface;
}

/** Bit-exact cross-check of the legacy replica vs the optimized path. */
bool
crossCheck()
{
    const DncConfig cfg = benchConfig(256);
    legacy::MemoryUnitSim legacySim(cfg);
    MemoryUnit optimized(cfg);
    MemoryReadout optOut;
    Rng rng(42);
    for (int step = 0; step < 4; ++step) {
        const InterfaceVector iface = benchIface(cfg, rng);
        const MemoryReadout a = legacySim.step(iface);
        optimized.stepInto(iface, optOut);
        for (Index h = 0; h < cfg.readHeads; ++h) {
            if (!(a.readVectors[h] == optOut.readVectors[h]) ||
                !(a.readWeightings[h] == optOut.readWeightings[h]))
                return false;
        }
        if (!(a.writeWeighting == optOut.writeWeighting))
            return false;
    }
    return true;
}

struct SingleTileResult
{
    Index n;
    double legacyStepsPerSec;
    double optimizedStepsPerSec;
    double speedup;
};

struct DncdResult
{
    Index n;
    Index tiles;
    Index threads;
    double stepsPerSec;
};

// --------------------------------------------------------------------
// Exactness-vs-speed knob (Fig. 10-style): sweep writeSkipThreshold,
// reporting memory-unit timesteps/s at the paper's N alongside the
// retrieval-task error-rate delta vs the exact (threshold 0) run.
// --------------------------------------------------------------------

struct SkipResult
{
    Real threshold;
    double stepsPerSec;  ///< MemoryUnit stepInto at N=1024
    double errorRate;    ///< mean over the retrieval task subset
    double errorDelta;   ///< errorRate - exact baseline
    double cosineMargin; ///< mean correct-answer margin (continuous)
    double marginDelta;  ///< cosineMargin - exact baseline
    double readRms;      ///< read-vector RMS divergence on soft traffic
};

/**
 * State-level exactness loss: lockstep a skipping MemoryUnit against an
 * exact one on randomized *soft* traffic (mixed content/allocation
 * writes, spread weightings — where sub-threshold rows actually carry
 * mass) and report the RMS divergence of the read vectors. This is the
 * knob's true error signal; the scripted retrieval tasks above sit in
 * the one-hot regime where it never surfaces as task error.
 */
double
readDivergence(Real threshold)
{
    DncConfig exactCfg = benchConfig(256);
    DncConfig skipCfg = exactCfg;
    skipCfg.writeSkipThreshold = threshold;
    MemoryUnit exact(exactCfg);
    MemoryUnit skip(skipCfg);
    MemoryReadout outA, outB;
    Rng rng(77);
    double sumSq = 0.0;
    std::uint64_t count = 0;
    for (int step = 0; step < 50; ++step) {
        InterfaceVector iface = benchIface(exactCfg, rng);
        iface.allocationGate = rng.uniform(); // mix content-heavy writes
        iface.writeGate = rng.uniform(0.3, 1.0);
        exact.stepInto(iface, outA);
        skip.stepInto(iface, outB);
        for (Index h = 0; h < exactCfg.readHeads; ++h) {
            for (Index i = 0; i < exactCfg.memoryWidth; ++i) {
                const double d =
                    outA.readVectors[h][i] - outB.readVectors[h][i];
                sumSq += d * d;
                ++count;
            }
        }
    }
    return std::sqrt(sumSq / static_cast<double>(count));
}

std::vector<SkipResult>
writeSkipSweep()
{
    const std::vector<Real> thresholds = {0.0,  1e-12, 1e-9, 1e-6,
                                          1e-4, 1e-2,  0.2};
    std::vector<SkipResult> results;
    double baseErr = 0.0;
    double baseMargin = 0.0;
    for (Real th : thresholds) {
        // Throughput leg: the same N=1024 hot loop the headline uses.
        DncConfig cfg = benchConfig(1024);
        cfg.writeSkipThreshold = th;
        Rng rng(7);
        const InterfaceVector iface = benchIface(cfg, rng);
        MemoryUnit mu(cfg);
        MemoryReadout out;
        const double rate =
            benchStepsPerSecond([&] { mu.stepInto(iface, out); });

        // Accuracy leg: scripted retrieval episodes from the task suite
        // through a full Dnc with the same knob.
        DncConfig acc = benchConfig(256);
        acc.writeSkipThreshold = th;
        Dnc model(acc, 3);
        TokenCodebook keys(64, acc.memoryWidth / 2, 1);
        TokenCodebook values(64, acc.memoryWidth / 2, 2);
        InterfaceScripter scripter(acc, keys, values);
        Rng episodeRng(11);
        const auto suite = taskSuite();
        const Index tasks = 8;
        double err = 0.0;
        double margin = 0.0;
        for (Index t = 0; t < tasks; ++t) {
            const Episode ep = makeEpisode(suite[t], 64, episodeRng);
            const EpisodeResult res = runEpisode(model, scripter, ep);
            err += res.errorRate();
            margin += res.meanScore;
        }
        err /= static_cast<double>(tasks);
        margin /= static_cast<double>(tasks);
        if (th == 0.0) {
            baseErr = err;
            baseMargin = margin;
        }
        const double rms = readDivergence(th);
        results.push_back({th, rate, err, err - baseErr, margin,
                           margin - baseMargin, rms});
        std::printf("writeSkip %.0e  %10.1f steps/s  error %.4f "
                    "(delta %+.4f)  margin %.5f  read RMS div %.2e\n",
                    th, rate, err, err - baseErr, margin, rms);
    }
    return results;
}

} // namespace
} // namespace hima

int
main()
{
    using namespace hima;

    if (!crossCheck()) {
        std::fprintf(stderr,
                     "FATAL: legacy and optimized paths diverged — "
                     "refusing to benchmark unequal computations\n");
        return 1;
    }
    std::printf("cross-check: legacy and optimized paths bit-identical\n");

    const std::vector<Index> sizes = {64, 256, 1024, 4096};
    std::vector<SingleTileResult> single;
    for (Index n : sizes) {
        const DncConfig cfg = benchConfig(n);
        Rng rng(7);
        const InterfaceVector iface = benchIface(cfg, rng);

        legacy::MemoryUnitSim legacySim(cfg);
        const double legacyRate = benchStepsPerSecond(
            [&] { legacySim.step(iface); });

        MemoryUnit mu(cfg);
        MemoryReadout out;
        const double optRate = benchStepsPerSecond(
            [&] { mu.stepInto(iface, out); });

        single.push_back({n, legacyRate, optRate, optRate / legacyRate});
        std::printf("N=%5zu  legacy %10.1f steps/s   optimized %10.1f "
                    "steps/s   speedup %.2fx\n",
                    n, legacyRate, optRate, optRate / legacyRate);
    }

    const std::vector<Index> tileCounts = {1, 4, 16};
    const std::vector<Index> threadCounts = {1, 4};
    std::vector<DncdResult> dncd;
    const Index dncdRows = 1024;
    for (Index tiles : tileCounts) {
        for (Index threads : threadCounts) {
            DncConfig cfg = benchConfig(dncdRows);
            cfg.numThreads = threads;
            DncD model(cfg, tiles);
            Rng rng(11);
            const InterfaceVector iface = benchIface(cfg, rng);
            const double rate = benchStepsPerSecond(
                [&] { model.stepInterface(iface); });
            dncd.push_back({dncdRows, tiles, threads, rate});
            std::printf("DNC-D N=%zu tiles=%2zu threads=%zu  %10.1f "
                        "steps/s\n",
                        dncdRows, tiles, threads, rate);
        }
    }

    double scaling16 = 0.0;
    {
        double t1 = 0.0, t4 = 0.0;
        for (const DncdResult &r : dncd) {
            if (r.tiles == 16 && r.threads == 1)
                t1 = r.stepsPerSec;
            if (r.tiles == 16 && r.threads == 4)
                t4 = r.stepsPerSec;
        }
        if (t1 > 0.0)
            scaling16 = t4 / t1;
    }

    std::printf("\nwriteSkipThreshold exactness-vs-speed sweep "
                "(Fig. 10-style):\n");
    const std::vector<SkipResult> skips = writeSkipSweep();

    double headline = 0.0;
    for (const SingleTileResult &r : single)
        if (r.n == 1024)
            headline = r.speedup;

    FILE *json = std::fopen("BENCH_hot_path.json", "w");
    if (!json) {
        std::fprintf(stderr, "cannot open BENCH_hot_path.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    writeBenchContext(json);
    std::fprintf(json,
                 "  \"config\": {\"memory_width\": 64, \"read_heads\": 4},\n");
    std::fprintf(json, "  \"single_tile\": [\n");
    for (std::size_t i = 0; i < single.size(); ++i) {
        const SingleTileResult &r = single[i];
        std::fprintf(json,
                     "    {\"n\": %zu, \"legacy_steps_per_sec\": %.2f, "
                     "\"optimized_steps_per_sec\": %.2f, "
                     "\"speedup\": %.3f}%s\n",
                     r.n, r.legacyStepsPerSec, r.optimizedStepsPerSec,
                     r.speedup, i + 1 < single.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"dncd\": [\n");
    for (std::size_t i = 0; i < dncd.size(); ++i) {
        const DncdResult &r = dncd[i];
        std::fprintf(json,
                     "    {\"n\": %zu, \"tiles\": %zu, \"threads\": %zu, "
                     "\"steps_per_sec\": %.2f}%s\n",
                     r.n, r.tiles, r.threads, r.stepsPerSec,
                     i + 1 < dncd.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json,
                 "  \"dncd_thread_scaling_16_tiles\": "
                 "{\"threads4_over_threads1\": %.3f},\n",
                 scaling16);
    std::fprintf(json, "  \"write_skip_sweep\": [\n");
    for (std::size_t i = 0; i < skips.size(); ++i) {
        const SkipResult &r = skips[i];
        std::fprintf(json,
                     "    {\"threshold\": %.0e, "
                     "\"steps_per_sec_n1024\": %.2f, "
                     "\"retrieval_error_rate\": %.5f, "
                     "\"error_delta_vs_exact\": %.5f, "
                     "\"mean_cosine_margin\": %.6f, "
                     "\"margin_delta_vs_exact\": %.6f, "
                     "\"read_rms_divergence\": %.3e}%s\n",
                     r.threshold, r.stepsPerSec, r.errorRate, r.errorDelta,
                     r.cosineMargin, r.marginDelta, r.readRms,
                     i + 1 < skips.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"headline\": {\"n1024_speedup\": %.3f}\n",
                 headline);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("wrote BENCH_hot_path.json (N=1024 speedup %.2fx, "
                "16-tile 4-thread scaling %.2fx)\n",
                headline, scaling16);
    return 0;
}
