/**
 * @file
 * Regenerates Fig. 4: kernel runtime breakdown of DNC inference on a CPU
 * and a GPU for the bAbI-style workload (N x W = 1024 x 64, 1-layer LSTM
 * of 256).
 *
 * CPU series: a *real measurement* — the functional DNC runs on this
 * host with per-kernel wall-clock timers.
 *
 * GPU series: the analytic parallel-processor model of
 * arch/baselines.h, driven by the same measured op counts (see DESIGN.md
 * substitution table; no GPU is available offline).
 *
 * Paper reference points: GPU breakdown 72% HistWr / 9% HistRd /
 * 12% Content / 4% Mem / 3% NN; CPU 10% / 4% / 22% / 53% / 11%-ish with
 * memory unit > 95% on both platforms.
 */

#include <iostream>

#include "arch/baselines.h"
#include "common/table.h"
#include "dnc/dnc.h"

namespace hima {
namespace {

void
run()
{
    std::cout << "Fig. 4: DNC kernel runtime breakdown on CPU (measured) "
                 "and GPU (modeled)\n";

    DncConfig cfg; // paper evaluation point
    Dnc dnc(cfg, 1);
    Rng input(3);

    const int steps = 4;
    for (int i = 0; i < steps; ++i)
        dnc.step(input.normalVector(cfg.inputSize));
    const KernelProfiler &prof = dnc.profiler();

    // CPU: measured nanoseconds per category.
    Real cpuTotal = 0.0;
    Real cpuCat[static_cast<int>(KernelCategory::NumCategories)] = {};
    for (int c = 0; c < static_cast<int>(KernelCategory::NumCategories);
         ++c) {
        cpuCat[c] = static_cast<Real>(
            prof.categoryTotal(static_cast<KernelCategory>(c))
                .nanoseconds);
        cpuTotal += cpuCat[c];
    }

    // GPU: analytic model on the same op counts.
    GpuKernelModel gpu;
    const auto gpuSecs = gpu.categorySeconds(prof);
    Real gpuTotal = 0.0;
    for (Real s : gpuSecs)
        gpuTotal += s;

    Table table({"Category", "GPU share", "GPU ms/test", "CPU share",
                 "Paper GPU", "Paper CPU"});
    const Real paperGpu[] = {0.12, 0.04, 0.72, 0.09, 0.03};
    const Real paperCpu[] = {0.22, 0.53, 0.10, 0.04, 0.11};
    for (int c = 0; c < static_cast<int>(KernelCategory::NumCategories);
         ++c) {
        const auto cat = static_cast<KernelCategory>(c);
        table.addRow({categoryName(cat),
                      fmtPercent(gpuSecs[c] / gpuTotal),
                      fmtReal(gpuSecs[c] * 1e3 / steps, 3),
                      fmtPercent(cpuCat[c] / cpuTotal),
                      fmtPercent(paperGpu[c]), fmtPercent(paperCpu[c])});
    }
    table.print(std::cout);

    const Real memUnitCpu = 1.0 -
        cpuCat[static_cast<int>(KernelCategory::Nn)] / cpuTotal;
    const Real memUnitGpu = 1.0 -
        gpuSecs[static_cast<int>(KernelCategory::Nn)] / gpuTotal;
    std::cout << "\nMemory unit share of runtime: CPU "
              << fmtPercent(memUnitCpu) << ", GPU "
              << fmtPercent(memUnitGpu)
              << " (paper: >95% on both platforms)\n";
    std::cout << "Modeled GPU inference: "
              << fmtReal(gpuTotal * 1e3 / steps, 2)
              << " ms/test (paper: 5.16 ms/test)\n";
}

} // namespace
} // namespace hima

int
main()
{
    hima::run();
    return 0;
}
