/**
 * @file
 * Tests for the allocation-free hot path: every destination-passing
 * kernel must match its value-returning counterpart bit-for-bit, the
 * memory unit's row-norm cache must stay equal to freshly computed
 * norms under randomized write sequences, a steady-state
 * MemoryUnit::stepInto() must perform zero heap allocations (checked
 * via a global operator-new hook), and the threaded DNC-D tile path
 * must be bit-identical to the sequential one.
 */

#include <atomic>
#include <cstdlib>
#include <cstdint>
#include <new>

#include <gtest/gtest.h>

#include "approx/fixed_point.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "dnc/dncd.h"
#include "dnc/memory_unit.h"
#include "golden_util.h"
#include "serve/router.h"

// --------------------------------------------------------------------
// Global operator-new hook: counts every heap allocation in the test
// binary. The zero-allocation assertions read the counter delta around
// a steady-state step. All four allocating forms are hooked — scalar,
// array, and their over-aligned C++17 variants — so an allocation
// cannot dodge the counter by coming in through `new[]` or through a
// type with extended alignment; the array forms additionally bump their
// own counter so the hook itself is testable.
// --------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocationCount{0};
std::atomic<std::uint64_t> g_arrayAllocationCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    g_arrayAllocationCount.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(size); // bumps the total counter
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocationCount.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + a - 1) / a * a;
    if (void *p = std::aligned_alloc(a, rounded ? rounded : a))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    g_arrayAllocationCount.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(size, align); // bumps the total counter
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace hima {
namespace {

// --------------------------------------------------------------------
// Destination-passing kernels match the value-returning API.
// --------------------------------------------------------------------

class InplaceKernels : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng_{static_cast<std::uint64_t>(GetParam()) * 7919 + 1};
};

TEST_P(InplaceKernels, VectorKernelsMatch)
{
    const Index n = 1 + rng_.uniformInt(48);
    const Vector a = rng_.normalVector(n);
    const Vector b = rng_.normalVector(n);
    const Real s = rng_.uniform(-3.0, 3.0);

    Vector out;
    addInto(a, b, out);
    EXPECT_EQ(out, add(a, b));
    subInto(a, b, out);
    EXPECT_EQ(out, sub(a, b));
    mulInto(a, b, out);
    EXPECT_EQ(out, mul(a, b));

    out = a;
    scaleInPlace(out, s);
    EXPECT_EQ(out, scale(a, s));

    out = a;
    addInPlace(out, b);
    EXPECT_EQ(out, add(a, b));

    out = b;
    axpy(s, a, out);
    EXPECT_EQ(out, add(b, scale(a, s)));

    softmaxInto(a, out);
    EXPECT_EQ(out, softmax(a));
}

TEST_P(InplaceKernels, ElementwiseAliasingIsAllowed)
{
    const Index n = 1 + rng_.uniformInt(32);
    const Vector a = rng_.normalVector(n);
    const Vector b = rng_.normalVector(n);

    Vector alias = a;
    addInto(alias, b, alias);
    EXPECT_EQ(alias, add(a, b));

    alias = a;
    softmaxInto(alias, alias);
    EXPECT_EQ(alias, softmax(a));
}

TEST_P(InplaceKernels, MatrixKernelsMatch)
{
    const Index rows = 1 + rng_.uniformInt(16);
    const Index cols = 1 + rng_.uniformInt(16);
    const Matrix m = rng_.normalMatrix(rows, cols);
    const Vector x = rng_.normalVector(cols);
    const Vector xr = rng_.normalVector(rows);

    Vector y;
    matVecInto(m, x, y);
    EXPECT_EQ(y, matVec(m, x));

    Vector acc = rng_.normalVector(rows);
    const Vector expected = add(acc, matVec(m, x));
    matVecAccumulate(m, x, acc);
    EXPECT_EQ(acc, expected);

    matTVecInto(m, xr, y);
    EXPECT_EQ(y, matTVec(m, xr));

    Matrix o(rows, cols);
    outerAccumulate(xr, x, 1.0, o);
    EXPECT_EQ(o, outer(xr, x));

    const Index inner = 1 + rng_.uniformInt(8);
    const Matrix a = rng_.normalMatrix(rows, inner);
    const Matrix b = rng_.normalMatrix(inner, cols);
    Matrix prod;
    matMulInto(a, b, prod);
    EXPECT_EQ(prod, matMul(a, b));
}

TEST_P(InplaceKernels, RowKernelsMatchMaterializedRows)
{
    const Index rows = 1 + rng_.uniformInt(12);
    const Index cols = 1 + rng_.uniformInt(12);
    const Matrix m = rng_.normalMatrix(rows, cols);
    const Vector x = rng_.normalVector(cols);
    for (Index r = 0; r < rows; ++r) {
        EXPECT_DOUBLE_EQ(dotRow(m, r, x), dot(m.row(r), x));
        EXPECT_DOUBLE_EQ(rowNorm(m, r), m.row(r).norm());
    }
}

TEST_P(InplaceKernels, QuantizeInPlaceMatches)
{
    const Index n = 1 + rng_.uniformInt(32);
    const Vector v = rng_.normalVector(n, 0.0, 100.0);
    Vector q = v;
    quantizeInPlace(q);
    EXPECT_EQ(q, quantize(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InplaceKernels, ::testing::Range(0, 8));

// --------------------------------------------------------------------
// Batched (struct-of-arrays) kernels: per-lane results must equal the
// single-lane kernels bit-for-bit, including across the 64-lane chunk
// boundary of the stack accumulators.
// --------------------------------------------------------------------

class BatchedKernels : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng_{static_cast<std::uint64_t>(GetParam()) * 104729 + 3};
};

TEST_P(BatchedKernels, MatVecMatchesPerLane)
{
    const Index rows = 1 + rng_.uniformInt(12);
    const Index cols = 1 + rng_.uniformInt(12);
    const Index lanes = 1 + rng_.uniformInt(90); // crosses the 64 chunk
    const Matrix m = rng_.normalMatrix(rows, cols);

    std::vector<Vector> xs;
    Vector soaX(cols * lanes);
    for (Index b = 0; b < lanes; ++b) {
        xs.push_back(rng_.normalVector(cols));
        laneScatterInto(xs[b], lanes, b, soaX);
    }

    Vector soaY;
    batchedMatVecInto(m, soaX, lanes, soaY);
    Vector lane, ref;
    for (Index b = 0; b < lanes; ++b) {
        laneGatherInto(soaY, lanes, b, rows, lane);
        matVecInto(m, xs[b], ref);
        ASSERT_EQ(lane, ref) << "lane " << b;
    }

    // Accumulate on top of randomized destinations.
    std::vector<Vector> ys;
    Vector soaAcc(rows * lanes);
    for (Index b = 0; b < lanes; ++b) {
        ys.push_back(rng_.normalVector(rows));
        laneScatterInto(ys[b], lanes, b, soaAcc);
    }
    batchedMatVecAccumulate(m, soaX, lanes, soaAcc);
    for (Index b = 0; b < lanes; ++b) {
        laneGatherInto(soaAcc, lanes, b, rows, lane);
        ref = ys[b];
        matVecAccumulate(m, xs[b], ref);
        ASSERT_EQ(lane, ref) << "lane " << b;
    }
}

TEST_P(BatchedKernels, LaneHelpersMatchSingleLaneKernels)
{
    const Index n = 1 + rng_.uniformInt(24);
    const Index lanes = 1 + rng_.uniformInt(70);
    const Vector bias = rng_.normalVector(n);
    const Real alpha = rng_.uniform(-3.0, 3.0);

    std::vector<Vector> ys;
    Vector soa(n * lanes);
    for (Index b = 0; b < lanes; ++b) {
        ys.push_back(rng_.normalVector(n));
        laneScatterInto(ys[b], lanes, b, soa);
    }

    // Round-trip: gather(scatter(v)) == v.
    Vector lane;
    for (Index b = 0; b < lanes; ++b) {
        laneGatherInto(soa, lanes, b, n, lane);
        ASSERT_EQ(lane, ys[b]) << "lane " << b;
    }

    laneBroadcastAdd(bias, lanes, soa);
    for (Index b = 0; b < lanes; ++b) {
        laneGatherInto(soa, lanes, b, n, lane);
        Vector ref = ys[b];
        addInPlace(ref, bias);
        ASSERT_EQ(lane, ref) << "lane " << b;
        ys[b] = ref;
    }

    const Vector x = rng_.normalVector(n);
    const Index target = rng_.uniformInt(lanes);
    laneAxpy(alpha, x, lanes, target, soa);
    for (Index b = 0; b < lanes; ++b) {
        laneGatherInto(soa, lanes, b, n, lane);
        Vector ref = ys[b];
        if (b == target)
            axpy(alpha, x, ref);
        ASSERT_EQ(lane, ref) << "lane " << b;
    }
}

TEST_P(BatchedKernels, PartialOccupancyMatchesPerLane)
{
    // The compacted-active-lane forms: only the leading `active` columns
    // of a stride-`stride` tile are swept; they must match the
    // single-lane kernels bit-for-bit and leave the stale columns alone.
    const Index rows = 1 + rng_.uniformInt(10);
    const Index cols = 1 + rng_.uniformInt(10);
    const Index stride = 2 + rng_.uniformInt(80); // may cross the chunk
    const Index active = 1 + rng_.uniformInt(stride);
    const Matrix m = rng_.normalMatrix(rows, cols);

    std::vector<Vector> xs;
    Vector soaX = rng_.normalVector(cols * stride); // stale noise beyond
    for (Index b = 0; b < active; ++b) {
        xs.push_back(rng_.normalVector(cols));
        laneScatterInto(xs[b], stride, b, soaX);
    }

    Vector soaY = rng_.normalVector(rows * stride);
    const Vector before = soaY;
    batchedMatVecInto(m, soaX, stride, active, soaY);
    Vector lane, ref;
    for (Index b = 0; b < active; ++b) {
        laneGatherInto(soaY, stride, b, rows, lane);
        matVecInto(m, xs[b], ref);
        ASSERT_EQ(lane, ref) << "lane " << b;
    }
    for (Index b = active; b < stride; ++b)
        for (Index r = 0; r < rows; ++r)
            ASSERT_EQ(soaY[r * stride + b], before[r * stride + b])
                << "inactive column " << b << " was touched";

    // Accumulate form on randomized destinations.
    std::vector<Vector> ys;
    Vector soaAcc(rows * stride);
    for (Index b = 0; b < active; ++b) {
        ys.push_back(rng_.normalVector(rows));
        laneScatterInto(ys[b], stride, b, soaAcc);
    }
    batchedMatVecAccumulate(m, soaX, stride, active, soaAcc);
    for (Index b = 0; b < active; ++b) {
        laneGatherInto(soaAcc, stride, b, rows, lane);
        ref = ys[b];
        matVecAccumulate(m, xs[b], ref);
        ASSERT_EQ(lane, ref) << "lane " << b;
    }

    // Broadcast-add over the active prefix only.
    const Vector bias = rng_.normalVector(rows);
    Vector soaBias = soaAcc;
    laneBroadcastAdd(bias, stride, active, soaBias);
    for (Index b = 0; b < active; ++b) {
        laneGatherInto(soaBias, stride, b, rows, lane);
        laneGatherInto(soaAcc, stride, b, rows, ref);
        addInPlace(ref, bias);
        ASSERT_EQ(lane, ref) << "lane " << b;
    }
    for (Index b = active; b < stride; ++b)
        for (Index r = 0; r < rows; ++r)
            ASSERT_EQ(soaBias[r * stride + b], soaAcc[r * stride + b])
                << "inactive column " << b << " was biased";
}

TEST_P(BatchedKernels, ScatterRowOffsetPlacesSegments)
{
    // Concatenated segments per lane (the reads-flat layout): scatter
    // each segment at its row offset, gather the whole lane back.
    const Index segments = 1 + rng_.uniformInt(4);
    const Index width = 1 + rng_.uniformInt(8);
    const Index lanes = 1 + rng_.uniformInt(20);
    Vector soa(segments * width * lanes);

    std::vector<std::vector<Vector>> parts(lanes);
    for (Index b = 0; b < lanes; ++b)
        for (Index s = 0; s < segments; ++s) {
            parts[b].push_back(rng_.normalVector(width));
            laneScatterInto(parts[b][s], lanes, b, soa, s * width);
        }

    Vector lane;
    for (Index b = 0; b < lanes; ++b) {
        laneGatherInto(soa, lanes, b, segments * width, lane);
        for (Index s = 0; s < segments; ++s)
            for (Index c = 0; c < width; ++c)
                ASSERT_EQ(lane[s * width + c], parts[b][s][c])
                    << "lane " << b << " segment " << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchedKernels, ::testing::Range(0, 8));

// --------------------------------------------------------------------
// Memory-unit helpers shared by the cache / allocation / DNC-D tests.
// --------------------------------------------------------------------

DncConfig
smallConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 32;
    cfg.memoryWidth = 16;
    cfg.readHeads = 2;
    return cfg;
}

/** A randomized but valid interface vector (shared golden helper). */
InterfaceVector
randomIface(const DncConfig &cfg, Rng &rng)
{
    return golden::randomIface(cfg, rng);
}

void
expectNormCacheFresh(const MemoryUnit &mu)
{
    for (Index i = 0; i < mu.memory().rows(); ++i) {
        EXPECT_DOUBLE_EQ(mu.rowNorms()[i], mu.memory().row(i).norm())
            << "row " << i;
    }
}

// --------------------------------------------------------------------
// Row-norm cache invariant.
// --------------------------------------------------------------------

TEST(RowNormCache, MatchesFreshNormsAfterRandomizedWrites)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(101);
    for (int step = 0; step < 40; ++step) {
        mu.step(randomIface(cfg, rng));
        expectNormCacheFresh(mu);
    }
}

TEST(RowNormCache, HoldsUnderWriteSkipThreshold)
{
    // With a positive skip threshold, low-weight rows are not written at
    // all — so the cache must still match the *actual* memory exactly.
    DncConfig cfg = smallConfig();
    cfg.writeSkipThreshold = 1e-6;
    MemoryUnit mu(cfg);
    Rng rng(102);
    for (int step = 0; step < 40; ++step) {
        mu.step(randomIface(cfg, rng));
        expectNormCacheFresh(mu);
    }
}

TEST(RowNormCache, HoldsInFixedPointMode)
{
    DncConfig cfg = smallConfig();
    cfg.fixedPoint = true;
    MemoryUnit mu(cfg);
    Rng rng(103);
    for (int step = 0; step < 20; ++step) {
        mu.step(randomIface(cfg, rng));
        expectNormCacheFresh(mu);
    }
}

TEST(RowNormCache, ResetRestoresZeroNorms)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(104);
    mu.step(randomIface(cfg, rng));
    mu.reset();
    expectNormCacheFresh(mu);
    EXPECT_DOUBLE_EQ(mu.rowNorms().sum(), 0.0);
}

TEST(RowNormCache, CachedWeightingMatchesUncachedReference)
{
    // Content addressing through the cache must equal the from-scratch
    // reference path bit-for-bit.
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(105);
    for (int step = 0; step < 10; ++step)
        mu.step(randomIface(cfg, rng));

    ContentAddressing ca;
    const Vector key = rng.normalVector(cfg.memoryWidth);
    Vector scores, cached;
    ca.weightingInto(mu.memory(), key, 7.0, &mu.rowNorms(), scores, cached);
    const Vector reference = ca.weighting(mu.memory(), key, 7.0);
    EXPECT_EQ(cached, reference);
}

// --------------------------------------------------------------------
// Zero steady-state allocations.
// --------------------------------------------------------------------

TEST(ZeroAllocation, SteadyStateMemoryUnitStep)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(201);

    // Pre-build the interfaces so the measured region is pure stepInto.
    std::vector<InterfaceVector> ifaces;
    for (int i = 0; i < 8; ++i)
        ifaces.push_back(randomIface(cfg, rng));

    MemoryReadout out;
    mu.stepInto(ifaces[0], out); // first call sizes every buffer
    mu.stepInto(ifaces[1], out);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 2; i < 8; ++i)
        mu.stepInto(ifaces[i], out);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state stepInto performed heap allocations";
}

TEST(ZeroAllocation, SteadyStateHoldsAtLargerShapes)
{
    DncConfig cfg;
    cfg.memoryRows = 128;
    cfg.memoryWidth = 32;
    cfg.readHeads = 4;
    MemoryUnit mu(cfg);
    Rng rng(202);
    const InterfaceVector iface = randomIface(cfg, rng);

    MemoryReadout out;
    mu.stepInto(iface, out);
    mu.stepInto(iface, out);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    mu.stepInto(iface, out);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
}

namespace {
// Opaque escape: forces the new-expressions in the hook self-test to
// materialize ([expr.new] lets the compiler elide calls to replaceable
// allocation functions for non-escaping pairs, which would unhook them).
volatile void *g_escapeSink = nullptr;
} // namespace

TEST(ZeroAllocation, HookTripsOnScalarAndArrayNew)
{
    // The hook itself must be trustworthy: both allocation forms bump
    // the total counter, and new[] additionally bumps the array counter
    // (it historically only counted via forwarding, which an
    // implementation-provided new[] would silently bypass).
    const std::uint64_t total0 =
        g_allocationCount.load(std::memory_order_relaxed);
    const std::uint64_t array0 =
        g_arrayAllocationCount.load(std::memory_order_relaxed);

    double *scalar = new double(1.5);
    g_escapeSink = scalar;
    EXPECT_GT(g_allocationCount.load(std::memory_order_relaxed), total0);
    delete scalar;

    double *array = new double[32];
    g_escapeSink = array;
    array[0] = 2.5;
    EXPECT_GT(g_arrayAllocationCount.load(std::memory_order_relaxed), array0);
    EXPECT_GT(g_allocationCount.load(std::memory_order_relaxed), total0 + 1);
    EXPECT_EQ(array[0], 2.5);
    delete[] array;
}

/**
 * BatchedDnc steady-state steps: zero heap allocations for the whole
 * engine — SoA controller sweeps, per-lane decode, every memory tile
 * and the thread-pool dispatch — at 1 worker and at 4.
 */
class BatchedZeroAlloc : public ::testing::TestWithParam<int>
{};

TEST_P(BatchedZeroAlloc, SteadyStateBatchedStep)
{
    DncConfig cfg = smallConfig();
    cfg.controllerSize = 32;
    cfg.inputSize = 16;
    cfg.outputSize = 16;
    cfg.batchSize = 4;
    cfg.numThreads = static_cast<Index>(GetParam());
    BatchedDnc engine(cfg, 9);
    Rng rng(203);

    // Pre-build every input batch so the measured region is pure
    // stepInto.
    std::vector<std::vector<Vector>> batches;
    for (int i = 0; i < 8; ++i)
        batches.push_back(golden::randomBatchInputs(cfg, cfg.batchSize, rng));

    std::vector<Vector> outputs;
    engine.stepInto(batches[0], outputs); // sizes every buffer
    engine.stepInto(batches[1], outputs);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 2; i < 8; ++i)
        engine.stepInto(batches[i], outputs);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state batched step performed heap allocations";
}

INSTANTIATE_TEST_SUITE_P(Threads, BatchedZeroAlloc, ::testing::Values(1, 4));

/**
 * Router serving steps under queue overload: once requests are bound
 * and every lane is mid-episode, a router step — engine sweep, harvest
 * into the pre-sized result buffers, and rejected submissions bouncing
 * off the full queue — must not touch the heap. Admission boundaries
 * allocate (queueing, result sizing); the steady serving window, which
 * is where an overloaded deployment actually lives, must not.
 */
TEST(ZeroAllocation, RouterOverloadServingWindow)
{
    DncConfig cfg = smallConfig();
    cfg.controllerSize = 32;
    cfg.inputSize = 16;
    cfg.outputSize = 16;
    cfg.batchSize = 2;
    cfg.routerQueueCapacity = 2;
    Router router(cfg, 9);
    Rng rng(211);

    constexpr Index kTokens = 16;
    auto makeRequest = [&](std::uint64_t id) {
        ServeRequest request;
        request.id = id;
        for (Index t = 0; t < kTokens; ++t)
            request.tokens.push_back(rng.normalVector(cfg.inputSize));
        return request;
    };

    // Saturate: two bound lanes plus a full queue.
    ASSERT_TRUE(router.submit(makeRequest(0)));
    ASSERT_TRUE(router.submit(makeRequest(1)));
    router.step(); // binds both lanes
    ASSERT_TRUE(router.submit(makeRequest(2)));
    ASSERT_TRUE(router.submit(makeRequest(3)));
    ASSERT_EQ(router.activeRequests(), 2u);
    ASSERT_EQ(router.queuedRequests(), 2u);
    router.step();
    router.step(); // engine + harvest buffers all sized

    // Overflow submissions are pre-built so the measured region holds
    // only router work: step + rejected submit.
    ServeRequest overflowA = makeRequest(4);
    ServeRequest overflowB = makeRequest(5);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_FALSE(router.submit(std::move(overflowA)));
    for (int i = 0; i < 8; ++i)
        router.step(); // all mid-episode: no admissions, no completions
    EXPECT_FALSE(router.submit(std::move(overflowB)));
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "overloaded serving steps performed heap allocations";
    EXPECT_EQ(router.rejectedRequests(), 2u);

    router.drain();
    EXPECT_EQ(router.completed().size(), 4u);
}

/**
 * Lane churn must preserve the zero-allocation guarantee: admit(),
 * markDraining() and release() only reuse preallocated slots (column
 * copies + free-list pushes within reserved capacity), so a steady-state
 * serving loop with request turnover still never touches the heap.
 */
TEST_P(BatchedZeroAlloc, SteadyStateStepWithLaneChurn)
{
    DncConfig cfg = smallConfig();
    cfg.controllerSize = 32;
    cfg.inputSize = 16;
    cfg.outputSize = 16;
    cfg.batchSize = 4;
    cfg.numThreads = static_cast<Index>(GetParam());
    BatchedDnc engine(cfg, 9);
    Rng rng(205);

    std::vector<std::vector<Vector>> batches;
    for (int i = 0; i < 10; ++i)
        batches.push_back(golden::randomBatchInputs(cfg, cfg.batchSize, rng));

    std::vector<Vector> outputs;
    engine.stepInto(batches[0], outputs); // sizes every buffer
    engine.stepInto(batches[1], outputs);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 2; i < 10; ++i) {
        // Full lifecycle every step: one lane drains, is released, and a
        // fresh episode is admitted into the recycled slot.
        const Index victim = static_cast<Index>(i) % cfg.batchSize;
        engine.markDraining(victim);
        engine.release(victim);
        const Index slot = engine.admit();
        engine.stepInto(batches[i], outputs);
        HIMA_ASSERT(slot == victim, "free list must recycle the slot");
    }
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "lane churn performed heap allocations in steady state";
}

// --------------------------------------------------------------------
// Thread pool and threaded DNC-D determinism.
// --------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    constexpr Index kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto &h : hits)
        h.store(0);
    // Repeated jobs through the same pool: the second run would expose
    // stale workers crossing job generations.
    for (int round = 0; round < 3; ++round) {
        pool.parallelFor(kCount,
                         [&](Index i) { hits[i].fetch_add(1); });
        for (Index i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), round + 1) << "index " << i;
    }
    pool.parallelFor(0, [&](Index) { FAIL(); });
}

TEST(DncdThreads, FourThreadsBitIdenticalToSequential)
{
    DncConfig seq = smallConfig();
    seq.memoryRows = 64;
    DncConfig par = seq;
    par.numThreads = 4;

    DncD a(seq, 4);
    DncD b(par, 4);
    Rng rng(301);
    for (int step = 0; step < 12; ++step) {
        const InterfaceVector iface = randomIface(seq, rng);
        const MemoryReadout ra = a.stepInterface(iface);
        const MemoryReadout rb = b.stepInterface(iface);
        ASSERT_EQ(ra.readVectors.size(), rb.readVectors.size());
        for (Index h = 0; h < ra.readVectors.size(); ++h) {
            EXPECT_EQ(ra.readVectors[h], rb.readVectors[h]);
            EXPECT_EQ(ra.readWeightings[h], rb.readWeightings[h]);
        }
        EXPECT_EQ(ra.writeWeighting, rb.writeWeighting);
        EXPECT_EQ(a.lastAlphas(), b.lastAlphas());
    }
}

} // namespace
} // namespace hima
