/**
 * @file
 * Tests for the allocation-free hot path: every destination-passing
 * kernel must match its value-returning counterpart bit-for-bit, the
 * memory unit's row-norm cache must stay equal to freshly computed
 * norms under randomized write sequences, a steady-state
 * MemoryUnit::stepInto() must perform zero heap allocations (checked
 * via a global operator-new hook), and the threaded DNC-D tile path
 * must be bit-identical to the sequential one.
 */

#include <atomic>
#include <cstdlib>
#include <cstdint>
#include <new>

#include <gtest/gtest.h>

#include "approx/fixed_point.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "dnc/dncd.h"
#include "dnc/memory_unit.h"

// --------------------------------------------------------------------
// Global operator-new hook: counts every heap allocation in the test
// binary. The zero-allocation assertions read the counter delta around
// a steady-state step.
// --------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocationCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hima {
namespace {

// --------------------------------------------------------------------
// Destination-passing kernels match the value-returning API.
// --------------------------------------------------------------------

class InplaceKernels : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng_{static_cast<std::uint64_t>(GetParam()) * 7919 + 1};
};

TEST_P(InplaceKernels, VectorKernelsMatch)
{
    const Index n = 1 + rng_.uniformInt(48);
    const Vector a = rng_.normalVector(n);
    const Vector b = rng_.normalVector(n);
    const Real s = rng_.uniform(-3.0, 3.0);

    Vector out;
    addInto(a, b, out);
    EXPECT_EQ(out, add(a, b));
    subInto(a, b, out);
    EXPECT_EQ(out, sub(a, b));
    mulInto(a, b, out);
    EXPECT_EQ(out, mul(a, b));

    out = a;
    scaleInPlace(out, s);
    EXPECT_EQ(out, scale(a, s));

    out = a;
    addInPlace(out, b);
    EXPECT_EQ(out, add(a, b));

    out = b;
    axpy(s, a, out);
    EXPECT_EQ(out, add(b, scale(a, s)));

    softmaxInto(a, out);
    EXPECT_EQ(out, softmax(a));
}

TEST_P(InplaceKernels, ElementwiseAliasingIsAllowed)
{
    const Index n = 1 + rng_.uniformInt(32);
    const Vector a = rng_.normalVector(n);
    const Vector b = rng_.normalVector(n);

    Vector alias = a;
    addInto(alias, b, alias);
    EXPECT_EQ(alias, add(a, b));

    alias = a;
    softmaxInto(alias, alias);
    EXPECT_EQ(alias, softmax(a));
}

TEST_P(InplaceKernels, MatrixKernelsMatch)
{
    const Index rows = 1 + rng_.uniformInt(16);
    const Index cols = 1 + rng_.uniformInt(16);
    const Matrix m = rng_.normalMatrix(rows, cols);
    const Vector x = rng_.normalVector(cols);
    const Vector xr = rng_.normalVector(rows);

    Vector y;
    matVecInto(m, x, y);
    EXPECT_EQ(y, matVec(m, x));

    Vector acc = rng_.normalVector(rows);
    const Vector expected = add(acc, matVec(m, x));
    matVecAccumulate(m, x, acc);
    EXPECT_EQ(acc, expected);

    matTVecInto(m, xr, y);
    EXPECT_EQ(y, matTVec(m, xr));

    Matrix o(rows, cols);
    outerAccumulate(xr, x, 1.0, o);
    EXPECT_EQ(o, outer(xr, x));

    const Index inner = 1 + rng_.uniformInt(8);
    const Matrix a = rng_.normalMatrix(rows, inner);
    const Matrix b = rng_.normalMatrix(inner, cols);
    Matrix prod;
    matMulInto(a, b, prod);
    EXPECT_EQ(prod, matMul(a, b));
}

TEST_P(InplaceKernels, RowKernelsMatchMaterializedRows)
{
    const Index rows = 1 + rng_.uniformInt(12);
    const Index cols = 1 + rng_.uniformInt(12);
    const Matrix m = rng_.normalMatrix(rows, cols);
    const Vector x = rng_.normalVector(cols);
    for (Index r = 0; r < rows; ++r) {
        EXPECT_DOUBLE_EQ(dotRow(m, r, x), dot(m.row(r), x));
        EXPECT_DOUBLE_EQ(rowNorm(m, r), m.row(r).norm());
    }
}

TEST_P(InplaceKernels, QuantizeInPlaceMatches)
{
    const Index n = 1 + rng_.uniformInt(32);
    const Vector v = rng_.normalVector(n, 0.0, 100.0);
    Vector q = v;
    quantizeInPlace(q);
    EXPECT_EQ(q, quantize(v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InplaceKernels, ::testing::Range(0, 8));

// --------------------------------------------------------------------
// Memory-unit helpers shared by the cache / allocation / DNC-D tests.
// --------------------------------------------------------------------

DncConfig
smallConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 32;
    cfg.memoryWidth = 16;
    cfg.readHeads = 2;
    return cfg;
}

/** A randomized but valid interface vector (mixed write/read traffic). */
InterfaceVector
randomIface(const DncConfig &cfg, Rng &rng)
{
    InterfaceVector iface;
    iface.readKeys.clear();
    for (Index h = 0; h < cfg.readHeads; ++h)
        iface.readKeys.push_back(rng.normalVector(cfg.memoryWidth));
    iface.readStrengths.assign(cfg.readHeads, 1.0 + rng.uniform(0.0, 8.0));
    iface.writeKey = rng.normalVector(cfg.memoryWidth);
    iface.writeStrength = 1.0 + rng.uniform(0.0, 8.0);
    iface.eraseVector = rng.uniformVector(cfg.memoryWidth, 0.05, 0.95);
    iface.writeVector = rng.normalVector(cfg.memoryWidth);
    iface.freeGates.assign(cfg.readHeads, rng.uniform(0.0, 0.4));
    iface.allocationGate = rng.uniform();
    iface.writeGate = rng.uniform(0.2, 1.0);
    const Real b = rng.uniform(0.0, 1.0);
    const Real c = rng.uniform(0.0, 1.0 - b);
    iface.readModes.assign(cfg.readHeads, ReadMode{b, c, 1.0 - b - c});
    return iface;
}

void
expectNormCacheFresh(const MemoryUnit &mu)
{
    for (Index i = 0; i < mu.memory().rows(); ++i) {
        EXPECT_DOUBLE_EQ(mu.rowNorms()[i], mu.memory().row(i).norm())
            << "row " << i;
    }
}

// --------------------------------------------------------------------
// Row-norm cache invariant.
// --------------------------------------------------------------------

TEST(RowNormCache, MatchesFreshNormsAfterRandomizedWrites)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(101);
    for (int step = 0; step < 40; ++step) {
        mu.step(randomIface(cfg, rng));
        expectNormCacheFresh(mu);
    }
}

TEST(RowNormCache, HoldsUnderWriteSkipThreshold)
{
    // With a positive skip threshold, low-weight rows are not written at
    // all — so the cache must still match the *actual* memory exactly.
    DncConfig cfg = smallConfig();
    cfg.writeSkipThreshold = 1e-6;
    MemoryUnit mu(cfg);
    Rng rng(102);
    for (int step = 0; step < 40; ++step) {
        mu.step(randomIface(cfg, rng));
        expectNormCacheFresh(mu);
    }
}

TEST(RowNormCache, HoldsInFixedPointMode)
{
    DncConfig cfg = smallConfig();
    cfg.fixedPoint = true;
    MemoryUnit mu(cfg);
    Rng rng(103);
    for (int step = 0; step < 20; ++step) {
        mu.step(randomIface(cfg, rng));
        expectNormCacheFresh(mu);
    }
}

TEST(RowNormCache, ResetRestoresZeroNorms)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(104);
    mu.step(randomIface(cfg, rng));
    mu.reset();
    expectNormCacheFresh(mu);
    EXPECT_DOUBLE_EQ(mu.rowNorms().sum(), 0.0);
}

TEST(RowNormCache, CachedWeightingMatchesUncachedReference)
{
    // Content addressing through the cache must equal the from-scratch
    // reference path bit-for-bit.
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(105);
    for (int step = 0; step < 10; ++step)
        mu.step(randomIface(cfg, rng));

    ContentAddressing ca;
    const Vector key = rng.normalVector(cfg.memoryWidth);
    Vector scores, cached;
    ca.weightingInto(mu.memory(), key, 7.0, &mu.rowNorms(), scores, cached);
    const Vector reference = ca.weighting(mu.memory(), key, 7.0);
    EXPECT_EQ(cached, reference);
}

// --------------------------------------------------------------------
// Zero steady-state allocations.
// --------------------------------------------------------------------

TEST(ZeroAllocation, SteadyStateMemoryUnitStep)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(201);

    // Pre-build the interfaces so the measured region is pure stepInto.
    std::vector<InterfaceVector> ifaces;
    for (int i = 0; i < 8; ++i)
        ifaces.push_back(randomIface(cfg, rng));

    MemoryReadout out;
    mu.stepInto(ifaces[0], out); // first call sizes every buffer
    mu.stepInto(ifaces[1], out);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 2; i < 8; ++i)
        mu.stepInto(ifaces[i], out);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state stepInto performed heap allocations";
}

TEST(ZeroAllocation, SteadyStateHoldsAtLargerShapes)
{
    DncConfig cfg;
    cfg.memoryRows = 128;
    cfg.memoryWidth = 32;
    cfg.readHeads = 4;
    MemoryUnit mu(cfg);
    Rng rng(202);
    const InterfaceVector iface = randomIface(cfg, rng);

    MemoryReadout out;
    mu.stepInto(iface, out);
    mu.stepInto(iface, out);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    mu.stepInto(iface, out);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
}

// --------------------------------------------------------------------
// Thread pool and threaded DNC-D determinism.
// --------------------------------------------------------------------

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    constexpr Index kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    for (auto &h : hits)
        h.store(0);
    // Repeated jobs through the same pool: the second run would expose
    // stale workers crossing job generations.
    for (int round = 0; round < 3; ++round) {
        pool.parallelFor(kCount,
                         [&](Index i) { hits[i].fetch_add(1); });
        for (Index i = 0; i < kCount; ++i)
            ASSERT_EQ(hits[i].load(), round + 1) << "index " << i;
    }
    pool.parallelFor(0, [&](Index) { FAIL(); });
}

TEST(DncdThreads, FourThreadsBitIdenticalToSequential)
{
    DncConfig seq = smallConfig();
    seq.memoryRows = 64;
    DncConfig par = seq;
    par.numThreads = 4;

    DncD a(seq, 4);
    DncD b(par, 4);
    Rng rng(301);
    for (int step = 0; step < 12; ++step) {
        const InterfaceVector iface = randomIface(seq, rng);
        const MemoryReadout ra = a.stepInterface(iface);
        const MemoryReadout rb = b.stepInterface(iface);
        ASSERT_EQ(ra.readVectors.size(), rb.readVectors.size());
        for (Index h = 0; h < ra.readVectors.size(); ++h) {
            EXPECT_EQ(ra.readVectors[h], rb.readVectors[h]);
            EXPECT_EQ(ra.readWeightings[h], rb.readWeightings[h]);
        }
        EXPECT_EQ(ra.writeWeighting, rb.writeWeighting);
        EXPECT_EQ(a.lastAlphas(), b.lastAlphas());
    }
}

} // namespace
} // namespace hima
