/**
 * @file
 * Transport-layer regression suite: the shared-memory ring channel
 * (rendezvous, wrap-around, in-place frames, timeout/close diagnosis,
 * malformed-slot fuzzing) and the socket bug sweep — send-side timeout
 * diagnosis, the zero-recv-timeout clamp, Unix listener double-bind
 * protection — plus wire-traffic accounting across a v3 recovery
 * (respawn + restore + replay must not double-count frames).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "golden_util.h"
#include "shard/local_cluster.h"

namespace hima {
namespace {

/** Fresh shm name per test so concurrent/retried runs never collide. */
std::string
uniqueShmName(const char *tag)
{
    static std::atomic<int> counter{0};
    return "/hima_test_" + std::string(tag) + "_" +
           std::to_string(static_cast<long>(::getpid())) + "_" +
           std::to_string(counter.fetch_add(1));
}

/** Fresh Unix socket path per test (same collision story). */
std::string
uniqueSockPath(const char *tag)
{
    static std::atomic<int> counter{0};
    return "/tmp/hima_test_" + std::string(tag) + "_" +
           std::to_string(static_cast<long>(::getpid())) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** A payload whose bytes encode (tag, index) so frames are tellable. */
std::vector<std::uint8_t>
patternPayload(std::uint8_t tag, std::size_t bytes)
{
    std::vector<std::uint8_t> payload(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
        payload[i] = static_cast<std::uint8_t>(tag + i * 131);
    return payload;
}

std::uint64_t
frames(const WireTrafficStats &stats, MsgType type)
{
    return stats.frames[static_cast<std::size_t>(type)];
}

// --------------------------------------------------------------------
// ShmChannel: ring mechanics.
// --------------------------------------------------------------------

TEST(ShmChannelRing, PingPongWrapsPastSlotCountInBothDirections)
{
    const std::string name = uniqueShmName("pingpong");
    auto a = ShmChannel::create(name, /*slotBytes=*/4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, /*timeoutMs=*/2000);
    ASSERT_TRUE(b != nullptr);
    EXPECT_EQ(a->slotBytes(), b->slotBytes());
    EXPECT_EQ(a->slotCount(), b->slotCount());

    // Far more round trips than slots, with frame sizes sweeping from
    // tiny to a full slot: head/tail are monotonic counters, so every
    // slot index is revisited many times and any wrap-around bug in the
    // index arithmetic shows up as a payload mismatch.
    const int rounds = static_cast<int>(3 * a->slotCount() + 5);
    std::vector<std::uint8_t> frame;
    for (int i = 0; i < rounds; ++i) {
        const std::size_t bytes = 1 + (i * 509) % a->slotBytes();
        const auto ping = patternPayload(static_cast<std::uint8_t>(i), bytes);
        a->sendFrame(ping.data(), ping.size());
        ASSERT_TRUE(b->recvFrame(frame)) << "round " << i;
        ASSERT_TRUE(frame == ping) << "ping payload diverged at " << i;

        const auto pong =
            patternPayload(static_cast<std::uint8_t>(i + 7), bytes / 2 + 1);
        b->sendFrame(pong.data(), pong.size());
        ASSERT_TRUE(a->recvFrame(frame)) << "round " << i;
        ASSERT_TRUE(frame == pong) << "pong payload diverged at " << i;
    }
    EXPECT_GT(a->bytesSent(), 0u);
    EXPECT_EQ(a->bytesSent(), b->bytesReceived());
    EXPECT_EQ(b->bytesSent(), a->bytesReceived());
}

TEST(ShmChannelRing, InPlaceFramesLandInsideTheMappingAndDecode)
{
    const std::string name = uniqueShmName("inplace");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);

    WireWriter staging;
    for (std::uint64_t seq = 1; seq <= 20; ++seq) {
        FrameScope frame(*a, staging);
        encodeCheckpointRequest(seq, frame.writer());
        frame.commit();
        // Zero-copy send: the staging writer must not have been used.
        EXPECT_EQ(staging.size(), 0u);

        const std::uint8_t *data = nullptr;
        std::size_t size = 0;
        std::vector<std::uint8_t> scratch;
        ASSERT_TRUE(b->recvFrameView(data, size, scratch));
        // Zero-copy receive: the borrowed view points into the mapped
        // region, not into the scratch vector.
        const std::uint8_t *lo = b->rawRegionForTest();
        EXPECT_TRUE(data >= lo && data + size <= lo + b->regionBytesForTest())
            << "view does not point into the shm mapping";
        std::uint64_t got = 0;
        ASSERT_TRUE(decodeCheckpointRequest(data, size, got));
        EXPECT_EQ(got, seq);
    }
    EXPECT_EQ(frames(a->sentStats(), MsgType::CheckpointRequest), 20u);
    EXPECT_EQ(frames(b->receivedStats(), MsgType::CheckpointRequest), 20u);
}

TEST(ShmChannelRing, BorrowedViewSurvivesAReplyOnTheOppositeRing)
{
    const std::string name = uniqueShmName("borrow");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);

    const auto request = patternPayload(3, 777);
    a->sendFrame(request.data(), request.size());

    const std::uint8_t *view = nullptr;
    std::size_t viewSize = 0;
    std::vector<std::uint8_t> scratch;
    ASSERT_TRUE(b->recvFrameView(view, viewSize, scratch));
    ASSERT_EQ(viewSize, request.size());

    // The serve loop's shape: encode the reply while the request view
    // is still on loan. The directions are separate rings, so the send
    // must not recycle the borrowed slot.
    const auto reply = patternPayload(9, 512);
    b->sendFrame(reply.data(), reply.size());
    EXPECT_EQ(std::memcmp(view, request.data(), viewSize), 0)
        << "reply send invalidated the borrowed request view";

    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(a->recvFrame(frame));
    EXPECT_TRUE(frame == reply);
}

TEST(ShmChannelRing, RendezvousRefusalsAreFailClosed)
{
    const std::string name = uniqueShmName("rendezvous");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    // A live name is never displaced: the second create must fail
    // instead of stealing the region out from under `a`.
    EXPECT_TRUE(ShmChannel::create(name, 4096) == nullptr);

    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);
    // The attached end is claimed by CAS; a third peer cannot join an
    // SPSC pair.
    EXPECT_TRUE(ShmChannel::attach(name, 200) == nullptr);

    // Attaching to a name nobody created polls out and returns null.
    EXPECT_TRUE(ShmChannel::attach(uniqueShmName("absent"), 100) == nullptr);

    // The refused rendezvous attempts must not have harmed the pair.
    const auto payload = patternPayload(1, 64);
    a->sendFrame(payload.data(), payload.size());
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(b->recvFrame(frame));
    EXPECT_TRUE(frame == payload);
}

TEST(ShmChannelRing, RecvTimeoutIsDiagnosedAsTimeoutAndSticky)
{
    const std::string name = uniqueShmName("timeout");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);

    b->setRecvTimeout(50);
    std::vector<std::uint8_t> frame;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(b->recvFrame(frame));
    const auto waited = std::chrono::steady_clock::now() - start;
    EXPECT_GE(waited, std::chrono::milliseconds(40));
    EXPECT_LT(waited, std::chrono::seconds(10));
    EXPECT_TRUE(b->timedOut());
    EXPECT_EQ(shardRecvError(*b, "step", 1, 0).kind,
              ShardError::Kind::RecvTimeout);

    // The expiry is sticky (the peer may have half-published a frame we
    // gave up waiting on): a later send must not resurrect the channel,
    // and the diagnosis must stay "timeout", not morph into "closed".
    const auto late = patternPayload(5, 32);
    a->sendFrame(late.data(), late.size());
    EXPECT_FALSE(b->recvFrame(frame));
    EXPECT_TRUE(b->timedOut());
}

TEST(ShmChannelRing, ZeroRecvTimeoutMeansBoundedNotForever)
{
    const std::string name = uniqueShmName("zerotimeout");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);

    // POSIX reads a zero timeout as "block forever"; a caller asking
    // for 0 means the opposite. The clamp turns it into the tightest
    // bound instead of an infinite hang.
    b->setRecvTimeout(0);
    std::vector<std::uint8_t> frame;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(b->recvFrame(frame));
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(5));
    EXPECT_TRUE(b->timedOut());
}

TEST(ShmChannelRing, OrderlyCloseDrainsQueuedFramesThenReportsEof)
{
    const std::string name = uniqueShmName("close");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);

    const auto first = patternPayload(2, 100);
    const auto second = patternPayload(4, 200);
    a->sendFrame(first.data(), first.size());
    a->sendFrame(second.data(), second.size());
    a.reset(); // peer closes with frames still in the ring

    b->setRecvTimeout(2000);
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(b->recvFrame(frame));
    EXPECT_TRUE(frame == first);
    ASSERT_TRUE(b->recvFrame(frame));
    EXPECT_TRUE(frame == second);
    // Ring drained + peer closed = EOF, and the diagnosis must be
    // "closed", not "timed out" — recovery treats the two differently.
    EXPECT_FALSE(b->recvFrame(frame));
    EXPECT_FALSE(b->timedOut());
    EXPECT_EQ(shardRecvError(*b, "step", 1, 0).kind,
              ShardError::Kind::ChannelClosed);
}

// --------------------------------------------------------------------
// ShmChannel: malformed-slot fuzzing. The payload inside a slot is the
// ordinary wire encoding and the slot framing is validated on receive,
// so a scribbled region degrades to a failed receive or a failed
// decode — never to an out-of-bounds read or a hang.
// --------------------------------------------------------------------

/** Find `needle` inside the mapped region (the slot holding it). */
std::uint8_t *
findInRegion(ShmChannel &chan, const std::vector<std::uint8_t> &needle)
{
    std::uint8_t *lo = chan.rawRegionForTest();
    std::uint8_t *hi = lo + chan.regionBytesForTest();
    for (std::uint8_t *p = lo; p + needle.size() <= hi; ++p)
        if (std::memcmp(p, needle.data(), needle.size()) == 0)
            return p;
    return nullptr;
}

class ShmSlotFuzz : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ShmSlotFuzz, OversizedSlotLengthFailsClosed)
{
    const std::string name = uniqueShmName("fuzzlen");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);

    const auto payload = patternPayload(0x5A, 96);
    a->sendFrame(payload.data(), payload.size());

    // Locate the slot and scribble its u64 length prefix (the 8 bytes
    // before the payload) with a length no honest sender can produce.
    std::uint8_t *slot = findInRegion(*b, payload);
    ASSERT_TRUE(slot != nullptr) << "published payload not found in region";
    const std::uint64_t evil = GetParam();
    std::memcpy(slot - 8, &evil, sizeof(evil));

    b->setRecvTimeout(200);
    std::vector<std::uint8_t> frame;
    EXPECT_FALSE(b->recvFrame(frame));
    EXPECT_FALSE(b->timedOut()) << "corruption must read as broken, "
                                   "not as a timeout";
    // Fail-closed is sticky: the ring metadata can no longer be
    // trusted, so later receives keep failing rather than resyncing.
    const auto more = patternPayload(0x11, 16);
    a->sendFrame(more.data(), more.size());
    EXPECT_FALSE(b->recvFrame(frame));
}

INSTANTIATE_TEST_SUITE_P(
    Lengths, ShmSlotFuzz,
    // Just past the slot capacity, and far past every sane bound
    // (would also blow kWireMaxFrameBytes) — both must fail closed.
    ::testing::Values(std::uint64_t{4096 + 1}, std::uint64_t{1} << 40));

TEST(ShmSlotFuzzSuite, CorruptPayloadIsRejectedByTheDecoder)
{
    const std::string name = uniqueShmName("fuzzpayload");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);

    WireWriter staging;
    {
        FrameScope frame(*a, staging);
        encodeCheckpointRequest(42, frame.writer());
        frame.commit();
    }
    // Flip every byte of the published payload (header included) in
    // place — the slot framing stays intact, so the frame is delivered,
    // and the fail-closed codec must refuse it. Locate the slot by
    // re-encoding the identical frame into a staging writer.
    const std::uint8_t *view = nullptr;
    std::size_t size = 0;
    std::vector<std::uint8_t> scratch;
    WireWriter expect;
    encodeCheckpointRequest(42, expect);
    std::vector<std::uint8_t> needle(expect.data(),
                                     expect.data() + expect.size());
    std::uint8_t *slot = findInRegion(*b, needle);
    ASSERT_TRUE(slot != nullptr);
    for (std::size_t i = 0; i < needle.size(); ++i)
        slot[i] = static_cast<std::uint8_t>(~slot[i]);

    ASSERT_TRUE(b->recvFrameView(view, size, scratch));
    MsgType type;
    EXPECT_FALSE(peekType(view, size, type))
        << "corrupted payload parsed as a valid frame header";
    std::uint64_t seq = 0;
    EXPECT_FALSE(decodeCheckpointRequest(view, size, seq));
    // Unparsable frames land in stats slot 0, the wire-health canary.
    EXPECT_EQ(b->receivedStats().frames[0], 1u);
}

TEST(ShmSlotFuzzSuite, GarbageHeadCounterDegradesToFailureNotCorruption)
{
    const std::string name = uniqueShmName("fuzzhead");
    auto a = ShmChannel::create(name, 4096);
    ASSERT_TRUE(a != nullptr);
    auto b = ShmChannel::attach(name, 2000);
    ASSERT_TRUE(b != nullptr);

    const auto payload = patternPayload(0x33, 48);
    a->sendFrame(payload.data(), payload.size());
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(b->recvFrame(frame));

    // Scribble a stale/absurd value over the first cache lines of the
    // rings region (head/tail/eventcount words live there). Whatever
    // lands, the receive path must stay bounded: either a failed
    // receive (timeout / fail-closed length) or a delivered frame the
    // fail-closed codec rejects — never a hang, crash or wild read.
    std::uint8_t *ringWords = b->rawRegionForTest() + 64;
    for (std::size_t i = 0; i < 256; i += 8) {
        const std::uint64_t garbage = 0xFFFFFFFFFFFF0000ull + i;
        std::memcpy(ringWords + i, &garbage, sizeof(garbage));
    }
    b->setRecvTimeout(100);
    const auto start = std::chrono::steady_clock::now();
    if (b->recvFrame(frame)) {
        MsgType type;
        EXPECT_FALSE(peekType(frame.data(), frame.size(), type) &&
                     frame == payload)
            << "stale ring metadata replayed a frame as if it were new";
    }
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(10));
}

// --------------------------------------------------------------------
// Socket sweep: send-side timeout diagnosis, the zero-timeout clamp,
// and Unix listener double-bind protection.
// --------------------------------------------------------------------

/** A connected Unix-domain pair (listener kept alive by the caller). */
struct SocketPair
{
    std::unique_ptr<SocketListener> listener;
    std::unique_ptr<SocketChannel> client;
    std::unique_ptr<SocketChannel> server;
};

SocketPair
makeUnixPair(const char *tag)
{
    SocketPair pair;
    pair.listener = SocketListener::listenUnix(uniqueSockPath(tag));
    EXPECT_TRUE(pair.listener != nullptr);
    if (!pair.listener)
        return pair;
    // The connect completes against the listen backlog, so a single
    // thread can connect first and accept after.
    pair.client = SocketChannel::connectUnix(pair.listener->path());
    EXPECT_TRUE(pair.client != nullptr);
    pair.server = pair.listener->accept();
    EXPECT_TRUE(pair.server != nullptr);
    return pair;
}

TEST(SocketTimeout, BlockedSendExpiresAndIsDiagnosedAsTimeout)
{
    SocketPair pair = makeUnixPair("sendtimeout");
    ASSERT_TRUE(pair.client && pair.server);

    // Bound sends and receives, then write into a peer that never
    // reads. Once both kernel buffers fill, writeFully() blocks and
    // SO_SNDTIMEO must expire it — before the fix the partial-write
    // loop spun on EAGAIN-less blocking writes forever.
    pair.client->setRecvTimeout(50);
    const auto hunk = patternPayload(0x77, std::size_t{1} << 20);
    for (int i = 0; i < 64 && !pair.client->timedOut(); ++i)
        pair.client->sendFrame(hunk.data(), hunk.size());

    EXPECT_TRUE(pair.client->timedOut())
        << "64 MiB queued against a non-reading peer without the "
           "send bound expiring";
    // The wedged-peer diagnosis must read as a timeout (recovery
    // respawns the worker) and not as an orderly close.
    EXPECT_EQ(shardRecvError(*pair.client, "step", 1, 0).kind,
              ShardError::Kind::RecvTimeout);
    // The channel is broken from then on: receives fail immediately.
    std::vector<std::uint8_t> frame;
    EXPECT_FALSE(pair.client->recvFrame(frame));
    EXPECT_TRUE(pair.client->timedOut());
}

TEST(SocketTimeout, ZeroRecvTimeoutMeansBoundedNotForever)
{
    SocketPair pair = makeUnixPair("zerotimeout");
    ASSERT_TRUE(pair.client && pair.server);

    // Before the clamp this armed SO_RCVTIMEO with a zero timeval —
    // which the kernel reads as "no timeout" — and recvFrame() hung
    // forever on a silent peer.
    pair.client->setRecvTimeout(0);
    std::vector<std::uint8_t> frame;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(pair.client->recvFrame(frame));
    EXPECT_LT(std::chrono::steady_clock::now() - start,
              std::chrono::seconds(5));
    EXPECT_TRUE(pair.client->timedOut());
}

TEST(SocketTimeoutDeathTest, ZeroConfiguredRecvTimeoutIsRejected)
{
    // The config-side guard: a deployment asking for an unbounded
    // coordinator recv is a deployment that hangs on its first dead
    // worker, so validate() refuses it outright.
    DncConfig cfg;
    cfg.shardRecvTimeoutMs = 0;
    EXPECT_DEATH(cfg.validate(), "shardRecvTimeoutMs");
}

TEST(UnixListener, SecondListenerOnALivePathIsRefused)
{
    const std::string path = uniqueSockPath("doublebind");
    auto first = SocketListener::listenUnix(path);
    ASSERT_TRUE(first != nullptr);

    // A real client connects first (the backlog is FIFO, so the
    // liveness probe below queues behind it and is never accepted
    // here).
    auto client = SocketChannel::connectUnix(path);
    ASSERT_TRUE(client != nullptr);

    // Before the probe-connect fix this unlinked the live socket file
    // and bound a second listener in its place, silently stealing every
    // future connect from `first`.
    EXPECT_TRUE(SocketListener::listenUnix(path) == nullptr);

    // And the refusal must not have damaged the live listener.
    auto server = first->accept();
    ASSERT_TRUE(server != nullptr);
    const auto payload = patternPayload(8, 64);
    client->sendFrame(payload.data(), payload.size());
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(server->recvFrame(frame));
    EXPECT_TRUE(frame == payload);
}

TEST(UnixListener, TrulyStaleSocketFileIsDisplaced)
{
    // A crashed worker leaves a bound-but-dead socket file behind: the
    // probe connect is refused, so the new listener may take the path.
    const std::string path = uniqueSockPath("stale");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ::close(fd); // dead socket, file left behind

    auto listener = SocketListener::listenUnix(path);
    ASSERT_TRUE(listener != nullptr)
        << "stale socket file was not displaced";
    auto client = SocketChannel::connectUnix(path);
    ASSERT_TRUE(client != nullptr);
    EXPECT_TRUE(listener->accept() != nullptr);
}

// --------------------------------------------------------------------
// Traffic accounting across a v3 recovery: the respawn + restore +
// replay sequence must account every frame exactly once on the
// replacement channel — no double counting between the replay log and
// the in-flight resend, and the undisturbed worker's counters must not
// move at all beyond its normal stream.
// --------------------------------------------------------------------

class RecoveryTrafficAccounting
    : public ::testing::TestWithParam<ClusterTransport>
{};

TEST_P(RecoveryTrafficAccounting, ReplayCountsEveryFrameExactlyOnce)
{
    const ClusterTransport transport = GetParam();
    DncConfig cfg;
    cfg.memoryRows = 16;
    cfg.memoryWidth = 12;
    cfg.readHeads = 2;
    cfg.controllerSize = 24;
    cfg.inputSize = 10;
    cfg.outputSize = 8;
    cfg.shardCheckpointIntervalSteps = 4;
    const Index tiles = 2;

    LocalShardCluster stack = makeLocalCluster(transport, cfg, tiles, 2);
    ASSERT_TRUE(stack.coordinator != nullptr);
    auto harness = armClusterRecovery(stack, transport);
    DncD ref(cfg, tiles);

    // Worker 0 dies receiving its 6th Step frame: one step past the
    // step-4 checkpoint is logged (step 5), and step 6 itself is the
    // in-flight frame the recovery resends after the replay.
    FaultSpec kill;
    kill.killAtStepFrame = 6;
    stack.workers[0]->injectFault(kill);

    Rng rng(808);
    constexpr int kSteps = 12;
    for (int step = 0; step < kSteps; ++step) {
        const InterfaceVector iface = golden::randomIface(cfg, rng);
        const MemoryReadout a = ref.stepInterface(iface);
        const MemoryReadout b = stack.coordinator->stepInterface(iface);
        for (Index h = 0; h < cfg.readHeads; ++h)
            ASSERT_TRUE(a.readVectors[h] == b.readVectors[h])
                << "diverged at step " << step << " head " << h;
    }
    ASSERT_TRUE(stack.workers[0]->faultFired());
    EXPECT_EQ(stack.coordinator->recoveries(), 1u);
    EXPECT_EQ(stack.coordinator->checkpointsTaken(), 3u); // steps 4, 8, 12

    // channel(0) is the replacement: it saw Rejoin + Restore, the
    // replayed step 5, the resent in-flight step 6, live steps 7-12,
    // and the checkpoint pulls at steps 8 and 12. Exactly that — a
    // frame counted during replay AND again on the resend would show
    // up here as Step > 8.
    const Channel &repl = stack.coordinator->channel(0);
    EXPECT_EQ(frames(repl.sentStats(), MsgType::Hello), 0u);
    EXPECT_EQ(frames(repl.sentStats(), MsgType::Rejoin), 1u);
    EXPECT_EQ(frames(repl.sentStats(), MsgType::Restore), 1u);
    EXPECT_EQ(frames(repl.sentStats(), MsgType::Step), 8u);
    EXPECT_EQ(frames(repl.sentStats(), MsgType::CheckpointRequest), 2u);
    EXPECT_EQ(frames(repl.receivedStats(), MsgType::HelloAck), 1u);
    EXPECT_EQ(frames(repl.receivedStats(), MsgType::ControlAck), 1u);
    EXPECT_EQ(frames(repl.receivedStats(), MsgType::StepReply), 8u);
    EXPECT_EQ(frames(repl.receivedStats(), MsgType::CheckpointState), 2u);
    // Every request produced exactly one reply — the ledger balances.
    EXPECT_EQ(repl.sentStats().totalFrames(),
              repl.receivedStats().totalFrames());

    // channel(1) never died: one Hello, one Step per coordinator step,
    // one checkpoint pull per interval — recovery of its neighbour must
    // not have touched its stream.
    const Channel &calm = stack.coordinator->channel(1);
    EXPECT_EQ(frames(calm.sentStats(), MsgType::Hello), 1u);
    EXPECT_EQ(frames(calm.sentStats(), MsgType::Rejoin), 0u);
    EXPECT_EQ(frames(calm.sentStats(), MsgType::Step),
              static_cast<std::uint64_t>(kSteps));
    EXPECT_EQ(frames(calm.sentStats(), MsgType::CheckpointRequest), 3u);
    EXPECT_EQ(frames(calm.receivedStats(), MsgType::StepReply),
              static_cast<std::uint64_t>(kSteps));
    EXPECT_EQ(frames(calm.receivedStats(), MsgType::CheckpointState), 3u);
    // No unparsable frames anywhere on a healthy wire.
    EXPECT_EQ(repl.receivedStats().frames[0], 0u);
    EXPECT_EQ(calm.receivedStats().frames[0], 0u);
}

INSTANTIATE_TEST_SUITE_P(Transports, RecoveryTrafficAccounting,
                         ::testing::Values(ClusterTransport::Loopback,
                                           ClusterTransport::Shm),
                         [](const auto &info) {
                             return info.param == ClusterTransport::Loopback
                                        ? "Loopback"
                                        : "Shm";
                         });

} // namespace
} // namespace hima
