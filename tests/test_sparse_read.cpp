/**
 * @file
 * End-to-end active-set sparsity suite: the sparse read stage
 * (norm-cache similarity skip + sparse memory read), the column-sparse
 * linkage sweeps, skip-count accounting against the profiler, the
 * one-pass restore-rebuild contract, and the new config validations.
 */

#include <cmath>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "dnc/memory_unit.h"
#include "dnc/temporal_linkage.h"
#include "golden_util.h"

namespace hima {
namespace {

DncConfig
sparseCfg(Index rows = 48)
{
    DncConfig cfg;
    cfg.memoryRows = rows;
    cfg.memoryWidth = 16;
    cfg.readHeads = 2;
    return cfg;
}

/**
 * Allocation-gated write: while zero-usage slots remain, the allocation
 * weighting is exactly one-hot and the content blend is multiplied by
 * (1 - allocationGate) == +0.0, so each step touches exactly one fresh
 * slot and every untouched row stays bitwise zero.
 */
InterfaceVector
allocationIface(const DncConfig &cfg, Rng &rng)
{
    InterfaceVector iface = golden::randomIface(cfg, rng);
    iface.allocationGate = 1.0;
    iface.writeGate = 1.0;
    return iface;
}

Index
countZeroNorms(const MemoryUnit &mu)
{
    Index zeros = 0;
    for (Index i = 0; i < mu.rowNorms().size(); ++i)
        if (mu.rowNorms()[i] == 0.0)
            ++zeros;
    return zeros;
}

void
expectUnitsIdentical(const MemoryUnit &a, const MemoryUnit &b, int step)
{
    SCOPED_TRACE(::testing::Message() << "step " << step);
    EXPECT_TRUE(a.memory() == b.memory()) << "memory diverged";
    EXPECT_TRUE(a.rowNorms() == b.rowNorms()) << "row norms diverged";
    EXPECT_TRUE(a.usage() == b.usage()) << "usage diverged";
    EXPECT_TRUE(a.writeWeighting() == b.writeWeighting())
        << "write weighting diverged";
    EXPECT_TRUE(a.linkage().linkage() == b.linkage().linkage())
        << "linkage diverged";
    EXPECT_TRUE(a.linkage().precedence() == b.linkage().precedence())
        << "precedence diverged";
    for (Index h = 0; h < a.readWeightings().size(); ++h)
        EXPECT_TRUE(a.readWeightings()[h] == b.readWeightings()[h])
            << "read weighting head " << h << " diverged";
}

} // namespace

// ------------------------------------------------------------- validate

TEST(SparseConfigDeathTest, RejectsNegativeLinkageSkipThreshold)
{
    DncConfig cfg = sparseCfg();
    cfg.linkageSkipThreshold = -1e-6;
    EXPECT_DEATH(cfg.validate(), "linkage skip threshold");
}

TEST(SparseConfigDeathTest, RejectsNanLinkageSkipThreshold)
{
    DncConfig cfg = sparseCfg();
    cfg.linkageSkipThreshold = std::numeric_limits<Real>::quiet_NaN();
    EXPECT_DEATH(cfg.validate(), "linkage skip threshold");
}

TEST(SparseConfigDeathTest, RejectsBadReadSkipThreshold)
{
    DncConfig cfg = sparseCfg();
    cfg.readSkipThreshold = -0.5;
    EXPECT_DEATH(cfg.validate(), "read skip threshold");
    cfg.readSkipThreshold = 1.0;
    EXPECT_DEATH(cfg.validate(), "read skip threshold");
    cfg.readSkipThreshold = std::numeric_limits<Real>::quiet_NaN();
    EXPECT_DEATH(cfg.validate(), "read skip threshold");
}

TEST(SparseConfigDeathTest, RejectsDenseSweepWithPositiveReadSkip)
{
    DncConfig cfg = sparseCfg();
    cfg.linkageDenseSweep = true;
    cfg.readSkipThreshold = 0.25;
    EXPECT_DEATH(cfg.validate(), "contradictory");
}

// ------------------------------------------------------ sparse == dense

/**
 * The standing contract: at threshold 0 the sparse read stage, sparse
 * memory read and column-sparse linkage sweeps are bit-identical to the
 * dense escape, across allocation-gated one-hot traffic, mixed soft
 * traffic and episode resets.
 */
TEST(SparseReadStage, ChurnLockstepBitIdenticalToDense)
{
    const DncConfig sparse = sparseCfg();
    DncConfig dense = sparse;
    dense.linkageDenseSweep = true;
    MemoryUnit a(sparse);
    MemoryUnit b(dense);
    MemoryReadout ra, rb;
    Rng rng(0x5eadULL);
    for (int step = 0; step < 160; ++step) {
        if (step > 0 && step % 40 == 0) {
            a.reset();
            b.reset();
        }
        const InterfaceVector iface = (step % 40 < 12)
                                          ? allocationIface(sparse, rng)
                                          : golden::randomIface(sparse, rng);
        a.stepInto(iface, ra);
        b.stepInto(iface, rb);
        for (Index h = 0; h < sparse.readHeads; ++h) {
            EXPECT_TRUE(ra.readVectors[h] == rb.readVectors[h])
                << "read vector head " << h << " step " << step;
            EXPECT_TRUE(ra.readWeightings[h] == rb.readWeightings[h])
                << "read weighting head " << h << " step " << step;
        }
        EXPECT_TRUE(ra.writeWeighting == rb.writeWeighting)
            << "write weighting step " << step;
        expectUnitsIdentical(a, b, step);
    }
}

/**
 * Predicted skip counts match the profiler. Per step the write content
 * weighting scores once against the pre-write norms and each of the R
 * read weightings against the post-write norms; the sparse memory read
 * skips the zero-norm rows once per head.
 */
TEST(SparseReadStage, SkipCountersMatchZeroNormPrediction)
{
    const DncConfig cfg = sparseCfg(32);
    MemoryUnit mu(cfg);
    MemoryReadout out;
    Rng rng(77);
    const std::uint64_t heads = cfg.readHeads;
    for (int step = 0; step < 24; ++step) {
        if (step == 16)
            mu.reset(); // resets re-zero rows: skips must resume
        const std::uint64_t zerosBefore = countZeroNorms(mu);
        const std::uint64_t simBefore =
            mu.profiler().at(Kernel::Similarity).skippedRows;
        const std::uint64_t mrBefore =
            mu.profiler().at(Kernel::MemoryRead).skippedRows;
        const InterfaceVector iface = allocationIface(cfg, rng);
        mu.stepInto(iface, out);
        const std::uint64_t zerosAfter = countZeroNorms(mu);
        EXPECT_EQ(mu.profiler().at(Kernel::Similarity).skippedRows - simBefore,
                  zerosBefore + heads * zerosAfter)
            << "step " << step;
        EXPECT_EQ(mu.profiler().at(Kernel::MemoryRead).skippedRows - mrBefore,
                  heads * zerosAfter)
            << "step " << step;
    }
}

/**
 * Rows skipped by the read stage contribute exactly-zero read weight:
 * after allocation-gated one-hot writes, every slot outside the touched
 * set holds +0.0 in the forward and backward weightings (the
 * column-sparse backward scatter never writes them) and the touched set
 * is exactly the union of write supports.
 */
TEST(SparseReadStage, UntouchedSlotsCarryExactlyZeroReadWeight)
{
    const DncConfig cfg = sparseCfg(24);
    MemoryUnit mu(cfg);
    MemoryReadout out;
    Rng rng(11);
    std::set<Index> written;
    for (int step = 0; step < 6; ++step) {
        mu.stepInto(allocationIface(cfg, rng), out);
        for (Index i = 0; i < cfg.memoryRows; ++i)
            if (out.writeWeighting[i] != 0.0)
                written.insert(i);
    }
    ASSERT_EQ(written.size(), 6u) << "one-hot allocation writes expected";
    const std::vector<Index> expected(written.begin(), written.end());
    EXPECT_EQ(mu.linkage().touchedSlots(), expected);

    Vector prev(cfg.memoryRows, 0.0);
    for (Index s : written)
        prev[s] = 1.0 / static_cast<Real>(written.size());
    Vector f, b;
    mu.linkage().forwardWeightingInto(prev, f);
    mu.linkage().backwardWeightingInto(prev, b);
    for (Index j = 0; j < cfg.memoryRows; ++j) {
        if (written.count(j))
            continue;
        EXPECT_EQ(f[j], 0.0) << "forward weight at untouched slot " << j;
        EXPECT_FALSE(std::signbit(f[j])) << "-0.0 at slot " << j;
        EXPECT_EQ(b[j], 0.0) << "backward weight at untouched slot " << j;
        EXPECT_FALSE(std::signbit(b[j])) << "-0.0 at slot " << j;
    }
}

// -------------------------------------------------------------- restore

/**
 * The one-pass fused restore rebuilds the norm cache from the restored
 * memory rows and never trusts the snapshot's copy (sparse checkpoint
 * frames do not even carry one). Fixed-point config keeps the quantized
 * values flowing through the same accumulation order.
 */
TEST(SparseRestore, FixedPointRestoreRebuildsNormsBitExactly)
{
    DncConfig cfg = sparseCfg();
    cfg.fixedPoint = true;
    MemoryUnit live(cfg);
    MemoryReadout out;
    Rng rng(123);
    for (int step = 0; step < 30; ++step)
        live.stepInto(step < 8 ? allocationIface(cfg, rng)
                               : golden::randomIface(cfg, rng),
                      out);

    MemoryTileState snap;
    live.captureState(snap);
    const Vector originalNorms = snap.rowNorms;
    snap.rowNorms.fill(777.0); // a trusted copy would poison the cache

    MemoryUnit restored(cfg);
    restored.restoreState(snap);
    EXPECT_TRUE(restored.rowNorms() == originalNorms);
    EXPECT_TRUE(restored.rowNorms() == live.rowNorms());

    MemoryReadout ra, rb;
    for (int step = 0; step < 12; ++step) {
        const InterfaceVector iface = golden::randomIface(cfg, rng);
        live.stepInto(iface, ra);
        restored.stepInto(iface, rb);
        for (Index h = 0; h < cfg.readHeads; ++h)
            EXPECT_TRUE(ra.readVectors[h] == rb.readVectors[h])
                << "head " << h << " step " << step;
        expectUnitsIdentical(live, restored, step);
    }
}

/**
 * At positive skip thresholds the touched set is not derivable from the
 * snapshot matrices, so restoreState carries it explicitly; a restored
 * run's skip decisions must match the undisturbed run bit-for-bit.
 */
TEST(SparseRestore, PositiveThresholdRestoreMatchesUndisturbedRun)
{
    DncConfig cfg = sparseCfg();
    cfg.linkageSkipThreshold = 1e-2;
    cfg.readSkipThreshold = 1e-2;
    MemoryUnit live(cfg);
    MemoryReadout out;
    Rng rng(31);
    for (int step = 0; step < 25; ++step)
        live.stepInto(step % 5 == 0 ? allocationIface(cfg, rng)
                                    : golden::randomIface(cfg, rng),
                      out);

    MemoryTileState snap;
    live.captureState(snap);
    MemoryUnit restored(cfg);
    restored.restoreState(snap);

    MemoryReadout ra, rb;
    for (int step = 0; step < 20; ++step) {
        const InterfaceVector iface = golden::randomIface(cfg, rng);
        live.stepInto(iface, ra);
        restored.stepInto(iface, rb);
        for (Index h = 0; h < cfg.readHeads; ++h)
            EXPECT_TRUE(ra.readVectors[h] == rb.readVectors[h])
                << "head " << h << " step " << step;
        expectUnitsIdentical(live, restored, step);
    }
    MemoryTileState a, b;
    live.captureState(a);
    restored.captureState(b);
    EXPECT_EQ(a.touchedSlots, b.touchedSlots);
}

TEST(SparseRestoreDeathTest, LinkageRestoreRejectsUnsortedTouchedSlots)
{
    TemporalLinkage tl(8);
    const Vector flat(64, 0.0);
    const Vector prec(8, 0.0);
    EXPECT_DEATH(tl.restoreState(flat, prec, {3, 1}), "out of order");
}

// -------------------------------------------------------------- batched

/**
 * Per-lane active sets stay independent through batched stepping: a
 * batched engine with positive skip thresholds matches per-lane
 * reference runs bit-for-bit (golden_util asserts full per-lane state,
 * including the linkage row-mass cache, every step).
 */
TEST(SparseReadStage, BatchedLanesKeepIndependentActiveSets)
{
    DncConfig cfg;
    cfg.memoryRows = 24;
    cfg.memoryWidth = 12;
    cfg.readHeads = 2;
    cfg.controllerSize = 24;
    cfg.inputSize = 10;
    cfg.outputSize = 8;
    cfg.linkageSkipThreshold = 1e-2;
    cfg.readSkipThreshold = 1e-2;
    golden::runLockstep(cfg, /*batch=*/3, /*threads=*/2, /*steps=*/10,
                        /*weightSeed=*/21, /*inputSeed=*/91);
}

} // namespace hima
