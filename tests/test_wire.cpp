/**
 * @file
 * Wire-codec tests: every message type round-trips bit-exactly, and
 * every malformed input — truncated at any byte, corrupted header,
 * mismatched counts, trailing garbage, adversarial lengths — is
 * rejected by returning false, never by crashing or allocating from
 * attacker-controlled sizes.
 */

#include <gtest/gtest.h>

#include "golden_util.h"
#include "shard/transport.h"
#include "shard/wire.h"
#include "shard/worker.h"

namespace hima {
namespace {

DncConfig
shardCfg()
{
    DncConfig cfg;
    cfg.memoryRows = 16; // per-tile
    cfg.memoryWidth = 12;
    cfg.readHeads = 3;
    return cfg;
}

InterfaceVector
sampleIface(const DncConfig &cfg, std::uint64_t seed)
{
    Rng rng(seed);
    return golden::randomIface(cfg, rng);
}

void
expectIfaceEqual(const InterfaceVector &a, const InterfaceVector &b)
{
    ASSERT_EQ(a.readKeys.size(), b.readKeys.size());
    for (Index h = 0; h < a.readKeys.size(); ++h)
        EXPECT_TRUE(a.readKeys[h] == b.readKeys[h]);
    EXPECT_EQ(a.readStrengths, b.readStrengths);
    EXPECT_TRUE(a.writeKey == b.writeKey);
    EXPECT_EQ(a.writeStrength, b.writeStrength);
    EXPECT_TRUE(a.eraseVector == b.eraseVector);
    EXPECT_TRUE(a.writeVector == b.writeVector);
    EXPECT_EQ(a.freeGates, b.freeGates);
    EXPECT_EQ(a.allocationGate, b.allocationGate);
    EXPECT_EQ(a.writeGate, b.writeGate);
    ASSERT_EQ(a.readModes.size(), b.readModes.size());
    for (Index h = 0; h < a.readModes.size(); ++h) {
        EXPECT_EQ(a.readModes[h].backward, b.readModes[h].backward);
        EXPECT_EQ(a.readModes[h].content, b.readModes[h].content);
        EXPECT_EQ(a.readModes[h].forward, b.readModes[h].forward);
    }
}

// --------------------------------------------------------------------
// Round trips.
// --------------------------------------------------------------------

TEST(Wire, HelloRoundTrip)
{
    DncConfig cfg = shardCfg();
    cfg.fixedPoint = true;
    cfg.skimRate = 0.25;
    cfg.writeSkipThreshold = 1e-9;
    cfg.linkageSkipThreshold = 1e-6;
    cfg.approximateSoftmax = true;
    cfg.softmaxSegments = 12;
    cfg.numThreads = 4;
    const WireConfig sent = WireConfig::fromShard(cfg, 3);

    WireWriter w;
    encodeHello(sent, w);
    WireConfig got;
    ASSERT_TRUE(decodeHello(w.buffer().data(), w.buffer().size(), got));
    EXPECT_EQ(sent, got);

    // The reconstructed DncConfig preserves shapes and datapath mode.
    const DncConfig back = got.toShardConfig();
    EXPECT_EQ(back.memoryRows, cfg.memoryRows);
    EXPECT_EQ(back.memoryWidth, cfg.memoryWidth);
    EXPECT_EQ(back.readHeads, cfg.readHeads);
    EXPECT_EQ(back.fixedPoint, cfg.fixedPoint);
    EXPECT_EQ(back.approximateSoftmax, cfg.approximateSoftmax);
    EXPECT_EQ(back.softmaxSegments, cfg.softmaxSegments);
    EXPECT_EQ(back.skimRate, cfg.skimRate);
    EXPECT_EQ(back.writeSkipThreshold, cfg.writeSkipThreshold);
    EXPECT_EQ(back.linkageSkipThreshold, cfg.linkageSkipThreshold);
    EXPECT_EQ(back.numThreads, cfg.numThreads);
}

TEST(Wire, HelloAckRoundTrip)
{
    HelloAckMsg sent;
    sent.ok = false;
    sent.hostedTiles = 7;
    sent.message = "shape mismatch: W=12 vs 16";
    WireWriter w;
    encodeHelloAck(sent, w);
    HelloAckMsg got;
    ASSERT_TRUE(decodeHelloAck(w.buffer().data(), w.buffer().size(), got));
    EXPECT_EQ(got.ok, sent.ok);
    EXPECT_EQ(got.hostedTiles, sent.hostedTiles);
    EXPECT_EQ(got.message, sent.message);
}

TEST(Wire, StepRoundTripPreservesEveryRealBitExactly)
{
    const DncConfig cfg = shardCfg();
    StepMsg sent;
    sent.seq = 0xDEADBEEFCAFEull;
    sent.wantWeightings = true;
    sent.scoredMask = 0b101;
    sent.ifaces = {sampleIface(cfg, 1), sampleIface(cfg, 2)};

    WireWriter w;
    encodeStep(sent, cfg, w);
    StepMsg got;
    ASSERT_TRUE(
        decodeStep(w.buffer().data(), w.buffer().size(), cfg, 2, got));
    EXPECT_EQ(got.seq, sent.seq);
    EXPECT_EQ(got.wantWeightings, sent.wantWeightings);
    EXPECT_EQ(got.scoredMask, sent.scoredMask);
    ASSERT_EQ(got.ifaces.size(), 2u);
    for (Index t = 0; t < 2; ++t)
        expectIfaceEqual(sent.ifaces[t], got.ifaces[t]);
}

TEST(Wire, StepBroadcastDecodesLikeSpanOfCopiesButShipsOneInterface)
{
    const DncConfig cfg = shardCfg();
    const InterfaceVector iface = sampleIface(cfg, 5);
    const std::vector<InterfaceVector> copies(3, iface);

    WireWriter a, b;
    encodeStepBroadcast(9, false, 0b11, iface, 3, a);
    encodeStepSpan(9, false, 0b11, copies.data(), 3, b);
    // The broadcast frame carries the interface once...
    EXPECT_LT(a.buffer().size(), b.buffer().size() / 2);

    // ...but decodes to the identical expanded message.
    StepMsg fromBroadcast, fromSpan;
    ASSERT_TRUE(decodeStep(a.buffer().data(), a.buffer().size(), cfg, 3,
                           fromBroadcast));
    ASSERT_TRUE(decodeStep(b.buffer().data(), b.buffer().size(), cfg, 3,
                           fromSpan));
    EXPECT_EQ(fromBroadcast.seq, fromSpan.seq);
    EXPECT_EQ(fromBroadcast.scoredMask, fromSpan.scoredMask);
    ASSERT_EQ(fromBroadcast.ifaces.size(), 3u);
    for (Index t = 0; t < 3; ++t)
        expectIfaceEqual(fromBroadcast.ifaces[t], fromSpan.ifaces[t]);
}

TEST(Wire, StepReplyRoundTrip)
{
    const DncConfig cfg = shardCfg();
    const Index r = cfg.readHeads;
    Rng rng(11);
    std::vector<MemoryReadout> tiles(2);
    std::vector<Real> confidence;
    for (MemoryReadout &t : tiles) {
        for (Index h = 0; h < r; ++h) {
            t.readVectors.push_back(rng.normalVector(cfg.memoryWidth));
            t.readWeightings.push_back(rng.uniformVector(cfg.memoryRows));
        }
        t.writeWeighting = rng.uniformVector(cfg.memoryRows);
    }
    for (Index i = 0; i < 2 * r; ++i)
        confidence.push_back(rng.normal());

    WireWriter w;
    encodeStepReply(42, true, tiles.data(), tiles.size(), confidence, cfg,
                    w);
    StepReplyMsg got;
    ASSERT_TRUE(decodeStepReply(w.buffer().data(), w.buffer().size(), cfg,
                                2, got));
    EXPECT_EQ(got.seq, 42u);
    EXPECT_TRUE(got.hasWeightings);
    ASSERT_EQ(got.tiles.size(), 2u);
    EXPECT_EQ(got.confidence, confidence);
    for (Index t = 0; t < 2; ++t) {
        for (Index h = 0; h < r; ++h) {
            EXPECT_TRUE(got.tiles[t].readVectors[h] ==
                        tiles[t].readVectors[h]);
            EXPECT_TRUE(got.tiles[t].readWeightings[h] ==
                        tiles[t].readWeightings[h]);
        }
        EXPECT_TRUE(got.tiles[t].writeWeighting ==
                    tiles[t].writeWeighting);
    }
}

TEST(Wire, StepReplyWithoutWeightingsOmitsThem)
{
    const DncConfig cfg = shardCfg();
    const Index r = cfg.readHeads;
    Rng rng(13);
    std::vector<MemoryReadout> tiles(1);
    for (Index h = 0; h < r; ++h) {
        tiles[0].readVectors.push_back(rng.normalVector(cfg.memoryWidth));
        tiles[0].readWeightings.push_back(rng.uniformVector(cfg.memoryRows));
    }
    tiles[0].writeWeighting = rng.uniformVector(cfg.memoryRows);
    const std::vector<Real> confidence(r, 0.5);

    WireWriter lean, full;
    encodeStepReply(1, false, tiles.data(), tiles.size(), confidence, cfg,
                    lean);
    encodeStepReply(1, true, tiles.data(), tiles.size(), confidence, cfg,
                    full);
    EXPECT_LT(lean.buffer().size(), full.buffer().size());

    StepReplyMsg got;
    ASSERT_TRUE(decodeStepReply(lean.buffer().data(), lean.buffer().size(),
                                cfg, 1, got));
    EXPECT_FALSE(got.hasWeightings);
    EXPECT_TRUE(got.tiles[0].readWeightings.empty());
}

TEST(Wire, ControlAndAckRoundTrip)
{
    WireWriter w;
    ControlMsg sent;
    sent.kind = ControlKind::Admit;
    sent.seq = 17;
    encodeControl(sent, w);
    ControlMsg got;
    got.lane = 0;
    ASSERT_TRUE(decodeControl(w.buffer().data(), w.buffer().size(), got));
    EXPECT_EQ(got.kind, ControlKind::Admit);
    EXPECT_EQ(got.seq, 17u);
    EXPECT_EQ(got.lane, kAllLanes) << "default control targets every lane";

    sent.lane = 5; // per-lane admit (pipelined serving)
    encodeControl(sent, w);
    ASSERT_TRUE(decodeControl(w.buffer().data(), w.buffer().size(), got));
    EXPECT_EQ(got.lane, 5u);

    encodeControlAck(17, w);
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeControlAck(w.buffer().data(), w.buffer().size(), seq));
    EXPECT_EQ(seq, 17u);
}

// --------------------------------------------------------------------
// Lane-batched frames (the pipelined serving path).
// --------------------------------------------------------------------

TEST(Wire, LaneStepRoundTripPreservesEveryLane)
{
    const DncConfig cfg = shardCfg();
    const InterfaceVector a = sampleIface(cfg, 21);
    const InterfaceVector b = sampleIface(cfg, 22);
    const InterfaceVector c = sampleIface(cfg, 23);
    const LaneStepEntry entries[] = {
        {0, 0b001, &a}, {2, 0b111, &b}, {5, 0b000, &c}};

    WireWriter w;
    encodeLaneStep(0xFEEDu, true, entries, 3, w);
    LaneStepMsg got;
    ASSERT_TRUE(decodeLaneStep(w.buffer().data(), w.buffer().size(), cfg,
                               /*lanes=*/6, got));
    EXPECT_EQ(got.seq, 0xFEEDu);
    EXPECT_TRUE(got.wantWeightings);
    ASSERT_EQ(got.lanes.size(), 3u);
    EXPECT_EQ(got.lanes, (std::vector<std::uint32_t>{0, 2, 5}));
    EXPECT_EQ(got.masks, (std::vector<std::uint32_t>{0b001, 0b111, 0b000}));
    expectIfaceEqual(a, got.ifaces[0]);
    expectIfaceEqual(b, got.ifaces[1]);
    expectIfaceEqual(c, got.ifaces[2]);
}

TEST(Wire, LaneStepRejectsBadLaneLists)
{
    const DncConfig cfg = shardCfg();
    const InterfaceVector iface = sampleIface(cfg, 31);
    LaneStepMsg out;

    // Lane id beyond the handshake's lane count.
    const LaneStepEntry outOfRange[] = {{7, 0, &iface}};
    WireWriter w;
    encodeLaneStep(1, false, outOfRange, 1, w);
    EXPECT_FALSE(decodeLaneStep(w.buffer().data(), w.buffer().size(), cfg,
                                /*lanes=*/4, out));

    // Duplicate lane (would race on that lane's tiles).
    const LaneStepEntry dup[] = {{1, 0, &iface}, {1, 0, &iface}};
    encodeLaneStep(2, false, dup, 2, w);
    EXPECT_FALSE(decodeLaneStep(w.buffer().data(), w.buffer().size(), cfg,
                                4, out));

    // Descending order.
    const LaneStepEntry desc[] = {{3, 0, &iface}, {1, 0, &iface}};
    encodeLaneStep(3, false, desc, 2, w);
    EXPECT_FALSE(decodeLaneStep(w.buffer().data(), w.buffer().size(), cfg,
                                4, out));

    // More lanes than hosted.
    const LaneStepEntry wide[] = {
        {0, 0, &iface}, {1, 0, &iface}, {2, 0, &iface}};
    encodeLaneStep(4, false, wide, 3, w);
    EXPECT_FALSE(decodeLaneStep(w.buffer().data(), w.buffer().size(), cfg,
                                2, out));

    // Zero lanes.
    encodeLaneStep(5, false, wide, 0, w);
    EXPECT_FALSE(decodeLaneStep(w.buffer().data(), w.buffer().size(), cfg,
                                4, out));
}

TEST(Wire, LaneStepReplyRoundTrip)
{
    const DncConfig cfg = shardCfg();
    const Index r = cfg.readHeads;
    const Index hosted = 2;
    const std::uint32_t lanes[] = {1, 4};
    Rng rng(17);
    std::vector<MemoryReadout> readouts(2 * hosted);
    std::vector<Real> confidence;
    for (MemoryReadout &t : readouts)
        for (Index h = 0; h < r; ++h)
            t.readVectors.push_back(rng.normalVector(cfg.memoryWidth));
    for (Index i = 0; i < 2 * hosted * r; ++i)
        confidence.push_back(rng.normal());

    WireWriter w;
    encodeLaneStepReply(99, false, lanes, 2, hosted, readouts, confidence,
                        cfg, w);
    LaneStepReplyMsg got;
    ASSERT_TRUE(decodeLaneStepReply(w.buffer().data(), w.buffer().size(),
                                    cfg, hosted, /*maxLanes=*/2, got));
    EXPECT_EQ(got.seq, 99u);
    EXPECT_FALSE(got.hasWeightings);
    EXPECT_EQ(got.lanes, (std::vector<std::uint32_t>{1, 4}));
    EXPECT_EQ(got.confidence, confidence);
    ASSERT_EQ(got.tiles.size(), readouts.size());
    for (Index s = 0; s < readouts.size(); ++s)
        for (Index h = 0; h < r; ++h)
            EXPECT_TRUE(got.tiles[s].readVectors[h] ==
                        readouts[s].readVectors[h]);

    // A reply naming more lanes than the coordinator scattered fails.
    EXPECT_FALSE(decodeLaneStepReply(w.buffer().data(), w.buffer().size(),
                                     cfg, hosted, /*maxLanes=*/1, got));
}

TEST(WireMalformed, LaneStepTruncationAtEveryByteIsRejected)
{
    const DncConfig cfg = shardCfg();
    const InterfaceVector a = sampleIface(cfg, 41);
    const InterfaceVector b = sampleIface(cfg, 42);
    const LaneStepEntry entries[] = {{0, 0b11, &a}, {3, 0b01, &b}};
    WireWriter w;
    encodeLaneStep(12, false, entries, 2, w);

    LaneStepMsg out;
    for (std::size_t len = 0; len < w.buffer().size(); ++len)
        EXPECT_FALSE(decodeLaneStep(w.buffer().data(), len, cfg, 4, out))
            << "truncated LaneStep of " << len << " bytes decoded";

    // Trailing garbage after a well-formed frame is rejected too.
    std::vector<std::uint8_t> frame = w.buffer();
    frame.push_back(0xAB);
    EXPECT_FALSE(decodeLaneStep(frame.data(), frame.size(), cfg, 4, out));
}

TEST(WireMalformed, LaneStepReplyTruncationAtEveryByteIsRejected)
{
    const DncConfig cfg = shardCfg();
    const Index r = cfg.readHeads;
    const Index hosted = 1;
    const std::uint32_t lanes[] = {0, 2};
    Rng rng(43);
    std::vector<MemoryReadout> readouts(2);
    for (MemoryReadout &t : readouts)
        for (Index h = 0; h < r; ++h)
            t.readVectors.push_back(rng.normalVector(cfg.memoryWidth));
    const std::vector<Real> confidence(2 * r, 0.25);
    WireWriter w;
    encodeLaneStepReply(13, false, lanes, 2, hosted, readouts, confidence,
                        cfg, w);

    LaneStepReplyMsg out;
    for (std::size_t len = 0; len < w.buffer().size(); ++len)
        EXPECT_FALSE(decodeLaneStepReply(w.buffer().data(), len, cfg,
                                         hosted, 2, out))
            << "truncated LaneStepReply of " << len << " bytes decoded";
}

TEST(WireMalformed, LaneStepAdversarialCountsDoNotAllocate)
{
    // A hand-built LaneStep declaring 4 billion lanes must bounce on
    // the lane-count check before any resize.
    WireWriter w;
    w.clear();
    w.header(MsgType::LaneStep);
    w.putU64(1);          // seq
    w.putU8(0);           // wantWeightings
    w.putU32(0xFFFFFFFF); // laneCount — absurd
    LaneStepMsg out;
    EXPECT_FALSE(decodeLaneStep(w.buffer().data(), w.buffer().size(),
                                shardCfg(), 8, out));
}

TEST(Wire, ErrorRoundTripAndPeek)
{
    WireWriter w;
    encodeError("tile exploded", w);
    MsgType type;
    ASSERT_TRUE(peekType(w.buffer().data(), w.buffer().size(), type));
    EXPECT_EQ(type, MsgType::Error);
    ErrorMsg msg;
    ASSERT_TRUE(decodeError(w.buffer().data(), w.buffer().size(), msg));
    EXPECT_EQ(msg.message, "tile exploded");

    encodeShutdown(w);
    ASSERT_TRUE(peekType(w.buffer().data(), w.buffer().size(), type));
    EXPECT_EQ(type, MsgType::Shutdown);
}

// --------------------------------------------------------------------
// Malformed frames.
// --------------------------------------------------------------------

TEST(WireMalformed, TruncationAtEveryByteIsRejected)
{
    const DncConfig cfg = shardCfg();
    StepMsg sent;
    sent.seq = 3;
    sent.ifaces = {sampleIface(cfg, 7), sampleIface(cfg, 8)};
    WireWriter w;
    encodeStep(sent, cfg, w);

    StepMsg out;
    for (std::size_t len = 0; len < w.buffer().size(); ++len)
        EXPECT_FALSE(decodeStep(w.buffer().data(), len, cfg, 2, out))
            << "truncated frame of " << len << " bytes decoded";
}

TEST(WireMalformed, HeaderCorruptionIsRejected)
{
    WireWriter w;
    encodeControlAck(5, w);
    std::vector<std::uint8_t> frame = w.buffer();
    std::uint64_t seq;

    frame[0] ^= 0xFF; // magic
    EXPECT_FALSE(decodeControlAck(frame.data(), frame.size(), seq));
    frame[0] ^= 0xFF;

    frame[2] += 1; // version
    EXPECT_FALSE(decodeControlAck(frame.data(), frame.size(), seq));
    frame[2] -= 1;

    frame[3] = static_cast<std::uint8_t>(MsgType::Error); // type
    EXPECT_FALSE(decodeControlAck(frame.data(), frame.size(), seq));

    MsgType type;
    frame[3] = 200; // unknown type
    EXPECT_FALSE(peekType(frame.data(), frame.size(), type));
}

TEST(WireMalformed, WrongShapesAreRejected)
{
    const DncConfig cfg = shardCfg();
    StepMsg sent;
    sent.ifaces = {sampleIface(cfg, 9)};
    WireWriter w;
    encodeStep(sent, cfg, w);

    StepMsg out;
    // Tile-count mismatch.
    EXPECT_FALSE(decodeStep(w.buffer().data(), w.buffer().size(), cfg, 2,
                            out));
    // Shape mismatch: the receiver expects a wider W.
    DncConfig wide = cfg;
    wide.memoryWidth = cfg.memoryWidth + 4;
    EXPECT_FALSE(decodeStep(w.buffer().data(), w.buffer().size(), wide, 1,
                            out));
    // Head-count mismatch.
    DncConfig heads = cfg;
    heads.readHeads = cfg.readHeads + 1;
    EXPECT_FALSE(decodeStep(w.buffer().data(), w.buffer().size(), heads, 1,
                            out));
}

TEST(WireMalformed, TrailingGarbageIsRejected)
{
    WireWriter w;
    encodeControlAck(5, w);
    std::vector<std::uint8_t> frame = w.buffer();
    frame.push_back(0x00);
    std::uint64_t seq;
    EXPECT_FALSE(decodeControlAck(frame.data(), frame.size(), seq));
}

TEST(WireMalformed, AdversarialCountsDoNotAllocate)
{
    // A hand-built Step frame declaring 4 billion read keys: the
    // decoder must reject on the count check, not resize first.
    WireWriter w;
    w.header(MsgType::Step);
    w.putU64(1);          // seq
    w.putU8(0);           // wantWeightings
    w.putU32(0);          // scoredMask
    w.putU8(0);           // per-tile interfaces
    w.putU32(1);          // one tile
    w.putU32(0xFFFFFFFF); // readKeys count — absurd
    StepMsg out;
    EXPECT_FALSE(decodeStep(w.buffer().data(), w.buffer().size(), shardCfg(),
                            1, out));

    // Same for a vector length beyond the remaining bytes.
    WireWriter v;
    v.header(MsgType::StepReply);
    v.putU64(1);
    v.putU8(0);
    v.putU32(1);          // one tile
    v.putU32(0x40000000); // first read vector claims 2^30 reals
    StepReplyMsg reply;
    EXPECT_FALSE(decodeStepReply(v.buffer().data(), v.buffer().size(),
                                 shardCfg(), 1, reply));
}

// --------------------------------------------------------------------
// Fault-tolerance frames (wire v3): checkpoint pull/push, Rejoin.
// --------------------------------------------------------------------

TEST(Wire, CheckpointRequestAndRejoinRoundTrip)
{
    WireWriter w;
    encodeCheckpointRequest(77, w);
    MsgType type;
    ASSERT_TRUE(peekType(w.buffer().data(), w.buffer().size(), type));
    EXPECT_EQ(type, MsgType::CheckpointRequest);
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeCheckpointRequest(w.buffer().data(),
                                        w.buffer().size(), seq));
    EXPECT_EQ(seq, 77u);

    DncConfig cfg = shardCfg();
    cfg.fixedPoint = true;
    const WireConfig sent = WireConfig::fromShard(cfg, 3, /*lanes=*/2);
    encodeRejoin(sent, /*firstTile=*/5, w);
    WireConfig got;
    std::uint64_t firstTile = 0;
    ASSERT_TRUE(
        decodeRejoin(w.buffer().data(), w.buffer().size(), got, firstTile));
    EXPECT_EQ(got, sent);
    EXPECT_EQ(firstTile, 5u);
}

TEST(Wire, CheckpointStateRestoresABitExactReplica)
{
    // The full cycle a recovery performs: run live tiles, pull their
    // state over the wire, push it into fresh units, then drive both
    // with the same interface stream — every subsequent readout must
    // match bit for bit.
    const DncConfig cfg = shardCfg();
    const Index count = 2;
    std::vector<std::unique_ptr<MemoryUnit>> tiles;
    std::vector<std::unique_ptr<MemoryUnit>> replicas;
    for (Index t = 0; t < count; ++t) {
        tiles.push_back(std::make_unique<MemoryUnit>(cfg));
        replicas.push_back(std::make_unique<MemoryUnit>(cfg));
    }
    Rng rng(51);
    MemoryReadout scratch;
    for (int step = 0; step < 5; ++step)
        for (auto &tile : tiles)
            tile->stepInto(golden::randomIface(cfg, rng), scratch);

    WireWriter w;
    encodeCheckpointState(33, tiles, cfg, w);
    std::vector<MemoryTileState> snapshots(count);
    std::vector<MemoryTileState *> slots = {&snapshots[0], &snapshots[1]};
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeCheckpointState(w.buffer().data(), w.buffer().size(),
                                      cfg, slots.data(), count, seq));
    EXPECT_EQ(seq, 33u);

    MemoryTileState want, got;
    for (Index t = 0; t < count; ++t) {
        replicas[t]->restoreState(snapshots[t]);
        tiles[t]->captureState(want);
        replicas[t]->captureState(got);
        EXPECT_TRUE(want.memory == got.memory);
        EXPECT_TRUE(want.rowNorms == got.rowNorms);
        EXPECT_TRUE(want.usage == got.usage);
        EXPECT_TRUE(want.linkage == got.linkage);
        EXPECT_TRUE(want.precedence == got.precedence);
        EXPECT_TRUE(want.writeWeighting == got.writeWeighting);
        ASSERT_EQ(want.readWeightings.size(), got.readWeightings.size());
        for (Index h = 0; h < want.readWeightings.size(); ++h)
            EXPECT_TRUE(want.readWeightings[h] == got.readWeightings[h]);
    }

    MemoryReadout a, b;
    for (int step = 0; step < 4; ++step)
        for (Index t = 0; t < count; ++t) {
            const InterfaceVector iface = golden::randomIface(cfg, rng);
            tiles[t]->stepInto(iface, a);
            replicas[t]->stepInto(iface, b);
            ASSERT_EQ(a.readVectors.size(), b.readVectors.size());
            for (Index h = 0; h < a.readVectors.size(); ++h)
                EXPECT_TRUE(a.readVectors[h] == b.readVectors[h])
                    << "tile " << t << " head " << h << " diverged after "
                       "restore at step "
                    << step;
        }
}

TEST(Wire, RestoreRoundTripCarriesSnapshotsBitExactly)
{
    const DncConfig cfg = shardCfg();
    std::vector<std::unique_ptr<MemoryUnit>> tiles;
    tiles.push_back(std::make_unique<MemoryUnit>(cfg));
    Rng rng(52);
    MemoryReadout scratch;
    for (int step = 0; step < 3; ++step)
        tiles[0]->stepInto(golden::randomIface(cfg, rng), scratch);
    MemoryTileState sent;
    tiles[0]->captureState(sent);
    const MemoryTileState *sendSlots[] = {&sent};

    WireWriter w;
    encodeRestore(21, sendSlots, 1, cfg, w);
    MsgType type;
    ASSERT_TRUE(peekType(w.buffer().data(), w.buffer().size(), type));
    EXPECT_EQ(type, MsgType::Restore);

    MemoryTileState got;
    MemoryTileState *recvSlots[] = {&got};
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeRestore(w.buffer().data(), w.buffer().size(), cfg,
                              recvSlots, 1, seq));
    EXPECT_EQ(seq, 21u);
    EXPECT_TRUE(got.memory == sent.memory);
    EXPECT_TRUE(got.rowNorms == sent.rowNorms);
    EXPECT_TRUE(got.usage == sent.usage);
    EXPECT_TRUE(got.linkage == sent.linkage);
    EXPECT_TRUE(got.precedence == sent.precedence);
    EXPECT_TRUE(got.writeWeighting == sent.writeWeighting);
    ASSERT_EQ(got.readWeightings.size(), sent.readWeightings.size());
    for (Index h = 0; h < sent.readWeightings.size(); ++h)
        EXPECT_TRUE(got.readWeightings[h] == sent.readWeightings[h]);
}

TEST(WireMalformed, CheckpointFrameTruncationAtEveryByteIsRejected)
{
    const DncConfig cfg = shardCfg();
    std::uint64_t seq = 0;

    WireWriter req;
    encodeCheckpointRequest(3, req);
    for (std::size_t len = 0; len < req.buffer().size(); ++len)
        EXPECT_FALSE(decodeCheckpointRequest(req.buffer().data(), len, seq))
            << "truncated CheckpointRequest of " << len << " bytes decoded";

    WireWriter rejoin;
    encodeRejoin(WireConfig::fromShard(cfg, 2), 1, rejoin);
    WireConfig outCfg;
    std::uint64_t firstTile = 0;
    for (std::size_t len = 0; len < rejoin.buffer().size(); ++len)
        EXPECT_FALSE(decodeRejoin(rejoin.buffer().data(), len, outCfg,
                                  firstTile))
            << "truncated Rejoin of " << len << " bytes decoded";

    std::vector<std::unique_ptr<MemoryUnit>> tiles;
    tiles.push_back(std::make_unique<MemoryUnit>(cfg));
    MemoryTileState snapshot;
    MemoryTileState *slots[] = {&snapshot};
    WireWriter state;
    encodeCheckpointState(4, tiles, cfg, state);
    for (std::size_t len = 0; len < state.buffer().size(); ++len)
        EXPECT_FALSE(decodeCheckpointState(state.buffer().data(), len, cfg,
                                           slots, 1, seq))
            << "truncated CheckpointState of " << len << " bytes decoded";

    tiles[0]->captureState(snapshot);
    const MemoryTileState *sendSlots[] = {&snapshot};
    MemoryTileState back;
    MemoryTileState *recvSlots[] = {&back};
    WireWriter restore;
    encodeRestore(5, sendSlots, 1, cfg, restore);
    for (std::size_t len = 0; len < restore.buffer().size(); ++len)
        EXPECT_FALSE(decodeRestore(restore.buffer().data(), len, cfg,
                                   recvSlots, 1, seq))
            << "truncated Restore of " << len << " bytes decoded";

    // Trailing garbage after well-formed frames is rejected too.
    std::vector<std::uint8_t> frame = state.buffer();
    frame.push_back(0xCD);
    EXPECT_FALSE(decodeCheckpointState(frame.data(), frame.size(), cfg,
                                       slots, 1, seq));
    frame = restore.buffer();
    frame.push_back(0xCD);
    EXPECT_FALSE(
        decodeRestore(frame.data(), frame.size(), cfg, recvSlots, 1, seq));
}

TEST(WireMalformed, CheckpointCountAndShapeMismatchesAreRejected)
{
    const DncConfig cfg = shardCfg();
    std::vector<std::unique_ptr<MemoryUnit>> tiles;
    tiles.push_back(std::make_unique<MemoryUnit>(cfg));
    tiles.push_back(std::make_unique<MemoryUnit>(cfg));
    WireWriter w;
    encodeCheckpointState(6, tiles, cfg, w);

    std::vector<MemoryTileState> snapshots(2);
    std::vector<MemoryTileState *> slots = {&snapshots[0], &snapshots[1]};
    std::uint64_t seq = 0;
    // Tile-count mismatch: the frame carries 2 snapshots, not 1.
    EXPECT_FALSE(decodeCheckpointState(w.buffer().data(), w.buffer().size(),
                                       cfg, slots.data(), 1, seq));
    // Shape mismatch: a wider W changes every field length.
    DncConfig wide = cfg;
    wide.memoryWidth = cfg.memoryWidth + 4;
    EXPECT_FALSE(decodeCheckpointState(w.buffer().data(), w.buffer().size(),
                                       wide, slots.data(), 2, seq));
}

TEST(WireVersionSkew, V2PeerIsRejectedAtEveryDecoder)
{
    // A v2 peer's frames carry version byte 2 at offset 2: every v3
    // decoder (and peekType itself) must fail closed, so a mixed-version
    // fleet dies at the handshake instead of misreading state frames.
    const DncConfig cfg = shardCfg();
    WireWriter w;
    encodeHello(WireConfig::fromShard(cfg, 2), w);
    std::vector<std::uint8_t> frame = w.buffer();
    ASSERT_EQ(frame[2], kWireVersion);
    frame[2] = 2;

    MsgType type;
    EXPECT_FALSE(peekType(frame.data(), frame.size(), type));
    WireConfig got;
    EXPECT_FALSE(decodeHello(frame.data(), frame.size(), got));

    std::uint64_t firstTile = 0;
    encodeRejoin(WireConfig::fromShard(cfg, 2), 0, w);
    frame = w.buffer();
    frame[2] = 2;
    EXPECT_FALSE(decodeRejoin(frame.data(), frame.size(), got, firstTile));

    std::uint64_t seq = 0;
    encodeCheckpointRequest(9, w);
    frame = w.buffer();
    frame[2] = 2;
    EXPECT_FALSE(decodeCheckpointRequest(frame.data(), frame.size(), seq));
}

// --------------------------------------------------------------------
// Loopback framing.
// --------------------------------------------------------------------

TEST(Transport, LoopbackDeliversInOrderAndCountsBytes)
{
    // Echo service: every frame comes straight back.
    LoopbackChannel chan(
        [](const std::uint8_t *data, std::size_t size, FrameSink &reply) {
            reply.sendFrame(data, size);
        });

    const std::vector<std::uint8_t> a = {1, 2, 3};
    const std::vector<std::uint8_t> b = {9, 8};
    chan.sendFrame(a.data(), a.size());
    chan.sendFrame(b.data(), b.size());
    EXPECT_EQ(chan.bytesSent(), 5u);
    EXPECT_EQ(chan.bytesReceived(), 5u);

    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(chan.recvFrame(frame));
    EXPECT_EQ(frame, a);
    ASSERT_TRUE(chan.recvFrame(frame));
    EXPECT_EQ(frame, b);
    EXPECT_FALSE(chan.recvFrame(frame)) << "empty inbox must report false";

    // Per-type stats classified the garbage as slot 0 (unparseable).
    EXPECT_EQ(chan.sentStats().totalFrames(), 2u);
    EXPECT_EQ(chan.sentStats().frames[0], 2u);
    EXPECT_EQ(chan.receivedStats().bytes[0], 5u);
}

// --------------------------------------------------------------------
// LoopbackChannel inbox-ring reuse across a worker's serving life:
// multiple outstanding Steps, Admit controls mid-stream, back-to-back
// episodes on the same channel — the reply ring must hand frames back
// in order through every transition.
// --------------------------------------------------------------------

TEST(Transport, LoopbackInboxRingSurvivesEpisodesAndOutstandingSteps)
{
    DncConfig cfg = shardCfg();
    auto worker = std::make_shared<ShardWorker>();
    LoopbackChannel chan(
        [worker](const std::uint8_t *data, std::size_t size,
                 FrameSink &reply) { worker->handleFrame(data, size, reply); });

    const Index hosted = 2;
    WireWriter w;
    encodeHello(WireConfig::fromShard(cfg, hosted, /*lanes=*/1), w);
    chan.sendFrame(w.buffer().data(), w.buffer().size());
    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(chan.recvFrame(frame));
    HelloAckMsg ack;
    ASSERT_TRUE(decodeHelloAck(frame.data(), frame.size(), ack));
    ASSERT_TRUE(ack.ok);

    Rng rng(3);
    const InterfaceVector iface = golden::randomIface(cfg, rng);
    std::uint64_t seq = 0;
    std::uint64_t controlSeq = 0;

    for (int episode = 0; episode < 3; ++episode) {
        // Admit mid-stream: episodes ride the same channel back to
        // back, exercising ring reuse across control frames.
        ControlMsg admit;
        admit.kind = ControlKind::Admit;
        admit.seq = ++controlSeq;
        encodeControl(admit, w);
        chan.sendFrame(w.buffer().data(), w.buffer().size());
        ASSERT_TRUE(chan.recvFrame(frame));
        std::uint64_t ackSeq = 0;
        ASSERT_TRUE(decodeControlAck(frame.data(), frame.size(), ackSeq));
        EXPECT_EQ(ackSeq, admit.seq);

        // Three Steps queued before any reply is popped: the inbox ring
        // must hold multiple outstanding replies and deliver them in
        // send order with the matching sequence ids.
        const std::uint64_t firstSeq = seq + 1;
        for (int burst = 0; burst < 3; ++burst) {
            encodeStepBroadcast(++seq, false, 0b1, iface, hosted, w);
            chan.sendFrame(w.buffer().data(), w.buffer().size());
        }
        for (int burst = 0; burst < 3; ++burst) {
            ASSERT_TRUE(chan.recvFrame(frame));
            StepReplyMsg reply;
            ASSERT_TRUE(decodeStepReply(frame.data(), frame.size(), cfg,
                                        hosted, reply));
            EXPECT_EQ(reply.seq, firstSeq + burst)
                << "episode " << episode << " reply out of order";
        }
        EXPECT_FALSE(chan.recvFrame(frame)) << "ring drained";
    }
    EXPECT_EQ(worker->episodesServed(), 3u);
    EXPECT_EQ(worker->stepsServed(), 9u);

    // The channel classified traffic per message type.
    EXPECT_EQ(chan.sentStats()
                  .frames[static_cast<std::size_t>(MsgType::Step)],
              9u);
    EXPECT_EQ(chan.receivedStats()
                  .frames[static_cast<std::size_t>(MsgType::StepReply)],
              9u);
    EXPECT_EQ(chan.sentStats()
                  .frames[static_cast<std::size_t>(MsgType::Control)],
              3u);
}

// --------------------------------------------------------------------
// v6 sparse checkpoint frames.
//
// Frame byte offsets used below (no transport length prefix in the
// writer buffer): header 4 (magic u16, version u8, type u8), seq u64 at
// 4, tile count u32 at 12, shape echo N/W/R u32s at 16/20/24, first
// tile body at 28: [u8 encoding][u32 touchedCount][u32 slots...].
// --------------------------------------------------------------------

/** One allocation-gated one-hot write (touches exactly one fresh slot). */
InterfaceVector
allocIface(const DncConfig &cfg, std::uint64_t seed)
{
    InterfaceVector iface = sampleIface(cfg, seed);
    iface.allocationGate = 1.0;
    iface.writeGate = 1.0;
    return iface;
}

constexpr std::size_t kFirstTileOffset = 28;

TEST(WireV6, SparseEncodingChosenAtEarlyEpisodeStateAndShrinksFrame)
{
    const DncConfig cfg = shardCfg();
    DncConfig denseCfg = cfg;
    denseCfg.linkageDenseSweep = true;

    std::vector<std::unique_ptr<MemoryUnit>> sparseTiles;
    std::vector<std::unique_ptr<MemoryUnit>> denseTiles;
    sparseTiles.push_back(std::make_unique<MemoryUnit>(cfg));
    denseTiles.push_back(std::make_unique<MemoryUnit>(denseCfg));
    MemoryReadout out;
    for (int step = 0; step < 3; ++step) {
        const InterfaceVector iface = allocIface(cfg, 40 + step);
        sparseTiles[0]->stepInto(iface, out);
        denseTiles[0]->stepInto(iface, out);
    }

    WireWriter sparseFrame, denseFrame;
    encodeCheckpointState(9, sparseTiles, cfg, sparseFrame);
    encodeCheckpointState(9, denseTiles, denseCfg, denseFrame);

    // 3 of 16 memory/linkage rows hold mass: sparse must win by bytes;
    // the dense escape must force encoding 0 regardless.
    EXPECT_EQ(sparseFrame.buffer()[kFirstTileOffset], 1u);
    EXPECT_EQ(denseFrame.buffer()[kFirstTileOffset], 0u);
    EXPECT_LT(sparseFrame.buffer().size(), denseFrame.buffer().size());

    // The sparse frame decodes to the exact captured state (row norms
    // rebuilt, touched set carried) and restores a bit-exact replica.
    MemoryTileState decoded;
    MemoryTileState *slots[] = {&decoded};
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeCheckpointState(sparseFrame.buffer().data(),
                                      sparseFrame.buffer().size(), cfg,
                                      slots, 1, seq));
    EXPECT_EQ(seq, 9u);

    MemoryTileState captured;
    sparseTiles[0]->captureState(captured);
    EXPECT_TRUE(decoded.memory == captured.memory);
    EXPECT_TRUE(decoded.rowNorms == captured.rowNorms);
    EXPECT_TRUE(decoded.usage == captured.usage);
    EXPECT_TRUE(decoded.linkage == captured.linkage);
    EXPECT_TRUE(decoded.precedence == captured.precedence);
    EXPECT_TRUE(decoded.writeWeighting == captured.writeWeighting);
    ASSERT_EQ(decoded.readWeightings.size(), captured.readWeightings.size());
    for (Index h = 0; h < decoded.readWeightings.size(); ++h)
        EXPECT_TRUE(decoded.readWeightings[h] == captured.readWeightings[h]);
    EXPECT_EQ(decoded.touchedSlots, captured.touchedSlots);

    MemoryUnit replica(cfg);
    replica.restoreState(decoded);
    MemoryReadout a, b;
    for (int step = 0; step < 4; ++step) {
        const InterfaceVector iface = sampleIface(cfg, 90 + step);
        sparseTiles[0]->stepInto(iface, a);
        replica.stepInto(iface, b);
        for (Index h = 0; h < cfg.readHeads; ++h)
            EXPECT_TRUE(a.readVectors[h] == b.readVectors[h])
                << "head " << h << " step " << step;
        EXPECT_TRUE(a.writeWeighting == b.writeWeighting) << "step " << step;
    }
}

TEST(WireV6, DenseEncodingFallsBackOnceActiveSetIsLarge)
{
    const DncConfig cfg = shardCfg();
    std::vector<std::unique_ptr<MemoryUnit>> tiles;
    tiles.push_back(std::make_unique<MemoryUnit>(cfg));
    MemoryReadout out;
    // Soft writes touch every row: per-row index overhead makes the
    // sparse encoding larger, so the encoder must pick dense.
    for (int step = 0; step < 4; ++step)
        tiles[0]->stepInto(sampleIface(cfg, 60 + step), out);

    WireWriter frame;
    encodeCheckpointState(3, tiles, cfg, frame);
    EXPECT_EQ(frame.buffer()[kFirstTileOffset], 0u);

    MemoryTileState decoded;
    MemoryTileState *slots[] = {&decoded};
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeCheckpointState(frame.buffer().data(),
                                      frame.buffer().size(), cfg, slots, 1,
                                      seq));
    MemoryTileState captured;
    tiles[0]->captureState(captured);
    EXPECT_TRUE(decoded.memory == captured.memory);
    EXPECT_TRUE(decoded.rowNorms == captured.rowNorms);
    EXPECT_EQ(decoded.touchedSlots, captured.touchedSlots);
}

TEST(WireV6Malformed, SparseFrameValidationFailsClosed)
{
    const DncConfig cfg = shardCfg();
    std::vector<std::unique_ptr<MemoryUnit>> tiles;
    tiles.push_back(std::make_unique<MemoryUnit>(cfg));
    MemoryReadout out;
    for (int step = 0; step < 3; ++step)
        tiles[0]->stepInto(allocIface(cfg, 40 + step), out);

    WireWriter w;
    encodeCheckpointState(7, tiles, cfg, w);
    ASSERT_EQ(w.buffer()[kFirstTileOffset], 1u) << "sparse frame expected";

    MemoryTileState snap;
    MemoryTileState *slots[] = {&snap};
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeCheckpointState(w.buffer().data(), w.buffer().size(),
                                      cfg, slots, 1, seq));

    // Unknown encoding byte.
    std::vector<std::uint8_t> frame = w.buffer();
    frame[kFirstTileOffset] = 2;
    EXPECT_FALSE(decodeCheckpointState(frame.data(), frame.size(), cfg,
                                       slots, 1, seq));

    // Touched-slot index out of range (low byte of the first u32 slot).
    frame = w.buffer();
    frame[kFirstTileOffset + 5] = 0xFF;
    EXPECT_FALSE(decodeCheckpointState(frame.data(), frame.size(), cfg,
                                       slots, 1, seq));

    // Non-ascending touched list: overwrite the second slot with the
    // first (strictly-ascending check must reject equality too).
    frame = w.buffer();
    for (int i = 0; i < 4; ++i)
        frame[kFirstTileOffset + 9 + i] = frame[kFirstTileOffset + 5 + i];
    EXPECT_FALSE(decodeCheckpointState(frame.data(), frame.size(), cfg,
                                       slots, 1, seq));

    // Shape-echo mismatch (memory width at offset 20): sparse bodies are
    // variable-length, so this is the check that keeps a mismatched
    // peer's frames out even when the byte count happens to line up.
    frame = w.buffer();
    frame[20] ^= 0x01;
    EXPECT_FALSE(decodeCheckpointState(frame.data(), frame.size(), cfg,
                                       slots, 1, seq));
}

} // namespace
} // namespace hima
