/**
 * @file
 * Wire-codec tests: every message type round-trips bit-exactly, and
 * every malformed input — truncated at any byte, corrupted header,
 * mismatched counts, trailing garbage, adversarial lengths — is
 * rejected by returning false, never by crashing or allocating from
 * attacker-controlled sizes.
 */

#include <gtest/gtest.h>

#include "golden_util.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace hima {
namespace {

DncConfig
shardCfg()
{
    DncConfig cfg;
    cfg.memoryRows = 16; // per-tile
    cfg.memoryWidth = 12;
    cfg.readHeads = 3;
    return cfg;
}

InterfaceVector
sampleIface(const DncConfig &cfg, std::uint64_t seed)
{
    Rng rng(seed);
    return golden::randomIface(cfg, rng);
}

void
expectIfaceEqual(const InterfaceVector &a, const InterfaceVector &b)
{
    ASSERT_EQ(a.readKeys.size(), b.readKeys.size());
    for (Index h = 0; h < a.readKeys.size(); ++h)
        EXPECT_TRUE(a.readKeys[h] == b.readKeys[h]);
    EXPECT_EQ(a.readStrengths, b.readStrengths);
    EXPECT_TRUE(a.writeKey == b.writeKey);
    EXPECT_EQ(a.writeStrength, b.writeStrength);
    EXPECT_TRUE(a.eraseVector == b.eraseVector);
    EXPECT_TRUE(a.writeVector == b.writeVector);
    EXPECT_EQ(a.freeGates, b.freeGates);
    EXPECT_EQ(a.allocationGate, b.allocationGate);
    EXPECT_EQ(a.writeGate, b.writeGate);
    ASSERT_EQ(a.readModes.size(), b.readModes.size());
    for (Index h = 0; h < a.readModes.size(); ++h) {
        EXPECT_EQ(a.readModes[h].backward, b.readModes[h].backward);
        EXPECT_EQ(a.readModes[h].content, b.readModes[h].content);
        EXPECT_EQ(a.readModes[h].forward, b.readModes[h].forward);
    }
}

// --------------------------------------------------------------------
// Round trips.
// --------------------------------------------------------------------

TEST(Wire, HelloRoundTrip)
{
    DncConfig cfg = shardCfg();
    cfg.fixedPoint = true;
    cfg.skimRate = 0.25;
    cfg.writeSkipThreshold = 1e-9;
    cfg.approximateSoftmax = true;
    cfg.softmaxSegments = 12;
    cfg.numThreads = 4;
    const WireConfig sent = WireConfig::fromShard(cfg, 3);

    WireWriter w;
    encodeHello(sent, w);
    WireConfig got;
    ASSERT_TRUE(decodeHello(w.buffer().data(), w.buffer().size(), got));
    EXPECT_EQ(sent, got);

    // The reconstructed DncConfig preserves shapes and datapath mode.
    const DncConfig back = got.toShardConfig();
    EXPECT_EQ(back.memoryRows, cfg.memoryRows);
    EXPECT_EQ(back.memoryWidth, cfg.memoryWidth);
    EXPECT_EQ(back.readHeads, cfg.readHeads);
    EXPECT_EQ(back.fixedPoint, cfg.fixedPoint);
    EXPECT_EQ(back.approximateSoftmax, cfg.approximateSoftmax);
    EXPECT_EQ(back.softmaxSegments, cfg.softmaxSegments);
    EXPECT_EQ(back.skimRate, cfg.skimRate);
    EXPECT_EQ(back.writeSkipThreshold, cfg.writeSkipThreshold);
    EXPECT_EQ(back.numThreads, cfg.numThreads);
}

TEST(Wire, HelloAckRoundTrip)
{
    HelloAckMsg sent;
    sent.ok = false;
    sent.hostedTiles = 7;
    sent.message = "shape mismatch: W=12 vs 16";
    WireWriter w;
    encodeHelloAck(sent, w);
    HelloAckMsg got;
    ASSERT_TRUE(decodeHelloAck(w.buffer().data(), w.buffer().size(), got));
    EXPECT_EQ(got.ok, sent.ok);
    EXPECT_EQ(got.hostedTiles, sent.hostedTiles);
    EXPECT_EQ(got.message, sent.message);
}

TEST(Wire, StepRoundTripPreservesEveryRealBitExactly)
{
    const DncConfig cfg = shardCfg();
    StepMsg sent;
    sent.seq = 0xDEADBEEFCAFEull;
    sent.wantWeightings = true;
    sent.scoredMask = 0b101;
    sent.ifaces = {sampleIface(cfg, 1), sampleIface(cfg, 2)};

    WireWriter w;
    encodeStep(sent, cfg, w);
    StepMsg got;
    ASSERT_TRUE(
        decodeStep(w.buffer().data(), w.buffer().size(), cfg, 2, got));
    EXPECT_EQ(got.seq, sent.seq);
    EXPECT_EQ(got.wantWeightings, sent.wantWeightings);
    EXPECT_EQ(got.scoredMask, sent.scoredMask);
    ASSERT_EQ(got.ifaces.size(), 2u);
    for (Index t = 0; t < 2; ++t)
        expectIfaceEqual(sent.ifaces[t], got.ifaces[t]);
}

TEST(Wire, StepBroadcastDecodesLikeSpanOfCopiesButShipsOneInterface)
{
    const DncConfig cfg = shardCfg();
    const InterfaceVector iface = sampleIface(cfg, 5);
    const std::vector<InterfaceVector> copies(3, iface);

    WireWriter a, b;
    encodeStepBroadcast(9, false, 0b11, iface, 3, a);
    encodeStepSpan(9, false, 0b11, copies.data(), 3, b);
    // The broadcast frame carries the interface once...
    EXPECT_LT(a.buffer().size(), b.buffer().size() / 2);

    // ...but decodes to the identical expanded message.
    StepMsg fromBroadcast, fromSpan;
    ASSERT_TRUE(decodeStep(a.buffer().data(), a.buffer().size(), cfg, 3,
                           fromBroadcast));
    ASSERT_TRUE(decodeStep(b.buffer().data(), b.buffer().size(), cfg, 3,
                           fromSpan));
    EXPECT_EQ(fromBroadcast.seq, fromSpan.seq);
    EXPECT_EQ(fromBroadcast.scoredMask, fromSpan.scoredMask);
    ASSERT_EQ(fromBroadcast.ifaces.size(), 3u);
    for (Index t = 0; t < 3; ++t)
        expectIfaceEqual(fromBroadcast.ifaces[t], fromSpan.ifaces[t]);
}

TEST(Wire, StepReplyRoundTrip)
{
    const DncConfig cfg = shardCfg();
    const Index r = cfg.readHeads;
    Rng rng(11);
    std::vector<MemoryReadout> tiles(2);
    std::vector<Real> confidence;
    for (MemoryReadout &t : tiles) {
        for (Index h = 0; h < r; ++h) {
            t.readVectors.push_back(rng.normalVector(cfg.memoryWidth));
            t.readWeightings.push_back(rng.uniformVector(cfg.memoryRows));
        }
        t.writeWeighting = rng.uniformVector(cfg.memoryRows);
    }
    for (Index i = 0; i < 2 * r; ++i)
        confidence.push_back(rng.normal());

    WireWriter w;
    encodeStepReply(42, true, tiles, confidence, cfg, w);
    StepReplyMsg got;
    ASSERT_TRUE(decodeStepReply(w.buffer().data(), w.buffer().size(), cfg,
                                2, got));
    EXPECT_EQ(got.seq, 42u);
    EXPECT_TRUE(got.hasWeightings);
    ASSERT_EQ(got.tiles.size(), 2u);
    EXPECT_EQ(got.confidence, confidence);
    for (Index t = 0; t < 2; ++t) {
        for (Index h = 0; h < r; ++h) {
            EXPECT_TRUE(got.tiles[t].readVectors[h] ==
                        tiles[t].readVectors[h]);
            EXPECT_TRUE(got.tiles[t].readWeightings[h] ==
                        tiles[t].readWeightings[h]);
        }
        EXPECT_TRUE(got.tiles[t].writeWeighting ==
                    tiles[t].writeWeighting);
    }
}

TEST(Wire, StepReplyWithoutWeightingsOmitsThem)
{
    const DncConfig cfg = shardCfg();
    const Index r = cfg.readHeads;
    Rng rng(13);
    std::vector<MemoryReadout> tiles(1);
    for (Index h = 0; h < r; ++h) {
        tiles[0].readVectors.push_back(rng.normalVector(cfg.memoryWidth));
        tiles[0].readWeightings.push_back(rng.uniformVector(cfg.memoryRows));
    }
    tiles[0].writeWeighting = rng.uniformVector(cfg.memoryRows);
    const std::vector<Real> confidence(r, 0.5);

    WireWriter lean, full;
    encodeStepReply(1, false, tiles, confidence, cfg, lean);
    encodeStepReply(1, true, tiles, confidence, cfg, full);
    EXPECT_LT(lean.buffer().size(), full.buffer().size());

    StepReplyMsg got;
    ASSERT_TRUE(decodeStepReply(lean.buffer().data(), lean.buffer().size(),
                                cfg, 1, got));
    EXPECT_FALSE(got.hasWeightings);
    EXPECT_TRUE(got.tiles[0].readWeightings.empty());
}

TEST(Wire, ControlAndAckRoundTrip)
{
    WireWriter w;
    ControlMsg sent;
    sent.kind = ControlKind::Admit;
    sent.seq = 17;
    encodeControl(sent, w);
    ControlMsg got;
    ASSERT_TRUE(decodeControl(w.buffer().data(), w.buffer().size(), got));
    EXPECT_EQ(got.kind, ControlKind::Admit);
    EXPECT_EQ(got.seq, 17u);

    encodeControlAck(17, w);
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeControlAck(w.buffer().data(), w.buffer().size(), seq));
    EXPECT_EQ(seq, 17u);
}

TEST(Wire, ErrorRoundTripAndPeek)
{
    WireWriter w;
    encodeError("tile exploded", w);
    MsgType type;
    ASSERT_TRUE(peekType(w.buffer().data(), w.buffer().size(), type));
    EXPECT_EQ(type, MsgType::Error);
    ErrorMsg msg;
    ASSERT_TRUE(decodeError(w.buffer().data(), w.buffer().size(), msg));
    EXPECT_EQ(msg.message, "tile exploded");

    encodeShutdown(w);
    ASSERT_TRUE(peekType(w.buffer().data(), w.buffer().size(), type));
    EXPECT_EQ(type, MsgType::Shutdown);
}

// --------------------------------------------------------------------
// Malformed frames.
// --------------------------------------------------------------------

TEST(WireMalformed, TruncationAtEveryByteIsRejected)
{
    const DncConfig cfg = shardCfg();
    StepMsg sent;
    sent.seq = 3;
    sent.ifaces = {sampleIface(cfg, 7), sampleIface(cfg, 8)};
    WireWriter w;
    encodeStep(sent, cfg, w);

    StepMsg out;
    for (std::size_t len = 0; len < w.buffer().size(); ++len)
        EXPECT_FALSE(decodeStep(w.buffer().data(), len, cfg, 2, out))
            << "truncated frame of " << len << " bytes decoded";
}

TEST(WireMalformed, HeaderCorruptionIsRejected)
{
    WireWriter w;
    encodeControlAck(5, w);
    std::vector<std::uint8_t> frame = w.buffer();
    std::uint64_t seq;

    frame[0] ^= 0xFF; // magic
    EXPECT_FALSE(decodeControlAck(frame.data(), frame.size(), seq));
    frame[0] ^= 0xFF;

    frame[2] += 1; // version
    EXPECT_FALSE(decodeControlAck(frame.data(), frame.size(), seq));
    frame[2] -= 1;

    frame[3] = static_cast<std::uint8_t>(MsgType::Error); // type
    EXPECT_FALSE(decodeControlAck(frame.data(), frame.size(), seq));

    MsgType type;
    frame[3] = 200; // unknown type
    EXPECT_FALSE(peekType(frame.data(), frame.size(), type));
}

TEST(WireMalformed, WrongShapesAreRejected)
{
    const DncConfig cfg = shardCfg();
    StepMsg sent;
    sent.ifaces = {sampleIface(cfg, 9)};
    WireWriter w;
    encodeStep(sent, cfg, w);

    StepMsg out;
    // Tile-count mismatch.
    EXPECT_FALSE(decodeStep(w.buffer().data(), w.buffer().size(), cfg, 2,
                            out));
    // Shape mismatch: the receiver expects a wider W.
    DncConfig wide = cfg;
    wide.memoryWidth = cfg.memoryWidth + 4;
    EXPECT_FALSE(decodeStep(w.buffer().data(), w.buffer().size(), wide, 1,
                            out));
    // Head-count mismatch.
    DncConfig heads = cfg;
    heads.readHeads = cfg.readHeads + 1;
    EXPECT_FALSE(decodeStep(w.buffer().data(), w.buffer().size(), heads, 1,
                            out));
}

TEST(WireMalformed, TrailingGarbageIsRejected)
{
    WireWriter w;
    encodeControlAck(5, w);
    std::vector<std::uint8_t> frame = w.buffer();
    frame.push_back(0x00);
    std::uint64_t seq;
    EXPECT_FALSE(decodeControlAck(frame.data(), frame.size(), seq));
}

TEST(WireMalformed, AdversarialCountsDoNotAllocate)
{
    // A hand-built Step frame declaring 4 billion read keys: the
    // decoder must reject on the count check, not resize first.
    WireWriter w;
    w.header(MsgType::Step);
    w.putU64(1);          // seq
    w.putU8(0);           // wantWeightings
    w.putU32(0);          // scoredMask
    w.putU8(0);           // per-tile interfaces
    w.putU32(1);          // one tile
    w.putU32(0xFFFFFFFF); // readKeys count — absurd
    StepMsg out;
    EXPECT_FALSE(decodeStep(w.buffer().data(), w.buffer().size(), shardCfg(),
                            1, out));

    // Same for a vector length beyond the remaining bytes.
    WireWriter v;
    v.header(MsgType::StepReply);
    v.putU64(1);
    v.putU8(0);
    v.putU32(1);          // one tile
    v.putU32(0x40000000); // first read vector claims 2^30 reals
    StepReplyMsg reply;
    EXPECT_FALSE(decodeStepReply(v.buffer().data(), v.buffer().size(),
                                 shardCfg(), 1, reply));
}

// --------------------------------------------------------------------
// Loopback framing.
// --------------------------------------------------------------------

TEST(Transport, LoopbackDeliversInOrderAndCountsBytes)
{
    // Echo service: every frame comes straight back.
    LoopbackChannel chan(
        [](const std::uint8_t *data, std::size_t size, FrameSink &reply) {
            reply.sendFrame(data, size);
        });

    const std::vector<std::uint8_t> a = {1, 2, 3};
    const std::vector<std::uint8_t> b = {9, 8};
    chan.sendFrame(a.data(), a.size());
    chan.sendFrame(b.data(), b.size());
    EXPECT_EQ(chan.bytesSent(), 5u);
    EXPECT_EQ(chan.bytesReceived(), 5u);

    std::vector<std::uint8_t> frame;
    ASSERT_TRUE(chan.recvFrame(frame));
    EXPECT_EQ(frame, a);
    ASSERT_TRUE(chan.recvFrame(frame));
    EXPECT_EQ(frame, b);
    EXPECT_FALSE(chan.recvFrame(frame)) << "empty inbox must report false";
}

} // namespace
} // namespace hima
