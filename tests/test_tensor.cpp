/**
 * @file
 * Unit and property tests for the dense tensor kernels.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"
#include "common/tensor.h"

namespace hima {
namespace {

TEST(Vector, ConstructionAndFill)
{
    Vector v(5);
    EXPECT_EQ(v.size(), 5u);
    for (Index i = 0; i < v.size(); ++i)
        EXPECT_EQ(v[i], 0.0);

    v.fill(2.5);
    EXPECT_DOUBLE_EQ(v.sum(), 12.5);

    Vector w(3, 1.0);
    EXPECT_DOUBLE_EQ(w.sum(), 3.0);
}

TEST(Vector, InitializerListAndReductions)
{
    Vector v{3.0, -1.0, 4.0, 1.5};
    EXPECT_DOUBLE_EQ(v.max(), 4.0);
    EXPECT_DOUBLE_EQ(v.min(), -1.0);
    EXPECT_EQ(v.argmax(), 2u);
    EXPECT_DOUBLE_EQ(v.sum(), 7.5);
}

TEST(Vector, Norm)
{
    Vector v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(Vector(7).norm(), 0.0);
}

TEST(Vector, ElementwiseOps)
{
    Vector a{1.0, 2.0, 3.0};
    Vector b{4.0, 5.0, 6.0};
    EXPECT_EQ(add(a, b), (Vector{5.0, 7.0, 9.0}));
    EXPECT_EQ(sub(b, a), (Vector{3.0, 3.0, 3.0}));
    EXPECT_EQ(mul(a, b), (Vector{4.0, 10.0, 18.0}));
    EXPECT_EQ(scale(a, 2.0), (Vector{2.0, 4.0, 6.0}));
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
}

TEST(Vector, CosineSimilarity)
{
    Vector a{1.0, 0.0};
    Vector b{0.0, 1.0};
    EXPECT_NEAR(cosineSimilarity(a, a), 1.0, 1e-6);
    EXPECT_NEAR(cosineSimilarity(a, b), 0.0, 1e-6);
    EXPECT_NEAR(cosineSimilarity(a, scale(a, -1.0)), -1.0, 1e-6);
    // Epsilon guard: zero vectors do not divide by zero.
    EXPECT_EQ(cosineSimilarity(Vector(2), Vector(2)), 0.0);
}

TEST(Matrix, RowAccess)
{
    Matrix m(3, 2);
    m(1, 0) = 5.0;
    m(1, 1) = 7.0;
    EXPECT_EQ(m.row(1), (Vector{5.0, 7.0}));

    m.setRow(2, Vector{9.0, 11.0});
    EXPECT_EQ(m(2, 0), 9.0);
    EXPECT_EQ(m(2, 1), 11.0);
}

TEST(Matrix, MatVecKnownValues)
{
    Matrix m(2, 3);
    // [[1 2 3], [4 5 6]]
    for (Index c = 0; c < 3; ++c) {
        m(0, c) = static_cast<Real>(c + 1);
        m(1, c) = static_cast<Real>(c + 4);
    }
    Vector x{1.0, 0.0, -1.0};
    EXPECT_EQ(matVec(m, x), (Vector{-2.0, -2.0}));
    EXPECT_EQ(matTVec(m, Vector{1.0, 1.0}), (Vector{5.0, 7.0, 9.0}));
}

TEST(Matrix, OuterProduct)
{
    Matrix m = outer(Vector{1.0, 2.0}, Vector{3.0, 4.0, 5.0});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(1, 2), 10.0);
    EXPECT_EQ(m(0, 0), 3.0);
}

TEST(Matrix, TransposeInvolution)
{
    Rng rng(7);
    const Matrix m = rng.normalMatrix(5, 9);
    const Matrix mtt = transpose(transpose(m));
    EXPECT_EQ(m, mtt);
}

TEST(Matrix, MatMulIdentity)
{
    Rng rng(11);
    const Matrix m = rng.normalMatrix(4, 4);
    Matrix eye(4, 4);
    for (Index i = 0; i < 4; ++i)
        eye(i, i) = 1.0;
    const Matrix prod = matMul(m, eye);
    for (Index i = 0; i < m.size(); ++i)
        EXPECT_NEAR(prod.data()[i], m.data()[i], 1e-12);
}

/** Property: matTVec(m, x) == matVec(transpose(m), x). */
class TransposeConsistency : public ::testing::TestWithParam<int>
{};

TEST_P(TransposeConsistency, MatTVecMatchesExplicitTranspose)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const Index rows = 2 + rng.uniformInt(20);
    const Index cols = 2 + rng.uniformInt(20);
    const Matrix m = rng.normalMatrix(rows, cols);
    const Vector x = rng.normalVector(rows);

    const Vector fused = matTVec(m, x);
    const Vector explicitT = matVec(transpose(m), x);
    ASSERT_EQ(fused.size(), explicitT.size());
    for (Index i = 0; i < fused.size(); ++i)
        EXPECT_NEAR(fused[i], explicitT[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransposeConsistency,
                         ::testing::Range(0, 10));

/** Property: dot is bilinear and symmetric. */
class DotProperties : public ::testing::TestWithParam<int>
{};

TEST_P(DotProperties, SymmetryAndLinearity)
{
    Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
    const Index n = 1 + rng.uniformInt(32);
    const Vector a = rng.normalVector(n);
    const Vector b = rng.normalVector(n);
    const Vector c = rng.normalVector(n);
    const Real s = rng.uniform(-2.0, 2.0);

    EXPECT_NEAR(dot(a, b), dot(b, a), 1e-9);
    EXPECT_NEAR(dot(add(a, c), b), dot(a, b) + dot(c, b), 1e-9);
    EXPECT_NEAR(dot(scale(a, s), b), s * dot(a, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DotProperties, ::testing::Range(0, 8));

TEST(MathUtil, SoftmaxIsDistribution)
{
    Rng rng(3);
    const Vector x = rng.normalVector(64, 0.0, 3.0);
    const Vector sm = softmax(x);
    Real sum = 0.0;
    for (Index i = 0; i < sm.size(); ++i) {
        EXPECT_GT(sm[i], 0.0);
        sum += sm[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Softmax is monotone: ordering preserved.
    EXPECT_EQ(x.argmax(), sm.argmax());
}

TEST(MathUtil, SoftmaxStableForLargeInputs)
{
    Vector x{1000.0, 1000.0, 999.0};
    const Vector sm = softmax(x);
    EXPECT_NEAR(sm[0], sm[1], 1e-12);
    EXPECT_LT(sm[2], sm[0]);
    EXPECT_NEAR(sm.sum(), 1.0, 1e-9);
}

TEST(MathUtil, OneplusLowerBound)
{
    EXPECT_GE(oneplus(-100.0), 1.0);
    EXPECT_NEAR(oneplus(0.0), 1.0 + std::log(2.0), 1e-12);
    EXPECT_GT(oneplus(3.0), 4.0 - 0.1);
}

TEST(MathUtil, SigmoidRangeAndSymmetry)
{
    EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
    EXPECT_NEAR(sigmoid(5.0) + sigmoid(-5.0), 1.0, 1e-12);
    EXPECT_GT(sigmoid(30.0), 0.9999);
}

TEST(Rng, Determinism)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformBounds)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const Real u = rng.uniform(2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(9);
    const auto perm = rng.permutation(50);
    std::vector<bool> seen(50, false);
    for (Index p : perm) {
        ASSERT_LT(p, 50u);
        EXPECT_FALSE(seen[p]);
        seen[p] = true;
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    const Vector v = rng.normalVector(20000, 1.0, 2.0);
    Real mean = v.sum() / static_cast<Real>(v.size());
    Real var = 0.0;
    for (Index i = 0; i < v.size(); ++i)
        var += (v[i] - mean) * (v[i] - mean);
    var /= static_cast<Real>(v.size());
    EXPECT_NEAR(mean, 1.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

} // namespace
} // namespace hima
