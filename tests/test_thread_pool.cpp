/**
 * @file
 * ThreadPool edge cases: empty index spaces, exception propagation from
 * tasks (including the caller's own lane), pool reuse after a throwing
 * job, and prompt construction/destruction — the lifecycle paths the
 * batched serving engine leans on every step.
 */

#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace hima {
namespace {

TEST(ThreadPoolEdge, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](Index) { FAIL() << "no index should run"; });
    // And the pool is still usable afterwards.
    std::atomic<int> ran{0};
    pool.parallelFor(5, [&](Index) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPoolEdge, ZeroTasksOnSingleLanePool)
{
    ThreadPool pool(1);
    pool.parallelFor(0, [](Index) { FAIL() << "no index should run"; });
}

TEST(ThreadPoolEdge, CountSmallerThanThreads)
{
    ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(3, [&](Index i) { hits[i].fetch_add(1); });
    for (Index i = 0; i < 3; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolEdge, TaskExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(pool.parallelFor(100,
                                  [&](Index i) {
                                      ran.fetch_add(1);
                                      if (i == 57)
                                          throw std::runtime_error("task 57");
                                  }),
                 std::runtime_error);
    // The every-index guarantee holds even when one task throws.
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolEdge, TaskExceptionOnSequentialPath)
{
    // A 1-lane pool runs tasks inline on the caller; the contract must
    // be the same: all indices execute, then the first exception
    // rethrows.
    ThreadPool pool(1);
    int ran = 0;
    EXPECT_THROW(pool.parallelFor(10,
                                  [&](Index i) {
                                      ++ran;
                                      if (i == 3)
                                          throw std::runtime_error("task 3");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(ran, 10);
}

TEST(ThreadPoolEdge, PoolIsReusableAfterAThrowingJob)
{
    ThreadPool pool(4);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.parallelFor(50,
                                      [&](Index i) {
                                          if (i % 7 == 0)
                                              throw std::runtime_error("x");
                                      }),
                     std::runtime_error);
        std::atomic<int> ran{0};
        pool.parallelFor(50, [&](Index) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 50) << "round " << round;
    }
}

TEST(ThreadPoolEdge, ExceptionMessageIsFromATask)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(8, [](Index i) {
            throw std::runtime_error("task " + std::to_string(i));
        });
        FAIL() << "expected a rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u) << e.what();
    }
}

TEST(ThreadPoolEdge, DestructionWithIdleWorkers)
{
    // Workers are parked on the start condition when the pool dies; the
    // destructor must wake and join them without a job ever running.
    for (int round = 0; round < 8; ++round) {
        ThreadPool pool(4);
        (void)pool;
    }
}

TEST(ThreadPoolEdge, DestructionImmediatelyAfterWork)
{
    // The teardown race this covers: workers can still be inside their
    // final failing claim of the last job when stop_ is raised.
    for (int round = 0; round < 8; ++round) {
        ThreadPool pool(4);
        std::atomic<int> ran{0};
        pool.parallelFor(64, [&](Index) { ran.fetch_add(1); });
        EXPECT_EQ(ran.load(), 64);
    }
}

TEST(ThreadPoolEdge, ManyBackToBackJobs)
{
    ThreadPool pool(4);
    std::atomic<long> total{0};
    for (int round = 0; round < 200; ++round)
        pool.parallelFor(16, [&](Index i) {
            total.fetch_add(static_cast<long>(i));
        });
    EXPECT_EQ(total.load(), 200L * (15 * 16 / 2));
}

} // namespace
} // namespace hima
