/**
 * @file
 * Lane-lifecycle + router bit-exactness proof.
 *
 * The contract under test extends PR 2's: every request served through
 * the dynamic-batching router is bit-identical to a dedicated sequential
 * Dnc run of the same token stream — regardless of when the request
 * arrived, which slot it landed in, what admissions/evictions its
 * co-tenants went through, the thread count, fixed-point mode, or
 * writeSkipThreshold. Engine-level churn is covered by the randomized
 * admit/evict lockstep in golden_util.h; router-level by replaying
 * Poisson and bursty arrival traces and checking every completed
 * request against a reference model. Lifecycle mechanics, admission
 * policies, queue back-pressure and the DncConfig router knobs get
 * their own unit tests.
 */

#include <algorithm>
#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "golden_util.h"
#include "serve/router.h"
#include "workload/arrival.h"

namespace hima {
namespace {

DncConfig
tinyConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 40;
    cfg.memoryWidth = 12;
    cfg.readHeads = 2;
    cfg.controllerSize = 24;
    cfg.inputSize = 10;
    cfg.outputSize = 8;
    return cfg;
}

// --------------------------------------------------------------------
// Engine-level churn golden sweep: randomized admit/evict interleavings
// across threads x datapath, per the issue's acceptance grid.
// --------------------------------------------------------------------

class LaneChurnBitExact
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{};

TEST_P(LaneChurnBitExact, ChurnedLanesMatchSequentialReference)
{
    const auto [threads, fixedPoint] = GetParam();
    DncConfig cfg = tinyConfig();
    cfg.fixedPoint = fixedPoint;
    golden::runChurnLockstep(cfg, /*capacity=*/6,
                             static_cast<Index>(threads), /*steps=*/16);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LaneChurnBitExact,
    ::testing::Combine(::testing::Values(1, 4), ::testing::Bool()),
    [](const auto &info) {
        return "T" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "Fixed" : "Float");
    });

TEST(LaneChurn, WriteSkipThresholdStaysBitIdentical)
{
    DncConfig cfg = tinyConfig();
    cfg.writeSkipThreshold = 1e-6;
    golden::runChurnLockstep(cfg, 5, 4, 12, /*weightSeed=*/3,
                             /*churnSeed=*/11, /*inputSeed=*/31);
}

TEST(LaneChurn, CrossesTheLaneChunkBoundary)
{
    // Capacity 70 with churn sweeps active prefixes on both sides of
    // the kBatchLaneChunk=64 accumulator boundary.
    static_assert(kBatchLaneChunk == 64, "revisit the capacity below");
    DncConfig cfg = tinyConfig();
    cfg.memoryRows = 16;
    cfg.controllerSize = 12;
    golden::runChurnLockstep(cfg, 70, 2, 6, /*weightSeed=*/19,
                             /*churnSeed=*/23, /*inputSeed=*/29);
}

// --------------------------------------------------------------------
// Lane-lifecycle mechanics.
// --------------------------------------------------------------------

TEST(LaneLifecycle, StartsFullyOccupiedAndRoundTrips)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 4;
    BatchedDnc engine(cfg, 5);
    EXPECT_EQ(engine.activeLanes(), 4u);
    EXPECT_EQ(engine.freeLanes(), 0u);
    EXPECT_EQ(engine.capacity(), 4u);

    engine.markDraining(2);
    EXPECT_EQ(engine.laneState(2), LaneState::Draining);
    EXPECT_EQ(engine.activeLanes(), 3u);
    EXPECT_EQ(engine.drainingLanes(), 1u);

    engine.release(2);
    engine.release(0); // Active -> Free directly is allowed
    EXPECT_EQ(engine.laneState(0), LaneState::Free);
    EXPECT_EQ(engine.freeLanes(), 2u);
    EXPECT_EQ(engine.activeLanes(), 2u);

    const Index a = engine.admit();
    const Index b = engine.admit();
    EXPECT_EQ(engine.freeLanes(), 0u);
    EXPECT_EQ(engine.activeLanes(), 4u);
    // Slot ids are recycled from the free pool, never invented.
    EXPECT_TRUE((a == 0 && b == 2) || (a == 2 && b == 0));
}

TEST(LaneLifecycle, AdmitIsAFreshEpisode)
{
    // A slot that served one episode and was recycled must reproduce a
    // fresh lane's trajectory exactly, even though its neighbors kept
    // their state.
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 3;
    BatchedDnc engine(cfg, 13);
    Rng rng(17);

    std::vector<Vector> inputs(cfg.batchSize);
    std::vector<Vector> outputs;
    for (Index slot = 0; slot < cfg.batchSize; ++slot)
        inputs[slot] = rng.normalVector(cfg.inputSize);
    engine.stepInto(inputs, outputs);
    const Vector firstStepOut = outputs[1];

    engine.stepInto(inputs, outputs); // slot 1 accumulates more state
    engine.release(1);
    ASSERT_EQ(engine.admit(), 1u); // the only free slot

    engine.stepInto(inputs, outputs);
    EXPECT_TRUE(outputs[1] == firstStepOut)
        << "recycled slot did not restart from a fresh episode";
}

TEST(LaneLifecycle, DrainingLaneStateStaysFrozen)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 3;
    BatchedDnc engine(cfg, 21);
    Rng rng(23);

    std::vector<Vector> inputs(cfg.batchSize);
    std::vector<Vector> outputs;
    for (int step = 0; step < 3; ++step) {
        for (Index slot = 0; slot < cfg.batchSize; ++slot)
            inputs[slot] = rng.normalVector(cfg.inputSize);
        engine.stepInto(inputs, outputs);
    }

    const Vector hidden = engine.laneHidden(1);
    const Matrix memory = engine.laneMemory(1).memory();
    engine.markDraining(1);
    for (int step = 0; step < 2; ++step) {
        for (Index slot = 0; slot < cfg.batchSize; ++slot)
            inputs[slot] = rng.normalVector(cfg.inputSize);
        engine.stepInto(inputs, outputs);
    }
    EXPECT_TRUE(engine.laneHidden(1) == hidden);
    EXPECT_TRUE(engine.laneMemory(1).memory() == memory);
}

TEST(LaneLifecycle, EmptyEngineStepIsANoOp)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 2;
    BatchedDnc engine(cfg, 31);
    for (Index slot = 0; slot < cfg.batchSize; ++slot)
        engine.release(slot);

    std::vector<Vector> inputs(cfg.batchSize);
    std::vector<Vector> outputs;
    engine.stepInto(inputs, outputs); // must not touch the empty inputs
    EXPECT_EQ(outputs.size(), cfg.batchSize);
    EXPECT_EQ(engine.activeLanes(), 0u);
}

TEST(LaneLifecycle, ResetRestoresFullOccupancy)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 3;
    BatchedDnc engine(cfg, 33);
    engine.release(0);
    engine.markDraining(2);
    engine.reset();
    EXPECT_EQ(engine.activeLanes(), 3u);
    EXPECT_EQ(engine.freeLanes(), 0u);
    for (Index slot = 0; slot < cfg.batchSize; ++slot)
        EXPECT_EQ(engine.laneState(slot), LaneState::Active);
}

// --------------------------------------------------------------------
// Router-level golden: arrival traces served through the router must be
// bit-identical, request by request, to dedicated sequential runs.
// --------------------------------------------------------------------

/**
 * Serve a trace through a router and check every completed request
 * against a dedicated reference Dnc fed the same regenerated tokens.
 */
void
routerGolden(DncConfig cfg, const ArrivalSpec &spec, Index horizon,
             AdmissionPolicy policy = greedyAdmission(),
             std::uint64_t weightSeed = 1, std::uint64_t traceSeed = 41,
             std::uint64_t tokenSeed = 43)
{
    Router router(cfg, weightSeed, std::move(policy));
    Rng traceRng(traceSeed);
    const std::vector<ArrivalEvent> trace =
        makeArrivalTrace(spec, horizon, traceRng);
    ASSERT_FALSE(trace.empty()) << "arrival spec generated no load";

    std::map<std::uint64_t, ArrivalEvent> accepted;
    std::size_t next = 0;
    while (next < trace.size()) {
        while (next < trace.size() && trace[next].step <= router.now()) {
            const ArrivalEvent &event = trace[next];
            ServeRequest request;
            request.id = event.ordinal;
            request.tokens = requestTokens(event, cfg.inputSize, tokenSeed);
            if (router.submit(std::move(request)))
                accepted.emplace(event.ordinal, event);
            ++next;
        }
        router.step();
    }
    router.drain();

    ASSERT_EQ(router.completed().size(), accepted.size());
    EXPECT_EQ(router.rejectedRequests(), trace.size() - accepted.size())
        << "rejection counter out of sync with refused submissions";
    EXPECT_EQ(router.activeRequests(), 0u);
    EXPECT_EQ(router.queuedRequests(), 0u);

    DncConfig refCfg = cfg;
    refCfg.batchSize = 1;
    refCfg.numThreads = 1;
    Dnc ref(refCfg, weightSeed);
    for (const ServeResult &result : router.completed()) {
        SCOPED_TRACE(::testing::Message() << "request " << result.id);
        const auto it = accepted.find(result.id);
        ASSERT_NE(it, accepted.end());
        const std::vector<Vector> tokens =
            requestTokens(it->second, cfg.inputSize, tokenSeed);
        ASSERT_EQ(result.outputs.size(), tokens.size());
        ref.reset();
        for (Index t = 0; t < tokens.size(); ++t)
            ASSERT_TRUE(ref.step(tokens[t]) == result.outputs[t])
                << "output " << t << " diverged";
        EXPECT_GE(result.admitStep, result.arrivalStep);
        EXPECT_EQ(result.finishStep,
                  result.admitStep + tokens.size() - 1)
            << "service must be one token per step once admitted";
    }
}

class RouterBitExact
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{};

TEST_P(RouterBitExact, PoissonTraceMatchesSequentialReference)
{
    const auto [threads, fixedPoint] = GetParam();
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 4;
    cfg.numThreads = static_cast<Index>(threads);
    cfg.fixedPoint = fixedPoint;
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Poisson;
    spec.rate = 0.35; // oversubscribes 4 lanes: queueing + churn
    routerGolden(cfg, spec, /*horizon=*/40);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RouterBitExact,
    ::testing::Combine(::testing::Values(1, 4), ::testing::Bool()),
    [](const auto &info) {
        return "T" + std::to_string(std::get<0>(info.param)) +
               (std::get<1>(info.param) ? "Fixed" : "Float");
    });

TEST(Router, BurstyTraceMatchesSequentialReference)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 3;
    cfg.numThreads = 2;
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Bursty;
    spec.rate = 0.05;
    spec.burstProbability = 0.15;
    spec.burstSize = 5; // bursts exceed capacity: forced queueing
    routerGolden(cfg, spec, /*horizon=*/30, greedyAdmission(),
                 /*weightSeed=*/3, /*traceSeed=*/47, /*tokenSeed=*/53);
}

TEST(Router, BatchFillAdmissionStaysBitExact)
{
    // Holding admissions back changes *when* lanes run, which must not
    // change *what* they compute.
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 4;
    cfg.numThreads = 2;
    ArrivalSpec spec;
    spec.rate = 0.4;
    routerGolden(cfg, spec, /*horizon=*/30,
                 batchFillAdmission(/*minFill=*/3, /*maxWaitSteps=*/6),
                 /*weightSeed=*/5, /*traceSeed=*/59, /*tokenSeed=*/61);
}

// --------------------------------------------------------------------
// Overload: bursty traffic overflowing routerQueueCapacity. Rejected
// submissions must be counted deterministically, and every *accepted*
// request must still come back bit-exact (routerGolden only tracks
// requests submit() accepted, so it proves exactly that).
// --------------------------------------------------------------------

TEST(RouterOverload, BurstyOverflowRejectsAndAcceptedStayBitExact)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 2;
    cfg.routerQueueCapacity = 3; // bursts of 7 must overflow
    cfg.numThreads = 2;
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Bursty;
    spec.rate = 0.05;
    spec.burstProbability = 0.3;
    spec.burstSize = 7;
    routerGolden(cfg, spec, /*horizon=*/30, greedyAdmission(),
                 /*weightSeed=*/7, /*traceSeed=*/101, /*tokenSeed=*/103);
}

TEST(RouterOverload, RejectionCountIsDeterministicAndNonZero)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 2;
    cfg.routerQueueCapacity = 2;
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Bursty;
    spec.rate = 0.05;
    spec.burstProbability = 0.4;
    spec.burstSize = 8;

    auto serveOnce = [&]() -> std::pair<Index, Index> {
        Router router(cfg, 1);
        Rng traceRng(107);
        const auto trace = makeArrivalTrace(spec, 24, traceRng);
        std::size_t next = 0;
        Index refused = 0;
        while (next < trace.size() || !router.idle()) {
            while (next < trace.size() &&
                   trace[next].step <= router.now()) {
                ServeRequest request;
                request.id = trace[next].ordinal;
                request.tokens =
                    requestTokens(trace[next], cfg.inputSize, 109);
                if (!router.submit(std::move(request)))
                    ++refused;
                ++next;
            }
            router.step();
        }
        router.drain();
        EXPECT_EQ(router.rejectedRequests(), refused);
        EXPECT_EQ(router.completed().size(), trace.size() - refused);
        return {router.rejectedRequests(), router.completed().size()};
    };

    const auto [rejectedA, completedA] = serveOnce();
    const auto [rejectedB, completedB] = serveOnce();
    EXPECT_GT(rejectedA, 0u) << "trace must actually overflow the queue";
    EXPECT_GT(completedA, 0u);
    EXPECT_EQ(rejectedA, rejectedB) << "back-pressure must be deterministic";
    EXPECT_EQ(completedA, completedB);
}

// --------------------------------------------------------------------
// Router behavior that doesn't need the reference model.
// --------------------------------------------------------------------

ServeRequest
makeRequest(std::uint64_t id, Index tokens, const DncConfig &cfg, Rng &rng)
{
    ServeRequest request;
    request.id = id;
    for (Index t = 0; t < tokens; ++t)
        request.tokens.push_back(rng.normalVector(cfg.inputSize));
    return request;
}

TEST(Router, QueueCapacityAppliesBackPressure)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 1;
    cfg.routerQueueCapacity = 2;
    Router router(cfg);
    Rng rng(67);

    EXPECT_TRUE(router.submit(makeRequest(0, 4, cfg, rng)));
    EXPECT_TRUE(router.submit(makeRequest(1, 4, cfg, rng)));
    EXPECT_FALSE(router.submit(makeRequest(2, 4, cfg, rng)))
        << "third submission must bounce off capacity 2";
    EXPECT_EQ(router.rejectedRequests(), 1u);

    router.step(); // admits request 0, queue has room again
    EXPECT_TRUE(router.submit(makeRequest(3, 4, cfg, rng)));
    router.drain();
    EXPECT_EQ(router.completed().size(), 3u);
}

TEST(Router, MaxActiveLanesCapsOccupancy)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 4;
    cfg.routerMaxActiveLanes = 2;
    Router router(cfg);
    Rng rng(71);
    for (std::uint64_t id = 0; id < 4; ++id)
        ASSERT_TRUE(router.submit(makeRequest(id, 6, cfg, rng)));

    router.step();
    EXPECT_EQ(router.activeRequests(), 2u)
        << "routerMaxActiveLanes must cap admissions below batchSize";
    EXPECT_EQ(router.engine().activeLanes(), 2u);
    router.drain();
    EXPECT_EQ(router.completed().size(), 4u);
}

TEST(Router, DrainLeavesEveryLaneFree)
{
    // Lanes that finish on the final step are Draining at that instant;
    // drain() must flush them so an idle router reports a fully free
    // engine (callers may check capacity or hand the engine elsewhere).
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 2;
    Router router(cfg);
    Rng rng(89);
    ASSERT_TRUE(router.submit(makeRequest(0, 3, cfg, rng)));
    ASSERT_TRUE(router.submit(makeRequest(1, 5, cfg, rng)));
    router.drain();
    EXPECT_TRUE(router.idle());
    EXPECT_EQ(router.engine().freeLanes(), cfg.batchSize);
    EXPECT_EQ(router.engine().drainingLanes(), 0u);
    for (Index slot = 0; slot < cfg.batchSize; ++slot)
        EXPECT_EQ(router.engine().laneState(slot), LaneState::Free);

    // And the router keeps serving after a drain.
    ASSERT_TRUE(router.submit(makeRequest(2, 2, cfg, rng)));
    router.drain();
    EXPECT_EQ(router.completed().size(), 3u);
    EXPECT_EQ(router.engine().freeLanes(), cfg.batchSize);
}

TEST(Router, GreedyAdmissionBindsImmediately)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 4;
    Router router(cfg);
    Rng rng(73);
    ASSERT_TRUE(router.submit(makeRequest(7, 5, cfg, rng)));
    router.drain();
    ASSERT_EQ(router.completed().size(), 1u);
    const ServeResult &result = router.completed()[0];
    EXPECT_EQ(result.queueSteps(), 0u);
    EXPECT_EQ(result.latencySteps(), 5u); // pure service time
}

TEST(Router, BatchFillAdmissionTradesLatencyForDensity)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 4;
    Router router(cfg, 1, batchFillAdmission(/*minFill=*/3,
                                             /*maxWaitSteps=*/10));
    Rng rng(79);

    // One lonely request: held back until the wait bound trips.
    ASSERT_TRUE(router.submit(makeRequest(0, 3, cfg, rng)));
    router.step();
    EXPECT_EQ(router.activeRequests(), 0u) << "minFill=3 must hold 1 back";

    // Two more arrivals reach the fill target: all bind at once.
    ASSERT_TRUE(router.submit(makeRequest(1, 3, cfg, rng)));
    ASSERT_TRUE(router.submit(makeRequest(2, 3, cfg, rng)));
    router.step();
    EXPECT_EQ(router.activeRequests(), 3u);
    router.drain();
    EXPECT_EQ(router.completed().size(), 3u);
}

TEST(Router, MaxWaitBoundOverridesFillTarget)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 4;
    Router router(cfg, 1, batchFillAdmission(/*minFill=*/4,
                                             /*maxWaitSteps=*/3));
    Rng rng(83);
    ASSERT_TRUE(router.submit(makeRequest(0, 2, cfg, rng)));
    router.step();
    router.step();
    router.step();
    EXPECT_EQ(router.activeRequests(), 0u);
    router.step(); // oldestWait reaches 3: the bound trips
    EXPECT_EQ(router.activeRequests(), 1u);
    router.drain();
    ASSERT_EQ(router.completed().size(), 1u);
    EXPECT_EQ(router.completed()[0].queueSteps(), 3u);
}

// --------------------------------------------------------------------
// DncConfig router-knob validation (satellite).
// --------------------------------------------------------------------

using RouterConfigDeath = ::testing::Test;

TEST(RouterConfigDeath, ZeroQueueCapacityIsFatal)
{
    DncConfig cfg = tinyConfig();
    cfg.routerQueueCapacity = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "routerQueueCapacity");
}

TEST(RouterConfigDeath, MaxActiveLanesBeyondBatchSizeIsFatal)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 4;
    cfg.routerMaxActiveLanes = 5;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "routerMaxActiveLanes");
}

TEST(RouterConfig, DefaultsAndBoundaryValuesValidate)
{
    DncConfig cfg = tinyConfig();
    cfg.validate(); // defaults: queue 256, maxActive 0 ("use batchSize")
    cfg.batchSize = 4;
    cfg.routerMaxActiveLanes = 4; // == batchSize is the legal maximum
    cfg.routerQueueCapacity = 1;  // minimum legal queue
    cfg.validate();
}

} // namespace
} // namespace hima
