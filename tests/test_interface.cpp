/**
 * @file
 * Tests for the interface-vector codec.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "dnc/interface.h"

namespace hima {
namespace {

DncConfig
smallConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 32;
    cfg.memoryWidth = 8;
    cfg.readHeads = 2;
    return cfg;
}

TEST(Interface, SizeFormula)
{
    const DncConfig cfg = smallConfig();
    // R*W + 3W + 5R + 3 = 16 + 24 + 10 + 3 = 53.
    EXPECT_EQ(cfg.interfaceSize(), 53u);

    DncConfig paper;
    paper.memoryRows = 1024;
    paper.memoryWidth = 64;
    paper.readHeads = 4;
    EXPECT_EQ(paper.interfaceSize(), 4u * 64 + 3 * 64 + 5 * 4 + 3);
}

TEST(Interface, DecodeAppliesConstraints)
{
    const DncConfig cfg = smallConfig();
    Rng rng(1);
    const Vector raw = rng.normalVector(cfg.interfaceSize(), 0.0, 3.0);
    const InterfaceVector iface = decodeInterface(raw, cfg);

    validateInterface(iface, cfg); // all constraints hold

    EXPECT_EQ(iface.readKeys.size(), 2u);
    EXPECT_EQ(iface.readKeys[0].size(), 8u);
    for (Real s : iface.readStrengths)
        EXPECT_GE(s, 1.0);
    EXPECT_GE(iface.writeStrength, 1.0);
    for (Index i = 0; i < iface.eraseVector.size(); ++i) {
        EXPECT_GT(iface.eraseVector[i], 0.0);
        EXPECT_LT(iface.eraseVector[i], 1.0);
    }
    for (const ReadMode &m : iface.readModes) {
        EXPECT_NEAR(m.backward + m.content + m.forward, 1.0, 1e-9);
    }
}

TEST(Interface, DecodeIsDeterministicSlicing)
{
    const DncConfig cfg = smallConfig();
    // Raw layout: the first R*W entries are the read keys verbatim.
    Vector raw(cfg.interfaceSize());
    for (Index i = 0; i < raw.size(); ++i)
        raw[i] = static_cast<Real>(i) * 0.01;
    const InterfaceVector iface = decodeInterface(raw, cfg);
    EXPECT_DOUBLE_EQ(iface.readKeys[0][0], 0.0);
    EXPECT_DOUBLE_EQ(iface.readKeys[0][7], 0.07);
    EXPECT_DOUBLE_EQ(iface.readKeys[1][0], 0.08);
    // Write key follows the R read strengths.
    EXPECT_DOUBLE_EQ(iface.writeKey[0], (16 + 2) * 0.01);
}

TEST(Interface, DecodeRejectsWrongWidth)
{
    const DncConfig cfg = smallConfig();
    EXPECT_DEATH(decodeInterface(Vector(10), cfg), "interface width");
}

TEST(Interface, ValidateCatchesBadModes)
{
    const DncConfig cfg = smallConfig();
    Rng rng(2);
    InterfaceVector iface =
        decodeInterface(rng.normalVector(cfg.interfaceSize()), cfg);
    iface.readModes[0] = {0.5, 0.7, 0.2}; // off the simplex
    EXPECT_DEATH(validateInterface(iface, cfg), "simplex");
}

TEST(Interface, ValidateCatchesBadStrength)
{
    const DncConfig cfg = smallConfig();
    Rng rng(3);
    InterfaceVector iface =
        decodeInterface(rng.normalVector(cfg.interfaceSize()), cfg);
    iface.writeStrength = 0.5;
    EXPECT_DEATH(validateInterface(iface, cfg), "strength");
}

TEST(DncConfigTest, ValidateRejectsBadShapes)
{
    DncConfig cfg = smallConfig();
    cfg.memoryRows = 0;
    EXPECT_DEATH(cfg.validate(), "zero-sized");

    DncConfig cfg2 = smallConfig();
    cfg2.skimRate = 1.5;
    EXPECT_DEATH(cfg2.validate(), "skim rate");
}

} // namespace
} // namespace hima
