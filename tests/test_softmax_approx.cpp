/**
 * @file
 * Tests for the PLA+LUT softmax approximation (Sec. 5.2) and the usage
 * skimming helper.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "approx/softmax_approx.h"
#include "approx/usage_skimming.h"
#include "common/math_util.h"
#include "common/random.h"

namespace hima {
namespace {

TEST(PlaExp, ExactAtKnots)
{
    PlaExp pla(8, -16.0);
    for (const PlaSegment &seg : pla.segments()) {
        // The domain edge itself flushes to zero (hardware behaviour),
        // so only interior knots are exact.
        if (seg.lo > pla.domainLo())
            EXPECT_NEAR(pla.eval(seg.lo), std::exp(seg.lo), 1e-9);
        if (seg.hi < 0.0)
            EXPECT_NEAR(pla.eval(seg.hi), std::exp(seg.hi), 1e-9);
    }
}

TEST(PlaExp, CoversDomainContiguously)
{
    PlaExp pla(8, -16.0);
    const auto &segs = pla.segments();
    ASSERT_FALSE(segs.empty());
    EXPECT_DOUBLE_EQ(segs.front().lo, -16.0);
    EXPECT_DOUBLE_EQ(segs.back().hi, 0.0);
    for (std::size_t i = 1; i < segs.size(); ++i)
        EXPECT_DOUBLE_EQ(segs[i - 1].hi, segs[i].lo);
}

TEST(PlaExp, FlushesBelowDomainAndClampsAbove)
{
    PlaExp pla(8, -16.0);
    EXPECT_EQ(pla.eval(-100.0), 0.0);
    EXPECT_EQ(pla.eval(0.0), 1.0);
    EXPECT_EQ(pla.eval(5.0), 1.0);
}

class PlaSegmentsSweep : public ::testing::TestWithParam<int>
{};

TEST_P(PlaSegmentsSweep, ErrorShrinksWithSegments)
{
    // Secant-line PLA overestimates convex exp(): positive bounded error
    // that must shrink as the LUT grows.
    PlaExp pla(GetParam(), -16.0);
    const Real err = pla.maxAbsError();
    EXPECT_LT(err, 0.35);
    if (GetParam() >= 16)
        EXPECT_LT(err, 0.08);
    if (GetParam() >= 64)
        EXPECT_LT(err, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Segments, PlaSegmentsSweep,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

TEST(SoftmaxApprox, OutputsDistribution)
{
    Rng rng(5);
    SoftmaxApprox approx(8);
    const Vector x = rng.normalVector(128, 0.0, 4.0);
    const Vector sm = approx.eval(x);
    Real sum = 0.0;
    for (Index i = 0; i < sm.size(); ++i) {
        EXPECT_GE(sm[i], 0.0);
        sum += sm[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(SoftmaxApprox, PreservesArgmax)
{
    Rng rng(6);
    SoftmaxApprox approx(8);
    for (int trial = 0; trial < 50; ++trial) {
        const Vector x = rng.normalVector(64, 0.0, 3.0);
        EXPECT_EQ(approx.eval(x).argmax(), softmax(x).argmax());
    }
}

TEST(SoftmaxApprox, L1ErrorSmallAndImprovesWithSegments)
{
    Rng rng(8);
    SoftmaxApprox coarse(4);
    SoftmaxApprox fine(64);
    Real coarseTotal = 0.0, fineTotal = 0.0;
    for (int trial = 0; trial < 20; ++trial) {
        const Vector x = rng.normalVector(64, 0.0, 2.0);
        coarseTotal += coarse.l1Error(x);
        fineTotal += fine.l1Error(x);
    }
    EXPECT_LT(fineTotal, coarseTotal);
    EXPECT_LT(fineTotal / 20.0, 0.01);
    EXPECT_LT(coarseTotal / 20.0, 0.40);
}

TEST(SoftmaxApprox, SharpnessBeta)
{
    SoftmaxApprox approx(16);
    const Vector x{1.0, 0.5, 0.0};
    const Vector soft = approx.eval(x, 1.0);
    const Vector sharp = approx.eval(x, 10.0);
    EXPECT_GT(sharp[0], soft[0]); // higher beta concentrates mass
}

// --------------------------------------------------------------------
// Usage skimming
// --------------------------------------------------------------------

TEST(UsageSkimming, ZeroKeepsEverything)
{
    Vector u{0.5, 0.1, 0.9};
    const SkimmedUsage s = skimUsage(u, 0);
    EXPECT_EQ(s.values.size(), 3u);
    EXPECT_EQ(s.skimmed, 0u);
    EXPECT_EQ(s.indices, (std::vector<Index>{0, 1, 2}));
}

TEST(UsageSkimming, DropsSmallest)
{
    Vector u{0.5, 0.1, 0.9, 0.3};
    const SkimmedUsage s = skimUsage(u, 2);
    // 0.1 (idx 1) and 0.3 (idx 3) are dropped.
    EXPECT_EQ(s.indices, (std::vector<Index>{0, 2}));
    EXPECT_EQ(s.values[0], 0.5);
    EXPECT_EQ(s.values[1], 0.9);
}

TEST(UsageSkimming, TieBreakIsDeterministic)
{
    Vector u{0.2, 0.2, 0.2, 0.2};
    const SkimmedUsage s = skimUsage(u, 2);
    // Ties resolve toward lower indices being dropped first.
    EXPECT_EQ(s.indices, (std::vector<Index>{2, 3}));
}

class SkimRates : public ::testing::TestWithParam<double>
{};

TEST_P(SkimRates, RatePropagatesToCount)
{
    Rng rng(99);
    const Vector u = rng.uniformVector(200);
    const SkimmedUsage s = skimUsageRate(u, GetParam());
    const Index expected = static_cast<Index>(GetParam() * 200.0);
    EXPECT_EQ(s.skimmed, expected);
    EXPECT_EQ(s.values.size(), 200u - expected);

    // Property: every surviving value >= every dropped value.
    Real survivorMin = 2.0;
    for (Index i = 0; i < s.values.size(); ++i)
        survivorMin = std::min(survivorMin, s.values[i]);
    std::vector<bool> kept(200, false);
    for (Index idx : s.indices)
        kept[idx] = true;
    for (Index i = 0; i < 200; ++i) {
        if (!kept[i])
            EXPECT_LE(u[i], survivorMin);
    }
}

INSTANTIATE_TEST_SUITE_P(Rates, SkimRates,
                         ::testing::Values(0.0, 0.1, 0.2, 0.5, 0.9));

} // namespace
} // namespace hima
