/**
 * @file
 * Tests for the synthetic workload suite: codebook, scripter, episodes,
 * copy task and the DNC retrieval protocol end to end.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "workload/copy_task.h"
#include "workload/task_suite.h"

namespace hima {
namespace {

DncConfig
testConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 128;
    cfg.memoryWidth = 16;
    cfg.readHeads = 2;
    return cfg;
}

TEST(Codebook, EncodingsAreUnitNormAndDistinct)
{
    TokenCodebook cb(64, 8, 7);
    for (Index t = 0; t < 64; ++t)
        EXPECT_NEAR(cb.encode(t).norm(), 1.0, 1e-9);
    // Distinct tokens decode to themselves.
    for (Index t = 0; t < 64; ++t)
        EXPECT_EQ(cb.decode(cb.encode(t)), t);
}

TEST(Codebook, DecodeToleratesNoise)
{
    TokenCodebook cb(32, 16, 8);
    Rng rng(9);
    Index correct = 0;
    for (Index t = 0; t < 32; ++t) {
        Vector noisy = add(cb.encode(t),
                           rng.normalVector(16, 0.0, 0.15));
        if (cb.decode(noisy) == t)
            ++correct;
    }
    EXPECT_GE(correct, 30u);
}

TEST(Scripter, InterfacesValidate)
{
    const DncConfig cfg = testConfig();
    TokenCodebook keys(32, cfg.memoryWidth / 2, 1);
    TokenCodebook values(32, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    validateInterface(scripter.writeInterface(3, 5), cfg);
    validateInterface(scripter.queryInterface(3), cfg);
    validateInterface(scripter.temporalInterface(), cfg);
}

TEST(Scripter, WriteVectorPacksKeyAndValue)
{
    const DncConfig cfg = testConfig();
    TokenCodebook keys(32, cfg.memoryWidth / 2, 1);
    TokenCodebook values(32, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);
    const InterfaceVector iface = scripter.writeInterface(4, 9);
    for (Index i = 0; i < cfg.memoryWidth / 2; ++i) {
        EXPECT_EQ(iface.writeVector[i], keys.encode(4)[i]);
        EXPECT_EQ(iface.writeVector[cfg.memoryWidth / 2 + i],
                  values.encode(9)[i]);
    }
    EXPECT_EQ(scripter.decodeValue(iface.writeVector), 9u);
}

TEST(TaskSuiteTest, TwentyTasksWellFormed)
{
    const auto suite = taskSuite();
    ASSERT_EQ(suite.size(), 20u);
    for (Index i = 0; i < 20; ++i) {
        EXPECT_EQ(suite[i].id, i + 1);
        EXPECT_GT(suite[i].items, 0u);
        EXPECT_GT(suite[i].queries, 0u);
        EXPECT_GE(suite[i].temporalFraction, 0.0);
        EXPECT_LE(suite[i].temporalFraction, 1.0);
    }
    // Distinct names.
    for (Index a = 0; a < 20; ++a)
        for (Index b = a + 1; b < 20; ++b)
            EXPECT_NE(suite[a].name, suite[b].name);
}

TEST(TaskSuiteTest, EpisodesHaveConsistentGroundTruth)
{
    Rng rng(3);
    const auto suite = taskSuite();
    for (const TaskSpec &spec : suite) {
        const Episode ep = makeEpisode(spec, 256, rng);
        EXPECT_EQ(ep.writes, spec.items + spec.distractors);
        EXPECT_EQ(ep.scoredQueries, spec.queries);
        // Every query's key was actually written with that value.
        for (const EpisodeStep &step : ep.steps) {
            if (step.kind != StepKind::Query)
                continue;
            bool found = false;
            for (const EpisodeStep &w : ep.steps) {
                if (w.kind == StepKind::Write &&
                    w.keyToken == step.keyToken &&
                    w.valueToken == step.valueToken)
                    found = true;
            }
            EXPECT_TRUE(found);
        }
    }
}

TEST(Retrieval, MonolithicDncIsNearPerfectOnContentTasks)
{
    const DncConfig cfg = testConfig();
    Dnc dnc(cfg, 11);
    TokenCodebook keys(256, cfg.memoryWidth / 2, 1);
    TokenCodebook values(256, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    Rng rng(4);
    const auto suite = taskSuite();
    // Task 1 (single-fact, purely content-based) must be near-perfect.
    const Episode ep = makeEpisode(suite[0], 256, rng);
    const EpisodeResult res = runEpisode(dnc, scripter, ep);
    EXPECT_EQ(res.scored, suite[0].queries);
    EXPECT_GE(static_cast<Real>(res.correct) /
                  static_cast<Real>(res.scored),
              0.95);
}

TEST(Retrieval, TemporalTaskExercisesLinkage)
{
    const DncConfig cfg = testConfig();
    Dnc dnc(cfg, 12);
    TokenCodebook keys(256, cfg.memoryWidth / 2, 1);
    TokenCodebook values(256, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    Rng rng(5);
    const auto suite = taskSuite();
    // Task 14 ("time-order") has 60% temporal queries.
    const Episode ep = makeEpisode(suite[13], 256, rng);
    const EpisodeResult res = runEpisode(dnc, scripter, ep);
    EXPECT_GE(static_cast<Real>(res.correct) /
                  static_cast<Real>(res.scored),
              0.8);
    EXPECT_GT(dnc.profiler().at(Kernel::ForwardBackward).invocations, 0u);
}

TEST(CopyTask, PerfectOnShortSequences)
{
    const DncConfig cfg = testConfig();
    Dnc dnc(cfg, 13);
    TokenCodebook keys(64, cfg.memoryWidth / 2, 1);
    TokenCodebook values(64, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    Rng rng(6);
    std::vector<Index> seq;
    for (int i = 0; i < 8; ++i)
        seq.push_back(rng.uniformInt(64));
    const CopyResult res = runCopyTask(dnc, scripter, seq, 0);
    EXPECT_EQ(res.length, 8u);
    EXPECT_GE(res.correct, 7u);
}

TEST(CopyTask, EmptySequence)
{
    const DncConfig cfg = testConfig();
    Dnc dnc(cfg, 14);
    TokenCodebook keys(8, cfg.memoryWidth / 2, 1);
    TokenCodebook values(8, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);
    const CopyResult res = runCopyTask(dnc, scripter, {}, 0);
    EXPECT_EQ(res.length, 0u);
    EXPECT_EQ(res.errorRate(), 0.0);
}

TEST(Retrieval, SkimmingDegradesUnderMemoryPressure)
{
    // With skimming at 50% and a small memory, collisions must appear
    // that the unskimmed DNC avoids (Fig. 10's mechanism).
    DncConfig cfg = testConfig();
    cfg.memoryRows = 32;
    DncConfig skimCfg = cfg;
    skimCfg.skimRate = 0.5;

    Dnc plain(cfg, 15);
    Dnc skimmed(skimCfg, 15);
    TokenCodebook keys(256, cfg.memoryWidth / 2, 1);
    TokenCodebook values(256, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    Rng rng(7);
    Episode ep;
    const Index items = 14; // close to the skimmed capacity of 16
    for (Index i = 0; i < items; ++i) {
        ep.steps.push_back({StepKind::Write, i, i + 20});
        ++ep.writes;
    }
    for (Index i = 0; i < items; ++i) {
        ep.steps.push_back({StepKind::Query, i, i + 20});
        ++ep.scoredQueries;
    }
    const EpisodeResult plainRes = runEpisode(plain, scripter, ep);
    const EpisodeResult skimRes = runEpisode(skimmed, scripter, ep);
    EXPECT_GE(plainRes.correct, skimRes.correct);
}

} // namespace
} // namespace hima
