/**
 * @file
 * Tests for the temporal linkage state (HR.(1)-(3)): linkage matrix,
 * precedence, forward/backward weightings, and their invariants.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "dnc/temporal_linkage.h"

namespace hima {
namespace {

/** A one-hot write weighting. */
Vector
oneHot(Index n, Index where)
{
    Vector v(n);
    v[where] = 1.0;
    return v;
}

TEST(Precedence, TracksLastWrite)
{
    TemporalLinkage tl(8);
    tl.updatePrecedence(oneHot(8, 3));
    EXPECT_DOUBLE_EQ(tl.precedence()[3], 1.0);

    tl.updatePrecedence(oneHot(8, 5));
    EXPECT_DOUBLE_EQ(tl.precedence()[5], 1.0);
    EXPECT_DOUBLE_EQ(tl.precedence()[3], 0.0); // fully overwritten
}

TEST(Precedence, PartialWriteBlends)
{
    TemporalLinkage tl(4);
    Vector w(4);
    w[0] = 0.5;
    tl.updatePrecedence(w);
    EXPECT_DOUBLE_EQ(tl.precedence()[0], 0.5);
    tl.updatePrecedence(w);
    // p = (1 - 0.5) * 0.5 + 0.5 = 0.75.
    EXPECT_DOUBLE_EQ(tl.precedence()[0], 0.75);
}

TEST(Linkage, HardWritesChainInOrder)
{
    TemporalLinkage tl(8);
    // Write slots 2 -> 5 -> 1 in sequence.
    for (Index slot : {2, 5, 1}) {
        tl.updateLinkage(oneHot(8, slot));
        tl.updatePrecedence(oneHot(8, slot));
    }
    // L[to][from]: 5 follows 2, 1 follows 5.
    EXPECT_NEAR(tl.linkage()(5, 2), 1.0, 1e-12);
    EXPECT_NEAR(tl.linkage()(1, 5), 1.0, 1e-12);
    EXPECT_NEAR(tl.linkage()(2, 5), 0.0, 1e-12);
}

TEST(Linkage, DiagonalAlwaysZero)
{
    TemporalLinkage tl(16);
    Rng rng(5);
    for (int step = 0; step < 20; ++step) {
        Vector w = rng.uniformVector(16);
        w = scale(w, 1.0 / w.sum());
        tl.updateLinkage(w);
        tl.updatePrecedence(w);
    }
    for (Index i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(tl.linkage()(i, i), 0.0);
}

TEST(ForwardBackward, FollowTheChain)
{
    TemporalLinkage tl(8);
    for (Index slot : {2, 5, 1}) {
        tl.updateLinkage(oneHot(8, slot));
        tl.updatePrecedence(oneHot(8, slot));
    }
    // Reading slot 2, the forward weighting points to 5.
    const Vector f = tl.forwardWeighting(oneHot(8, 2));
    EXPECT_EQ(f.argmax(), 5u);
    // Reading slot 5, the backward weighting points to 2.
    const Vector b = tl.backwardWeighting(oneHot(8, 5));
    EXPECT_EQ(b.argmax(), 2u);
}

/**
 * Invariant from the DNC paper: rows and columns of L remain
 * sub-stochastic (sums <= 1) for simplex write weightings.
 */
class LinkageInvariant : public ::testing::TestWithParam<int>
{};

TEST_P(LinkageInvariant, RowAndColumnSumsBounded)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
    TemporalLinkage tl(24);
    for (int step = 0; step < 40; ++step) {
        Vector w = rng.uniformVector(24);
        w = scale(w, rng.uniform() / w.sum()); // sum in [0, 1)
        tl.updateLinkage(w);
        tl.updatePrecedence(w);

        const Matrix &link = tl.linkage();
        for (Index i = 0; i < 24; ++i) {
            Real rowSum = 0.0, colSum = 0.0;
            for (Index j = 0; j < 24; ++j) {
                EXPECT_GE(link(i, j), -1e-9);
                rowSum += link(i, j);
                colSum += link(j, i);
            }
            EXPECT_LE(rowSum, 1.0 + 1e-9);
            EXPECT_LE(colSum, 1.0 + 1e-9);
        }
        // Precedence stays a sub-distribution too.
        Real pSum = tl.precedence().sum();
        EXPECT_GE(pSum, -1e-9);
        EXPECT_LE(pSum, 1.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkageInvariant, ::testing::Range(0, 6));

TEST(ForwardBackward, PreservesSubDistribution)
{
    Rng rng(11);
    TemporalLinkage tl(16);
    for (int step = 0; step < 10; ++step) {
        Vector w = rng.uniformVector(16);
        w = scale(w, 1.0 / w.sum());
        tl.updateLinkage(w);
        tl.updatePrecedence(w);
    }
    Vector r = rng.uniformVector(16);
    r = scale(r, 1.0 / r.sum());
    EXPECT_LE(tl.forwardWeighting(r).sum(), 1.0 + 1e-9);
    EXPECT_LE(tl.backwardWeighting(r).sum(), 1.0 + 1e-9);
}

TEST(Linkage, ResetClearsState)
{
    TemporalLinkage tl(8);
    tl.updateLinkage(oneHot(8, 1));
    tl.updatePrecedence(oneHot(8, 1));
    tl.reset();
    EXPECT_DOUBLE_EQ(tl.precedence().sum(), 0.0);
    for (Index i = 0; i < 8; ++i)
        for (Index j = 0; j < 8; ++j)
            EXPECT_DOUBLE_EQ(tl.linkage()(i, j), 0.0);
}

TEST(Linkage, ProfilerChargesQuadraticWork)
{
    KernelProfiler prof;
    TemporalLinkage tl(32);
    tl.updateLinkage(oneHot(32, 0), &prof);
    tl.forwardWeighting(oneHot(32, 0), &prof);
    EXPECT_EQ(prof.at(Kernel::Linkage).elementOps, 4u * 32 * 32);
    EXPECT_EQ(prof.at(Kernel::ForwardBackward).macOps, 32u * 32);
    EXPECT_GT(prof.at(Kernel::Linkage).stateMemAccesses, 2u * 32 * 32);
}

/**
 * Ground-truth row activity, computed by scanning a (dense-swept)
 * reference matrix rather than trusting the sparse instance's own
 * cache: a row is swept when its absolute mass, or its current write
 * weight, exceeds the threshold.
 */
Index
referenceActiveRows(const Matrix &link, const Vector &w, Real threshold)
{
    const Index n = w.size();
    Index active = 0;
    for (Index i = 0; i < n; ++i) {
        Real mass = 0.0;
        for (Index j = 0; j < n; ++j)
            mass += std::fabs(link(i, j));
        if (mass > threshold || w[i] > threshold)
            ++active;
    }
    return active;
}

/**
 * A sparse write pattern: most steps write 1-3 slots drawn from a pool
 * that grows over time, and some steps write nothing (closed write
 * gate), so a prefix of the slots accumulates linkage mass while the
 * rest stays exactly zero.
 */
Vector
sparseWritePattern(Rng &rng, Index n, int step)
{
    Vector w(n);
    if (step % 5 == 4)
        return w; // closed write gate: no slot written
    const Index pool = std::min<Index>(n, 4 + static_cast<Index>(step));
    const Index k = 1 + rng.uniformInt(3);
    for (Index x = 0; x < k; ++x)
        w[rng.uniformInt(pool)] = rng.uniform(0.05, 0.3);
    return w;
}

/**
 * Property test for the active-row sweep: under random sparse write
 * patterns, the fused updateAndRead() and the standalone forward/
 * backward kernels at threshold 0 are bit-identical to a forced dense
 * sweep, and the profiler's skipped-row counts match the activity
 * predicted from the dense reference matrix at every step.
 */
class SparseLinkage : public ::testing::TestWithParam<int>
{};

TEST_P(SparseLinkage, BitIdenticalToDenseWithPredictedSkips)
{
    const Index n = 48;
    const Index heads = static_cast<Index>(GetParam());
    Rng rng(0xbeef + heads);

    TemporalLinkage sparse(n);           // threshold 0, skipping enabled
    TemporalLinkage dense(n, 0.0, true); // forced dense sweep
    KernelProfiler profSparse;

    std::vector<Vector> prevReads(heads), fS, bS, fD, bD;
    std::uint64_t totalSkipped = 0;
    for (int step = 0; step < 60; ++step) {
        const Vector w = sparseWritePattern(rng, n, step);
        for (auto &pr : prevReads) {
            pr = rng.uniformVector(n);
            pr = scale(pr, 1.0 / pr.sum());
        }

        // Predict this step's activity from the dense matrix *before*
        // the update (the sweep decides from pre-update mass).
        const Index active = referenceActiveRows(dense.linkage(), w, 0.0);
        const std::uint64_t linkBefore =
            profSparse.at(Kernel::Linkage).skippedRows;
        const std::uint64_t fbBefore =
            profSparse.at(Kernel::ForwardBackward).skippedRows;

        sparse.updateAndRead(w, prevReads, fS, bS, &profSparse);
        dense.updateAndRead(w, prevReads, fD, bD, nullptr);

        const std::uint64_t skipped = static_cast<std::uint64_t>(n - active);
        EXPECT_EQ(profSparse.at(Kernel::Linkage).skippedRows - linkBefore,
                  skipped);
        EXPECT_EQ(
            profSparse.at(Kernel::ForwardBackward).skippedRows - fbBefore,
            2 * static_cast<std::uint64_t>(heads) * skipped);
        totalSkipped += skipped;

        // Bit-identical state and readouts (operator== is exact).
        ASSERT_TRUE(sparse.linkage() == dense.linkage()) << "step " << step;
        for (Index h = 0; h < heads; ++h) {
            EXPECT_TRUE(fS[h] == fD[h]) << "forward head " << h;
            EXPECT_TRUE(bS[h] == bD[h]) << "backward head " << h;
        }

        // The standalone kernels skip by cached mass alone; they must
        // agree with the dense reference bit-for-bit too.
        Vector probe = rng.uniformVector(n);
        probe = scale(probe, 1.0 / probe.sum());
        Vector f1, f2, b1, b2;
        sparse.forwardWeightingInto(probe, f1);
        dense.forwardWeightingInto(probe, f2);
        sparse.backwardWeightingInto(probe, b1);
        dense.backwardWeightingInto(probe, b2);
        EXPECT_TRUE(f1 == f2);
        EXPECT_TRUE(b1 == b2);

        // The cache itself matches a fresh recompute of the matrix.
        for (Index i = 0; i < n; ++i) {
            Real mass = 0.0;
            for (Index j = 0; j < n; ++j)
                mass += std::fabs(sparse.linkage()(i, j));
            EXPECT_DOUBLE_EQ(sparse.rowMass()[i], mass);
        }

        sparse.updatePrecedence(w, &profSparse);
        dense.updatePrecedence(w);
        EXPECT_TRUE(sparse.precedence() == dense.precedence());
    }
    // The pattern must actually exercise skipping, or this test proves
    // nothing about the sparse path.
    EXPECT_GT(totalSkipped, 0u);
}

INSTANTIATE_TEST_SUITE_P(Heads, SparseLinkage, ::testing::Values(1, 2, 4));

TEST(SparseLinkage, SelfLinkOnlyRowStaysInactive)
{
    // Writing only slot 3, every step: the lone precedence support is
    // slot 3 itself, the diagonal zeroing kills the only product, and
    // row 3 stays exactly zero — written, swept, but never gaining
    // mass. The standalone read kernels may then skip all 8 rows.
    const Index n = 8;
    TemporalLinkage tl(n);
    Vector w(n);
    w[3] = 0.5;
    KernelProfiler prof;
    for (int step = 0; step < 4; ++step) {
        const std::uint64_t before = prof.at(Kernel::Linkage).skippedRows;
        tl.updateLinkage(w, &prof);
        tl.updatePrecedence(w, &prof);
        // Only row 3 is active (write weight), the other 7 skip.
        EXPECT_EQ(prof.at(Kernel::Linkage).skippedRows - before, 7u);
    }
    for (Index i = 0; i < n; ++i) {
        EXPECT_DOUBLE_EQ(tl.rowMass()[i], 0.0);
        for (Index j = 0; j < n; ++j)
            EXPECT_DOUBLE_EQ(tl.linkage()(i, j), 0.0);
    }
    EXPECT_EQ(tl.activeRowCount(), 0u);
    Vector f;
    tl.forwardWeightingInto(oneHot(n, 3), f, &prof);
    EXPECT_EQ(prof.at(Kernel::ForwardBackward).skippedRows, 8u);
    EXPECT_DOUBLE_EQ(f.sum(), 0.0);
}

TEST(SparseLinkage, ResetClearsRowMass)
{
    TemporalLinkage tl(8);
    for (Index slot : {2, 5, 1}) {
        tl.updateLinkage(oneHot(8, slot));
        tl.updatePrecedence(oneHot(8, slot));
    }
    EXPECT_GT(tl.activeRowCount(), 0u);
    tl.reset();
    EXPECT_EQ(tl.activeRowCount(), 0u);
    for (Index i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(tl.rowMass()[i], 0.0);
    // Post-reset, a zero write weighting sweeps nothing.
    KernelProfiler prof;
    tl.updateLinkage(Vector(8), &prof);
    EXPECT_EQ(prof.at(Kernel::Linkage).skippedRows, 8u);
}

/**
 * Satellite of the checkpoint/restore path: restoreState() must
 * rebuild the row-mass cache from the restored matrix so that a
 * restored instance makes bit-identical skip decisions to the
 * undisturbed one — at threshold 0 and at a paper-style positive
 * threshold.
 */
TEST(SparseLinkage, RestoreRebuildsActivityBitIdentical)
{
    const Index n = 32;
    const Index heads = 2;
    for (Real threshold : {0.0, 1e-6}) {
        Rng rng(77);
        TemporalLinkage undisturbed(n, threshold);
        TemporalLinkage victim(n, threshold);

        std::vector<Vector> prevReads(heads), fU, bU, fV, bV;
        auto stepBoth = [&](int step) {
            const Vector w = sparseWritePattern(rng, n, step);
            for (auto &pr : prevReads) {
                pr = rng.uniformVector(n);
                pr = scale(pr, 1.0 / pr.sum());
            }
            undisturbed.updateAndRead(w, prevReads, fU, bU, nullptr);
            victim.updateAndRead(w, prevReads, fV, bV, nullptr);
            undisturbed.updatePrecedence(w);
            victim.updatePrecedence(w);
        };
        for (int step = 0; step < 20; ++step)
            stepBoth(step);

        // Snapshot mid-run, then wreck the victim with unrelated
        // traffic so the restore has real work to undo.
        Vector flat(n * n), prec(n);
        std::copy(undisturbed.linkage().data(),
                  undisturbed.linkage().data() + n * n, flat.begin());
        std::copy(undisturbed.precedence().begin(),
                  undisturbed.precedence().end(), prec.begin());
        Rng wrecker(123);
        for (int step = 0; step < 5; ++step) {
            Vector w = wrecker.uniformVector(n);
            w = scale(w, 0.9 / w.sum());
            victim.updateLinkage(w);
            victim.updatePrecedence(w);
        }

        victim.restoreState(flat, prec);
        ASSERT_TRUE(victim.linkage() == undisturbed.linkage());
        ASSERT_TRUE(victim.precedence() == undisturbed.precedence());
        // The rebuilt cache is bit-identical to the incrementally
        // maintained one (same values, same summation order).
        ASSERT_TRUE(victim.rowMass() == undisturbed.rowMass());

        // And the continuation diverges nowhere: same sweeps, same
        // skips, same bits.
        for (int step = 20; step < 40; ++step) {
            stepBoth(step);
            ASSERT_TRUE(victim.linkage() == undisturbed.linkage())
                << "threshold " << threshold << " step " << step;
            ASSERT_TRUE(victim.rowMass() == undisturbed.rowMass());
            for (Index h = 0; h < heads; ++h) {
                EXPECT_TRUE(fV[h] == fU[h]);
                EXPECT_TRUE(bV[h] == bU[h]);
            }
        }
    }
}

} // namespace
} // namespace hima
