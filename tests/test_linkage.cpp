/**
 * @file
 * Tests for the temporal linkage state (HR.(1)-(3)): linkage matrix,
 * precedence, forward/backward weightings, and their invariants.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "dnc/temporal_linkage.h"

namespace hima {
namespace {

/** A one-hot write weighting. */
Vector
oneHot(Index n, Index where)
{
    Vector v(n);
    v[where] = 1.0;
    return v;
}

TEST(Precedence, TracksLastWrite)
{
    TemporalLinkage tl(8);
    tl.updatePrecedence(oneHot(8, 3));
    EXPECT_DOUBLE_EQ(tl.precedence()[3], 1.0);

    tl.updatePrecedence(oneHot(8, 5));
    EXPECT_DOUBLE_EQ(tl.precedence()[5], 1.0);
    EXPECT_DOUBLE_EQ(tl.precedence()[3], 0.0); // fully overwritten
}

TEST(Precedence, PartialWriteBlends)
{
    TemporalLinkage tl(4);
    Vector w(4);
    w[0] = 0.5;
    tl.updatePrecedence(w);
    EXPECT_DOUBLE_EQ(tl.precedence()[0], 0.5);
    tl.updatePrecedence(w);
    // p = (1 - 0.5) * 0.5 + 0.5 = 0.75.
    EXPECT_DOUBLE_EQ(tl.precedence()[0], 0.75);
}

TEST(Linkage, HardWritesChainInOrder)
{
    TemporalLinkage tl(8);
    // Write slots 2 -> 5 -> 1 in sequence.
    for (Index slot : {2, 5, 1}) {
        tl.updateLinkage(oneHot(8, slot));
        tl.updatePrecedence(oneHot(8, slot));
    }
    // L[to][from]: 5 follows 2, 1 follows 5.
    EXPECT_NEAR(tl.linkage()(5, 2), 1.0, 1e-12);
    EXPECT_NEAR(tl.linkage()(1, 5), 1.0, 1e-12);
    EXPECT_NEAR(tl.linkage()(2, 5), 0.0, 1e-12);
}

TEST(Linkage, DiagonalAlwaysZero)
{
    TemporalLinkage tl(16);
    Rng rng(5);
    for (int step = 0; step < 20; ++step) {
        Vector w = rng.uniformVector(16);
        w = scale(w, 1.0 / w.sum());
        tl.updateLinkage(w);
        tl.updatePrecedence(w);
    }
    for (Index i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(tl.linkage()(i, i), 0.0);
}

TEST(ForwardBackward, FollowTheChain)
{
    TemporalLinkage tl(8);
    for (Index slot : {2, 5, 1}) {
        tl.updateLinkage(oneHot(8, slot));
        tl.updatePrecedence(oneHot(8, slot));
    }
    // Reading slot 2, the forward weighting points to 5.
    const Vector f = tl.forwardWeighting(oneHot(8, 2));
    EXPECT_EQ(f.argmax(), 5u);
    // Reading slot 5, the backward weighting points to 2.
    const Vector b = tl.backwardWeighting(oneHot(8, 5));
    EXPECT_EQ(b.argmax(), 2u);
}

/**
 * Invariant from the DNC paper: rows and columns of L remain
 * sub-stochastic (sums <= 1) for simplex write weightings.
 */
class LinkageInvariant : public ::testing::TestWithParam<int>
{};

TEST_P(LinkageInvariant, RowAndColumnSumsBounded)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
    TemporalLinkage tl(24);
    for (int step = 0; step < 40; ++step) {
        Vector w = rng.uniformVector(24);
        w = scale(w, rng.uniform() / w.sum()); // sum in [0, 1)
        tl.updateLinkage(w);
        tl.updatePrecedence(w);

        const Matrix &link = tl.linkage();
        for (Index i = 0; i < 24; ++i) {
            Real rowSum = 0.0, colSum = 0.0;
            for (Index j = 0; j < 24; ++j) {
                EXPECT_GE(link(i, j), -1e-9);
                rowSum += link(i, j);
                colSum += link(j, i);
            }
            EXPECT_LE(rowSum, 1.0 + 1e-9);
            EXPECT_LE(colSum, 1.0 + 1e-9);
        }
        // Precedence stays a sub-distribution too.
        Real pSum = tl.precedence().sum();
        EXPECT_GE(pSum, -1e-9);
        EXPECT_LE(pSum, 1.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkageInvariant, ::testing::Range(0, 6));

TEST(ForwardBackward, PreservesSubDistribution)
{
    Rng rng(11);
    TemporalLinkage tl(16);
    for (int step = 0; step < 10; ++step) {
        Vector w = rng.uniformVector(16);
        w = scale(w, 1.0 / w.sum());
        tl.updateLinkage(w);
        tl.updatePrecedence(w);
    }
    Vector r = rng.uniformVector(16);
    r = scale(r, 1.0 / r.sum());
    EXPECT_LE(tl.forwardWeighting(r).sum(), 1.0 + 1e-9);
    EXPECT_LE(tl.backwardWeighting(r).sum(), 1.0 + 1e-9);
}

TEST(Linkage, ResetClearsState)
{
    TemporalLinkage tl(8);
    tl.updateLinkage(oneHot(8, 1));
    tl.updatePrecedence(oneHot(8, 1));
    tl.reset();
    EXPECT_DOUBLE_EQ(tl.precedence().sum(), 0.0);
    for (Index i = 0; i < 8; ++i)
        for (Index j = 0; j < 8; ++j)
            EXPECT_DOUBLE_EQ(tl.linkage()(i, j), 0.0);
}

TEST(Linkage, ProfilerChargesQuadraticWork)
{
    KernelProfiler prof;
    TemporalLinkage tl(32);
    tl.updateLinkage(oneHot(32, 0), &prof);
    tl.forwardWeighting(oneHot(32, 0), &prof);
    EXPECT_EQ(prof.at(Kernel::Linkage).elementOps, 4u * 32 * 32);
    EXPECT_EQ(prof.at(Kernel::ForwardBackward).macOps, 32u * 32);
    EXPECT_GT(prof.at(Kernel::Linkage).stateMemAccesses, 2u * 32 * 32);
}

} // namespace
} // namespace hima
