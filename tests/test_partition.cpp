/**
 * @file
 * Tests for the submatrix partition math (Eqs. 1-3) and the optimizers.
 */

#include <gtest/gtest.h>

#include "arch/partition.h"

namespace hima {
namespace {

TEST(Partition, EnumerationCoversDivisorPairs)
{
    const auto parts = enumeratePartitions(16);
    // 16 = 1x16, 2x8, 4x4, 8x2, 16x1 -> 5 pairs.
    EXPECT_EQ(parts.size(), 5u);
    for (const Partition &p : parts)
        EXPECT_EQ(p.tiles(), 16u);

    EXPECT_EQ(enumeratePartitions(1).size(), 1u);
    EXPECT_EQ(enumeratePartitions(7).size(), 2u); // 1x7, 7x1
}

TEST(Partition, ContentTrafficExtremes)
{
    const Index n = 1024;
    // Row-wise: 2(Nt - 1) transfers only (Fig. 6(a)).
    EXPECT_EQ(contentWeightingTraffic(n, Partition::rowWise(16)),
              2u * 15);
    // Column-wise: 2N(Nt - 1).
    EXPECT_EQ(contentWeightingTraffic(n, Partition::colWise(16)),
              2u * 1024 * 15);
    // Submatrix 4x4: 2N*3 + 2*3.
    EXPECT_EQ(contentWeightingTraffic(n, {4, 4}), 2u * 1024 * 3 + 6);
}

TEST(Partition, MemoryReadTrafficExtremes)
{
    const Index n = 1024, w = 64;
    // Row-wise: psums only, W(Nt - 1) (Fig. 6(b)).
    EXPECT_EQ(memoryReadTraffic(n, w, Partition::rowWise(16)), 64u * 15);
    // Column-wise: matrix elements, Nt_w(Nt_w-1) N/Nt = 16*15*64.
    EXPECT_EQ(memoryReadTraffic(n, w, Partition::colWise(16)),
              16u * 15 * 64);
}

TEST(Partition, RowWiseOptimalForExternalMemory)
{
    // Sec. 4.2.1's conclusion: N >> Nt makes row-wise optimal.
    for (Index nt : {4u, 16u, 32u, 64u}) {
        const Partition best = optimizeExternalPartition(1024, 64, nt);
        EXPECT_EQ(best.blockCols, 1u) << "Nt = " << nt;
        EXPECT_EQ(best.blockRows, nt);
    }
}

TEST(Partition, LinkageOptimumIsBalancedSubmatrix)
{
    // Sec. 4.2.2: at Nt = 16 the linkage optimum is 4 x 4.
    const Partition best = optimizeLinkagePartition(1024, 16);
    EXPECT_EQ(best.blockRows, 4u);
    EXPECT_EQ(best.blockCols, 4u);

    // At Nt = 64 the optimum is 8 x 8.
    const Partition best64 = optimizeLinkagePartition(1024, 64);
    EXPECT_EQ(best64.blockRows, 8u);
    EXPECT_EQ(best64.blockCols, 8u);
}

TEST(Partition, LinkageCostUShape)
{
    // Fig. 6(d): both extremes are suboptimal, the minimum is interior.
    const Real rowWise = forwardBackwardTraffic(1024,
                                                Partition::rowWise(16));
    const Real colWise = forwardBackwardTraffic(1024,
                                                Partition::colWise(16));
    const Real balanced = forwardBackwardTraffic(1024, {4, 4});
    EXPECT_LT(balanced, rowWise);
    EXPECT_LT(balanced, colWise);
    // Symmetric formula: row-wise and column-wise cost the same.
    EXPECT_DOUBLE_EQ(rowWise, colWise);
}

class TrafficMonotonicity : public ::testing::TestWithParam<int>
{};

TEST_P(TrafficMonotonicity, ContentTrafficIncreasesWithBlockCols)
{
    const Index nt = static_cast<Index>(GetParam());
    std::uint64_t prev = 0;
    bool first = true;
    for (const Partition &p : enumeratePartitions(nt)) {
        // enumeratePartitions yields ascending blockCols.
        const std::uint64_t cost = contentWeightingTraffic(1024, p);
        if (!first)
            EXPECT_GE(cost, prev);
        prev = cost;
        first = false;
    }
}

INSTANTIATE_TEST_SUITE_P(TileCounts, TrafficMonotonicity,
                         ::testing::Values(4, 16, 32, 64));

TEST(Partition, HelperConstructors)
{
    EXPECT_EQ(Partition::rowWise(8), (Partition{8, 1}));
    EXPECT_EQ(Partition::colWise(8), (Partition{1, 8}));
    EXPECT_EQ((Partition{2, 4}).tiles(), 8u);
}

} // namespace
} // namespace hima
