/**
 * @file
 * Tests for the NTM memory unit (the MANNA baseline's model).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.h"
#include "dnc/ntm.h"

namespace hima {
namespace {

DncConfig
tinyConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 16;
    cfg.memoryWidth = 8;
    cfg.readHeads = 1;
    return cfg;
}

NtmHeadInput
contentHead(const Vector &key, Real strength = 10.0)
{
    NtmHeadInput head;
    head.key = key;
    head.strength = strength;
    head.gate = 1.0;               // pure content addressing
    head.shift = {0.0, 1.0, 0.0};  // no shift
    head.gamma = 1.0;              // no sharpening
    return head;
}

TEST(Ntm, WriteThenReadRoundTrip)
{
    const DncConfig cfg = tinyConfig();
    NtmMemoryUnit ntm(cfg);
    Rng rng(1);

    Vector pattern = rng.normalVector(cfg.memoryWidth);
    NtmInterface wr;
    wr.readHeads = {contentHead(Vector(cfg.memoryWidth))};
    wr.writeHead = contentHead(pattern);
    wr.eraseVector = Vector(cfg.memoryWidth, 1.0);
    wr.addVector = pattern;
    ntm.step(wr);

    NtmInterface rd = wr;
    rd.eraseVector = Vector(cfg.memoryWidth, 0.0);
    rd.addVector = Vector(cfg.memoryWidth);
    rd.readHeads = {contentHead(pattern)};
    const auto reads = ntm.step(rd);
    ASSERT_EQ(reads.size(), 1u);
    EXPECT_GT(cosineSimilarity(reads[0], pattern), 0.5);
}

TEST(Ntm, ShiftRotatesWeighting)
{
    const DncConfig cfg = tinyConfig();
    NtmMemoryUnit ntm(cfg);
    Rng rng(2);

    // Seed distinct memory rows so content addressing can lock onto one
    // slot, then shift +1 with the interpolation gate closed.
    const Matrix contents = rng.normalMatrix(cfg.memoryRows,
                                             cfg.memoryWidth);
    ntm.seedMemory(contents);
    const Index target = 5;

    NtmInterface locate;
    locate.readHeads = {contentHead(contents.row(target), 30.0)};
    locate.writeHead = contentHead(Vector(cfg.memoryWidth));
    locate.eraseVector = Vector(cfg.memoryWidth, 0.0);
    locate.addVector = Vector(cfg.memoryWidth);
    ntm.step(locate);
    ASSERT_EQ(ntm.readWeightings()[0].argmax(), target);

    NtmInterface shift = locate;
    shift.readHeads[0].gate = 0.0;               // keep previous weighting
    shift.readHeads[0].shift = {0.0, 0.0, 1.0};  // move +1
    shift.readHeads[0].gamma = 2.0;
    ntm.step(shift);
    EXPECT_EQ(ntm.readWeightings()[0].argmax(),
              (target + 1) % cfg.memoryRows);
}

TEST(Ntm, WeightingsStayOnSimplex)
{
    const DncConfig cfg = tinyConfig();
    NtmMemoryUnit ntm(cfg);
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        NtmInterface iface;
        NtmHeadInput head = contentHead(rng.normalVector(cfg.memoryWidth),
                                        1.0 + rng.uniform() * 5.0);
        head.gate = rng.uniform();
        Vector s = rng.uniformVector(3);
        head.shift = scale(s, 1.0 / s.sum());
        head.gamma = 1.0 + rng.uniform() * 3.0;
        iface.readHeads = {head};
        iface.writeHead = head;
        iface.eraseVector = rng.uniformVector(cfg.memoryWidth);
        iface.addVector = rng.normalVector(cfg.memoryWidth);
        ntm.step(iface);

        Real sum = 0.0;
        for (Index k = 0; k < cfg.memoryRows; ++k) {
            EXPECT_GE(ntm.readWeightings()[0][k], 0.0);
            sum += ntm.readWeightings()[0][k];
        }
        EXPECT_NEAR(sum, 1.0, 1e-6);
    }
}

TEST(Ntm, NoHistoryKernelsCharged)
{
    // The defining difference from DNC: no usage sort, no linkage, no
    // allocation — only access kernels (Table 1's point).
    const DncConfig cfg = tinyConfig();
    NtmMemoryUnit ntm(cfg);
    Rng rng(4);
    NtmInterface iface;
    iface.readHeads = {contentHead(rng.normalVector(cfg.memoryWidth))};
    iface.writeHead = contentHead(rng.normalVector(cfg.memoryWidth));
    iface.eraseVector = Vector(cfg.memoryWidth, 0.5);
    iface.addVector = rng.normalVector(cfg.memoryWidth);
    ntm.step(iface);

    EXPECT_EQ(ntm.profiler().at(Kernel::UsageSort).invocations, 0u);
    EXPECT_EQ(ntm.profiler().at(Kernel::Linkage).invocations, 0u);
    EXPECT_EQ(ntm.profiler().at(Kernel::Allocation).invocations, 0u);
    EXPECT_EQ(ntm.profiler().at(Kernel::ForwardBackward).invocations, 0u);
    EXPECT_GT(ntm.profiler().at(Kernel::Normalize).invocations, 0u);
    EXPECT_GT(ntm.profiler().at(Kernel::MemoryWrite).invocations, 0u);
}

TEST(Ntm, ResetClearsMemory)
{
    const DncConfig cfg = tinyConfig();
    NtmMemoryUnit ntm(cfg);
    Rng rng(5);
    NtmInterface iface;
    iface.readHeads = {contentHead(rng.normalVector(cfg.memoryWidth))};
    iface.writeHead = contentHead(rng.normalVector(cfg.memoryWidth));
    iface.eraseVector = Vector(cfg.memoryWidth, 0.0);
    iface.addVector = rng.normalVector(cfg.memoryWidth);
    ntm.step(iface);
    ntm.reset();
    Real sum = 0.0;
    for (Index i = 0; i < ntm.memory().size(); ++i)
        sum += std::fabs(ntm.memory().data()[i]);
    EXPECT_EQ(sum, 0.0);
}

} // namespace
} // namespace hima
