/**
 * @file
 * Arrival-process generator tests: traces must be deterministic given
 * the seed, hit their configured rates, draw episodes from the task
 * suite, and regenerate any single request's token stream independently
 * of its position in the trace (the property the router golden harness
 * leans on).
 */

#include <gtest/gtest.h>

#include "workload/arrival.h"

namespace hima {
namespace {

TEST(Arrival, TraceIsDeterministic)
{
    ArrivalSpec spec;
    spec.rate = 0.5;
    Rng a(11), b(11);
    const auto ta = makeArrivalTrace(spec, 200, a);
    const auto tb = makeArrivalTrace(spec, 200, b);
    ASSERT_EQ(ta.size(), tb.size());
    ASSERT_FALSE(ta.empty());
    for (Index i = 0; i < ta.size(); ++i) {
        EXPECT_EQ(ta[i].step, tb[i].step);
        EXPECT_EQ(ta[i].ordinal, tb[i].ordinal);
        EXPECT_EQ(ta[i].taskId, tb[i].taskId);
        EXPECT_EQ(ta[i].episodeLen, tb[i].episodeLen);
    }
}

TEST(Arrival, PoissonRateIsApproximatelyHonored)
{
    ArrivalSpec spec;
    spec.rate = 0.5;
    Rng rng(13);
    const Index horizon = 4000;
    const auto trace = makeArrivalTrace(spec, horizon, rng);
    const Real empirical =
        static_cast<Real>(trace.size()) / static_cast<Real>(horizon);
    EXPECT_NEAR(empirical, spec.rate, 0.05);
    // Sorted by step, ordinals sequential, steps within horizon.
    for (Index i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(trace[i].ordinal, i);
        EXPECT_LT(trace[i].step, horizon);
        if (i > 0)
            EXPECT_GE(trace[i].step, trace[i - 1].step);
    }
}

TEST(Arrival, BurstyTraceClustersArrivals)
{
    ArrivalSpec spec;
    spec.kind = ArrivalKind::Bursty;
    spec.rate = 0.0; // bursts only
    spec.burstProbability = 0.05;
    spec.burstSize = 6;
    Rng rng(17);
    const auto trace = makeArrivalTrace(spec, 1000, rng);
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.size() % spec.burstSize, 0u)
        << "pure-burst trace must arrive in whole bursts";
    // Every burst lands on one step.
    for (Index i = 0; i < trace.size(); ++i)
        EXPECT_EQ(trace[i].step, trace[i - i % spec.burstSize].step);
}

TEST(Arrival, EpisodeLengthsComeFromTheTaskSuite)
{
    const auto suite = taskSuite();
    std::vector<bool> seen(suite.size() + 1, false);
    ArrivalSpec spec;
    spec.rate = 1.0;
    Rng rng(19);
    const auto trace = makeArrivalTrace(spec, 500, rng);
    for (const ArrivalEvent &event : trace) {
        ASSERT_GE(event.taskId, 1u);
        ASSERT_LE(event.taskId, suite.size());
        EXPECT_EQ(event.episodeLen, episodeSteps(suite[event.taskId - 1]))
            << "event length must match its archetype";
        seen[event.taskId] = true;
    }
    // A 500-step rate-1 trace should draw nearly every archetype.
    Index distinct = 0;
    for (Index id = 1; id <= suite.size(); ++id)
        distinct += seen[id] ? 1 : 0;
    EXPECT_GE(distinct, suite.size() - 2);
}

TEST(Arrival, EpisodeStepsCountsTheScriptedEpisode)
{
    // episodeSteps() must equal the step count makeEpisode() scripts.
    Rng rng(23);
    for (const TaskSpec &spec : taskSuite()) {
        const Episode ep = makeEpisode(spec, 256, rng);
        EXPECT_EQ(episodeSteps(spec), ep.steps.size())
            << "task " << spec.id << " (" << spec.name << ")";
    }

    // Including the one-item fallback, where makeEpisode() scripts
    // content questions instead of 2-step temporal hops.
    TaskSpec tiny;
    tiny.id = 99;
    tiny.name = "tiny-temporal";
    tiny.items = 1;
    tiny.queries = 4;
    tiny.temporalFraction = 0.5;
    tiny.distractors = 0;
    const Episode ep = makeEpisode(tiny, 16, rng);
    EXPECT_EQ(episodeSteps(tiny), ep.steps.size());
}

TEST(Arrival, RequestTokensAreSelfContained)
{
    ArrivalSpec spec;
    spec.rate = 0.8;
    Rng rng(29);
    const auto trace = makeArrivalTrace(spec, 50, rng);
    ASSERT_GE(trace.size(), 3u);

    // Regenerating a mid-trace event's tokens must not depend on any
    // other event — only on the event fields and the seed.
    const ArrivalEvent copy = trace[2];
    const auto direct = requestTokens(trace[2], 16, 99);
    const auto replay = requestTokens(copy, 16, 99);
    ASSERT_EQ(direct.size(), replay.size());
    ASSERT_EQ(direct.size(), trace[2].episodeLen);
    for (Index t = 0; t < direct.size(); ++t)
        EXPECT_TRUE(direct[t] == replay[t]);

    // Distinct events get distinct streams.
    const auto other = requestTokens(trace[1], 16, 99);
    EXPECT_FALSE(direct[0] == other[0]);

    EXPECT_EQ(offeredLaneSteps(trace) > 0, true);
}

} // namespace
} // namespace hima
