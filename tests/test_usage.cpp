/**
 * @file
 * Tests for the retention and usage kernels (HW.(1)-(2)).
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "dnc/usage.h"

namespace hima {
namespace {

TEST(Retention, NoFreeGatesMeansFullRetention)
{
    std::vector<Real> gates{0.0, 0.0};
    std::vector<Vector> reads{Vector(8, 0.2), Vector(8, 0.3)};
    const Vector psi = retentionVector(gates, reads);
    for (Index i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(psi[i], 1.0);
}

TEST(Retention, FullFreeGateReleasesReadSlots)
{
    std::vector<Real> gates{1.0};
    Vector rw(8);
    rw[3] = 1.0; // head read slot 3 exclusively
    const Vector psi = retentionVector(gates, {rw});
    EXPECT_DOUBLE_EQ(psi[3], 0.0);
    for (Index i = 0; i < 8; ++i) {
        if (i != 3)
            EXPECT_DOUBLE_EQ(psi[i], 1.0);
    }
}

TEST(Retention, MultiHeadProduct)
{
    std::vector<Real> gates{0.5, 0.5};
    std::vector<Vector> reads{Vector(4, 0.4), Vector(4, 0.4)};
    const Vector psi = retentionVector(gates, reads);
    // (1 - 0.5*0.4)^2 = 0.64 per slot.
    for (Index i = 0; i < 4; ++i)
        EXPECT_NEAR(psi[i], 0.64, 1e-12);
}

TEST(Usage, WriteRaisesUsage)
{
    Vector u(8, 0.0);
    Vector w(8);
    w[2] = 0.8;
    const Vector out = updateUsage(u, w, Vector(8, 1.0));
    EXPECT_NEAR(out[2], 0.8, 1e-12);
    EXPECT_EQ(out[0], 0.0);
}

TEST(Usage, RetentionScalesDown)
{
    Vector u(4, 0.6);
    Vector psi(4, 0.5);
    const Vector out = updateUsage(u, Vector(4, 0.0), psi);
    for (Index i = 0; i < 4; ++i)
        EXPECT_NEAR(out[i], 0.3, 1e-12);
}

/** Invariant: usage stays in [0, 1] for in-range inputs. */
class UsageInvariant : public ::testing::TestWithParam<int>
{};

TEST_P(UsageInvariant, StaysInUnitInterval)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    Vector u = rng.uniformVector(32);
    for (int step = 0; step < 50; ++step) {
        Vector w = rng.uniformVector(32, 0.0, 1.0);
        // Write weightings sum to <= 1: normalize.
        const Real s = w.sum();
        if (s > 1.0)
            w = scale(w, 1.0 / s);
        std::vector<Real> gates{rng.uniform(), rng.uniform()};
        Vector r1 = rng.uniformVector(32);
        Vector r2 = rng.uniformVector(32);
        const Real s1 = r1.sum(), s2 = r2.sum();
        if (s1 > 1.0)
            r1 = scale(r1, 1.0 / s1);
        if (s2 > 1.0)
            r2 = scale(r2, 1.0 / s2);
        const Vector psi = retentionVector(gates, {r1, r2});
        u = updateUsage(u, w, psi);
        for (Index i = 0; i < u.size(); ++i) {
            EXPECT_GE(u[i], 0.0);
            EXPECT_LE(u[i], 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UsageInvariant, ::testing::Range(0, 10));

TEST(Usage, ProfilerCounts)
{
    KernelProfiler prof;
    Vector u(16, 0.5);
    retentionVector({0.5}, {Vector(16, 0.1)}, &prof);
    updateUsage(u, Vector(16, 0.1), Vector(16, 0.9), &prof);
    EXPECT_EQ(prof.at(Kernel::Retention).invocations, 1u);
    EXPECT_EQ(prof.at(Kernel::Usage).elementOps, 4u * 16);
    EXPECT_GT(prof.at(Kernel::Retention).stateMemAccesses, 0u);
}

TEST(Usage, ShapeMismatchDies)
{
    EXPECT_DEATH(updateUsage(Vector(4), Vector(5), Vector(4)), "mismatch");
    EXPECT_DEATH(retentionVector({0.5, 0.5}, {Vector(4)}), "free gates");
}

} // namespace
} // namespace hima
