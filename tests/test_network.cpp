/**
 * @file
 * Tests for the cycle-level NoC contention simulator and the traffic
 * generators.
 */

#include <gtest/gtest.h>

#include "noc/traffic.h"

namespace hima {
namespace {

TEST(Network, SingleMessageLatency)
{
    const Topology topo = Topology::build(NocKind::Star, 4);
    Network net(topo);
    // 1 hop, 8 flits: head advances 1 cycle, tail 7 behind + ejection.
    const NodeId pt = topo.processingNodes()[0];
    TrafficResult res =
        net.run({{topo.controllerNode(), pt, 8, 0, {}}}, NocMode::Full);
    ASSERT_EQ(res.deliveries.size(), 1u);
    EXPECT_EQ(res.deliveries[0].injected, 0u);
    // head: 1 cycle for the hop; tail arrives 8 flits later.
    EXPECT_EQ(res.makespan, 8u);
    EXPECT_EQ(res.flitHops, 8u);
}

TEST(Network, LocalDeliveryIsFree)
{
    const Topology topo = Topology::build(NocKind::Mesh, 4);
    Network net(topo);
    const NodeId pt = topo.processingNodes()[0];
    TrafficResult res = net.run({{pt, pt, 100, 5, {}}}, NocMode::Full);
    EXPECT_EQ(res.deliveries[0].delivered, 5u);
    EXPECT_EQ(res.flitHops, 0u);
}

TEST(Network, InjectionPortSerializesBroadcast)
{
    // A star hub must serialize its broadcast on the injection port:
    // makespan grows linearly with fan-out.
    const Topology topo = Topology::build(NocKind::Star, 8);
    Network net(topo);
    TrafficResult res = net.run(broadcast(topo, 16), NocMode::Full);
    // 8 messages x 16 flits through one injection port >= 128 cycles.
    EXPECT_GE(res.makespan, 128u);
}

TEST(Network, GatherSerializesAtEjection)
{
    const Topology topo = Topology::build(NocKind::Star, 8);
    Network net(topo);
    TrafficResult res = net.run(gather(topo, 16), NocMode::Full);
    EXPECT_GE(res.makespan, 128u); // CT ejection port bottleneck
}

TEST(Network, DependenciesForceSequencing)
{
    const Topology topo = Topology::build(NocKind::Ring, 6);
    Network net(topo);
    const auto chain = ringAccumulate(topo, 4);
    TrafficResult res = net.run(chain, NocMode::Full);
    // Each hop in the dependent chain starts only after its predecessor
    // delivered: makespan >= 5 links x ~5 cycles.
    for (Index i = 1; i < chain.size(); ++i) {
        EXPECT_GE(res.deliveries[i].injected,
                  res.deliveries[i - 1].delivered);
    }
    EXPECT_GE(res.makespan, 5u * 4);
}

TEST(Network, GatherBroadcastOrdersPhases)
{
    const Topology topo = Topology::build(NocKind::Hima, 8);
    Network net(topo);
    const auto batch = gatherBroadcast(topo, 4, 4);
    TrafficResult res = net.run(batch, NocMode::Full);
    // Every broadcast message injects after every gather delivered.
    Cycle lastGather = 0;
    for (Index i = 0; i < 8; ++i)
        lastGather = std::max(lastGather, res.deliveries[i].delivered);
    for (Index i = 8; i < batch.size(); ++i)
        EXPECT_GE(res.deliveries[i].injected, lastGather);
}

TEST(Network, DependencyCycleDies)
{
    const Topology topo = Topology::build(NocKind::Mesh, 4);
    Network net(topo);
    std::vector<Message> bad(2);
    const auto &pts = topo.processingNodes();
    bad[0] = {pts[0], pts[1], 1, 0, {1}};
    bad[1] = {pts[1], pts[2], 1, 0, {0}};
    EXPECT_DEATH(net.run(bad, NocMode::Full), "dependency cycle");
}

TEST(Network, HTreeRootCongestsUnderAllToAll)
{
    // The Fig. 5 premise: all-to-all traffic saturates the H-tree root
    // while the HiMA mesh+diagonal spreads it.
    const Index tiles = 16;
    const std::uint64_t flits = 8;

    const Topology ht = Topology::build(NocKind::HTree, tiles);
    const Topology hm = Topology::build(NocKind::Hima, tiles);
    Network netHt(ht), netHm(hm);
    const auto batchHt = allToAll(ht, flits);
    const auto batchHm = allToAll(hm, flits);
    const Cycle mkHt = netHt.run(batchHt, NocMode::Full).makespan;
    const Cycle mkHm = netHm.run(batchHm, NocMode::Full).makespan;
    EXPECT_GT(mkHt, mkHm)
        << "H-tree should congest more than HiMA on all-to-all";
}

TEST(Network, StatsAccumulate)
{
    const Topology topo = Topology::build(NocKind::Mesh, 4);
    Network net(topo);
    net.run(broadcast(topo, 2), NocMode::Full);
    net.run(gather(topo, 2), NocMode::Full);
    EXPECT_EQ(net.stats().get("noc.batches"), 2u);
    EXPECT_EQ(net.stats().get("noc.messages"), 8u);
    EXPECT_GT(net.stats().get("noc.flit_hops"), 0u);
    net.clearStats();
    EXPECT_EQ(net.stats().get("noc.batches"), 0u);
}

TEST(Traffic, GeneratorShapes)
{
    const Topology topo = Topology::build(NocKind::Hima, 9);
    EXPECT_EQ(broadcast(topo, 1).size(), 9u);
    EXPECT_EQ(gather(topo, 1).size(), 9u);
    EXPECT_EQ(gatherBroadcast(topo, 1, 1).size(), 18u);
    EXPECT_EQ(ringAccumulate(topo, 1).size(), 8u);
    EXPECT_EQ(allToAll(topo, 1).size(), 9u * 8);
    // 9 tiles -> 3x3 logical grid -> 6 off-diagonal transpose pairs.
    EXPECT_EQ(transposePairs(topo, 1).size(), 6u);
}

TEST(Traffic, TransposePairsAreSymmetric)
{
    const Topology topo = Topology::build(NocKind::Hima, 16);
    const auto batch = transposePairs(topo, 4);
    // For every (a -> b) there is a (b -> a).
    for (const Message &m : batch) {
        bool found = false;
        for (const Message &n : batch)
            if (n.src == m.dst && n.dst == m.src)
                found = true;
        EXPECT_TRUE(found);
    }
}

} // namespace
} // namespace hima
