/**
 * @file
 * Tests for the ASCII table/report printer.
 */

#include <gtest/gtest.h>

#include "common/table.h"

namespace hima {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"long-name-here", "23456"});
    const std::string out = t.toString();

    // Header and both rows present.
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name-here"), std::string::npos);

    // Every rendered line has identical width.
    std::size_t width = std::string::npos;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t eol = out.find('\n', pos);
        const std::size_t len = eol - pos;
        if (width == std::string::npos)
            width = len;
        EXPECT_EQ(len, width);
        pos = eol + 1;
    }
}

TEST(Table, RuleSeparatesSections)
{
    Table t({"a"});
    t.addRow({"1"});
    t.addRule();
    t.addRow({"2"});
    const std::string out = t.toString();
    // 4 rules: top, under header, the explicit one, bottom.
    std::size_t rules = 0, pos = 0;
    while ((pos = out.find("+-", pos)) != std::string::npos) {
        ++rules;
        pos = out.find('\n', pos);
    }
    EXPECT_EQ(rules, 4u);
    EXPECT_EQ(t.rowCount(), 3u); // rule stored as sentinel row
}

TEST(Formatters, Real)
{
    EXPECT_EQ(fmtReal(3.14159, 2), "3.14");
    EXPECT_EQ(fmtReal(2.0, 0), "2");
    EXPECT_EQ(fmtReal(-0.5, 1), "-0.5");
}

TEST(Formatters, RatioAndPercent)
{
    EXPECT_EQ(fmtRatio(6.47), "6.47x");
    EXPECT_EQ(fmtPercent(0.725), "72.5%");
    EXPECT_EQ(fmtPercent(1.0, 0), "100%");
}

TEST(Formatters, CountSeparators)
{
    EXPECT_EQ(fmtCount(0), "0");
    EXPECT_EQ(fmtCount(999), "999");
    EXPECT_EQ(fmtCount(1000), "1,000");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
}

} // namespace
} // namespace hima
