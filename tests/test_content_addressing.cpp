/**
 * @file
 * Tests for content-based addressing (CW/CR kernels).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.h"
#include "dnc/content_addressing.h"

namespace hima {
namespace {

TEST(ContentAddressing, WeightingIsDistribution)
{
    Rng rng(1);
    ContentAddressing ca;
    const Matrix mem = rng.normalMatrix(16, 8);
    const Vector key = rng.normalVector(8);
    const Vector w = ca.weighting(mem, key, 2.0);
    ASSERT_EQ(w.size(), 16u);
    Real sum = 0.0;
    for (Index i = 0; i < w.size(); ++i) {
        EXPECT_GT(w[i], 0.0);
        sum += w[i];
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ContentAddressing, ExactMatchWins)
{
    Rng rng(2);
    Matrix mem = rng.normalMatrix(32, 8);
    const Vector key = mem.row(13);
    ContentAddressing ca;
    const Vector w = ca.weighting(mem, key, 10.0);
    EXPECT_EQ(w.argmax(), 13u);
    EXPECT_GT(w[13], 0.5);
}

TEST(ContentAddressing, StrengthSharpens)
{
    Rng rng(3);
    Matrix mem = rng.normalMatrix(32, 8);
    const Vector key = mem.row(5);
    ContentAddressing ca;
    const Vector soft = ca.weighting(mem, key, 1.0);
    const Vector sharp = ca.weighting(mem, key, 20.0);
    EXPECT_GT(sharp[5], soft[5]);
}

TEST(ContentAddressing, ScaleInvarianceOfCosine)
{
    // Cosine similarity ignores row magnitude: scaling a row must not
    // change the weighting materially.
    Rng rng(4);
    Matrix mem = rng.normalMatrix(8, 8);
    const Vector key = rng.normalVector(8);
    ContentAddressing ca;
    const Vector before = ca.weighting(mem, key, 3.0);
    mem.setRow(2, scale(mem.row(2), 7.0));
    const Vector after = ca.weighting(mem, key, 3.0);
    for (Index i = 0; i < 8; ++i)
        EXPECT_NEAR(before[i], after[i], 1e-4);
}

TEST(ContentAddressing, ZeroMemoryDoesNotCrash)
{
    const Matrix mem(8, 4); // all zeros: epsilon guard path
    ContentAddressing ca;
    const Vector w = ca.weighting(mem, Vector(4, 1.0), 1.0);
    EXPECT_NEAR(w.sum(), 1.0, 1e-9);
    // Uniform: no row is preferable.
    for (Index i = 0; i < 8; ++i)
        EXPECT_NEAR(w[i], 1.0 / 8.0, 1e-9);
}

TEST(ContentAddressing, ProfilerChargesKernels)
{
    Rng rng(5);
    const Matrix mem = rng.normalMatrix(16, 8);
    const Vector key = rng.normalVector(8);
    ContentAddressing ca;
    KernelProfiler prof;
    ca.weighting(mem, key, 2.0, &prof);

    const auto &norm = prof.at(Kernel::Normalize);
    EXPECT_EQ(norm.invocations, 1u);
    EXPECT_EQ(norm.macOps, 16u * 8 + 8);
    EXPECT_EQ(norm.extMemAccesses, 16u * 8);

    const auto &sim = prof.at(Kernel::Similarity);
    EXPECT_EQ(sim.macOps, 16u * 8);
    EXPECT_GT(sim.specialOps, 0u);
}

TEST(ContentAddressing, ApproximateMatchesExactClosely)
{
    Rng rng(6);
    const Matrix mem = rng.normalMatrix(64, 16);
    const Vector key = rng.normalVector(16);
    ContentAddressing exact(false);
    ContentAddressing approx(true, 32);
    const Vector we = exact.weighting(mem, key, 5.0);
    const Vector wa = approx.weighting(mem, key, 5.0);
    EXPECT_EQ(we.argmax(), wa.argmax());
    Real l1 = 0.0;
    for (Index i = 0; i < we.size(); ++i)
        l1 += std::fabs(we[i] - wa[i]);
    EXPECT_LT(l1, 0.05);
}

/** Property: weighting is invariant to key scaling (cosine). */
class KeyScale : public ::testing::TestWithParam<double>
{};

TEST_P(KeyScale, WeightingInvariant)
{
    Rng rng(7);
    const Matrix mem = rng.normalMatrix(16, 8);
    const Vector key = rng.normalVector(8);
    ContentAddressing ca;
    const Vector base = ca.weighting(mem, key, 4.0);
    const Vector scaled = ca.weighting(mem, scale(key, GetParam()), 4.0);
    for (Index i = 0; i < base.size(); ++i)
        EXPECT_NEAR(base[i], scaled[i], 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Scales, KeyScale,
                         ::testing::Values(0.5, 2.0, 10.0, 100.0));

} // namespace
} // namespace hima
