/**
 * @file
 * Tests for the logging helpers: concurrent HIMA_WARN emitters must
 * produce whole, un-interleaved lines (each message is assembled into
 * one buffer and written with a single fwrite), long messages must be
 * truncated with a visible marker rather than overrun, and the
 * warn/inform prefixes must land on the right streams.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace hima {
namespace {

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(Logging, ConcurrentWarnLinesNeverInterleave)
{
    constexpr int kThreads = 8;
    constexpr int kLines = 50;

    testing::internal::CaptureStderr();
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t)
            threads.emplace_back([t] {
                for (int i = 0; i < kLines; ++i)
                    HIMA_WARN("thread %d line %d aaaaaaaaaa bbbbbbbbbb "
                              "cccccccccc dddddddddd",
                              t, i);
            });
        for (std::thread &thread : threads)
            thread.join();
    }
    const std::string captured = testing::internal::GetCapturedStderr();

    const std::vector<std::string> lines = splitLines(captured);
    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads * kLines));

    // Every line must be exactly one whole message: correct prefix,
    // correct payload, nothing spliced in from another thread.
    std::vector<std::vector<bool>> seen(
        kThreads, std::vector<bool>(kLines, false));
    for (const std::string &line : lines) {
        int t = -1, i = -1;
        ASSERT_EQ(std::sscanf(line.c_str(),
                              "warn: thread %d line %d", &t, &i),
                  2)
            << "garbled line: " << line;
        ASSERT_GE(t, 0);
        ASSERT_LT(t, kThreads);
        ASSERT_GE(i, 0);
        ASSERT_LT(i, kLines);
        char expected[128];
        std::snprintf(expected, sizeof(expected),
                      "warn: thread %d line %d aaaaaaaaaa bbbbbbbbbb "
                      "cccccccccc dddddddddd",
                      t, i);
        EXPECT_EQ(line, expected);
        EXPECT_FALSE(seen[t][i]) << "duplicate line: " << line;
        seen[t][i] = true;
    }
}

TEST(Logging, OverlongMessageIsTruncatedWithMarker)
{
    const std::string payload(8192, 'x');
    testing::internal::CaptureStderr();
    HIMA_WARN("%s", payload.c_str());
    const std::string captured = testing::internal::GetCapturedStderr();

    EXPECT_EQ(captured.rfind("warn: ", 0), 0u);
    EXPECT_NE(captured.find("...[truncated]"), std::string::npos);
    // The emit buffer is 2 KiB; nothing near the full payload leaks out.
    EXPECT_LT(captured.size(), 4096u);
}

TEST(Logging, InformGoesToStdoutWithPrefix)
{
    testing::internal::CaptureStdout();
    testing::internal::CaptureStderr();
    HIMA_INFORM("status %d", 42);
    const std::string out = testing::internal::GetCapturedStdout();
    const std::string err = testing::internal::GetCapturedStderr();

    EXPECT_EQ(out, "info: status 42\n");
    EXPECT_EQ(err.find("status 42"), std::string::npos);
}

} // namespace
} // namespace hima
