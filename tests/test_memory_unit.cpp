/**
 * @file
 * Integration tests of the full memory unit: write-then-read round trips,
 * weighting invariants across steps, sorter-backend equivalence, erase
 * semantics and instrumentation.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.h"
#include "dnc/memory_unit.h"
#include "sort/two_stage_sort.h"

namespace hima {
namespace {

DncConfig
smallConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 32;
    cfg.memoryWidth = 16;
    cfg.readHeads = 2;
    return cfg;
}

/** An interface that writes `pattern` via allocation with full erase. */
InterfaceVector
writeIface(const DncConfig &cfg, const Vector &pattern)
{
    InterfaceVector iface;
    iface.readKeys.assign(cfg.readHeads, Vector(cfg.memoryWidth));
    iface.readStrengths.assign(cfg.readHeads, 1.0);
    iface.writeKey = Vector(cfg.memoryWidth);
    iface.writeStrength = 1.0;
    iface.eraseVector = Vector(cfg.memoryWidth, 1.0);
    iface.writeVector = pattern;
    iface.freeGates.assign(cfg.readHeads, 0.0);
    iface.allocationGate = 1.0;
    iface.writeGate = 1.0;
    iface.readModes.assign(cfg.readHeads, ReadMode{0.0, 1.0, 0.0});
    return iface;
}

/** A content-read interface for `key` (write gate closed). */
InterfaceVector
readIface(const DncConfig &cfg, const Vector &key, Real strength = 20.0)
{
    InterfaceVector iface = writeIface(cfg, Vector(cfg.memoryWidth));
    iface.writeGate = 0.0;
    iface.allocationGate = 0.0;
    iface.eraseVector = Vector(cfg.memoryWidth, 0.0);
    for (Index h = 0; h < cfg.readHeads; ++h) {
        iface.readKeys[h] = key;
        iface.readStrengths[h] = strength;
    }
    return iface;
}

TEST(MemoryUnit, WriteThenContentReadRoundTrip)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(1);

    Vector pattern = rng.normalVector(cfg.memoryWidth);
    pattern = scale(pattern, 1.0 / pattern.norm());

    mu.step(writeIface(cfg, pattern));
    const MemoryReadout out = mu.step(readIface(cfg, pattern));

    // The read vector must reproduce the stored pattern.
    EXPECT_GT(cosineSimilarity(out.readVectors[0], pattern), 0.98);
}

TEST(MemoryUnit, DistinctWritesLandInDistinctSlots)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(2);

    std::vector<Index> slots;
    for (int i = 0; i < 6; ++i) {
        Vector p = rng.normalVector(cfg.memoryWidth);
        const MemoryReadout out = mu.step(writeIface(cfg, p));
        slots.push_back(out.writeWeighting.argmax());
    }
    std::sort(slots.begin(), slots.end());
    EXPECT_EQ(std::unique(slots.begin(), slots.end()), slots.end())
        << "allocation reused a slot while free slots remained";
}

TEST(MemoryUnit, WriteWeightingIsSubDistribution)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        Vector p = rng.normalVector(cfg.memoryWidth);
        const MemoryReadout out = mu.step(writeIface(cfg, p));
        Real sum = 0.0;
        for (Index s = 0; s < cfg.memoryRows; ++s) {
            EXPECT_GE(out.writeWeighting[s], -1e-12);
            sum += out.writeWeighting[s];
        }
        EXPECT_LE(sum, 1.0 + 1e-9);
    }
}

TEST(MemoryUnit, ReadWeightingsAreSubDistributions)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(4);
    mu.step(writeIface(cfg, rng.normalVector(cfg.memoryWidth)));
    const MemoryReadout out =
        mu.step(readIface(cfg, rng.normalVector(cfg.memoryWidth)));
    for (const Vector &w : out.readWeightings) {
        Real sum = 0.0;
        for (Index i = 0; i < w.size(); ++i) {
            EXPECT_GE(w[i], -1e-12);
            sum += w[i];
        }
        EXPECT_LE(sum, 1.0 + 1e-9);
    }
}

TEST(MemoryUnit, FreeGateReleasesUsage)
{
    // DNC timing: usage registers a write one step later (it folds in
    // the *previous* write weighting), and the free gates act on the
    // *previous* step's read weightings. So: write, locate, free.
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(5);

    Vector p1 = rng.normalVector(cfg.memoryWidth);
    const MemoryReadout w1 = mu.step(writeIface(cfg, p1));
    const Index slot = w1.writeWeighting.argmax();

    mu.step(readIface(cfg, p1)); // locate: read weighting pins the slot
    EXPECT_GT(mu.usage()[slot], 0.9) << "write registered in usage";

    InterfaceVector freeIt = readIface(cfg, p1);
    for (Index h = 0; h < cfg.readHeads; ++h)
        freeIt.freeGates[h] = 1.0;
    mu.step(freeIt);
    EXPECT_LT(mu.usage()[slot], 0.1) << "free gate released the slot";
}

TEST(MemoryUnit, FreedSlotIsReusedUnderFullMemory)
{
    // Fill every slot, free one, and verify the next allocation lands on
    // exactly the freed slot with the new contents.
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(5);

    std::vector<Vector> patterns;
    for (Index i = 0; i < cfg.memoryRows; ++i) {
        patterns.push_back(rng.normalVector(cfg.memoryWidth));
        mu.step(writeIface(cfg, patterns.back()));
    }

    const Index victim = 13;
    // Locate first (read weighting moves onto the victim), then raise
    // the free gates so retention releases it.
    mu.step(readIface(cfg, patterns[victim]));
    InterfaceVector freeIt = readIface(cfg, patterns[victim]);
    for (Index h = 0; h < cfg.readHeads; ++h)
        freeIt.freeGates[h] = 1.0;
    mu.step(freeIt);

    Vector fresh = rng.normalVector(cfg.memoryWidth);
    const MemoryReadout w = mu.step(writeIface(cfg, fresh));
    const Index reused = w.writeWeighting.argmax();
    EXPECT_GT(cosineSimilarity(mu.memory().row(reused), fresh), 0.9);
    EXPECT_LT(std::fabs(cosineSimilarity(mu.memory().row(reused),
                                         patterns[victim])),
              0.5);
}

TEST(MemoryUnit, HardwareSorterBackendIsBitExact)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit ref(cfg);
    MemoryUnit hw(cfg);
    TwoStageSorter sorter(cfg.memoryRows, 4);
    hw.setUsageSorter([&sorter](const std::vector<SortRecord> &recs,
                                SortOrder order) {
        return sorter.sort(recs, order);
    });

    Rng rng(6);
    for (int i = 0; i < 10; ++i) {
        Vector p = rng.normalVector(cfg.memoryWidth);
        const MemoryReadout a = ref.step(writeIface(cfg, p));
        const MemoryReadout b = hw.step(writeIface(cfg, p));
        for (Index s = 0; s < cfg.memoryRows; ++s)
            EXPECT_NEAR(a.writeWeighting[s], b.writeWeighting[s], 1e-12);
    }
}

TEST(MemoryUnit, ResetRestoresVirginState)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(7);
    mu.step(writeIface(cfg, rng.normalVector(cfg.memoryWidth)));
    mu.reset();
    EXPECT_DOUBLE_EQ(mu.usage().sum(), 0.0);
    EXPECT_DOUBLE_EQ(mu.writeWeighting().sum(), 0.0);
    Real memSum = 0.0;
    for (Index i = 0; i < mu.memory().size(); ++i)
        memSum += std::fabs(mu.memory().data()[i]);
    EXPECT_DOUBLE_EQ(memSum, 0.0);
}

TEST(MemoryUnit, ProfilerCoversEveryMemoryKernel)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(8);
    mu.step(writeIface(cfg, rng.normalVector(cfg.memoryWidth)));

    for (Kernel k : {Kernel::Normalize, Kernel::Similarity,
                     Kernel::MemoryWrite, Kernel::MemoryRead,
                     Kernel::Retention, Kernel::Usage, Kernel::UsageSort,
                     Kernel::Allocation, Kernel::WriteMerge,
                     Kernel::Linkage, Kernel::Precedence,
                     Kernel::ForwardBackward, Kernel::ReadMerge}) {
        EXPECT_GT(mu.profiler().at(k).invocations, 0u)
            << "kernel " << kernelName(k) << " never ran";
    }
}

TEST(MemoryUnit, FixedPointModeStaysClose)
{
    DncConfig cfg = smallConfig();
    MemoryUnit real(cfg);
    cfg.fixedPoint = true;
    MemoryUnit fixed(cfg);

    Rng rng(9);
    Vector p = rng.normalVector(cfg.memoryWidth);
    real.step(writeIface(cfg, p));
    fixed.step(writeIface(cfg, p));
    const MemoryReadout a = real.step(readIface(cfg, p));
    const MemoryReadout b = fixed.step(readIface(cfg, p));
    EXPECT_GT(cosineSimilarity(a.readVectors[0], b.readVectors[0]), 0.999);
}

TEST(MemoryUnit, TemporalChainReadableViaForwardMode)
{
    const DncConfig cfg = smallConfig();
    MemoryUnit mu(cfg);
    Rng rng(10);

    Vector p1 = rng.normalVector(cfg.memoryWidth);
    Vector p2 = rng.normalVector(cfg.memoryWidth);
    mu.step(writeIface(cfg, p1));
    mu.step(writeIface(cfg, p2));

    // Locate p1 by content, then switch to forward mode: expect p2.
    mu.step(readIface(cfg, p1));
    InterfaceVector fwd = readIface(cfg, Vector(cfg.memoryWidth));
    for (Index h = 0; h < cfg.readHeads; ++h)
        fwd.readModes[h] = ReadMode{0.0, 0.0, 1.0};
    const MemoryReadout out = mu.step(fwd);
    EXPECT_GT(cosineSimilarity(out.readVectors[0], p2), 0.9);
}

TEST(MemoryUnit, LinkageSkipChurnAcrossEpisodeResets)
{
    // Allocation-gated writes are exactly one-hot, so each step of an
    // episode activates at most one new linkage row: the sparse sweep
    // must skip nearly everything early in every episode, rows never
    // written since the reset must stay bit-zero, and reset() must
    // return the active set to empty each cycle.
    const DncConfig cfg = smallConfig();
    const Index n = cfg.memoryRows;
    MemoryUnit mu(cfg);
    Rng rng(9);

    for (int episode = 0; episode < 3; ++episode) {
        ASSERT_EQ(mu.linkage().activeRowCount(), 0u);

        std::vector<bool> written(n, false);
        const int steps = 6;
        for (int t = 0; t < steps; ++t) {
            const std::uint64_t before =
                mu.profiler().at(Kernel::Linkage).skippedRows;
            const MemoryReadout out =
                mu.step(writeIface(cfg, rng.normalVector(cfg.memoryWidth)));
            written[out.writeWeighting.argmax()] = true;
            // At most t rows carried mass and one more is written, so
            // the fused sweep skips at least n - t - 1 rows this step.
            EXPECT_GE(mu.profiler().at(Kernel::Linkage).skippedRows - before,
                      static_cast<std::uint64_t>(n - t - 1));
        }

        EXPECT_LE(mu.linkage().activeRowCount(),
                  static_cast<Index>(steps));
        const Matrix &link = mu.linkage().linkage();
        for (Index i = 0; i < n; ++i) {
            if (written[i])
                continue;
            // Never written this episode: row and column i are exactly
            // zero and the row carries no cached mass.
            EXPECT_DOUBLE_EQ(mu.linkage().rowMass()[i], 0.0);
            for (Index j = 0; j < n; ++j) {
                EXPECT_DOUBLE_EQ(link(i, j), 0.0);
                EXPECT_DOUBLE_EQ(link(j, i), 0.0);
            }
        }

        mu.reset();
        EXPECT_EQ(mu.linkage().activeRowCount(), 0u);
    }
}

} // namespace
} // namespace hima
