/**
 * @file
 * Tests for the hardware sorter models: DPBS bitonic network, MDSA shear
 * sorter, parallel merge sorter, centralized baseline, and HiMA's
 * two-stage sort — functional correctness, permutation preservation, and
 * the paper's cycle models.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "common/random.h"
#include "sort/bitonic.h"
#include "sort/centralized_sort.h"
#include "sort/mdsa.h"
#include "sort/merge_sorter.h"
#include "sort/two_stage_sort.h"

namespace hima {
namespace {

std::vector<SortRecord>
randomRecords(Index n, Rng &rng)
{
    std::vector<SortRecord> recs(n);
    for (Index i = 0; i < n; ++i)
        recs[i] = {rng.uniform(), i};
    return recs;
}

/** A sort output must be a permutation of its input. */
void
expectPermutation(const std::vector<SortRecord> &in,
                  const std::vector<SortRecord> &out)
{
    ASSERT_EQ(in.size(), out.size());
    auto a = in;
    auto b = out;
    auto byIdx = [](const SortRecord &x, const SortRecord &y) {
        return x.idx < y.idx;
    };
    std::sort(a.begin(), a.end(), byIdx);
    std::sort(b.begin(), b.end(), byIdx);
    EXPECT_EQ(a, b);
}

// --------------------------------------------------------------------
// Bitonic (DPBS)
// --------------------------------------------------------------------

class BitonicWidths : public ::testing::TestWithParam<int>
{};

TEST_P(BitonicWidths, SortsBothDirections)
{
    const Index width = static_cast<Index>(GetParam());
    Rng rng(width);
    BitonicSorter sorter(width);
    const auto input = randomRecords(width, rng);

    for (SortOrder order : {SortOrder::Ascending, SortOrder::Descending}) {
        const SortResult res = sorter.sort(input, order);
        EXPECT_TRUE(isSorted(res.records, order));
        expectPermutation(input, res.records);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitonicWidths,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 15, 16, 31,
                                           32, 64));

TEST(Bitonic, PipelineDepthMatchesPaper)
{
    // The paper's 16-input DPBS pipelines into 5 stages.
    EXPECT_EQ(BitonicSorter(16).pipelineDepth(), 5u);
    EXPECT_EQ(BitonicSorter(8).pipelineDepth(), 4u);
    EXPECT_EQ(BitonicSorter(2).pipelineDepth(), 2u);
}

TEST(Bitonic, NetworkStageCount)
{
    // Full bitonic sort on 16 inputs: 4*5/2 = 10 comparator stages.
    EXPECT_EQ(BitonicSorter(16).networkStages(), 10u);
    EXPECT_EQ(BitonicSorter(16).comparatorCount(), 80u);
}

TEST(Bitonic, DuplicateKeysKeepAllRecords)
{
    BitonicSorter sorter(8);
    std::vector<SortRecord> input(8);
    for (Index i = 0; i < 8; ++i)
        input[i] = {0.5, i};
    const SortResult res = sorter.sort(input, SortOrder::Ascending);
    expectPermutation(input, res.records);
}

// --------------------------------------------------------------------
// MDSA
// --------------------------------------------------------------------

class MdsaLengths : public ::testing::TestWithParam<int>
{};

TEST_P(MdsaLengths, SortsFully)
{
    const Index n = static_cast<Index>(GetParam());
    Rng rng(1000 + n);
    MdsaSorter sorter(n);
    const auto input = randomRecords(n, rng);

    const SortResult asc = sorter.sort(input, SortOrder::Ascending);
    EXPECT_TRUE(isSorted(asc.records, SortOrder::Ascending));
    expectPermutation(input, asc.records);

    const SortResult desc = sorter.sort(input, SortOrder::Descending);
    EXPECT_TRUE(isSorted(desc.records, SortOrder::Descending));
    expectPermutation(input, desc.records);
}

INSTANTIATE_TEST_SUITE_P(Lengths, MdsaLengths,
                         ::testing::Values(1, 2, 5, 16, 30, 64, 100, 256));

TEST(Mdsa, CycleModelMatchesPaperExample)
{
    // Sec 4.3: n = 256 -> P = 16, D_DPBS = 5, 6 * (16 + 5) = 126 cycles.
    MdsaSorter sorter(256);
    EXPECT_EQ(sorter.gridDim(), 16u);
    EXPECT_EQ(sorter.modelCycles(), 126u);
}

TEST(Mdsa, GridDimensionIsCeilSqrt)
{
    EXPECT_EQ(MdsaSorter(64).gridDim(), 8u);
    EXPECT_EQ(MdsaSorter(65).gridDim(), 9u);
    EXPECT_EQ(MdsaSorter(1).gridDim(), 1u);
}

// --------------------------------------------------------------------
// Parallel merge sorter (PMS)
// --------------------------------------------------------------------

TEST(Pms, MergesSortedRuns)
{
    Rng rng(77);
    ParallelMergeSorter pms(4);
    std::vector<std::vector<SortRecord>> runs(4);
    Index idx = 0;
    for (auto &run : runs) {
        run = randomRecords(32, rng);
        for (auto &rec : run)
            rec.idx = idx++;
        std::sort(run.begin(), run.end(),
                  [](const SortRecord &a, const SortRecord &b) {
                      return recordLess(a, b, SortOrder::Ascending);
                  });
    }
    const SortResult res = pms.merge(runs, SortOrder::Ascending);
    EXPECT_EQ(res.records.size(), 128u);
    EXPECT_TRUE(isSorted(res.records, SortOrder::Ascending));
}

TEST(Pms, PipelineDepthMatchesPaper)
{
    // 4-input PMS pipelines into 7 stages (Sec. 4.3).
    EXPECT_EQ(ParallelMergeSorter(4).pipelineDepth(), 7u);
}

TEST(Pms, CycleModelMatchesPaperExample)
{
    // Nt = 4, shard n = 256: global merge = 256 + 7 = 263 cycles.
    ParallelMergeSorter pms(4);
    std::vector<std::vector<SortRecord>> runs(4);
    Rng rng(3);
    Index idx = 0;
    for (auto &run : runs) {
        run = randomRecords(256, rng);
        for (auto &rec : run)
            rec.idx = idx++;
        std::sort(run.begin(), run.end(),
                  [](const SortRecord &a, const SortRecord &b) {
                      return recordLess(a, b, SortOrder::Ascending);
                  });
    }
    EXPECT_EQ(pms.merge(runs, SortOrder::Ascending).cycles, 263u);
}

TEST(Pms, HandlesUnevenAndEmptyRuns)
{
    ParallelMergeSorter pms(4);
    std::vector<std::vector<SortRecord>> runs(3);
    runs[0] = {{0.1, 0}, {0.9, 1}};
    runs[1] = {};
    runs[2] = {{0.5, 2}};
    const SortResult res = pms.merge(runs, SortOrder::Ascending);
    ASSERT_EQ(res.records.size(), 3u);
    EXPECT_TRUE(isSorted(res.records, SortOrder::Ascending));
}

// --------------------------------------------------------------------
// Centralized baseline
// --------------------------------------------------------------------

class CentralizedLengths : public ::testing::TestWithParam<int>
{};

TEST_P(CentralizedLengths, SortsAndModelsNLogN)
{
    const Index n = static_cast<Index>(GetParam());
    Rng rng(500 + n);
    CentralizedSorter sorter;
    const auto input = randomRecords(n, rng);
    const SortResult res = sorter.sort(input, SortOrder::Ascending);
    EXPECT_TRUE(isSorted(res.records, SortOrder::Ascending));
    expectPermutation(input, res.records);
    if (n > 1) {
        const auto lg = static_cast<std::uint64_t>(
            std::ceil(std::log2(static_cast<double>(n))));
        EXPECT_EQ(res.cycles, n * lg);
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, CentralizedLengths,
                         ::testing::Values(1, 2, 3, 17, 64, 1000, 1024));

TEST(Centralized, PaperCycleModel)
{
    // N = 1024 -> 1024 * 10 = 10240 cycles.
    EXPECT_EQ(CentralizedSorter::modelCycles(1024), 10240u);
}

// --------------------------------------------------------------------
// Two-stage sort
// --------------------------------------------------------------------

class TwoStageConfigs
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(TwoStageConfigs, MatchesReferenceSort)
{
    const auto [n, nt] = GetParam();
    Rng rng(n * 31 + nt);
    TwoStageSorter sorter(n, nt);
    const auto input = randomRecords(n, rng);

    const SortResult res = sorter.sort(input, SortOrder::Ascending);
    EXPECT_TRUE(isSorted(res.records, SortOrder::Ascending));
    expectPermutation(input, res.records);

    // Keys must match a reference std::sort exactly.
    std::vector<Real> expectKeys(n);
    for (Index i = 0; i < static_cast<Index>(n); ++i)
        expectKeys[i] = input[i].key;
    std::sort(expectKeys.begin(), expectKeys.end());
    for (Index i = 0; i < static_cast<Index>(n); ++i)
        EXPECT_EQ(res.records[i].key, expectKeys[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TwoStageConfigs,
    ::testing::Values(std::pair{64, 4}, std::pair{256, 4},
                      std::pair{1024, 4}, std::pair{1024, 16},
                      std::pair{1024, 32}, std::pair{512, 8},
                      std::pair{128, 128}));

TEST(TwoStage, PaperHeadlineCycleCount)
{
    // N = 1024, Nt = 4: 126 local + 263 global = 389 cycles, vs 10240
    // for the centralized merge sort (Sec. 4.3's headline comparison).
    TwoStageSorter sorter(1024, 4);
    const TwoStageTiming t = sorter.modelTiming();
    EXPECT_EQ(t.localCycles, 126u);
    EXPECT_EQ(t.globalCycles, 263u);
    EXPECT_EQ(t.totalCycles, 389u);
    EXPECT_LT(t.totalCycles, CentralizedSorter::modelCycles(1024) / 26);
}

TEST(TwoStage, MoreTilesCutLatency)
{
    const auto t4 = TwoStageSorter(1024, 4).modelTiming();
    const auto t16 = TwoStageSorter(1024, 16).modelTiming();
    const auto t32 = TwoStageSorter(1024, 32).modelTiming();
    EXPECT_GT(t4.totalCycles, t16.totalCycles);
    EXPECT_GT(t16.totalCycles, t32.totalCycles);
}

TEST(TwoStage, RejectsIndivisibleShards)
{
    EXPECT_DEATH(TwoStageSorter(10, 3), "divisible");
}

} // namespace
} // namespace hima
