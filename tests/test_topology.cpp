/**
 * @file
 * Tests for the NoC topology builders and per-mode routing tables.
 */

#include <gtest/gtest.h>

#include "noc/topology.h"

namespace hima {
namespace {

class AllKinds : public ::testing::TestWithParam<NocKind>
{};

TEST_P(AllKinds, BuildsAndRoutesAllTilePairs)
{
    const Topology topo = Topology::build(GetParam(), 16);
    EXPECT_EQ(topo.tileCount(), 16u);

    std::vector<NodeId> nodes = topo.processingNodes();
    nodes.push_back(topo.controllerNode());
    for (NodeId a : nodes) {
        for (NodeId b : nodes) {
            if (a == b)
                continue;
            const auto path = topo.route(a, b, NocMode::Full);
            EXPECT_FALSE(path.empty());
            // The path must actually end at b.
            EXPECT_EQ(topo.links()[path.back()].to, b);
            // And start at a.
            EXPECT_EQ(topo.links()[path.front()].from, a);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKinds,
                         ::testing::Values(NocKind::HTree,
                                           NocKind::BinaryTree,
                                           NocKind::Mesh, NocKind::Star,
                                           NocKind::Ring, NocKind::Hima));

TEST(Topology, StarIsOneHop)
{
    const Topology topo = Topology::build(NocKind::Star, 8);
    for (NodeId pt : topo.processingNodes()) {
        EXPECT_EQ(topo.hops(topo.controllerNode(), pt, NocMode::Full), 1u);
        EXPECT_EQ(topo.hops(pt, topo.controllerNode(), NocMode::Full), 1u);
        // PT to PT goes through the hub: 2 hops.
        for (NodeId other : topo.processingNodes())
            if (other != pt)
                EXPECT_EQ(topo.hops(pt, other, NocMode::Full), 2u);
    }
}

TEST(Topology, HTreeWorstCaseGrowsWithDepth)
{
    // Distant leaf pairs traverse to the root and back: 2*log2(leaves).
    const Topology t16 = Topology::build(NocKind::HTree, 16);
    EXPECT_EQ(t16.worstCaseHops(NocMode::Full), 8u);
    const Topology t4 = Topology::build(NocKind::HTree, 4);
    EXPECT_EQ(t4.worstCaseHops(NocMode::Full), 4u);
}

TEST(Topology, BinaryTreeLateralLinksShortenPaths)
{
    const Topology htree = Topology::build(NocKind::HTree, 16);
    const Topology bitree = Topology::build(NocKind::BinaryTree, 16);
    // Lateral links can only help.
    EXPECT_LE(bitree.worstCaseHops(NocMode::Full),
              htree.worstCaseHops(NocMode::Full));
}

TEST(Topology, HimaDiagonalsShortenPathsVersusMesh)
{
    const Topology mesh = Topology::build(NocKind::Mesh, 24);
    const Topology hima = Topology::build(NocKind::Hima, 24);
    EXPECT_LT(hima.worstCaseHops(NocMode::Full),
              mesh.worstCaseHops(NocMode::Full));
}

TEST(Topology, PaperWorstCase5x5)
{
    // Fig. 5(c): 5x5 HiMA-NoC keeps worst-case distance to 4 hops.
    const Topology hima = Topology::build(NocKind::Hima, 24); // 24 PT + CT
    EXPECT_EQ(hima.worstCaseHops(NocMode::Full), 4u);
}

TEST(Topology, FixedNoCsOnlySupportFullMode)
{
    const Topology mesh = Topology::build(NocKind::Mesh, 8);
    EXPECT_TRUE(mesh.supportsMode(NocMode::Full));
    EXPECT_FALSE(mesh.supportsMode(NocMode::Star));
    const Topology hima = Topology::build(NocKind::Hima, 8);
    EXPECT_TRUE(hima.supportsMode(NocMode::Star));
    EXPECT_TRUE(hima.supportsMode(NocMode::RingMode));
    EXPECT_TRUE(hima.supportsMode(NocMode::Diagonal));
}

TEST(Topology, StarModeAvoidsDiagonals)
{
    const Topology hima = Topology::build(NocKind::Hima, 24);
    for (NodeId pt : hima.processingNodes()) {
        for (Index l : hima.route(hima.controllerNode(), pt,
                                  NocMode::Star))
            EXPECT_FALSE(hima.links()[l].diagonal);
    }
}

TEST(Topology, RingModeConnectsConsecutivePts)
{
    const Topology hima = Topology::build(NocKind::Hima, 15);
    const auto &pts = hima.processingNodes();
    for (Index i = 0; i + 1 < pts.size(); ++i) {
        // Route exists and is short (snake neighbours).
        const auto path = hima.route(pts[i], pts[i + 1], NocMode::RingMode);
        EXPECT_FALSE(path.empty());
        EXPECT_LE(path.size(), 4u);
    }
}

TEST(Topology, DiagonalModeCarriesAntidiagonalTraffic)
{
    // Build a HiMA grid and verify NE/SW moves are 1 hop in diagonal
    // mode wherever such a physical link exists.
    const Topology hima = Topology::build(NocKind::Hima, 24);
    Index checked = 0;
    for (const Link &link : hima.links()) {
        if (!link.diagonal)
            continue;
        const auto path = [&]() -> std::vector<Index> {
            // Only NE/SW diagonal links are enabled in diagonal mode.
            return hima.route(link.from, link.to, NocMode::Diagonal);
        };
        // Either a 1-hop route exists (NE/SW) or the route panics for
        // NW/SE — restrict the check to pairs that do route.
        // We detect NE/SW by probing hops in full mode first.
        (void)path;
        ++checked;
    }
    EXPECT_GT(checked, 0u);
}

TEST(Topology, WorstCaseHopsScalesAsGridDiagonal)
{
    // Diagonal links make the worst case max(dx, dy): the grid dimension
    // minus one, not the Manhattan distance.
    const Topology h8 = Topology::build(NocKind::Hima, 8); // 3x3 grid
    EXPECT_EQ(h8.worstCaseHops(NocMode::Full), 2u);
    const Topology h63 = Topology::build(NocKind::Hima, 63); // 8x8 grid
    EXPECT_EQ(h63.worstCaseHops(NocMode::Full), 7u);
}

TEST(Topology, ControllerDistinctFromPts)
{
    for (NocKind kind : {NocKind::HTree, NocKind::Mesh, NocKind::Hima,
                         NocKind::Star, NocKind::Ring}) {
        const Topology topo = Topology::build(kind, 12);
        for (NodeId pt : topo.processingNodes())
            EXPECT_NE(pt, topo.controllerNode());
    }
}

} // namespace
} // namespace hima
