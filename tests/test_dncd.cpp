/**
 * @file
 * Tests for the distributed DNC-D model (Sec. 5.1): sharding, read-vector
 * merge, learned write-gating, and the accuracy relationship to the
 * monolithic DNC.
 */

#include <gtest/gtest.h>

#include "dnc/dncd.h"
#include "workload/retrieval.h"
#include "workload/task_suite.h"

namespace hima {
namespace {

DncConfig
testConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 64;
    cfg.memoryWidth = 16;
    cfg.readHeads = 2;
    return cfg;
}

TEST(DncD, ShardShapes)
{
    DncD model(testConfig(), 4);
    EXPECT_EQ(model.tiles(), 4u);
    EXPECT_EQ(model.shardConfig().memoryRows, 16u);
    EXPECT_EQ(model.shard(0).memory().rows(), 16u);
    EXPECT_EQ(model.globalConfig().memoryRows, 64u);
}

TEST(DncD, RejectsIndivisibleTiles)
{
    EXPECT_DEATH(DncD(testConfig(), 5), "divisible");
}

TEST(DncD, MergeWeightsAreDistribution)
{
    const DncConfig cfg = testConfig();
    DncD model(cfg, 4);
    TokenCodebook keys(16, cfg.memoryWidth / 2, 1);
    TokenCodebook values(16, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    model.stepInterface(scripter.writeInterface(3, 7));
    model.stepInterface(scripter.queryInterface(3));

    ASSERT_EQ(model.lastAlphas().size(), cfg.readHeads);
    for (const auto &alphas : model.lastAlphas()) {
        Real sum = 0.0;
        for (Real a : alphas) {
            EXPECT_GE(a, 0.0);
            EXPECT_LE(a, 1.0);
            sum += a;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(DncD, UniformPolicyGivesEqualAlphas)
{
    const DncConfig cfg = testConfig();
    DncD model(cfg, 4, MergePolicy::Uniform);
    TokenCodebook keys(16, cfg.memoryWidth / 2, 1);
    TokenCodebook values(16, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);
    model.stepInterface(scripter.queryInterface(0));
    for (const auto &alphas : model.lastAlphas())
        for (Real a : alphas)
            EXPECT_NEAR(a, 0.25, 1e-12);
}

TEST(DncD, ConfidenceMergeFindsTheOwningTile)
{
    const DncConfig cfg = testConfig();
    DncD model(cfg, 4);
    TokenCodebook keys(16, cfg.memoryWidth / 2, 1);
    TokenCodebook values(16, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    // Write token 5's pair into tile 1 only (learned sharding).
    std::vector<InterfaceVector> perTile(
        4, scripter.writeInterface(5, 9));
    for (Index t = 0; t < 4; ++t)
        if (t != 1)
            perTile[t].writeGate = 0.0;
    model.stepInterfaces(perTile);

    model.stepInterface(scripter.queryInterface(5));
    const auto &alphas = model.lastAlphas()[0];
    Index best = 0;
    for (Index t = 1; t < 4; ++t)
        if (alphas[t] > alphas[best])
            best = t;
    EXPECT_EQ(best, 1u);
}

TEST(DncD, RetrievalWorksThroughTheMerge)
{
    const DncConfig cfg = testConfig();
    DncD model(cfg, 4);
    TokenCodebook keys(32, cfg.memoryWidth / 2, 1);
    TokenCodebook values(32, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    Episode ep;
    for (Index i = 0; i < 6; ++i) {
        ep.steps.push_back({StepKind::Write, i, i + 10});
        ++ep.writes;
    }
    for (Index i = 0; i < 6; ++i) {
        ep.steps.push_back({StepKind::Query, i, i + 10});
        ++ep.scoredQueries;
    }
    const EpisodeResult res = runEpisodeDistributed(model, scripter, ep);
    EXPECT_EQ(res.scored, 6u);
    EXPECT_GE(res.correct, 5u) << "DNC-D content retrieval mostly works";
}

TEST(DncD, ErrorNotBetterThanMonolithicDnc)
{
    // Fig. 10's premise: DNC-D trades accuracy for locality. Across the
    // task suite the distributed model must not beat monolithic DNC.
    DncConfig cfg = testConfig();
    cfg.memoryRows = 128;
    Dnc mono(cfg, 3);
    DncD dist(cfg, 8);

    TokenCodebook keys(128, cfg.memoryWidth / 2, 1);
    TokenCodebook values(128, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    Rng rng(11);
    Real monoErr = 0.0, distErr = 0.0;
    const auto suite = taskSuite();
    for (Index t = 0; t < 6; ++t) { // first six tasks keep the test fast
        const Episode ep = makeEpisode(suite[t], 128, rng);
        monoErr += runEpisode(mono, scripter, ep).errorRate();
        distErr += runEpisodeDistributed(dist, scripter, ep).errorRate();
    }
    EXPECT_LE(monoErr, distErr + 1e-9);
}

TEST(DncD, AggregateProfileSumsShards)
{
    const DncConfig cfg = testConfig();
    DncD model(cfg, 4);
    TokenCodebook keys(16, cfg.memoryWidth / 2, 1);
    TokenCodebook values(16, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);
    model.stepInterface(scripter.writeInterface(1, 2));

    const KernelProfiler total = model.aggregateProfile();
    // Every shard ran the linkage kernel once.
    EXPECT_EQ(total.at(Kernel::Linkage).invocations, 4u);
    // Aggregate linkage work equals 4 shards of (N/Nt)^2 cells * 4 ops.
    EXPECT_EQ(total.at(Kernel::Linkage).elementOps, 4ull * 4 * 16 * 16);
}

TEST(DncD, ResetClearsAllShards)
{
    const DncConfig cfg = testConfig();
    DncD model(cfg, 4);
    TokenCodebook keys(16, cfg.memoryWidth / 2, 1);
    TokenCodebook values(16, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);
    model.stepInterface(scripter.writeInterface(0, 1));
    model.reset();
    for (Index t = 0; t < 4; ++t)
        EXPECT_DOUBLE_EQ(model.shard(t).usage().sum(), 0.0);
}

} // namespace
} // namespace hima
