/**
 * @file
 * Tests for the area/power technology model and the prototype presets.
 */

#include <gtest/gtest.h>

#include "arch/area_power.h"

namespace hima {
namespace {

TEST(Presets, BaselineMatchesPaperConfiguration)
{
    const ArchConfig cfg = himaBaselineConfig(16);
    EXPECT_EQ(cfg.noc, NocKind::HTree);
    EXPECT_FALSE(cfg.twoStageSort);
    EXPECT_FALSE(cfg.distributed);
    EXPECT_EQ(cfg.extPartition, Partition::rowWise(16));
    EXPECT_EQ(cfg.linkPartition, Partition::rowWise(16));
}

TEST(Presets, DncPresetEnablesAllArchFeatures)
{
    const ArchConfig cfg = himaDncConfig(16);
    EXPECT_EQ(cfg.noc, NocKind::Hima);
    EXPECT_TRUE(cfg.multiModeRouting);
    EXPECT_TRUE(cfg.twoStageSort);
    EXPECT_EQ(cfg.linkPartition, (Partition{4, 4}));
    EXPECT_FALSE(cfg.distributed);
    EXPECT_TRUE(himaDncDConfig(16).distributed);
}

TEST(Presets, FinalizeRejectsIndivisibleTiles)
{
    ArchConfig cfg = himaDncConfig(16);
    cfg.tiles = 3;
    cfg.dnc.memoryRows = 1024; // 1024 % 3 != 0
    EXPECT_DEATH(cfg.finalize(), "not divisible");
}

TEST(Footprint, MatchesClosedForms)
{
    const ArchConfig cfg = himaDncConfig(16);
    const TileMemoryFootprint fp = tileMemoryFootprint(cfg);
    // ext: (1024/16) * 64 words * 4B = 16 KB.
    EXPECT_DOUBLE_EQ(fp.extKb, 16.0);
    // linkage (DNC): N^2/Nt words * 4B = 256 KB.
    EXPECT_DOUBLE_EQ(fp.linkageKb, 256.0);
    // small states: 64 * (3 + 4) * 4B = 1.75 KB.
    EXPECT_DOUBLE_EQ(fp.smallStateKb, 1.75);
    EXPECT_DOUBLE_EQ(fp.total(), 273.75);
}

TEST(Footprint, DistributedShrinksLinkageOnly)
{
    const TileMemoryFootprint dnc = tileMemoryFootprint(himaDncConfig(16));
    const TileMemoryFootprint dncd =
        tileMemoryFootprint(himaDncDConfig(16));
    EXPECT_DOUBLE_EQ(dnc.extKb, dncd.extKb);
    EXPECT_DOUBLE_EQ(dnc.smallStateKb, dncd.smallStateKb);
    EXPECT_DOUBLE_EQ(dncd.linkageKb, 16.0); // (64)^2 * 4B
}

TEST(Area, MonotoneInTileCount)
{
    Real prev = 0.0;
    for (Index nt : {4, 8, 16, 32, 64}) {
        const Real total = areaReport(himaDncConfig(nt)).totalMm2;
        EXPECT_GT(total, prev);
        prev = total;
    }
}

TEST(Area, LinkageDominatesPtMemory)
{
    // Paper: the linkage bank is 81.3% of PT memory area.
    const ArchConfig cfg = himaDncConfig(16);
    const TileMemoryFootprint fp = tileMemoryFootprint(cfg);
    TechParams tech;
    const Real linkMm2 =
        tech.sramPeripheryMm2 + tech.sramSlopeMm2PerKb * fp.linkageKb;
    const AreaReport area = areaReport(cfg, tech);
    EXPECT_GT(linkMm2 / area.ptMemMm2, 0.70);
}

TEST(Area, TwoStageSortCostsSorterArea)
{
    ArchConfig with = himaDncConfig(16);
    ArchConfig without = himaDncConfig(16);
    without.twoStageSort = false;
    TechParams tech;
    EXPECT_NEAR(areaReport(with, tech).ptMm2 -
                    areaReport(without, tech).ptMm2,
                tech.mdsaSorterMm2, 1e-9);
}

TEST(Area, TechParamsScaleResults)
{
    TechParams fat;
    fat.sramSlopeMm2PerKb *= 2.0;
    const ArchConfig cfg = himaDncConfig(16);
    EXPECT_GT(areaReport(cfg, fat).ptMemMm2,
              areaReport(cfg).ptMemMm2);
}

TEST(Area, DncDRouterIsSimpler)
{
    // DNC-D's CT-PT-only router is smaller than the multi-mode router,
    // visible in the non-memory PT area.
    const AreaReport dnc = areaReport(himaDncConfig(16));
    const AreaReport dncd = areaReport(himaDncDConfig(16));
    const Real dncLogic = dnc.ptMm2 - dnc.ptMemMm2;
    const Real dncdLogic = dncd.ptMm2 - dncd.ptMemMm2;
    EXPECT_LT(dncdLogic, dncLogic);
}

} // namespace
} // namespace hima
