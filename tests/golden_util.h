/**
 * @file
 * Reusable golden-model harness: lockstep reference-vs-optimized
 * comparisons for the DNC engines.
 *
 * The pattern every fast path in this repo must satisfy is "bit-identical
 * to the reference model" — not approximately equal, identical. This
 * header centralizes the machinery: deterministic input-stream
 * generation, a randomized-but-valid scripted interface builder (shared
 * by the memory-unit, DNC-D and determinism suites), and a lockstep
 * runner that steps a BatchedDnc next to batchSize independent reference
 * Dnc instances and asserts bit-equality of every output and every piece
 * of per-lane state at every step.
 */

#ifndef HIMA_TESTS_GOLDEN_UTIL_H
#define HIMA_TESTS_GOLDEN_UTIL_H

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dnc/dnc.h"
#include "serve/batched_dnc.h"

namespace hima {
namespace golden {

/** A randomized but valid interface vector (mixed write/read traffic). */
inline InterfaceVector
randomIface(const DncConfig &cfg, Rng &rng)
{
    InterfaceVector iface;
    iface.readKeys.clear();
    for (Index h = 0; h < cfg.readHeads; ++h)
        iface.readKeys.push_back(rng.normalVector(cfg.memoryWidth));
    iface.readStrengths.assign(cfg.readHeads, 1.0 + rng.uniform(0.0, 8.0));
    iface.writeKey = rng.normalVector(cfg.memoryWidth);
    iface.writeStrength = 1.0 + rng.uniform(0.0, 8.0);
    iface.eraseVector = rng.uniformVector(cfg.memoryWidth, 0.05, 0.95);
    iface.writeVector = rng.normalVector(cfg.memoryWidth);
    iface.freeGates.assign(cfg.readHeads, rng.uniform(0.0, 0.4));
    iface.allocationGate = rng.uniform();
    iface.writeGate = rng.uniform(0.2, 1.0);
    const Real b = rng.uniform(0.0, 1.0);
    const Real c = rng.uniform(0.0, 1.0 - b);
    iface.readModes.assign(cfg.readHeads, ReadMode{b, c, 1.0 - b - c});
    return iface;
}

/** One random task token per lane. */
inline std::vector<Vector>
randomBatchInputs(const DncConfig &cfg, Index batch, Rng &rng)
{
    std::vector<Vector> inputs;
    inputs.reserve(batch);
    for (Index b = 0; b < batch; ++b)
        inputs.push_back(rng.normalVector(cfg.inputSize));
    return inputs;
}

/**
 * Assert bit-equality of lane `lane` of the batched engine against its
 * reference Dnc: controller state, memory tile, weightings, linkage and
 * previous reads. Uses the defaulted operator== on Vector/Matrix, i.e.
 * exact double equality — no tolerances anywhere.
 */
inline void
expectLaneStateIdentical(Dnc &ref, const BatchedDnc &engine, Index lane,
                         int step)
{
    SCOPED_TRACE(::testing::Message() << "lane " << lane << " step " << step);
    const MemoryUnit &rm = ref.memory();
    const MemoryUnit &bm = engine.laneMemory(lane);
    EXPECT_TRUE(rm.memory() == bm.memory()) << "memory matrix diverged";
    EXPECT_TRUE(rm.usage() == bm.usage()) << "usage diverged";
    EXPECT_TRUE(rm.rowNorms() == bm.rowNorms()) << "row-norm cache diverged";
    EXPECT_TRUE(rm.writeWeighting() == bm.writeWeighting())
        << "write weighting diverged";
    ASSERT_EQ(rm.readWeightings().size(), bm.readWeightings().size());
    for (Index h = 0; h < rm.readWeightings().size(); ++h)
        EXPECT_TRUE(rm.readWeightings()[h] == bm.readWeightings()[h])
            << "read weighting head " << h << " diverged";
    EXPECT_TRUE(rm.linkage().linkage() == bm.linkage().linkage())
        << "linkage matrix diverged";
    EXPECT_TRUE(rm.linkage().precedence() == bm.linkage().precedence())
        << "precedence diverged";
    EXPECT_TRUE(rm.linkage().rowMass() == bm.linkage().rowMass())
        << "linkage row-mass cache diverged";
    EXPECT_TRUE(ref.controller().lstm().hidden() == engine.laneHidden(lane))
        << "LSTM hidden diverged";
    EXPECT_TRUE(ref.controller().lstm().cell() == engine.laneCell(lane))
        << "LSTM cell diverged";
    ASSERT_EQ(ref.lastReads().size(), engine.laneReads(lane).size());
    for (Index h = 0; h < ref.lastReads().size(); ++h)
        EXPECT_TRUE(ref.lastReads()[h] == engine.laneReads(lane)[h])
            << "read vector head " << h << " diverged";
}

/**
 * Step a BatchedDnc in lockstep with batch independent reference Dnc
 * runs over a deterministic random input stream, asserting per-lane
 * bit-identity of outputs every step and of the full state at every
 * `stateEvery`-th step (and the last).
 *
 * cfg.batchSize/cfg.numThreads are overwritten from the arguments so
 * call sites read naturally.
 */
inline void
runLockstep(DncConfig cfg, Index batch, Index threads, int steps,
            std::uint64_t weightSeed = 1, std::uint64_t inputSeed = 99,
            int stateEvery = 1)
{
    cfg.batchSize = batch;
    cfg.numThreads = threads;
    BatchedDnc engine(cfg, weightSeed);

    DncConfig refCfg = cfg;
    refCfg.batchSize = 1;
    refCfg.numThreads = 1;
    std::vector<std::unique_ptr<Dnc>> refs;
    for (Index b = 0; b < batch; ++b)
        refs.push_back(std::make_unique<Dnc>(refCfg, weightSeed));

    Rng inputRng(inputSeed);
    std::vector<Vector> outputs;
    for (int step = 0; step < steps; ++step) {
        const std::vector<Vector> inputs =
            randomBatchInputs(cfg, batch, inputRng);
        engine.stepInto(inputs, outputs);
        ASSERT_EQ(outputs.size(), batch);
        for (Index b = 0; b < batch; ++b) {
            const Vector refOut = refs[b]->step(inputs[b]);
            ASSERT_TRUE(refOut == outputs[b])
                << "output diverged at lane " << b << " step " << step;
            if (stateEvery > 0 &&
                (step % stateEvery == 0 || step == steps - 1))
                expectLaneStateIdentical(*refs[b], engine, b, step);
        }
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

/**
 * Randomized admit/evict churn lockstep: the lane-lifecycle analogue of
 * runLockstep(). The engine starts empty; every step boundary randomly
 * releases occupied slots (sometimes via a Draining dwell, so all three
 * lifecycle states are crossed) and admits fresh lanes, each with its
 * own deterministic input stream and a dedicated reference Dnc that is
 * reset at the same boundary. Outputs and full per-lane state must stay
 * bit-identical through arbitrary co-tenant churn.
 *
 * cfg.batchSize/cfg.numThreads are overwritten from the arguments.
 */
inline void
runChurnLockstep(DncConfig cfg, Index capacity, Index threads, int steps,
                 std::uint64_t weightSeed = 1, std::uint64_t churnSeed = 7,
                 std::uint64_t inputSeed = 99)
{
    cfg.batchSize = capacity;
    cfg.numThreads = threads;
    BatchedDnc engine(cfg, weightSeed);
    for (Index slot = 0; slot < capacity; ++slot)
        engine.release(slot); // start from an empty house

    DncConfig refCfg = cfg;
    refCfg.batchSize = 1;
    refCfg.numThreads = 1;
    std::vector<std::unique_ptr<Dnc>> refs;
    std::vector<Rng> laneRngs(capacity, Rng(0));
    for (Index slot = 0; slot < capacity; ++slot)
        refs.push_back(std::make_unique<Dnc>(refCfg, weightSeed));

    Rng churnRng(churnSeed);
    std::uint64_t admissions = 0;
    std::vector<Vector> inputs(capacity);
    std::vector<Vector> outputs;

    for (int step = 0; step < steps; ++step) {
        // Release/drain schedule: every occupied lane flips a coin; a
        // third of the evictions dwell in Draining for this step (state
        // must stay frozen and readable) instead of releasing outright.
        for (Index slot = 0; slot < capacity; ++slot) {
            if (engine.laneState(slot) == LaneState::Draining) {
                engine.release(slot);
            } else if (engine.laneState(slot) == LaneState::Active &&
                       churnRng.uniform() < 0.25) {
                if (churnRng.uniform() < 0.33)
                    engine.markDraining(slot);
                else
                    engine.release(slot);
            }
        }
        // Admission schedule: refill with fresh episodes, each pinned to
        // a per-admission input stream so its reference run can never
        // depend on co-tenants.
        while (engine.freeLanes() > 0 && churnRng.uniform() < 0.7) {
            const Index slot = engine.admit();
            refs[slot]->reset();
            laneRngs[slot] = Rng(inputSeed + 7919 * ++admissions);
        }

        for (Index slot = 0; slot < capacity; ++slot)
            if (engine.laneState(slot) == LaneState::Active)
                inputs[slot] = laneRngs[slot].normalVector(cfg.inputSize);

        engine.stepInto(inputs, outputs);
        ASSERT_EQ(outputs.size(), capacity);

        for (Index slot = 0; slot < capacity; ++slot) {
            if (engine.laneState(slot) != LaneState::Active)
                continue;
            const Vector refOut = refs[slot]->step(inputs[slot]);
            ASSERT_TRUE(refOut == outputs[slot])
                << "output diverged at slot " << slot << " step " << step;
            expectLaneStateIdentical(*refs[slot], engine, slot, step);
        }
        // Draining lanes were not stepped — their frozen state must
        // still match their reference exactly.
        for (Index slot = 0; slot < capacity; ++slot)
            if (engine.laneState(slot) == LaneState::Draining)
                expectLaneStateIdentical(*refs[slot], engine, slot, step);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_GT(admissions, 0u) << "churn schedule never admitted a lane";
}

} // namespace golden
} // namespace hima

#endif // HIMA_TESTS_GOLDEN_UTIL_H
