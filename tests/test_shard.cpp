/**
 * @file
 * Sharded DNC-D golden proof: a coordinator driving worker-hosted tiles
 * over a real wire protocol is bit-identical *per step* to the
 * in-process DncD with the same config — read vectors, global-view
 * weightings, and the confidence-merge alphas — across
 * transports {loopback, unix socket, tcp, shm} x tiles {2, 4} x
 * worker threads {1, 4} x {float, fixed}, through per-tile write
 * gating, history-mode reads, and mid-stream episode resets.
 *
 * Also here: worker protocol edge cases (reject-before-hello, config
 * validation, malformed frames answered with Error), the serving stack
 * (ShardedDnc over a coordinator == ShardedDnc over DncD; Router on a
 * ShardedLaneEngine == dedicated reference runs), the retrieval
 * workload through the wire, and the zero-allocation steady state of a
 * loopback worker round trip (operator-new hook).
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>
#include <tuple>

#include <unistd.h>

#include <gtest/gtest.h>

#include "golden_util.h"
#include "serve/router.h"
#include "shard/local_cluster.h"
#include "shard/sharded_dnc.h"
#include "workload/arrival.h"
#include "workload/retrieval.h"
#include "workload/task_suite.h"

// --------------------------------------------------------------------
// Operator-new hook (same pattern as test_tensor_inplace.cpp): counts
// every allocation so the steady-state loopback round trip can be
// asserted allocation-free.
// --------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocationCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocationCount.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + a - 1) / a * a;
    if (void *p = std::aligned_alloc(a, rounded ? rounded : a))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace hima {
namespace {

DncConfig
gridConfig(Index tiles, Index threads, bool fixedPoint)
{
    DncConfig cfg;
    cfg.memoryRows = tiles * 8; // small per-tile shards keep the grid fast
    cfg.memoryWidth = 12;
    cfg.readHeads = 2;
    cfg.numThreads = threads;
    cfg.fixedPoint = fixedPoint;
    return cfg;
}

const char *
transportName(ClusterTransport kind)
{
    switch (kind) {
    case ClusterTransport::Loopback:
        return "Loopback";
    case ClusterTransport::UnixSocket:
        return "Unix";
    case ClusterTransport::Shm:
        return "Shm";
    default:
        return "Tcp";
    }
}

void
expectReadoutIdentical(const MemoryReadout &ref, const MemoryReadout &got,
                       int step)
{
    SCOPED_TRACE(::testing::Message() << "step " << step);
    ASSERT_EQ(ref.readVectors.size(), got.readVectors.size());
    for (Index h = 0; h < ref.readVectors.size(); ++h)
        EXPECT_TRUE(ref.readVectors[h] == got.readVectors[h])
            << "merged read vector head " << h << " diverged";
    ASSERT_EQ(ref.readWeightings.size(), got.readWeightings.size());
    for (Index h = 0; h < ref.readWeightings.size(); ++h)
        EXPECT_TRUE(ref.readWeightings[h] == got.readWeightings[h])
            << "global-view read weighting head " << h << " diverged";
    EXPECT_TRUE(ref.writeWeighting == got.writeWeighting)
        << "global-view write weighting diverged";
}

void
expectAlphasIdentical(const DncD &ref, const ShardCoordinator &got,
                      int step)
{
    SCOPED_TRACE(::testing::Message() << "step " << step);
    ASSERT_EQ(ref.lastAlphas().size(), got.lastAlphas().size());
    for (Index h = 0; h < ref.lastAlphas().size(); ++h) {
        ASSERT_EQ(ref.lastAlphas()[h].size(), got.lastAlphas()[h].size());
        for (Index t = 0; t < ref.lastAlphas()[h].size(); ++t)
            EXPECT_EQ(ref.lastAlphas()[h][t], got.lastAlphas()[h][t])
                << "alpha head " << h << " tile " << t << " diverged";
    }
}

// --------------------------------------------------------------------
// The golden grid.
// --------------------------------------------------------------------

class ShardGolden
    : public ::testing::TestWithParam<
          std::tuple<ClusterTransport, int, int, bool>>
{};

TEST_P(ShardGolden, BitIdenticalToInProcessDncD)
{
    const auto [transport, tiles, threads, fixedPoint] = GetParam();
    const DncConfig cfg = gridConfig(tiles, threads, fixedPoint);
    const Index workerCount = 2; // exercises multi-tile workers at Nt=4

    LocalShardCluster stack =
        makeLocalCluster(transport, cfg, tiles, workerCount);
    ASSERT_TRUE(stack.coordinator != nullptr);
    DncD ref(cfg, tiles);

    Rng rng(305 + tiles);
    std::vector<InterfaceVector> perTile(tiles);
    constexpr int kSteps = 18;
    for (int step = 0; step < kSteps; ++step) {
        if (step == 12) {
            // Mid-stream episode boundary crosses the control path.
            ref.reset();
            stack.coordinator->reset();
        }
        const InterfaceVector iface = golden::randomIface(cfg, rng);
        if (step % 3 == 2) {
            // Learned write sharding: one tile's gate open, the rest
            // closed — the per-tile interface path.
            for (Index t = 0; t < tiles; ++t) {
                perTile[t] = iface;
                if (t != static_cast<Index>(step) % tiles)
                    perTile[t].writeGate = 0.0;
            }
            const MemoryReadout a = ref.stepInterfaces(perTile);
            const MemoryReadout b =
                stack.coordinator->stepInterfaces(perTile);
            expectReadoutIdentical(a, b, step);
        } else {
            const MemoryReadout a = ref.stepInterface(iface);
            const MemoryReadout b = stack.coordinator->stepInterface(iface);
            expectReadoutIdentical(a, b, step);
        }
        expectAlphasIdentical(ref, *stack.coordinator, step);
        if (::testing::Test::HasFatalFailure())
            return;
    }

    // Loopback keeps worker handles: the hosted tile state itself must
    // equal the in-process shards, not just the merged outputs.
    if (transport == ClusterTransport::Loopback) {
        Index global = 0;
        for (const auto &worker : stack.workers) {
            for (Index i = 0; i < worker->hostedTiles(); ++i, ++global) {
                SCOPED_TRACE(::testing::Message() << "tile " << global);
                EXPECT_TRUE(worker->tile(i).memory() ==
                            ref.shard(global).memory());
                EXPECT_TRUE(worker->tile(i).usage() ==
                            ref.shard(global).usage());
                EXPECT_TRUE(worker->tile(i).rowNorms() ==
                            ref.shard(global).rowNorms());
            }
        }
        EXPECT_EQ(global, static_cast<Index>(tiles));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardGolden,
    ::testing::Combine(::testing::Values(ClusterTransport::Loopback,
                                         ClusterTransport::UnixSocket,
                                         ClusterTransport::Tcp,
                                         ClusterTransport::Shm),
                       ::testing::Values(2, 4), ::testing::Values(1, 4),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::string(transportName(std::get<0>(info.param))) +
               "Nt" + std::to_string(std::get<1>(info.param)) + "T" +
               std::to_string(std::get<2>(info.param)) +
               (std::get<3>(info.param) ? "Fixed" : "Float");
    });

// --------------------------------------------------------------------
// Pipelined (lane-batched) serving: every lane of a shared fleet must
// match the in-process DncD bit for bit, per lane and per step.
// --------------------------------------------------------------------

class PipelinedShardGolden
    : public ::testing::TestWithParam<
          std::tuple<ClusterTransport, int, int, bool>>
{};

TEST_P(PipelinedShardGolden, EveryLaneBitIdenticalToDedicatedRuns)
{
    const auto [transport, tiles, threads, fixedPoint] = GetParam();
    DncConfig cfg = gridConfig(tiles, threads, fixedPoint);
    cfg.controllerSize = 20;
    cfg.inputSize = 9;
    cfg.outputSize = 7;
    cfg.batchSize = 3;        // three lanes on one fleet
    const Index lanesPerBatch = 2; // uneven split: batches of 2 + 1
    constexpr std::uint64_t kSeed = 77;
    const Index workerCount = 2;

    LocalLaneCluster cluster = makeLocalLaneCluster(
        transport, cfg, tiles, cfg.batchSize, workerCount);
    ASSERT_TRUE(cluster.group != nullptr);
    PipelinedShardedLaneEngine engine(cfg, kSeed, cluster.group,
                                      lanesPerBatch);

    // Dedicated references: one ShardedDnc over in-process DncD per
    // slot (already proven equal to the wire backend).
    std::vector<std::unique_ptr<ShardedDnc>> refs;
    for (Index slot = 0; slot < cfg.batchSize; ++slot)
        refs.push_back(std::make_unique<ShardedDnc>(
            cfg, kSeed, std::make_unique<DncD>(cfg, tiles)));

    Rng rng(411 + tiles);
    std::vector<Vector> inputs(cfg.batchSize);
    std::vector<Vector> outputs;
    constexpr int kSteps = 16;
    for (int step = 0; step < kSteps; ++step) {
        // Lane churn mid-stream: slot 1 drains and is recycled through
        // the per-lane Admit control; its neighbours must not notice.
        if (step == 6) {
            engine.markDraining(1);
            engine.release(1);
        }
        if (step == 9) {
            const Index slot = engine.admit();
            ASSERT_EQ(slot, 1u);
            refs[1]->beginEpisode();
        }
        for (Index slot = 0; slot < cfg.batchSize; ++slot)
            inputs[slot] = rng.normalVector(cfg.inputSize);
        engine.stepInto(inputs, outputs);
        for (Index slot = 0; slot < cfg.batchSize; ++slot) {
            if (engine.laneState(slot) != LaneState::Active)
                continue;
            const Vector want = refs[slot]->step(inputs[slot]);
            ASSERT_TRUE(want == outputs[slot])
                << "lane " << slot << " diverged at step " << step;
        }
    }
    EXPECT_EQ(engine.group().inFlight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelinedShardGolden,
    ::testing::Combine(::testing::Values(ClusterTransport::Loopback,
                                         ClusterTransport::UnixSocket,
                                         ClusterTransport::Tcp,
                                         ClusterTransport::Shm),
                       ::testing::Values(2, 4), ::testing::Values(1, 4),
                       ::testing::Bool()),
    [](const auto &info) {
        return std::string(transportName(std::get<0>(info.param))) +
               "Nt" + std::to_string(std::get<1>(info.param)) + "T" +
               std::to_string(std::get<2>(info.param)) +
               (std::get<3>(info.param) ? "Fixed" : "Float");
    });

// A lane of a shared fleet behind the TileMemory view: merged
// readouts, alphas and the raw hosted tile state all equal the
// in-process DncD, for every lane independently.
TEST(ShardLaneGroupGolden, LaneViewsMatchInProcessDncDIncludingTileState)
{
    const Index tiles = 4;
    const Index lanes = 2;
    const DncConfig cfg = gridConfig(tiles, 1, false);
    LocalLaneCluster cluster = makeLocalLaneCluster(
        ClusterTransport::Loopback, cfg, tiles, lanes, /*workerCount=*/2,
        MergePolicy::Confidence, /*wantWeightings=*/true);

    std::vector<std::unique_ptr<TileMemory>> views;
    std::vector<std::unique_ptr<DncD>> refs;
    for (Index lane = 0; lane < lanes; ++lane) {
        views.push_back(cluster.group->laneMemory(lane));
        refs.push_back(std::make_unique<DncD>(cfg, tiles));
    }

    Rng rng(902);
    for (int step = 0; step < 12; ++step) {
        if (step == 7) {
            // Per-lane reset: lane 0 restarts, lane 1 keeps its state.
            views[0]->reset();
            refs[0]->reset();
        }
        for (Index lane = 0; lane < lanes; ++lane) {
            SCOPED_TRACE(::testing::Message()
                         << "lane " << lane << " step " << step);
            // Distinct traffic per lane: divergence would surface as a
            // cross-lane mixup.
            const InterfaceVector iface = golden::randomIface(cfg, rng);
            const MemoryReadout a = refs[lane]->stepInterface(iface);
            const MemoryReadout b = views[lane]->stepInterface(iface);
            expectReadoutIdentical(a, b, step);
            ASSERT_EQ(refs[lane]->lastAlphas().size(),
                      views[lane]->lastAlphas().size());
            for (Index h = 0; h < refs[lane]->lastAlphas().size(); ++h)
                EXPECT_EQ(refs[lane]->lastAlphas()[h],
                          views[lane]->lastAlphas()[h]);
        }
    }

    // The hosted per-lane tile state itself equals the references'.
    for (Index lane = 0; lane < lanes; ++lane) {
        Index global = 0;
        for (const auto &worker : cluster.workers) {
            for (Index i = 0; i < worker->hostedTiles(); ++i, ++global) {
                SCOPED_TRACE(::testing::Message()
                             << "lane " << lane << " tile " << global);
                EXPECT_TRUE(worker->laneTile(lane, i).memory() ==
                            refs[lane]->shard(global).memory());
                EXPECT_TRUE(worker->laneTile(lane, i).usage() ==
                            refs[lane]->shard(global).usage());
            }
        }
        EXPECT_EQ(global, tiles);
    }
}

// The double-buffered window itself: two disjoint batches in flight at
// once, gathered oldest-first, still bit-identical per lane.
TEST(ShardLaneGroupGolden, OverlappedBatchesMatchSequentialExecution)
{
    const Index tiles = 2;
    const Index lanes = 4;
    const DncConfig cfg = gridConfig(tiles, 1, false);
    LocalLaneCluster cluster = makeLocalLaneCluster(
        ClusterTransport::UnixSocket, cfg, tiles, lanes, /*workerCount=*/2,
        MergePolicy::Confidence, /*wantWeightings=*/true);

    std::vector<std::unique_ptr<DncD>> refs;
    for (Index lane = 0; lane < lanes; ++lane)
        refs.push_back(std::make_unique<DncD>(cfg, tiles));

    Rng rng(515);
    std::vector<InterfaceVector> ifaces(lanes);
    const std::vector<Index> batchA = {0, 1};
    const std::vector<Index> batchB = {2, 3};
    std::vector<MemoryReadout> outs(lanes);
    for (int step = 0; step < 8; ++step) {
        for (Index lane = 0; lane < lanes; ++lane)
            ifaces[lane] = golden::randomIface(cfg, rng);
        // Scatter both batches before gathering either.
        cluster.group->scatter(batchA, {&ifaces[0], &ifaces[1]});
        cluster.group->scatter(batchB, {&ifaces[2], &ifaces[3]});
        EXPECT_EQ(cluster.group->inFlight(), 2u);
        cluster.group->gather({&outs[0], &outs[1]});
        cluster.group->gather({&outs[2], &outs[3]});
        EXPECT_EQ(cluster.group->inFlight(), 0u);
        for (Index lane = 0; lane < lanes; ++lane) {
            SCOPED_TRACE(::testing::Message()
                         << "lane " << lane << " step " << step);
            const MemoryReadout want =
                refs[lane]->stepInterface(ifaces[lane]);
            expectReadoutIdentical(want, outs[lane], step);
        }
    }
    EXPECT_EQ(cluster.group->laneSteps(), 8u * lanes);
}

// --------------------------------------------------------------------
// Retrieval workload through the wire.
// --------------------------------------------------------------------

TEST(ShardWorkload, RetrievalEpisodeMatchesInProcessExactly)
{
    DncConfig cfg = gridConfig(4, 1, false);
    cfg.memoryWidth = 16; // even split into key/value halves
    DncD ref(cfg, 4);
    LocalShardCluster stack =
        makeLocalCluster(ClusterTransport::Loopback, cfg, 4, 2);

    TokenCodebook keys(32, cfg.memoryWidth / 2, 1);
    TokenCodebook values(32, cfg.memoryWidth / 2, 2);
    InterfaceScripter scripter(cfg, keys, values);

    Rng rng(77);
    const auto suite = taskSuite();
    for (Index t = 0; t < 3; ++t) {
        const Episode ep = makeEpisode(suite[t], 32, rng);
        const EpisodeResult a = runEpisodeDistributed(ref, scripter, ep);
        const EpisodeResult b =
            runEpisodeDistributed(*stack.coordinator, scripter, ep);
        EXPECT_EQ(a.scored, b.scored);
        EXPECT_EQ(a.correct, b.correct) << "wire run answered differently";
        EXPECT_EQ(a.meanScore, b.meanScore);
    }
}

// --------------------------------------------------------------------
// Serving stack: ShardedDnc and the Router on a sharded backend.
// --------------------------------------------------------------------

DncConfig
serveCfg()
{
    DncConfig cfg;
    cfg.memoryRows = 32;
    cfg.memoryWidth = 12;
    cfg.readHeads = 2;
    cfg.controllerSize = 24;
    cfg.inputSize = 10;
    cfg.outputSize = 8;
    return cfg;
}

std::unique_ptr<TileMemory>
loopbackBackend(const DncConfig &cfg, Index tiles, Index workers)
{
    LoopbackShard stack =
        makeLoopbackShard(cfg, tiles, workers, MergePolicy::Confidence,
                          /*wantWeightings=*/false);
    // The workers live in the channel closures; only the coordinator
    // handle needs to escape.
    return std::move(stack.coordinator);
}

TEST(ShardedDnc, WireBackendMatchesInProcessBackend)
{
    const DncConfig cfg = serveCfg();
    const Index tiles = 4;
    ShardedDnc wire(cfg, 3, loopbackBackend(cfg, tiles, 2));
    ShardedDnc local(cfg, 3, std::make_unique<DncD>(cfg, tiles));

    Rng rng(505);
    for (int step = 0; step < 20; ++step) {
        if (step == 13) {
            wire.reset();
            local.reset();
        }
        const Vector input = rng.normalVector(cfg.inputSize);
        const Vector a = local.step(input);
        const Vector b = wire.step(input);
        ASSERT_TRUE(a == b) << "controller outputs diverged at step "
                            << step;
    }
}

TEST(ShardedRouter, RoutedRequestsMatchDedicatedShardedRuns)
{
    DncConfig cfg = serveCfg();
    cfg.batchSize = 3;
    const Index tiles = 2;
    constexpr std::uint64_t kSeed = 11;

    auto engine = std::make_unique<ShardedLaneEngine>(
        cfg, kSeed, [&cfg](Index) {
            return loopbackBackend(cfg, tiles, 1);
        });
    Router router(std::move(engine));

    ArrivalSpec spec;
    spec.kind = ArrivalKind::Bursty;
    spec.rate = 0.1;
    spec.burstProbability = 0.2;
    spec.burstSize = 4; // bursts exceed 3 lanes: queueing + admit churn
    Rng traceRng(61);
    const auto trace = makeArrivalTrace(spec, 20, traceRng);
    ASSERT_FALSE(trace.empty());

    std::size_t next = 0;
    while (next < trace.size()) {
        while (next < trace.size() && trace[next].step <= router.now()) {
            ServeRequest request;
            request.id = trace[next].ordinal;
            request.tokens = requestTokens(trace[next], cfg.inputSize, 67);
            ASSERT_TRUE(router.submit(std::move(request)));
            ++next;
        }
        router.step();
    }
    router.drain();
    ASSERT_EQ(router.completed().size(), trace.size());

    // Reference: a dedicated sharded model (in-process backend — already
    // proven equal to the wire backend above) per request.
    ShardedDnc ref(cfg, kSeed, std::make_unique<DncD>(cfg, tiles));
    for (const ServeResult &result : router.completed()) {
        SCOPED_TRACE(::testing::Message() << "request " << result.id);
        const auto tokens =
            requestTokens(trace[result.id], cfg.inputSize, 67);
        ASSERT_EQ(result.outputs.size(), tokens.size());
        ref.reset();
        for (Index t = 0; t < tokens.size(); ++t)
            ASSERT_TRUE(ref.step(tokens[t]) == result.outputs[t])
                << "output " << t << " diverged";
    }
}

// --------------------------------------------------------------------
// Router traffic on the pipelined fleet: identical to dedicated
// sharded runs, so the pipelined engine drops into serving unchanged.
// --------------------------------------------------------------------

TEST(ShardedRouter, PipelinedEngineMatchesDedicatedShardedRuns)
{
    DncConfig cfg = serveCfg();
    cfg.batchSize = 3;
    cfg.shardLanesPerBatch = 2; // overlapped batches under churn
    const Index tiles = 2;
    constexpr std::uint64_t kSeed = 11;

    LocalLaneCluster cluster = makeLocalLaneCluster(
        ClusterTransport::Loopback, cfg, tiles, cfg.batchSize,
        /*workerCount=*/1);
    Router router(std::make_unique<PipelinedShardedLaneEngine>(
        cfg, kSeed, cluster.group));

    ArrivalSpec spec;
    spec.kind = ArrivalKind::Bursty;
    spec.rate = 0.1;
    spec.burstProbability = 0.2;
    spec.burstSize = 4; // bursts exceed 3 lanes: queueing + admit churn
    Rng traceRng(61);
    const auto trace = makeArrivalTrace(spec, 20, traceRng);
    ASSERT_FALSE(trace.empty());

    std::size_t next = 0;
    while (next < trace.size()) {
        while (next < trace.size() && trace[next].step <= router.now()) {
            ServeRequest request;
            request.id = trace[next].ordinal;
            request.tokens = requestTokens(trace[next], cfg.inputSize, 67);
            ASSERT_TRUE(router.submit(std::move(request)));
            ++next;
        }
        router.step();
    }
    router.drain();
    ASSERT_EQ(router.completed().size(), trace.size());

    ShardedDnc ref(cfg, kSeed, std::make_unique<DncD>(cfg, tiles));
    for (const ServeResult &result : router.completed()) {
        SCOPED_TRACE(::testing::Message() << "request " << result.id);
        const auto tokens =
            requestTokens(trace[result.id], cfg.inputSize, 67);
        ASSERT_EQ(result.outputs.size(), tokens.size());
        ref.reset();
        for (Index t = 0; t < tokens.size(); ++t)
            ASSERT_TRUE(ref.step(tokens[t]) == result.outputs[t])
                << "output " << t << " diverged";
    }
}

// --------------------------------------------------------------------
// Bounded recv: a dead or wedged worker fails the step instead of
// hanging the coordinator forever.
// --------------------------------------------------------------------

TEST(ShardRecvTimeout, SilentPeerBoundsRecvFrame)
{
    auto listener = SocketListener::listenTcp(0);
    ASSERT_TRUE(listener != nullptr);
    std::unique_ptr<SocketChannel> server;
    std::thread accepter([&] { server = listener->accept(); });
    auto client = SocketChannel::connectTcp("127.0.0.1", listener->port());
    accepter.join();
    ASSERT_TRUE(client != nullptr);
    ASSERT_TRUE(server != nullptr);

    client->setRecvTimeout(50);
    std::vector<std::uint8_t> frame;
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(client->recvFrame(frame)) << "no peer data: must fail";
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_TRUE(client->timedOut()) << "failure must be diagnosed as a "
                                       "timeout, not a close";
    EXPECT_LT(elapsed, 5.0) << "recv did not respect the bound";

    // A real close is *not* reported as a timeout.
    server.reset();
    EXPECT_FALSE(client->recvFrame(frame));
    EXPECT_FALSE(client->timedOut());
}

TEST(ShardRecvTimeoutDeath, DeadWorkerFailsTheStepWithADiagnosis)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    const DncConfig cfg = gridConfig(2, 1, false);
    EXPECT_DEATH(
        {
            // A worker that completes the handshake, then wedges: it
            // reads frames but never answers another one.
            auto listener = SocketListener::listenTcp(0);
            std::thread wedged([&] {
                auto chan = listener->accept();
                std::vector<std::uint8_t> frame;
                ShardWorker worker;
                if (chan && chan->recvFrame(frame)) // Hello
                    worker.handleFrame(frame.data(), frame.size(), *chan);
                while (chan && chan->recvFrame(frame)) {
                    // swallow Steps silently, forever
                }
            });
            wedged.detach();
            auto client =
                SocketChannel::connectTcp("127.0.0.1", listener->port());
            client->setRecvTimeout(100);
            std::vector<std::unique_ptr<Channel>> channels;
            channels.push_back(std::move(client));
            ShardCoordinator coordinator(cfg, 2, MergePolicy::Confidence,
                                         std::move(channels));
            Rng rng(5);
            coordinator.stepInterface(golden::randomIface(cfg, rng));
        },
        "exceeded the recv timeout");
}

// --------------------------------------------------------------------
// Fault tolerance: scripted worker kills must recover (respawn +
// checkpoint restore + replay) bit-identically to an undisturbed run,
// across transports, tile counts and datapaths; the same checkpoint
// frames must carry live migration and mid-run rescale.
// --------------------------------------------------------------------

class ShardRecoveryGolden
    : public ::testing::TestWithParam<
          std::tuple<ClusterTransport, int, bool>>
{};

/**
 * The scripted-kill recovery body, parameterized additionally on the
 * linkage skip threshold: at a positive threshold the sparse sweep's
 * skip decisions derive from the row-mass cache, which the restore
 * path must rebuild bit-identically from the checkpointed matrix (and
 * the v4 handshake must carry the knob to respawned workers).
 */
void
runRecoveryGolden(ClusterTransport transport, int tiles, bool fixedPoint,
                  Real linkageSkipThreshold)
{
    DncConfig cfg = gridConfig(tiles, 1, fixedPoint);
    cfg.shardCheckpointIntervalSteps = 4;
    cfg.linkageSkipThreshold = linkageSkipThreshold;

    LocalShardCluster stack = makeLocalCluster(transport, cfg, tiles, 2);
    ASSERT_TRUE(stack.coordinator != nullptr);
    auto harness = armClusterRecovery(stack, transport);
    DncD ref(cfg, tiles); // the undisturbed run

    // Scripted kills: worker 0 dies just before serving step 6 (replay
    // window = one step past the step-4 checkpoint, on the per-tile
    // write-sharding frame), worker 1 just before step 14 (its window
    // then spans the step-12 episode reset, so control replay is
    // exercised too).
    FaultSpec killA;
    killA.killAtStepFrame = 6;
    stack.workers[0]->injectFault(killA);
    FaultSpec killB;
    killB.killAtStepFrame = 14;
    stack.workers[1]->injectFault(killB);

    Rng rng(305 + tiles);
    std::vector<InterfaceVector> perTile(tiles);
    constexpr int kSteps = 18;
    for (int step = 0; step < kSteps; ++step) {
        if (step == 12) {
            ref.reset();
            stack.coordinator->reset();
        }
        const InterfaceVector iface = golden::randomIface(cfg, rng);
        if (step % 3 == 2) {
            for (Index t = 0; t < tiles; ++t) {
                perTile[t] = iface;
                if (t != static_cast<Index>(step) % tiles)
                    perTile[t].writeGate = 0.0;
            }
            const MemoryReadout a = ref.stepInterfaces(perTile);
            const MemoryReadout b =
                stack.coordinator->stepInterfaces(perTile);
            expectReadoutIdentical(a, b, step);
        } else {
            const MemoryReadout a = ref.stepInterface(iface);
            const MemoryReadout b = stack.coordinator->stepInterface(iface);
            expectReadoutIdentical(a, b, step);
        }
        expectAlphasIdentical(ref, *stack.coordinator, step);
        if (::testing::Test::HasFatalFailure())
            return;
    }

    EXPECT_TRUE(stack.workers[0]->faultFired());
    EXPECT_TRUE(stack.workers[1]->faultFired());
    EXPECT_EQ(stack.coordinator->recoveries(), 2u);
    EXPECT_EQ(harness->workers.size(), 2u); // one replacement per kill
    // Checkpoints land at steps 4, 8, 12 and 16.
    EXPECT_EQ(stack.coordinator->checkpointsTaken(), 4u);
}

TEST_P(ShardRecoveryGolden, KilledWorkersRestoreBitIdenticalToUndisturbed)
{
    const auto [transport, tiles, fixedPoint] = GetParam();
    runRecoveryGolden(transport, tiles, fixedPoint,
                      /*linkageSkipThreshold=*/0.0);
}

TEST(ShardRecoveryLinkageSkim, NonzeroThresholdRestoresBitIdentical)
{
    runRecoveryGolden(ClusterTransport::UnixSocket, 4, false,
                      /*linkageSkipThreshold=*/1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShardRecoveryGolden,
    ::testing::Combine(::testing::Values(ClusterTransport::Loopback,
                                         ClusterTransport::UnixSocket,
                                         ClusterTransport::Tcp,
                                         ClusterTransport::Shm),
                       ::testing::Values(2, 4), ::testing::Bool()),
    [](const auto &info) {
        return std::string(transportName(std::get<0>(info.param))) +
               "Nt" + std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "Fixed" : "Float");
    });

class PipelinedShardRecoveryGolden
    : public ::testing::TestWithParam<
          std::tuple<ClusterTransport, int, bool>>
{};

TEST_P(PipelinedShardRecoveryGolden,
       KillsInsideTheInFlightWindowDrainDeterministically)
{
    const auto [transport, tiles, fixedPoint] = GetParam();
    const Index lanes = 4;
    DncConfig cfg = gridConfig(tiles, 1, fixedPoint);
    cfg.shardCheckpointIntervalSteps = 8; // lane-steps: every 2 rounds

    LocalLaneCluster cluster = makeLocalLaneCluster(
        transport, cfg, tiles, lanes, /*workerCount=*/2,
        MergePolicy::Confidence, /*wantWeightings=*/true);
    ASSERT_TRUE(cluster.group != nullptr);
    auto harness = armClusterRecovery(cluster, transport);

    std::vector<std::unique_ptr<DncD>> refs;
    for (Index lane = 0; lane < lanes; ++lane)
        refs.push_back(std::make_unique<DncD>(cfg, tiles));

    // Each round scatters two LaneStep frames per worker. Worker 1 dies
    // just before serving frame 7 (round 3's *first* batch — both
    // batches are then outstanding, so recovery must resend the whole
    // window); worker 0 dies before frame 12 (round 5's second batch,
    // after already answering the first — a mid-window kill).
    FaultSpec killA;
    killA.killAtStepFrame = 7;
    cluster.workers[1]->injectFault(killA);
    FaultSpec killB;
    killB.killAtStepFrame = 12;
    cluster.workers[0]->injectFault(killB);

    Rng rng(515 + tiles);
    std::vector<InterfaceVector> ifaces(lanes);
    const std::vector<Index> batchA = {0, 1};
    const std::vector<Index> batchB = {2, 3};
    std::vector<MemoryReadout> outs(lanes);
    for (int round = 0; round < 8; ++round) {
        if (round == 4) {
            // Mid-stream lane churn right between the kills: lane 1
            // recycles; its control frame joins the replay log.
            cluster.group->resetLane(1);
            refs[1]->reset();
        }
        for (Index lane = 0; lane < lanes; ++lane)
            ifaces[lane] = golden::randomIface(cfg, rng);
        cluster.group->scatter(batchA, {&ifaces[0], &ifaces[1]});
        cluster.group->scatter(batchB, {&ifaces[2], &ifaces[3]});
        cluster.group->gather({&outs[0], &outs[1]});
        cluster.group->gather({&outs[2], &outs[3]});
        for (Index lane = 0; lane < lanes; ++lane) {
            SCOPED_TRACE(::testing::Message()
                         << "lane " << lane << " round " << round);
            const MemoryReadout want =
                refs[lane]->stepInterface(ifaces[lane]);
            expectReadoutIdentical(want, outs[lane], round);
            ASSERT_EQ(refs[lane]->lastAlphas().size(),
                      cluster.group->laneAlphas(lane).size());
            for (Index h = 0; h < refs[lane]->lastAlphas().size(); ++h)
                EXPECT_EQ(refs[lane]->lastAlphas()[h],
                          cluster.group->laneAlphas(lane)[h]);
        }
        if (::testing::Test::HasFatalFailure())
            return;
    }

    EXPECT_TRUE(cluster.workers[0]->faultFired());
    EXPECT_TRUE(cluster.workers[1]->faultFired());
    EXPECT_EQ(cluster.group->recoveries(), 2u);
    EXPECT_EQ(harness->workers.size(), 2u);
    EXPECT_GE(cluster.group->checkpointsTaken(), 3u);
    EXPECT_EQ(cluster.group->inFlight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelinedShardRecoveryGolden,
    ::testing::Combine(::testing::Values(ClusterTransport::Loopback,
                                         ClusterTransport::UnixSocket,
                                         ClusterTransport::Tcp,
                                         ClusterTransport::Shm),
                       ::testing::Values(2, 4), ::testing::Bool()),
    [](const auto &info) {
        return std::string(transportName(std::get<0>(info.param))) +
               "Nt" + std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "Fixed" : "Float");
    });

// The full serving engine on a recovering fleet: a worker kill lands
// amid markDraining/release/admit lane churn and the pipelined
// double-buffered schedule, and every surviving lane still matches its
// dedicated reference bit for bit.
TEST(PipelinedEngineRecovery, KillSurvivesLaneChurnBitExactly)
{
    const Index tiles = 2;
    DncConfig cfg = gridConfig(tiles, 1, false);
    cfg.controllerSize = 20;
    cfg.inputSize = 9;
    cfg.outputSize = 7;
    cfg.batchSize = 3;
    cfg.shardCheckpointIntervalSteps = 6;
    const Index lanesPerBatch = 2;
    constexpr std::uint64_t kSeed = 77;

    LocalLaneCluster cluster =
        makeLocalLaneCluster(ClusterTransport::UnixSocket, cfg, tiles,
                             cfg.batchSize, /*workerCount=*/2);
    auto harness = armClusterRecovery(cluster,
                                      ClusterTransport::UnixSocket);
    PipelinedShardedLaneEngine engine(cfg, kSeed, cluster.group,
                                      lanesPerBatch);

    std::vector<std::unique_ptr<ShardedDnc>> refs;
    for (Index slot = 0; slot < cfg.batchSize; ++slot)
        refs.push_back(std::make_unique<ShardedDnc>(
            cfg, kSeed, std::make_unique<DncD>(cfg, tiles)));

    // Steps 0-5 send two LaneStep frames each (12), the churn window
    // 6-8 one each (15), step 9 two again — frame 17 kills worker 1 in
    // the second batch of the first post-readmit step.
    FaultSpec kill;
    kill.killAtStepFrame = 17;
    cluster.workers[1]->injectFault(kill);

    Rng rng(411 + tiles);
    std::vector<Vector> inputs(cfg.batchSize);
    std::vector<Vector> outputs;
    constexpr int kSteps = 16;
    for (int step = 0; step < kSteps; ++step) {
        if (step == 6) {
            engine.markDraining(1);
            engine.release(1);
        }
        if (step == 9) {
            const Index slot = engine.admit();
            ASSERT_EQ(slot, 1u);
            refs[1]->beginEpisode();
        }
        for (Index slot = 0; slot < cfg.batchSize; ++slot)
            inputs[slot] = rng.normalVector(cfg.inputSize);
        engine.stepInto(inputs, outputs);
        for (Index slot = 0; slot < cfg.batchSize; ++slot) {
            if (engine.laneState(slot) != LaneState::Active)
                continue;
            const Vector want = refs[slot]->step(inputs[slot]);
            ASSERT_TRUE(want == outputs[slot])
                << "lane " << slot << " diverged at step " << step;
        }
    }
    EXPECT_TRUE(cluster.workers[1]->faultFired());
    EXPECT_EQ(cluster.group->recoveries(), 1u);
    EXPECT_EQ(engine.group().inFlight(), 0u);
}

// Live migration on the synchronous coordinator: a tile slice moves to
// a fresh worker (even one on a *different* transport) between steps,
// with no respawner and no checkpoint cadence configured, and the run
// stays bit-identical throughout.
TEST(ShardMigration, CoordinatorMovesTileSlicesBetweenLiveWorkers)
{
    const Index tiles = 4;
    const DncConfig cfg = gridConfig(tiles, 1, false);
    LocalShardCluster stack =
        makeLocalCluster(ClusterTransport::UnixSocket, cfg, tiles, 2);
    DncD ref(cfg, tiles);

    Rng rng(808);
    MemoryReadout a, b;
    for (int step = 0; step < 12; ++step) {
        if (step == 5)
            stack.coordinator->migrateWorker(
                1, makeClusterWorker(ClusterTransport::UnixSocket,
                                     stack.workers, stack.threads));
        if (step == 8) // channels are transport-agnostic: move to TCP
            stack.coordinator->migrateWorker(
                0, makeClusterWorker(ClusterTransport::Tcp, stack.workers,
                                     stack.threads));
        const InterfaceVector iface = golden::randomIface(cfg, rng);
        ref.stepInterfaceInto(iface, a);
        stack.coordinator->stepInterfaceInto(iface, b);
        expectReadoutIdentical(a, b, step);
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_EQ(stack.coordinator->checkpointsTaken(), 2u);
    EXPECT_EQ(stack.coordinator->recoveries(), 0u);
}

// Mid-run scale-out and scale-in on the lane group: the fleet grows
// from 2 to 4 workers and later shrinks back, and every serving lane
// keeps matching its dedicated reference — zero dropped lanes.
TEST(ShardRescale, LaneGroupRedealsTilesMidRunWithZeroDroppedLanes)
{
    const Index tiles = 4;
    const Index lanes = 3;
    const DncConfig cfg = gridConfig(tiles, 1, false);
    LocalLaneCluster cluster = makeLocalLaneCluster(
        ClusterTransport::UnixSocket, cfg, tiles, lanes, /*workerCount=*/2,
        MergePolicy::Confidence, /*wantWeightings=*/true);

    std::vector<std::unique_ptr<DncD>> refs;
    for (Index lane = 0; lane < lanes; ++lane)
        refs.push_back(std::make_unique<DncD>(cfg, tiles));

    Rng rng(910);
    MemoryReadout got;
    for (int step = 0; step < 12; ++step) {
        if (step == 4) { // scale out: 2 -> 4 workers, one tile each
            std::vector<std::unique_ptr<Channel>> grown;
            for (int k = 0; k < 4; ++k)
                grown.push_back(
                    makeClusterWorker(ClusterTransport::UnixSocket,
                                      cluster.workers, cluster.threads));
            cluster.group->rescale(std::move(grown));
            EXPECT_EQ(cluster.group->channelCount(), 4u);
        }
        if (step == 9) { // scale back in: 4 -> 2 workers
            std::vector<std::unique_ptr<Channel>> shrunk;
            for (int k = 0; k < 2; ++k)
                shrunk.push_back(
                    makeClusterWorker(ClusterTransport::UnixSocket,
                                      cluster.workers, cluster.threads));
            cluster.group->rescale(std::move(shrunk));
            EXPECT_EQ(cluster.group->channelCount(), 2u);
        }
        for (Index lane = 0; lane < lanes; ++lane) {
            SCOPED_TRACE(::testing::Message()
                         << "lane " << lane << " step " << step);
            const InterfaceVector iface = golden::randomIface(cfg, rng);
            cluster.group->stepLaneInto(lane, iface, got);
            const MemoryReadout want = refs[lane]->stepInterface(iface);
            expectReadoutIdentical(want, got, step);
        }
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_EQ(cluster.group->checkpointsTaken(), 2u);
}

// --------------------------------------------------------------------
// Worker protocol edge cases.
// --------------------------------------------------------------------

/** Collects reply frames for direct handleFrame() calls. */
struct CollectSink final : FrameSink
{
    std::vector<std::vector<std::uint8_t>> frames;
    void
    sendFrame(const std::uint8_t *data, std::size_t size) override
    {
        frames.emplace_back(data, data + size);
    }
};

TEST(ShardWorkerProtocol, StepBeforeHelloIsAnError)
{
    ShardWorker worker;
    CollectSink sink;
    WireWriter w;
    Rng rng(1);
    const InterfaceVector iface =
        golden::randomIface(gridConfig(2, 1, false), rng);
    encodeStepBroadcast(1, false, 0, iface, 1, w);
    worker.handleFrame(w.buffer().data(), w.buffer().size(), sink);
    ASSERT_EQ(sink.frames.size(), 1u);
    MsgType type;
    ASSERT_TRUE(peekType(sink.frames[0].data(), sink.frames[0].size(),
                         type));
    EXPECT_EQ(type, MsgType::Error);
}

TEST(ShardWorkerProtocol, InvalidConfigIsRejectedInTheAck)
{
    ShardWorker worker;
    CollectSink sink;
    WireConfig bad; // zero shapes
    WireWriter w;
    encodeHello(bad, w);
    worker.handleFrame(w.buffer().data(), w.buffer().size(), sink);
    ASSERT_EQ(sink.frames.size(), 1u);
    HelloAckMsg ack;
    ASSERT_TRUE(decodeHelloAck(sink.frames[0].data(),
                               sink.frames[0].size(), ack));
    EXPECT_FALSE(ack.ok);
    EXPECT_FALSE(worker.configured());
}

TEST(ShardWorkerProtocol, MalformedFrameIsAnsweredWithError)
{
    ShardWorker worker;
    CollectSink sink;
    const std::uint8_t garbage[] = {0x00, 0x01, 0x02};
    EXPECT_TRUE(worker.handleFrame(garbage, sizeof(garbage), sink));
    ASSERT_EQ(sink.frames.size(), 1u);
    ErrorMsg err;
    EXPECT_TRUE(decodeError(sink.frames[0].data(), sink.frames[0].size(),
                            err));
}

TEST(ShardWorkerProtocol, LegacyStepOnAMultiLaneWorkerAnswersLaneZero)
{
    // A lanes>1 handshake followed by a legacy single-lane Step: the
    // reply must carry exactly hostedTiles readouts (lane 0), not the
    // whole lanes x hostedTiles scratch.
    const DncConfig cfg = gridConfig(2, 1, false);
    const DncConfig shard = shardConfigFor(cfg, 2);
    ShardWorker worker;
    CollectSink sink;
    WireWriter w;
    encodeHello(WireConfig::fromShard(shard, /*hostedTiles=*/2,
                                      /*lanes=*/3),
                w);
    worker.handleFrame(w.buffer().data(), w.buffer().size(), sink);
    ASSERT_EQ(sink.frames.size(), 1u);
    HelloAckMsg ack;
    ASSERT_TRUE(decodeHelloAck(sink.frames[0].data(),
                               sink.frames[0].size(), ack));
    ASSERT_TRUE(ack.ok);
    EXPECT_EQ(worker.lanes(), 3u);

    Rng rng(9);
    const InterfaceVector iface = golden::randomIface(shard, rng);
    encodeStepBroadcast(1, false, 0b1, iface, 2, w);
    worker.handleFrame(w.buffer().data(), w.buffer().size(), sink);
    ASSERT_EQ(sink.frames.size(), 2u);
    StepReplyMsg reply;
    ASSERT_TRUE(decodeStepReply(sink.frames[1].data(),
                                sink.frames[1].size(), shard,
                                /*hostedTiles=*/2, reply));
    EXPECT_EQ(reply.seq, 1u);
    EXPECT_EQ(reply.tiles.size(), 2u);
}

TEST(ShardWorkerProtocol, AdmitControlCountsEpisodes)
{
    const DncConfig cfg = gridConfig(2, 1, false);
    LoopbackShard stack = makeLoopbackShard(cfg, 2, 1);
    EXPECT_EQ(stack.workers[0]->episodesServed(), 0u);
    stack.coordinator->beginEpisode();
    stack.coordinator->beginEpisode();
    stack.coordinator->reset(); // EpisodeReset does not count
    EXPECT_EQ(stack.workers[0]->episodesServed(), 2u);
}

TEST(ShardWorkerProtocol, RejoinRecordsTheTileAssignment)
{
    const DncConfig cfg = gridConfig(4, 1, false);
    const DncConfig shard = shardConfigFor(cfg, 4);
    ShardWorker worker;
    CollectSink sink;
    WireWriter w;
    encodeRejoin(WireConfig::fromShard(shard, /*hostedTiles=*/2,
                                       /*lanes=*/3),
                 /*firstTile=*/2, w);
    worker.handleFrame(w.buffer().data(), w.buffer().size(), sink);
    ASSERT_EQ(sink.frames.size(), 1u);
    HelloAckMsg ack;
    ASSERT_TRUE(decodeHelloAck(sink.frames[0].data(),
                               sink.frames[0].size(), ack));
    ASSERT_TRUE(ack.ok);
    EXPECT_EQ(ack.hostedTiles, 2u);
    EXPECT_TRUE(worker.configured());
    EXPECT_EQ(worker.lanes(), 3u);
    EXPECT_EQ(worker.firstGlobalTile(), 2u);
}

TEST(ShardWorkerProtocol, CheckpointAndRestoreBeforeHelloAreErrors)
{
    ShardWorker worker;
    CollectSink sink;
    WireWriter w;
    encodeCheckpointRequest(1, w);
    worker.handleFrame(w.buffer().data(), w.buffer().size(), sink);
    encodeRestore(1, nullptr, 0, gridConfig(2, 1, false), w);
    worker.handleFrame(w.buffer().data(), w.buffer().size(), sink);
    ASSERT_EQ(sink.frames.size(), 2u);
    for (const auto &frame : sink.frames) {
        MsgType type;
        ASSERT_TRUE(peekType(frame.data(), frame.size(), type));
        EXPECT_EQ(type, MsgType::Error);
    }
    EXPECT_FALSE(worker.configured());
}

TEST(ShardFault, ScriptedKillSilencesTheWorkerAtTheExactFrame)
{
    // Protocol-level view of a kill: the worker answers step frames
    // normally until the scripted one, then plays dead — no reply, no
    // Error — exactly what a crashed process looks like to the
    // coordinator.
    const DncConfig cfg = gridConfig(2, 1, false);
    const DncConfig shard = shardConfigFor(cfg, 2);
    ShardWorker worker;
    CollectSink sink;
    WireWriter w;
    encodeHello(WireConfig::fromShard(shard, 2), w);
    ASSERT_TRUE(worker.handleFrame(w.buffer().data(), w.buffer().size(),
                                   sink));
    FaultSpec kill;
    kill.killAtStepFrame = 3;
    worker.injectFault(kill);

    Rng rng(13);
    for (std::uint64_t seq = 1; seq <= 4; ++seq) {
        const InterfaceVector iface = golden::randomIface(shard, rng);
        encodeStepBroadcast(seq, false, 0, iface, 2, w);
        const bool alive =
            worker.handleFrame(w.buffer().data(), w.buffer().size(), sink);
        EXPECT_EQ(alive, seq < 3) << "seq " << seq;
    }
    // Hello ack + the two steps served before the kill; nothing after.
    EXPECT_EQ(sink.frames.size(), 3u);
    EXPECT_TRUE(worker.faultFired());
}

// --------------------------------------------------------------------
// Zero-allocation steady state over loopback.
// --------------------------------------------------------------------

TEST(ShardZeroAlloc, SteadyStateLoopbackRoundTrip)
{
    const DncConfig cfg = serveCfg();
    ShardedDnc model(cfg, 9,
                     loopbackBackend(cfg, /*tiles=*/4, /*workers=*/2));
    Rng rng(606);
    std::vector<Vector> inputs;
    for (int i = 0; i < 8; ++i)
        inputs.push_back(rng.normalVector(cfg.inputSize));

    Vector out;
    model.stepInto(inputs[0], out); // sizes every buffer on both ends
    model.stepInto(inputs[1], out);
    model.stepInto(inputs[2], out);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 3; i < 8; ++i)
        model.stepInto(inputs[i], out);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state sharded step performed heap allocations "
           "(encode, decode, worker step, or merge path regressed)";
}

TEST(ShardZeroAlloc, SteadyStateShmRoundTrip)
{
    // The zero-copy transport must hold the same bar as loopback: once
    // ring slots and decode buffers are warm, a full scatter/gather
    // step over shared memory allocates nothing on either side of the
    // rings (the worker thread's allocations land in the same
    // process-wide counter).
    const DncConfig cfg = serveCfg();
    LocalShardCluster stack = makeLocalCluster(
        ClusterTransport::Shm, cfg, /*tiles=*/4, /*workerCount=*/2,
        MergePolicy::Confidence, /*wantWeightings=*/false);

    Rng rng(606);
    std::vector<InterfaceVector> ifaces;
    for (int i = 0; i < 8; ++i)
        ifaces.push_back(golden::randomIface(cfg, rng));

    MemoryReadout out;
    for (int i = 0; i < 3; ++i) // sizes every buffer on both ends
        stack.coordinator->stepInterfaceInto(ifaces[i], out);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 3; i < 8; ++i)
        stack.coordinator->stepInterfaceInto(ifaces[i], out);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state shm step performed heap allocations (in-place "
           "encode, slot borrow/release, worker step, or merge path "
           "regressed)";
}

TEST(ShardZeroAlloc, SteadyStatePipelinedEngineStep)
{
    DncConfig cfg = serveCfg();
    cfg.batchSize = 4;
    cfg.shardLanesPerBatch = 2; // two overlapped batches per step
    LocalLaneCluster cluster = makeLocalLaneCluster(
        ClusterTransport::Loopback, cfg, /*tiles=*/4, cfg.batchSize,
        /*workerCount=*/2);
    PipelinedShardedLaneEngine engine(cfg, 9, cluster.group);

    Rng rng(707);
    std::vector<std::vector<Vector>> inputs;
    for (int i = 0; i < 8; ++i) {
        inputs.emplace_back();
        for (Index lane = 0; lane < cfg.batchSize; ++lane)
            inputs.back().push_back(rng.normalVector(cfg.inputSize));
    }

    std::vector<Vector> outputs;
    engine.stepInto(inputs[0], outputs); // sizes every buffer, both ends
    engine.stepInto(inputs[1], outputs);
    engine.stepInto(inputs[2], outputs);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 3; i < 8; ++i)
        engine.stepInto(inputs[i], outputs);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state pipelined engine step performed heap "
           "allocations (lane-batched encode/decode, scatter window, "
           "worker lane step, or merge path regressed)";
}

TEST(ShardZeroAlloc, SteadyStateWithCheckpointingAndReplayLog)
{
    // Recovery armed with the tightest cadence: every counted window
    // spans multiple checkpoint pulls (CheckpointState frames, snapshot
    // decode, replay-log ring) and must still allocate nothing once the
    // rings are warm.
    DncConfig cfg = serveCfg();
    cfg.shardCheckpointIntervalSteps = 2;
    LocalShardCluster stack =
        makeLocalCluster(ClusterTransport::Loopback, cfg, /*tiles=*/4,
                         /*workerCount=*/2, MergePolicy::Confidence,
                         /*wantWeightings=*/false);
    auto harness = armClusterRecovery(stack, ClusterTransport::Loopback);

    Rng rng(606);
    std::vector<InterfaceVector> ifaces;
    for (int i = 0; i < 11; ++i)
        ifaces.push_back(golden::randomIface(cfg, rng));

    MemoryReadout out;
    for (int i = 0; i < 5; ++i) // warm: two full checkpoint intervals
        stack.coordinator->stepInterfaceInto(ifaces[i], out);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 5; i < 11; ++i)
        stack.coordinator->stepInterfaceInto(ifaces[i], out);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state step with checkpointing performed heap "
           "allocations (checkpoint encode/decode, snapshot store, "
           "pending-frame tracking, or replay-log ring regressed)";
    EXPECT_EQ(stack.coordinator->checkpointsTaken(), 5u);
}

TEST(ShardZeroAlloc, SteadyStatePipelinedEngineWithCheckpointing)
{
    DncConfig cfg = serveCfg();
    cfg.batchSize = 4;
    cfg.shardLanesPerBatch = 2;         // two overlapped batches per step
    cfg.shardCheckpointIntervalSteps = 8; // lane-steps: pull every 2 steps
    LocalLaneCluster cluster = makeLocalLaneCluster(
        ClusterTransport::Loopback, cfg, /*tiles=*/4, cfg.batchSize,
        /*workerCount=*/2);
    auto harness = armClusterRecovery(cluster, ClusterTransport::Loopback);
    PipelinedShardedLaneEngine engine(cfg, 9, cluster.group);

    Rng rng(707);
    std::vector<std::vector<Vector>> inputs;
    for (int i = 0; i < 9; ++i) {
        inputs.emplace_back();
        for (Index lane = 0; lane < cfg.batchSize; ++lane)
            inputs.back().push_back(rng.normalVector(cfg.inputSize));
    }

    std::vector<Vector> outputs;
    for (int i = 0; i < 4; ++i) // warm: two checkpoint pulls
        engine.stepInto(inputs[i], outputs);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (int i = 4; i < 9; ++i)
        engine.stepInto(inputs[i], outputs);
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state pipelined step with checkpointing performed "
           "heap allocations (lane-major checkpoint store, shared-frame "
           "replay log, or in-flight window tracking regressed)";
    EXPECT_GE(cluster.group->checkpointsTaken(), 4u);
}

} // namespace
} // namespace hima
