/**
 * @file
 * Tests for the Q16.16 fixed-point datapath type.
 */

#include <gtest/gtest.h>

#include "approx/fixed_point.h"
#include "common/random.h"

namespace hima {
namespace {

TEST(Fixed, RoundTripExactValues)
{
    EXPECT_EQ(Fix32::fromReal(0.0).toReal(), 0.0);
    EXPECT_EQ(Fix32::fromReal(1.0).toReal(), 1.0);
    EXPECT_EQ(Fix32::fromReal(-2.5).toReal(), -2.5);
    EXPECT_EQ(Fix32::fromReal(0.25).toReal(), 0.25);
}

TEST(Fixed, QuantizationErrorBounded)
{
    Rng rng(17);
    const Real res = Fix32::resolution();
    for (int i = 0; i < 1000; ++i) {
        const Real v = rng.uniform(-100.0, 100.0);
        EXPECT_NEAR(Fix32::fromReal(v).toReal(), v, res / 2 + 1e-12);
    }
}

TEST(Fixed, Arithmetic)
{
    const Fix32 a = Fix32::fromReal(3.5);
    const Fix32 b = Fix32::fromReal(-1.25);
    EXPECT_EQ((a + b).toReal(), 2.25);
    EXPECT_EQ((a - b).toReal(), 4.75);
    EXPECT_EQ((a * b).toReal(), -4.375);
    // -2.8 is not exactly representable in binary Q16.16.
    EXPECT_NEAR((a / b).toReal(), -2.8, Fix32::resolution());
    EXPECT_EQ((-a).toReal(), -3.5);
}

TEST(Fixed, SaturatesInsteadOfWrapping)
{
    const Fix32 big = Fix32::fromReal(32000.0);
    const Fix32 sum = big + big;
    EXPECT_EQ(sum.raw(), Fix32::rawMax);
    EXPECT_GT(sum.toReal(), 32000.0);

    const Fix32 neg = Fix32::fromReal(-32000.0);
    EXPECT_EQ((neg + neg).raw(), Fix32::rawMin);
    EXPECT_EQ((big * big).raw(), Fix32::rawMax);
}

TEST(Fixed, FromRealSaturates)
{
    EXPECT_EQ(Fix32::fromReal(1e12).raw(), Fix32::rawMax);
    EXPECT_EQ(Fix32::fromReal(-1e12).raw(), Fix32::rawMin);
}

TEST(Fixed, Comparison)
{
    EXPECT_LT(Fix32::fromReal(1.0), Fix32::fromReal(2.0));
    EXPECT_EQ(Fix32::fromReal(0.5), Fix32::fromReal(0.5));
    EXPECT_GT(Fix32::fromReal(-1.0), Fix32::fromReal(-2.0));
}

TEST(Fixed, OtherFormats)
{
    using Q8 = Fixed<8, 8>;
    EXPECT_EQ(Q8::fromReal(1.5).toReal(), 1.5);
    EXPECT_EQ(Q8::resolution(), 1.0 / 256.0);
    // Q8.8 saturates around +-128.
    EXPECT_LT(Q8::fromReal(1000.0).toReal(), 129.0);
}

TEST(Quantize, VectorAndMatrix)
{
    Rng rng(23);
    const Vector v = rng.normalVector(64);
    const Vector qv = quantize(v);
    ASSERT_EQ(qv.size(), v.size());
    for (Index i = 0; i < v.size(); ++i)
        EXPECT_NEAR(qv[i], v[i], Fix32::resolution());

    const Matrix m = rng.normalMatrix(8, 8);
    const Matrix qm = quantize(m);
    for (Index i = 0; i < m.size(); ++i)
        EXPECT_NEAR(qm.data()[i], m.data()[i], Fix32::resolution());
}

/** Property: fixed-point multiply error stays within 2 ulp for small
 * operands. */
class FixedMulError : public ::testing::TestWithParam<int>
{};

TEST_P(FixedMulError, BoundedError)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 400);
    for (int i = 0; i < 200; ++i) {
        const Real a = rng.uniform(-8.0, 8.0);
        const Real b = rng.uniform(-8.0, 8.0);
        const Real got = (Fix32::fromReal(a) * Fix32::fromReal(b)).toReal();
        EXPECT_NEAR(got, a * b, 16.0 * Fix32::resolution());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedMulError, ::testing::Range(0, 5));

} // namespace
} // namespace hima
