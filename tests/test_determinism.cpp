/**
 * @file
 * Seed-determinism regression suite: the same Random seed must produce
 * the identical trajectory, run to run, for every engine — Dnc, DncD
 * (sequential and pooled) and BatchedDnc. Every stochastic choice in the
 * library flows through the seeded Rng, so any divergence here means a
 * hidden source of nondeterminism (uninitialized state, iteration over
 * an unordered container, a data race) crept into a hot path.
 */

#include <gtest/gtest.h>

#include "dnc/dncd.h"
#include "golden_util.h"

namespace hima {
namespace {

DncConfig
smallConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 40;
    cfg.memoryWidth = 12;
    cfg.readHeads = 2;
    cfg.controllerSize = 24;
    cfg.inputSize = 10;
    cfg.outputSize = 8;
    return cfg;
}

TEST(Determinism, RngStreamsAreReproducible)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next(), b.next()) << "draw " << i;
    EXPECT_TRUE(a.normalVector(64) == b.normalVector(64));
    EXPECT_TRUE(a.normalMatrix(8, 8) == b.normalMatrix(8, 8));
    EXPECT_EQ(a.permutation(32), b.permutation(32));
}

TEST(Determinism, DncTrajectoryReproduces)
{
    const DncConfig cfg = smallConfig();
    Dnc first(cfg, 71);
    Dnc second(cfg, 71);
    Rng inputsA(5), inputsB(5);
    for (int step = 0; step < 12; ++step) {
        const Vector ya = first.step(inputsA.normalVector(cfg.inputSize));
        const Vector yb = second.step(inputsB.normalVector(cfg.inputSize));
        ASSERT_TRUE(ya == yb) << "step " << step;
    }
    EXPECT_TRUE(first.memory().memory() == second.memory().memory());
    EXPECT_TRUE(first.memory().usage() == second.memory().usage());
    EXPECT_TRUE(first.controller().lstm().hidden() ==
                second.controller().lstm().hidden());
}

TEST(Determinism, DncSeedActuallyMatters)
{
    // Guard against a silent "seed ignored" regression making the test
    // above vacuous.
    const DncConfig cfg = smallConfig();
    Dnc a(cfg, 71), b(cfg, 72);
    Rng inputs(5);
    const Vector token = inputs.normalVector(cfg.inputSize);
    EXPECT_FALSE(a.step(token) == b.step(token));
}

class DeterminismDncd : public ::testing::TestWithParam<int>
{};

TEST_P(DeterminismDncd, TrajectoryReproducesAtAnyThreadCount)
{
    DncConfig cfg = smallConfig();
    cfg.numThreads = static_cast<Index>(GetParam());
    DncD first(cfg, 4);
    DncD second(cfg, 4);
    Rng ifaceA(9), ifaceB(9);
    for (int step = 0; step < 10; ++step) {
        const MemoryReadout ra =
            first.stepInterface(golden::randomIface(cfg, ifaceA));
        const MemoryReadout rb =
            second.stepInterface(golden::randomIface(cfg, ifaceB));
        for (Index h = 0; h < cfg.readHeads; ++h)
            ASSERT_TRUE(ra.readVectors[h] == rb.readVectors[h])
                << "step " << step << " head " << h;
        ASSERT_EQ(first.lastAlphas(), second.lastAlphas()) << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Threads, DeterminismDncd, ::testing::Values(1, 4));

TEST(Determinism, BatchedDncTrajectoryReproduces)
{
    DncConfig cfg = smallConfig();
    cfg.batchSize = 5;
    BatchedDnc first(cfg, 77);
    BatchedDnc second(cfg, 77);
    Rng inputsA(13), inputsB(13);
    std::vector<Vector> ya, yb;
    for (int step = 0; step < 10; ++step) {
        first.stepInto(golden::randomBatchInputs(cfg, cfg.batchSize, inputsA),
                       ya);
        second.stepInto(golden::randomBatchInputs(cfg, cfg.batchSize, inputsB),
                        yb);
        for (Index b = 0; b < cfg.batchSize; ++b)
            ASSERT_TRUE(ya[b] == yb[b]) << "step " << step << " lane " << b;
    }
    for (Index b = 0; b < cfg.batchSize; ++b) {
        EXPECT_TRUE(first.laneMemory(b).memory() ==
                    second.laneMemory(b).memory());
        EXPECT_TRUE(first.laneHidden(b) == second.laneHidden(b));
    }
}

/**
 * Apply a fixed admit/evict schedule to an engine while stepping it,
 * returning every Active-lane output of every step in slot order. Two
 * engines given the same seed and schedule must produce identical logs.
 */
std::vector<Vector>
runChurnSchedule(const DncConfig &cfg, std::uint64_t weightSeed,
                 std::uint64_t inputSeed)
{
    BatchedDnc engine(cfg, weightSeed);
    Rng inputs(inputSeed);
    std::vector<Vector> in(cfg.batchSize), out;
    std::vector<Vector> log;

    // The schedule: (step, action, slot) triples, slot -1 = admit.
    struct ChurnOp
    {
        int step;
        enum { Release, Drain, Admit } action;
        Index slot;
    };
    const ChurnOp schedule[] = {
        {0, ChurnOp::Release, 1}, {1, ChurnOp::Drain, 3},
        {2, ChurnOp::Release, 3}, {2, ChurnOp::Admit, 0},
        {4, ChurnOp::Admit, 0},   {5, ChurnOp::Release, 0},
        {6, ChurnOp::Drain, 2},   {7, ChurnOp::Release, 2},
        {7, ChurnOp::Admit, 0},   {9, ChurnOp::Admit, 0},
    };

    for (int step = 0; step < 12; ++step) {
        for (const ChurnOp &op : schedule) {
            if (op.step != step)
                continue;
            if (op.action == ChurnOp::Release)
                engine.release(op.slot);
            else if (op.action == ChurnOp::Drain)
                engine.markDraining(op.slot);
            else
                engine.admit();
        }
        for (Index slot = 0; slot < cfg.batchSize; ++slot)
            if (engine.laneState(slot) == LaneState::Active)
                in[slot] = inputs.normalVector(cfg.inputSize);
        engine.stepInto(in, out);
        for (Index slot = 0; slot < cfg.batchSize; ++slot)
            if (engine.laneState(slot) == LaneState::Active)
                log.push_back(out[slot]);
    }
    return log;
}

TEST(Determinism, LaneChurnScheduleReproduces)
{
    // Same seed + same admit/evict schedule => identical trajectory,
    // run to run.
    DncConfig cfg = smallConfig();
    cfg.batchSize = 5;
    const auto first = runChurnSchedule(cfg, 91, 19);
    const auto second = runChurnSchedule(cfg, 91, 19);
    ASSERT_EQ(first.size(), second.size());
    ASSERT_FALSE(first.empty());
    for (Index i = 0; i < first.size(); ++i)
        ASSERT_TRUE(first[i] == second[i]) << "log entry " << i;
}

TEST(Determinism, LaneChurnScheduleThreadCountInvariant)
{
    // The same schedule at 1 and 4 threads must walk the identical
    // trajectory: lifecycle compaction happens on the calling thread,
    // and the sweeps never split a lane's reduction across workers.
    DncConfig seq = smallConfig();
    seq.batchSize = 5;
    seq.numThreads = 1;
    DncConfig par = seq;
    par.numThreads = 4;
    const auto a = runChurnSchedule(seq, 91, 19);
    const auto b = runChurnSchedule(par, 91, 19);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (Index i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i] == b[i]) << "log entry " << i;
}

TEST(Determinism, BatchedDncThreadCountDoesNotChangeTrajectory)
{
    // Scheduling lanes across the pool must be invisible in the numbers:
    // a 1-thread and a 4-thread engine walk identical trajectories.
    DncConfig seq = smallConfig();
    seq.batchSize = 6;
    seq.numThreads = 1;
    DncConfig par = seq;
    par.numThreads = 4;

    BatchedDnc a(seq, 81);
    BatchedDnc b(par, 81);
    Rng inputsA(17), inputsB(17);
    std::vector<Vector> ya, yb;
    for (int step = 0; step < 8; ++step) {
        a.stepInto(golden::randomBatchInputs(seq, seq.batchSize, inputsA),
                   ya);
        b.stepInto(golden::randomBatchInputs(par, par.batchSize, inputsB),
                   yb);
        for (Index lane = 0; lane < seq.batchSize; ++lane)
            ASSERT_TRUE(ya[lane] == yb[lane])
                << "step " << step << " lane " << lane;
    }
}

} // namespace
} // namespace hima
