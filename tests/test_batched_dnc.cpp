/**
 * @file
 * Bit-exactness proof for the batched serving engine: every lane of a
 * BatchedDnc must match an independent reference Dnc run — outputs and
 * complete per-lane state, compared with exact double equality — for
 * every combination of batch size, thread count and datapath mode, plus
 * the feature knobs that change the memory-unit fast path
 * (writeSkipThreshold, usage skimming, approximate softmax).
 */

#include <tuple>

#include <gtest/gtest.h>

#include "golden_util.h"

namespace hima {
namespace {

DncConfig
tinyConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 40;
    cfg.memoryWidth = 12;
    cfg.readHeads = 2;
    cfg.controllerSize = 24;
    cfg.inputSize = 10;
    cfg.outputSize = 8;
    return cfg;
}

// --------------------------------------------------------------------
// The B x threads x datapath sweep from the issue:
// B in {1,2,7,16} x threads in {1,4} x {float, fixed-point}.
// --------------------------------------------------------------------

class BatchedDncBitExact
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{};

TEST_P(BatchedDncBitExact, LanesMatchSequentialReference)
{
    const auto [batch, threads, fixedPoint] = GetParam();
    DncConfig cfg = tinyConfig();
    cfg.fixedPoint = fixedPoint;
    golden::runLockstep(cfg, static_cast<Index>(batch),
                        static_cast<Index>(threads), 8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BatchedDncBitExact,
    ::testing::Combine(::testing::Values(1, 2, 7, 16),
                       ::testing::Values(1, 4), ::testing::Bool()),
    [](const auto &info) {
        return "B" + std::to_string(std::get<0>(info.param)) + "T" +
               std::to_string(std::get<1>(info.param)) +
               (std::get<2>(info.param) ? "Fixed" : "Float");
    });

// --------------------------------------------------------------------
// Feature knobs that alter the memory-unit hot path.
// --------------------------------------------------------------------

TEST(BatchedDnc, WriteSkipThresholdStaysBitIdentical)
{
    DncConfig cfg = tinyConfig();
    cfg.writeSkipThreshold = 1e-6;
    golden::runLockstep(cfg, 5, 4, 8, /*weightSeed=*/3, /*inputSeed=*/31);
}

TEST(BatchedDnc, UsageSkimmingStaysBitIdentical)
{
    DncConfig cfg = tinyConfig();
    cfg.skimRate = 0.25;
    golden::runLockstep(cfg, 3, 2, 8, /*weightSeed=*/5, /*inputSeed=*/51);
}

TEST(BatchedDnc, ApproximateSoftmaxStaysBitIdentical)
{
    DncConfig cfg = tinyConfig();
    cfg.approximateSoftmax = true;
    golden::runLockstep(cfg, 4, 1, 6, /*weightSeed=*/7, /*inputSeed=*/71);
}

TEST(BatchedDnc, LinkageSkipThresholdStaysBitIdentical)
{
    DncConfig cfg = tinyConfig();
    cfg.linkageSkipThreshold = 1e-6;
    golden::runLockstep(cfg, 5, 4, 8, /*weightSeed=*/9, /*inputSeed=*/41);
}

TEST(BatchedDnc, LinkageSkipChurnStaysBitIdentical)
{
    // Admit/release churn with the linkage approximation on: every
    // admit's episode reset must clear the lane's active-row set, and
    // the row-mass compare inside expectLaneStateIdentical pins each
    // lane's skip decisions to its sequential reference every step.
    DncConfig cfg = tinyConfig();
    cfg.linkageSkipThreshold = 1e-6;
    golden::runChurnLockstep(cfg, /*capacity=*/5, /*threads=*/2, 14,
                             /*weightSeed=*/21, /*churnSeed=*/9,
                             /*inputSeed=*/61);
}

TEST(BatchedDnc, BeyondOneLaneChunkStaysBitIdentical)
{
    // B=70 crosses the kBatchLaneChunk=64 boundary of the SoA sweeps:
    // lanes 64..69 run through the second accumulator chunk (b0 > 0),
    // which no B <= 64 case ever touches.
    static_assert(kBatchLaneChunk == 64, "revisit the batch size below");
    DncConfig cfg = tinyConfig();
    cfg.memoryRows = 16;
    cfg.controllerSize = 12;
    golden::runLockstep(cfg, 70, 2, 3, /*weightSeed=*/19, /*inputSeed=*/23,
                        /*stateEvery=*/0); // outputs every step, state last
}

TEST(BatchedDnc, LargerShapesSpotCheck)
{
    DncConfig cfg;
    cfg.memoryRows = 128;
    cfg.memoryWidth = 32;
    cfg.readHeads = 4;
    cfg.controllerSize = 64;
    cfg.inputSize = 32;
    cfg.outputSize = 32;
    golden::runLockstep(cfg, 4, 4, 4, /*weightSeed=*/11, /*inputSeed=*/13,
                        /*stateEvery=*/0); // outputs every step, state last
}

// --------------------------------------------------------------------
// Behavioral checks that don't need the reference model.
// --------------------------------------------------------------------

TEST(BatchedDnc, ResetRestartsEveryLane)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 3;
    BatchedDnc engine(cfg, 17);
    Rng rng(23);

    // Record a trajectory from fresh state, reset, replay: identical.
    const std::vector<Vector> inputs =
        golden::randomBatchInputs(cfg, cfg.batchSize, rng);
    const std::vector<Vector> first = engine.step(inputs);
    engine.step(golden::randomBatchInputs(cfg, cfg.batchSize, rng));
    engine.reset();
    const std::vector<Vector> replay = engine.step(inputs);
    for (Index b = 0; b < cfg.batchSize; ++b)
        EXPECT_TRUE(first[b] == replay[b]) << "lane " << b;
}

TEST(BatchedDnc, AdmitResetClearsLinkageActivity)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 2;
    cfg.numThreads = 1;
    BatchedDnc engine(cfg, 17);
    Rng rng(5);

    // Fresh lanes start with no active linkage rows.
    EXPECT_EQ(engine.laneMemory(0).linkage().activeRowCount(), 0u);

    std::vector<Vector> outputs;
    for (int step = 0; step < 6; ++step)
        engine.stepInto(golden::randomBatchInputs(cfg, cfg.batchSize, rng),
                        outputs);
    // Full-DNC traffic (softmax content weighting) activates rows.
    EXPECT_GT(engine.laneMemory(0).linkage().activeRowCount(), 0u);

    // Release + re-admit: the in-place episode reset must leave the
    // lane indistinguishable from a fresh one — no active rows, no
    // cached mass, a bit-zero matrix.
    engine.release(0);
    const Index slot = engine.admit();
    ASSERT_EQ(slot, 0u);
    const TemporalLinkage &tl = engine.laneMemory(slot).linkage();
    EXPECT_EQ(tl.activeRowCount(), 0u);
    EXPECT_DOUBLE_EQ(tl.rowMass().sum(), 0.0);
    const Matrix zeros(cfg.memoryRows, cfg.memoryRows);
    EXPECT_TRUE(tl.linkage() == zeros);
}

TEST(BatchedDnc, LanesAreIndependent)
{
    DncConfig cfg = tinyConfig();
    cfg.batchSize = 2;
    BatchedDnc engine(cfg, 29);
    Rng rng(37);

    // Distinct inputs must produce distinct per-lane trajectories (the
    // lanes share weights, not state).
    std::vector<Vector> outputs;
    for (int step = 0; step < 3; ++step)
        outputs =
            engine.step(golden::randomBatchInputs(cfg, cfg.batchSize, rng));
    EXPECT_FALSE(outputs[0] == outputs[1]);

    // Identical inputs on every lane must produce identical lanes.
    BatchedDnc uniform(cfg, 29);
    const Vector token = rng.normalVector(cfg.inputSize);
    std::vector<Vector> same(cfg.batchSize, token);
    for (int step = 0; step < 3; ++step)
        outputs = uniform.step(same);
    EXPECT_TRUE(outputs[0] == outputs[1]);
}

TEST(BatchedDnc, BatchSizeOneMatchesDncExactly)
{
    // The degenerate batch: a one-lane engine is a drop-in Dnc.
    golden::runLockstep(tinyConfig(), 1, 1, 10, /*weightSeed=*/41,
                        /*inputSeed=*/43);
}

} // namespace
} // namespace hima
