/**
 * @file
 * Tests for the HiMA engine: timing sanity, feature ablations (two-stage
 * sort, HiMA-NoC, submatrix partition, DNC-D), area model calibration and
 * power-model behaviour — the machinery behind Figs. 11 and 12.
 */

#include <gtest/gtest.h>

#include "arch/baselines.h"
#include "arch/engine.h"

namespace hima {
namespace {

TEST(Engine, StepCoversAllKernelCategories)
{
    HimaEngine engine(himaDncConfig(16));
    const StepTiming step = engine.simulateStep();
    EXPECT_GT(step.totalCycles, 0u);
    for (int c = 0; c < static_cast<int>(KernelCategory::NumCategories);
         ++c) {
        EXPECT_GT(step.categoryCycles(static_cast<KernelCategory>(c)), 0u)
            << categoryName(static_cast<KernelCategory>(c));
    }
}

TEST(Engine, Deterministic)
{
    HimaEngine a(himaDncConfig(16));
    HimaEngine b(himaDncConfig(16));
    EXPECT_EQ(a.simulateStep().totalCycles, b.simulateStep().totalCycles);
}

TEST(Engine, TwoStageSortBeatsCentralized)
{
    ArchConfig with = himaDncConfig(16);
    ArchConfig without = himaDncConfig(16);
    without.twoStageSort = false;
    HimaEngine ew(with), ewo(without);
    EXPECT_LT(ew.simulateStep().totalCycles,
              ewo.simulateStep().totalCycles);
}

TEST(Engine, HimaNocBeatsHTree)
{
    ArchConfig hima = himaDncConfig(16);
    ArchConfig htree = himaDncConfig(16);
    htree.noc = NocKind::HTree;
    HimaEngine eh(hima), et(htree);
    EXPECT_LT(eh.simulateStep().totalCycles,
              et.simulateStep().totalCycles);
}

TEST(Engine, SubmatrixLinkagePartitionBeatsRowWise)
{
    ArchConfig sub = himaDncConfig(16); // 4x4 linkage partition
    ArchConfig row = himaDncConfig(16);
    row.linkPartition = Partition::rowWise(16);
    HimaEngine es(sub), er(row);
    EXPECT_LT(es.simulateStep().totalCycles,
              er.simulateStep().totalCycles);
}

TEST(Engine, DncDMuchFasterThanDnc)
{
    HimaEngine dnc(himaDncConfig(16));
    HimaEngine dncd(himaDncDConfig(16));
    const Cycle cDnc = dnc.simulateStep().totalCycles;
    const Cycle cDncd = dncd.simulateStep().totalCycles;
    // Fig. 11(a): DNC-D delivers a multi-x jump (8.3x over baseline).
    EXPECT_GT(cDnc, 3 * cDncd);
}

TEST(Engine, FullFeatureLadderIsMonotone)
{
    // Fig. 11(a): baseline -> +2-stage -> +NoC -> +submat -> DNC-D must
    // be monotonically faster.
    ArchConfig baseline = himaBaselineConfig(16);

    ArchConfig sorted = baseline;
    sorted.twoStageSort = true;

    ArchConfig noc = sorted;
    noc.noc = NocKind::Hima;
    noc.multiModeRouting = true;

    ArchConfig submat = noc;
    submat.linkPartition = optimizeLinkagePartition(1024, 16);

    ArchConfig dncd = submat;
    dncd.distributed = true;

    Cycle prev = HimaEngine(baseline).simulateStep().totalCycles;
    for (const ArchConfig &cfg : {sorted, noc, submat, dncd}) {
        const Cycle cur = HimaEngine(cfg).simulateStep().totalCycles;
        EXPECT_LT(cur, prev);
        prev = cur;
    }
}

TEST(Engine, SkimmingSpeedsUpSort)
{
    ArchConfig plain = himaDncDConfig(16);
    ArchConfig skim = himaDncDConfig(16);
    skim.dnc.skimRate = 0.2;
    HimaEngine ep(plain), es(skim);
    EXPECT_LE(es.simulateStep().totalCycles,
              ep.simulateStep().totalCycles);
}

TEST(Engine, DncDHasAlmostNoRouterEnergy)
{
    HimaEngine dnc(himaDncConfig(16));
    HimaEngine dncd(himaDncDConfig(16));
    const StepTiming a = dnc.simulateStep();
    const StepTiming b = dncd.simulateStep();
    // Sec. 7.3: DNC-D cuts 98.4% of router power; our model must show a
    // dramatic drop too (interface broadcast + read gather only).
    EXPECT_LT(b.moduleEnergy.ptRouterJ, 0.2 * a.moduleEnergy.ptRouterJ);
}

// --------------------------------------------------------------------
// Area model (Fig. 11(e))
// --------------------------------------------------------------------

TEST(Area, FootprintMatchesPaperSizes)
{
    const TileMemoryFootprint fp = tileMemoryFootprint(himaDncConfig(16));
    EXPECT_NEAR(fp.extKb, 16.0, 0.5);      // "16.4 KB external"
    EXPECT_NEAR(fp.linkageKb, 256.0, 8.0); // "262 KB linkage"
    EXPECT_LT(fp.smallStateKb, 4.0);       // "multiple 256 B memories"
}

TEST(Area, DncDLinkageShrinksQuadratically)
{
    const TileMemoryFootprint dnc = tileMemoryFootprint(himaDncConfig(16));
    const TileMemoryFootprint dncd =
        tileMemoryFootprint(himaDncDConfig(16));
    EXPECT_NEAR(dncd.linkageKb * 16.0, dnc.linkageKb, 1.0);
}

TEST(Area, CalibratedNearPaperNumbers)
{
    HimaEngine engine(himaDncConfig(16));
    const AreaReport area = engine.area();
    // Paper Fig. 11(e): PT 5.01, PT mem 2.07, CT 0.52, total 80.69 mm^2.
    EXPECT_NEAR(area.ptMemMm2, 2.07, 0.25);
    EXPECT_NEAR(area.ptMm2, 5.01, 0.50);
    EXPECT_NEAR(area.ctMm2, 0.52, 0.10);
    EXPECT_NEAR(area.totalMm2, 80.69, 8.0);
}

TEST(Area, DncDSmallerThanDnc)
{
    const AreaReport dnc = HimaEngine(himaDncConfig(16)).area();
    const AreaReport dncd = HimaEngine(himaDncDConfig(16)).area();
    EXPECT_LT(dncd.ptMm2, dnc.ptMm2);
    EXPECT_LT(dncd.ctMm2, dnc.ctMm2);
    EXPECT_LT(dncd.totalMm2, dnc.totalMm2);
}

TEST(Area, GrowsLinearlyWithTiles)
{
    const Real a4 = HimaEngine(himaDncConfig(4)).area().totalMm2;
    const Real a8 = HimaEngine(himaDncConfig(8)).area().totalMm2;
    const Real a16 = HimaEngine(himaDncConfig(16)).area().totalMm2;
    // PT area repeats; only the shrinking per-tile linkage breaks exact
    // linearity.
    EXPECT_GT(a8, a4);
    EXPECT_GT(a16, a8);
}

// --------------------------------------------------------------------
// Power model
// --------------------------------------------------------------------

TEST(Power, DncDCheaperThanDnc)
{
    HimaEngine dnc(himaDncConfig(16));
    HimaEngine dncd(himaDncDConfig(16));
    EXPECT_LT(dncd.power().totalW, dnc.power().totalW);
}

TEST(Power, CategoriesSumToDynamic)
{
    HimaEngine engine(himaDncConfig(16));
    const PowerReport p = engine.power();
    Real catSum = 0.0;
    for (Real w : p.categoryW)
        catSum += w;
    EXPECT_NEAR(catSum, p.dynamicW, 0.25 * p.dynamicW + 1e-9);
    EXPECT_GT(p.totalW, p.dynamicW);
}

// --------------------------------------------------------------------
// Baselines / records
// --------------------------------------------------------------------

TEST(Baselines, AnchorsMatchPaperRelations)
{
    const PlatformRecord gpu = gpuRecord();
    const PlatformRecord cpu = cpuRecord();
    const PlatformRecord farm = farmRecord();
    const PlatformRecord manna = mannaRecord();

    // CPU is 2.12x slower than GPU.
    EXPECT_NEAR(cpu.inferenceUsPerTest / gpu.inferenceUsPerTest, 2.12,
                0.02);
    // Farm is ~68.5x faster than the GPU.
    EXPECT_NEAR(gpu.inferenceUsPerTest / farm.inferenceUsPerTest, 68.5,
                1.0);
    // MANNA normalized area ~ 11x Farm.
    EXPECT_NEAR(normalizedArea(manna, 40.0) / farm.areaMm2, 11.0, 1.0);
    // MANNA power ~ 32x Farm.
    EXPECT_NEAR(manna.powerW / farm.powerW, 32.0, 1.0);
}

TEST(Baselines, HimaRecordIsMeasured)
{
    HimaEngine engine(himaDncConfig(16));
    const PlatformRecord rec = himaRecord("HiMA-DNC", engine);
    EXPECT_GT(rec.inferenceUsPerTest, 0.0);
    EXPECT_NEAR(rec.areaMm2, engine.area().totalMm2, 1e-9);
    EXPECT_EQ(rec.techNm, 40.0);
}

TEST(GpuModel, HistoryWriteDominates)
{
    // Build a profile with the paper's op mix and check the Fig. 4 GPU
    // shape: history-based write weighting must dominate the runtime.
    KernelProfiler prof;
    prof.at(Kernel::Retention).elementOps = 8192;
    prof.at(Kernel::Usage).elementOps = 4096;
    prof.at(Kernel::UsageSort).compareOps = 10240;
    prof.at(Kernel::Allocation).elementOps = 2048;
    prof.at(Kernel::Linkage).elementOps = 4ull * 1024 * 1024;
    prof.at(Kernel::ForwardBackward).macOps = 8ull * 1024 * 1024;
    prof.at(Kernel::Normalize).macOps = 5ull * 65536;
    prof.at(Kernel::Similarity).macOps = 5ull * 65536;
    prof.at(Kernel::MemoryWrite).elementOps = 4ull * 65536;
    prof.at(Kernel::MemoryRead).macOps = 4ull * 65536;
    prof.at(Kernel::Lstm).macOps = 743000;

    GpuKernelModel model;
    const auto secs = model.categorySeconds(prof);
    Real total = 0.0;
    for (Real s : secs)
        total += s;
    const Real histWr =
        secs[static_cast<int>(KernelCategory::HistoryWrite)];
    const Real histRd = secs[static_cast<int>(KernelCategory::HistoryRead)];
    EXPECT_GT(histWr / total, 0.5);  // paper: 72%
    EXPECT_LT(histRd / total, 0.25); // paper: 9%
}

} // namespace
} // namespace hima
