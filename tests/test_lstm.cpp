/**
 * @file
 * Tests for the LSTM cell and the DNC controller heads.
 */

#include <gtest/gtest.h>

#include "dnc/controller.h"

namespace hima {
namespace {

TEST(Lstm, ShapesAndDeterminism)
{
    Rng r1(42), r2(42);
    LstmCell a(8, 16, r1);
    LstmCell b(8, 16, r2);
    Rng input(1);
    for (int i = 0; i < 5; ++i) {
        const Vector x = input.normalVector(8);
        const Vector ha = a.step(x);
        const Vector hb = b.step(x);
        ASSERT_EQ(ha.size(), 16u);
        EXPECT_EQ(ha, hb);
    }
}

TEST(Lstm, HiddenStateBounded)
{
    Rng rng(7);
    LstmCell cell(4, 32, rng);
    Rng input(2);
    for (int i = 0; i < 100; ++i) {
        const Vector h = cell.step(input.normalVector(4, 0.0, 5.0));
        for (Index k = 0; k < h.size(); ++k) {
            EXPECT_GE(h[k], -1.0);
            EXPECT_LE(h[k], 1.0);
        }
    }
}

TEST(Lstm, StatePersistsAcrossSteps)
{
    Rng rng(3);
    LstmCell cell(4, 8, rng);
    const Vector x(4, 0.5);
    const Vector h1 = cell.step(x);
    const Vector h2 = cell.step(x);
    // Same input, different state -> different output.
    EXPECT_NE(h1, h2);

    cell.reset();
    const Vector h1again = cell.step(x);
    EXPECT_EQ(h1, h1again);
}

TEST(Lstm, MacsPerStepFormula)
{
    Rng rng(4);
    LstmCell cell(10, 20, rng);
    EXPECT_EQ(cell.macsPerStep(), 4ull * 20 * (10 + 20 + 1));
}

TEST(Lstm, ProfilerCharged)
{
    Rng rng(5);
    LstmCell cell(4, 8, rng);
    KernelProfiler prof;
    cell.step(Vector(4, 0.1), &prof);
    EXPECT_EQ(prof.at(Kernel::Lstm).macOps, cell.macsPerStep());
    EXPECT_EQ(prof.at(Kernel::Lstm).invocations, 1u);
}

TEST(Controller, EmitsValidInterface)
{
    DncConfig cfg;
    cfg.memoryRows = 32;
    cfg.memoryWidth = 8;
    cfg.readHeads = 2;
    cfg.controllerSize = 24;
    cfg.inputSize = 6;
    cfg.outputSize = 6;

    Rng rng(6);
    Controller ctrl(cfg, rng);
    std::vector<Vector> reads(cfg.readHeads, Vector(cfg.memoryWidth));
    Rng input(7);
    for (int i = 0; i < 5; ++i) {
        const InterfaceVector iface =
            ctrl.step(input.normalVector(cfg.inputSize), reads);
        validateInterface(iface, cfg); // dies on any violated constraint
    }
}

TEST(Controller, OutputShapeAndDeterminism)
{
    DncConfig cfg;
    cfg.memoryRows = 32;
    cfg.memoryWidth = 8;
    cfg.readHeads = 2;
    cfg.controllerSize = 16;
    cfg.inputSize = 4;
    cfg.outputSize = 10;

    Rng r1(8), r2(8);
    Controller a(cfg, r1), b(cfg, r2);
    std::vector<Vector> reads(cfg.readHeads, Vector(cfg.memoryWidth, 0.3));
    a.step(Vector(cfg.inputSize, 0.1), reads);
    b.step(Vector(cfg.inputSize, 0.1), reads);
    const Vector ya = a.output(reads);
    const Vector yb = b.output(reads);
    ASSERT_EQ(ya.size(), 10u);
    EXPECT_EQ(ya, yb);
}

} // namespace
} // namespace hima
