/**
 * @file
 * Tests for the traffic generators' stream-sharing semantics: tree
 * multicast, in-network reduction, and their interaction with the
 * router-crossbar transit limit.
 */

#include <gtest/gtest.h>

#include "noc/traffic.h"

namespace hima {
namespace {

TEST(StreamSharing, MulticastBeatsUnicastBroadcast)
{
    const Topology topo = Topology::build(NocKind::Hima, 16);
    Network net(topo);
    const Cycle unicast =
        net.run(broadcast(topo, 64, 0), NocMode::Full).makespan;
    const Cycle multicast =
        net.run(broadcast(topo, 64, 7), NocMode::Full).makespan;
    // Unicast serializes 16 x 64 flits at the CT injection port; the
    // multicast streams once and replicates at branch routers.
    EXPECT_LT(3 * multicast, unicast);
}

TEST(StreamSharing, ReductionBeatsUnicastGather)
{
    const Topology topo = Topology::build(NocKind::Hima, 16);
    Network net(topo);
    const Cycle unicast =
        net.run(gather(topo, 64, 0), NocMode::Full).makespan;
    const Cycle reduced =
        net.run(gather(topo, 64, 9), NocMode::Full).makespan;
    EXPECT_LT(3 * reduced, unicast);
}

TEST(StreamSharing, GroupsDoNotMixAcrossIds)
{
    const Topology topo = Topology::build(NocKind::Mesh, 8);
    Network net(topo);
    // Two distinct broadcast groups must both reserve resources: the
    // makespan is larger than a single group's.
    auto one = broadcast(topo, 32, 1);
    const Cycle single = net.run(one, NocMode::Full).makespan;

    Network net2(topo);
    auto two = broadcast(topo, 32, 1);
    for (Message &m : broadcast(topo, 32, 2))
        two.push_back(m);
    const Cycle both = net2.run(two, NocMode::Full).makespan;
    EXPECT_GT(both, single);
}

TEST(StreamSharing, SharedFlitHopsChargedOnce)
{
    const Topology topo = Topology::build(NocKind::Star, 8);
    Network net(topo);
    // Star: CT -> PT is one hop each, 8 distinct links; a multicast
    // reserves each exactly once -> 8 * flits flit-hops, same as
    // unicast here (no shared links), but on a tree sharing shows up.
    const Topology tree = Topology::build(NocKind::HTree, 8);
    Network netTree(tree);
    const auto uni = netTree.run(broadcast(tree, 16, 0), NocMode::Full);
    Network netTree2(tree);
    const auto multi = netTree2.run(broadcast(tree, 16, 3), NocMode::Full);
    EXPECT_LT(multi.flitHops, uni.flitHops)
        << "multicast must not re-send on shared tree links";
}

TEST(RouterCapacity, TransitLimitCongestsHub)
{
    // Inter-PT traffic through a star hub serializes on the hub's
    // crossbar; a fatter crossbar relieves it.
    const Topology topo = Topology::build(NocKind::Star, 16);
    Network narrow(topo, 1);
    Network wide(topo, 64);
    const auto batch = allToAll(topo, 16);
    const Cycle slowHub = narrow.run(batch, NocMode::Full).makespan;
    const Cycle fastHub = wide.run(batch, NocMode::Full).makespan;
    EXPECT_GT(slowHub, fastHub);
}

TEST(RouterCapacity, EndpointsDontPayTransit)
{
    // A single one-hop message never transits an intermediate router,
    // so capacity must not affect it.
    const Topology topo = Topology::build(NocKind::Star, 4);
    const NodeId pt = topo.processingNodes()[0];
    Network narrow(topo, 1);
    Network wide(topo, 64);
    const std::vector<Message> one = {{topo.controllerNode(), pt, 32, 0,
                                       {}, 0}};
    EXPECT_EQ(narrow.run(one, NocMode::Full).makespan,
              wide.run(one, NocMode::Full).makespan);
}

TEST(Traffic, RingAccumulateDependsInChain)
{
    const Topology topo = Topology::build(NocKind::Hima, 9);
    const auto chain = ringAccumulate(topo, 4);
    ASSERT_EQ(chain.size(), 8u);
    EXPECT_TRUE(chain[0].dependsOn.empty());
    for (Index i = 1; i < chain.size(); ++i) {
        ASSERT_EQ(chain[i].dependsOn.size(), 1u);
        EXPECT_EQ(chain[i].dependsOn[0], i - 1);
    }
}

TEST(Traffic, GatherBroadcastDependencyArity)
{
    const Topology topo = Topology::build(NocKind::Mesh, 6);
    const auto batch = gatherBroadcast(topo, 2, 2);
    // 6 gathers then 6 broadcasts each depending on all 6 gathers.
    ASSERT_EQ(batch.size(), 12u);
    for (Index i = 6; i < 12; ++i)
        EXPECT_EQ(batch[i].dependsOn.size(), 6u);
}

class AllKindsTraffic : public ::testing::TestWithParam<NocKind>
{};

TEST_P(AllKindsTraffic, EveryPatternCompletesEverywhere)
{
    const Topology topo = Topology::build(GetParam(), 12);
    Network net(topo);
    for (const auto &batch :
         {broadcast(topo, 4, 1), gather(topo, 4, 2),
          gatherBroadcast(topo, 4, 4, 3, 4), ringAccumulate(topo, 4),
          allToAll(topo, 2), transposePairs(topo, 4)}) {
        if (batch.empty())
            continue;
        const TrafficResult res = net.run(batch, NocMode::Full);
        for (const Delivery &d : res.deliveries)
            EXPECT_GE(d.delivered, d.injected);
        EXPECT_GT(res.makespan, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllKindsTraffic,
                         ::testing::Values(NocKind::HTree,
                                           NocKind::BinaryTree,
                                           NocKind::Mesh, NocKind::Star,
                                           NocKind::Ring, NocKind::Hima));

} // namespace
} // namespace hima
