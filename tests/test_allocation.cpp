/**
 * @file
 * Tests for the allocation weighting (HW.(3)) and its sorter backends.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "dnc/allocation.h"
#include "sort/two_stage_sort.h"

namespace hima {
namespace {

TEST(Allocation, LeastUsedSlotWins)
{
    Vector u{0.9, 0.1, 0.8, 0.5};
    const Vector wa = allocationWeighting(u);
    EXPECT_EQ(wa.argmax(), 1u);
    EXPECT_NEAR(wa[1], 0.9, 1e-12); // (1 - 0.1) * empty product
}

TEST(Allocation, KnownClosedForm)
{
    // Sorted ascending: u = [0.1, 0.5, 0.8, 0.9] at indices [1,3,2,0].
    Vector u{0.9, 0.1, 0.8, 0.5};
    const Vector wa = allocationWeighting(u);
    EXPECT_NEAR(wa[1], (1 - 0.1), 1e-12);
    EXPECT_NEAR(wa[3], (1 - 0.5) * 0.1, 1e-12);
    EXPECT_NEAR(wa[2], (1 - 0.8) * 0.1 * 0.5, 1e-12);
    EXPECT_NEAR(wa[0], (1 - 0.9) * 0.1 * 0.5 * 0.8, 1e-12);
}

TEST(Allocation, AllFreeGivesOneHotAtFirst)
{
    const Vector u(8, 0.0);
    const Vector wa = allocationWeighting(u);
    EXPECT_NEAR(wa[0], 1.0, 1e-12);
    for (Index i = 1; i < 8; ++i)
        EXPECT_NEAR(wa[i], 0.0, 1e-12);
}

TEST(Allocation, AllUsedGivesNearZero)
{
    const Vector u(8, 1.0);
    const Vector wa = allocationWeighting(u);
    for (Index i = 0; i < 8; ++i)
        EXPECT_NEAR(wa[i], 0.0, 1e-12);
}

/** Invariant: allocation weights are a sub-distribution. */
class AllocationInvariant : public ::testing::TestWithParam<int>
{};

TEST_P(AllocationInvariant, SubDistribution)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 50);
    const Vector u = rng.uniformVector(64);
    const Vector wa = allocationWeighting(u);
    Real sum = 0.0;
    for (Index i = 0; i < wa.size(); ++i) {
        EXPECT_GE(wa[i], 0.0);
        EXPECT_LE(wa[i], 1.0);
        sum += wa[i];
    }
    EXPECT_LE(sum, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationInvariant,
                         ::testing::Range(0, 10));

TEST(Allocation, HardwareSorterMatchesReference)
{
    Rng rng(77);
    const Vector u = rng.uniformVector(256);

    const Vector ref = allocationWeighting(u, referenceUsageSort);

    TwoStageSorter hw(256, 4);
    UsageSortFn hwSort = [&hw](const std::vector<SortRecord> &recs,
                               SortOrder order) {
        return hw.sort(recs, order);
    };
    const Vector viaHw = allocationWeighting(u, hwSort);

    for (Index i = 0; i < u.size(); ++i)
        EXPECT_NEAR(ref[i], viaHw[i], 1e-12);
}

TEST(Allocation, SkimmingZerosDroppedSlots)
{
    Vector u{0.0, 0.0, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8};
    // Skim the 2 smallest (indices 0, 1): allocation must go to idx 2.
    const Vector wa = allocationWeighting(u, referenceUsageSort, 2);
    EXPECT_EQ(wa[0], 0.0);
    EXPECT_EQ(wa[1], 0.0);
    EXPECT_EQ(wa.argmax(), 2u);
}

TEST(Allocation, SkimmingIsHarmlessWhenManySlotsFree)
{
    // Many zero-usage slots: skimming a few still leaves a free slot as
    // the winner — the paper's "little effect" regime.
    Vector u(32, 0.0);
    u[0] = 0.9;
    const Vector noSkim = allocationWeighting(u);
    const Vector skim = allocationWeighting(u, referenceUsageSort, 4);
    EXPECT_NEAR(skim.max(), noSkim.max(), 1e-9);
    // Winner is still a zero-usage slot.
    EXPECT_EQ(u[skim.argmax()], 0.0);
}

TEST(Allocation, SkimmingForcesOverwriteUnderPressure)
{
    // All slots lightly used except one nearly-free: skimming it forces
    // allocation onto a more-used slot (the accuracy cost of Fig. 10).
    Vector u(8, 0.5);
    u[4] = 0.01;
    const Vector skim = allocationWeighting(u, referenceUsageSort, 1);
    EXPECT_EQ(skim[4], 0.0);
    EXPECT_NE(skim.argmax(), 4u);
}

TEST(Allocation, ProfilerChargesSortAndAllocation)
{
    KernelProfiler prof;
    Rng rng(9);
    const Vector u = rng.uniformVector(64);
    TwoStageSorter hw(64, 4);
    UsageSortFn hwSort = [&hw](const std::vector<SortRecord> &recs,
                               SortOrder order) {
        return hw.sort(recs, order);
    };
    allocationWeighting(u, hwSort, 0, &prof);
    EXPECT_EQ(prof.at(Kernel::UsageSort).invocations, 1u);
    EXPECT_GT(prof.at(Kernel::UsageSort).compareOps, 0u);
    EXPECT_EQ(prof.at(Kernel::Allocation).elementOps, 2u * 64);
}

} // namespace
} // namespace hima
