/**
 * @file
 * Tests for the unified telemetry layer: histogram bucket/percentile
 * edges, registry sharding and snapshot merges, trace-ring wraparound
 * and the balanced Chrome-JSON export (with a real parse gate), the
 * StatsPull/StatsReport wire pair, the fleet scrape over every local
 * transport, and the zero-allocation steady-state contract with
 * metrics and tracing both live.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "golden_util.h"
#include "obs/obs.h"
#include "shard/local_cluster.h"
#include "shard/wire.h"

// --------------------------------------------------------------------
// Global operator-new hook (same shape as test_tensor_inplace's): the
// zero-allocation assertions read the counter delta around steady-
// state telemetry writes.
// --------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocationCount{0};
}

void *
operator new(std::size_t size)
{
    g_allocationCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_allocationCount.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + a - 1) / a * a;
    if (void *p = std::aligned_alloc(a, rounded ? rounded : a))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace hima {
namespace {

/** Every test leaves the process at the library defaults. */
struct TelemetryGuard
{
    ~TelemetryGuard()
    {
        obs::setMetricsEnabled(true);
        obs::setTracingEnabled(false);
    }
};

// --------------------------------------------------------------------
// Histogram buckets and percentiles.
// --------------------------------------------------------------------

TEST(HistogramBuckets, FirstEightAreExact)
{
    for (std::uint64_t v = 0; v < 8; ++v) {
        EXPECT_EQ(obs::histogramBucket(v), v);
        EXPECT_EQ(obs::histogramBucketUpperBound(
                      obs::histogramBucket(v)),
                  v);
    }
}

TEST(HistogramBuckets, MonotoneAndInverse)
{
    unsigned last = 0;
    for (std::uint64_t v = 1; v != 0 && v < (1ull << 62); v = v * 3 + 1) {
        const unsigned b = obs::histogramBucket(v);
        EXPECT_GE(b, last);
        last = b;
        ASSERT_LT(b, obs::kHistogramBuckets);
        // The bucket's upper bound bounds the sample...
        EXPECT_GE(obs::histogramBucketUpperBound(b), v);
        // ...within the documented 12.5% log-bucket width.
        EXPECT_LE(static_cast<double>(obs::histogramBucketUpperBound(b)),
                  static_cast<double>(v) * 1.125 + 1.0);
        // And the upper bound itself maps back to the same bucket.
        EXPECT_EQ(obs::histogramBucket(obs::histogramBucketUpperBound(b)),
                  b);
    }
    EXPECT_LT(obs::histogramBucket(~0ull), obs::kHistogramBuckets);
}

TEST(HistogramStats, EmptyPercentileIsZero)
{
    obs::HistogramStats h;
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramStats, SingleSampleClampsToExactMax)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(true);
    obs::Histogram hist;
    hist.record(1000);
    obs::HistogramStats h;
    hist.read(h);
    EXPECT_EQ(h.count, 1u);
    EXPECT_EQ(h.sum, 1000u);
    EXPECT_EQ(h.max, 1000u);
    // The log bucket's upper bound exceeds 1000; the clamp to the
    // exact observed max makes every quantile exact here.
    EXPECT_EQ(h.percentile(0.5), 1000u);
    EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(HistogramStats, ExactBucketQuantiles)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(true);
    obs::Histogram hist;
    for (std::uint64_t v = 0; v < 8; ++v)
        hist.record(v); // one sample per exact bucket
    obs::HistogramStats h;
    hist.read(h);
    EXPECT_EQ(h.count, 8u);
    // Nearest rank: ceil(q * 8) samples; cumulative hits rank r at
    // bucket r-1 (one sample per bucket, values 0..7).
    EXPECT_EQ(h.percentile(0.125), 0u);
    EXPECT_EQ(h.percentile(0.5), 3u);
    EXPECT_EQ(h.percentile(1.0), 7u);
    EXPECT_EQ(h.max, 7u);
}

TEST(HistogramStats, LogBucketQuantileWithin12Percent)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(true);
    obs::Histogram hist;
    hist.record(1000);
    hist.record(2000);
    obs::HistogramStats h;
    hist.read(h);
    const std::uint64_t p50 = h.percentile(0.5);
    EXPECT_GE(p50, 1000u);
    EXPECT_LE(static_cast<double>(p50), 1000.0 * 1.125 + 1.0);
    EXPECT_EQ(h.percentile(1.0), 2000u);
}

TEST(HistogramStats, MergeSumsBucketsAndKeepsMax)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(true);
    obs::Histogram a, b;
    a.record(10);
    a.record(500);
    b.record(100000);
    obs::HistogramStats ha, hb;
    a.read(ha);
    b.read(hb);
    ha.merge(hb);
    EXPECT_EQ(ha.count, 3u);
    EXPECT_EQ(ha.sum, 100510u);
    EXPECT_EQ(ha.max, 100000u);
    EXPECT_EQ(ha.percentile(1.0), 100000u);
}

// --------------------------------------------------------------------
// Registry, sharded counters, snapshot merge.
// --------------------------------------------------------------------

TEST(Registry, HandlesAreStableAndDeduped)
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &a = reg.counter("test.obs.dedup");
    obs::Counter &b = reg.counter("test.obs.dedup");
    EXPECT_EQ(&a, &b);
}

TEST(Registry, SnapshotIsSortedAndFindable)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(true);
    obs::Registry &reg = obs::Registry::instance();
    reg.counter("test.obs.sorted.b").add(2);
    reg.counter("test.obs.sorted.a").add(1);
    reg.gauge("test.obs.sorted.g").set(-5);
    obs::Snapshot snap;
    reg.snapshot(snap);
    for (std::size_t i = 1; i < snap.entries.size(); ++i)
        EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
    const obs::SnapshotEntry *a = snap.find("test.obs.sorted.a");
    ASSERT_NE(a, nullptr);
    EXPECT_GE(a->counter, 1u);
    const obs::SnapshotEntry *g = snap.find("test.obs.sorted.g");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->gauge, -5);
    EXPECT_EQ(snap.find("test.obs.absent"), nullptr);
}

TEST(Registry, CounterShardsMergeAcrossThreads)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(true);
    obs::Counter &counter =
        obs::Registry::instance().counter("test.obs.mt_counter");
    const std::uint64_t before = counter.total();
    constexpr int kThreads = 8;
    constexpr std::uint64_t kAdds = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < kAdds; ++i)
                counter.add();
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(counter.total() - before, kThreads * kAdds);
}

TEST(Snapshot, MergeSumsCountersGaugesHistograms)
{
    obs::Snapshot a, b;
    a.addCounter("c", 3);
    a.addGauge("g", 4);
    obs::HistogramStats h1;
    h1.count = 1;
    h1.sum = 10;
    h1.max = 10;
    h1.buckets[obs::histogramBucket(10)] = 1;
    a.addHistogram("h", h1);

    b.addCounter("c", 5);
    b.addCounter("only_b", 7);
    b.addGauge("g", -1);
    obs::HistogramStats h2;
    h2.count = 2;
    h2.sum = 60;
    h2.max = 40;
    h2.buckets[obs::histogramBucket(20)] = 1;
    h2.buckets[obs::histogramBucket(40)] = 1;
    b.addHistogram("h", h2);

    a.merge(b);
    EXPECT_EQ(a.find("c")->counter, 8u);
    EXPECT_EQ(a.find("only_b")->counter, 7u);
    EXPECT_EQ(a.find("g")->gauge, 3);
    EXPECT_EQ(a.find("h")->hist.count, 3u);
    EXPECT_EQ(a.find("h")->hist.sum, 70u);
    EXPECT_EQ(a.find("h")->hist.max, 40u);
}

TEST(Snapshot, DisabledMetricsRecordNothing)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(false);
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &counter = reg.counter("test.obs.disabled");
    obs::Histogram &hist = reg.histogram("test.obs.disabled_hist");
    const std::uint64_t before = counter.total();
    counter.add(100);
    hist.record(42);
    EXPECT_EQ(counter.total(), before);
    obs::HistogramStats h;
    hist.read(h);
    EXPECT_EQ(h.count, 0u);
}

TEST(Prometheus, RenderContainsSeries)
{
    obs::Snapshot snap;
    snap.addCounter("test.render.count", 9);
    snap.addGauge("test.render.level", -2);
    obs::HistogramStats h;
    h.count = 1;
    h.sum = 5;
    h.max = 5;
    h.buckets[obs::histogramBucket(5)] = 1;
    snap.addHistogram("test.render.lat", h);
    std::string text;
    obs::renderPrometheus(snap, text);
    EXPECT_NE(text.find("hima_test_render_count 9"), std::string::npos);
    EXPECT_NE(text.find("hima_test_render_level -2"), std::string::npos);
    EXPECT_NE(text.find("hima_test_render_lat_count 1"),
              std::string::npos);
}

// --------------------------------------------------------------------
// Trace rings, wraparound, balanced Chrome-JSON export.
// --------------------------------------------------------------------

/**
 * Minimal JSON well-formedness parser (objects, arrays, strings with
 * escapes, numbers, literals). The export gate: the emitted trace
 * must parse, not merely look balanced.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s_(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing '"'
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_)
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        return true;
    }

    char
    peek() const
    {
        return pos_ < s_.size() ? s_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1))
        ++count;
    return count;
}

TEST(Trace, ExportIsValidJsonWithNestedSpans)
{
    TelemetryGuard guard;
    obs::setTracingEnabled(true);
    obs::traceReset();
    {
        obs::TraceSpan outer("test.trace.outer", 1);
        obs::traceInstant("test.trace.marker", 7);
        {
            obs::TraceSpan inner("test.trace.inner", 2);
        }
    }
    obs::setTracingEnabled(false);
    std::string json;
    obs::traceExportJson(json);
    EXPECT_TRUE(JsonParser(json).parse()) << json;
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""),
              countOccurrences(json, "\"ph\":\"E\""));
    EXPECT_EQ(countOccurrences(json, "test.trace.outer"), 2u);
    EXPECT_EQ(countOccurrences(json, "test.trace.inner"), 2u);
    EXPECT_EQ(countOccurrences(json, "test.trace.marker"), 1u);
}

TEST(Trace, RingWraparoundKeepsExportBalanced)
{
    TelemetryGuard guard;
    obs::traceReset();
    // A fresh thread gets a fresh ring at the current capacity; the
    // main thread's ring (created at default capacity by other tests)
    // holds nothing after the reset above.
    obs::setTraceCapacity(16);
    obs::setTracingEnabled(true);
    std::thread emitter([] {
        for (int i = 0; i < 100; ++i) {
            obs::TraceSpan span("test.trace.wrap",
                                static_cast<std::uint64_t>(i));
        }
    });
    emitter.join();
    obs::setTracingEnabled(false);
    obs::setTraceCapacity(4096);

    std::string json;
    obs::traceExportJson(json);
    EXPECT_TRUE(JsonParser(json).parse()) << json;
    const std::size_t begins = countOccurrences(json, "\"ph\":\"B\"");
    const std::size_t ends = countOccurrences(json, "\"ph\":\"E\"");
    EXPECT_EQ(begins, ends);
    // The 16-slot ring holds at most 8 whole spans; wraparound must
    // not fabricate more, and the surviving window must be the tail.
    EXPECT_LE(begins, 8u);
    EXPECT_GT(begins, 0u);
    EXPECT_NE(json.find("\"arg\":99"), std::string::npos);
    EXPECT_EQ(json.find("\"arg\":0,"), std::string::npos);
}

TEST(Trace, OrphanedEndFromWraparoundIsDropped)
{
    TelemetryGuard guard;
    obs::traceReset();
    obs::setTraceCapacity(4);
    obs::setTracingEnabled(true);
    std::thread emitter([] {
        obs::traceBegin("test.trace.orphan_outer");
        // 4 instants push the outer begin off the 4-slot ring...
        for (int i = 0; i < 4; ++i)
            obs::traceInstant("test.trace.orphan_tick");
        // ...so this end has no begin in the ring.
        obs::traceEnd("test.trace.orphan_outer");
    });
    emitter.join();
    obs::setTracingEnabled(false);
    obs::setTraceCapacity(4096);

    std::string json;
    obs::traceExportJson(json);
    EXPECT_TRUE(JsonParser(json).parse()) << json;
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"B\""), 0u);
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"E\""), 0u);
    EXPECT_GT(countOccurrences(json, "\"ph\":\"i\""), 0u);
}

TEST(Trace, DisabledSpansRecordNothing)
{
    TelemetryGuard guard;
    obs::setTracingEnabled(false);
    obs::traceReset();
    {
        obs::TraceSpan span("test.trace.disabled");
        obs::traceInstant("test.trace.disabled_tick");
    }
    std::string json;
    obs::traceExportJson(json);
    EXPECT_EQ(json.find("test.trace.disabled"), std::string::npos);
}

TEST(Trace, ConfigKnobsLand)
{
    TelemetryGuard guard;
    DncConfig cfg;
    cfg.telemetryMetrics = false;
    cfg.telemetryTracing = true;
    obs::applyTelemetryConfig(cfg);
    EXPECT_FALSE(obs::metricsEnabled());
    EXPECT_TRUE(obs::tracingEnabled());
}

// --------------------------------------------------------------------
// StatsPull/StatsReport wire pair.
// --------------------------------------------------------------------

TEST(StatsWire, PeekTypeAcceptsScrapeFrames)
{
    // Regression: peekType's upper bound must include the v5 scrape
    // pair, or workers reject every StatsPull as malformed.
    WireWriter writer;
    encodeStatsPull(3, writer);
    MsgType type;
    ASSERT_TRUE(
        peekType(writer.buffer().data(), writer.buffer().size(), type));
    EXPECT_EQ(type, MsgType::StatsPull);

    obs::Snapshot snap;
    snap.addCounter("x", 1);
    encodeStatsReport(4, snap, writer);
    ASSERT_TRUE(
        peekType(writer.buffer().data(), writer.buffer().size(), type));
    EXPECT_EQ(type, MsgType::StatsReport);
}

TEST(StatsWire, ReportRoundTripsEveryKind)
{
    obs::Snapshot snap;
    snap.addCounter("a.counter", 41);
    snap.addGauge("b.gauge", -17);
    obs::HistogramStats h;
    h.count = 3;
    h.sum = 1234;
    h.max = 1000;
    h.buckets[obs::histogramBucket(10)] = 2;
    h.buckets[obs::histogramBucket(1000)] = 1;
    snap.addHistogram("c.hist", h);

    WireWriter writer;
    encodeStatsReport(99, snap, writer);
    obs::Snapshot decoded;
    std::uint64_t seq = 0;
    ASSERT_TRUE(decodeStatsReport(writer.buffer().data(),
                                  writer.buffer().size(), decoded, seq));
    EXPECT_EQ(seq, 99u);
    ASSERT_EQ(decoded.entries.size(), 3u);
    EXPECT_EQ(decoded.find("a.counter")->counter, 41u);
    EXPECT_EQ(decoded.find("b.gauge")->gauge, -17);
    const obs::SnapshotEntry *hist = decoded.find("c.hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->hist.count, 3u);
    EXPECT_EQ(hist->hist.sum, 1234u);
    EXPECT_EQ(hist->hist.max, 1000u);
    EXPECT_EQ(hist->hist.buckets[obs::histogramBucket(10)], 2u);

    // Truncation at every byte must fail closed, never crash.
    for (std::size_t cut = 0; cut < writer.buffer().size(); ++cut) {
        obs::Snapshot partial;
        std::uint64_t s = 0;
        EXPECT_FALSE(
            decodeStatsReport(writer.buffer().data(), cut, partial, s));
    }
}

// --------------------------------------------------------------------
// Fleet scrape over every local transport.
// --------------------------------------------------------------------

class FleetScrape : public ::testing::TestWithParam<ClusterTransport>
{};

TEST_P(FleetScrape, AggregatesWorkerRegistries)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(true);
    DncConfig cfg;
    cfg.memoryRows = 32; // per-tile rows after the split
    cfg.memoryWidth = 12;
    cfg.readHeads = 2;
    const Index tiles = 2;
    const Index workers = 2;
    LocalShardCluster cluster =
        makeLocalCluster(GetParam(), cfg, tiles, workers);

    Rng rng(5);
    const int kSteps = 3;
    for (int i = 0; i < kSteps; ++i)
        cluster.coordinator->stepInterface(golden::randomIface(cfg, rng));

    std::vector<obs::Snapshot> perWorker;
    obs::Snapshot fleet;
    cluster.coordinator->scrapeWorkers(perWorker, fleet);

    ASSERT_EQ(perWorker.size(), workers);
    for (const obs::Snapshot &report : perWorker) {
        const obs::SnapshotEntry *steps =
            report.find("worker.steps_served");
        ASSERT_NE(steps, nullptr);
        EXPECT_EQ(steps->counter, static_cast<std::uint64_t>(kSteps));
    }
    EXPECT_EQ(fleet.find("worker.steps_served")->counter,
              static_cast<std::uint64_t>(workers * kSteps));
    EXPECT_EQ(fleet.find("worker.hosted_tiles")->gauge,
              static_cast<std::int64_t>(tiles));

    // The coordinator folds its own wire counters into the fleet view.
    bool sawWireTx = false;
    for (const obs::SnapshotEntry &e : fleet.entries)
        if (e.name.rfind("shard.wire.tx.", 0) == 0)
            sawWireTx = true;
    EXPECT_TRUE(sawWireTx);

    // A second scrape still answers (seq advances, transport stays up).
    cluster.coordinator->scrapeWorkers(perWorker, fleet);
    EXPECT_EQ(fleet.find("worker.steps_served")->counter,
              static_cast<std::uint64_t>(workers * kSteps));
}

INSTANTIATE_TEST_SUITE_P(Transports, FleetScrape,
                         ::testing::Values(ClusterTransport::Loopback,
                                           ClusterTransport::UnixSocket,
                                           ClusterTransport::Tcp,
                                           ClusterTransport::Shm));

// --------------------------------------------------------------------
// Zero-allocation steady state with metrics and tracing both live.
// --------------------------------------------------------------------

TEST(ObsZeroAlloc, SteadyStateWritesNeverAllocate)
{
    TelemetryGuard guard;
    obs::setMetricsEnabled(true);
    obs::setTracingEnabled(true);

    // One-time costs up front: registration allocates, the thread's
    // trace ring is created on its first event, and traceNowNanos
    // initializes its timebase.
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &counter = reg.counter("test.obs.zero_alloc.counter");
    obs::Gauge &gauge = reg.gauge("test.obs.zero_alloc.gauge");
    obs::Histogram &hist = reg.histogram("test.obs.zero_alloc.hist");
    {
        obs::TraceSpan warmup("test.obs.zero_alloc.warmup");
        obs::traceInstant("test.obs.zero_alloc.tick");
    }
    counter.add();
    gauge.set(1);
    hist.record(1);

    const std::uint64_t before =
        g_allocationCount.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        counter.add();
        gauge.set(static_cast<std::int64_t>(i));
        hist.record(i * 37);
        obs::TraceSpan span("test.obs.zero_alloc.span", i);
        obs::traceInstant("test.obs.zero_alloc.tick", i);
    }
    const std::uint64_t after =
        g_allocationCount.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before)
        << "steady-state telemetry writes performed heap allocations";
}

} // namespace
} // namespace hima
