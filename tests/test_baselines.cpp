/**
 * @file
 * Tests for the comparison-point models (Farm, MANNA, GPU, CPU) and the
 * technology-normalization helpers behind Fig. 12.
 */

#include <gtest/gtest.h>

#include "arch/baselines.h"

namespace hima {
namespace {

TEST(Records, TechnologyNormalizationIsQuadratic)
{
    PlatformRecord rec{"x", 1.0, 100.0, 1.0, 20.0, 0};
    EXPECT_DOUBLE_EQ(normalizedArea(rec, 40.0), 400.0);
    EXPECT_DOUBLE_EQ(normalizedArea(rec, 20.0), 100.0);
    EXPECT_DOUBLE_EQ(normalizedArea(rec, 10.0), 25.0);
}

TEST(Records, AnchorsInternallyConsistent)
{
    // The anchors must reproduce the relations the paper states, since
    // Fig. 12's ratios are derived from them (see baselines.cpp).
    const PlatformRecord farm = farmRecord();
    const PlatformRecord manna = mannaRecord();
    const PlatformRecord gpu = gpuRecord();

    // "Farm achieves a 68.5x faster speed over the GPU."
    EXPECT_NEAR(gpu.inferenceUsPerTest / farm.inferenceUsPerTest, 68.5,
                0.7);
    // "MANNA ... achieves a similar speedup as Farm."
    EXPECT_NEAR(manna.inferenceUsPerTest / farm.inferenceUsPerTest, 1.0,
                0.05);
    // "it costs 11x area and 32x power to support 20x larger external
    //  memory than Farm."
    EXPECT_NEAR(normalizedArea(manna, 40.0) / farm.areaMm2, 11.0, 0.5);
    EXPECT_NEAR(manna.powerW / farm.powerW, 32.0, 0.5);
    EXPECT_EQ(manna.memoryRows / farm.memoryRows, 20u);
}

TEST(Records, HimaBaselineAreaRatioVsFarm)
{
    // "HiMA-baseline ... using only 3.16x the area of Farm" with a 4x
    // larger external memory.
    HimaEngine engine(himaBaselineConfig(16));
    const PlatformRecord hima = himaRecord("HiMA-baseline", engine);
    EXPECT_NEAR(normalizedArea(hima, 40.0) / farmRecord().areaMm2, 3.16,
                0.35);
    EXPECT_EQ(hima.memoryRows / farmRecord().memoryRows, 4u);
}

TEST(GpuModel, EfficiencyOrderingMatchesHardwareIntuition)
{
    GpuKernelModel model;
    // Dense matrix work (history read) runs closest to peak; the
    // sort-bound history write is the most serialized.
    EXPECT_GT(model.efficiency(KernelCategory::HistoryRead),
              model.efficiency(KernelCategory::MemoryAccess));
    EXPECT_GT(model.efficiency(KernelCategory::MemoryAccess),
              model.efficiency(KernelCategory::ContentWeighting));
    EXPECT_GT(model.efficiency(KernelCategory::ContentWeighting),
              model.efficiency(KernelCategory::HistoryWrite));
}

TEST(GpuModel, TimeScalesLinearlyWithOps)
{
    GpuKernelModel model;
    KernelProfiler one, two;
    one.at(Kernel::Linkage).elementOps = 1000000;
    two.at(Kernel::Linkage).elementOps = 2000000;
    const auto a = model.categorySeconds(one);
    const auto b = model.categorySeconds(two);
    const int hr = static_cast<int>(KernelCategory::HistoryRead);
    EXPECT_NEAR(b[hr], 2.0 * a[hr], 1e-12);
}

TEST(HimaRecords, DncdStrictlyDominatesDnc)
{
    HimaEngine dnc(himaDncConfig(16));
    HimaEngine dncd(himaDncDConfig(16));
    const PlatformRecord a = himaRecord("dnc", dnc);
    const PlatformRecord b = himaRecord("dncd", dncd);
    EXPECT_LT(b.inferenceUsPerTest, a.inferenceUsPerTest);
    EXPECT_LT(b.areaMm2, a.areaMm2);
    EXPECT_LT(b.powerW, a.powerW);
}

TEST(HimaRecords, PaperHeadlineRatiosWithinBand)
{
    // The Fig. 12 headline ratios must land in the paper's order of
    // magnitude (exact values depend on calibration; EXPERIMENTS.md
    // records the deltas).
    HimaEngine dncE(himaDncConfig(16));
    ArchConfig dncdCfg = himaDncDConfig(16);
    dncdCfg.dnc.skimRate = 0.2;
    dncdCfg.dnc.approximateSoftmax = true;
    HimaEngine dncdE(dncdCfg);

    const PlatformRecord manna = mannaRecord();
    const PlatformRecord dnc = himaRecord("dnc", dncE);
    const PlatformRecord dncd = himaRecord("dncd", dncdE);

    const Real speedDnc = manna.inferenceUsPerTest / dnc.inferenceUsPerTest;
    const Real speedDncd =
        manna.inferenceUsPerTest / dncd.inferenceUsPerTest;
    EXPECT_GT(speedDnc, 4.0);   // paper: 6.47x
    EXPECT_LT(speedDnc, 13.0);
    EXPECT_GT(speedDncd, 20.0); // paper: 39.1x
    EXPECT_LT(speedDncd, 80.0);
}

} // namespace
} // namespace hima
