/**
 * @file
 * Tests for the statistics package (RunningStat, StatRegistry).
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"

namespace hima {
namespace {

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSampleVarianceIsZero)
{
    RunningStat s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, KnownSequence)
{
    RunningStat s;
    for (Real v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.total(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined)
{
    Rng rng(21);
    RunningStat a, b, combined;
    for (int i = 0; i < 500; ++i) {
        const Real v = rng.normal(3.0, 1.5);
        (i % 2 ? a : b).add(v);
        combined.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStat c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(StatRegistry, IncrementAndGet)
{
    StatRegistry reg;
    EXPECT_EQ(reg.get("x"), 0u);
    EXPECT_FALSE(reg.has("x"));
    reg.inc("x");
    reg.inc("x", 4);
    EXPECT_EQ(reg.get("x"), 5u);
    EXPECT_TRUE(reg.has("x"));
    reg.set("x", 2);
    EXPECT_EQ(reg.get("x"), 2u);
}

TEST(StatRegistry, PrefixQueries)
{
    StatRegistry reg;
    reg.inc("noc.flits", 10);
    reg.inc("noc.msgs", 3);
    reg.inc("kernel.linkage.macs", 7);

    const auto nocStats = reg.withPrefix("noc.");
    ASSERT_EQ(nocStats.size(), 2u);
    EXPECT_EQ(reg.sumPrefix("noc."), 13u);
    EXPECT_EQ(reg.sumPrefix("kernel."), 7u);
    EXPECT_EQ(reg.sumPrefix("nope."), 0u);

    reg.clear();
    EXPECT_EQ(reg.sumPrefix(""), 0u);
}

TEST(Percentile, NearestRankOnKnownSamples)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({42.0}, 0.5), 42.0);
    EXPECT_DOUBLE_EQ(percentile({42.0}, 1.0), 42.0);

    // Unsorted input; nearest rank: ceil(q * n) over n = 4.
    const std::vector<Real> sample = {4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(sample, 0.25), 1.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 0.51), 3.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 1.0), 4.0);

    // p99 of 1..200 is element ceil(0.99 * 200) = 198.
    std::vector<Real> big;
    for (int i = 200; i >= 1; --i)
        big.push_back(static_cast<Real>(i));
    EXPECT_DOUBLE_EQ(percentile(big, 0.99), 198.0);
    EXPECT_DOUBLE_EQ(percentile(big, 0.005), 1.0);

    // The multi-quantile form sorts once and must agree with the
    // one-at-a-time calls.
    const std::vector<Real> multi = percentiles(big, {0.005, 0.5, 0.99});
    ASSERT_EQ(multi.size(), 3u);
    EXPECT_DOUBLE_EQ(multi[0], 1.0);
    EXPECT_DOUBLE_EQ(multi[1], percentile(big, 0.5));
    EXPECT_DOUBLE_EQ(multi[2], 198.0);
    EXPECT_TRUE(percentiles({}, {0.5, 0.9}) ==
                (std::vector<Real>{0.0, 0.0}));
}

} // namespace
} // namespace hima
