/**
 * @file
 * System-level tests of the complete DNC (controller + memory unit).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "dnc/dnc.h"

namespace hima {
namespace {

DncConfig
tinyConfig()
{
    DncConfig cfg;
    cfg.memoryRows = 32;
    cfg.memoryWidth = 8;
    cfg.readHeads = 2;
    cfg.controllerSize = 16;
    cfg.inputSize = 6;
    cfg.outputSize = 6;
    return cfg;
}

TEST(Dnc, EndToEndStepProducesOutput)
{
    Dnc dnc(tinyConfig(), 1);
    Rng input(2);
    for (int i = 0; i < 10; ++i) {
        const Vector y = dnc.step(input.normalVector(6));
        ASSERT_EQ(y.size(), 6u);
        for (Index k = 0; k < y.size(); ++k)
            EXPECT_TRUE(std::isfinite(y[k]));
    }
}

TEST(Dnc, DeterministicAcrossInstances)
{
    Dnc a(tinyConfig(), 99);
    Dnc b(tinyConfig(), 99);
    Rng ia(5), ib(5);
    for (int i = 0; i < 8; ++i) {
        const Vector ya = a.step(ia.normalVector(6));
        const Vector yb = b.step(ib.normalVector(6));
        EXPECT_EQ(ya, yb);
    }
}

TEST(Dnc, SeedChangesWeights)
{
    Dnc a(tinyConfig(), 1);
    Dnc b(tinyConfig(), 2);
    const Vector x(6, 0.5);
    EXPECT_NE(a.step(x), b.step(x));
}

TEST(Dnc, ResetReproducesFirstStep)
{
    Dnc dnc(tinyConfig(), 3);
    const Vector x(6, 0.25);
    const Vector y1 = dnc.step(x);
    dnc.step(x);
    dnc.reset();
    const Vector y1again = dnc.step(x);
    EXPECT_EQ(y1, y1again);
}

TEST(Dnc, MemoryStateEvolves)
{
    Dnc dnc(tinyConfig(), 4);
    Rng input(6);
    Real before = 0.0;
    for (Index i = 0; i < dnc.memory().memory().size(); ++i)
        before += std::fabs(dnc.memory().memory().data()[i]);
    for (int i = 0; i < 5; ++i)
        dnc.step(input.normalVector(6));
    Real after = 0.0;
    for (Index i = 0; i < dnc.memory().memory().size(); ++i)
        after += std::fabs(dnc.memory().memory().data()[i]);
    EXPECT_EQ(before, 0.0);
    EXPECT_GT(after, 0.0);
}

TEST(Dnc, ProfilerAccumulatesAcrossSteps)
{
    Dnc dnc(tinyConfig(), 5);
    Rng input(7);
    dnc.step(input.normalVector(6));
    const auto once = dnc.profiler().grandTotal().totalOps();
    dnc.step(input.normalVector(6));
    const auto twice = dnc.profiler().grandTotal().totalOps();
    EXPECT_GT(once, 0u);
    EXPECT_EQ(twice, 2 * once);
}

TEST(Dnc, LstmKernelChargedThroughSystem)
{
    Dnc dnc(tinyConfig(), 6);
    dnc.step(Vector(6, 0.1));
    EXPECT_GT(dnc.profiler().at(Kernel::Lstm).macOps, 0u);
    EXPECT_GT(dnc.profiler()
                  .categoryTotal(KernelCategory::HistoryRead)
                  .totalOps(),
              0u);
}

TEST(Dnc, ApproximateSoftmaxVariantRuns)
{
    DncConfig cfg = tinyConfig();
    cfg.approximateSoftmax = true;
    cfg.softmaxSegments = 16;
    Dnc dnc(cfg, 7);
    Rng input(8);
    for (int i = 0; i < 5; ++i) {
        const Vector y = dnc.step(input.normalVector(6));
        for (Index k = 0; k < y.size(); ++k)
            EXPECT_TRUE(std::isfinite(y[k]));
    }
}

TEST(Dnc, SkimmedVariantRuns)
{
    DncConfig cfg = tinyConfig();
    cfg.skimRate = 0.2;
    Dnc dnc(cfg, 8);
    Rng input(9);
    for (int i = 0; i < 5; ++i)
        dnc.step(input.normalVector(6));
    EXPECT_GT(dnc.profiler().at(Kernel::UsageSort).invocations, 0u);
}

} // namespace
} // namespace hima
