/**
 * @file
 * Trace ring implementation and the balanced Chrome-JSON exporter.
 */

#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace hima {
namespace obs {

#ifndef HIMA_OBS_DISABLED
namespace detail {
std::atomic<bool> g_tracingEnabled{false};
}
#endif

namespace {

constexpr std::size_t kDefaultTraceCapacity = 4096;

std::atomic<std::size_t> g_traceCapacity{kDefaultTraceCapacity};

struct TraceEvent
{
    const char *name;
    std::uint64_t tsNanos;
    std::uint64_t arg;
    char phase; // 'B', 'E', 'i'
};

/**
 * One thread's ring. Emission and export both take the ring's own
 * mutex — the exporter contends only with the ring's owner, never
 * with other threads, and the critical section is a couple of stores.
 */
struct TraceRing
{
    std::mutex mutex;
    std::vector<TraceEvent> events; ///< pre-sized at creation
    std::uint64_t head = 0;         ///< total events ever emitted
    unsigned tid = 0;

    explicit TraceRing(std::size_t capacity, unsigned id) : tid(id)
    {
        events.resize(capacity == 0 ? 1 : capacity);
    }

    void
    emit(char phase, const char *name, std::uint64_t arg)
    {
        const std::uint64_t ts = traceNowNanos();
        std::lock_guard<std::mutex> lock(mutex);
        TraceEvent &slot = events[head % events.size()];
        slot.name = name;
        slot.tsNanos = ts;
        slot.arg = arg;
        slot.phase = phase;
        ++head;
    }
};

struct TraceState
{
    std::mutex mutex;
    std::vector<std::unique_ptr<TraceRing>> rings;
    unsigned nextTid = 0;
};

TraceState &
traceState()
{
    // Leaked: rings of exited threads stay exportable, and emission
    // during static destruction stays safe.
    static TraceState *state = new TraceState;
    return *state;
}

TraceRing &
threadRing()
{
    thread_local TraceRing *ring = [] {
        TraceState &state = traceState();
        std::lock_guard<std::mutex> lock(state.mutex);
        state.rings.push_back(std::make_unique<TraceRing>(
            g_traceCapacity.load(std::memory_order_relaxed),
            state.nextTid++));
        return state.rings.back().get();
    }();
    return *ring;
}

} // namespace

void
setTraceCapacity(std::size_t events)
{
    g_traceCapacity.store(events == 0 ? 1 : events,
                          std::memory_order_relaxed);
}

std::uint64_t
traceNowNanos()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - start)
            .count());
}

void
traceBegin(const char *name, std::uint64_t arg)
{
    if (!tracingEnabled())
        return;
    threadRing().emit('B', name, arg);
}

void
traceEnd(const char *name)
{
    // No enabled() check: a TraceSpan whose begin was recorded must
    // record its end even if tracing was toggled off mid-span, or the
    // export would systematically drop the span.
    threadRing().emit('E', name, 0);
}

void
traceInstant(const char *name, std::uint64_t arg)
{
    if (!tracingEnabled())
        return;
    threadRing().emit('i', name, arg);
}

void
traceReset()
{
    TraceState &state = traceState();
    std::lock_guard<std::mutex> lock(state.mutex);
    for (auto &ring : state.rings) {
        std::lock_guard<std::mutex> ringLock(ring->mutex);
        ring->head = 0;
    }
}

namespace {

struct ExportEvent
{
    const char *name;
    std::uint64_t tsNanos;
    std::uint64_t arg;
    unsigned tid;
    char phase;
};

/** JSON-escape a name (literals are tame, but be safe). */
void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            snprintf(buf, sizeof(buf), "\\u%04x",
                     static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
}

void
appendEvent(std::string &out, const ExportEvent &e, bool &first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "    {\"name\":\"";
    appendEscaped(out, e.name);
    out += "\",\"ph\":\"";
    out.push_back(e.phase);
    char buf[160];
    // Chrome's ts unit is microseconds; keep sub-µs precision as a
    // fraction (Perfetto accepts fractional ts).
    snprintf(buf, sizeof(buf),
             "\",\"pid\":1,\"tid\":%u,\"ts\":%" PRIu64 ".%03u",
             e.tid, e.tsNanos / 1000,
             static_cast<unsigned>(e.tsNanos % 1000));
    out += buf;
    if (e.phase == 'i')
        out += ",\"s\":\"t\"";
    if (e.phase != 'E') {
        snprintf(buf, sizeof(buf),
                 ",\"args\":{\"arg\":%" PRIu64 "}", e.arg);
        out += buf;
    }
    out += "}";
}

} // namespace

void
traceExportJson(std::string &out)
{
    // Gather every ring's live window.
    std::vector<ExportEvent> events;
    {
        TraceState &state = traceState();
        std::lock_guard<std::mutex> lock(state.mutex);
        for (auto &ring : state.rings) {
            std::lock_guard<std::mutex> ringLock(ring->mutex);
            const std::uint64_t cap = ring->events.size();
            const std::uint64_t n = std::min<std::uint64_t>(ring->head, cap);
            const std::uint64_t begin = ring->head - n;
            for (std::uint64_t i = begin; i < ring->head; ++i) {
                const TraceEvent &ev = ring->events[i % cap];
                events.push_back(
                    {ev.name, ev.tsNanos, ev.arg, ring->tid, ev.phase});
            }
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const ExportEvent &a, const ExportEvent &b) {
                         return a.tsNanos < b.tsNanos;
                     });

    // Balance per tid: an 'E' whose 'B' fell off the ring is dropped,
    // and a 'B' whose 'E' never arrived (still-open or overwritten) is
    // dropped together with everything nested inside it staying valid.
    std::vector<char> keep(events.size(), 0);
    {
        // Per-tid stacks of indices of pending 'B' events.
        std::vector<std::vector<std::size_t>> stacks;
        for (std::size_t i = 0; i < events.size(); ++i) {
            const ExportEvent &e = events[i];
            if (e.tid >= stacks.size())
                stacks.resize(e.tid + 1);
            std::vector<std::size_t> &stack = stacks[e.tid];
            if (e.phase == 'i') {
                keep[i] = 1;
            } else if (e.phase == 'B') {
                stack.push_back(i);
            } else { // 'E'
                if (!stack.empty()) {
                    keep[stack.back()] = 1;
                    keep[i] = 1;
                    stack.pop_back();
                }
                // else: orphaned end (begin lost to wraparound) — drop.
            }
        }
        // Unclosed begins left on the stacks stay keep[i] == 0.
    }

    out += "{\"traceEvents\":[\n";
    bool first = true;
    for (std::size_t i = 0; i < events.size(); ++i)
        if (keep[i])
            appendEvent(out, events[i], first);
    out += "\n  ]}\n";
}

bool
traceWriteFile(const char *path)
{
    std::string json;
    traceExportJson(json);
    FILE *f = fopen(path, "w");
    if (!f)
        return false;
    const bool ok =
        fwrite(json.data(), 1, json.size(), f) == json.size();
    return fclose(f) == 0 && ok;
}

} // namespace obs
} // namespace hima
