/**
 * @file
 * Allocation-free runtime metrics: named counters, gauges and
 * log-bucketed latency histograms usable on the serving hot path.
 *
 * Design rules (the standing zero-allocation contract applies to
 * telemetry exactly as it does to the kernels it observes):
 *
 *   - Writes are per-thread-sharded relaxed atomics into pre-sized
 *     cells: a hot-path add() touches one cache line it (almost
 *     always) owns, never a lock, never the heap. Threads map onto a
 *     fixed shard set (kMaxShards); an over-subscribed process folds
 *     extra threads onto existing shards, which stays correct because
 *     every cell is atomic.
 *   - Shards are merged at *scrape* time with plain relaxed loads —
 *     lock-free on read, never merged on write. Scrapes may run
 *     concurrently with writers; a snapshot is a consistent-enough
 *     view for monitoring (each cell is read atomically).
 *   - Histograms are log-bucketed (8 sub-buckets per octave, <= 12.5%
 *     bucket width) over a u64 domain — nanosecond latencies fit with
 *     bucket-resolution percentiles. p50/p95/p99/max are extracted at
 *     scrape time from the merged buckets; the observed max is exact.
 *   - Metrics register by '.'-separated name in a process-wide
 *     Registry (one per process, like the serving engine itself).
 *     Registration allocates (startup cost); everything after is
 *     steady-state allocation-free.
 *   - The whole subsystem is toggleable at runtime
 *     (setMetricsEnabled / DncConfig::telemetryMetrics) and compiles
 *     out of the hot loops entirely under HIMA_OBS_DISABLED — the
 *     enabled() checks become constant-false and dead-code away.
 *
 * The Snapshot type doubles as the fleet-scrape interchange record:
 * the wire StatsReport frame carries one, the coordinator merges many
 * (counters and histogram buckets sum; gauges sum, which is the fleet
 * meaning of "queue depth across workers"), and renderPrometheus()
 * dumps any snapshot as a Prometheus-style text exposition.
 */

#ifndef HIMA_OBS_METRICS_H
#define HIMA_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hima {
namespace obs {

/** Per-thread write shards per metric (threads fold onto these). */
constexpr unsigned kMaxShards = 16;

/** Exact buckets 0..7, then 8 sub-buckets per octave up to 2^64-1. */
constexpr unsigned kHistogramBuckets = 8 + 61 * 8;

#ifdef HIMA_OBS_DISABLED
/** Compiled out: every hot-path guard folds to constant false. */
inline bool metricsEnabled() { return false; }
inline void setMetricsEnabled(bool) {}
#else
namespace detail {
extern std::atomic<bool> g_metricsEnabled;
}

/** Runtime toggle (DncConfig::telemetryMetrics lands here). */
inline bool
metricsEnabled()
{
    return detail::g_metricsEnabled.load(std::memory_order_relaxed);
}

inline void
setMetricsEnabled(bool on)
{
    detail::g_metricsEnabled.store(on, std::memory_order_relaxed);
}
#endif

/** Stable small shard index for the calling thread (mod kMaxShards). */
unsigned threadShard();

/** Log-bucket index of a u64 sample (monotone in the sample). */
unsigned histogramBucket(std::uint64_t value);

/** Largest sample that lands in bucket `b` (inverse of the above). */
std::uint64_t histogramBucketUpperBound(unsigned b);

/** One cache line of atomic u64 — the unit every shard is made of. */
struct alignas(64) ShardCell
{
    std::atomic<std::uint64_t> value{0};
};

/** Monotone event count, sharded per thread. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        if (!metricsEnabled())
            return;
        cells_[threadShard()].value.fetch_add(delta,
                                              std::memory_order_relaxed);
    }

    /** Merged value (relaxed loads across the shards). */
    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (const ShardCell &cell : cells_)
            sum += cell.value.load(std::memory_order_relaxed);
        return sum;
    }

    /** Scrape-side reset (benches differencing around a timed loop). */
    void
    reset()
    {
        for (ShardCell &cell : cells_)
            cell.value.store(0, std::memory_order_relaxed);
    }

  private:
    std::array<ShardCell, kMaxShards> cells_{};
};

/**
 * Point-in-time level (queue depth, in-flight window, active lanes).
 * A single atomic cell: gauges have one logical writer per series in
 * this stack, and set() semantics do not shard.
 */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        if (!metricsEnabled())
            return;
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        if (!metricsEnabled())
            return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/** Merged scrape view of one histogram (also the wire/merge record). */
struct HistogramStats
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0; ///< exact observed maximum
    std::array<std::uint64_t, kHistogramBuckets> buckets{};

    /**
     * Nearest-rank percentile over the log buckets, q in (0, 1]:
     * the upper bound of the first bucket whose cumulative count
     * reaches ceil(q * count), clamped to the exact max. Zero when
     * empty. Buckets 0..7 are exact; above that the bound is within
     * 12.5% of the true sample.
     */
    std::uint64_t percentile(double q) const;

    double
    mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }

    void merge(const HistogramStats &other);
};

/** Log-bucketed u64 histogram, sharded per thread. */
class Histogram
{
  public:
    void
    record(std::uint64_t value)
    {
        if (!metricsEnabled())
            return;
        Shard &shard = shards_[threadShard()];
        shard.buckets[histogramBucket(value)].fetch_add(
            1, std::memory_order_relaxed);
        shard.sum.fetch_add(value, std::memory_order_relaxed);
        // Monotone max: a stale read only means one extra CAS loop.
        std::uint64_t seen = shard.max.load(std::memory_order_relaxed);
        while (value > seen &&
               !shard.max.compare_exchange_weak(seen, value,
                                                std::memory_order_relaxed))
            ;
    }

    /** Merge every shard into one scrape record (relaxed loads). */
    void read(HistogramStats &out) const;

    void reset();

  private:
    struct alignas(64) Shard
    {
        std::array<std::atomic<std::uint64_t>, kHistogramBuckets>
            buckets{};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> max{0};
    };

    std::array<Shard, kMaxShards> shards_{};
};

/** Metric kinds (also the wire encoding of a snapshot entry). */
enum class MetricKind : std::uint8_t
{
    Counter = 0,
    Gauge = 1,
    Histogram = 2,
};

/** One named series in a scrape. */
struct SnapshotEntry
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t counter = 0; ///< Counter value
    std::int64_t gauge = 0;    ///< Gauge value
    HistogramStats hist;       ///< Histogram buckets + extrema
};

/**
 * A point-in-time scrape of a registry (or a merge of many): the
 * interchange record between processes, the input to
 * renderPrometheus(), and what BENCH JSON telemetry rows serialize.
 */
struct Snapshot
{
    std::vector<SnapshotEntry> entries; ///< sorted by name

    void clear() { entries.clear(); }

    /** Entry by name; null when absent. */
    const SnapshotEntry *find(const std::string &name) const;

    /** Find-or-insert keeping the name order (scrape-side only). */
    SnapshotEntry &upsert(const std::string &name, MetricKind kind);

    void addCounter(const std::string &name, std::uint64_t value);
    void addGauge(const std::string &name, std::int64_t value);
    void addHistogram(const std::string &name, const HistogramStats &h);

    /**
     * Fold another snapshot in: counters and histograms sum; gauges
     * sum as well — the fleet meaning of a level metric is the total
     * across workers (per-worker values stay visible in the per-worker
     * snapshots the scrape also returns).
     */
    void merge(const Snapshot &other);
};

/**
 * The process-wide registry. counter()/gauge()/histogram() register by
 * name on first use (under a mutex, allocating) and return a stable
 * reference — call sites cache it (function-local static or member)
 * so the hot path never touches the name map again.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Merge every metric's shards into `out` (cleared first). Reads
     * are relaxed atomic loads — writers are never blocked; the name
     * table lock only excludes concurrent *registration*.
     */
    void snapshot(Snapshot &out) const;

    /** Zero every metric (benches; not for concurrent hot loops). */
    void resetAll();

  private:
    Registry() = default;
    struct Impl;
    Impl &impl() const;
};

/**
 * Prometheus-style text exposition of a snapshot: counters and gauges
 * one sample line each, histograms as _count/_sum/_max plus p50/p95/
 * p99 quantile lines. Metric names swap '.' for '_' and gain a
 * "hima_" prefix. Appended to `out`.
 */
void renderPrometheus(const Snapshot &snapshot, std::string &out);

} // namespace obs
} // namespace hima

#endif // HIMA_OBS_METRICS_H
