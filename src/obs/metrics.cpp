/**
 * @file
 * Metrics core out-of-line parts: thread shard assignment, the log
 * bucket maps, shard merging, the process-wide registry, and the
 * Prometheus text renderer.
 */

#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.h"

namespace hima {
namespace obs {

#ifndef HIMA_OBS_DISABLED
namespace detail {
std::atomic<bool> g_metricsEnabled{true};
}
#endif

unsigned
threadShard()
{
    // Threads claim shard slots round-robin on first touch; processes
    // with more than kMaxShards concurrent threads fold onto existing
    // slots, which stays correct (cells are atomic) at the price of
    // some write sharing.
    static std::atomic<unsigned> next{0};
    thread_local unsigned slot =
        next.fetch_add(1, std::memory_order_relaxed) % kMaxShards;
    return slot;
}

unsigned
histogramBucket(std::uint64_t value)
{
    if (value < 8)
        return static_cast<unsigned>(value);
    const unsigned msb = std::bit_width(value) - 1; // >= 3
    const unsigned sub =
        static_cast<unsigned>((value >> (msb - 3)) & 7u);
    return 8 + (msb - 3) * 8 + sub;
}

std::uint64_t
histogramBucketUpperBound(unsigned b)
{
    if (b < 8)
        return b;
    if (b >= kHistogramBuckets)
        b = kHistogramBuckets - 1;
    const unsigned msb = (b - 8) / 8 + 3;
    const unsigned sub = (b - 8) % 8;
    const std::uint64_t width = std::uint64_t{1} << (msb - 3);
    const std::uint64_t lower =
        (std::uint64_t{1} << msb) + sub * width;
    return lower + (width - 1);
}

std::uint64_t
HistogramStats::percentile(double q) const
{
    if (count == 0)
        return 0;
    if (q <= 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Nearest rank: the ceil(q * count)-th smallest sample, at least
    // the 1st.
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count) + 0.9999999999);
    if (rank == 0)
        rank = 1;
    if (rank > count)
        rank = count;
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank) {
            const std::uint64_t bound = histogramBucketUpperBound(b);
            return bound < max ? bound : max;
        }
    }
    return max;
}

void
HistogramStats::merge(const HistogramStats &other)
{
    count += other.count;
    sum += other.sum;
    if (other.max > max)
        max = other.max;
    for (unsigned b = 0; b < kHistogramBuckets; ++b)
        buckets[b] += other.buckets[b];
}

void
Histogram::read(HistogramStats &out) const
{
    out = HistogramStats{};
    for (const Shard &shard : shards_) {
        for (unsigned b = 0; b < kHistogramBuckets; ++b) {
            const std::uint64_t n =
                shard.buckets[b].load(std::memory_order_relaxed);
            out.buckets[b] += n;
            out.count += n;
        }
        out.sum += shard.sum.load(std::memory_order_relaxed);
        const std::uint64_t m =
            shard.max.load(std::memory_order_relaxed);
        if (m > out.max)
            out.max = m;
    }
}

void
Histogram::reset()
{
    for (Shard &shard : shards_) {
        for (unsigned b = 0; b < kHistogramBuckets; ++b)
            shard.buckets[b].store(0, std::memory_order_relaxed);
        shard.sum.store(0, std::memory_order_relaxed);
        shard.max.store(0, std::memory_order_relaxed);
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

const SnapshotEntry *
Snapshot::find(const std::string &name) const
{
    auto it = std::lower_bound(
        entries.begin(), entries.end(), name,
        [](const SnapshotEntry &e, const std::string &n) {
            return e.name < n;
        });
    if (it == entries.end() || it->name != name)
        return nullptr;
    return &*it;
}

SnapshotEntry &
Snapshot::upsert(const std::string &name, MetricKind kind)
{
    auto it = std::lower_bound(
        entries.begin(), entries.end(), name,
        [](const SnapshotEntry &e, const std::string &n) {
            return e.name < n;
        });
    if (it != entries.end() && it->name == name) {
        if (it->kind != kind)
            HIMA_WARN("obs: metric '%s' scraped with conflicting kinds",
                      name.c_str());
        return *it;
    }
    SnapshotEntry entry;
    entry.name = name;
    entry.kind = kind;
    return *entries.insert(it, std::move(entry));
}

void
Snapshot::addCounter(const std::string &name, std::uint64_t value)
{
    upsert(name, MetricKind::Counter).counter += value;
}

void
Snapshot::addGauge(const std::string &name, std::int64_t value)
{
    upsert(name, MetricKind::Gauge).gauge += value;
}

void
Snapshot::addHistogram(const std::string &name, const HistogramStats &h)
{
    upsert(name, MetricKind::Histogram).hist.merge(h);
}

void
Snapshot::merge(const Snapshot &other)
{
    for (const SnapshotEntry &e : other.entries) {
        switch (e.kind) {
          case MetricKind::Counter:
            addCounter(e.name, e.counter);
            break;
          case MetricKind::Gauge:
            addGauge(e.name, e.gauge);
            break;
          case MetricKind::Histogram:
            addHistogram(e.name, e.hist);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

struct Registry::Impl
{
    struct Slot
    {
        MetricKind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    std::mutex mutex;                 ///< guards registration only
    std::map<std::string, Slot> slots; ///< sorted — snapshots come out
                                       ///< name-ordered for free
};

Registry &
Registry::instance()
{
    // Leaked on purpose: metrics outlive every static destructor that
    // might still want to bump a counter during shutdown.
    static Registry *registry = new Registry;
    return *registry;
}

Registry::Impl &
Registry::impl() const
{
    static Impl *impl = new Impl;
    return *impl;
}

Counter &
Registry::counter(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    Impl::Slot &slot = i.slots[name];
    if (!slot.counter) {
        if (slot.gauge || slot.histogram)
            HIMA_FATAL("obs: metric '%s' re-registered as a counter",
                       name.c_str());
        slot.kind = MetricKind::Counter;
        slot.counter = std::make_unique<Counter>();
    }
    return *slot.counter;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    Impl::Slot &slot = i.slots[name];
    if (!slot.gauge) {
        if (slot.counter || slot.histogram)
            HIMA_FATAL("obs: metric '%s' re-registered as a gauge",
                       name.c_str());
        slot.kind = MetricKind::Gauge;
        slot.gauge = std::make_unique<Gauge>();
    }
    return *slot.gauge;
}

Histogram &
Registry::histogram(const std::string &name)
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    Impl::Slot &slot = i.slots[name];
    if (!slot.histogram) {
        if (slot.counter || slot.gauge)
            HIMA_FATAL("obs: metric '%s' re-registered as a histogram",
                       name.c_str());
        slot.kind = MetricKind::Histogram;
        slot.histogram = std::make_unique<Histogram>();
    }
    return *slot.histogram;
}

void
Registry::snapshot(Snapshot &out) const
{
    out.clear();
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    out.entries.reserve(i.slots.size());
    for (const auto &[name, slot] : i.slots) {
        SnapshotEntry entry;
        entry.name = name;
        entry.kind = slot.kind;
        switch (slot.kind) {
          case MetricKind::Counter:
            entry.counter = slot.counter->total();
            break;
          case MetricKind::Gauge:
            entry.gauge = slot.gauge->value();
            break;
          case MetricKind::Histogram:
            slot.histogram->read(entry.hist);
            break;
        }
        out.entries.push_back(std::move(entry));
    }
}

void
Registry::resetAll()
{
    Impl &i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    for (auto &[name, slot] : i.slots) {
        (void)name;
        if (slot.counter)
            slot.counter->reset();
        if (slot.gauge)
            slot.gauge->set(0);
        if (slot.histogram)
            slot.histogram->reset();
    }
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

namespace {

/** "shard.tx.frames" -> "hima_shard_tx_frames". */
std::string
promName(const std::string &name)
{
    std::string out = "hima_";
    out.reserve(out.size() + name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void
appendLine(std::string &out, const char *fmt, ...)
{
    char line[256];
    va_list args;
    va_start(args, fmt);
    vsnprintf(line, sizeof(line), fmt, args);
    va_end(args);
    out += line;
}

} // namespace

void
renderPrometheus(const Snapshot &snapshot, std::string &out)
{
    for (const SnapshotEntry &e : snapshot.entries) {
        const std::string n = promName(e.name);
        switch (e.kind) {
          case MetricKind::Counter:
            appendLine(out, "# TYPE %s counter\n", n.c_str());
            appendLine(out, "%s %" PRIu64 "\n", n.c_str(), e.counter);
            break;
          case MetricKind::Gauge:
            appendLine(out, "# TYPE %s gauge\n", n.c_str());
            appendLine(out, "%s %" PRId64 "\n", n.c_str(), e.gauge);
            break;
          case MetricKind::Histogram:
            appendLine(out, "# TYPE %s summary\n", n.c_str());
            appendLine(out, "%s_count %" PRIu64 "\n", n.c_str(),
                       e.hist.count);
            appendLine(out, "%s_sum %" PRIu64 "\n", n.c_str(),
                       e.hist.sum);
            appendLine(out, "%s_max %" PRIu64 "\n", n.c_str(),
                       e.hist.max);
            appendLine(out, "%s{quantile=\"0.5\"} %" PRIu64 "\n",
                       n.c_str(), e.hist.percentile(0.50));
            appendLine(out, "%s{quantile=\"0.95\"} %" PRIu64 "\n",
                       n.c_str(), e.hist.percentile(0.95));
            appendLine(out, "%s{quantile=\"0.99\"} %" PRIu64 "\n",
                       n.c_str(), e.hist.percentile(0.99));
            break;
        }
    }
}

} // namespace obs
} // namespace hima
