/**
 * @file
 * Bridges from the stack's pre-existing instrumentation into the
 * unified metrics snapshot.
 */

#include "obs/obs.h"

#include "common/stats.h"
#include "dnc/dnc_config.h"
#include "dnc/kernel_profiler.h"
#include "shard/transport.h"

namespace hima {
namespace obs {

void
applyTelemetryConfig(const DncConfig &config)
{
    setMetricsEnabled(config.telemetryMetrics);
    setTraceCapacity(config.telemetryTraceCapacity);
    setTracingEnabled(config.telemetryTracing);
}

void
processSnapshot(Snapshot &out)
{
    Registry::instance().snapshot(out);
}

namespace {

/** Metric-name slugs for the profiler categories (stable, lowercase). */
const char *
categorySlug(KernelCategory c)
{
    switch (c) {
      case KernelCategory::ContentWeighting:
        return "content_weighting";
      case KernelCategory::MemoryAccess:
        return "memory_access";
      case KernelCategory::HistoryWrite:
        return "history_write";
      case KernelCategory::HistoryRead:
        return "history_read";
      case KernelCategory::Nn:
        return "nn";
      default:
        return "unknown";
    }
}

void
importCounters(Snapshot &out, const std::string &base,
               const KernelCounters &c)
{
    out.addCounter(base + ".invocations", c.invocations);
    out.addCounter(base + ".total_ops", c.totalOps());
    out.addCounter(base + ".ext_mem_accesses", c.extMemAccesses);
    out.addCounter(base + ".state_mem_accesses", c.stateMemAccesses);
    out.addCounter(base + ".nanoseconds", c.nanoseconds);
    out.addCounter(base + ".skipped_rows", c.skippedRows);
    out.addCounter(base + ".skipped_ops", c.skippedOps);
}

/** "LaneStepReply" -> "lane_step_reply"; slot 0 (unparsed) -> "bad". */
std::string
msgTypeSlug(std::size_t slot)
{
    if (slot == 0)
        return "bad";
    const char *name = msgTypeName(static_cast<MsgType>(slot));
    std::string slug;
    for (const char *p = name; *p; ++p) {
        const char c = *p;
        if (c >= 'A' && c <= 'Z') {
            if (!slug.empty())
                slug.push_back('_');
            slug.push_back(static_cast<char>(c - 'A' + 'a'));
        } else {
            slug.push_back(c);
        }
    }
    return slug;
}

void
importDirection(Snapshot &out, const WireTrafficStats &stats,
                const std::string &base)
{
    for (std::size_t slot = 0; slot < kMsgTypeCount; ++slot) {
        if (stats.frames[slot] == 0 && stats.bytes[slot] == 0)
            continue;
        const std::string series = base + "." + msgTypeSlug(slot);
        out.addCounter(series + ".frames", stats.frames[slot]);
        out.addCounter(series + ".bytes", stats.bytes[slot]);
    }
}

} // namespace

void
importKernelProfiler(Snapshot &out, const KernelProfiler &profiler,
                     const std::string &prefix)
{
    for (int c = 0;
         c < static_cast<int>(KernelCategory::NumCategories); ++c) {
        const KernelCategory cat = static_cast<KernelCategory>(c);
        importCounters(out, prefix + "." + categorySlug(cat),
                       profiler.categoryTotal(cat));
    }
    importCounters(out, prefix + ".total", profiler.grandTotal());
}

void
importStatRegistry(Snapshot &out, const StatRegistry &stats,
                   const std::string &prefix)
{
    for (const auto &[name, value] : stats.all()) {
        if (prefix.empty())
            out.addCounter(name, value);
        else
            out.addCounter(prefix + "." + name, value);
    }
}

void
importWireTraffic(Snapshot &out, const WireTrafficStats &sent,
                  const WireTrafficStats &received,
                  const std::string &prefix)
{
    importDirection(out, sent, prefix + ".tx");
    importDirection(out, received, prefix + ".rx");
}

} // namespace obs
} // namespace hima
