/**
 * @file
 * Phase tracing: fixed-capacity per-thread rings of span/instant
 * events, RAII span guards for the hot paths, and a Chrome
 * trace-event JSON export loadable in Perfetto (ui.perfetto.dev).
 *
 * Contract with the hot path:
 *
 *   - Event names are string literals (the ring stores the pointer,
 *     never copies) and an event is one struct write into a
 *     pre-sized per-thread ring — no allocation in steady state. The
 *     ring itself is allocated once, on the thread's *first* event;
 *     threads that trace inside an allocation-audited loop warm up
 *     with one event beforehand, same as metric registration.
 *   - Rings wrap: when a thread emits more events than the ring holds
 *     the oldest are overwritten. The exporter drops the resulting
 *     unmatched end/begin events so the JSON is always balanced.
 *   - Tracing defaults OFF (unlike metrics) — spans cost a clock read
 *     plus a short critical section on the thread's own ring, which
 *     is measurable on nanosecond-scale phases. Toggle with
 *     setTracingEnabled / DncConfig::telemetryTracing.
 *   - Under HIMA_OBS_DISABLED every guard folds to constant false and
 *     the span objects become empty.
 */

#ifndef HIMA_OBS_TRACE_H
#define HIMA_OBS_TRACE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hima {
namespace obs {

#ifdef HIMA_OBS_DISABLED
inline bool tracingEnabled() { return false; }
inline void setTracingEnabled(bool) {}
#else
namespace detail {
extern std::atomic<bool> g_tracingEnabled;
}

inline bool
tracingEnabled()
{
    return detail::g_tracingEnabled.load(std::memory_order_relaxed);
}

inline void
setTracingEnabled(bool on)
{
    detail::g_tracingEnabled.store(on, std::memory_order_relaxed);
}
#endif

/**
 * Per-thread ring capacity (events) used by rings created *after* the
 * call; existing rings keep their size. DncConfig::telemetryTraceCapacity
 * lands here before any worker thread starts.
 */
void setTraceCapacity(std::size_t events);

/** Monotonic nanoseconds since process start (trace timebase). */
std::uint64_t traceNowNanos();

/**
 * Record one event. `name` MUST be a string literal (or otherwise
 * outlive the export); `arg` is a free u64 shown in Perfetto.
 */
void traceBegin(const char *name, std::uint64_t arg = 0);
void traceEnd(const char *name);
void traceInstant(const char *name, std::uint64_t arg = 0);

/** RAII span: begin on construction, end on destruction. */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name, std::uint64_t arg = 0)
    {
        if (tracingEnabled()) {
            name_ = name;
            traceBegin(name, arg);
        }
    }

    ~TraceSpan()
    {
        if (name_)
            traceEnd(name_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_ = nullptr;
};

/**
 * Export every thread's ring as one Chrome trace-event JSON object
 * ({"traceEvents": [...]}), appended to `out`. Events are sorted by
 * timestamp and unmatched begin/end pairs (ring wraparound, still-open
 * spans) are dropped so the result always has balanced spans.
 */
void traceExportJson(std::string &out);

/** traceExportJson straight to a file; false on I/O error. */
bool traceWriteFile(const char *path);

/** Drop every recorded event (tests, bench reruns). */
void traceReset();

} // namespace obs
} // namespace hima

#endif // HIMA_OBS_TRACE_H
