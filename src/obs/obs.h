/**
 * @file
 * Telemetry umbrella: pulls the metrics registry and phase tracing
 * together and bridges the stack's pre-existing instrumentation —
 * KernelProfiler category totals, StatRegistry counters, per-channel
 * WireTrafficStats — into named series of one obs::Snapshot, so one
 * scrape answers for the whole process.
 *
 * Naming scheme ('.'-separated, lowercase, sorts by subsystem):
 *
 *     kernel.<category>.{nanoseconds,invocations,total_ops,...}
 *     wire.{tx,rx}.<msgtype>.{frames,bytes}
 *     router.{...}   shard.{...}   transport.{...}   recover.{...}
 *
 * plus whatever '.'-paths a StatRegistry import carries verbatim.
 */

#ifndef HIMA_OBS_OBS_H
#define HIMA_OBS_OBS_H

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hima {

struct DncConfig;
class KernelProfiler;
class StatRegistry;
struct WireTrafficStats;

namespace obs {

/**
 * Land DncConfig's telemetry* knobs: metrics toggle, tracing toggle,
 * per-thread trace ring capacity. Call before worker threads start so
 * rings pick up the capacity.
 */
void applyTelemetryConfig(const DncConfig &config);

/** This process's registry, scraped into `out` (cleared first). */
void processSnapshot(Snapshot &out);

/**
 * Fold one KernelProfiler into `out` as per-category counter series
 * under `prefix` ("kernel.content_weighting.nanoseconds", ...), plus a
 * grand-total block under "<prefix>.total.".
 */
void importKernelProfiler(Snapshot &out, const KernelProfiler &profiler,
                          const std::string &prefix = "kernel");

/**
 * Absorb a StatRegistry: every named scalar becomes a counter series
 * with the same '.'-path (optionally re-rooted under `prefix`).
 */
void importStatRegistry(Snapshot &out, const StatRegistry &stats,
                        const std::string &prefix = "");

/**
 * Fold one channel's directional traffic counters into `out` as
 * "<prefix>.{tx,rx}.<msgtype>.{frames,bytes}" series (message types
 * with zero frames are skipped; the unparsed slot reports as "bad").
 */
void importWireTraffic(Snapshot &out, const WireTrafficStats &sent,
                       const WireTrafficStats &received,
                       const std::string &prefix = "wire");

} // namespace obs
} // namespace hima

#endif // HIMA_OBS_OBS_H
