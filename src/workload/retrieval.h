/**
 * @file
 * Scripted-interface retrieval harness — the offline substitution for the
 * bAbI evaluation (see DESIGN.md).
 *
 * Episodes are sequences of scripted interface vectors with known ground
 * truth: WRITE steps store a (key, value) pair into DNC memory through
 * the normal soft-write path (allocation-gated, so usage / sort /
 * allocation all engage); QUERY steps perform a content soft read of the
 * key and are scored by nearest-codebook decoding of the value half of
 * the read vector; TEMPORAL queries first locate an anchor item by
 * content and then follow the temporal linkage in forward mode, which is
 * the history mechanism DNC adds over NTM.
 *
 * The memory word (width W) is split [key embedding | value embedding],
 * each W/2 wide, so content lookups match on the key half.
 */

#ifndef HIMA_WORKLOAD_RETRIEVAL_H
#define HIMA_WORKLOAD_RETRIEVAL_H

#include <functional>

#include "dnc/dncd.h"
#include "workload/encoder.h"

namespace hima {

/** What one episode step does. */
enum class StepKind
{
    Write,          ///< store (key, value)
    Query,          ///< content lookup of key; scored
    TemporalAnchor, ///< content lookup of key; not scored, arms linkage
    TemporalQuery,  ///< forward-mode read after an anchor; scored
};

/** One scripted step with its ground truth. */
struct EpisodeStep
{
    StepKind kind;
    Index keyToken;   ///< key for writes / lookups (unused for temporal)
    Index valueToken; ///< stored value (writes) or expected answer
};

/** A full episode plus bookkeeping. */
struct Episode
{
    std::vector<EpisodeStep> steps;
    Index writes = 0;
    Index scoredQueries = 0;
};

/** Builds scripted interface vectors for the retrieval protocol. */
class InterfaceScripter
{
  public:
    /**
     * @param config DNC shapes; memoryWidth must be even
     * @param keys   key codebook of width W/2
     * @param values value codebook of width W/2
     */
    InterfaceScripter(const DncConfig &config, const TokenCodebook &keys,
                      const TokenCodebook &values);

    /** Soft-write interface storing [key | value] via allocation. */
    InterfaceVector writeInterface(Index keyToken, Index valueToken) const;

    /** Content-mode read of the key (write gate closed). */
    InterfaceVector queryInterface(Index keyToken) const;

    /** Forward-linkage read (mode = forward, write gate closed). */
    InterfaceVector temporalInterface() const;

    /** Decode the value half of a read vector. */
    Index decodeValue(const Vector &readVector) const;

    /** Cosine score of the value half against a specific token. */
    Real valueScore(const Vector &readVector, Index token) const;

  private:
    InterfaceVector blankInterface() const;

    DncConfig config_;
    const TokenCodebook &keys_;
    const TokenCodebook &values_;
};

/** Accuracy result of running one episode. */
struct EpisodeResult
{
    Index scored = 0;
    Index correct = 0;
    /** Mean cosine margin of the correct answer over the runner-up. */
    Real meanScore = 0.0;

    Real
    errorRate() const
    {
        return scored ? 1.0 - static_cast<Real>(correct) /
                                  static_cast<Real>(scored)
                      : 0.0;
    }
};

/**
 * Run an episode on a monolithic DNC memory unit.
 *
 * @param model    the DNC whose memory unit executes the script
 * @param scripter interface builder (also decodes answers)
 * @param episode  the scripted episode
 */
EpisodeResult runEpisode(Dnc &model, const InterfaceScripter &scripter,
                         const Episode &episode);

/**
 * Run an episode on a sharded tile memory (in-process DncD or the
 * wire-connected ShardCoordinator — any TileMemory). Writes are routed
 * to tile keyToken % Nt by masking the write gate on all other tiles
 * (the trained LSTM's learned sharding, Sec. 5.1); queries broadcast to
 * every tile and the merged read vector is scored.
 */
EpisodeResult runEpisodeDistributed(TileMemory &model,
                                    const InterfaceScripter &scripter,
                                    const Episode &episode);

} // namespace hima

#endif // HIMA_WORKLOAD_RETRIEVAL_H
