/**
 * @file
 * Query arrival-process generators for the serving stack.
 *
 * The router (src/serve/router.h) is exercised against *arrival
 * processes*, not fixed batches: requests land on a discrete step
 * timeline, each carrying an episode drawn from the existing 20-task
 * suite (so request lengths and mixes follow the workload the paper's
 * accuracy study uses, rather than an arbitrary constant).
 *
 * Two processes cover the interesting regimes:
 *
 *   - Poisson: independent arrivals at a mean rate of `rate` requests
 *     per engine step — the classic open-loop model; offered load in
 *     lane-steps/step is rate x mean episode length.
 *   - Bursty: an on/off process — with probability `burstProbability`
 *     per step, `burstSize` requests arrive at once (plus an optional
 *     Poisson background). This is the queue-stressing regime where
 *     admission policy and queue capacity earn their keep.
 *
 * Everything is deterministic given the Rng, like every other stochastic
 * choice in the library, so traces replay bit-for-bit across runs and
 * thread counts.
 */

#ifndef HIMA_WORKLOAD_ARRIVAL_H
#define HIMA_WORKLOAD_ARRIVAL_H

#include <vector>

#include "common/random.h"
#include "workload/task_suite.h"

namespace hima {

/** Which arrival process to generate. */
enum class ArrivalKind
{
    Poisson,
    Bursty,
};

/** Parameters of an arrival trace. */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;
    /** Mean independent arrivals per step (Poisson; Bursty background). */
    Real rate = 0.25;
    /** Bursty: probability per step that a burst fires. */
    Real burstProbability = 0.02;
    /** Bursty: arrivals per burst. */
    Index burstSize = 8;
};

/** One request arrival: when it lands and what episode it runs. */
struct ArrivalEvent
{
    Index step;       ///< arrival step on the router clock
    Index ordinal;    ///< position in the trace (unique per event)
    Index taskId;     ///< 1-based task-suite archetype id
    Index episodeLen; ///< request service demand in engine steps
};

/**
 * Service demand of one task archetype in engine steps: every write,
 * scored query and distractor of an episode costs one controller+memory
 * step, which is how the scripted retrieval harness replays them.
 */
Index episodeSteps(const TaskSpec &spec);

/**
 * Generate a deterministic arrival trace over [0, horizon) steps.
 * Events are returned sorted by step; each event's episode archetype is
 * drawn uniformly from taskSuite() and its length from episodeSteps().
 */
std::vector<ArrivalEvent> makeArrivalTrace(const ArrivalSpec &spec,
                                           Index horizon, Rng &rng);

/**
 * Deterministic token stream for one arrival: episodeLen unit-variance
 * normal tokens of the given width, seeded per event so a request's
 * tokens do not depend on trace position or co-arrivals.
 */
std::vector<Vector> requestTokens(const ArrivalEvent &event, Index inputSize,
                                  std::uint64_t seed);

/** Sum of episodeLen over a trace: total offered lane-steps. */
Index offeredLaneSteps(const std::vector<ArrivalEvent> &trace);

} // namespace hima

#endif // HIMA_WORKLOAD_ARRIVAL_H
