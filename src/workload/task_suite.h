/**
 * @file
 * The 20-task synthetic QA suite — our offline stand-in for bAbI.
 *
 * Each task archetype stresses a different mix of the DNC's memory
 * mechanisms (the same axes the bAbI tasks vary: story length, distractor
 * density, temporal reasoning, memory pressure), so per-task error
 * profiles differ the way Fig. 10's per-task bars do:
 *
 *   - items/queries scale with the task id (longer "stories")
 *   - a temporal-question fraction exercises the linkage chain
 *   - distractor writes load usage and force allocation pressure
 *   - key-similarity stress narrows content-addressing margins
 */

#ifndef HIMA_WORKLOAD_TASK_SUITE_H
#define HIMA_WORKLOAD_TASK_SUITE_H

#include <string>

#include "workload/retrieval.h"

namespace hima {

/** Parameters of one task archetype. */
struct TaskSpec
{
    Index id;                ///< 1-based, matching "task 1..20" labels
    std::string name;
    Index items;             ///< (key, value) pairs written per episode
    Index queries;           ///< scored content queries
    Real temporalFraction;   ///< fraction of queries run through linkage
    Index distractors;       ///< extra unqueried writes (memory pressure)
};

/** The 20 task archetypes (deterministic). */
std::vector<TaskSpec> taskSuite();

/**
 * Generate one episode of a task.
 *
 * @param spec       task parameters
 * @param vocabulary key/value vocabulary size (tokens are < vocabulary)
 * @param rng        episode randomness (keys, values, query order)
 */
Episode makeEpisode(const TaskSpec &spec, Index vocabulary, Rng &rng);

} // namespace hima

#endif // HIMA_WORKLOAD_TASK_SUITE_H
