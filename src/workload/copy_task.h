/**
 * @file
 * The classic copy task (the NTM/DNC "hello world"): store a token
 * sequence, then stream it back *in written order* by walking the
 * temporal linkage forward from the first item — no content key is given
 * during recall, so success depends entirely on the history-based
 * mechanisms HiMA exists to accelerate.
 */

#ifndef HIMA_WORKLOAD_COPY_TASK_H
#define HIMA_WORKLOAD_COPY_TASK_H

#include "workload/retrieval.h"

namespace hima {

/** Result of one copy run. */
struct CopyResult
{
    Index length;      ///< sequence length
    Index correct;     ///< tokens recalled at the right position
    Real errorRate() const
    {
        return length ? 1.0 - static_cast<Real>(correct) /
                                  static_cast<Real>(length)
                      : 0.0;
    }
};

/**
 * Run the copy task on a DNC.
 *
 * @param model     the DNC under test (reset internally)
 * @param scripter  interface builder whose codebooks supply tokens
 * @param sequence  token ids to store and recall (values vocabulary)
 * @param keyBase   first key token id to use for the stored items
 */
CopyResult runCopyTask(Dnc &model, const InterfaceScripter &scripter,
                       const std::vector<Index> &sequence, Index keyBase);

} // namespace hima

#endif // HIMA_WORKLOAD_COPY_TASK_H
