/**
 * @file
 * Token codebook: maps symbolic item ids to quasi-orthogonal width-W
 * embeddings and decodes noisy read vectors back to the nearest token.
 *
 * The synthetic QA suite (our offline substitution for bAbI — see
 * DESIGN.md) stores codebook entries into DNC memory and judges retrieval
 * by nearest-codebook decoding, so the decoder is the "answer layer" of
 * the workload.
 */

#ifndef HIMA_WORKLOAD_ENCODER_H
#define HIMA_WORKLOAD_ENCODER_H

#include "common/random.h"

namespace hima {

/** Deterministic random codebook with nearest-neighbour decoding. */
class TokenCodebook
{
  public:
    /**
     * @param vocabulary number of distinct tokens
     * @param width      embedding width (the DNC's W)
     * @param seed       deterministic construction seed
     */
    TokenCodebook(Index vocabulary, Index width, std::uint64_t seed);

    /** Embedding of one token (unit-norm). */
    const Vector &encode(Index token) const;

    /** Nearest token by cosine similarity. */
    Index decode(const Vector &readout) const;

    /** Cosine similarity of the readout to a specific token. */
    Real score(const Vector &readout, Index token) const;

    Index vocabulary() const { return entries_.size(); }
    Index width() const { return width_; }

  private:
    Index width_;
    std::vector<Vector> entries_;
};

} // namespace hima

#endif // HIMA_WORKLOAD_ENCODER_H
