#include "workload/copy_task.h"

namespace hima {

CopyResult
runCopyTask(Dnc &model, const InterfaceScripter &scripter,
            const std::vector<Index> &sequence, Index keyBase)
{
    model.reset();

    // Store phase: item i written under key keyBase + i.
    for (Index i = 0; i < sequence.size(); ++i) {
        model.stepInterface(
            scripter.writeInterface(keyBase + i, sequence[i]));
    }

    CopyResult result{sequence.size(), 0};
    if (sequence.empty())
        return result;

    // Recall phase: locate the first item by content once, then follow
    // the forward linkage for the rest of the sequence.
    MemoryReadout readout =
        model.stepInterface(scripter.queryInterface(keyBase));
    if (scripter.decodeValue(readout.readVectors[0]) == sequence[0])
        ++result.correct;
    for (Index i = 1; i < sequence.size(); ++i) {
        readout = model.stepInterface(scripter.temporalInterface());
        if (scripter.decodeValue(readout.readVectors[0]) == sequence[i])
            ++result.correct;
    }
    return result;
}

} // namespace hima
