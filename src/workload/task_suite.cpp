#include "workload/task_suite.h"

#include <algorithm>

namespace hima {

std::vector<TaskSpec>
taskSuite()
{
    // Twenty archetypes sweeping story length, temporal load and memory
    // pressure. Names echo the bAbI categories they are modeled on.
    std::vector<TaskSpec> suite;
    const char *names[20] = {
        "single-fact",       "two-facts",         "three-facts",
        "two-arg-relations", "three-arg-relations", "yes-no-recall",
        "counting-load",     "lists-sets",        "simple-negation",
        "indefinite-facts",  "basic-coreference", "conjunction",
        "compound-coref",    "time-order",        "basic-deduction",
        "basic-induction",   "positional-recall", "size-chains",
        "path-finding",      "agents-motivation",
    };
    for (Index i = 0; i < 20; ++i) {
        TaskSpec spec;
        spec.id = i + 1;
        spec.name = names[i];
        // Story length grows through the suite: 6..25 facts.
        spec.items = 6 + i;
        spec.queries = 4 + i / 2;
        // Tasks 14, 18, 19 are the temporally-heavy archetypes.
        if (spec.id == 14 || spec.id == 18 || spec.id == 19)
            spec.temporalFraction = 0.6;
        else if (spec.id % 5 == 0)
            spec.temporalFraction = 0.25;
        else
            spec.temporalFraction = 0.0;
        // Counting / list tasks pile on distractor writes.
        spec.distractors = (spec.id == 7 || spec.id == 8) ? 12 : i / 3;
        suite.push_back(spec);
    }
    return suite;
}

Episode
makeEpisode(const TaskSpec &spec, Index vocabulary, Rng &rng)
{
    HIMA_ASSERT(vocabulary >= 2 * (spec.items + spec.distractors),
                "vocabulary too small for task %zu", spec.id);

    Episode ep;

    // Distinct keys for the story facts (values may repeat).
    std::vector<Index> perm = rng.permutation(vocabulary);
    std::vector<Index> keys(perm.begin(),
                            perm.begin() + spec.items + spec.distractors);
    std::vector<Index> values(spec.items + spec.distractors);
    for (auto &v : values)
        v = rng.uniformInt(vocabulary);

    // Story: facts interleaved with distractors in written order.
    for (Index i = 0; i < keys.size(); ++i) {
        ep.steps.push_back({StepKind::Write, keys[i], values[i]});
        ++ep.writes;
    }

    // Questions. Temporal questions anchor on fact i and expect the
    // *next written* fact's value through the forward linkage.
    const Index temporalCount = static_cast<Index>(
        spec.temporalFraction * static_cast<Real>(spec.queries));
    for (Index q = 0; q < spec.queries; ++q) {
        if (q < temporalCount && spec.items >= 2) {
            const Index anchor = rng.uniformInt(spec.items - 1);
            ep.steps.push_back(
                {StepKind::TemporalAnchor, keys[anchor], values[anchor]});
            ep.steps.push_back({StepKind::TemporalQuery, keys[anchor + 1],
                                values[anchor + 1]});
        } else {
            const Index target = rng.uniformInt(spec.items);
            ep.steps.push_back(
                {StepKind::Query, keys[target], values[target]});
        }
        ++ep.scoredQueries;
    }
    return ep;
}

} // namespace hima
