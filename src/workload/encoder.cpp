#include "workload/encoder.h"

namespace hima {

TokenCodebook::TokenCodebook(Index vocabulary, Index width,
                             std::uint64_t seed)
    : width_(width)
{
    HIMA_ASSERT(vocabulary > 0 && width > 0, "empty codebook");
    Rng rng(seed);
    entries_.reserve(vocabulary);
    for (Index t = 0; t < vocabulary; ++t) {
        Vector v = rng.normalVector(width);
        const Real norm = v.norm();
        HIMA_ASSERT(norm > 0.0, "degenerate codebook draw");
        entries_.push_back(scale(v, 1.0 / norm));
    }
}

const Vector &
TokenCodebook::encode(Index token) const
{
    HIMA_ASSERT(token < entries_.size(), "token %zu outside vocabulary %zu",
                token, entries_.size());
    return entries_[token];
}

Index
TokenCodebook::decode(const Vector &readout) const
{
    HIMA_ASSERT(readout.size() == width_, "readout width");
    Index best = 0;
    Real bestScore = -2.0;
    for (Index t = 0; t < entries_.size(); ++t) {
        const Real s = cosineSimilarity(readout, entries_[t]);
        if (s > bestScore) {
            bestScore = s;
            best = t;
        }
    }
    return best;
}

Real
TokenCodebook::score(const Vector &readout, Index token) const
{
    return cosineSimilarity(readout, encode(token));
}

} // namespace hima
