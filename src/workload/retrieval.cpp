#include "workload/retrieval.h"

namespace hima {

InterfaceScripter::InterfaceScripter(const DncConfig &config,
                                     const TokenCodebook &keys,
                                     const TokenCodebook &values)
    : config_(config), keys_(keys), values_(values)
{
    HIMA_ASSERT(config_.memoryWidth % 2 == 0,
                "retrieval protocol needs an even W");
    HIMA_ASSERT(keys_.width() == config_.memoryWidth / 2 &&
                    values_.width() == config_.memoryWidth / 2,
                "codebook width must be W/2");
}

InterfaceVector
InterfaceScripter::blankInterface() const
{
    const Index w = config_.memoryWidth;
    const Index r = config_.readHeads;

    InterfaceVector iface;
    iface.readKeys.assign(r, Vector(w));
    iface.readStrengths.assign(r, 1.0);
    iface.writeKey = Vector(w);
    iface.writeStrength = 1.0;
    iface.eraseVector = Vector(w, 0.0);
    iface.writeVector = Vector(w);
    iface.freeGates.assign(r, 0.0);
    iface.allocationGate = 0.0;
    iface.writeGate = 0.0;
    iface.readModes.assign(r, ReadMode{0.0, 1.0, 0.0});
    return iface;
}

InterfaceVector
InterfaceScripter::writeInterface(Index keyToken, Index valueToken) const
{
    const Index half = config_.memoryWidth / 2;
    InterfaceVector iface = blankInterface();

    const Vector &key = keys_.encode(keyToken);
    const Vector &value = values_.encode(valueToken);
    for (Index i = 0; i < half; ++i) {
        iface.writeVector[i] = key[i];
        iface.writeVector[half + i] = value[i];
    }
    // Allocation-gated write into the least-used slot, erasing the slot
    // fully first: this drives usage, sort and allocation every write.
    iface.allocationGate = 1.0;
    iface.writeGate = 1.0;
    iface.eraseVector = Vector(config_.memoryWidth, 1.0);
    return iface;
}

InterfaceVector
InterfaceScripter::queryInterface(Index keyToken) const
{
    const Index half = config_.memoryWidth / 2;
    InterfaceVector iface = blankInterface();

    const Vector &key = keys_.encode(keyToken);
    for (Index head = 0; head < config_.readHeads; ++head) {
        for (Index i = 0; i < half; ++i)
            iface.readKeys[head][i] = key[i];
        iface.readStrengths[head] = 20.0; // sharp content lookup
        iface.readModes[head] = ReadMode{0.0, 1.0, 0.0};
    }
    return iface;
}

InterfaceVector
InterfaceScripter::temporalInterface() const
{
    InterfaceVector iface = blankInterface();
    for (Index head = 0; head < config_.readHeads; ++head)
        iface.readModes[head] = ReadMode{0.0, 0.0, 1.0}; // forward mode
    return iface;
}

Index
InterfaceScripter::decodeValue(const Vector &readVector) const
{
    const Index half = config_.memoryWidth / 2;
    HIMA_ASSERT(readVector.size() == config_.memoryWidth, "read width");
    Vector value(half);
    for (Index i = 0; i < half; ++i)
        value[i] = readVector[half + i];
    return values_.decode(value);
}

Real
InterfaceScripter::valueScore(const Vector &readVector, Index token) const
{
    const Index half = config_.memoryWidth / 2;
    Vector value(half);
    for (Index i = 0; i < half; ++i)
        value[i] = readVector[half + i];
    return values_.score(value, token);
}

namespace {

/** Shared scoring loop once a step's readout is available. */
void
scoreStep(const InterfaceScripter &scripter, const EpisodeStep &step,
          const MemoryReadout &readout, EpisodeResult &result)
{
    if (step.kind != StepKind::Query &&
        step.kind != StepKind::TemporalQuery)
        return;
    ++result.scored;
    const Vector &read = readout.readVectors[0];
    if (scripter.decodeValue(read) == step.valueToken)
        ++result.correct;
    result.meanScore += scripter.valueScore(read, step.valueToken);
}

void
finalizeResult(EpisodeResult &result)
{
    if (result.scored)
        result.meanScore /= static_cast<Real>(result.scored);
}

InterfaceVector
buildInterface(const InterfaceScripter &scripter, const EpisodeStep &step)
{
    switch (step.kind) {
      case StepKind::Write:
        return scripter.writeInterface(step.keyToken, step.valueToken);
      case StepKind::Query:
      case StepKind::TemporalAnchor:
        return scripter.queryInterface(step.keyToken);
      case StepKind::TemporalQuery:
        return scripter.temporalInterface();
      default:
        HIMA_PANIC("bad step kind %d", static_cast<int>(step.kind));
    }
}

} // namespace

EpisodeResult
runEpisode(Dnc &model, const InterfaceScripter &scripter,
           const Episode &episode)
{
    model.reset();
    EpisodeResult result;
    for (const EpisodeStep &step : episode.steps) {
        const MemoryReadout readout =
            model.stepInterface(buildInterface(scripter, step));
        scoreStep(scripter, step, readout, result);
    }
    finalizeResult(result);
    return result;
}

EpisodeResult
runEpisodeDistributed(TileMemory &model, const InterfaceScripter &scripter,
                      const Episode &episode)
{
    model.reset();
    const Index tiles = model.tiles();
    EpisodeResult result;
    for (const EpisodeStep &step : episode.steps) {
        const InterfaceVector iface = buildInterface(scripter, step);
        std::vector<InterfaceVector> perTile(tiles, iface);
        if (step.kind == StepKind::Write) {
            // Learned sharding: exactly one tile opens its write gate.
            const Index target = step.keyToken % tiles;
            for (Index t = 0; t < tiles; ++t) {
                if (t != target)
                    perTile[t].writeGate = 0.0;
            }
        }
        const MemoryReadout readout = model.stepInterfaces(perTile);
        scoreStep(scripter, step, readout, result);
    }
    finalizeResult(result);
    return result;
}

} // namespace hima
