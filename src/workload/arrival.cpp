#include "workload/arrival.h"

#include <cmath>

namespace hima {

namespace {

/**
 * Poisson(lambda) sample via Knuth's product-of-uniforms inversion —
 * exact, allocation-free, and fine for the per-step rates the serving
 * benches use (lambda well under ~20).
 */
Index
poissonSample(Real lambda, Rng &rng)
{
    if (lambda <= 0.0)
        return 0;
    const Real limit = std::exp(-lambda);
    Index count = 0;
    Real product = rng.uniform();
    while (product > limit) {
        ++count;
        product *= rng.uniform();
    }
    return count;
}

/** One arrival at `step` with a suite-drawn episode. */
ArrivalEvent
drawEvent(Index step, Index ordinal, const std::vector<TaskSpec> &suite,
          Rng &rng)
{
    const TaskSpec &spec = suite[rng.uniformInt(suite.size())];
    return ArrivalEvent{step, ordinal, spec.id, episodeSteps(spec)};
}

} // namespace

Index
episodeSteps(const TaskSpec &spec)
{
    // Writes (facts + distractors) cost one step each; a temporal
    // question costs two (anchor + linkage read), a content question
    // one — exactly the step count makeEpisode() scripts, including its
    // fallback to content questions when there are too few items for a
    // forward-linkage hop.
    const Index temporal =
        spec.items >= 2 ? static_cast<Index>(spec.temporalFraction *
                                             static_cast<Real>(spec.queries))
                        : 0;
    return spec.items + spec.distractors + spec.queries + temporal;
}

std::vector<ArrivalEvent>
makeArrivalTrace(const ArrivalSpec &spec, Index horizon, Rng &rng)
{
    HIMA_ASSERT(spec.rate >= 0.0, "arrival rate %f < 0", spec.rate);
    HIMA_ASSERT(spec.burstProbability >= 0.0 && spec.burstProbability <= 1.0,
                "burst probability %f outside [0, 1]", spec.burstProbability);

    const std::vector<TaskSpec> suite = taskSuite();
    std::vector<ArrivalEvent> trace;
    for (Index step = 0; step < horizon; ++step) {
        Index count = poissonSample(spec.rate, rng);
        if (spec.kind == ArrivalKind::Bursty &&
            rng.uniform() < spec.burstProbability)
            count += spec.burstSize;
        for (Index i = 0; i < count; ++i)
            trace.push_back(drawEvent(step, trace.size(), suite, rng));
    }
    return trace;
}

std::vector<Vector>
requestTokens(const ArrivalEvent &event, Index inputSize, std::uint64_t seed)
{
    // Per-event stream: the token sequence depends only on (seed,
    // ordinal, step, taskId), never on other requests in the trace — so
    // the golden harness can regenerate a single request's stream for
    // its dedicated reference run.
    Rng rng(seed ^ (static_cast<std::uint64_t>(event.ordinal) << 40) ^
            (static_cast<std::uint64_t>(event.step) << 20) ^
            static_cast<std::uint64_t>(event.taskId));
    std::vector<Vector> tokens;
    tokens.reserve(event.episodeLen);
    for (Index t = 0; t < event.episodeLen; ++t)
        tokens.push_back(rng.normalVector(inputSize));
    return tokens;
}

Index
offeredLaneSteps(const std::vector<ArrivalEvent> &trace)
{
    Index total = 0;
    for (const ArrivalEvent &event : trace)
        total += event.episodeLen;
    return total;
}

} // namespace hima
