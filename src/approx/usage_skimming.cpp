#include "approx/usage_skimming.h"

#include <algorithm>
#include <numeric>

namespace hima {

SkimmedUsage
skimUsage(const Vector &usage, Index k)
{
    const Index n = usage.size();
    HIMA_ASSERT(k < n, "cannot skim %zu of %zu usage entries", k, n);

    SkimmedUsage out;
    out.skimmed = k;
    if (k == 0) {
        out.values = usage;
        out.indices.resize(n);
        std::iota(out.indices.begin(), out.indices.end(), Index{0});
        return out;
    }

    // Rank indices by (value, index) so threshold ties break toward the
    // lower original index deterministically.
    std::vector<Index> order(n);
    std::iota(order.begin(), order.end(), Index{0});
    std::nth_element(order.begin(), order.begin() + k, order.end(),
                     [&](Index a, Index b) {
                         if (usage[a] != usage[b])
                             return usage[a] < usage[b];
                         return a < b;
                     });

    std::vector<bool> dropped(n, false);
    for (Index i = 0; i < k; ++i)
        dropped[order[i]] = true;

    out.values = Vector(n - k);
    out.indices.reserve(n - k);
    Index w = 0;
    for (Index i = 0; i < n; ++i) {
        if (dropped[i])
            continue;
        out.values[w++] = usage[i];
        out.indices.push_back(i);
    }
    return out;
}

SkimmedUsage
skimUsageRate(const Vector &usage, Real rate)
{
    HIMA_ASSERT(rate >= 0.0 && rate < 1.0, "skim rate %f out of [0,1)",
                rate);
    const Index k = static_cast<Index>(rate * static_cast<Real>(usage.size()));
    return skimUsage(usage, k);
}

} // namespace hima
