/**
 * @file
 * Usage skimming (Sec. 5.2): drop the K smallest usage entries before the
 * usage sort and allocation-weighting steps. The skimmed entries contribute
 * (nearly) nothing to the allocation product chain, so discarding them cuts
 * the sort length and the accumulate-product length proportionally.
 */

#ifndef HIMA_APPROX_USAGE_SKIMMING_H
#define HIMA_APPROX_USAGE_SKIMMING_H

#include <vector>

#include "common/tensor.h"

namespace hima {

/** Result of skimming: the surviving entries and their original indices. */
struct SkimmedUsage
{
    /** Usage values that survived, in original order. */
    Vector values;
    /** Original index of each surviving value. */
    std::vector<Index> indices;
    /** How many entries were discarded. */
    Index skimmed;
};

/**
 * Discard the `k` smallest usage entries.
 *
 * Selection uses an nth-element partition (the hardware analogue is a
 * threshold comparator fed by a running min-heap); ties at the threshold
 * keep the lower original index first so results are deterministic.
 *
 * @param usage  the length-N usage vector, entries in [0, 1]
 * @param k      number of entries to discard; k < usage.size()
 */
SkimmedUsage skimUsage(const Vector &usage, Index k);

/**
 * Convenience overload taking a skim *rate* in [0, 1): k = rate * N,
 * matching the paper's "K = 20%" notation.
 */
SkimmedUsage skimUsageRate(const Vector &usage, Real rate);

} // namespace hima

#endif // HIMA_APPROX_USAGE_SKIMMING_H
