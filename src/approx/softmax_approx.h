/**
 * @file
 * Hardware softmax approximation (Sec. 5.2).
 *
 * The paper combines piece-wise linear approximation (PLA) with a look-up
 * table: the input range of the exponential is split into a small number of
 * segments; a LUT stores one affine function (slope, intercept) per segment
 * so each exp() evaluation costs one multiply and one add. This module
 * implements that scheme and exposes the LUT so tests can check the segment
 * construction and error bound.
 */

#ifndef HIMA_APPROX_SOFTMAX_APPROX_H
#define HIMA_APPROX_SOFTMAX_APPROX_H

#include <vector>

#include "common/tensor.h"

namespace hima {

/** One PLA segment: exp(x) ~= slope * x + intercept on [lo, hi). */
struct PlaSegment
{
    Real lo;
    Real hi;
    Real slope;
    Real intercept;
};

/**
 * PLA+LUT approximation of e^x on a bounded negative domain.
 *
 * Softmax inputs are first shifted by the running max, so the exponential
 * only ever sees x <= 0; inputs below `domainLo` underflow to zero exactly
 * as a hardware unit would flush them.
 */
class PlaExp
{
  public:
    /**
     * Build the LUT.
     *
     * @param segments  number of affine pieces (paper: "a small number")
     * @param domainLo  left edge of the approximated domain (x in
     *                  [domainLo, 0]); anything below evaluates to 0
     */
    explicit PlaExp(int segments = 8, Real domainLo = -16.0);

    /** Approximate e^x with one multiply and one add. */
    Real eval(Real x) const;

    /** Worst-case absolute error of eval() over the domain (sampled). */
    Real maxAbsError(int samples = 4096) const;

    const std::vector<PlaSegment> &segments() const { return segments_; }
    Real domainLo() const { return domainLo_; }

  private:
    std::vector<PlaSegment> segments_;
    Real domainLo_;
};

/**
 * Approximate softmax built on PlaExp: shift by max, PLA-exp each element,
 * normalize by the accumulated sum.
 */
class SoftmaxApprox
{
  public:
    explicit SoftmaxApprox(int segments = 8, Real domainLo = -16.0);

    /** Approximate softmax of x. */
    Vector eval(const Vector &x) const;

    /**
     * Destination-passing variant: out is resized and overwritten (out
     * may alias x). Bit-identical to eval(x).
     */
    void evalInto(const Vector &x, Vector &out) const;

    /** Approximate softmax of beta * x. */
    Vector eval(const Vector &x, Real beta) const;

    /** L1 distance between approximate and exact softmax for x. */
    Real l1Error(const Vector &x) const;

    const PlaExp &exp() const { return exp_; }

  private:
    PlaExp exp_;
};

} // namespace hima

#endif // HIMA_APPROX_SOFTMAX_APPROX_H
