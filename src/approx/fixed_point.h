/**
 * @file
 * Q-format signed fixed-point arithmetic mirroring HiMA's 32-bit datapath.
 *
 * The paper synthesizes all designs at 32-bit precision "for a fair
 * comparison with state-of-the-art MANN accelerators" (Sec. 7). This type
 * lets the functional model and the tests quantify what a fixed-width
 * datapath does to the DNC weightings. Arithmetic saturates instead of
 * wrapping, the way a hardware datapath with clamping output stages would.
 */

#ifndef HIMA_APPROX_FIXED_POINT_H
#define HIMA_APPROX_FIXED_POINT_H

#include <cstdint>
#include <limits>

#include "common/tensor.h"

namespace hima {

/**
 * Signed fixed-point value with `IntBits` integer bits (including sign)
 * and `FracBits` fractional bits, stored in 64-bit two's complement.
 * The default Q16.16 matches a 32-bit hardware word.
 */
template <int IntBits = 16, int FracBits = 16>
class Fixed
{
    static_assert(IntBits >= 2, "need a sign bit and at least one int bit");
    static_assert(FracBits >= 1, "need at least one fractional bit");
    static_assert(IntBits + FracBits <= 62, "raw value must fit in int64");

  public:
    static constexpr int intBits = IntBits;
    static constexpr int fracBits = FracBits;
    static constexpr std::int64_t one = std::int64_t{1} << FracBits;
    static constexpr std::int64_t rawMax =
        (std::int64_t{1} << (IntBits + FracBits - 1)) - 1;
    static constexpr std::int64_t rawMin = -rawMax - 1;

    constexpr Fixed() = default;

    /** Quantize a real value (round to nearest, saturate). */
    static Fixed
    fromReal(Real v)
    {
        const Real scaled = v * static_cast<Real>(one);
        if (scaled >= static_cast<Real>(rawMax))
            return fromRaw(rawMax);
        if (scaled <= static_cast<Real>(rawMin))
            return fromRaw(rawMin);
        return fromRaw(static_cast<std::int64_t>(
            scaled >= 0 ? scaled + 0.5 : scaled - 0.5));
    }

    /** Wrap an already-scaled raw integer. */
    static constexpr Fixed
    fromRaw(std::int64_t raw)
    {
        Fixed f;
        f.raw_ = raw;
        return f;
    }

    std::int64_t raw() const { return raw_; }

    Real toReal() const
    {
        return static_cast<Real>(raw_) / static_cast<Real>(one);
    }

    /** Smallest representable increment. */
    static Real resolution() { return 1.0 / static_cast<Real>(one); }

    Fixed
    operator+(Fixed other) const
    {
        return fromRaw(saturate(raw_ + other.raw_));
    }

    Fixed
    operator-(Fixed other) const
    {
        return fromRaw(saturate(raw_ - other.raw_));
    }

    Fixed
    operator*(Fixed other) const
    {
        // Multiply in 128-bit then shift back, rounding toward zero the
        // way a truncating hardware multiplier does.
        const __int128 wide =
            static_cast<__int128>(raw_) * static_cast<__int128>(other.raw_);
        const __int128 shifted = wide >> FracBits;
        if (shifted > rawMax)
            return fromRaw(rawMax);
        if (shifted < rawMin)
            return fromRaw(rawMin);
        return fromRaw(static_cast<std::int64_t>(shifted));
    }

    Fixed
    operator/(Fixed other) const
    {
        HIMA_ASSERT(other.raw_ != 0, "fixed-point divide by zero");
        const __int128 wide = (static_cast<__int128>(raw_) << FracBits) /
                              static_cast<__int128>(other.raw_);
        if (wide > rawMax)
            return fromRaw(rawMax);
        if (wide < rawMin)
            return fromRaw(rawMin);
        return fromRaw(static_cast<std::int64_t>(wide));
    }

    Fixed operator-() const { return fromRaw(saturate(-raw_)); }

    auto operator<=>(const Fixed &) const = default;

  private:
    static std::int64_t
    saturate(std::int64_t raw)
    {
        if (raw > rawMax)
            return rawMax;
        if (raw < rawMin)
            return rawMin;
        return raw;
    }

    std::int64_t raw_ = 0;
};

/** The library-wide hardware word: Q16.16 in a 32-bit datapath. */
using Fix32 = Fixed<16, 16>;

/** Quantize a vector through the fixed-point word, in place. */
inline void
quantizeInPlace(Vector &v)
{
    Real *p = v.data();
    for (Index i = 0, n = v.size(); i < n; ++i)
        p[i] = Fix32::fromReal(p[i]).toReal();
}

/** Quantize a vector through the fixed-point word and back. */
inline Vector
quantize(const Vector &v)
{
    Vector out = v;
    quantizeInPlace(out);
    return out;
}

/** Quantize a matrix through the fixed-point word, in place. */
inline void
quantizeInPlace(Matrix &m)
{
    Real *p = m.data();
    for (Index i = 0, n = m.size(); i < n; ++i)
        p[i] = Fix32::fromReal(p[i]).toReal();
}

/** Quantize a matrix through the fixed-point word and back. */
inline Matrix
quantize(const Matrix &m)
{
    Matrix out = m;
    quantizeInPlace(out);
    return out;
}

} // namespace hima

#endif // HIMA_APPROX_FIXED_POINT_H
