#include "approx/softmax_approx.h"

#include <cmath>

#include "common/math_util.h"

namespace hima {

PlaExp::PlaExp(int segments, Real domainLo) : domainLo_(domainLo)
{
    HIMA_ASSERT(segments >= 2, "need at least two PLA segments");
    HIMA_ASSERT(domainLo < 0.0, "PLA domain must cover negative inputs");

    // Geometric segment spacing: exp() changes fastest near zero, so the
    // segment edges crowd toward the right end of the domain. Each segment
    // stores the secant line through its endpoints, which keeps the
    // approximation exact at every knot.
    segments_.reserve(segments);
    std::vector<Real> knots(segments + 1);
    for (int i = 0; i <= segments; ++i) {
        const Real t = static_cast<Real>(i) / segments;
        // Quadratic warp keeps ~half the knots in the rightmost quarter
        // of the domain where curvature is highest.
        knots[i] = domainLo * (1.0 - t) * (1.0 - t);
    }

    for (int i = 0; i < segments; ++i) {
        const Real lo = knots[i];
        const Real hi = knots[i + 1];
        const Real flo = std::exp(lo);
        const Real fhi = std::exp(hi);
        PlaSegment seg;
        seg.lo = lo;
        seg.hi = hi;
        seg.slope = (fhi - flo) / (hi - lo);
        seg.intercept = flo - seg.slope * lo;
        segments_.push_back(seg);
    }
}

Real
PlaExp::eval(Real x) const
{
    if (x <= domainLo_)
        return 0.0; // hardware flush-to-zero below the domain
    if (x >= 0.0)
        return 1.0; // softmax inputs are max-shifted, so x <= 0 always
    // Binary search for the owning segment; the hardware equivalent is a
    // LUT index derived from the exponent/high bits of x.
    Index lo = 0, hi = segments_.size();
    while (lo + 1 < hi) {
        const Index mid = (lo + hi) / 2;
        if (x >= segments_[mid].lo)
            lo = mid;
        else
            hi = mid;
    }
    const PlaSegment &seg = segments_[lo];
    return seg.slope * x + seg.intercept; // 1 multiply + 1 add
}

Real
PlaExp::maxAbsError(int samples) const
{
    Real worst = 0.0;
    for (int i = 0; i <= samples; ++i) {
        const Real x = domainLo_ * (1.0 - static_cast<Real>(i) / samples);
        worst = std::max(worst, std::fabs(eval(x) - std::exp(x)));
    }
    return worst;
}

SoftmaxApprox::SoftmaxApprox(int segments, Real domainLo)
    : exp_(segments, domainLo)
{}

Vector
SoftmaxApprox::eval(const Vector &x) const
{
    Vector out;
    evalInto(x, out);
    return out;
}

void
SoftmaxApprox::evalInto(const Vector &x, Vector &out) const
{
    HIMA_ASSERT(!x.empty(), "softmax of empty vector");
    const Real m = x.max();
    const Index n = x.size();
    out.resize(n);
    Real denom = 0.0;
    for (Index i = 0; i < n; ++i) {
        out[i] = exp_.eval(x[i] - m);
        denom += out[i];
    }
    HIMA_ASSERT(denom > 0.0, "approximate softmax denominator vanished");
    for (Index i = 0; i < n; ++i)
        out[i] /= denom;
}

Vector
SoftmaxApprox::eval(const Vector &x, Real beta) const
{
    return eval(scale(x, beta));
}

Real
SoftmaxApprox::l1Error(const Vector &x) const
{
    const Vector approx = eval(x);
    const Vector exact = softmax(x);
    Real err = 0.0;
    for (Index i = 0; i < x.size(); ++i)
        err += std::fabs(approx[i] - exact[i]);
    return err;
}

} // namespace hima
