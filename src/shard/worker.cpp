#include "shard/worker.h"

#include "obs/obs.h"

namespace hima {

bool
ShardWorker::handleFrame(const std::uint8_t *data, std::size_t size,
                         FrameSink &sink)
{
    MsgType type;
    if (!peekType(data, size, type)) {
        sendError("malformed frame header", sink);
        return true;
    }
    // Scripted fault: a dead worker never replies again, and serve()
    // exits so its socket closes — the coordinator observes exactly
    // what a crashed process would produce (silence, then EOF).
    const bool isStepFrame =
        type == MsgType::Step || type == MsgType::LaneStep;
    if (fault_.dead() || fault_.onFrame(isStepFrame))
        return false;
    switch (type) {
    case MsgType::Hello:
        handleHello(data, size, sink);
        return true;
    case MsgType::Rejoin:
        handleRejoin(data, size, sink);
        return true;
    case MsgType::Step:
        handleStep(data, size, sink);
        return true;
    case MsgType::LaneStep:
        handleLaneStep(data, size, sink);
        return true;
    case MsgType::Control:
        handleControl(data, size, sink);
        return true;
    case MsgType::CheckpointRequest:
        handleCheckpointRequest(data, size, sink);
        return true;
    case MsgType::Restore:
        handleRestore(data, size, sink);
        return true;
    case MsgType::StatsPull:
        handleStatsPull(data, size, sink);
        return true;
    case MsgType::Shutdown:
        return false;
    default:
        sendError("unexpected message type", sink);
        return true;
    }
}

void
ShardWorker::handleStatsPull(const std::uint8_t *data, std::size_t size,
                             FrameSink &sink)
{
    std::uint64_t seq = 0;
    if (!decodeStatsPull(data, size, seq)) {
        sendError("malformed StatsPull", sink);
        return;
    }
    // Scrapes are off the step path: building the report may allocate.
    obs::processSnapshot(statsScratch_);
    statsScratch_.addCounter("worker.steps_served", stepsServed_);
    statsScratch_.addCounter("worker.episodes_served", episodesServed_);
    statsScratch_.addGauge("worker.hosted_tiles",
                           static_cast<std::int64_t>(tiles_.size()));
    statsScratch_.addGauge("worker.lanes",
                           static_cast<std::int64_t>(configured() ? lanes_
                                                                  : 0));
    if (configured()) {
        KernelProfiler total;
        for (const auto &tile : tiles_)
            total.merge(tile->profiler());
        obs::importKernelProfiler(statsScratch_, total);
    }
    FrameScope reply(sink, writer_);
    encodeStatsReport(seq, statsScratch_, reply.writer());
    reply.commit();
}

void
ShardWorker::sendError(const std::string &message, FrameSink &sink)
{
    encodeError(message, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::handleHello(const std::uint8_t *data, std::size_t size,
                         FrameSink &sink)
{
    WireConfig wire;
    HelloAckMsg ack;
    if (!decodeHello(data, size, wire)) {
        ack.ok = false;
        ack.message = "malformed Hello";
    } else {
        firstGlobalTile_ = 0;
        applyConfig(wire, ack);
    }
    encodeHelloAck(ack, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::handleRejoin(const std::uint8_t *data, std::size_t size,
                          FrameSink &sink)
{
    // Identical to Hello except for the tile-assignment record: the
    // replacement worker starts from zeroed tiles (the t=0 state) and
    // the coordinator follows up with Restore + replay as needed.
    WireConfig wire;
    std::uint64_t firstTile = 0;
    HelloAckMsg ack;
    if (!decodeRejoin(data, size, wire, firstTile)) {
        ack.ok = false;
        ack.message = "malformed Rejoin";
    } else {
        applyConfig(wire, ack);
        if (ack.ok)
            firstGlobalTile_ = firstTile;
    }
    encodeHelloAck(ack, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::applyConfig(const WireConfig &wire, HelloAckMsg &ack)
{
    if (wire.hostedTiles == 0) {
        ack.ok = false;
        ack.message = "zero hosted tiles";
    } else if (wire.memoryRows == 0 || wire.memoryWidth == 0 ||
               wire.readHeads == 0 || wire.readHeads > 32 ||
               wire.numThreads == 0 ||
               // Fail-closed sizing: the handshake dimensions every
               // allocation downstream (per-tile linkage alone is
               // rows^2 doubles), so a corrupt or hostile Hello must
               // bounce in the ack rather than OOM the worker. The
               // caps are generous for the paper's shapes (N=1024
               // *global*, shards smaller).
               wire.memoryRows > (1u << 14) ||
               wire.memoryWidth > (1u << 12) ||
               wire.hostedTiles > 1024 || wire.numThreads > 256 ||
               // Lane cap bounds total tile construction to
               // lanes x hostedTiles (each tile's linkage alone is
               // rows^2 doubles), same fail-closed sizing discipline.
               wire.lanes == 0 || wire.lanes > 4096 ||
               wire.lanes * wire.hostedTiles > (1u << 16) ||
               (wire.approximateSoftmax != 0 &&
                (wire.softmaxSegments < 2 ||
                 wire.softmaxSegments > (1u << 16))) ||
               // Negated-conjunction form so NaN (which a bit-cast wire
               // Real can smuggle in) also fails validation.
               !(wire.skimRate >= 0.0 && wire.skimRate < 1.0) ||
               !(wire.writeSkipThreshold >= 0.0 &&
                 wire.writeSkipThreshold < 1.0) ||
               !(wire.linkageSkipThreshold >= 0.0 &&
                 wire.linkageSkipThreshold < 1.0) ||
               !(wire.readSkipThreshold >= 0.0 &&
                 wire.readSkipThreshold < 1.0) ||
               wire.denseSweep > 1 ||
               // The dense escape forces the dense read stage, so a
               // positive read threshold alongside it is a conflicting
               // handshake (mirrors DncConfig::validate).
               (wire.denseSweep != 0 && wire.readSkipThreshold > 0.0)) {
        // Shape/datapath validation at connect: mirror DncConfig's
        // rules without tripping its fatal path inside a server.
        ack.ok = false;
        ack.message = "invalid shard config";
    } else {
        shardConfig_ = wire.toShardConfig();
        hostedTiles_ = static_cast<Index>(wire.hostedTiles);
        lanes_ = static_cast<Index>(wire.lanes);
        tiles_.clear();
        for (Index t = 0; t < lanes_ * hostedTiles_; ++t)
            tiles_.push_back(std::make_unique<MemoryUnit>(shardConfig_));
        readouts_.clear();
        readouts_.resize(tiles_.size());
        confidence_.assign(tiles_.size() * shardConfig_.readHeads, 0.0);
        pool_.reset();
        if (shardConfig_.numThreads > 1 && tiles_.size() > 1)
            pool_ = std::make_unique<ThreadPool>(shardConfig_.numThreads);
        stepTask_ = nullptr;
        laneStepTask_ = nullptr;
        stepsServed_ = 0;
        episodesServed_ = 0;
        ack.ok = true;
        ack.hostedTiles = hostedTiles_;
    }
}

void
ShardWorker::handleCheckpointRequest(const std::uint8_t *data,
                                     std::size_t size, FrameSink &sink)
{
    if (!configured()) {
        sendError("CheckpointRequest before Hello", sink);
        return;
    }
    std::uint64_t seq = 0;
    if (!decodeCheckpointRequest(data, size, seq)) {
        sendError("malformed CheckpointRequest", sink);
        return;
    }
    // Encoded straight from the live tiles: no snapshot copy, and
    // writer_ keeps its capacity, so a steady-state checkpoint pull
    // allocates nothing after the first. On an shm channel the scope's
    // writer is the ring slot itself — the snapshot lands in shared
    // memory with no staging copy at all.
    FrameScope reply(sink, writer_);
    encodeCheckpointState(seq, tiles_, shardConfig_, reply.writer());
    reply.commit();
}

void
ShardWorker::handleRestore(const std::uint8_t *data, std::size_t size,
                           FrameSink &sink)
{
    if (!configured()) {
        sendError("Restore before Hello", sink);
        return;
    }
    if (restoreScratch_.size() != tiles_.size()) {
        restoreScratch_.resize(tiles_.size());
        restorePtrs_.clear();
        for (auto &snapshot : restoreScratch_)
            restorePtrs_.push_back(&snapshot);
    }
    std::uint64_t seq = 0;
    if (!decodeRestore(data, size, shardConfig_, restorePtrs_.data(),
                       tiles_.size(), seq)) {
        sendError("malformed Restore", sink);
        return;
    }
    for (Index t = 0; t < tiles_.size(); ++t)
        tiles_[t]->restoreState(restoreScratch_[t]);
    encodeControlAck(seq, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::forEach(Index count, const std::function<void(Index)> &fn)
{
    if (pool_ && count > 1) {
        pool_->parallelFor(count, fn);
    } else {
        for (Index t = 0; t < count; ++t)
            fn(t);
    }
}

void
ShardWorker::handleStep(const std::uint8_t *data, std::size_t size,
                        FrameSink &sink)
{
    if (!configured()) {
        sendError("Step before Hello", sink);
        return;
    }
    if (!decodeStep(data, size, shardConfig_, hostedTiles_, step_)) {
        sendError("malformed Step", sink);
        return;
    }

    // The full local pipeline per tile (lane 0's tile set), plus the
    // confidence logits the coordinator flagged. Keys broadcast, so the
    // first hosted tile's interface carries the scoring keys (same
    // convention as DncD).
    if (!stepTask_) {
        stepTask_ = [this](Index t) {
            tiles_[t]->stepInto(step_.ifaces[t], readouts_[t]);
            const Index heads = shardConfig_.readHeads;
            for (Index h = 0; h < heads; ++h) {
                confidence_[t * heads + h] =
                    (step_.scoredMask >> h & 1u)
                        ? tileConfidenceScore(*tiles_[t],
                                              step_.ifaces[0].readKeys[h],
                                              step_.ifaces[0].readStrengths[h])
                        : 0.0;
            }
        };
    }
    forEach(hostedTiles_, stepTask_);
    ++stepsServed_;

    // Only lane 0's hostedTiles_ scratch slots were stepped; the
    // scratch itself is sized for full lane-batched frames. The scope
    // writes the readouts in place on zero-copy transports.
    FrameScope reply(sink, writer_);
    encodeStepReply(step_.seq, step_.wantWeightings, readouts_.data(),
                    hostedTiles_, confidence_, shardConfig_,
                    reply.writer());
    reply.commit();
}

void
ShardWorker::handleLaneStep(const std::uint8_t *data, std::size_t size,
                            FrameSink &sink)
{
    if (!configured()) {
        sendError("LaneStep before Hello", sink);
        return;
    }
    if (!decodeLaneStep(data, size, shardConfig_, lanes_, laneStep_)) {
        sendError("malformed LaneStep", sink);
        return;
    }

    // All named lanes' hosted tiles in one dispatch: frame slot
    // j * hostedTiles + i maps to tile i of lane lanes[j]. Lanes are
    // independent tile sets, so any pool schedule is bit-identical to
    // sequential execution.
    const Index frameLanes = laneStep_.lanes.size();
    const Index slots = frameLanes * hostedTiles_; // <= readouts_.size()
    if (!laneStepTask_) {
        laneStepTask_ = [this](Index slot) {
            const Index j = slot / hostedTiles_;
            const Index lane = laneStep_.lanes[j];
            MemoryUnit &tile =
                *tiles_[lane * hostedTiles_ + slot % hostedTiles_];
            const InterfaceVector &iface = laneStep_.ifaces[j];
            tile.stepInto(iface, readouts_[slot]);
            const Index heads = shardConfig_.readHeads;
            for (Index h = 0; h < heads; ++h) {
                confidence_[slot * heads + h] =
                    (laneStep_.masks[j] >> h & 1u)
                        ? tileConfidenceScore(tile, iface.readKeys[h],
                                              iface.readStrengths[h])
                        : 0.0;
            }
        };
    }
    forEach(slots, laneStepTask_);
    stepsServed_ += frameLanes; // lane-steps served

    FrameScope reply(sink, writer_);
    encodeLaneStepReply(laneStep_.seq, laneStep_.wantWeightings,
                        laneStep_.lanes.data(), frameLanes, hostedTiles_,
                        readouts_, confidence_, shardConfig_,
                        reply.writer());
    reply.commit();
}

void
ShardWorker::handleControl(const std::uint8_t *data, std::size_t size,
                           FrameSink &sink)
{
    if (!configured()) {
        sendError("Control before Hello", sink);
        return;
    }
    ControlMsg msg;
    if (!decodeControl(data, size, msg)) {
        sendError("malformed Control", sink);
        return;
    }
    if (msg.lane == kAllLanes) {
        for (auto &tile : tiles_)
            tile->reset();
    } else if (msg.lane < lanes_) {
        // Per-lane admit/reset: only the named lane's tile set resets,
        // so recycling one serving lane never disturbs its neighbours.
        for (Index t = 0; t < hostedTiles_; ++t)
            tiles_[msg.lane * hostedTiles_ + t]->reset();
    } else {
        sendError("Control names an unhosted lane", sink);
        return;
    }
    if (msg.kind == ControlKind::Admit)
        ++episodesServed_;
    encodeControlAck(msg.seq, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::serve(Channel &channel)
{
    // Borrowed-view receive: zero-copy transports hand back a pointer
    // into their ring slot (valid until the next receive — exactly one
    // frame is in hand at a time here), so decoders read the broadcast
    // interface straight out of shared memory; copying transports fill
    // frame_ as before.
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
    while (channel.recvFrameView(data, size, frame_)) {
        if (!handleFrame(data, size, channel))
            return;
    }
}

} // namespace hima
