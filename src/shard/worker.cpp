#include "shard/worker.h"

namespace hima {

bool
ShardWorker::handleFrame(const std::uint8_t *data, std::size_t size,
                         FrameSink &sink)
{
    MsgType type;
    if (!peekType(data, size, type)) {
        sendError("malformed frame header", sink);
        return true;
    }
    switch (type) {
    case MsgType::Hello:
        handleHello(data, size, sink);
        return true;
    case MsgType::Step:
        handleStep(data, size, sink);
        return true;
    case MsgType::Control:
        handleControl(data, size, sink);
        return true;
    case MsgType::Shutdown:
        return false;
    default:
        sendError("unexpected message type", sink);
        return true;
    }
}

void
ShardWorker::sendError(const std::string &message, FrameSink &sink)
{
    encodeError(message, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::handleHello(const std::uint8_t *data, std::size_t size,
                         FrameSink &sink)
{
    WireConfig wire;
    HelloAckMsg ack;
    if (!decodeHello(data, size, wire)) {
        ack.ok = false;
        ack.message = "malformed Hello";
    } else if (wire.hostedTiles == 0) {
        ack.ok = false;
        ack.message = "zero hosted tiles";
    } else if (wire.memoryRows == 0 || wire.memoryWidth == 0 ||
               wire.readHeads == 0 || wire.readHeads > 32 ||
               wire.numThreads == 0 ||
               // Fail-closed sizing: the handshake dimensions every
               // allocation downstream (per-tile linkage alone is
               // rows^2 doubles), so a corrupt or hostile Hello must
               // bounce in the ack rather than OOM the worker. The
               // caps are generous for the paper's shapes (N=1024
               // *global*, shards smaller).
               wire.memoryRows > (1u << 14) ||
               wire.memoryWidth > (1u << 12) ||
               wire.hostedTiles > 1024 || wire.numThreads > 256 ||
               (wire.approximateSoftmax != 0 &&
                (wire.softmaxSegments < 2 ||
                 wire.softmaxSegments > (1u << 16))) ||
               // Negated-conjunction form so NaN (which a bit-cast wire
               // Real can smuggle in) also fails validation.
               !(wire.skimRate >= 0.0 && wire.skimRate < 1.0) ||
               !(wire.writeSkipThreshold >= 0.0 &&
                 wire.writeSkipThreshold < 1.0)) {
        // Shape/datapath validation at connect: mirror DncConfig's
        // rules without tripping its fatal path inside a server.
        ack.ok = false;
        ack.message = "invalid shard config";
    } else {
        shardConfig_ = wire.toShardConfig();
        tiles_.clear();
        for (Index t = 0; t < wire.hostedTiles; ++t)
            tiles_.push_back(std::make_unique<MemoryUnit>(shardConfig_));
        readouts_.clear();
        readouts_.resize(tiles_.size());
        confidence_.assign(tiles_.size() * shardConfig_.readHeads, 0.0);
        pool_.reset();
        if (shardConfig_.numThreads > 1 && tiles_.size() > 1)
            pool_ = std::make_unique<ThreadPool>(shardConfig_.numThreads);
        stepsServed_ = 0;
        episodesServed_ = 0;
        ack.ok = true;
        ack.hostedTiles = tiles_.size();
    }
    encodeHelloAck(ack, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::forEachTile(const std::function<void(Index)> &fn)
{
    if (pool_) {
        pool_->parallelFor(tiles_.size(), fn);
    } else {
        for (Index t = 0; t < tiles_.size(); ++t)
            fn(t);
    }
}

void
ShardWorker::handleStep(const std::uint8_t *data, std::size_t size,
                        FrameSink &sink)
{
    if (!configured()) {
        sendError("Step before Hello", sink);
        return;
    }
    if (!decodeStep(data, size, shardConfig_, tiles_.size(), step_)) {
        sendError("malformed Step", sink);
        return;
    }

    // The full local pipeline per tile, plus the confidence logits the
    // coordinator flagged. Keys broadcast, so the first hosted tile's
    // interface carries the scoring keys (same convention as DncD).
    if (!stepTask_) {
        stepTask_ = [this](Index t) {
            tiles_[t]->stepInto(step_.ifaces[t], readouts_[t]);
            const Index heads = shardConfig_.readHeads;
            for (Index h = 0; h < heads; ++h) {
                confidence_[t * heads + h] =
                    (step_.scoredMask >> h & 1u)
                        ? tileConfidenceScore(*tiles_[t],
                                              step_.ifaces[0].readKeys[h],
                                              step_.ifaces[0].readStrengths[h])
                        : 0.0;
            }
        };
    }
    forEachTile(stepTask_);
    ++stepsServed_;

    encodeStepReply(step_.seq, step_.wantWeightings, readouts_, confidence_,
                    shardConfig_, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::handleControl(const std::uint8_t *data, std::size_t size,
                           FrameSink &sink)
{
    if (!configured()) {
        sendError("Control before Hello", sink);
        return;
    }
    ControlMsg msg;
    if (!decodeControl(data, size, msg)) {
        sendError("malformed Control", sink);
        return;
    }
    for (auto &tile : tiles_)
        tile->reset();
    if (msg.kind == ControlKind::Admit)
        ++episodesServed_;
    encodeControlAck(msg.seq, writer_);
    sink.sendFrame(writer_.buffer().data(), writer_.buffer().size());
}

void
ShardWorker::serve(Channel &channel)
{
    while (channel.recvFrame(frame_)) {
        if (!handleFrame(frame_.data(), frame_.size(), channel))
            return;
    }
}

} // namespace hima
