/**
 * @file
 * ShardedDnc: a full DNC whose controller runs locally and whose
 * external memory is a TileMemory — the in-process DncD or the
 * wire-connected ShardCoordinator. This is the Fig. 8 deployment shape:
 * the LSTM and projection heads live with the request front-end, the
 * memory tiles live wherever capacity is (threads, processes, hosts),
 * and only interface vectors and merged read vectors cross the
 * boundary.
 *
 * ShardedLaneEngine lifts capacity-many ShardedDnc instances behind the
 * LaneEngine surface, so the dynamic-batching Router (src/serve/) can
 * route an arrival process onto a sharded fleet unchanged. Each lane
 * owns its backend (its own tile set on the workers); admit() maps to
 * the wire's Admit control, which episode-resets the lane's remote
 * tiles in place.
 *
 * PipelinedShardedLaneEngine is the overlapped variant: every lane
 * lives on one shared ShardLaneGroup fleet (shard/pipeline.h), steps
 * travel as lane-batched frames (DncConfig::shardLanesPerBatch lanes
 * per worker round trip), and the engine runs a double-buffered step
 * window — batch B's controllers compute while batch A's tile round
 * trip is in flight. Lanes are independent, so each lane's
 * controller -> tiles -> merge -> output chain is untouched and the
 * engine stays bit-identical per lane to dedicated ShardedDnc runs
 * (proven in tests/test_shard.cpp). The Router drives it through the
 * same LaneEngine surface, unchanged.
 */

#ifndef HIMA_SHARD_SHARDED_DNC_H
#define HIMA_SHARD_SHARDED_DNC_H

#include <functional>
#include <memory>
#include <vector>

#include "dnc/dncd.h"
#include "serve/engine.h"
#include "shard/pipeline.h"

namespace hima {

/** A DNC with a local controller and pluggable (possibly remote) tiles. */
class ShardedDnc
{
  public:
    /**
     * @param config shapes and feature flags (memoryRows = global N);
     *               controller weights are drawn exactly like
     *               Dnc(config, seed)'s
     * @param seed   weight-initialization seed
     * @param memory the tile backend; its globalConfig() must match
     */
    ShardedDnc(const DncConfig &config, std::uint64_t seed,
               std::unique_ptr<TileMemory> memory);

    /**
     * One inference step: controller -> interface -> broadcast to every
     * tile -> confidence merge -> output head.
     */
    Vector step(const Vector &input);

    /** Destination-passing step (out resized and overwritten). */
    void stepInto(const Vector &input, Vector &out);

    /** Reset controller and tile state (episode boundary). */
    void reset();

    /** Admission-path reset: new episode on recycled lane/tiles. */
    void beginEpisode();

    const DncConfig &config() const { return config_; }
    TileMemory &memory() { return *memory_; }
    const TileMemory &memory() const { return *memory_; }
    Controller &controller() { return controller_; }

    /** Merged read vectors from the previous step (width W each). */
    const std::vector<Vector> &lastReads() const { return lastReads_; }

  private:
    DncConfig config_;
    Rng rng_;
    Controller controller_;
    std::unique_ptr<TileMemory> memory_;
    std::vector<Vector> lastReads_;
    MemoryReadout readout_; ///< reused across step() calls
};

/**
 * capacity-many ShardedDnc lanes behind the LaneEngine surface. Lanes
 * are independent models (each with its own tile backend), so there is
 * no SoA weight streaming here — the point is placement: lane state
 * lives on the shard workers, and the Router's dynamic batching,
 * admission and back-pressure apply to a distributed fleet unchanged.
 */
class ShardedLaneEngine final : public LaneEngine
{
  public:
    /** Builds the tile backend for one lane. */
    using BackendFactory =
        std::function<std::unique_ptr<TileMemory>(Index lane)>;

    /**
     * @param config  shapes + serving knobs; batchSize = lane count
     * @param seed    controller weight seed, shared by every lane
     * @param factory called once per lane at construction
     */
    ShardedLaneEngine(const DncConfig &config, std::uint64_t seed,
                      const BackendFactory &factory);

    void stepInto(const std::vector<Vector> &inputs,
                  std::vector<Vector> &outputs) override;
    Index admit() override;
    void markDraining(Index slot) override;
    void release(Index slot) override;
    LaneState laneState(Index slot) const override
    {
        return states_[slot];
    }
    Index activeLanes() const override { return active_; }
    Index drainingLanes() const override { return draining_; }
    Index freeLanes() const override
    {
        return states_.size() - active_ - draining_;
    }
    Index capacity() const override { return states_.size(); }
    void reset() override;
    const DncConfig &config() const override { return config_; }

    ShardedDnc &lane(Index slot) { return *lanes_[slot]; }
    const ShardedDnc &lane(Index slot) const { return *lanes_[slot]; }

  private:
    DncConfig config_;
    std::vector<std::unique_ptr<ShardedDnc>> lanes_;
    std::vector<LaneState> states_;
    std::vector<Index> freeSlots_;
    Index active_ = 0;
    Index draining_ = 0;
};

/**
 * The software-pipelined sharded serving engine: config.batchSize lanes
 * on one shared ShardLaneGroup fleet. stepInto() partitions the active
 * lanes into batches of `lanesPerBatch` and overlaps batch b's
 * controller compute with batch b-1's in-flight tile round trips
 * (ShardLaneGroup's double-buffered window); admit() maps to the
 * wire's per-lane Admit control, so recycling one lane never disturbs
 * its fleet neighbours. Zero steady-state allocations, like every
 * serving loop here.
 */
class PipelinedShardedLaneEngine final : public LaneEngine
{
  public:
    /**
     * @param config shapes + serving knobs; batchSize = lane count and
     *               must equal group->lanes()
     * @param seed   controller weight seed (same draw as
     *               ShardedDnc(config, seed), shared by every lane)
     * @param group  the shared fleet; the engine co-owns it so worker
     *               harness structs can hold the other reference
     * @param lanesPerBatch lanes per worker round trip; 0 defers to
     *               config.shardLanesPerBatch (whose own 0 means "all
     *               active lanes in one frame" — maximal syscall
     *               amortization, no compute/wire overlap)
     */
    PipelinedShardedLaneEngine(const DncConfig &config, std::uint64_t seed,
                               std::shared_ptr<ShardLaneGroup> group,
                               Index lanesPerBatch = 0);

    void stepInto(const std::vector<Vector> &inputs,
                  std::vector<Vector> &outputs) override;
    Index admit() override;
    void markDraining(Index slot) override;
    void release(Index slot) override;
    LaneState laneState(Index slot) const override
    {
        return states_[slot];
    }
    Index activeLanes() const override { return active_; }
    Index drainingLanes() const override { return draining_; }
    Index freeLanes() const override
    {
        return states_.size() - active_ - draining_;
    }
    Index capacity() const override { return states_.size(); }
    void reset() override;
    const DncConfig &config() const override { return config_; }

    ShardLaneGroup &group() { return *group_; }
    Index lanesPerBatch() const { return lanesPerBatch_; }

  private:
    /** Gather one scattered batch and finish its lanes' outputs. */
    void finishBatch(Index first, Index count,
                     std::vector<Vector> &outputs);

    DncConfig config_;
    std::shared_ptr<ShardLaneGroup> group_;
    Index lanesPerBatch_; ///< 0 = all active lanes in one frame
    std::vector<std::unique_ptr<Controller>> controllers_; ///< per slot
    std::vector<std::vector<Vector>> lastReads_;           ///< per slot
    std::vector<MemoryReadout> readouts_;                  ///< per slot
    std::vector<LaneState> states_;
    std::vector<Index> freeSlots_;
    Index active_ = 0;
    Index draining_ = 0;

    // Reused step scratch.
    std::vector<Index> activeScratch_; ///< active slots, ascending
    std::vector<Index> batchLanes_;
    std::vector<const InterfaceVector *> batchIfaces_;
    std::vector<MemoryReadout *> batchOuts_;
};

} // namespace hima

#endif // HIMA_SHARD_SHARDED_DNC_H
