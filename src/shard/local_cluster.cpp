#include "shard/local_cluster.h"

#include <atomic>
#include <string>

#include <unistd.h>

#include "dnc/dncd.h"

namespace hima {

namespace {

std::atomic<int> g_endpointOrdinal{0};

/**
 * Ring slot capacity for one shm worker of this cluster shape: sized
 * for the largest hosted-tile share so every protocol frame (including
 * checkpoint snapshots) fits one slot.
 */
std::size_t
clusterShmSlotBytes(const DncConfig &config, Index tiles, Index lanes,
                    Index workerCount)
{
    const Index hosted = (tiles + workerCount - 1) / workerCount;
    return shmSlotBytesFor(shardConfigFor(config, tiles), hosted, lanes);
}

/**
 * Spawn `workerCount` workers and return one connected channel per
 * worker: loopback services in-process; socket and shm transports get a
 * serve thread per worker and a bounded recv timeout on the client
 * side.
 */
std::vector<std::unique_ptr<Channel>>
buildChannels(ClusterTransport transport, const DncConfig &config,
              Index tiles, Index lanes, Index workerCount,
              std::vector<std::shared_ptr<ShardWorker>> &workers,
              std::vector<std::thread> &threads)
{
    const std::size_t slotBytes =
        transport == ClusterTransport::Shm
            ? clusterShmSlotBytes(config, tiles, lanes, workerCount)
            : kShmDefaultSlotBytes;
    const int timeoutMs = static_cast<int>(config.shardRecvTimeoutMs);
    std::vector<std::unique_ptr<Channel>> channels;
    for (Index k = 0; k < workerCount; ++k)
        channels.push_back(makeClusterWorker(transport, workers, threads,
                                             slotBytes, timeoutMs));
    return channels;
}

} // namespace

std::unique_ptr<Channel>
makeClusterWorker(ClusterTransport transport,
                  std::vector<std::shared_ptr<ShardWorker>> &workers,
                  std::vector<std::thread> &threads,
                  std::size_t shmSlotBytes, int recvTimeoutMs)
{
    auto worker = std::make_shared<ShardWorker>();
    workers.push_back(worker);
    if (transport == ClusterTransport::Loopback)
        return std::make_unique<LoopbackChannel>(
            [worker](const std::uint8_t *data, std::size_t size,
                     FrameSink &reply) {
                worker->handleFrame(data, size, reply);
            });
    if (transport == ClusterTransport::Shm) {
        // Fresh name per worker incarnation: a respawned replacement
        // maps a brand-new ring, never a dead worker's leftovers.
        const std::string name =
            "/hima_shm_" + std::to_string(::getpid()) + "_" +
            std::to_string(g_endpointOrdinal.fetch_add(
                1, std::memory_order_relaxed));
        auto chan = ShmChannel::create(name, shmSlotBytes);
        if (!chan)
            HIMA_FATAL("local cluster: cannot create shm region %s",
                       name.c_str());
        const int attachBudget = recvTimeoutMs;
        threads.emplace_back([worker, name, attachBudget] {
            auto served = ShmChannel::attach(name, attachBudget);
            if (served)
                worker->serve(*served);
        });
        chan->setRecvTimeout(recvTimeoutMs);
        return chan;
    }
    std::unique_ptr<SocketChannel> client;
    // The serve threads accept with a bounded wait: if the connect
    // below ever failed, the thread ends instead of blocking a join
    // forever — the same bound that keeps a respawned replacement that
    // never dials back from wedging a recovery.
    if (transport == ClusterTransport::UnixSocket) {
        const std::string path =
            "/tmp/hima_shard_" + std::to_string(::getpid()) + "_" +
            std::to_string(g_endpointOrdinal.fetch_add(
                1, std::memory_order_relaxed)) +
            ".sock";
        auto listener = SocketListener::listenUnix(path);
        if (!listener)
            HIMA_FATAL("local cluster: cannot listen on %s", path.c_str());
        auto shared = std::shared_ptr<SocketListener>(std::move(listener));
        threads.emplace_back([worker, shared, recvTimeoutMs] {
            auto chan = shared->acceptWithTimeout(recvTimeoutMs);
            if (chan)
                worker->serve(*chan);
        });
        client = SocketChannel::connectUnix(path);
    } else {
        auto listener = SocketListener::listenTcp(0);
        if (!listener)
            HIMA_FATAL("local cluster: cannot listen on a tcp port");
        const std::uint16_t port = listener->port();
        auto shared = std::shared_ptr<SocketListener>(std::move(listener));
        threads.emplace_back([worker, shared, recvTimeoutMs] {
            auto chan = shared->acceptWithTimeout(recvTimeoutMs);
            if (chan)
                worker->serve(*chan);
        });
        client = SocketChannel::connectTcp("127.0.0.1", port);
    }
    if (!client) // fail fast: the accept thread would end, but loudly
        HIMA_FATAL("local cluster: connect failed");
    // Bounded recv: a worker that dies mid-step fails the step with
    // a diagnosis instead of blocking the coordinator forever.
    client->setRecvTimeout(recvTimeoutMs);
    return client;
}

LocalShardCluster
makeLocalCluster(ClusterTransport transport, const DncConfig &config,
                 Index tiles, Index workerCount, MergePolicy policy,
                 bool wantWeightings)
{
    LocalShardCluster cluster;
    std::vector<std::unique_ptr<Channel>> channels =
        buildChannels(transport, config, tiles, /*lanes=*/1, workerCount,
                      cluster.workers, cluster.threads);
    cluster.coordinator = std::make_unique<ShardCoordinator>(
        config, tiles, policy, std::move(channels), wantWeightings);
    return cluster;
}

LocalLaneCluster
makeLocalLaneCluster(ClusterTransport transport, const DncConfig &config,
                     Index tiles, Index lanes, Index workerCount,
                     MergePolicy policy, bool wantWeightings)
{
    LocalLaneCluster cluster;
    std::vector<std::unique_ptr<Channel>> channels =
        buildChannels(transport, config, tiles, lanes, workerCount,
                      cluster.workers, cluster.threads);
    cluster.group = std::make_shared<ShardLaneGroup>(
        config, tiles, lanes, policy, std::move(channels), wantWeightings);
    return cluster;
}

std::shared_ptr<RespawnHarness>
armClusterRecovery(LocalShardCluster &cluster, ClusterTransport transport)
{
    auto harness = std::make_shared<RespawnHarness>();
    harness->transport = transport;
    // Replacement channels must host the same frames the fleet does —
    // size their rings from the coordinator's own shard shape.
    harness->shmSlotBytes = shmSlotBytesFor(
        cluster.coordinator->shardConfig(),
        (cluster.coordinator->tiles() +
         cluster.coordinator->channelCount() - 1) /
            cluster.coordinator->channelCount());
    harness->recvTimeoutMs = static_cast<int>(
        cluster.coordinator->globalConfig().shardRecvTimeoutMs);
    cluster.coordinator->setRespawner([harness](Index) {
        return makeClusterWorker(harness->transport, harness->workers,
                                 harness->threads, harness->shmSlotBytes,
                                 harness->recvTimeoutMs);
    });
    return harness;
}

std::shared_ptr<RespawnHarness>
armClusterRecovery(LocalLaneCluster &cluster, ClusterTransport transport)
{
    auto harness = std::make_shared<RespawnHarness>();
    harness->transport = transport;
    harness->shmSlotBytes = shmSlotBytesFor(
        cluster.group->shardConfig(),
        (cluster.group->tiles() + cluster.group->channelCount() - 1) /
            cluster.group->channelCount(),
        cluster.group->lanes());
    harness->recvTimeoutMs =
        static_cast<int>(cluster.group->globalConfig().shardRecvTimeoutMs);
    cluster.group->setRespawner([harness](Index) {
        return makeClusterWorker(harness->transport, harness->workers,
                                 harness->threads, harness->shmSlotBytes,
                                 harness->recvTimeoutMs);
    });
    return harness;
}

} // namespace hima
