#include "shard/local_cluster.h"

#include <atomic>
#include <string>

#include <unistd.h>

namespace hima {

namespace {
std::atomic<int> g_endpointOrdinal{0};
}

LocalShardCluster
makeLocalCluster(ClusterTransport transport, const DncConfig &config,
                 Index tiles, Index workerCount, MergePolicy policy,
                 bool wantWeightings)
{
    LocalShardCluster cluster;
    if (transport == ClusterTransport::Loopback) {
        LoopbackShard loop = makeLoopbackShard(config, tiles, workerCount,
                                               policy, wantWeightings);
        cluster.coordinator = std::move(loop.coordinator);
        cluster.workers = std::move(loop.workers);
        return cluster;
    }

    std::vector<std::unique_ptr<Channel>> channels;
    for (Index k = 0; k < workerCount; ++k) {
        auto worker = std::make_shared<ShardWorker>();
        cluster.workers.push_back(worker);
        std::unique_ptr<SocketChannel> client;
        if (transport == ClusterTransport::UnixSocket) {
            const std::string path =
                "/tmp/hima_shard_" + std::to_string(::getpid()) + "_" +
                std::to_string(
                    g_endpointOrdinal.fetch_add(1,
                                                std::memory_order_relaxed)) +
                ".sock";
            auto listener = SocketListener::listenUnix(path);
            if (!listener)
                HIMA_FATAL("local cluster: cannot listen on %s",
                           path.c_str());
            auto shared =
                std::shared_ptr<SocketListener>(std::move(listener));
            cluster.threads.emplace_back([worker, shared] {
                auto chan = shared->accept();
                if (chan)
                    worker->serve(*chan);
            });
            client = SocketChannel::connectUnix(path);
        } else {
            auto listener = SocketListener::listenTcp(0);
            if (!listener)
                HIMA_FATAL("local cluster: cannot listen on a tcp port");
            const std::uint16_t port = listener->port();
            auto shared =
                std::shared_ptr<SocketListener>(std::move(listener));
            cluster.threads.emplace_back([worker, shared] {
                auto chan = shared->accept();
                if (chan)
                    worker->serve(*chan);
            });
            client = SocketChannel::connectTcp("127.0.0.1", port);
        }
        if (!client) // fail fast: the accept thread would hang forever
            HIMA_FATAL("local cluster: connect failed");
        channels.push_back(std::move(client));
    }
    cluster.coordinator = std::make_unique<ShardCoordinator>(
        config, tiles, policy, std::move(channels), wantWeightings);
    return cluster;
}

} // namespace hima
