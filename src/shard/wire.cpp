#include "shard/wire.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace hima {

// --------------------------------------------------------------------
// WireConfig <-> DncConfig
// --------------------------------------------------------------------

const char *
msgTypeName(MsgType type)
{
    switch (type) {
    case MsgType::Hello:
        return "Hello";
    case MsgType::HelloAck:
        return "HelloAck";
    case MsgType::Step:
        return "Step";
    case MsgType::StepReply:
        return "StepReply";
    case MsgType::Control:
        return "Control";
    case MsgType::ControlAck:
        return "ControlAck";
    case MsgType::Shutdown:
        return "Shutdown";
    case MsgType::Error:
        return "Error";
    case MsgType::LaneStep:
        return "LaneStep";
    case MsgType::LaneStepReply:
        return "LaneStepReply";
    case MsgType::CheckpointRequest:
        return "CheckpointRequest";
    case MsgType::CheckpointState:
        return "CheckpointState";
    case MsgType::Restore:
        return "Restore";
    case MsgType::Rejoin:
        return "Rejoin";
    case MsgType::StatsPull:
        return "StatsPull";
    case MsgType::StatsReport:
        return "StatsReport";
    }
    return "?";
}

WireConfig
WireConfig::fromShard(const DncConfig &shard, Index hostedTiles, Index lanes)
{
    WireConfig wc;
    wc.memoryRows = shard.memoryRows;
    wc.memoryWidth = shard.memoryWidth;
    wc.readHeads = shard.readHeads;
    wc.numThreads = shard.numThreads;
    wc.hostedTiles = hostedTiles;
    wc.lanes = lanes;
    wc.approximateSoftmax = shard.approximateSoftmax ? 1 : 0;
    wc.softmaxSegments = static_cast<std::uint32_t>(shard.softmaxSegments);
    wc.fixedPoint = shard.fixedPoint ? 1 : 0;
    wc.skimRate = shard.skimRate;
    wc.writeSkipThreshold = shard.writeSkipThreshold;
    wc.linkageSkipThreshold = shard.linkageSkipThreshold;
    wc.readSkipThreshold = shard.readSkipThreshold;
    wc.denseSweep = shard.linkageDenseSweep ? 1 : 0;
    return wc;
}

DncConfig
WireConfig::toShardConfig() const
{
    DncConfig cfg;
    cfg.memoryRows = static_cast<Index>(memoryRows);
    cfg.memoryWidth = static_cast<Index>(memoryWidth);
    cfg.readHeads = static_cast<Index>(readHeads);
    cfg.numThreads = static_cast<Index>(numThreads);
    cfg.approximateSoftmax = approximateSoftmax != 0;
    cfg.softmaxSegments = static_cast<int>(softmaxSegments);
    cfg.fixedPoint = fixedPoint != 0;
    cfg.skimRate = skimRate;
    cfg.writeSkipThreshold = writeSkipThreshold;
    cfg.linkageSkipThreshold = linkageSkipThreshold;
    cfg.readSkipThreshold = readSkipThreshold;
    cfg.linkageDenseSweep = denseSweep != 0;
    return cfg;
}

// --------------------------------------------------------------------
// WireWriter
// --------------------------------------------------------------------

void
WireWriter::attachExternal(std::uint8_t *slot, std::size_t capacity)
{
    HIMA_ASSERT(slot != nullptr, "WireWriter: null external slot");
    ext_ = slot;
    extCap_ = capacity;
    extSize_ = 0;
}

void
WireWriter::detachExternal()
{
    ext_ = nullptr;
    extCap_ = 0;
    extSize_ = 0;
    buf_.clear();
}

void
WireWriter::push(std::uint8_t b)
{
    if (ext_ != nullptr) {
        HIMA_ASSERT(extSize_ < extCap_,
                    "WireWriter: frame exceeds the %zu-byte external slot "
                    "(slot sizing bug — see shmSlotBytesFor)",
                    extCap_);
        ext_[extSize_++] = b;
    } else {
        buf_.push_back(b);
    }
}

void
WireWriter::append(const void *src, std::size_t n)
{
    if (ext_ != nullptr) {
        HIMA_ASSERT(extSize_ + n <= extCap_,
                    "WireWriter: frame exceeds the %zu-byte external slot "
                    "(slot sizing bug — see shmSlotBytesFor)",
                    extCap_);
        std::memcpy(ext_ + extSize_, src, n);
        extSize_ += n;
    } else {
        const auto *bytes = static_cast<const std::uint8_t *>(src);
        buf_.insert(buf_.end(), bytes, bytes + n);
    }
}

void
WireWriter::putU16(std::uint16_t v)
{
    const std::uint8_t b[2] = {static_cast<std::uint8_t>(v),
                               static_cast<std::uint8_t>(v >> 8)};
    append(b, sizeof(b));
}

void
WireWriter::putU32(std::uint32_t v)
{
    std::uint8_t b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append(b, sizeof(b));
}

void
WireWriter::putU64(std::uint64_t v)
{
    std::uint8_t b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    append(b, sizeof(b));
}

void
WireWriter::putReal(Real v)
{
    putU64(std::bit_cast<std::uint64_t>(v));
}

void
WireWriter::putRealArray(const Real *values, Index count)
{
    static_assert(sizeof(Real) == 8, "wire Reals are binary64");
    if constexpr (std::endian::native == std::endian::little) {
        // The host representation already matches the wire layout:
        // append the whole array in one shot.
        append(values, 8 * static_cast<std::size_t>(count));
    } else {
        for (Index i = 0; i < count; ++i)
            putReal(values[i]);
    }
}

void
WireWriter::putVector(const Vector &v)
{
    putU32(static_cast<std::uint32_t>(v.size()));
    putRealArray(v.data(), v.size());
}

void
WireWriter::putString(const std::string &s)
{
    putU32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
}

void
WireWriter::header(MsgType type)
{
    putU16(kWireMagic);
    putU8(kWireVersion);
    putU8(static_cast<std::uint8_t>(type));
}

// --------------------------------------------------------------------
// WireReader
// --------------------------------------------------------------------

std::uint8_t
WireReader::u8()
{
    if (!ok_ || size_ - pos_ < 1) {
        ok_ = false;
        return 0;
    }
    return data_[pos_++];
}

std::uint16_t
WireReader::u16()
{
    if (!ok_ || size_ - pos_ < 2) {
        ok_ = false;
        return 0;
    }
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
}

std::uint32_t
WireReader::u32()
{
    if (!ok_ || size_ - pos_ < 4) {
        ok_ = false;
        return 0;
    }
    std::uint32_t v = 0;
    for (int b = 0; b < 4; ++b)
        v |= static_cast<std::uint32_t>(data_[pos_ + b]) << (8 * b);
    pos_ += 4;
    return v;
}

std::uint64_t
WireReader::u64()
{
    if (!ok_ || size_ - pos_ < 8) {
        ok_ = false;
        return 0;
    }
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b)
        v |= static_cast<std::uint64_t>(data_[pos_ + b]) << (8 * b);
    pos_ += 8;
    return v;
}

Real
WireReader::real()
{
    return std::bit_cast<Real>(u64());
}

void
WireReader::realArray(Real *out, Index count)
{
    if (!ok_ || size_ - pos_ < 8ull * count) {
        ok_ = false;
        return;
    }
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(out, data_ + pos_, 8 * count);
        pos_ += 8 * count;
    } else {
        for (Index i = 0; i < count; ++i)
            out[i] = real();
    }
}

void
WireReader::vector(Vector &out, Index expected)
{
    const std::uint32_t count = u32();
    // Validate the declared count against the handshake shape *before*
    // resizing: a corrupt frame must never drive an allocation.
    if (!ok_ || count != expected || size_ - pos_ < 8ull * count) {
        ok_ = false;
        return;
    }
    out.resize(expected);
    realArray(out.data(), expected);
}

void
WireReader::string(std::string &out)
{
    const std::uint32_t count = u32();
    if (!ok_ || size_ - pos_ < count) {
        ok_ = false;
        return;
    }
    out.assign(reinterpret_cast<const char *>(data_ + pos_), count);
    pos_ += count;
}

void
WireReader::header(MsgType expected)
{
    const std::uint16_t magic = u16();
    const std::uint8_t version = u8();
    const std::uint8_t type = u8();
    if (!ok_ || magic != kWireMagic || version != kWireVersion ||
        type != static_cast<std::uint8_t>(expected))
        ok_ = false;
}

bool
peekType(const std::uint8_t *data, std::size_t size, MsgType &type)
{
    WireReader r(data, size);
    const std::uint16_t magic = r.u16();
    const std::uint8_t version = r.u8();
    const std::uint8_t raw = r.u8();
    if (!r.ok() || magic != kWireMagic || version != kWireVersion)
        return false;
    if (raw < static_cast<std::uint8_t>(MsgType::Hello) ||
        raw > static_cast<std::uint8_t>(MsgType::StatsReport))
        return false;
    type = static_cast<MsgType>(raw);
    return true;
}

// --------------------------------------------------------------------
// Interface-vector codec (shapes pinned by the handshake config).
// --------------------------------------------------------------------

namespace {

void
putInterface(const InterfaceVector &iface, WireWriter &out)
{
    out.putU32(static_cast<std::uint32_t>(iface.readKeys.size()));
    for (const Vector &key : iface.readKeys)
        out.putVector(key);
    for (Real s : iface.readStrengths)
        out.putReal(s);
    out.putVector(iface.writeKey);
    out.putReal(iface.writeStrength);
    out.putVector(iface.eraseVector);
    out.putVector(iface.writeVector);
    for (Real g : iface.freeGates)
        out.putReal(g);
    out.putReal(iface.allocationGate);
    out.putReal(iface.writeGate);
    for (const ReadMode &mode : iface.readModes) {
        out.putReal(mode.backward);
        out.putReal(mode.content);
        out.putReal(mode.forward);
    }
}

void
readInterface(WireReader &in, const DncConfig &shard, InterfaceVector &iface)
{
    const Index r = shard.readHeads;
    const Index w = shard.memoryWidth;
    const std::uint32_t heads = in.u32();
    if (heads != r) {
        in.fail();
        return;
    }
    iface.readKeys.resize(r);
    for (Index h = 0; h < r; ++h)
        in.vector(iface.readKeys[h], w);
    iface.readStrengths.resize(r);
    for (Index h = 0; h < r; ++h)
        iface.readStrengths[h] = in.real();
    in.vector(iface.writeKey, w);
    iface.writeStrength = in.real();
    in.vector(iface.eraseVector, w);
    in.vector(iface.writeVector, w);
    iface.freeGates.resize(r);
    for (Index h = 0; h < r; ++h)
        iface.freeGates[h] = in.real();
    iface.allocationGate = in.real();
    iface.writeGate = in.real();
    iface.readModes.resize(r);
    for (Index h = 0; h < r; ++h) {
        iface.readModes[h].backward = in.real();
        iface.readModes[h].content = in.real();
        iface.readModes[h].forward = in.real();
    }
}

/** Hello/Rejoin shared handshake body. */
void
putConfigBody(const WireConfig &config, WireWriter &out)
{
    out.putU64(config.memoryRows);
    out.putU64(config.memoryWidth);
    out.putU64(config.readHeads);
    out.putU64(config.numThreads);
    out.putU64(config.hostedTiles);
    out.putU64(config.lanes);
    out.putU8(config.approximateSoftmax);
    out.putU32(config.softmaxSegments);
    out.putU8(config.fixedPoint);
    out.putReal(config.skimRate);
    out.putReal(config.writeSkipThreshold);
    out.putReal(config.linkageSkipThreshold);
    out.putReal(config.readSkipThreshold);
    out.putU8(config.denseSweep);
}

void
readConfigBody(WireReader &in, WireConfig &config)
{
    config.memoryRows = in.u64();
    config.memoryWidth = in.u64();
    config.readHeads = in.u64();
    config.numThreads = in.u64();
    config.hostedTiles = in.u64();
    config.lanes = in.u64();
    config.approximateSoftmax = in.u8();
    config.softmaxSegments = in.u32();
    config.fixedPoint = in.u8();
    config.skimRate = in.real();
    config.writeSkipThreshold = in.real();
    config.linkageSkipThreshold = in.real();
    config.readSkipThreshold = in.real();
    config.denseSweep = in.u8();
}

/** True when any of the row's `count` entries is nonzero. This — not
 * the cached norm — is the sparse-encoding predicate: a row of
 * denormals can square-underflow to a zero norm while still holding
 * state, and the same scan on both the live-tile and snapshot encoders
 * keeps their frames byte-identical. */
bool
rowHasNonzero(const Real *row, Index count)
{
    for (Index c = 0; c < count; ++c)
        if (row[c] != 0.0)
            return true;
    return false;
}

/**
 * Tile-state body, shared by the live-tile (CheckpointState) and
 * snapshot (Restore) encoders so their frames are byte-identical for
 * equal state. Layout: [u8 encoding] [u32 touchedCount] [ascending u32
 * slots], then the dense v5 field sequence (encoding 0) or the sparse
 * row-pair sections (encoding 1; rowNorms omitted — the decoder
 * rebuilds them from the shipped rows). Each tile takes whichever
 * encoding is byte-smaller, so the dense size bounds every frame (the
 * shm slot sizing relies on that); `denseSweep` forces dense.
 */
void
putStateBodyV6(const Real *mem, const Real *rowNorms, const Real *usage,
               const Real *link, const Real *prec, const Real *ww,
               const Real *const *readW, Index n, Index w, Index r,
               const std::vector<Index> &touched, bool denseSweep,
               WireWriter &out)
{
    Index memRows = 0;
    Index linkRows = 0;
    if (!denseSweep) {
        for (Index i = 0; i < n; ++i)
            if (rowHasNonzero(mem + i * w, w))
                ++memRows;
        for (Index i = 0; i < n; ++i)
            if (rowHasNonzero(link + i * n, n))
                ++linkRows;
    }
    const std::size_t denseBytes =
        8 * (static_cast<std::size_t>(n) * w + n + n * static_cast<std::size_t>(n));
    const std::size_t sparseBytes =
        8 + memRows * (4 + 8 * static_cast<std::size_t>(w)) +
        linkRows * (4 + 8 * static_cast<std::size_t>(n));
    const bool sparse = !denseSweep && sparseBytes < denseBytes;

    out.putU8(sparse ? 1 : 0);
    out.putU32(static_cast<std::uint32_t>(touched.size()));
    for (Index s : touched)
        out.putU32(static_cast<std::uint32_t>(s));

    if (!sparse) {
        out.putRealArray(mem, n * w);
        out.putRealArray(rowNorms, n);
        out.putRealArray(usage, n);
        out.putRealArray(link, static_cast<std::size_t>(n) * n);
        out.putRealArray(prec, n);
        out.putRealArray(ww, n);
        for (Index h = 0; h < r; ++h)
            out.putRealArray(readW[h], n);
        return;
    }

    out.putU32(static_cast<std::uint32_t>(memRows));
    for (Index i = 0; i < n; ++i) {
        if (!rowHasNonzero(mem + i * w, w))
            continue;
        out.putU32(static_cast<std::uint32_t>(i));
        out.putRealArray(mem + i * w, w);
    }
    out.putU32(static_cast<std::uint32_t>(linkRows));
    for (Index i = 0; i < n; ++i) {
        if (!rowHasNonzero(link + i * n, n))
            continue;
        out.putU32(static_cast<std::uint32_t>(i));
        out.putRealArray(link + i * n, n);
    }
    out.putRealArray(usage, n);
    out.putRealArray(prec, n);
    out.putRealArray(ww, n);
    for (Index h = 0; h < r; ++h)
        out.putRealArray(readW[h], n);
}

/**
 * Shape echo for snapshot frames: sparse tile bodies are
 * variable-length, so decoders need explicit shapes to reject a
 * mismatched peer instead of misparsing (or accepting) its frames.
 */
void
putShapeEcho(const DncConfig &shard, WireWriter &out)
{
    out.putU32(static_cast<std::uint32_t>(shard.memoryRows));
    out.putU32(static_cast<std::uint32_t>(shard.memoryWidth));
    out.putU32(static_cast<std::uint32_t>(shard.readHeads));
}

void
putTileStateBody(const MemoryUnit &tile, WireWriter &out)
{
    const DncConfig &cfg = tile.config();
    const Index r = cfg.readHeads;
    const Real *readW[32]; // readHeads capped at 32 by the handshake
    HIMA_ASSERT(r <= 32, "readHeads exceeds wire cap");
    for (Index h = 0; h < r; ++h)
        readW[h] = tile.readWeightings()[h].data();
    putStateBodyV6(tile.memory().data(), tile.rowNorms().data(),
                   tile.usage().data(), tile.linkage().linkage().data(),
                   tile.linkage().precedence().data(),
                   tile.writeWeighting().data(), readW, cfg.memoryRows,
                   cfg.memoryWidth, r, tile.linkage().touchedSlots(),
                   cfg.linkageDenseSweep, out);
}

void
putSnapshotBody(const MemoryTileState &s, const DncConfig &shard,
                WireWriter &out)
{
    const Index r = shard.readHeads;
    const Real *readW[32];
    HIMA_ASSERT(r <= 32, "readHeads exceeds wire cap");
    for (Index h = 0; h < r; ++h)
        readW[h] = s.readWeightings[h].data();
    putStateBodyV6(s.memory.data(), s.rowNorms.data(), s.usage.data(),
                   s.linkage.data(), s.precedence.data(),
                   s.writeWeighting.data(), readW, shard.memoryRows,
                   shard.memoryWidth, r, s.touchedSlots,
                   shard.linkageDenseSweep, out);
}

/**
 * Read one ascending-index list section: [u32 count <= n] [u32 x
 * count, strictly ascending, < n] into `out` (capacity-reusing).
 * Fail-closed: any violation trips the reader's sticky flag.
 */
void
readAscendingIndices(WireReader &in, Index n, std::vector<Index> &out)
{
    const std::uint32_t count = in.u32();
    out.clear();
    if (!in.ok() || count > static_cast<std::uint32_t>(n)) {
        in.fail();
        return;
    }
    std::uint32_t prev = 0;
    for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint32_t idx = in.u32();
        if (!in.ok() || idx >= static_cast<std::uint32_t>(n) ||
            (k > 0 && idx <= prev)) {
            in.fail();
            return;
        }
        out.push_back(static_cast<Index>(idx));
        prev = idx;
    }
}

void
readSnapshotBody(WireReader &in, const DncConfig &shard, MemoryTileState &s)
{
    const Index n = shard.memoryRows;
    const Index w = shard.memoryWidth;
    const Index r = shard.readHeads;
    // Destinations are sized by the trusted handshake config, never by
    // frame contents; resize reuses capacity in steady state.
    s.sizeFor(shard);
    const std::uint8_t enc = in.u8();
    if (!in.ok() || enc > 1) {
        in.fail();
        return;
    }
    readAscendingIndices(in, n, s.touchedSlots);
    if (!in.ok())
        return;

    if (enc == 0) {
        in.realArray(s.memory.data(), n * w);
        in.realArray(s.rowNorms.data(), n);
        in.realArray(s.usage.data(), n);
        in.realArray(s.linkage.data(), n * n);
        in.realArray(s.precedence.data(), n);
        in.realArray(s.writeWeighting.data(), n);
        for (Index h = 0; h < r; ++h)
            in.realArray(s.readWeightings[h].data(), n);
        return;
    }

    // Sparse body: zero-fill, scatter the shipped rows, and rebuild the
    // row-norm cache with the memory write's own summation order
    // (ascending acc += v*v, then sqrt), so the rebuilt cache is
    // bit-identical to the live tile's incrementally maintained one.
    // Row indices are validated strictly ascending and in range before
    // any row lands; omitted rows are all-zero by the encoder's
    // nonzero-scan, so their zero norm is exact too.
    s.memory.fill(0.0);
    s.rowNorms.fill(0.0);
    std::uint32_t count = in.u32();
    if (!in.ok() || count > static_cast<std::uint32_t>(n)) {
        in.fail();
        return;
    }
    std::uint32_t prev = 0;
    for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint32_t idx = in.u32();
        if (!in.ok() || idx >= static_cast<std::uint32_t>(n) ||
            (k > 0 && idx <= prev)) {
            in.fail();
            return;
        }
        Real *row = s.memory.data() + static_cast<std::size_t>(idx) * w;
        in.realArray(row, w);
        Real acc = 0.0;
        for (Index c = 0; c < w; ++c)
            acc += row[c] * row[c];
        s.rowNorms[idx] = std::sqrt(acc);
        prev = idx;
    }
    s.linkage.fill(0.0);
    count = in.u32();
    if (!in.ok() || count > static_cast<std::uint32_t>(n)) {
        in.fail();
        return;
    }
    prev = 0;
    for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint32_t idx = in.u32();
        if (!in.ok() || idx >= static_cast<std::uint32_t>(n) ||
            (k > 0 && idx <= prev)) {
            in.fail();
            return;
        }
        in.realArray(s.linkage.data() + static_cast<std::size_t>(idx) * n, n);
        prev = idx;
    }
    in.realArray(s.usage.data(), n);
    in.realArray(s.precedence.data(), n);
    in.realArray(s.writeWeighting.data(), n);
    for (Index h = 0; h < r; ++h)
        in.realArray(s.readWeightings[h].data(), n);
}

/** Shared CheckpointState/Restore decoder (identical bodies). */
bool
decodeSnapshotFrame(MsgType type, const std::uint8_t *data,
                    std::size_t size, const DncConfig &shard,
                    MemoryTileState *const *snapshots, Index count,
                    std::uint64_t &seq)
{
    WireReader in(data, size);
    in.header(type);
    seq = in.u64();
    const std::uint32_t declared = in.u32();
    if (!in.ok() || declared != count)
        return false;
    // Shape echo: sparse bodies are variable-length, so a shape
    // mismatch is not detectable from the frame length alone.
    const std::uint32_t n = in.u32();
    const std::uint32_t w = in.u32();
    const std::uint32_t r = in.u32();
    if (!in.ok() || n != static_cast<std::uint32_t>(shard.memoryRows) ||
        w != static_cast<std::uint32_t>(shard.memoryWidth) ||
        r != static_cast<std::uint32_t>(shard.readHeads))
        return false;
    for (Index i = 0; i < count && in.ok(); ++i)
        readSnapshotBody(in, shard, *snapshots[i]);
    return in.atEnd();
}

} // namespace

// --------------------------------------------------------------------
// Message encoders.
// --------------------------------------------------------------------

void
encodeHello(const WireConfig &config, WireWriter &out)
{
    out.clear();
    out.header(MsgType::Hello);
    putConfigBody(config, out);
}

void
encodeHelloAck(const HelloAckMsg &msg, WireWriter &out)
{
    out.clear();
    out.header(MsgType::HelloAck);
    out.putU8(msg.ok ? 1 : 0);
    out.putU64(msg.hostedTiles);
    out.putString(msg.message);
}

void
encodeStepSpan(std::uint64_t seq, bool wantWeightings,
               std::uint32_t scoredMask, const InterfaceVector *ifaces,
               Index count, WireWriter &out)
{
    out.clear();
    out.header(MsgType::Step);
    out.putU64(seq);
    out.putU8(wantWeightings ? 1 : 0);
    out.putU32(scoredMask);
    out.putU8(0); // per-tile interfaces follow
    out.putU32(static_cast<std::uint32_t>(count));
    for (Index t = 0; t < count; ++t)
        putInterface(ifaces[t], out);
}

void
encodeStepBroadcast(std::uint64_t seq, bool wantWeightings,
                    std::uint32_t scoredMask, const InterfaceVector &iface,
                    Index count, WireWriter &out)
{
    out.clear();
    out.header(MsgType::Step);
    out.putU64(seq);
    out.putU8(wantWeightings ? 1 : 0);
    out.putU32(scoredMask);
    out.putU8(1); // broadcast: one interface on the wire, count logical
    out.putU32(static_cast<std::uint32_t>(count));
    putInterface(iface, out);
}

void
encodeStep(const StepMsg &msg, const DncConfig &shard, WireWriter &out)
{
    (void)shard; // shapes are implied by the handshake config
    encodeStepSpan(msg.seq, msg.wantWeightings, msg.scoredMask,
                   msg.ifaces.data(), msg.ifaces.size(), out);
}

void
encodeStepReply(std::uint64_t seq, bool withWeightings,
                const MemoryReadout *tiles, Index count,
                const std::vector<Real> &confidence, const DncConfig &shard,
                WireWriter &out)
{
    out.clear();
    out.header(MsgType::StepReply);
    out.putU64(seq);
    out.putU8(withWeightings ? 1 : 0);
    out.putU32(static_cast<std::uint32_t>(count));
    const Index r = shard.readHeads;
    for (Index t = 0; t < count; ++t) {
        const MemoryReadout &readout = tiles[t];
        for (Index h = 0; h < r; ++h)
            out.putVector(readout.readVectors[h]);
        for (Index h = 0; h < r; ++h)
            out.putReal(confidence[t * r + h]);
        if (withWeightings) {
            for (Index h = 0; h < r; ++h)
                out.putVector(readout.readWeightings[h]);
            out.putVector(readout.writeWeighting);
        }
    }
}

void
encodeLaneStep(std::uint64_t seq, bool wantWeightings,
               const LaneStepEntry *entries, Index count, WireWriter &out)
{
    out.clear();
    out.header(MsgType::LaneStep);
    out.putU64(seq);
    out.putU8(wantWeightings ? 1 : 0);
    out.putU32(static_cast<std::uint32_t>(count));
    for (Index j = 0; j < count; ++j) {
        out.putU32(entries[j].lane);
        out.putU32(entries[j].scoredMask);
        putInterface(*entries[j].iface, out);
    }
}

void
encodeLaneStepReply(std::uint64_t seq, bool withWeightings,
                    const std::uint32_t *lanes, Index laneCount,
                    Index hostedTiles,
                    const std::vector<MemoryReadout> &readouts,
                    const std::vector<Real> &confidence,
                    const DncConfig &shard, WireWriter &out)
{
    out.clear();
    out.header(MsgType::LaneStepReply);
    out.putU64(seq);
    out.putU8(withWeightings ? 1 : 0);
    out.putU32(static_cast<std::uint32_t>(laneCount));
    const Index r = shard.readHeads;
    for (Index j = 0; j < laneCount; ++j) {
        out.putU32(lanes[j]);
        for (Index i = 0; i < hostedTiles; ++i) {
            const Index slot = j * hostedTiles + i;
            const MemoryReadout &readout = readouts[slot];
            for (Index h = 0; h < r; ++h)
                out.putVector(readout.readVectors[h]);
            out.putRealArray(confidence.data() + slot * r, r);
            if (withWeightings) {
                for (Index h = 0; h < r; ++h)
                    out.putVector(readout.readWeightings[h]);
                out.putVector(readout.writeWeighting);
            }
        }
    }
}

void
encodeControl(const ControlMsg &msg, WireWriter &out)
{
    out.clear();
    out.header(MsgType::Control);
    out.putU8(static_cast<std::uint8_t>(msg.kind));
    out.putU64(msg.seq);
    out.putU32(msg.lane);
}

void
encodeControlAck(std::uint64_t seq, WireWriter &out)
{
    out.clear();
    out.header(MsgType::ControlAck);
    out.putU64(seq);
}

void
encodeShutdown(WireWriter &out)
{
    out.clear();
    out.header(MsgType::Shutdown);
}

void
encodeError(const std::string &message, WireWriter &out)
{
    out.clear();
    out.header(MsgType::Error);
    out.putString(message);
}

void
encodeCheckpointRequest(std::uint64_t seq, WireWriter &out)
{
    out.clear();
    out.header(MsgType::CheckpointRequest);
    out.putU64(seq);
}

void
encodeCheckpointState(std::uint64_t seq,
                      const std::vector<std::unique_ptr<MemoryUnit>> &tiles,
                      const DncConfig &shard, WireWriter &out)
{
    out.clear();
    out.header(MsgType::CheckpointState);
    out.putU64(seq);
    out.putU32(static_cast<std::uint32_t>(tiles.size()));
    putShapeEcho(shard, out);
    for (const auto &tile : tiles)
        putTileStateBody(*tile, out);
}

void
encodeRestore(std::uint64_t seq, const MemoryTileState *const *snapshots,
              Index count, const DncConfig &shard, WireWriter &out)
{
    out.clear();
    out.header(MsgType::Restore);
    out.putU64(seq);
    out.putU32(static_cast<std::uint32_t>(count));
    putShapeEcho(shard, out);
    for (Index i = 0; i < count; ++i)
        putSnapshotBody(*snapshots[i], shard, out);
}

void
encodeRejoin(const WireConfig &config, std::uint64_t firstTile,
             WireWriter &out)
{
    out.clear();
    out.header(MsgType::Rejoin);
    putConfigBody(config, out);
    out.putU64(firstTile);
}

void
encodeStatsPull(std::uint64_t seq, WireWriter &out)
{
    out.clear();
    out.header(MsgType::StatsPull);
    out.putU64(seq);
}

/** Cap on declared scrape entries (fail-closed decode bound). */
constexpr std::uint32_t kMaxStatsEntries = 65536;

void
encodeStatsReport(std::uint64_t seq, const obs::Snapshot &snapshot,
                  WireWriter &out)
{
    HIMA_ASSERT(snapshot.entries.size() <= kMaxStatsEntries,
                "StatsReport: %zu entries exceed the wire cap %u",
                snapshot.entries.size(), kMaxStatsEntries);
    out.clear();
    out.header(MsgType::StatsReport);
    out.putU64(seq);
    out.putU32(static_cast<std::uint32_t>(snapshot.entries.size()));
    for (const obs::SnapshotEntry &e : snapshot.entries) {
        out.putString(e.name);
        out.putU8(static_cast<std::uint8_t>(e.kind));
        switch (e.kind) {
          case obs::MetricKind::Counter:
            out.putU64(e.counter);
            break;
          case obs::MetricKind::Gauge:
            out.putU64(static_cast<std::uint64_t>(e.gauge));
            break;
          case obs::MetricKind::Histogram: {
            out.putU64(e.hist.count);
            out.putU64(e.hist.sum);
            out.putU64(e.hist.max);
            std::uint16_t nonZero = 0;
            for (unsigned b = 0; b < obs::kHistogramBuckets; ++b)
                if (e.hist.buckets[b] != 0)
                    ++nonZero;
            out.putU16(nonZero);
            for (unsigned b = 0; b < obs::kHistogramBuckets; ++b) {
                if (e.hist.buckets[b] == 0)
                    continue;
                out.putU16(static_cast<std::uint16_t>(b));
                out.putU64(e.hist.buckets[b]);
            }
            break;
          }
        }
    }
}

// --------------------------------------------------------------------
// Message decoders.
// --------------------------------------------------------------------

bool
decodeHello(const std::uint8_t *data, std::size_t size, WireConfig &config)
{
    WireReader in(data, size);
    in.header(MsgType::Hello);
    readConfigBody(in, config);
    return in.atEnd();
}

bool
decodeHelloAck(const std::uint8_t *data, std::size_t size, HelloAckMsg &msg)
{
    WireReader in(data, size);
    in.header(MsgType::HelloAck);
    msg.ok = in.u8() != 0;
    msg.hostedTiles = in.u64();
    in.string(msg.message);
    return in.atEnd();
}

bool
decodeStep(const std::uint8_t *data, std::size_t size, const DncConfig &shard,
           Index hostedTiles, StepMsg &msg)
{
    WireReader in(data, size);
    in.header(MsgType::Step);
    msg.seq = in.u64();
    msg.wantWeightings = in.u8() != 0;
    msg.scoredMask = in.u32();
    const std::uint8_t broadcast = in.u8();
    const std::uint32_t count = in.u32();
    if (!in.ok() || broadcast > 1 || count != hostedTiles)
        return false;
    msg.ifaces.resize(hostedTiles);
    if (broadcast) {
        // One interface on the wire; expand to every hosted tile
        // (same-shape copy assignments — no steady-state allocation).
        readInterface(in, shard, msg.ifaces[0]);
        for (Index t = 1; t < hostedTiles; ++t)
            msg.ifaces[t] = msg.ifaces[0];
    } else {
        for (Index t = 0; t < hostedTiles; ++t)
            readInterface(in, shard, msg.ifaces[t]);
    }
    return in.atEnd();
}

bool
decodeStepReply(const std::uint8_t *data, std::size_t size,
                const DncConfig &shard, Index hostedTiles, StepReplyMsg &msg)
{
    WireReader in(data, size);
    in.header(MsgType::StepReply);
    msg.seq = in.u64();
    msg.hasWeightings = in.u8() != 0;
    const std::uint32_t count = in.u32();
    if (!in.ok() || count != hostedTiles)
        return false;
    const Index r = shard.readHeads;
    const Index w = shard.memoryWidth;
    const Index n = shard.memoryRows;
    msg.tiles.resize(hostedTiles);
    msg.confidence.resize(hostedTiles * r);
    for (Index t = 0; t < hostedTiles; ++t) {
        MemoryReadout &readout = msg.tiles[t];
        readout.readVectors.resize(r);
        for (Index h = 0; h < r; ++h)
            in.vector(readout.readVectors[h], w);
        for (Index h = 0; h < r; ++h)
            msg.confidence[t * r + h] = in.real();
        if (msg.hasWeightings) {
            readout.readWeightings.resize(r);
            for (Index h = 0; h < r; ++h)
                in.vector(readout.readWeightings[h], n);
            in.vector(readout.writeWeighting, n);
        } else {
            readout.readWeightings.clear();
            readout.writeWeighting.resize(0);
        }
    }
    return in.atEnd();
}

bool
decodeLaneStep(const std::uint8_t *data, std::size_t size,
               const DncConfig &shard, Index lanes, LaneStepMsg &msg)
{
    WireReader in(data, size);
    in.header(MsgType::LaneStep);
    msg.seq = in.u64();
    msg.wantWeightings = in.u8() != 0;
    const std::uint32_t count = in.u32();
    if (!in.ok() || count == 0 || count > lanes)
        return false;
    msg.lanes.resize(count);
    msg.masks.resize(count);
    msg.ifaces.resize(count);
    for (Index j = 0; j < count; ++j) {
        msg.lanes[j] = in.u32();
        msg.masks[j] = in.u32();
        // Strictly increasing lane ids < lanes: no duplicates (a frame
        // stepping one lane twice would race on its tiles), no
        // out-of-range tile-set access.
        if (!in.ok() || msg.lanes[j] >= lanes ||
            (j > 0 && msg.lanes[j] <= msg.lanes[j - 1]))
            return false;
        readInterface(in, shard, msg.ifaces[j]);
    }
    return in.atEnd();
}

bool
decodeLaneStepReply(const std::uint8_t *data, std::size_t size,
                    const DncConfig &shard, Index hostedTiles,
                    Index maxLanes, LaneStepReplyMsg &msg)
{
    WireReader in(data, size);
    in.header(MsgType::LaneStepReply);
    msg.seq = in.u64();
    msg.hasWeightings = in.u8() != 0;
    const std::uint32_t count = in.u32();
    if (!in.ok() || count == 0 || count > maxLanes)
        return false;
    const Index r = shard.readHeads;
    const Index w = shard.memoryWidth;
    const Index n = shard.memoryRows;
    msg.lanes.resize(count);
    msg.tiles.resize(count * hostedTiles);
    msg.confidence.resize(count * hostedTiles * r);
    for (Index j = 0; j < count; ++j) {
        msg.lanes[j] = in.u32();
        if (!in.ok() || (j > 0 && msg.lanes[j] <= msg.lanes[j - 1]))
            return false;
        for (Index i = 0; i < hostedTiles; ++i) {
            const Index slot = j * hostedTiles + i;
            MemoryReadout &readout = msg.tiles[slot];
            readout.readVectors.resize(r);
            for (Index h = 0; h < r; ++h)
                in.vector(readout.readVectors[h], w);
            in.realArray(msg.confidence.data() + slot * r, r);
            if (msg.hasWeightings) {
                readout.readWeightings.resize(r);
                for (Index h = 0; h < r; ++h)
                    in.vector(readout.readWeightings[h], n);
                in.vector(readout.writeWeighting, n);
            } else {
                readout.readWeightings.clear();
                readout.writeWeighting.resize(0);
            }
        }
    }
    return in.atEnd();
}

bool
decodeControl(const std::uint8_t *data, std::size_t size, ControlMsg &msg)
{
    WireReader in(data, size);
    in.header(MsgType::Control);
    const std::uint8_t kind = in.u8();
    msg.seq = in.u64();
    msg.lane = in.u32();
    if (!in.atEnd() || kind > static_cast<std::uint8_t>(ControlKind::Admit))
        return false;
    msg.kind = static_cast<ControlKind>(kind);
    return true;
}

bool
decodeControlAck(const std::uint8_t *data, std::size_t size,
                 std::uint64_t &seq)
{
    WireReader in(data, size);
    in.header(MsgType::ControlAck);
    seq = in.u64();
    return in.atEnd();
}

bool
decodeError(const std::uint8_t *data, std::size_t size, ErrorMsg &msg)
{
    WireReader in(data, size);
    in.header(MsgType::Error);
    in.string(msg.message);
    return in.atEnd();
}

bool
decodeCheckpointRequest(const std::uint8_t *data, std::size_t size,
                        std::uint64_t &seq)
{
    WireReader in(data, size);
    in.header(MsgType::CheckpointRequest);
    seq = in.u64();
    return in.atEnd();
}

bool
decodeCheckpointState(const std::uint8_t *data, std::size_t size,
                      const DncConfig &shard,
                      MemoryTileState *const *snapshots, Index count,
                      std::uint64_t &seq)
{
    return decodeSnapshotFrame(MsgType::CheckpointState, data, size, shard,
                               snapshots, count, seq);
}

bool
decodeRestore(const std::uint8_t *data, std::size_t size,
              const DncConfig &shard, MemoryTileState *const *snapshots,
              Index count, std::uint64_t &seq)
{
    return decodeSnapshotFrame(MsgType::Restore, data, size, shard,
                               snapshots, count, seq);
}

bool
decodeRejoin(const std::uint8_t *data, std::size_t size, WireConfig &config,
             std::uint64_t &firstTile)
{
    WireReader in(data, size);
    in.header(MsgType::Rejoin);
    readConfigBody(in, config);
    firstTile = in.u64();
    return in.atEnd();
}

bool
decodeStatsPull(const std::uint8_t *data, std::size_t size,
                std::uint64_t &seq)
{
    WireReader in(data, size);
    in.header(MsgType::StatsPull);
    seq = in.u64();
    return in.atEnd();
}

bool
decodeStatsReport(const std::uint8_t *data, std::size_t size,
                  obs::Snapshot &snapshot, std::uint64_t &seq)
{
    snapshot.clear();
    WireReader in(data, size);
    in.header(MsgType::StatsReport);
    seq = in.u64();
    const std::uint32_t count = in.u32();
    if (count > kMaxStatsEntries)
        in.fail();
    snapshot.entries.reserve(in.ok() ? count : 0);
    std::string name;
    for (std::uint32_t i = 0; in.ok() && i < count; ++i) {
        in.string(name);
        const std::uint8_t kind = in.u8();
        if (name.empty() || kind > 2) {
            in.fail();
            break;
        }
        obs::SnapshotEntry entry;
        entry.name = name;
        entry.kind = static_cast<obs::MetricKind>(kind);
        switch (entry.kind) {
          case obs::MetricKind::Counter:
            entry.counter = in.u64();
            break;
          case obs::MetricKind::Gauge:
            entry.gauge = static_cast<std::int64_t>(in.u64());
            break;
          case obs::MetricKind::Histogram: {
            entry.hist.count = in.u64();
            entry.hist.sum = in.u64();
            entry.hist.max = in.u64();
            const std::uint16_t nonZero = in.u16();
            if (nonZero > obs::kHistogramBuckets) {
                in.fail();
                break;
            }
            int prev = -1;
            for (std::uint16_t b = 0; in.ok() && b < nonZero; ++b) {
                const std::uint16_t idx = in.u16();
                const std::uint64_t n = in.u64();
                if (idx >= obs::kHistogramBuckets ||
                    static_cast<int>(idx) <= prev || n == 0) {
                    in.fail();
                    break;
                }
                prev = idx;
                entry.hist.buckets[idx] = n;
            }
            break;
          }
        }
        // Entries are encoded in snapshot (name) order; enforcing it
        // here keeps find()'s binary search valid on decoded scrapes.
        if (!snapshot.entries.empty() &&
            !(snapshot.entries.back().name < entry.name)) {
            in.fail();
            break;
        }
        snapshot.entries.push_back(std::move(entry));
    }
    if (!in.atEnd()) {
        snapshot.clear();
        return false;
    }
    return true;
}

} // namespace hima
