#include "shard/coordinator.h"

#include <utility>

#include "obs/obs.h"
#include "shard/worker.h"

namespace hima {

namespace {

/**
 * Process-wide series shared (by name) with ShardLaneGroup — the
 * registry hands back the same instruments, so a process running both
 * front-ends folds them into one fleet view.
 */
struct CoordMetrics
{
    obs::Counter *scatters;
    obs::Counter *checkpoints;
    obs::Counter *recoveries;
    obs::Histogram *recoveryNanos;

    CoordMetrics()
    {
        obs::Registry &reg = obs::Registry::instance();
        scatters = &reg.counter("shard.scatters");
        checkpoints = &reg.counter("shard.checkpoints");
        recoveries = &reg.counter("shard.recoveries");
        recoveryNanos = &reg.histogram("recover.latency_nanos");
    }

    static CoordMetrics &
    get()
    {
        static CoordMetrics metrics;
        return metrics;
    }
};

std::uint32_t
maskOf(const std::vector<Index> &heads)
{
    std::uint32_t mask = 0;
    for (Index head : heads)
        mask |= 1u << head;
    return mask;
}

} // namespace

ShardCoordinator::ShardCoordinator(
    const DncConfig &config, Index tiles, MergePolicy policy,
    std::vector<std::unique_ptr<Channel>> channels, bool wantWeightings)
    : globalConfig_(config), shardConfig_(shardConfigFor(config, tiles)),
      tiles_(tiles), policy_(policy), wantWeightings_(wantWeightings),
      channels_(std::move(channels))
{
    HIMA_ASSERT(!channels_.empty() && channels_.size() <= tiles_,
                "need 1..Nt worker channels (got %zu for %zu tiles)",
                channels_.size(), tiles_);
    HIMA_ASSERT(config.readHeads <= 32,
                "scored-head mask supports up to 32 read heads");

    dealTiles();
    const Index chans = channels_.size();

    // Config handshake: every worker validates shapes and datapath mode
    // before any step traffic.
    for (Index k = 0; k < chans; ++k) {
        FrameScope frame(*channels_[k], writer_);
        encodeHello(WireConfig::fromShard(shardConfig_, tileCount_[k]),
                    frame.writer());
        frame.commit();
    }
    for (Index k = 0; k < chans; ++k) {
        HelloAckMsg ack;
        if (!recvFrom(k) || !decodeHelloAck(frameData_, frameSize_, ack))
            HIMA_FATAL("shard handshake: worker %zu sent no valid ack", k);
        if (!ack.ok)
            HIMA_FATAL("shard handshake: worker %zu rejected config: %s", k,
                       ack.message.c_str());
        if (ack.hostedTiles != tileCount_[k])
            HIMA_FATAL("shard handshake: worker %zu hosts %llu tiles, "
                       "expected %zu",
                       k, static_cast<unsigned long long>(ack.hostedTiles),
                       tileCount_[k]);
    }

    localPtrs_.resize(tiles_);
}

void
ShardCoordinator::dealTiles()
{
    // Deal tiles contiguously and as evenly as possible.
    const Index chans = channels_.size();
    firstTile_.clear();
    tileCount_.clear();
    Index next = 0;
    for (Index k = 0; k < chans; ++k) {
        const Index count = tiles_ / chans + (k < tiles_ % chans ? 1 : 0);
        firstTile_.push_back(next);
        tileCount_.push_back(count);
        next += count;
    }
    replies_.resize(chans);
    pendingFrames_.resize(chans);
}

ShardCoordinator::~ShardCoordinator()
{
    for (auto &channel : channels_) {
        FrameScope frame(*channel, writer_);
        encodeShutdown(frame.writer());
        frame.commit();
    }
}

void
ShardCoordinator::stepInterfaceInto(const InterfaceVector &iface,
                                    MemoryReadout &out)
{
    const std::uint32_t mask = maskOf(gate_.selectHeads(
        iface, policy_, globalConfig_.readHeads, tiles_));
    ++seq_;
    {
        obs::TraceSpan span("shard.scatter", channels_.size());
        for (Index k = 0; k < channels_.size(); ++k) {
            FrameScope frame(*channels_[k], writer_);
            encodeStepBroadcast(seq_, wantWeightings_, mask, iface,
                                tileCount_[k], frame.writer());
            trackPending(k, frame.writer());
            frame.commit();
        }
    }
    CoordMetrics::get().scatters->add();
    exchange(out);
    maybeCheckpoint();
}

void
ShardCoordinator::stepInterfacesInto(
    const std::vector<InterfaceVector> &ifaces, MemoryReadout &out)
{
    HIMA_ASSERT(ifaces.size() == tiles_, "need one interface per tile");
    // The merge contract (Fig. 8) is that *queries broadcast*: per-tile
    // sub-interfaces may differ in write-side fields (learned write
    // sharding), but the read keys/strengths/modes every tile scores
    // with must be identical — each worker computes confidence logits
    // from its local first hosted tile's interface, and DncD from
    // ifaces[0], so divergent read fields would silently break
    // bit-exactness. Enforce the convention instead.
    for (Index t = 1; t < tiles_; ++t) {
        HIMA_ASSERT(ifaces[t].readStrengths == ifaces[0].readStrengths,
                    "tile %zu read strengths diverge from the broadcast",
                    t);
        for (Index h = 0; h < globalConfig_.readHeads; ++h)
            HIMA_ASSERT(ifaces[t].readKeys[h] == ifaces[0].readKeys[h],
                        "tile %zu read key %zu diverges from the "
                        "broadcast",
                        t, h);
    }
    const std::uint32_t mask = maskOf(gate_.selectHeads(
        ifaces[0], policy_, globalConfig_.readHeads, tiles_));
    ++seq_;
    {
        obs::TraceSpan span("shard.scatter", channels_.size());
        for (Index k = 0; k < channels_.size(); ++k) {
            FrameScope frame(*channels_[k], writer_);
            encodeStepSpan(seq_, wantWeightings_, mask,
                           &ifaces[firstTile_[k]], tileCount_[k],
                           frame.writer());
            trackPending(k, frame.writer());
            frame.commit();
        }
    }
    CoordMetrics::get().scatters->add();
    exchange(out);
    maybeCheckpoint();
}

void
ShardCoordinator::exchange(MemoryReadout &out)
{
    // Gather replies in channel order; remote workers overlap compute.
    const Index r = globalConfig_.readHeads;
    {
        obs::TraceSpan span("shard.gather_recv", channels_.size());
        for (Index k = 0; k < channels_.size(); ++k) {
            recvOrRecover(k, "step");
            MsgType type;
            if (!peekType(frameData_, frameSize_, type))
                HIMA_FATAL("shard step %llu: worker %zu sent a malformed "
                           "frame",
                           static_cast<unsigned long long>(seq_), k);
            if (type == MsgType::Error) {
                ErrorMsg err;
                decodeError(frameData_, frameSize_, err);
                HIMA_FATAL("shard step %llu: worker %zu error: %s",
                           static_cast<unsigned long long>(seq_), k,
                           err.message.c_str());
            }
            if (!decodeStepReply(frameData_, frameSize_, shardConfig_,
                                 tileCount_[k], replies_[k]))
                HIMA_FATAL("shard step %llu: worker %zu sent a malformed "
                           "reply",
                           static_cast<unsigned long long>(seq_), k);
            if (replies_[k].seq != seq_)
                HIMA_FATAL("shard step %llu: worker %zu replied out of "
                           "sequence (%llu)",
                           static_cast<unsigned long long>(seq_), k,
                           static_cast<unsigned long long>(
                               replies_[k].seq));
            if (replies_[k].hasWeightings != wantWeightings_)
                HIMA_FATAL("shard step %llu: worker %zu weighting flag "
                           "mismatch",
                           static_cast<unsigned long long>(seq_), k);
            for (Index i = 0; i < tileCount_[k]; ++i)
                localPtrs_[firstTile_[k] + i] = &replies_[k].tiles[i];
        }
    }

    // The distributed confidence merge: softmax over the gathered
    // (head x tile) logits, then the Eq. 4 weighted sum — the same gate
    // and merge code the in-process DncD runs.
    obs::TraceSpan mergeSpan("shard.merge", tiles_);
    const std::vector<Index> &scored = gate_.scoredHeads();
    if (!scored.empty()) {
        scoreScratch_.assign(scored.size() * tiles_, 0.0);
        for (Index k = 0; k < channels_.size(); ++k) {
            for (Index i = 0; i < tileCount_[k]; ++i) {
                const Index tile = firstTile_[k] + i;
                for (Index s = 0; s < scored.size(); ++s)
                    scoreScratch_[s * tiles_ + tile] =
                        replies_[k].confidence[i * r + scored[s]];
            }
        }
        gate_.applyScores(scoreScratch_, tiles_);
    }

    mergeTileReadouts(localPtrs_, gate_.alphas(), globalConfig_,
                      shardConfig_.memoryRows, out);
}

MemoryReadout
ShardCoordinator::stepInterface(const InterfaceVector &iface)
{
    MemoryReadout out;
    stepInterfaceInto(iface, out);
    return out;
}

MemoryReadout
ShardCoordinator::stepInterfaces(const std::vector<InterfaceVector> &ifaces)
{
    MemoryReadout out;
    stepInterfacesInto(ifaces, out);
    return out;
}

void
ShardCoordinator::sendControl(ControlKind kind)
{
    ControlMsg msg;
    msg.kind = kind;
    msg.seq = ++controlSeq_;
    for (Index k = 0; k < channels_.size(); ++k) {
        FrameScope frame(*channels_[k], writer_);
        encodeControl(msg, frame.writer());
        trackPending(k, frame.writer());
        frame.commit();
    }
    for (Index k = 0; k < channels_.size(); ++k) {
        std::uint64_t seq = 0;
        recvOrRecover(k, "control");
        if (!decodeControlAck(frameData_, frameSize_, seq) ||
            seq != msg.seq)
            HIMA_FATAL("shard control: worker %zu did not acknowledge", k);
    }
    // Controls mutate worker state (tile resets), so a replacement
    // worker must replay them in order with the steps.
    commitLog();
    gate_.reset();
}

// --------------------------------------------------------------------
// Fault tolerance: checkpoint pulls, replay log, respawn + restore
// --------------------------------------------------------------------

void
ShardCoordinator::trackPending(Index k, const WireWriter &writer)
{
    // assign() reuses capacity, so tracking costs one memcpy and no
    // allocation once frame sizes plateau.
    if (recoveryArmed())
        pendingFrames_[k].assign(writer.data(),
                                 writer.data() + writer.size());
}

bool
ShardCoordinator::recvFrom(Index k)
{
    return channels_[k]->recvFrameView(frameData_, frameSize_, frame_);
}

void
ShardCoordinator::commitLog()
{
    if (!recoveryArmed())
        return;
    if (logCount_ == log_.size())
        log_.emplace_back();
    std::vector<std::vector<std::uint8_t>> &entry = log_[logCount_++];
    entry.resize(channels_.size());
    for (Index k = 0; k < channels_.size(); ++k)
        entry[k].assign(pendingFrames_[k].begin(), pendingFrames_[k].end());
}

void
ShardCoordinator::maybeCheckpoint()
{
    if (!recoveryArmed())
        return;
    commitLog();
    if (++stepsSinceCheckpoint_ >=
        globalConfig_.shardCheckpointIntervalSteps)
        pullCheckpoints();
}

MemoryTileState *const *
ShardCoordinator::snapshotSlice(Index k)
{
    snapshotPtrs_.resize(tileCount_[k]);
    for (Index i = 0; i < tileCount_[k]; ++i)
        snapshotPtrs_[i] = &checkpoints_[firstTile_[k] + i];
    return snapshotPtrs_.data();
}

void
ShardCoordinator::pullCheckpoints()
{
    obs::TraceSpan span("shard.checkpoint_pull");
    const Index chans = channels_.size();
    checkpoints_.resize(tiles_);
    ++checkpointSeq_;
    for (Index k = 0; k < chans; ++k) {
        FrameScope frame(*channels_[k], writer_);
        encodeCheckpointRequest(checkpointSeq_, frame.writer());
        trackPending(k, frame.writer());
        frame.commit();
    }
    for (Index k = 0; k < chans; ++k) {
        // A loss mid-pull recovers from the *previous* checkpoint plus
        // the still-uncleared log; slices already written for earlier
        // workers are irrelevant to recovering this one.
        recvOrRecover(k, "checkpoint");
        MsgType type;
        if (peekType(frameData_, frameSize_, type) &&
            type == MsgType::Error) {
            ErrorMsg err;
            decodeError(frameData_, frameSize_, err);
            HIMA_FATAL("shard checkpoint %llu: worker %zu error: %s",
                       static_cast<unsigned long long>(checkpointSeq_), k,
                       err.message.c_str());
        }
        std::uint64_t seq = 0;
        if (!decodeCheckpointState(frameData_, frameSize_,
                                   shardConfig_, snapshotSlice(k),
                                   tileCount_[k], seq) ||
            seq != checkpointSeq_)
            HIMA_FATAL("shard checkpoint %llu: worker %zu sent a "
                       "malformed snapshot",
                       static_cast<unsigned long long>(checkpointSeq_), k);
    }
    checkpointValid_ = true;
    ++checkpointsTaken_;
    stepsSinceCheckpoint_ = 0;
    logCount_ = 0; // ring buffers kept: the next window reuses them
    CoordMetrics::get().checkpoints->add();
}

void
ShardCoordinator::checkpointNow()
{
    pullCheckpoints();
}

void
ShardCoordinator::scrapeWorkers(std::vector<obs::Snapshot> &perWorker,
                                obs::Snapshot &aggregate)
{
    const Index chans = channels_.size();
    perWorker.resize(chans);
    ++statsSeq_;
    for (Index k = 0; k < chans; ++k) {
        FrameScope frame(*channels_[k], writer_);
        encodeStatsPull(statsSeq_, frame.writer());
        trackPending(k, frame.writer());
        frame.commit();
    }
    for (Index k = 0; k < chans; ++k) {
        recvOrRecover(k, "stats scrape");
        MsgType type;
        if (peekType(frameData_, frameSize_, type) &&
            type == MsgType::Error) {
            ErrorMsg err;
            decodeError(frameData_, frameSize_, err);
            HIMA_FATAL("shard stats scrape %llu: worker %zu error: %s",
                       static_cast<unsigned long long>(statsSeq_), k,
                       err.message.c_str());
        }
        std::uint64_t seq = 0;
        if (!decodeStatsReport(frameData_, frameSize_, perWorker[k],
                               seq) ||
            seq != statsSeq_)
            HIMA_FATAL("shard stats scrape %llu: worker %zu sent a "
                       "malformed report",
                       static_cast<unsigned long long>(statsSeq_), k);
    }

    // Fleet view: this process's registry + every worker's report +
    // the coordinator-side wire counters (its tx is the workers' rx).
    obs::processSnapshot(aggregate);
    for (const obs::Snapshot &report : perWorker)
        aggregate.merge(report);
    WireTrafficStats sent, received;
    for (const auto &channel : channels_) {
        sent += channel->sentStats();
        received += channel->receivedStats();
    }
    obs::importWireTraffic(aggregate, sent, received, "shard.wire");
}

void
ShardCoordinator::recvOrRecover(Index k, const char *what)
{
    if (recvFrom(k))
        return;
    recoverWorker(k, what); // fatal unless recovery is armed
    // Re-issue the in-flight frame the loss swallowed and take the
    // replacement's answer instead. A second loss on the same exchange
    // is fatal: recovery is not a retry loop.
    channels_[k]->sendFrame(pendingFrames_[k].data(),
                            pendingFrames_[k].size());
    if (!recvFrom(k))
        shardRecvFailure(*channels_[k], what, seq_, k);
}

void
ShardCoordinator::rejoinWorker(Index k, const char *who)
{
    {
        FrameScope frame(*channels_[k], writer_);
        encodeRejoin(WireConfig::fromShard(shardConfig_, tileCount_[k]),
                     firstTile_[k], frame.writer());
        frame.commit();
    }
    HelloAckMsg ack;
    if (!recvFrom(k) ||
        !decodeHelloAck(frameData_, frameSize_, ack) || !ack.ok ||
        ack.hostedTiles != tileCount_[k])
        HIMA_FATAL("%s: worker %zu failed the Rejoin handshake%s%s", who, k,
                   ack.message.empty() ? "" : ": ", ack.message.c_str());
}

void
ShardCoordinator::restoreWorker(Index k, const char *who)
{
    {
        FrameScope frame(*channels_[k], writer_);
        encodeRestore(checkpointSeq_, snapshotSlice(k), tileCount_[k],
                      shardConfig_, frame.writer());
        frame.commit();
    }
    std::uint64_t seq = 0;
    if (!recvFrom(k) ||
        !decodeControlAck(frameData_, frameSize_, seq) ||
        seq != checkpointSeq_)
        HIMA_FATAL("%s: worker %zu did not acknowledge the Restore", who,
                   k);
}

void
ShardCoordinator::recoverWorker(Index k, const char *what)
{
    const ShardError err = shardRecvError(*channels_[k], what, seq_, k);
    if (!recoveryArmed())
        HIMA_FATAL("%s", err.describe().c_str());
    ++recoveries_;
    const std::uint64_t recoverStart = obs::traceNowNanos();
    obs::TraceSpan span("recover.worker", logCount_);
    obs::traceInstant("recover.detected", k);
    HIMA_WARN("%s; respawning and replaying %zu logged frames",
              err.describe().c_str(), logCount_);
    std::unique_ptr<Channel> fresh = respawner_(k);
    if (!fresh)
        HIMA_FATAL("shard recovery: no replacement channel for worker %zu",
                   k);
    channels_[k] = std::move(fresh);

    // The replacement validates shapes and builds zeroed tiles (the
    // t=0 state) exactly like Hello, then takes the lost assignment.
    rejoinWorker(k, "shard recovery");

    // Restore the last checkpoint slice. Before the first pull there is
    // nothing to restore — freshly built tiles already hold the state
    // the log replays from.
    if (checkpointValid_)
        restoreWorker(k, "shard recovery");

    // Replay the logged window since that checkpoint; replies are
    // drained and discarded (the coordinator-side gate state already
    // advanced through these frames the first time around).
    // Each replayed frame's reply is drained before the next send, so
    // the window can exceed an shm reply ring's slot count without
    // deadlock.
    for (std::size_t e = 0; e < logCount_; ++e) {
        const std::vector<std::uint8_t> &replay = log_[e][k];
        channels_[k]->sendFrame(replay.data(), replay.size());
        MsgType type;
        if (!recvFrom(k) ||
            !peekType(frameData_, frameSize_, type) ||
            type == MsgType::Error)
            HIMA_FATAL("shard recovery: worker %zu failed replay frame "
                       "%zu/%zu",
                       k, e + 1, static_cast<std::size_t>(logCount_));
    }

    CoordMetrics::get().recoveries->add();
    CoordMetrics::get().recoveryNanos->record(obs::traceNowNanos() -
                                              recoverStart);
}

void
ShardCoordinator::migrateWorker(Index k,
                                std::unique_ptr<Channel> replacement)
{
    HIMA_ASSERT(k < channels_.size(), "migrate: no worker %zu", k);
    HIMA_ASSERT(replacement != nullptr, "migrate: null replacement");
    // Nothing is in flight between steps, so a fresh pull captures the
    // exact current state (and empties the replay log — the snapshot IS
    // the present, there is nothing to replay onto the replacement).
    pullCheckpoints();

    std::unique_ptr<Channel> old = std::move(channels_[k]);
    channels_[k] = std::move(replacement);
    rejoinWorker(k, "shard migration");
    restoreWorker(k, "shard migration");

    // Retire the old worker only after the replacement holds the state.
    FrameScope frame(*old, writer_);
    encodeShutdown(frame.writer());
    frame.commit();
}

void
ShardCoordinator::rescale(std::vector<std::unique_ptr<Channel>> channels)
{
    HIMA_ASSERT(!channels.empty() && channels.size() <= tiles_,
                "rescale: need 1..Nt worker channels (got %zu for %zu "
                "tiles)",
                channels.size(), tiles_);
    // Snapshot the whole fleet at the current step, then retire it.
    pullCheckpoints();
    for (auto &channel : channels_) {
        FrameScope frame(*channel, writer_);
        encodeShutdown(frame.writer());
        frame.commit();
    }

    channels_ = std::move(channels);
    dealTiles();

    // Rejoin + Restore the new fleet onto the re-dealt slices. The gate
    // (alpha history) lives coordinator-side and is untouched, so the
    // grown or shrunk fleet resumes bit-identically mid-run.
    for (Index k = 0; k < channels_.size(); ++k) {
        rejoinWorker(k, "shard rescale");
        restoreWorker(k, "shard rescale");
    }
}

void
ShardCoordinator::reset()
{
    sendControl(ControlKind::EpisodeReset);
}

void
ShardCoordinator::beginEpisode()
{
    sendControl(ControlKind::Admit);
}

// --------------------------------------------------------------------
// Loopback stack
// --------------------------------------------------------------------

LoopbackShard
makeLoopbackShard(const DncConfig &config, Index tiles, Index workerCount,
                  MergePolicy policy, bool wantWeightings)
{
    LoopbackShard stack;
    std::vector<std::unique_ptr<Channel>> channels;
    for (Index k = 0; k < workerCount; ++k) {
        auto worker = std::make_shared<ShardWorker>();
        stack.workers.push_back(worker);
        channels.push_back(std::make_unique<LoopbackChannel>(
            [worker](const std::uint8_t *data, std::size_t size,
                     FrameSink &reply) {
                worker->handleFrame(data, size, reply);
            }));
    }
    stack.coordinator = std::make_unique<ShardCoordinator>(
        config, tiles, policy, std::move(channels), wantWeightings);
    return stack;
}

} // namespace hima
