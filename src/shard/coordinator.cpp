#include "shard/coordinator.h"

#include <utility>

#include "shard/worker.h"

namespace hima {

namespace {

std::uint32_t
maskOf(const std::vector<Index> &heads)
{
    std::uint32_t mask = 0;
    for (Index head : heads)
        mask |= 1u << head;
    return mask;
}

} // namespace

ShardCoordinator::ShardCoordinator(
    const DncConfig &config, Index tiles, MergePolicy policy,
    std::vector<std::unique_ptr<Channel>> channels, bool wantWeightings)
    : globalConfig_(config), shardConfig_(shardConfigFor(config, tiles)),
      tiles_(tiles), policy_(policy), wantWeightings_(wantWeightings),
      channels_(std::move(channels))
{
    HIMA_ASSERT(!channels_.empty() && channels_.size() <= tiles_,
                "need 1..Nt worker channels (got %zu for %zu tiles)",
                channels_.size(), tiles_);
    HIMA_ASSERT(config.readHeads <= 32,
                "scored-head mask supports up to 32 read heads");

    // Deal tiles contiguously and as evenly as possible.
    const Index chans = channels_.size();
    Index next = 0;
    for (Index k = 0; k < chans; ++k) {
        const Index count = tiles_ / chans + (k < tiles_ % chans ? 1 : 0);
        firstTile_.push_back(next);
        tileCount_.push_back(count);
        next += count;
    }

    // Config handshake: every worker validates shapes and datapath mode
    // before any step traffic.
    for (Index k = 0; k < chans; ++k) {
        encodeHello(WireConfig::fromShard(shardConfig_, tileCount_[k]),
                    writer_);
        channels_[k]->sendFrame(writer_.buffer().data(),
                                writer_.buffer().size());
    }
    for (Index k = 0; k < chans; ++k) {
        HelloAckMsg ack;
        if (!channels_[k]->recvFrame(frame_) ||
            !decodeHelloAck(frame_.data(), frame_.size(), ack))
            HIMA_FATAL("shard handshake: worker %zu sent no valid ack", k);
        if (!ack.ok)
            HIMA_FATAL("shard handshake: worker %zu rejected config: %s", k,
                       ack.message.c_str());
        if (ack.hostedTiles != tileCount_[k])
            HIMA_FATAL("shard handshake: worker %zu hosts %llu tiles, "
                       "expected %zu",
                       k, static_cast<unsigned long long>(ack.hostedTiles),
                       tileCount_[k]);
    }

    replies_.resize(chans);
    localPtrs_.resize(tiles_);
}

ShardCoordinator::~ShardCoordinator()
{
    for (auto &channel : channels_) {
        encodeShutdown(writer_);
        channel->sendFrame(writer_.buffer().data(), writer_.buffer().size());
    }
}

void
ShardCoordinator::stepInterfaceInto(const InterfaceVector &iface,
                                    MemoryReadout &out)
{
    const std::uint32_t mask = maskOf(gate_.selectHeads(
        iface, policy_, globalConfig_.readHeads, tiles_));
    ++seq_;
    for (Index k = 0; k < channels_.size(); ++k) {
        encodeStepBroadcast(seq_, wantWeightings_, mask, iface,
                            tileCount_[k], writer_);
        channels_[k]->sendFrame(writer_.buffer().data(),
                                writer_.buffer().size());
    }
    exchange(out);
}

void
ShardCoordinator::stepInterfacesInto(
    const std::vector<InterfaceVector> &ifaces, MemoryReadout &out)
{
    HIMA_ASSERT(ifaces.size() == tiles_, "need one interface per tile");
    // The merge contract (Fig. 8) is that *queries broadcast*: per-tile
    // sub-interfaces may differ in write-side fields (learned write
    // sharding), but the read keys/strengths/modes every tile scores
    // with must be identical — each worker computes confidence logits
    // from its local first hosted tile's interface, and DncD from
    // ifaces[0], so divergent read fields would silently break
    // bit-exactness. Enforce the convention instead.
    for (Index t = 1; t < tiles_; ++t) {
        HIMA_ASSERT(ifaces[t].readStrengths == ifaces[0].readStrengths,
                    "tile %zu read strengths diverge from the broadcast",
                    t);
        for (Index h = 0; h < globalConfig_.readHeads; ++h)
            HIMA_ASSERT(ifaces[t].readKeys[h] == ifaces[0].readKeys[h],
                        "tile %zu read key %zu diverges from the "
                        "broadcast",
                        t, h);
    }
    const std::uint32_t mask = maskOf(gate_.selectHeads(
        ifaces[0], policy_, globalConfig_.readHeads, tiles_));
    ++seq_;
    for (Index k = 0; k < channels_.size(); ++k) {
        encodeStepSpan(seq_, wantWeightings_, mask, &ifaces[firstTile_[k]],
                       tileCount_[k], writer_);
        channels_[k]->sendFrame(writer_.buffer().data(),
                                writer_.buffer().size());
    }
    exchange(out);
}

void
ShardCoordinator::exchange(MemoryReadout &out)
{
    // Gather replies in channel order; remote workers overlap compute.
    const Index r = globalConfig_.readHeads;
    for (Index k = 0; k < channels_.size(); ++k) {
        if (!channels_[k]->recvFrame(frame_))
            shardRecvFailure(*channels_[k], "step", seq_, k);
        MsgType type;
        if (!peekType(frame_.data(), frame_.size(), type))
            HIMA_FATAL("shard step %llu: worker %zu sent a malformed frame",
                       static_cast<unsigned long long>(seq_), k);
        if (type == MsgType::Error) {
            ErrorMsg err;
            decodeError(frame_.data(), frame_.size(), err);
            HIMA_FATAL("shard step %llu: worker %zu error: %s",
                       static_cast<unsigned long long>(seq_), k,
                       err.message.c_str());
        }
        if (!decodeStepReply(frame_.data(), frame_.size(), shardConfig_,
                             tileCount_[k], replies_[k]))
            HIMA_FATAL("shard step %llu: worker %zu sent a malformed reply",
                       static_cast<unsigned long long>(seq_), k);
        if (replies_[k].seq != seq_)
            HIMA_FATAL("shard step %llu: worker %zu replied out of sequence "
                       "(%llu)",
                       static_cast<unsigned long long>(seq_), k,
                       static_cast<unsigned long long>(replies_[k].seq));
        if (replies_[k].hasWeightings != wantWeightings_)
            HIMA_FATAL("shard step %llu: worker %zu weighting flag mismatch",
                       static_cast<unsigned long long>(seq_), k);
        for (Index i = 0; i < tileCount_[k]; ++i)
            localPtrs_[firstTile_[k] + i] = &replies_[k].tiles[i];
    }

    // The distributed confidence merge: softmax over the gathered
    // (head x tile) logits, then the Eq. 4 weighted sum — the same gate
    // and merge code the in-process DncD runs.
    const std::vector<Index> &scored = gate_.scoredHeads();
    if (!scored.empty()) {
        scoreScratch_.assign(scored.size() * tiles_, 0.0);
        for (Index k = 0; k < channels_.size(); ++k) {
            for (Index i = 0; i < tileCount_[k]; ++i) {
                const Index tile = firstTile_[k] + i;
                for (Index s = 0; s < scored.size(); ++s)
                    scoreScratch_[s * tiles_ + tile] =
                        replies_[k].confidence[i * r + scored[s]];
            }
        }
        gate_.applyScores(scoreScratch_, tiles_);
    }

    mergeTileReadouts(localPtrs_, gate_.alphas(), globalConfig_,
                      shardConfig_.memoryRows, out);
}

MemoryReadout
ShardCoordinator::stepInterface(const InterfaceVector &iface)
{
    MemoryReadout out;
    stepInterfaceInto(iface, out);
    return out;
}

MemoryReadout
ShardCoordinator::stepInterfaces(const std::vector<InterfaceVector> &ifaces)
{
    MemoryReadout out;
    stepInterfacesInto(ifaces, out);
    return out;
}

void
ShardCoordinator::sendControl(ControlKind kind)
{
    ControlMsg msg;
    msg.kind = kind;
    msg.seq = ++controlSeq_;
    for (auto &channel : channels_) {
        encodeControl(msg, writer_);
        channel->sendFrame(writer_.buffer().data(), writer_.buffer().size());
    }
    for (Index k = 0; k < channels_.size(); ++k) {
        std::uint64_t seq = 0;
        if (!channels_[k]->recvFrame(frame_) ||
            !decodeControlAck(frame_.data(), frame_.size(), seq) ||
            seq != msg.seq)
            HIMA_FATAL("shard control: worker %zu did not acknowledge", k);
    }
    gate_.reset();
}

void
ShardCoordinator::reset()
{
    sendControl(ControlKind::EpisodeReset);
}

void
ShardCoordinator::beginEpisode()
{
    sendControl(ControlKind::Admit);
}

// --------------------------------------------------------------------
// Loopback stack
// --------------------------------------------------------------------

LoopbackShard
makeLoopbackShard(const DncConfig &config, Index tiles, Index workerCount,
                  MergePolicy policy, bool wantWeightings)
{
    LoopbackShard stack;
    std::vector<std::unique_ptr<Channel>> channels;
    for (Index k = 0; k < workerCount; ++k) {
        auto worker = std::make_shared<ShardWorker>();
        stack.workers.push_back(worker);
        channels.push_back(std::make_unique<LoopbackChannel>(
            [worker](const std::uint8_t *data, std::size_t size,
                     FrameSink &reply) {
                worker->handleFrame(data, size, reply);
            }));
    }
    stack.coordinator = std::make_unique<ShardCoordinator>(
        config, tiles, policy, std::move(channels), wantWeightings);
    return stack;
}

} // namespace hima
