/**
 * @file
 * Shard worker: the process-side host of one or more DNC-D memory
 * tiles, driven entirely by wire frames.
 *
 * A worker is passive until a Hello configures it (shapes + datapath
 * validated, tiles constructed). Each Step frame then runs the full
 * local soft write + soft read pipeline on every hosted tile — the
 * exact MemoryUnit::stepInto() hot path the in-process engines use,
 * zero-allocation in steady state — and computes the confidence logits
 * for the heads the coordinator flagged, so the reply carries R read
 * vectors + R logits per tile and the merge never needs remote memory
 * contents. Multiple hosted tiles step on a local thread pool when the
 * handshake config asks for one (numThreads > 1), bit-identically to
 * sequential execution because tiles share no state.
 *
 * Serving fleets host multiple *lanes*: the handshake's `lanes` field
 * makes the worker construct lanes x hostedTiles independent tile sets
 * (lane-major). A LaneStep frame steps any subset of lanes in one round
 * trip — each named lane's hosted tiles run with that lane's broadcast
 * interface, all (lane, tile) pairs sharing one pool dispatch — and a
 * per-lane Control admits/resets one lane without touching the rest.
 * The legacy single-lane Step frame operates on lane 0.
 *
 * The same handleFrame() core serves both transports: LoopbackChannel
 * calls it synchronously (deterministic tests), serve() wraps it in a
 * blocking event loop over a socket channel (examples/
 * shard_worker_main.cpp runs that loop as a standalone process).
 *
 * Wire v3 adds the fault-tolerance surface: CheckpointRequest streams
 * every hosted tile's complete recurrent state back (encoded straight
 * from the live MemoryUnits — no snapshot copy, no steady-state
 * allocation), Restore overwrites all hosted tile state from a
 * coordinator-held snapshot (acked with ControlAck), and Rejoin lets a
 * *fresh* worker process take over a lost worker's assignment: it
 * carries the Hello body plus the first global tile index, and the
 * worker builds zeroed tiles exactly like Hello — the coordinator then
 * Restores and replays. injectFault() arms the deterministic
 * kill/drop/delay harness tests and the bench use to script worker
 * death.
 */

#ifndef HIMA_SHARD_WORKER_H
#define HIMA_SHARD_WORKER_H

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "dnc/dncd.h"
#include "shard/fault.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace hima {

/** Hosts memory tiles and serves the shard wire protocol. */
class ShardWorker
{
  public:
    ShardWorker() = default;

    /**
     * Process one frame, emitting any replies into `sink`.
     *
     * @return false when the frame was Shutdown (stop serving)
     */
    bool handleFrame(const std::uint8_t *data, std::size_t size,
                     FrameSink &sink);

    /**
     * Blocking event loop: serve frames from `channel` until a Shutdown
     * frame or the peer closes the connection.
     */
    void serve(Channel &channel);

    bool configured() const { return !tiles_.empty(); }
    Index hostedTiles() const { return hostedTiles_; }
    Index lanes() const { return lanes_; }
    const DncConfig &shardConfig() const { return shardConfig_; }

    /** Lane 0's hosted tile state (single-lane deployments/tests). */
    const MemoryUnit &tile(Index i) const { return *tiles_[i]; }

    /** Hosted tile i of `lane` (tests compare against in-process). */
    const MemoryUnit &
    laneTile(Index lane, Index i) const
    {
        return *tiles_[lane * hostedTiles_ + i];
    }

    /** Steps served since configuration. */
    std::uint64_t stepsServed() const { return stepsServed_; }

    /** Admit controls received (episodes started on this worker). */
    std::uint64_t episodesServed() const { return episodesServed_; }

    /** First global tile of a Rejoin assignment (0 for plain Hello). */
    std::uint64_t firstGlobalTile() const { return firstGlobalTile_; }

    /**
     * Arm the deterministic fault harness: the worker stops responding
     * (and serve() exits, closing its channel) at the scripted frame.
     */
    void injectFault(const FaultSpec &spec) { fault_.arm(spec); }

    /** True once an armed fault has fired (the worker plays dead). */
    bool faultFired() const { return fault_.dead(); }

  private:
    void handleHello(const std::uint8_t *data, std::size_t size,
                     FrameSink &sink);
    void handleRejoin(const std::uint8_t *data, std::size_t size,
                      FrameSink &sink);
    void handleCheckpointRequest(const std::uint8_t *data, std::size_t size,
                                 FrameSink &sink);
    void handleRestore(const std::uint8_t *data, std::size_t size,
                       FrameSink &sink);
    void handleStatsPull(const std::uint8_t *data, std::size_t size,
                         FrameSink &sink);

    /** Shared Hello/Rejoin body: validate + build tiles, fill the ack. */
    void applyConfig(const WireConfig &wire, HelloAckMsg &ack);
    void handleStep(const std::uint8_t *data, std::size_t size,
                    FrameSink &sink);
    void handleLaneStep(const std::uint8_t *data, std::size_t size,
                        FrameSink &sink);
    void handleControl(const std::uint8_t *data, std::size_t size,
                       FrameSink &sink);
    void sendError(const std::string &message, FrameSink &sink);

    /** Run fn(0..count-1), on the pool when configured. */
    void forEach(Index count, const std::function<void(Index)> &fn);

    DncConfig shardConfig_;
    Index hostedTiles_ = 0; ///< tiles per lane
    Index lanes_ = 1;
    std::vector<std::unique_ptr<MemoryUnit>> tiles_; ///< lane-major
    std::unique_ptr<ThreadPool> pool_; ///< when numThreads > 1, tiles > 1

    // Reused per-frame state: the steady-state serve loop touches no
    // heap (decode resizes into warm buffers, encode reuses writer_).
    StepMsg step_;
    LaneStepMsg laneStep_;
    std::vector<MemoryReadout> readouts_; ///< frame slots, lane-major
    std::vector<Real> confidence_; ///< frame slots x R, row-major
    WireWriter writer_;
    std::function<void(Index)> stepTask_;     ///< prebuilt pool task
    std::function<void(Index)> laneStepTask_; ///< lane-batched pool task
    std::vector<std::uint8_t> frame_;         ///< serve() recv buffer

    // Restore decodes into these scratch snapshots, then commits into
    // the tiles only after the whole frame validated (fail-closed: a
    // truncated Restore never leaves tiles half-overwritten).
    std::vector<MemoryTileState> restoreScratch_;
    std::vector<MemoryTileState *> restorePtrs_;

    FaultInjector fault_;
    std::uint64_t firstGlobalTile_ = 0;
    obs::Snapshot statsScratch_; ///< StatsPull reply staging

    std::uint64_t stepsServed_ = 0;
    std::uint64_t episodesServed_ = 0;
};

} // namespace hima

#endif // HIMA_SHARD_WORKER_H
