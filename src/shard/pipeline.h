/**
 * @file
 * Pipelined multi-lane shard serving: the coordinator side of the
 * lane-batched wire protocol (wire.h, version 2).
 *
 * The synchronous ShardCoordinator owns one lane and pays one full
 * round trip per step; at high tile counts the socket latency of that
 * round trip is the throughput ceiling (see the in_process-vs-tcp gap
 * in BENCH_shard.json). ShardLaneGroup buys the gap back with the two
 * overlap tricks throughput-oriented serving systems use:
 *
 *   - lane batching: one LaneStep frame per worker carries k lanes'
 *     broadcast interfaces, so syscalls, wakeups and framing amortize
 *     k-fold — and because the frame is lane-addressed (not
 *     tile-addressed), the *same* encoded bytes go to every worker:
 *     one encode per batch, not per channel;
 *
 *   - a double-buffered step window: up to kMaxInFlight batches may be
 *     outstanding per channel (scatter B before gathering A), so the
 *     caller can run lane set B's controller compute while lane set
 *     A's tile round trip is still in flight.
 *
 * Lanes are independent tile sets on the workers, so any interleaving
 * of batches is bit-identical per lane to the synchronous schedule —
 * each lane still sees the strict controller -> tiles -> merge order.
 * Per-lane state here is exactly the sync coordinator's (a
 * ConfidenceGate per lane; the same mergeTileReadouts), so a lane of a
 * group must match the in-process DncD bit for bit, proven in
 * tests/test_shard.cpp across transports x tiles x threads x datapath.
 *
 * laneMemory() exposes one lane behind the TileMemory surface, so a
 * plain ShardedDnc (or the golden harness) can drive a single lane of
 * a shared fleet synchronously; PipelinedShardedLaneEngine
 * (sharded_dnc.h) drives all lanes with the overlapped schedule behind
 * the LaneEngine surface the Router consumes.
 *
 * Wire v3 fault tolerance mirrors ShardCoordinator's: setRespawner()
 * plus a nonzero DncConfig::shardCheckpointIntervalSteps arm periodic
 * checkpoint pulls (taken at a gather that empties the in-flight
 * window) and a replay log of every frame since the last pull. Because
 * LaneStep frames are lane-addressed, the *same* bytes go to every
 * worker, so the log stores one buffer per entry, not per channel. On
 * a worker loss mid-gather the group respawns, Rejoins, Restores the
 * worker's lane-major checkpoint slice, replays the log, then resends
 * the up-to-kMaxInFlight outstanding batch frames oldest-first — the
 * double-buffered window drains deterministically and every later step
 * is bit-identical to an undisturbed run. migrateWorker()/rescale()
 * reuse the same frames to move tile slices between live workers or
 * re-deal them over a grown fleet with zero dropped lanes.
 */

#ifndef HIMA_SHARD_PIPELINE_H
#define HIMA_SHARD_PIPELINE_H

#include <memory>
#include <vector>

#include "dnc/dncd.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace hima {

/** Multi-lane scatter/gather coordinator with an in-flight window. */
class ShardLaneGroup
{
  public:
    /** Deepest scatter window (double buffer: compute overlaps wire). */
    static constexpr Index kMaxInFlight = 2;

    /**
     * Connect and handshake: every worker hosts `lanes` independent
     * tile sets of its contiguous tile range (the same even deal as
     * ShardCoordinator), validated before any step traffic.
     *
     * @param config   global DNC shapes (memoryRows = global N)
     * @param tiles    tile count Nt per lane; must divide memoryRows
     * @param lanes    serving lanes hosted by the fleet
     * @param policy   read-vector merge policy
     * @param channels one connected channel per worker (1..tiles)
     * @param wantWeightings ship per-tile weightings back (golden
     *        harness); serving paths leave it off
     */
    ShardLaneGroup(const DncConfig &config, Index tiles, Index lanes,
                   MergePolicy policy,
                   std::vector<std::unique_ptr<Channel>> channels,
                   bool wantWeightings = false);

    /** Sends Shutdown to every worker. */
    ~ShardLaneGroup();

    ShardLaneGroup(const ShardLaneGroup &) = delete;
    ShardLaneGroup &operator=(const ShardLaneGroup &) = delete;

    // --- pipelined batch surface ---------------------------------------

    /**
     * Begin one batch step: lane ids (strictly increasing) with one
     * broadcast interface each. Encodes a single LaneStep frame, queues
     * it on every channel and flushes — then returns immediately; the
     * batch is outstanding until the matching gather(). At most
     * kMaxInFlight batches may be outstanding, and a lane must not
     * appear in two outstanding batches (its tiles would race).
     */
    void scatter(const std::vector<Index> &lanes,
                 const std::vector<const InterfaceVector *> &ifaces);

    /**
     * Gather the *oldest* outstanding batch: receives one reply frame
     * per channel, verifies the sequence/lane correlation, applies each
     * lane's confidence merge and writes lane j's merged readout into
     * *outs[j] (indexed like the scatter's lane list). Any protocol
     * violation, worker error, channel close or recv-timeout expiry is
     * fatal — a serving stack must never continue on a diverged shard.
     */
    void gather(const std::vector<MemoryReadout *> &outs);

    /** Outstanding scatters (0..kMaxInFlight). */
    Index inFlight() const { return pendingCount_; }

    // --- synchronous per-lane surface ----------------------------------

    /** One lane's step as a single scatter+gather round trip. */
    void stepLaneInto(Index lane, const InterfaceVector &iface,
                      MemoryReadout &out);

    /**
     * One lane behind the TileMemory surface (broadcast steps only; the
     * per-tile write-sharding path stays on ShardCoordinator). The view
     * borrows this group — it must not outlive it — and must not be
     * stepped while batches are in flight.
     */
    std::unique_ptr<TileMemory> laneMemory(Index lane);

    /** Admit control for one lane: resets its tiles and gate. */
    void admitLane(Index lane);

    /** Episode-reset one lane (no admit accounting). */
    void resetLane(Index lane);

    /** Episode-reset every lane. */
    void resetAll();

    // --- inspection -----------------------------------------------------

    const std::vector<std::vector<Real>> &
    laneAlphas(Index lane) const
    {
        return gates_[lane].alphas();
    }

    Index tiles() const { return tiles_; }
    Index lanes() const { return gates_.size(); }
    const DncConfig &globalConfig() const { return globalConfig_; }
    const DncConfig &shardConfig() const { return shardConfig_; }
    Index channelCount() const { return channels_.size(); }
    const Channel &channel(Index k) const { return *channels_[k]; }

    /** Lane-steps completed (gathered) since construction. */
    std::uint64_t laneSteps() const { return laneSteps_; }

    // --- fault tolerance (wire v3) -------------------------------------

    /**
     * Install the replacement-channel factory. Recovery is armed when a
     * respawner is set AND shardCheckpointIntervalSteps > 0 AND
     * failHard is off; otherwise a worker loss stays fatal.
     */
    void setRespawner(ShardRespawnFn respawner)
    {
        respawner_ = std::move(respawner);
    }

    /** Keep every worker loss fatal even when recovery is armed. */
    void setFailHard(bool on) { failHard_ = on; }

    /**
     * Pull a checkpoint of every worker's lane-major tile state right
     * now. Requires an empty in-flight window.
     */
    void checkpointNow();

    /**
     * Live migration: move worker k's tile slice (all lanes) onto
     * `replacement` and shut the old worker down. Quiesces via a fresh
     * checkpoint pull; requires an empty in-flight window. Works
     * without a respawner.
     */
    void migrateWorker(Index k, std::unique_ptr<Channel> replacement);

    /**
     * Re-deal all tiles over a new fleet mid-run (e.g. 8 -> 16
     * workers) with zero dropped lanes: checkpoint, retire the old
     * fleet, Rejoin + Restore the new one. Per-lane gates live
     * coordinator-side, so every lane resumes bit-identically.
     */
    void rescale(std::vector<std::unique_ptr<Channel>> channels);

    /** Worker losses recovered (respawn + restore + replay). */
    std::uint64_t recoveries() const { return recoveries_; }

    /** Checkpoint pulls completed (periodic + forced). */
    std::uint64_t checkpointsTaken() const { return checkpointsTaken_; }

    // --- fleet telemetry scrape (wire v5) -------------------------------

    /**
     * Pull every worker's telemetry registry (StatsPull/StatsReport)
     * into `perWorker` (one snapshot per worker, channel order) and
     * merge them — plus this process's registry and the group's wire
     * counters ("shard.wire.*") — into `aggregate`. Requires an empty
     * in-flight window, like every control-plane exchange here.
     */
    void scrapeWorkers(std::vector<obs::Snapshot> &perWorker,
                       obs::Snapshot &aggregate);

  private:
    void sendControl(ControlKind kind, std::uint32_t lane);

    /** Deal tiles contiguously/evenly over channels_. */
    void dealTiles();

    bool recoveryArmed() const
    {
        return static_cast<bool>(respawner_) && !failHard_ &&
               globalConfig_.shardCheckpointIntervalSteps > 0;
    }

    /** Respawn + Rejoin + Restore + replay; fatal when not armed. */
    void recoverWorker(Index k, const char *what, std::uint64_t seq);

    /** Rejoin handshake for worker k's assignment on channels_[k]. */
    void rejoinWorker(Index k, const char *who);

    /** Restore worker k's checkpoint slice; await the ControlAck. */
    void restoreWorker(Index k, const char *who);

    /** Append one shared frame to the replay log. */
    void commitLog(const std::vector<std::uint8_t> &bytes);

    /**
     * Receive channel k's next frame as a view (frameData_/frameSize_).
     * Zero-copy on shm; elsewhere the bytes land in frame_ and the view
     * points at it.
     */
    bool recvFrom(Index k);

    void pullCheckpoints();

    /** Pointer slice of checkpoints_ covering worker k (lane-major). */
    MemoryTileState *const *snapshotSlice(Index k);

    DncConfig globalConfig_;
    DncConfig shardConfig_;
    Index tiles_;
    MergePolicy policy_;
    bool wantWeightings_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<Index> firstTile_; ///< per channel
    std::vector<Index> tileCount_; ///< per channel

    std::vector<ConfidenceGate> gates_; ///< one per lane
    std::uint64_t seq_ = 0;
    std::uint64_t controlSeq_ = 0;
    std::uint64_t laneSteps_ = 0;

    /** One outstanding scatter (reused; steady state allocates nothing). */
    struct Pending
    {
        std::uint64_t seq = 0;
        std::vector<Index> lanes;
        /** The encoded LaneStep frame (shared by every channel), kept
         *  while outstanding so a recovery can resend the window. Only
         *  filled when recovery is armed. */
        std::vector<std::uint8_t> bytes;
    };
    Pending pending_[kMaxInFlight];
    Index pendingHead_ = 0;
    Index pendingCount_ = 0;

    // Reused per-step scratch. frame_ is recv scratch; frameData_/
    // frameSize_ view the last received frame (a borrowed shm slot or
    // frame_ itself).
    WireWriter writer_;
    std::vector<std::uint8_t> frame_;
    const std::uint8_t *frameData_ = nullptr;
    std::size_t frameSize_ = 0;
    std::vector<LaneStepEntry> entryScratch_;
    std::vector<LaneStepReplyMsg> replies_;        ///< per channel
    std::vector<const MemoryReadout *> localPtrs_; ///< per global tile
    std::vector<Real> scoreScratch_; ///< scoredHeads x tiles, row-major
    std::vector<Index> laneScratch_; ///< stepLaneInto's one-lane batch
    std::vector<const InterfaceVector *> ifaceScratch_;
    std::vector<MemoryReadout *> outScratch_;

    // Fault tolerance: checkpoint store + replay log (wire v3). Frames
    // are identical on every channel, so log entries and the control
    // resend scratch hold one buffer each; all rings reuse capacity so
    // a steady state that includes checkpointing allocates nothing.
    ShardRespawnFn respawner_;
    bool failHard_ = false;
    std::uint64_t recoveries_ = 0;
    std::uint64_t checkpointsTaken_ = 0;
    std::uint64_t checkpointSeq_ = 0;
    std::uint64_t statsSeq_ = 0; ///< scrape round ids (StatsPull seq)
    std::uint64_t laneStepsSinceCheckpoint_ = 0;
    bool checkpointValid_ = false; ///< checkpoints_ holds a real pull
    std::vector<MemoryTileState> checkpoints_; ///< lane-major, lanes x Nt
    std::vector<MemoryTileState *> snapshotPtrs_; ///< slice scratch
    std::vector<std::uint8_t> resendScratch_; ///< in-flight control/pull
    std::vector<std::vector<std::uint8_t>> log_; ///< ring, shared frames
    std::size_t logCount_ = 0;
};

} // namespace hima

#endif // HIMA_SHARD_PIPELINE_H
