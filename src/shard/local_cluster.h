/**
 * @file
 * Single-host shard cluster: a coordinator plus `workerCount` workers
 * living in this process — either behind synchronous loopback channels
 * (deterministic, no threads) or each serving a real Unix-domain/TCP
 * socket from its own thread. The socket modes exercise the identical
 * codec + framing a multi-process deployment uses (shard_worker
 * processes), so they double as the test/bench harness for the wire
 * and as a real deployment shape for one multi-core box.
 *
 * Destruction is ordered: the coordinator's Shutdown frames end every
 * worker's serve() loop before the threads are joined.
 */

#ifndef HIMA_SHARD_LOCAL_CLUSTER_H
#define HIMA_SHARD_LOCAL_CLUSTER_H

#include <memory>
#include <thread>
#include <vector>

#include "shard/coordinator.h"
#include "shard/worker.h"

namespace hima {

/** How a local cluster's frames travel. */
enum class ClusterTransport
{
    Loopback,   ///< synchronous in-process calls (no threads)
    UnixSocket, ///< AF_UNIX stream to worker threads
    Tcp,        ///< 127.0.0.1 stream to worker threads
};

/** A coordinator and the in-process workers that serve it. */
struct LocalShardCluster
{
    std::unique_ptr<ShardCoordinator> coordinator;
    std::vector<std::shared_ptr<ShardWorker>> workers;
    std::vector<std::thread> threads; ///< socket serve loops (may be empty)

    LocalShardCluster() = default;
    LocalShardCluster(LocalShardCluster &&) = default;

    /**
     * Move-assignment shuts the current cluster down first — a plain
     * defaulted member-wise move would destroy still-joinable serve
     * threads (std::terminate).
     */
    LocalShardCluster &
    operator=(LocalShardCluster &&other)
    {
        if (this != &other) {
            shutdown();
            coordinator = std::move(other.coordinator);
            workers = std::move(other.workers);
            threads = std::move(other.threads);
        }
        return *this;
    }

    ~LocalShardCluster() { shutdown(); }

  private:
    void
    shutdown()
    {
        coordinator.reset(); // sends Shutdown; serve() loops return
        for (std::thread &t : threads)
            t.join();
        threads.clear();
        workers.clear();
    }
};

/**
 * Build a cluster of `workerCount` workers hosting `tiles` tiles.
 * Socket endpoints are freshly allocated per call (unique /tmp paths,
 * ephemeral TCP ports), so concurrent clusters never collide; any
 * listen/connect failure is fatal (a hung accept thread would be
 * worse).
 */
LocalShardCluster
makeLocalCluster(ClusterTransport transport, const DncConfig &config,
                 Index tiles, Index workerCount,
                 MergePolicy policy = MergePolicy::Confidence,
                 bool wantWeightings = true);

} // namespace hima

#endif // HIMA_SHARD_LOCAL_CLUSTER_H
