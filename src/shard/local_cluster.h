/**
 * @file
 * Single-host shard cluster: a coordinator plus `workerCount` workers
 * living in this process — either behind synchronous loopback channels
 * (deterministic, no threads) or each serving a real Unix-domain/TCP
 * socket from its own thread. The socket modes exercise the identical
 * codec + framing a multi-process deployment uses (shard_worker
 * processes), so they double as the test/bench harness for the wire
 * and as a real deployment shape for one multi-core box.
 *
 * Destruction is ordered: the coordinator's Shutdown frames end every
 * worker's serve() loop before the threads are joined.
 */

#ifndef HIMA_SHARD_LOCAL_CLUSTER_H
#define HIMA_SHARD_LOCAL_CLUSTER_H

#include <memory>
#include <thread>
#include <vector>

#include "shard/coordinator.h"
#include "shard/pipeline.h"
#include "shard/worker.h"

namespace hima {

/**
 * Default bounded recv timeout applied to coordinator-side socket
 * channels: generous next to a worker's per-frame compute, small next
 * to "hangs forever". Worker-side channels stay unbounded (idle gaps
 * between requests are normal).
 */
constexpr int kShardRecvTimeoutMs = 30000;

/** How a local cluster's frames travel. */
enum class ClusterTransport
{
    Loopback,   ///< synchronous in-process calls (no threads)
    UnixSocket, ///< AF_UNIX stream to worker threads
    Tcp,        ///< 127.0.0.1 stream to worker threads
    Shm,        ///< zero-copy shared-memory rings to worker threads
};

/** A coordinator and the in-process workers that serve it. */
struct LocalShardCluster
{
    std::unique_ptr<ShardCoordinator> coordinator;
    std::vector<std::shared_ptr<ShardWorker>> workers;
    std::vector<std::thread> threads; ///< socket serve loops (may be empty)

    LocalShardCluster() = default;
    LocalShardCluster(LocalShardCluster &&) = default;

    /**
     * Move-assignment shuts the current cluster down first — a plain
     * defaulted member-wise move would destroy still-joinable serve
     * threads (std::terminate).
     */
    LocalShardCluster &
    operator=(LocalShardCluster &&other)
    {
        if (this != &other) {
            shutdown();
            coordinator = std::move(other.coordinator);
            workers = std::move(other.workers);
            threads = std::move(other.threads);
        }
        return *this;
    }

    ~LocalShardCluster() { shutdown(); }

  private:
    void
    shutdown()
    {
        coordinator.reset(); // sends Shutdown; serve() loops return
        for (std::thread &t : threads)
            t.join();
        threads.clear();
        workers.clear();
    }
};

/**
 * Build a cluster of `workerCount` workers hosting `tiles` tiles.
 * Socket endpoints are freshly allocated per call (unique /tmp paths,
 * ephemeral TCP ports), so concurrent clusters never collide; any
 * listen/connect failure is fatal (a hung accept thread would be
 * worse).
 */
LocalShardCluster
makeLocalCluster(ClusterTransport transport, const DncConfig &config,
                 Index tiles, Index workerCount,
                 MergePolicy policy = MergePolicy::Confidence,
                 bool wantWeightings = true);

/**
 * A pipelined lane group and the in-process workers that serve it
 * (multi-lane sibling of LocalShardCluster). The group is shared so a
 * PipelinedShardedLaneEngine can co-own it while this struct keeps the
 * worker threads alive; destruction is ordered the same way — the
 * group's Shutdown frames end every serve() loop before the join.
 */
struct LocalLaneCluster
{
    std::shared_ptr<ShardLaneGroup> group;
    std::vector<std::shared_ptr<ShardWorker>> workers;
    std::vector<std::thread> threads; ///< socket serve loops (may be empty)

    LocalLaneCluster() = default;
    LocalLaneCluster(LocalLaneCluster &&) = default;

    LocalLaneCluster &
    operator=(LocalLaneCluster &&other)
    {
        if (this != &other) {
            shutdown();
            group = std::move(other.group);
            workers = std::move(other.workers);
            threads = std::move(other.threads);
        }
        return *this;
    }

    ~LocalLaneCluster() { shutdown(); }

  private:
    void
    shutdown()
    {
        // Shutdown frames go out only when the group's last reference
        // drops, and the join below needs them to have gone out — so a
        // co-owning engine must be destroyed before the cluster. Fail
        // loudly instead of joining serve() loops that will never end.
        if (group && group.use_count() > 1)
            HIMA_FATAL("LocalLaneCluster destroyed while an engine still "
                       "co-owns its lane group (%ld refs); destroy the "
                       "engine first",
                       static_cast<long>(group.use_count()));
        group.reset();
        for (std::thread &t : threads)
            t.join();
        threads.clear();
        workers.clear();
    }
};

/**
 * Build a pipelined cluster: `workerCount` workers hosting
 * `lanes` x `tiles` tile sets behind one ShardLaneGroup. Socket
 * channels get a bounded recv timeout (kShardRecvTimeoutMs) so dead
 * workers fail the step instead of hanging the coordinator.
 */
LocalLaneCluster
makeLocalLaneCluster(ClusterTransport transport, const DncConfig &config,
                     Index tiles, Index lanes, Index workerCount,
                     MergePolicy policy = MergePolicy::Confidence,
                     bool wantWeightings = false);

/**
 * Spawn one fresh, unconfigured worker on `transport` and return a
 * connected channel to it (socket and shm transports add a serve thread
 * and the bounded recv timeout, exactly like makeLocalCluster's fleet).
 * The worker and any thread are appended to the caller's vectors — hand
 * it a cluster's own `workers`/`threads` to grow that fleet, e.g. as
 * the replacement endpoint for migrateWorker() or a rescale().
 *
 * `shmSlotBytes` sizes the ring slots of an shm channel (use
 * shmSlotBytesFor so checkpoint frames fit; ignored by the other
 * transports); `recvTimeoutMs` bounds the coordinator-side receives.
 */
std::unique_ptr<Channel>
makeClusterWorker(ClusterTransport transport,
                  std::vector<std::shared_ptr<ShardWorker>> &workers,
                  std::vector<std::thread> &threads,
                  std::size_t shmSlotBytes = kShmDefaultSlotBytes,
                  int recvTimeoutMs = kShardRecvTimeoutMs);

/**
 * Replacement workers and serve threads created by an armed respawner.
 * Co-owned by the respawner closure (so it stays valid however the
 * cluster struct is moved) and by the caller for inspection; serve
 * threads are joined on destruction (they exit once the coordinator's
 * Shutdown frames land, before the closure's reference drops).
 */
struct RespawnHarness
{
    ClusterTransport transport = ClusterTransport::Loopback;
    std::size_t shmSlotBytes = kShmDefaultSlotBytes; ///< ring slot size
    int recvTimeoutMs = kShardRecvTimeoutMs;
    std::vector<std::shared_ptr<ShardWorker>> workers; ///< replacements
    std::vector<std::thread> threads;

    ~RespawnHarness()
    {
        for (std::thread &t : threads)
            t.join();
    }
};

/**
 * Arm worker recovery on a cluster: install a respawner that spawns
 * replacement workers on `transport`. Recovery actually engages only
 * when the cluster's config also set shardCheckpointIntervalSteps > 0.
 *
 * @return the harness owning replacements, for inspection/lifetime
 */
std::shared_ptr<RespawnHarness>
armClusterRecovery(LocalShardCluster &cluster, ClusterTransport transport);

/** Lane-cluster form of armClusterRecovery(). */
std::shared_ptr<RespawnHarness>
armClusterRecovery(LocalLaneCluster &cluster, ClusterTransport transport);

} // namespace hima

#endif // HIMA_SHARD_LOCAL_CLUSTER_H
