#include "shard/pipeline.h"

#include <utility>

#include "obs/obs.h"

namespace hima {

namespace {

/** Process-wide series for the lane group (registered on first use). */
struct GroupMetrics
{
    obs::Counter *laneSteps;
    obs::Counter *scatters;
    obs::Counter *checkpoints;
    obs::Counter *recoveries;
    obs::Gauge *inFlight;
    obs::Histogram *recoveryNanos;

    GroupMetrics()
    {
        obs::Registry &reg = obs::Registry::instance();
        laneSteps = &reg.counter("shard.lane_steps");
        scatters = &reg.counter("shard.scatters");
        checkpoints = &reg.counter("shard.checkpoints");
        recoveries = &reg.counter("shard.recoveries");
        inFlight = &reg.gauge("shard.in_flight_batches");
        recoveryNanos = &reg.histogram("recover.latency_nanos");
    }

    static GroupMetrics &
    get()
    {
        static GroupMetrics metrics;
        return metrics;
    }
};

std::uint32_t
maskOf(const std::vector<Index> &heads)
{
    std::uint32_t mask = 0;
    for (Index head : heads)
        mask |= 1u << head;
    return mask;
}

} // namespace

ShardLaneGroup::ShardLaneGroup(
    const DncConfig &config, Index tiles, Index lanes, MergePolicy policy,
    std::vector<std::unique_ptr<Channel>> channels, bool wantWeightings)
    : globalConfig_(config), shardConfig_(shardConfigFor(config, tiles)),
      tiles_(tiles), policy_(policy), wantWeightings_(wantWeightings),
      channels_(std::move(channels))
{
    HIMA_ASSERT(!channels_.empty() && channels_.size() <= tiles_,
                "need 1..Nt worker channels (got %zu for %zu tiles)",
                channels_.size(), tiles_);
    HIMA_ASSERT(lanes >= 1, "need at least one lane");
    HIMA_ASSERT(config.readHeads <= 32,
                "scored-head mask supports up to 32 read heads");
    gates_.resize(lanes);

    dealTiles();
    const Index chans = channels_.size();

    for (Index k = 0; k < chans; ++k) {
        FrameScope frame(*channels_[k], writer_);
        encodeHello(WireConfig::fromShard(shardConfig_, tileCount_[k],
                                          lanes),
                    frame.writer());
        frame.commit();
    }
    for (Index k = 0; k < chans; ++k) {
        HelloAckMsg ack;
        if (!recvFrom(k) || !decodeHelloAck(frameData_, frameSize_, ack))
            HIMA_FATAL("lane-group handshake: worker %zu sent no valid "
                       "ack",
                       k);
        if (!ack.ok)
            HIMA_FATAL("lane-group handshake: worker %zu rejected config: "
                       "%s",
                       k, ack.message.c_str());
        if (ack.hostedTiles != tileCount_[k])
            HIMA_FATAL("lane-group handshake: worker %zu hosts %llu "
                       "tiles, expected %zu",
                       k, static_cast<unsigned long long>(ack.hostedTiles),
                       tileCount_[k]);
    }

    localPtrs_.resize(tiles_);
}

void
ShardLaneGroup::dealTiles()
{
    // Deal tiles contiguously and as evenly as possible (the same
    // layout as ShardCoordinator, repeated per lane on each worker).
    const Index chans = channels_.size();
    firstTile_.clear();
    tileCount_.clear();
    Index next = 0;
    for (Index k = 0; k < chans; ++k) {
        const Index count = tiles_ / chans + (k < tiles_ % chans ? 1 : 0);
        firstTile_.push_back(next);
        tileCount_.push_back(count);
        next += count;
    }
    replies_.resize(chans);
}

ShardLaneGroup::~ShardLaneGroup()
{
    for (auto &channel : channels_) {
        FrameScope frame(*channel, writer_);
        encodeShutdown(frame.writer());
        frame.commit();
    }
}

bool
ShardLaneGroup::recvFrom(Index k)
{
    return channels_[k]->recvFrameView(frameData_, frameSize_, frame_);
}

void
ShardLaneGroup::scatter(const std::vector<Index> &lanes,
                        const std::vector<const InterfaceVector *> &ifaces)
{
    HIMA_ASSERT(pendingCount_ < kMaxInFlight,
                "scatter window full (%zu in flight)", pendingCount_);
    HIMA_ASSERT(!lanes.empty() && lanes.size() == ifaces.size(),
                "scatter needs one interface per lane");
    // A lane in two outstanding batches would race on its tiles and
    // its gate; both lane lists are ascending, so a two-pointer sweep
    // catches the overlap cheaply.
    for (Index b = 0; b < pendingCount_; ++b) {
        const std::vector<Index> &prev =
            pending_[(pendingHead_ + b) % kMaxInFlight].lanes;
        Index i = 0, j = 0;
        while (i < prev.size() && j < lanes.size()) {
            HIMA_ASSERT(prev[i] != lanes[j],
                        "lane %zu is already in an outstanding batch",
                        lanes[j]);
            if (prev[i] < lanes[j])
                ++i;
            else
                ++j;
        }
    }

    // Select the scored heads per lane *now* (alpha history is
    // per-lane, so batches touching disjoint lanes commute), and build
    // the shared frame: lane-addressed, so every worker receives the
    // identical bytes — one encode per batch.
    entryScratch_.resize(lanes.size());
    for (Index j = 0; j < lanes.size(); ++j) {
        const Index lane = lanes[j];
        HIMA_ASSERT(lane < gates_.size(), "lane %zu out of range", lane);
        HIMA_ASSERT(j == 0 || lanes[j] > lanes[j - 1],
                    "scatter lanes must be strictly increasing");
        entryScratch_[j].lane = static_cast<std::uint32_t>(lane);
        entryScratch_[j].scoredMask = maskOf(gates_[lane].selectHeads(
            *ifaces[j], policy_, globalConfig_.readHeads, tiles_));
        entryScratch_[j].iface = ifaces[j];
    }

    obs::TraceSpan span("shard.scatter", lanes.size());
    const std::uint64_t seq = ++seq_;
    Pending &slot =
        pending_[(pendingHead_ + pendingCount_) % kMaxInFlight];
    slot.seq = seq;
    slot.lanes.assign(lanes.begin(), lanes.end());
    // The frame is identical on every channel, but zero-copy channels
    // encode straight into their own ring slot, so encode per channel:
    // the encoder's array stores cost exactly what the old
    // encode-once-then-memcpy-per-channel scheme cost, and the shm hot
    // path moves no extra copy of the Real arrays. SocketChannel's
    // sendFrame is its queueFrame + flush, so syscall counts are
    // unchanged (one frame per channel per scatter).
    for (Index k = 0; k < channels_.size(); ++k) {
        FrameScope frame(*channels_[k], writer_);
        encodeLaneStep(seq, wantWeightings_, entryScratch_.data(),
                       entryScratch_.size(), frame.writer());
        if (k == 0 && recoveryArmed())
            slot.bytes.assign(frame.writer().data(),
                              frame.writer().data() +
                                  frame.writer().size());
        frame.commit();
    }
    ++pendingCount_;
    GroupMetrics::get().scatters->add();
    GroupMetrics::get().inFlight->set(
        static_cast<std::int64_t>(pendingCount_));
}

void
ShardLaneGroup::gather(const std::vector<MemoryReadout *> &outs)
{
    HIMA_ASSERT(pendingCount_ > 0, "gather with no scatter in flight");
    Pending &p = pending_[pendingHead_];
    HIMA_ASSERT(outs.size() == p.lanes.size(),
                "gather needs one readout per scattered lane");

    const Index r = globalConfig_.readHeads;
    {
        obs::TraceSpan recvSpan("shard.gather_recv", channels_.size());
        for (Index k = 0; k < channels_.size(); ++k) {
            if (!recvFrom(k)) {
                recoverWorker(k, "batch", p.seq); // fatal unless armed
                // The replacement holds the checkpoint + replayed log;
                // resend the whole outstanding window oldest-first. Only
                // the oldest reply is consumed here — the rest queue up
                // for their own gathers, draining the double buffer
                // deterministically (the window never exceeds an shm
                // reply ring's depth). A second loss is fatal.
                for (Index b = 0; b < pendingCount_; ++b) {
                    const Pending &q =
                        pending_[(pendingHead_ + b) % kMaxInFlight];
                    channels_[k]->sendFrame(q.bytes.data(),
                                            q.bytes.size());
                }
                if (!recvFrom(k))
                    shardRecvFailure(*channels_[k], "batch", p.seq, k);
            }
            MsgType type;
            if (!peekType(frameData_, frameSize_, type))
                HIMA_FATAL("shard batch %llu: worker %zu sent a "
                           "malformed frame",
                           static_cast<unsigned long long>(p.seq), k);
            if (type == MsgType::Error) {
                ErrorMsg err;
                decodeError(frameData_, frameSize_, err);
                HIMA_FATAL("shard batch %llu: worker %zu error: %s",
                           static_cast<unsigned long long>(p.seq), k,
                           err.message.c_str());
            }
            LaneStepReplyMsg &reply = replies_[k];
            if (!decodeLaneStepReply(frameData_, frameSize_, shardConfig_,
                                     tileCount_[k], p.lanes.size(),
                                     reply))
                HIMA_FATAL("shard batch %llu: worker %zu sent a "
                           "malformed reply",
                           static_cast<unsigned long long>(p.seq), k);
            if (reply.seq != p.seq)
                HIMA_FATAL("shard batch %llu: worker %zu replied out of "
                           "sequence (%llu)",
                           static_cast<unsigned long long>(p.seq), k,
                           static_cast<unsigned long long>(reply.seq));
            if (reply.hasWeightings != wantWeightings_)
                HIMA_FATAL("shard batch %llu: worker %zu weighting flag "
                           "mismatch",
                           static_cast<unsigned long long>(p.seq), k);
            if (reply.lanes.size() != p.lanes.size())
                HIMA_FATAL("shard batch %llu: worker %zu answered %zu "
                           "lanes, expected %zu",
                           static_cast<unsigned long long>(p.seq), k,
                           reply.lanes.size(), p.lanes.size());
            for (Index j = 0; j < p.lanes.size(); ++j)
                if (reply.lanes[j] != p.lanes[j])
                    HIMA_FATAL("shard batch %llu: worker %zu echoed lane "
                               "%u at slot %zu, expected %zu",
                               static_cast<unsigned long long>(p.seq), k,
                               reply.lanes[j], j, p.lanes[j]);
        }
    }

    // Per-lane confidence merge — the same gate + mergeTileReadouts the
    // in-process DncD runs, so a lane of a group cannot drift from it.
    {
        obs::TraceSpan mergeSpan("shard.merge", p.lanes.size());
        for (Index j = 0; j < p.lanes.size(); ++j) {
            const Index lane = p.lanes[j];
            ConfidenceGate &gate = gates_[lane];
            for (Index k = 0; k < channels_.size(); ++k)
                for (Index i = 0; i < tileCount_[k]; ++i)
                    localPtrs_[firstTile_[k] + i] =
                        &replies_[k].tiles[j * tileCount_[k] + i];
            const std::vector<Index> &scored = gate.scoredHeads();
            if (!scored.empty()) {
                scoreScratch_.assign(scored.size() * tiles_, 0.0);
                for (Index k = 0; k < channels_.size(); ++k) {
                    for (Index i = 0; i < tileCount_[k]; ++i) {
                        const Index tile = firstTile_[k] + i;
                        const Real *logits =
                            replies_[k].confidence.data() +
                            (j * tileCount_[k] + i) * r;
                        for (Index s = 0; s < scored.size(); ++s)
                            scoreScratch_[s * tiles_ + tile] =
                                logits[scored[s]];
                    }
                }
                gate.applyScores(scoreScratch_, tiles_);
            }
            mergeTileReadouts(localPtrs_, gate.alphas(), globalConfig_,
                              shardConfig_.memoryRows, *outs[j]);
        }
    }

    laneSteps_ += p.lanes.size();
    pendingHead_ = (pendingHead_ + 1) % kMaxInFlight;
    --pendingCount_;
    GroupMetrics::get().laneSteps->add(p.lanes.size());
    GroupMetrics::get().inFlight->set(
        static_cast<std::int64_t>(pendingCount_));

    if (recoveryArmed()) {
        commitLog(p.bytes);
        laneStepsSinceCheckpoint_ += p.lanes.size();
        // Checkpoint only at a gather that empties the window, so the
        // pull never interleaves with an outstanding batch.
        if (pendingCount_ == 0 &&
            laneStepsSinceCheckpoint_ >=
                globalConfig_.shardCheckpointIntervalSteps)
            pullCheckpoints();
    }
}

void
ShardLaneGroup::stepLaneInto(Index lane, const InterfaceVector &iface,
                             MemoryReadout &out)
{
    HIMA_ASSERT(pendingCount_ == 0,
                "stepLaneInto while %zu batches are in flight",
                pendingCount_);
    laneScratch_.assign(1, lane);
    ifaceScratch_.assign(1, &iface);
    outScratch_.assign(1, &out);
    scatter(laneScratch_, ifaceScratch_);
    gather(outScratch_);
}

void
ShardLaneGroup::sendControl(ControlKind kind, std::uint32_t lane)
{
    HIMA_ASSERT(pendingCount_ == 0,
                "shard control while %zu batches are in flight",
                pendingCount_);
    ControlMsg msg;
    msg.kind = kind;
    msg.seq = ++controlSeq_;
    msg.lane = lane;
    encodeControl(msg, writer_);
    for (auto &channel : channels_)
        channel->sendFrame(writer_.buffer().data(), writer_.buffer().size());
    if (recoveryArmed()) {
        // Controls mutate worker state (tile resets), so a replacement
        // must replay them in order with the lane steps. The scratch
        // copy also survives recoverWorker() reusing writer_.
        resendScratch_.assign(writer_.buffer().begin(),
                              writer_.buffer().end());
    }
    for (Index k = 0; k < channels_.size(); ++k) {
        std::uint64_t seq = 0;
        if (!recvFrom(k)) {
            recoverWorker(k, "control", msg.seq);
            channels_[k]->sendFrame(resendScratch_.data(),
                                    resendScratch_.size());
            if (!recvFrom(k))
                shardRecvFailure(*channels_[k], "control", msg.seq, k);
        }
        if (!decodeControlAck(frameData_, frameSize_, seq) ||
            seq != msg.seq)
            HIMA_FATAL("shard control: worker %zu did not acknowledge", k);
    }
    if (recoveryArmed())
        commitLog(resendScratch_);
    if (lane == kAllLanes) {
        for (ConfidenceGate &gate : gates_)
            gate.reset();
    } else {
        gates_[lane].reset();
    }
}

void
ShardLaneGroup::admitLane(Index lane)
{
    HIMA_ASSERT(lane < gates_.size(), "lane %zu out of range", lane);
    sendControl(ControlKind::Admit, static_cast<std::uint32_t>(lane));
}

void
ShardLaneGroup::resetLane(Index lane)
{
    HIMA_ASSERT(lane < gates_.size(), "lane %zu out of range", lane);
    sendControl(ControlKind::EpisodeReset,
                static_cast<std::uint32_t>(lane));
}

void
ShardLaneGroup::resetAll()
{
    sendControl(ControlKind::EpisodeReset, kAllLanes);
}

// --------------------------------------------------------------------
// Fault tolerance: checkpoint pulls, replay log, respawn + restore
// --------------------------------------------------------------------

void
ShardLaneGroup::commitLog(const std::vector<std::uint8_t> &bytes)
{
    if (logCount_ == log_.size())
        log_.emplace_back();
    log_[logCount_++].assign(bytes.begin(), bytes.end());
}

MemoryTileState *const *
ShardLaneGroup::snapshotSlice(Index k)
{
    // Worker k encodes its tiles lane-major (lane * hostedTiles + i);
    // point the slice at the matching rows of the lanes x Nt store.
    const Index laneCount = gates_.size();
    snapshotPtrs_.resize(laneCount * tileCount_[k]);
    for (Index l = 0; l < laneCount; ++l)
        for (Index i = 0; i < tileCount_[k]; ++i)
            snapshotPtrs_[l * tileCount_[k] + i] =
                &checkpoints_[l * tiles_ + firstTile_[k] + i];
    return snapshotPtrs_.data();
}

void
ShardLaneGroup::pullCheckpoints()
{
    HIMA_ASSERT(pendingCount_ == 0,
                "shard checkpoint while %zu batches are in flight",
                pendingCount_);
    obs::TraceSpan span("shard.checkpoint_pull");
    const Index chans = channels_.size();
    checkpoints_.resize(gates_.size() * tiles_);
    ++checkpointSeq_;
    encodeCheckpointRequest(checkpointSeq_, writer_);
    for (auto &channel : channels_)
        channel->sendFrame(writer_.buffer().data(),
                           writer_.buffer().size());
    if (recoveryArmed())
        resendScratch_.assign(writer_.buffer().begin(),
                              writer_.buffer().end());
    for (Index k = 0; k < chans; ++k) {
        if (!recvFrom(k)) {
            // Mid-pull loss: recover from the *previous* checkpoint
            // plus the still-uncleared log, then re-ask for this one.
            recoverWorker(k, "checkpoint", checkpointSeq_);
            channels_[k]->sendFrame(resendScratch_.data(),
                                    resendScratch_.size());
            if (!recvFrom(k))
                shardRecvFailure(*channels_[k], "checkpoint",
                                 checkpointSeq_, k);
        }
        MsgType type;
        if (peekType(frameData_, frameSize_, type) &&
            type == MsgType::Error) {
            ErrorMsg err;
            decodeError(frameData_, frameSize_, err);
            HIMA_FATAL("shard checkpoint %llu: worker %zu error: %s",
                       static_cast<unsigned long long>(checkpointSeq_), k,
                       err.message.c_str());
        }
        std::uint64_t seq = 0;
        if (!decodeCheckpointState(frameData_, frameSize_,
                                   shardConfig_, snapshotSlice(k),
                                   gates_.size() * tileCount_[k], seq) ||
            seq != checkpointSeq_)
            HIMA_FATAL("shard checkpoint %llu: worker %zu sent a "
                       "malformed snapshot",
                       static_cast<unsigned long long>(checkpointSeq_), k);
    }
    checkpointValid_ = true;
    ++checkpointsTaken_;
    laneStepsSinceCheckpoint_ = 0;
    logCount_ = 0; // ring buffers kept: the next window reuses them
    GroupMetrics::get().checkpoints->add();
}

void
ShardLaneGroup::scrapeWorkers(std::vector<obs::Snapshot> &perWorker,
                              obs::Snapshot &aggregate)
{
    HIMA_ASSERT(pendingCount_ == 0,
                "shard stats scrape while %zu batches are in flight",
                pendingCount_);
    const Index chans = channels_.size();
    perWorker.resize(chans);
    ++statsSeq_;
    encodeStatsPull(statsSeq_, writer_);
    for (auto &channel : channels_)
        channel->sendFrame(writer_.buffer().data(),
                           writer_.buffer().size());
    if (recoveryArmed())
        resendScratch_.assign(writer_.buffer().begin(),
                              writer_.buffer().end());
    for (Index k = 0; k < chans; ++k) {
        if (!recvFrom(k)) {
            recoverWorker(k, "stats scrape", statsSeq_);
            channels_[k]->sendFrame(resendScratch_.data(),
                                    resendScratch_.size());
            if (!recvFrom(k))
                shardRecvFailure(*channels_[k], "stats scrape", statsSeq_,
                                 k);
        }
        MsgType type;
        if (peekType(frameData_, frameSize_, type) &&
            type == MsgType::Error) {
            ErrorMsg err;
            decodeError(frameData_, frameSize_, err);
            HIMA_FATAL("shard stats scrape %llu: worker %zu error: %s",
                       static_cast<unsigned long long>(statsSeq_), k,
                       err.message.c_str());
        }
        std::uint64_t seq = 0;
        if (!decodeStatsReport(frameData_, frameSize_, perWorker[k],
                               seq) ||
            seq != statsSeq_)
            HIMA_FATAL("shard stats scrape %llu: worker %zu sent a "
                       "malformed report",
                       static_cast<unsigned long long>(statsSeq_), k);
    }

    obs::processSnapshot(aggregate);
    for (const obs::Snapshot &report : perWorker)
        aggregate.merge(report);
    WireTrafficStats sent, received;
    for (const auto &channel : channels_) {
        sent += channel->sentStats();
        received += channel->receivedStats();
    }
    obs::importWireTraffic(aggregate, sent, received, "shard.wire");
}

void
ShardLaneGroup::checkpointNow()
{
    pullCheckpoints();
}

void
ShardLaneGroup::rejoinWorker(Index k, const char *who)
{
    {
        FrameScope frame(*channels_[k], writer_);
        encodeRejoin(WireConfig::fromShard(shardConfig_, tileCount_[k],
                                           gates_.size()),
                     firstTile_[k], frame.writer());
        frame.commit();
    }
    HelloAckMsg ack;
    if (!recvFrom(k) ||
        !decodeHelloAck(frameData_, frameSize_, ack) || !ack.ok ||
        ack.hostedTiles != tileCount_[k])
        HIMA_FATAL("%s: worker %zu failed the Rejoin handshake%s%s", who, k,
                   ack.message.empty() ? "" : ": ", ack.message.c_str());
}

void
ShardLaneGroup::restoreWorker(Index k, const char *who)
{
    {
        FrameScope frame(*channels_[k], writer_);
        encodeRestore(checkpointSeq_, snapshotSlice(k),
                      gates_.size() * tileCount_[k], shardConfig_,
                      frame.writer());
        frame.commit();
    }
    std::uint64_t seq = 0;
    if (!recvFrom(k) ||
        !decodeControlAck(frameData_, frameSize_, seq) ||
        seq != checkpointSeq_)
        HIMA_FATAL("%s: worker %zu did not acknowledge the Restore", who,
                   k);
}

void
ShardLaneGroup::recoverWorker(Index k, const char *what, std::uint64_t seq)
{
    const ShardError err = shardRecvError(*channels_[k], what, seq, k);
    if (!recoveryArmed())
        HIMA_FATAL("%s", err.describe().c_str());
    ++recoveries_;
    const std::uint64_t recoverStart = obs::traceNowNanos();
    obs::TraceSpan span("recover.worker", logCount_);
    obs::traceInstant("recover.detected", k);
    HIMA_WARN("%s; respawning and replaying %zu logged frames",
              err.describe().c_str(), logCount_);
    std::unique_ptr<Channel> fresh = respawner_(k);
    if (!fresh)
        HIMA_FATAL("shard recovery: no replacement channel for worker %zu",
                   k);
    channels_[k] = std::move(fresh);

    rejoinWorker(k, "shard recovery");
    // Before the first pull there is nothing to restore: freshly built
    // tiles already hold the t=0 state the log replays from.
    if (checkpointValid_)
        restoreWorker(k, "shard recovery");

    // Replay the logged window; replies are drained and discarded (the
    // per-lane gates already advanced through these frames).
    // Each replayed frame's reply is drained before the next send, so
    // the window can exceed an shm reply ring's slot count without
    // deadlock.
    for (std::size_t e = 0; e < logCount_; ++e) {
        channels_[k]->sendFrame(log_[e].data(), log_[e].size());
        MsgType type;
        if (!recvFrom(k) ||
            !peekType(frameData_, frameSize_, type) ||
            type == MsgType::Error)
            HIMA_FATAL("shard recovery: worker %zu failed replay frame "
                       "%zu/%zu",
                       k, e + 1, static_cast<std::size_t>(logCount_));
    }

    GroupMetrics::get().recoveries->add();
    GroupMetrics::get().recoveryNanos->record(obs::traceNowNanos() -
                                              recoverStart);
}

void
ShardLaneGroup::migrateWorker(Index k, std::unique_ptr<Channel> replacement)
{
    HIMA_ASSERT(k < channels_.size(), "migrate: no worker %zu", k);
    HIMA_ASSERT(replacement != nullptr, "migrate: null replacement");
    HIMA_ASSERT(pendingCount_ == 0,
                "migrate while %zu batches are in flight", pendingCount_);
    // A fresh pull captures the exact current state of every lane (and
    // empties the replay log), so the move needs no replay.
    pullCheckpoints();

    std::unique_ptr<Channel> old = std::move(channels_[k]);
    channels_[k] = std::move(replacement);
    rejoinWorker(k, "shard migration");
    restoreWorker(k, "shard migration");

    // Retire the old worker only after the replacement holds the state.
    FrameScope frame(*old, writer_);
    encodeShutdown(frame.writer());
    frame.commit();
}

void
ShardLaneGroup::rescale(std::vector<std::unique_ptr<Channel>> channels)
{
    HIMA_ASSERT(!channels.empty() && channels.size() <= tiles_,
                "rescale: need 1..Nt worker channels (got %zu for %zu "
                "tiles)",
                channels.size(), tiles_);
    HIMA_ASSERT(pendingCount_ == 0,
                "rescale while %zu batches are in flight", pendingCount_);
    pullCheckpoints();
    for (auto &channel : channels_) {
        FrameScope frame(*channel, writer_);
        encodeShutdown(frame.writer());
        frame.commit();
    }

    channels_ = std::move(channels);
    dealTiles();

    // Rejoin + Restore the new fleet onto the re-dealt slices. Lane
    // gates live coordinator-side and are untouched, so every serving
    // lane survives the scale-out bit-identically — zero drops.
    for (Index k = 0; k < channels_.size(); ++k) {
        rejoinWorker(k, "shard rescale");
        restoreWorker(k, "shard rescale");
    }
}

// --------------------------------------------------------------------
// LaneMemoryView: one lane behind the TileMemory surface.
// --------------------------------------------------------------------

namespace {

class LaneMemoryView final : public TileMemory
{
  public:
    LaneMemoryView(ShardLaneGroup &group, Index lane)
        : group_(group), lane_(lane)
    {}

    MemoryReadout
    stepInterface(const InterfaceVector &iface) override
    {
        MemoryReadout out;
        group_.stepLaneInto(lane_, iface, out);
        return out;
    }

    MemoryReadout
    stepInterfaces(const std::vector<InterfaceVector> &) override
    {
        HIMA_FATAL("lane views carry broadcast steps only; per-tile "
                   "write sharding runs on ShardCoordinator");
    }

    void
    stepInterfaceInto(const InterfaceVector &iface,
                      MemoryReadout &out) override
    {
        group_.stepLaneInto(lane_, iface, out);
    }

    void reset() override { group_.resetLane(lane_); }
    void beginEpisode() override { group_.admitLane(lane_); }
    Index tiles() const override { return group_.tiles(); }
    const DncConfig &globalConfig() const override
    {
        return group_.globalConfig();
    }
    const DncConfig &shardConfig() const override
    {
        return group_.shardConfig();
    }
    const std::vector<std::vector<Real>> &lastAlphas() const override
    {
        return group_.laneAlphas(lane_);
    }

  private:
    ShardLaneGroup &group_;
    Index lane_;
};

} // namespace

std::unique_ptr<TileMemory>
ShardLaneGroup::laneMemory(Index lane)
{
    HIMA_ASSERT(lane < gates_.size(), "lane %zu out of range", lane);
    return std::make_unique<LaneMemoryView>(*this, lane);
}

} // namespace hima
