#include "shard/fault.h"

#include <chrono>
#include <thread>

namespace hima {

void
FaultInjector::arm(const FaultSpec &spec)
{
    spec_ = spec;
    frames_ = 0;
    stepFrames_ = 0;
    dead_ = false;
}

bool
FaultInjector::onFrame(bool isStepFrame)
{
    if (dead_)
        return true;
    if (!armed())
        return false;
    ++frames_;
    if (isStepFrame)
        ++stepFrames_;
    if (spec_.dropAtFrame != 0 && frames_ == spec_.dropAtFrame) {
        dead_ = true;
        return true;
    }
    if (isStepFrame && spec_.killAtStepFrame != 0 &&
        stepFrames_ == spec_.killAtStepFrame) {
        dead_ = true;
        return true;
    }
    if (isStepFrame && spec_.delayAtStepFrame != 0 &&
        stepFrames_ == spec_.delayAtStepFrame && spec_.delayMs != 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(spec_.delayMs));
    return false;
}

} // namespace hima
