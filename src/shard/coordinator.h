/**
 * @file
 * Shard coordinator: the client side of multi-process DNC-D.
 *
 * Implements the same TileMemory stepping surface as the in-process
 * DncD, but over worker channels: each step it scatters per-tile
 * interface vectors (scored-head mask included, so workers only compute
 * the confidence logits the merge will use), gathers every tile's read
 * vectors + logits, and performs the exact confidence-softmax merge —
 * through the *same* ConfidenceGate and mergeTileReadouts code DncD
 * runs, so a sharded deployment is bit-identical per step to the
 * in-process model by construction (proven over loopback and real
 * sockets in tests/test_shard.cpp).
 *
 * Scatter/gather is synchronous fan-out: send to every channel first,
 * then collect replies in channel order — workers on distinct processes
 * overlap their compute while the coordinator is still draining
 * earlier replies. Sequence numbers pair requests with replies; any
 * protocol violation (bad frame, seq mismatch, worker Error) is fatal:
 * a serving stack must never continue on a diverged shard.
 *
 * Wire v3 fault tolerance: with a respawner installed (setRespawner)
 * and a nonzero DncConfig::shardCheckpointIntervalSteps, the
 * coordinator periodically pulls a CheckpointState snapshot of every
 * worker's tiles and keeps a replay log of every frame sent since that
 * snapshot. A worker loss (recv timeout or closed channel) then
 * recovers instead of dying: respawn a replacement, Rejoin it onto the
 * lost assignment, Restore the checkpoint slice, replay the logged
 * window (replies discarded — the coordinator-side gate already
 * advanced through those steps), and re-issue the in-flight frame. The
 * recovered run is bit-identical to an undisturbed one because all
 * merge state (ConfidenceGate alphas) lives coordinator-side and tile
 * state is restored exactly. The same checkpoint frames also implement
 * live migration (migrateWorker) and fleet re-dealing (rescale), both
 * usable without a respawner.
 */

#ifndef HIMA_SHARD_COORDINATOR_H
#define HIMA_SHARD_COORDINATOR_H

#include <memory>
#include <vector>

#include "dnc/dncd.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace hima {

class ShardWorker;

/** Drives remote DNC-D tiles behind the TileMemory surface. */
class ShardCoordinator final : public TileMemory
{
  public:
    /**
     * Connect and handshake. Tiles are dealt contiguously over the
     * channels as evenly as possible (channel k hosts
     * tiles/channels +- 1); every worker validates shapes and the
     * fixed-point mode before the first step.
     *
     * @param config   global DNC shapes (memoryRows = global N)
     * @param tiles    total tile count Nt; must divide memoryRows
     * @param policy   read-vector merge policy
     * @param channels one connected channel per worker (1..tiles)
     * @param wantWeightings ship per-tile read/write weightings back so
     *        readouts carry the concatenated global view (DncD parity —
     *        the golden harness needs it); serving paths turn it off to
     *        keep step frames at R*W + R reals per tile
     */
    ShardCoordinator(const DncConfig &config, Index tiles,
                     MergePolicy policy,
                     std::vector<std::unique_ptr<Channel>> channels,
                     bool wantWeightings = true);

    /** Sends Shutdown to every worker. */
    ~ShardCoordinator() override;

    // --- TileMemory surface --------------------------------------------
    MemoryReadout stepInterface(const InterfaceVector &iface) override;
    MemoryReadout
    stepInterfaces(const std::vector<InterfaceVector> &ifaces) override;
    void reset() override;
    void beginEpisode() override;
    Index tiles() const override { return tiles_; }
    const DncConfig &globalConfig() const override { return globalConfig_; }
    const DncConfig &shardConfig() const override { return shardConfig_; }
    const std::vector<std::vector<Real>> &lastAlphas() const override
    {
        return gate_.alphas();
    }

    // --- allocation-lean variants (buffers reused across steps) --------

    /** Broadcast one interface to every tile (queries broadcast). */
    void stepInterfaceInto(const InterfaceVector &iface,
                           MemoryReadout &out) override;

    /** Per-tile interfaces (learned write sharding). */
    void stepInterfacesInto(const std::vector<InterfaceVector> &ifaces,
                            MemoryReadout &out);

    Index channelCount() const { return channels_.size(); }
    const Channel &channel(Index k) const { return *channels_[k]; }

    /** Steps completed since construction. */
    std::uint64_t steps() const { return seq_; }

    // --- fault tolerance (wire v3) -------------------------------------

    /**
     * Install the replacement-channel factory. Recovery is armed when a
     * respawner is set AND shardCheckpointIntervalSteps > 0 AND
     * failHard is off; otherwise a worker loss stays fatal (the pre-v3
     * behavior).
     */
    void setRespawner(ShardRespawnFn respawner)
    {
        respawner_ = std::move(respawner);
    }

    /** Keep every worker loss fatal even when recovery is armed. */
    void setFailHard(bool on) { failHard_ = on; }

    /**
     * Pull a checkpoint of every worker's tiles right now (also trims
     * the replay log to empty). Callable between steps regardless of
     * the configured cadence.
     */
    void checkpointNow();

    /**
     * Live migration: move worker k's tile slice onto `replacement`
     * (a connected, unconfigured worker) and shut the old worker down.
     * Quiesces via a fresh checkpoint pull, so the move is bit-exact
     * and needs no replay. Works without a respawner.
     */
    void migrateWorker(Index k, std::unique_ptr<Channel> replacement);

    /**
     * Re-deal all tiles over a new fleet (scale-out or scale-in, e.g.
     * 8 -> 16 workers mid-run): checkpoint, retire the old fleet,
     * Rejoin + Restore the new one. Merge state is coordinator-side,
     * so the re-dealt fleet resumes bit-identically.
     */
    void rescale(std::vector<std::unique_ptr<Channel>> channels);

    /** Worker losses recovered (respawn + restore + replay). */
    std::uint64_t recoveries() const { return recoveries_; }

    /** Checkpoint pulls completed (periodic + forced). */
    std::uint64_t checkpointsTaken() const { return checkpointsTaken_; }

    // --- fleet telemetry scrape (wire v5) -------------------------------

    /**
     * Pull every worker's telemetry registry (StatsPull/StatsReport).
     * `perWorker` is resized to one snapshot per worker in channel
     * order; `aggregate` (cleared first) merges those reports with this
     * coordinator process's own registry and every channel's wire
     * traffic ("shard.wire.*" series). On a loopback fleet the workers
     * share this process's registry, so the same process-wide series
     * appear once per worker plus once for the coordinator — fleet
     * totals stay meaningful for worker-local series (kernel.*,
     * worker.*) only. Callable between steps; never on the step path.
     */
    void scrapeWorkers(std::vector<obs::Snapshot> &perWorker,
                       obs::Snapshot &aggregate);

  private:
    /** Gather replies after a scatter, then score + merge into `out`. */
    void exchange(MemoryReadout &out);

    void sendControl(ControlKind kind);

    /** Deal tiles contiguously/evenly over channels_; size per-channel state. */
    void dealTiles();

    bool recoveryArmed() const
    {
        return static_cast<bool>(respawner_) && !failHard_ &&
               globalConfig_.shardCheckpointIntervalSteps > 0;
    }

    /**
     * Keep a resendable copy of the frame about to go to channel k
     * (call between encode and commit — the writer may be targeting
     * transport memory that commit() hands back to the ring).
     */
    void trackPending(Index k, const WireWriter &writer);

    /**
     * Receive channel k's next frame as a view (frameData_/frameSize_).
     * Zero-copy on shm; elsewhere the bytes land in frame_ and the view
     * points at it.
     */
    bool recvFrom(Index k);

    /** recvFrom(k), recovering worker k on the first loss. */
    void recvOrRecover(Index k, const char *what);

    /** Respawn + Rejoin + Restore + replay; fatal when not armed. */
    void recoverWorker(Index k, const char *what);

    /** Rejoin handshake for worker k's assignment on channels_[k]. */
    void rejoinWorker(Index k, const char *who);

    /** Restore worker k's checkpoint slice; await the ControlAck. */
    void restoreWorker(Index k, const char *who);

    /** Append the in-flight per-channel frames to the replay log. */
    void commitLog();

    /** Commit the step's frames; pull a checkpoint when the cadence is due. */
    void maybeCheckpoint();

    void pullCheckpoints();

    /** Pointer slice of checkpoints_ covering worker k's tiles. */
    MemoryTileState *const *snapshotSlice(Index k);

    DncConfig globalConfig_;
    DncConfig shardConfig_;
    Index tiles_;
    MergePolicy policy_;
    bool wantWeightings_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<Index> firstTile_; ///< per channel
    std::vector<Index> tileCount_; ///< per channel

    ConfidenceGate gate_;
    std::uint64_t seq_ = 0;
    std::uint64_t controlSeq_ = 0;

    // Reused per-step state. frame_ is recv scratch; frameData_/
    // frameSize_ view the last received frame (a borrowed shm slot or
    // frame_ itself).
    WireWriter writer_;
    std::vector<std::uint8_t> frame_;
    const std::uint8_t *frameData_ = nullptr;
    std::size_t frameSize_ = 0;
    std::vector<StepReplyMsg> replies_;          ///< per channel
    std::vector<const MemoryReadout *> localPtrs_; ///< per global tile
    std::vector<Real> scoreScratch_; ///< scoredHeads x tiles, row-major

    // Fault tolerance: checkpoint store + replay log (wire v3). All
    // ring/buffer reuse below is deliberate — a steady state that
    // includes checkpointing allocates nothing once warm.
    ShardRespawnFn respawner_;
    bool failHard_ = false;
    std::uint64_t recoveries_ = 0;
    std::uint64_t checkpointsTaken_ = 0;
    std::uint64_t checkpointSeq_ = 0;
    std::uint64_t statsSeq_ = 0; ///< scrape round ids (StatsPull seq)
    std::uint64_t stepsSinceCheckpoint_ = 0;
    bool checkpointValid_ = false; ///< checkpoints_ holds a real pull
    std::vector<MemoryTileState> checkpoints_;    ///< per global tile
    std::vector<MemoryTileState *> snapshotPtrs_; ///< slice scratch
    /** In-flight frame per channel (resent after a recovery). */
    std::vector<std::vector<std::uint8_t>> pendingFrames_;
    /** Replay ring: log_[entry][channel], first logCount_ entries live. */
    std::vector<std::vector<std::vector<std::uint8_t>>> log_;
    std::size_t logCount_ = 0;
};

/**
 * An in-process sharded stack: `workerCount` loopback workers hosting
 * `tiles` tiles behind one coordinator. The workers outlive the
 * coordinator (the channels' service closures own them); handles are
 * returned so tests can inspect hosted tile state directly.
 */
struct LoopbackShard
{
    std::unique_ptr<ShardCoordinator> coordinator;
    std::vector<std::shared_ptr<ShardWorker>> workers;
};

LoopbackShard makeLoopbackShard(const DncConfig &config, Index tiles,
                                Index workerCount,
                                MergePolicy policy = MergePolicy::Confidence,
                                bool wantWeightings = true);

} // namespace hima

#endif // HIMA_SHARD_COORDINATOR_H
