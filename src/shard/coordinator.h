/**
 * @file
 * Shard coordinator: the client side of multi-process DNC-D.
 *
 * Implements the same TileMemory stepping surface as the in-process
 * DncD, but over worker channels: each step it scatters per-tile
 * interface vectors (scored-head mask included, so workers only compute
 * the confidence logits the merge will use), gathers every tile's read
 * vectors + logits, and performs the exact confidence-softmax merge —
 * through the *same* ConfidenceGate and mergeTileReadouts code DncD
 * runs, so a sharded deployment is bit-identical per step to the
 * in-process model by construction (proven over loopback and real
 * sockets in tests/test_shard.cpp).
 *
 * Scatter/gather is synchronous fan-out: send to every channel first,
 * then collect replies in channel order — workers on distinct processes
 * overlap their compute while the coordinator is still draining
 * earlier replies. Sequence numbers pair requests with replies; any
 * protocol violation (bad frame, seq mismatch, worker Error) is fatal:
 * a serving stack must never continue on a diverged shard.
 */

#ifndef HIMA_SHARD_COORDINATOR_H
#define HIMA_SHARD_COORDINATOR_H

#include <memory>
#include <vector>

#include "dnc/dncd.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace hima {

class ShardWorker;

/** Drives remote DNC-D tiles behind the TileMemory surface. */
class ShardCoordinator final : public TileMemory
{
  public:
    /**
     * Connect and handshake. Tiles are dealt contiguously over the
     * channels as evenly as possible (channel k hosts
     * tiles/channels +- 1); every worker validates shapes and the
     * fixed-point mode before the first step.
     *
     * @param config   global DNC shapes (memoryRows = global N)
     * @param tiles    total tile count Nt; must divide memoryRows
     * @param policy   read-vector merge policy
     * @param channels one connected channel per worker (1..tiles)
     * @param wantWeightings ship per-tile read/write weightings back so
     *        readouts carry the concatenated global view (DncD parity —
     *        the golden harness needs it); serving paths turn it off to
     *        keep step frames at R*W + R reals per tile
     */
    ShardCoordinator(const DncConfig &config, Index tiles,
                     MergePolicy policy,
                     std::vector<std::unique_ptr<Channel>> channels,
                     bool wantWeightings = true);

    /** Sends Shutdown to every worker. */
    ~ShardCoordinator() override;

    // --- TileMemory surface --------------------------------------------
    MemoryReadout stepInterface(const InterfaceVector &iface) override;
    MemoryReadout
    stepInterfaces(const std::vector<InterfaceVector> &ifaces) override;
    void reset() override;
    void beginEpisode() override;
    Index tiles() const override { return tiles_; }
    const DncConfig &globalConfig() const override { return globalConfig_; }
    const DncConfig &shardConfig() const override { return shardConfig_; }
    const std::vector<std::vector<Real>> &lastAlphas() const override
    {
        return gate_.alphas();
    }

    // --- allocation-lean variants (buffers reused across steps) --------

    /** Broadcast one interface to every tile (queries broadcast). */
    void stepInterfaceInto(const InterfaceVector &iface,
                           MemoryReadout &out) override;

    /** Per-tile interfaces (learned write sharding). */
    void stepInterfacesInto(const std::vector<InterfaceVector> &ifaces,
                            MemoryReadout &out);

    Index channelCount() const { return channels_.size(); }
    const Channel &channel(Index k) const { return *channels_[k]; }

    /** Steps completed since construction. */
    std::uint64_t steps() const { return seq_; }

  private:
    /** Gather replies after a scatter, then score + merge into `out`. */
    void exchange(MemoryReadout &out);

    void sendControl(ControlKind kind);

    DncConfig globalConfig_;
    DncConfig shardConfig_;
    Index tiles_;
    MergePolicy policy_;
    bool wantWeightings_;
    std::vector<std::unique_ptr<Channel>> channels_;
    std::vector<Index> firstTile_; ///< per channel
    std::vector<Index> tileCount_; ///< per channel

    ConfidenceGate gate_;
    std::uint64_t seq_ = 0;
    std::uint64_t controlSeq_ = 0;

    // Reused per-step state.
    WireWriter writer_;
    std::vector<std::uint8_t> frame_;
    std::vector<StepReplyMsg> replies_;          ///< per channel
    std::vector<const MemoryReadout *> localPtrs_; ///< per global tile
    std::vector<Real> scoreScratch_; ///< scoredHeads x tiles, row-major
};

/**
 * An in-process sharded stack: `workerCount` loopback workers hosting
 * `tiles` tiles behind one coordinator. The workers outlive the
 * coordinator (the channels' service closures own them); handles are
 * returned so tests can inspect hosted tile state directly.
 */
struct LoopbackShard
{
    std::unique_ptr<ShardCoordinator> coordinator;
    std::vector<std::shared_ptr<ShardWorker>> workers;
};

LoopbackShard makeLoopbackShard(const DncConfig &config, Index tiles,
                                Index workerCount,
                                MergePolicy policy = MergePolicy::Confidence,
                                bool wantWeightings = true);

} // namespace hima

#endif // HIMA_SHARD_COORDINATOR_H
