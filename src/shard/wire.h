/**
 * @file
 * Wire protocol for multi-process sharded DNC-D (the scale-out axis of
 * Sec. 5.1 / Fig. 8): a versioned, endian-safe binary codec with
 * length-prefixed framing.
 *
 * The protocol carries exactly the traffic the paper's tile arrangement
 * implies. Per step the coordinator scatters one interface vector per
 * tile and gathers each tile's R read vectors plus R confidence logits
 * (strength x best row cosine, computed tile-locally against the tile's
 * own memory) — so the *distributed* confidence merge needs only a
 * softmax over Nt gathered scalars per scored head, never the remote
 * memory contents. Control frames cover episode reset / admit; a config
 * handshake validates shapes and the fixed-point mode at connect time.
 *
 * Layout rules (all multi-byte values little-endian on the wire,
 * regardless of host order):
 *
 *   frame   := [u32 payload length] [payload]        (Channel framing)
 *   payload := [u16 magic] [u8 version] [u8 type] [body...]
 *   Real    := IEEE-754 binary64, bit-cast to u64    (lossless: the
 *              bit-exactness contract survives serialization)
 *   vector  := [u32 count] [Real x count]
 *
 * Real arrays move through a bulk little-endian path (one memcpy on LE
 * hosts, byte-assembled elsewhere) so serialization cost does not
 * dominate lane-batched frames; the bit pattern on the wire is
 * identical either way.
 *
 * Decoders are destination-passing (buffers resize in place, so a
 * steady-state worker round trip performs zero heap allocations) and
 * fail-closed: every read is bounds-checked, declared counts are
 * validated against the handshake config *before* any resize, and any
 * malformed frame yields `false` from decode — never UB, never an
 * attacker-sized allocation (tests/test_wire.cpp truncates and corrupts
 * frames byte by byte).
 *
 * Version 2 adds the pipelined serving surface: a `lanes` field in the
 * handshake (a worker hosts `lanes x hostedTiles` independent tile
 * sets), a lane id on Control frames (admit/reset one lane without
 * touching the rest), and the lane-batched LaneStep/LaneStepReply pair
 * — one frame carries k lanes' broadcast interfaces per worker, the
 * reply carries k lanes' readouts + confidence logits, and sequence ids
 * correlate replies with requests so multiple frames can be in flight
 * per channel.
 *
 * Version 3 adds the fault-tolerance surface: CheckpointRequest pulls a
 * CheckpointState frame carrying the complete recurrent state of every
 * hosted (lane, tile) pair — memory rows, the row-norm cache, usage,
 * linkage, precedence, and the previous write/read weightings, i.e.
 * exactly a MemoryTileState per tile — Restore pushes such a snapshot
 * back into a worker, and Rejoin is a Hello variant that re-attaches a
 * fresh worker process to an existing session with its tile assignment.
 * Shapes ride the handshake, not the frame, so checkpoint bodies are
 * raw Real arrays (one memcpy per field on LE hosts) and every decoder
 * stays fail-closed: a v2 peer is rejected at the header check, counts
 * are validated before any resize, truncation at any byte returns
 * false.
 *
 * Version 6 makes checkpoint traffic active-set sparse. Every tile
 * body now opens with an encoding byte and the linkage's monotone
 * touched-slot list (the column set the sparse sweeps iterate — not
 * derivable from the matrix at positive skip thresholds, so it must
 * ride the frame for a restore to reproduce an undisturbed run).
 * Encoding 0 is the dense v5 field sequence; encoding 1 ships only the
 * nonzero memory rows and nonzero linkage rows as (u32 index, row)
 * pairs and omits the row-norm cache entirely (the decoder rebuilds it
 * from the shipped rows with the memory write's own summation order,
 * bit-identically). The encoder picks per tile whichever encoding is
 * byte-smaller — early-episode snapshots shrink by ~N/A while a
 * saturated memory falls back to dense, which also bounds the shm slot
 * size — and `linkageDenseSweep` configs always emit dense frames.
 * Sparse decoders stay fail-closed: counts are capped by the handshake
 * shapes, indices must be strictly ascending and in range, the
 * encoding byte must be known, and truncation anywhere returns false.
 * The handshake grows the read-stage knobs (readSkipThreshold,
 * denseSweep) so coordinator and worker agree on the sparse datapath.
 */

#ifndef HIMA_SHARD_WIRE_H
#define HIMA_SHARD_WIRE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dnc/interface.h"
#include "dnc/memory_unit.h"
#include "obs/metrics.h"

namespace hima {

/** Protocol magic ("HM") — first two payload bytes of every message. */
constexpr std::uint16_t kWireMagic = 0x484D;

/** Protocol version; bumped on any layout change (v6: sparse
 * checkpoint/restore tile bodies + the read-stage handshake knobs). */
constexpr std::uint8_t kWireVersion = 6;

/** Largest legal payload (guards framing against garbage lengths). */
constexpr std::uint32_t kWireMaxFrameBytes = 64u << 20;

/** Message types. */
enum class MsgType : std::uint8_t
{
    Hello = 1,      ///< coordinator -> worker: config handshake
    HelloAck = 2,   ///< worker -> coordinator: accept/reject + detail
    Step = 3,       ///< coordinator -> worker: per-tile interface vectors
    StepReply = 4,  ///< worker -> coordinator: reads + confidence logits
    Control = 5,    ///< coordinator -> worker: episode reset / admit
    ControlAck = 6, ///< worker -> coordinator: control completed
    Shutdown = 7,   ///< coordinator -> worker: stop serving
    Error = 8,      ///< worker -> coordinator: protocol failure detail
    LaneStep = 9,   ///< coordinator -> worker: k lanes' broadcast ifaces
    LaneStepReply = 10, ///< worker -> coordinator: k lanes' readouts
    CheckpointRequest = 11, ///< coordinator -> worker: pull all tile state
    CheckpointState = 12,   ///< worker -> coordinator: lane-major snapshots
    Restore = 13,           ///< coordinator -> worker: push tile snapshots
    Rejoin = 14, ///< coordinator -> replacement worker: re-attach handshake
    StatsPull = 15,   ///< coordinator -> worker: scrape the telemetry registry
    StatsReport = 16, ///< worker -> coordinator: obs::Snapshot of the process
};

/** Number of distinct message-type slots (for per-type counters). */
constexpr std::size_t kMsgTypeCount =
    static_cast<std::size_t>(MsgType::StatsReport) + 1;

/** Human-readable message-type name ("?" for out-of-range values). */
const char *msgTypeName(MsgType type);

/** Control-frame lane id meaning "every hosted lane". */
constexpr std::uint32_t kAllLanes = 0xFFFFFFFFu;

/** Control message kinds. */
enum class ControlKind : std::uint8_t
{
    EpisodeReset = 0, ///< zero all hosted tile state (episode boundary)
    Admit = 1,        ///< same reset, marking the start of a new episode
};

/**
 * The shard-relevant configuration the coordinator sends at connect.
 * memoryRows here is the *local* (per-tile) row count; the worker
 * validates every field against what it can serve and constructs its
 * tiles from them, so coordinator and worker can never silently run
 * different shapes or datapaths (fixed point, skimming, softmax mode).
 */
struct WireConfig
{
    std::uint64_t memoryRows = 0;  ///< per-tile N
    std::uint64_t memoryWidth = 0; ///< W
    std::uint64_t readHeads = 0;   ///< R
    std::uint64_t numThreads = 1;  ///< worker tile-pool threads
    std::uint64_t hostedTiles = 0; ///< tiles this worker hosts, per lane
    std::uint64_t lanes = 1;       ///< independent lane tile sets hosted
    std::uint8_t approximateSoftmax = 0;
    std::uint32_t softmaxSegments = 8;
    std::uint8_t fixedPoint = 0;
    Real skimRate = 0.0;
    Real writeSkipThreshold = 0.0;
    Real linkageSkipThreshold = 0.0;
    Real readSkipThreshold = 0.0;
    std::uint8_t denseSweep = 0; ///< forces dense sweeps + dense frames

    /** Build from a per-shard DncConfig plus the hosted-tile count. */
    static WireConfig fromShard(const DncConfig &shard, Index hostedTiles,
                                Index lanes = 1);

    /** Reconstruct the per-shard DncConfig a worker should run. */
    DncConfig toShardConfig() const;

    bool operator==(const WireConfig &other) const = default;
};

/** Handshake reply. */
struct HelloAckMsg
{
    bool ok = false;
    std::uint64_t hostedTiles = 0; ///< echo of the accepted assignment
    std::string message;           ///< failure detail when !ok
};

/** One scatter: interface vectors for every hosted tile. */
struct StepMsg
{
    std::uint64_t seq = 0;
    bool wantWeightings = false; ///< ship read/write weightings back too
    std::uint32_t scoredMask = 0; ///< heads needing confidence logits
    std::vector<InterfaceVector> ifaces; ///< one per hosted tile
};

/**
 * One gather: per hosted tile, the local MemoryReadout (read vectors
 * always; weightings only when requested) and R confidence logits
 * (zero for heads outside the request's scoredMask).
 */
struct StepReplyMsg
{
    std::uint64_t seq = 0;
    bool hasWeightings = false;
    std::vector<MemoryReadout> tiles;
    std::vector<Real> confidence; ///< hostedTiles x R, row-major
};

/** Episode control. */
struct ControlMsg
{
    ControlKind kind = ControlKind::EpisodeReset;
    std::uint64_t seq = 0;
    std::uint32_t lane = kAllLanes; ///< target lane (kAllLanes = every)
};

/**
 * One lane's slice of a lane-batched scatter: the lane id, the heads
 * needing fresh confidence logits, and the broadcast interface every
 * hosted tile of that lane steps with. Lane batching is broadcast-only
 * (the serving path's query pattern); learned per-tile write sharding
 * stays on the single-lane Step frame.
 */
struct LaneStepEntry
{
    std::uint32_t lane = 0;
    std::uint32_t scoredMask = 0;
    const InterfaceVector *iface = nullptr;
};

/**
 * Decoded lane-batched scatter: `laneCount` parallel arrays. Buffers
 * resize in place, so a steady-state worker decode allocates nothing.
 * Lane ids are validated strictly increasing (and < the handshake's
 * lane count), which rules out duplicates — a frame stepping the same
 * lane twice would race on that lane's tiles.
 */
struct LaneStepMsg
{
    std::uint64_t seq = 0;
    bool wantWeightings = false;
    std::vector<std::uint32_t> lanes;
    std::vector<std::uint32_t> masks;
    std::vector<InterfaceVector> ifaces; ///< one broadcast iface per lane
};

/**
 * Decoded lane-batched gather: per frame lane j and hosted tile i, the
 * readout lives at tiles[j * hostedTiles + i] and its R confidence
 * logits at confidence[(j * hostedTiles + i) * R ...]. Lane ids echo
 * the request's.
 */
struct LaneStepReplyMsg
{
    std::uint64_t seq = 0;
    bool hasWeightings = false;
    std::vector<std::uint32_t> lanes;
    std::vector<MemoryReadout> tiles;
    std::vector<Real> confidence;
};

/** Protocol failure detail. */
struct ErrorMsg
{
    std::string message;
};

/**
 * Append-only little-endian serializer over a reusable byte buffer.
 * clear() keeps capacity, so steady-state encoding never allocates.
 *
 * attachExternal() redirects the writer into a caller-owned span — the
 * shared-memory transport points it at a ring slot so encoders write
 * their bytes straight into transport memory (zero-copy publish). The
 * wire bytes are identical in either mode.
 */
class WireWriter
{
  public:
    void
    clear()
    {
        if (ext_ != nullptr)
            extSize_ = 0;
        else
            buf_.clear();
    }

    /** Encoded bytes so far (valid in both modes). */
    const std::uint8_t *
    data() const
    {
        return ext_ != nullptr ? ext_ : buf_.data();
    }

    std::size_t
    size() const
    {
        return ext_ != nullptr ? extSize_ : buf_.size();
    }

    /** The internal buffer (internal mode only; prefer data()/size()). */
    const std::vector<std::uint8_t> &buffer() const { return buf_; }

    /**
     * Redirect encoding into `slot` (clear() implied). Exceeding
     * `capacity` is fatal: slots are pre-sized from the config
     * handshake, so an overflow is a sizing bug, never traffic.
     */
    void attachExternal(std::uint8_t *slot, std::size_t capacity);

    /** Return to the internal buffer (clear() implied). */
    void detachExternal();

    bool external() const { return ext_ != nullptr; }

    void putU8(std::uint8_t v) { push(v); }
    void putU16(std::uint16_t v);
    void putU32(std::uint32_t v);
    void putU64(std::uint64_t v);
    void putReal(Real v);
    void putVector(const Vector &v);
    void putString(const std::string &s);

    /**
     * Append `count` Reals as little-endian u64 bit patterns — one
     * memcpy on little-endian hosts, byte-assembled elsewhere. The wire
     * bytes are identical to `count` putReal() calls.
     */
    void putRealArray(const Real *values, Index count);

    /** Start a message: magic, version, type. */
    void header(MsgType type);

  private:
    void push(std::uint8_t b);
    void append(const void *src, std::size_t n);

    std::vector<std::uint8_t> buf_;
    std::uint8_t *ext_ = nullptr; ///< external span (null = internal)
    std::size_t extCap_ = 0;
    std::size_t extSize_ = 0;
};

/**
 * Bounds-checked little-endian reader with a sticky failure flag: any
 * out-of-range read (or failed validation recorded via fail()) makes
 * every subsequent read return zero and ok() return false, so decoders
 * can run straight-line and check once at the end.
 */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool ok() const { return ok_; }
    void fail() { ok_ = false; }
    bool atEnd() const { return ok_ && pos_ == size_; }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    Real real();

    /** Read a vector whose count must equal `expected`. */
    void vector(Vector &out, Index expected);

    /** Read `count` Reals into `out` (bulk form of real()). */
    void realArray(Real *out, Index count);

    /** Read a length-prefixed string (capped at the remaining bytes). */
    void string(std::string &out);

    /** Consume and validate the message header against `expected`. */
    void header(MsgType expected);

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** Peek a payload's message type; false on short/invalid header. */
bool peekType(const std::uint8_t *data, std::size_t size, MsgType &type);

// --- encoders (writer is cleared first; result is writer.buffer()) ---

void encodeHello(const WireConfig &config, WireWriter &out);
void encodeHelloAck(const HelloAckMsg &msg, WireWriter &out);
void encodeStep(const StepMsg &msg, const DncConfig &shard, WireWriter &out);

/** Encode a Step from a contiguous span of per-tile interfaces. */
void encodeStepSpan(std::uint64_t seq, bool wantWeightings,
                    std::uint32_t scoredMask, const InterfaceVector *ifaces,
                    Index count, WireWriter &out);

/**
 * Encode a Step whose one interface broadcasts to `count` tiles: the
 * interface goes over the wire once (a broadcast flag in the frame) and
 * the worker expands it locally, so the serving scatter costs one
 * interface payload per worker instead of one per tile.
 */
void encodeStepBroadcast(std::uint64_t seq, bool wantWeightings,
                         std::uint32_t scoredMask,
                         const InterfaceVector &iface, Index count,
                         WireWriter &out);

/**
 * Encode a StepReply straight from the first `count` entries of the
 * worker's per-tile readout scratch and its confidence scratch
 * (count x R, row-major) — no intermediate message object, no copies.
 * (The scratch may be larger than `count` on multi-lane workers, whose
 * legacy Step frames cover lane 0 only.)
 */
void encodeStepReply(std::uint64_t seq, bool withWeightings,
                     const MemoryReadout *tiles, Index count,
                     const std::vector<Real> &confidence,
                     const DncConfig &shard, WireWriter &out);
/**
 * Encode a lane-batched Step: one frame carries `count` lanes'
 * broadcast interfaces (ordered by strictly increasing lane id). Each
 * hosted tile of entry j's lane steps with *entries[j].iface.
 */
void encodeLaneStep(std::uint64_t seq, bool wantWeightings,
                    const LaneStepEntry *entries, Index count,
                    WireWriter &out);

/**
 * Encode a lane-batched reply straight from the worker's lane-major
 * scratch: readout (j, i) at readouts[j * hostedTiles + i], logits at
 * confidence[(j * hostedTiles + i) * R ...].
 */
void encodeLaneStepReply(std::uint64_t seq, bool withWeightings,
                         const std::uint32_t *lanes, Index laneCount,
                         Index hostedTiles,
                         const std::vector<MemoryReadout> &readouts,
                         const std::vector<Real> &confidence,
                         const DncConfig &shard, WireWriter &out);

void encodeControl(const ControlMsg &msg, WireWriter &out);
void encodeControlAck(std::uint64_t seq, WireWriter &out);
void encodeShutdown(WireWriter &out);
void encodeError(const std::string &message, WireWriter &out);

/** Pull every hosted (lane, tile) snapshot; answered by CheckpointState. */
void encodeCheckpointRequest(std::uint64_t seq, WireWriter &out);

/**
 * Encode all hosted tile state straight from the worker's lane-major
 * tile array — no intermediate snapshot object, one bulk Real-array
 * append per field. The body opens with a [u32 N] [u32 W] [u32 R]
 * shape echo after the tile count: sparse tile bodies are
 * variable-length (an all-zero tile carries no W-dependent field at
 * all), so decoders validate the echoed shapes against their own
 * config instead of inferring a mismatch from frame length.
 * Body layout per tile: [u8 encoding] [u32
 * touchedCount] [u32 slot x touchedCount, strictly ascending], then
 * either the dense field sequence (encoding 0: memory N*W, rowNorms N,
 * usage N, linkage N*N, precedence N, writeWeighting N, readWeightings
 * R*N — shapes from the handshake, no per-field counts) or the sparse
 * one (encoding 1: [u32 memRows] [(u32 row, Real x W) x memRows]
 * [u32 linkRows] [(u32 row, Real x N) x linkRows], both strictly
 * ascending and covering exactly the rows holding a nonzero entry,
 * then dense usage/precedence/writeWeighting/readWeightings — the
 * row-norm cache is omitted and rebuilt on decode). Each tile uses
 * whichever encoding is byte-smaller; `shard.linkageDenseSweep` forces
 * encoding 0.
 */
void encodeCheckpointState(std::uint64_t seq,
                           const std::vector<std::unique_ptr<MemoryUnit>>
                               &tiles,
                           const DncConfig &shard, WireWriter &out);

/**
 * Encode a Restore carrying `count` tile snapshots (lane-major slice of
 * the coordinator's checkpoint store). The body layout matches
 * CheckpointState exactly; the worker acks with ControlAck(seq).
 */
void encodeRestore(std::uint64_t seq,
                   const MemoryTileState *const *snapshots, Index count,
                   const DncConfig &shard, WireWriter &out);

/** Pull the worker's telemetry registry; answered by StatsReport. */
void encodeStatsPull(std::uint64_t seq, WireWriter &out);

/**
 * Encode one process's scrape: per entry, the '.'-path name, the kind,
 * and a kind-dependent body; histogram buckets go sparse — [u16 index]
 * [u64 count] pairs with strictly increasing indices — since a scrape
 * window rarely touches more than a few octaves of the 496 buckets.
 */
void encodeStatsReport(std::uint64_t seq, const obs::Snapshot &snapshot,
                       WireWriter &out);

/**
 * Re-attach handshake for a replacement worker: the Hello body plus the
 * first global tile index of its assignment (so operators can identify
 * the slice a worker serves). Answered by HelloAck like Hello.
 */
void encodeRejoin(const WireConfig &config, std::uint64_t firstTile,
                  WireWriter &out);

// --- decoders (false on any malformed input; outputs resize in place) ---

bool decodeHello(const std::uint8_t *data, std::size_t size,
                 WireConfig &config);
bool decodeHelloAck(const std::uint8_t *data, std::size_t size,
                    HelloAckMsg &msg);
bool decodeStep(const std::uint8_t *data, std::size_t size,
                const DncConfig &shard, Index hostedTiles, StepMsg &msg);
bool decodeStepReply(const std::uint8_t *data, std::size_t size,
                     const DncConfig &shard, Index hostedTiles,
                     StepReplyMsg &msg);
/**
 * Decode a lane-batched Step. `lanes` is the worker's hosted lane
 * count from the handshake: frames naming more lanes than that, lane
 * ids out of range, or lane ids not strictly increasing are rejected.
 */
bool decodeLaneStep(const std::uint8_t *data, std::size_t size,
                    const DncConfig &shard, Index lanes, LaneStepMsg &msg);

/**
 * Decode a lane-batched reply. `maxLanes` bounds the declared lane
 * count (the coordinator knows how many lanes it scattered).
 */
bool decodeLaneStepReply(const std::uint8_t *data, std::size_t size,
                         const DncConfig &shard, Index hostedTiles,
                         Index maxLanes, LaneStepReplyMsg &msg);

bool decodeControl(const std::uint8_t *data, std::size_t size,
                   ControlMsg &msg);
bool decodeControlAck(const std::uint8_t *data, std::size_t size,
                      std::uint64_t &seq);
bool decodeError(const std::uint8_t *data, std::size_t size, ErrorMsg &msg);

bool decodeCheckpointRequest(const std::uint8_t *data, std::size_t size,
                             std::uint64_t &seq);

/**
 * Decode a CheckpointState into `count` caller-owned snapshot slots
 * (destination-passing: the coordinator points the slots straight at
 * its lane-major checkpoint store, so the state lands where migration
 * and restore re-slice it). The declared tile count must equal `count`
 * and every buffer resize reuses capacity — a steady-state checkpoint
 * pull allocates nothing.
 */
bool decodeCheckpointState(const std::uint8_t *data, std::size_t size,
                           const DncConfig &shard,
                           MemoryTileState *const *snapshots, Index count,
                           std::uint64_t &seq);

/** Decode a Restore into `count` caller-owned snapshot slots. */
bool decodeRestore(const std::uint8_t *data, std::size_t size,
                   const DncConfig &shard,
                   MemoryTileState *const *snapshots, Index count,
                   std::uint64_t &seq);

bool decodeRejoin(const std::uint8_t *data, std::size_t size,
                  WireConfig &config, std::uint64_t &firstTile);

bool decodeStatsPull(const std::uint8_t *data, std::size_t size,
                     std::uint64_t &seq);

/**
 * Decode a StatsReport into `snapshot` (cleared first). Fail-closed:
 * the declared entry count is capped, names are length-checked against
 * the remaining bytes, kinds must be known, and sparse histogram
 * bucket indices must be strictly increasing and in range.
 */
bool decodeStatsReport(const std::uint8_t *data, std::size_t size,
                       obs::Snapshot &snapshot, std::uint64_t &seq);

} // namespace hima

#endif // HIMA_SHARD_WIRE_H
