#include "shard/sharded_dnc.h"

#include <algorithm>

#include "obs/trace.h"

namespace hima {

// --------------------------------------------------------------------
// ShardedDnc
// --------------------------------------------------------------------

ShardedDnc::ShardedDnc(const DncConfig &config, std::uint64_t seed,
                       std::unique_ptr<TileMemory> memory)
    : config_(config), rng_(seed), controller_(config, rng_),
      memory_(std::move(memory)),
      lastReads_(config.readHeads, Vector(config.memoryWidth))
{
    HIMA_ASSERT(memory_ != nullptr, "ShardedDnc: null tile backend");
    const DncConfig &mem = memory_->globalConfig();
    HIMA_ASSERT(mem.memoryRows == config_.memoryRows &&
                    mem.memoryWidth == config_.memoryWidth &&
                    mem.readHeads == config_.readHeads &&
                    mem.fixedPoint == config_.fixedPoint,
                "ShardedDnc: tile backend shapes diverge from config");
}

void
ShardedDnc::stepInto(const Vector &input, Vector &out)
{
    const InterfaceVector &iface = controller_.stepInto(input, lastReads_);
    memory_->stepInterfaceInto(iface, readout_);
    for (Index head = 0; head < config_.readHeads; ++head)
        std::copy(readout_.readVectors[head].begin(),
                  readout_.readVectors[head].end(),
                  lastReads_[head].begin());
    controller_.outputInto(lastReads_, out);
}

Vector
ShardedDnc::step(const Vector &input)
{
    Vector out;
    stepInto(input, out);
    return out;
}

void
ShardedDnc::reset()
{
    controller_.reset();
    memory_->reset();
    for (auto &rv : lastReads_)
        rv.fill(0.0);
}

void
ShardedDnc::beginEpisode()
{
    controller_.reset();
    memory_->beginEpisode();
    for (auto &rv : lastReads_)
        rv.fill(0.0);
}

// --------------------------------------------------------------------
// ShardedLaneEngine
// --------------------------------------------------------------------

ShardedLaneEngine::ShardedLaneEngine(const DncConfig &config,
                                     std::uint64_t seed,
                                     const BackendFactory &factory)
    : config_(config)
{
    HIMA_ASSERT(static_cast<bool>(factory),
                "ShardedLaneEngine: null backend factory");
    lanes_.reserve(config_.batchSize);
    for (Index lane = 0; lane < config_.batchSize; ++lane)
        lanes_.push_back(
            std::make_unique<ShardedDnc>(config_, seed, factory(lane)));
    states_.assign(config_.batchSize, LaneState::Active);
    active_ = config_.batchSize;
    freeSlots_.reserve(config_.batchSize);
}

void
ShardedLaneEngine::stepInto(const std::vector<Vector> &inputs,
                            std::vector<Vector> &outputs)
{
    HIMA_ASSERT(inputs.size() == states_.size(),
                "stepInto: need one input slot per lane");
    outputs.resize(states_.size());
    for (Index slot = 0; slot < states_.size(); ++slot)
        if (states_[slot] == LaneState::Active)
            lanes_[slot]->stepInto(inputs[slot], outputs[slot]);
}

Index
ShardedLaneEngine::admit()
{
    HIMA_ASSERT(!freeSlots_.empty(), "admit: no free lanes");
    const Index slot = freeSlots_.back();
    freeSlots_.pop_back();
    lanes_[slot]->beginEpisode();
    states_[slot] = LaneState::Active;
    ++active_;
    return slot;
}

void
ShardedLaneEngine::markDraining(Index slot)
{
    HIMA_ASSERT(states_[slot] == LaneState::Active,
                "markDraining: slot %zu is not Active", slot);
    states_[slot] = LaneState::Draining;
    --active_;
    ++draining_;
}

void
ShardedLaneEngine::release(Index slot)
{
    HIMA_ASSERT(states_[slot] != LaneState::Free,
                "release: slot %zu is already Free", slot);
    if (states_[slot] == LaneState::Active)
        --active_;
    else
        --draining_;
    states_[slot] = LaneState::Free;
    freeSlots_.push_back(slot);
}

void
ShardedLaneEngine::reset()
{
    for (auto &lane : lanes_)
        lane->reset();
    states_.assign(states_.size(), LaneState::Active);
    freeSlots_.clear();
    active_ = states_.size();
    draining_ = 0;
}

// --------------------------------------------------------------------
// PipelinedShardedLaneEngine
// --------------------------------------------------------------------

PipelinedShardedLaneEngine::PipelinedShardedLaneEngine(
    const DncConfig &config, std::uint64_t seed,
    std::shared_ptr<ShardLaneGroup> group, Index lanesPerBatch)
    : config_(config), group_(std::move(group)),
      lanesPerBatch_(lanesPerBatch != 0 ? lanesPerBatch
                                        : config.shardLanesPerBatch)
{
    HIMA_ASSERT(group_ != nullptr, "null shard lane group");
    HIMA_ASSERT(group_->lanes() == config_.batchSize,
                "group hosts %zu lanes but batchSize is %zu",
                group_->lanes(), config_.batchSize);
    const DncConfig &mem = group_->globalConfig();
    HIMA_ASSERT(mem.memoryRows == config_.memoryRows &&
                    mem.memoryWidth == config_.memoryWidth &&
                    mem.readHeads == config_.readHeads &&
                    mem.fixedPoint == config_.fixedPoint,
                "shard fleet shapes diverge from config");

    // One controller per lane, each drawn exactly like
    // ShardedDnc(config, seed)'s so dedicated reference runs share the
    // weights bit for bit.
    for (Index lane = 0; lane < config_.batchSize; ++lane) {
        Rng rng(seed);
        controllers_.push_back(std::make_unique<Controller>(config_, rng));
        lastReads_.emplace_back(config_.readHeads,
                                Vector(config_.memoryWidth));
    }
    readouts_.resize(config_.batchSize);
    states_.assign(config_.batchSize, LaneState::Active);
    active_ = config_.batchSize;
    freeSlots_.reserve(config_.batchSize);
}

void
PipelinedShardedLaneEngine::finishBatch(Index first, Index count,
                                        std::vector<Vector> &outputs)
{
    batchOuts_.clear();
    for (Index j = 0; j < count; ++j)
        batchOuts_.push_back(&readouts_[activeScratch_[first + j]]);
    group_->gather(batchOuts_);
    for (Index j = 0; j < count; ++j) {
        const Index slot = activeScratch_[first + j];
        for (Index head = 0; head < config_.readHeads; ++head)
            std::copy(readouts_[slot].readVectors[head].begin(),
                      readouts_[slot].readVectors[head].end(),
                      lastReads_[slot][head].begin());
        controllers_[slot]->outputInto(lastReads_[slot], outputs[slot]);
    }
}

void
PipelinedShardedLaneEngine::stepInto(const std::vector<Vector> &inputs,
                                     std::vector<Vector> &outputs)
{
    HIMA_ASSERT(inputs.size() == states_.size(),
                "stepInto: need one input slot per lane");
    outputs.resize(states_.size());
    activeScratch_.clear();
    for (Index slot = 0; slot < states_.size(); ++slot)
        if (states_[slot] == LaneState::Active)
            activeScratch_.push_back(slot);
    const Index total = activeScratch_.size();
    if (total == 0)
        return;
    const Index k =
        lanesPerBatch_ == 0 ? total : std::min(lanesPerBatch_, total);

    // The software pipeline: scatter batch b, then — while its round
    // trip is in flight — gather batch b-1 and emit its outputs. Each
    // lane's own controller -> tiles -> merge -> output order is
    // untouched, so per-lane results cannot depend on the overlap.
    Index prevFirst = 0;
    Index prevCount = 0;
    for (Index first = 0; first < total; first += k) {
        const Index count = std::min(k, total - first);
        batchLanes_.clear();
        batchIfaces_.clear();
        {
            obs::TraceSpan span("shard.controller_compute", count);
            for (Index j = 0; j < count; ++j) {
                const Index slot = activeScratch_[first + j];
                // stepInto returns a reference into controller-owned
                // storage; distinct slots use distinct controllers, so
                // all of a batch's interfaces stay live until the
                // scatter.
                const InterfaceVector &iface =
                    controllers_[slot]->stepInto(inputs[slot],
                                                 lastReads_[slot]);
                batchLanes_.push_back(slot);
                batchIfaces_.push_back(&iface);
            }
        }
        group_->scatter(batchLanes_, batchIfaces_);
        if (prevCount > 0)
            finishBatch(prevFirst, prevCount, outputs);
        prevFirst = first;
        prevCount = count;
    }
    finishBatch(prevFirst, prevCount, outputs);
}

Index
PipelinedShardedLaneEngine::admit()
{
    HIMA_ASSERT(!freeSlots_.empty(), "admit: no free lanes");
    const Index slot = freeSlots_.back();
    freeSlots_.pop_back();
    controllers_[slot]->reset();
    for (auto &rv : lastReads_[slot])
        rv.fill(0.0);
    group_->admitLane(slot);
    states_[slot] = LaneState::Active;
    ++active_;
    return slot;
}

void
PipelinedShardedLaneEngine::markDraining(Index slot)
{
    HIMA_ASSERT(states_[slot] == LaneState::Active,
                "markDraining: slot %zu is not Active", slot);
    states_[slot] = LaneState::Draining;
    --active_;
    ++draining_;
}

void
PipelinedShardedLaneEngine::release(Index slot)
{
    HIMA_ASSERT(states_[slot] != LaneState::Free,
                "release: slot %zu is already Free", slot);
    if (states_[slot] == LaneState::Active)
        --active_;
    else
        --draining_;
    states_[slot] = LaneState::Free;
    freeSlots_.push_back(slot);
}

void
PipelinedShardedLaneEngine::reset()
{
    group_->resetAll();
    for (Index slot = 0; slot < states_.size(); ++slot) {
        controllers_[slot]->reset();
        for (auto &rv : lastReads_[slot])
            rv.fill(0.0);
    }
    states_.assign(states_.size(), LaneState::Active);
    freeSlots_.clear();
    active_ = states_.size();
    draining_ = 0;
}

} // namespace hima
