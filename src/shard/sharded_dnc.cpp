#include "shard/sharded_dnc.h"

#include <algorithm>

namespace hima {

// --------------------------------------------------------------------
// ShardedDnc
// --------------------------------------------------------------------

ShardedDnc::ShardedDnc(const DncConfig &config, std::uint64_t seed,
                       std::unique_ptr<TileMemory> memory)
    : config_(config), rng_(seed), controller_(config, rng_),
      memory_(std::move(memory)),
      lastReads_(config.readHeads, Vector(config.memoryWidth))
{
    HIMA_ASSERT(memory_ != nullptr, "ShardedDnc: null tile backend");
    const DncConfig &mem = memory_->globalConfig();
    HIMA_ASSERT(mem.memoryRows == config_.memoryRows &&
                    mem.memoryWidth == config_.memoryWidth &&
                    mem.readHeads == config_.readHeads &&
                    mem.fixedPoint == config_.fixedPoint,
                "ShardedDnc: tile backend shapes diverge from config");
}

void
ShardedDnc::stepInto(const Vector &input, Vector &out)
{
    const InterfaceVector &iface = controller_.stepInto(input, lastReads_);
    memory_->stepInterfaceInto(iface, readout_);
    for (Index head = 0; head < config_.readHeads; ++head)
        std::copy(readout_.readVectors[head].begin(),
                  readout_.readVectors[head].end(),
                  lastReads_[head].begin());
    controller_.outputInto(lastReads_, out);
}

Vector
ShardedDnc::step(const Vector &input)
{
    Vector out;
    stepInto(input, out);
    return out;
}

void
ShardedDnc::reset()
{
    controller_.reset();
    memory_->reset();
    for (auto &rv : lastReads_)
        rv.fill(0.0);
}

void
ShardedDnc::beginEpisode()
{
    controller_.reset();
    memory_->beginEpisode();
    for (auto &rv : lastReads_)
        rv.fill(0.0);
}

// --------------------------------------------------------------------
// ShardedLaneEngine
// --------------------------------------------------------------------

ShardedLaneEngine::ShardedLaneEngine(const DncConfig &config,
                                     std::uint64_t seed,
                                     const BackendFactory &factory)
    : config_(config)
{
    HIMA_ASSERT(static_cast<bool>(factory),
                "ShardedLaneEngine: null backend factory");
    lanes_.reserve(config_.batchSize);
    for (Index lane = 0; lane < config_.batchSize; ++lane)
        lanes_.push_back(
            std::make_unique<ShardedDnc>(config_, seed, factory(lane)));
    states_.assign(config_.batchSize, LaneState::Active);
    active_ = config_.batchSize;
    freeSlots_.reserve(config_.batchSize);
}

void
ShardedLaneEngine::stepInto(const std::vector<Vector> &inputs,
                            std::vector<Vector> &outputs)
{
    HIMA_ASSERT(inputs.size() == states_.size(),
                "stepInto: need one input slot per lane");
    outputs.resize(states_.size());
    for (Index slot = 0; slot < states_.size(); ++slot)
        if (states_[slot] == LaneState::Active)
            lanes_[slot]->stepInto(inputs[slot], outputs[slot]);
}

Index
ShardedLaneEngine::admit()
{
    HIMA_ASSERT(!freeSlots_.empty(), "admit: no free lanes");
    const Index slot = freeSlots_.back();
    freeSlots_.pop_back();
    lanes_[slot]->beginEpisode();
    states_[slot] = LaneState::Active;
    ++active_;
    return slot;
}

void
ShardedLaneEngine::markDraining(Index slot)
{
    HIMA_ASSERT(states_[slot] == LaneState::Active,
                "markDraining: slot %zu is not Active", slot);
    states_[slot] = LaneState::Draining;
    --active_;
    ++draining_;
}

void
ShardedLaneEngine::release(Index slot)
{
    HIMA_ASSERT(states_[slot] != LaneState::Free,
                "release: slot %zu is already Free", slot);
    if (states_[slot] == LaneState::Active)
        --active_;
    else
        --draining_;
    states_[slot] = LaneState::Free;
    freeSlots_.push_back(slot);
}

void
ShardedLaneEngine::reset()
{
    for (auto &lane : lanes_)
        lane->reset();
    states_.assign(states_.size(), LaneState::Active);
    freeSlots_.clear();
    active_ = states_.size();
    draining_ = 0;
}

} // namespace hima
