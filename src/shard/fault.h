/**
 * @file
 * Deterministic fault injection for the shard stack: tests and the
 * bench arm a worker with a FaultSpec and the worker dies (or stalls)
 * at an exact, repeatable point in the frame stream. That determinism
 * is what makes the recovery golden proofs possible — the same kill
 * point against the same interface stream must recover to the same
 * bit-exact state every run, on every transport.
 *
 * Faults are expressed in *frame counts*, not wall-clock: kill-at-the-
 * Nth-step-frame fires just before the worker would serve that Step or
 * LaneStep (so the coordinator never sees its reply), drop-at-the-Nth-
 * frame severs the channel regardless of frame type (handshake and
 * control frames included), and delay sleeps before serving to make
 * recv timeouts reachable in tests without a real hang.
 */

#ifndef HIMA_SHARD_FAULT_H
#define HIMA_SHARD_FAULT_H

#include <cstdint>

namespace hima {

/** One worker's scripted failure (0 = never for every trigger). */
struct FaultSpec
{
    /** Die just before serving the Nth Step/LaneStep frame (1-based). */
    std::uint64_t killAtStepFrame = 0;
    /** Die on the Nth inbound frame of any type (1-based). */
    std::uint64_t dropAtFrame = 0;
    /** Sleep `delayMs` before serving the Nth Step/LaneStep (1-based). */
    std::uint64_t delayAtStepFrame = 0;
    std::uint32_t delayMs = 0;

    bool
    any() const
    {
        return killAtStepFrame != 0 || dropAtFrame != 0 ||
               delayAtStepFrame != 0;
    }
};

/** Per-worker fault state machine driven by the inbound frame stream. */
class FaultInjector
{
  public:
    /** Install a spec (resets the frame counters). */
    void arm(const FaultSpec &spec);

    bool armed() const { return spec_.any(); }
    bool dead() const { return dead_; }

    /**
     * Account one inbound frame; sleeps through a scheduled delay.
     *
     * @return true when the worker must die *now*, before serving it
     */
    bool onFrame(bool isStepFrame);

  private:
    FaultSpec spec_;
    std::uint64_t frames_ = 0;
    std::uint64_t stepFrames_ = 0;
    bool dead_ = false;
};

} // namespace hima

#endif // HIMA_SHARD_FAULT_H
