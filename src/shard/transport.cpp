#include "shard/transport.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "shard/wire.h"

namespace hima {

// --------------------------------------------------------------------
// LoopbackChannel
// --------------------------------------------------------------------

LoopbackChannel::LoopbackChannel(Service service)
    : service_(std::move(service)), inbox_(*this)
{
    HIMA_ASSERT(static_cast<bool>(service_),
                "LoopbackChannel: null service");
}

void
LoopbackChannel::Inbox::sendFrame(const std::uint8_t *data, std::size_t size)
{
    owner_.push(data, size);
}

void
LoopbackChannel::push(const std::uint8_t *data, std::size_t size)
{
    receivedStats_.note(data, size);
    if (count_ == ring_.size()) {
        // Depth record: grow the ring (the only allocating path).
        ring_.emplace_back();
        // Keep the pending window contiguous after the growth point.
        if (head_ != 0) {
            std::rotate(ring_.begin(), ring_.begin() + head_,
                        ring_.end() - 1);
            head_ = 0;
        }
    }
    std::vector<std::uint8_t> &slot = ring_[(head_ + count_) % ring_.size()];
    slot.assign(data, data + size); // reuses capacity
    ++count_;
    bytesReceived_ += size;
}

void
LoopbackChannel::sendFrame(const std::uint8_t *data, std::size_t size)
{
    bytesSent_ += size;
    sentStats_.note(data, size);
    service_(data, size, inbox_);
}

bool
LoopbackChannel::recvFrame(std::vector<std::uint8_t> &frame)
{
    if (count_ == 0)
        return false;
    frame.assign(ring_[head_].begin(), ring_[head_].end());
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return true;
}

// --------------------------------------------------------------------
// Socket plumbing
// --------------------------------------------------------------------

namespace {

bool
writeFully(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        // MSG_NOSIGNAL: a peer that died must surface as a recv/send
        // error the caller can report, not as a SIGPIPE process kill.
        const ssize_t n =
            ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/** Like readFully, but reports an SO_RCVTIMEO expiry via `timedOut`. */
bool
readFully(int fd, std::uint8_t *data, std::size_t size, bool &timedOut)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::read(fd, data + done, size - done);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                timedOut = true; // bounded-recv expiry, not peer death
            return false; // timeout, EOF or hard error
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

void
setNoDelay(int fd)
{
    // The protocol is strict request/response with small frames; Nagle
    // only adds latency to the gather. Harmlessly fails on AF_UNIX.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

SocketChannel::SocketChannel(int fd) : fd_(fd)
{
    HIMA_ASSERT(fd_ >= 0, "SocketChannel: bad fd");
}

SocketChannel::~SocketChannel()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SocketChannel::queueFrame(const std::uint8_t *data, std::size_t size)
{
    HIMA_ASSERT(size <= kWireMaxFrameBytes, "frame too large: %zu", size);
    sentStats_.note(data, size);
    std::uint8_t len[4];
    for (int b = 0; b < 4; ++b)
        len[b] = static_cast<std::uint8_t>(size >> (8 * b));
    sendBuf_.insert(sendBuf_.end(), len, len + 4);
    sendBuf_.insert(sendBuf_.end(), data, data + size);
}

void
SocketChannel::flush()
{
    if (sendBuf_.empty())
        return;
    if (!broken_ &&
        !writeFully(fd_, sendBuf_.data(), sendBuf_.size())) {
        // Dead peer: drop the batch and let the next recvFrame() report
        // the failure in context (the coordinator turns it into a fatal
        // protocol error; a best-effort Shutdown in a destructor is
        // allowed to fail silently).
        broken_ = true;
    }
    if (!broken_)
        bytesSent_ += sendBuf_.size();
    sendBuf_.clear(); // keeps capacity: steady-state sends allocate nothing
}

void
SocketChannel::sendFrame(const std::uint8_t *data, std::size_t size)
{
    // One buffered [len][payload] write per frame — a single syscall
    // instead of two even in the unbatched path.
    queueFrame(data, size);
    flush();
}

void
SocketChannel::setRecvTimeout(int ms)
{
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Bound sends with the same budget: with frames in flight on both
    // directions, mutually full kernel buffers would otherwise turn
    // into an unbounded write-write deadlock. writeFully treats the
    // expiry (EAGAIN) as a failure, which flush() makes sticky.
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool
SocketChannel::recvFrame(std::vector<std::uint8_t> &frame)
{
    timedOut_ = false;
    if (broken_)
        return false;
    // Every failure is sticky: a partial read leaves the stream
    // position unknown, so a later retry would misparse payload bytes
    // as a length prefix. The protocol has no mid-stream resync.
    std::uint8_t len[4];
    if (!readFully(fd_, len, 4, timedOut_)) {
        broken_ = true;
        return false;
    }
    std::uint32_t size = 0;
    for (int b = 0; b < 4; ++b)
        size |= static_cast<std::uint32_t>(len[b]) << (8 * b);
    if (size > kWireMaxFrameBytes) {
        broken_ = true; // garbage length: refuse to allocate
        return false;
    }
    frame.resize(size);
    if (size > 0 && !readFully(fd_, frame.data(), size, timedOut_)) {
        broken_ = true;
        return false;
    }
    bytesReceived_ += size + 4u;
    receivedStats_.note(frame.data(), frame.size());
    return true;
}

std::unique_ptr<SocketChannel>
SocketChannel::connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return nullptr;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return nullptr;
    }
    return std::make_unique<SocketChannel>(fd);
}

std::unique_ptr<SocketChannel>
SocketChannel::connectTcp(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return nullptr;
    }
    setNoDelay(fd);
    return std::make_unique<SocketChannel>(fd);
}

std::string
ShardError::describe() const
{
    char buf[160];
    if (kind == Kind::RecvTimeout)
        std::snprintf(buf, sizeof(buf),
                      "shard %s %llu: worker %zu exceeded the recv timeout "
                      "(dead or wedged worker)",
                      what, static_cast<unsigned long long>(seq), worker);
    else
        std::snprintf(buf, sizeof(buf),
                      "shard %s %llu: worker %zu closed the channel", what,
                      static_cast<unsigned long long>(seq), worker);
    return buf;
}

ShardError
shardRecvError(const Channel &channel, const char *what, std::uint64_t seq,
               Index worker)
{
    ShardError err;
    const auto *socket = dynamic_cast<const SocketChannel *>(&channel);
    err.kind = (socket != nullptr && socket->timedOut())
                   ? ShardError::Kind::RecvTimeout
                   : ShardError::Kind::ChannelClosed;
    err.worker = worker;
    err.seq = seq;
    err.what = what;
    return err;
}

void
shardRecvFailure(const Channel &channel, const char *what,
                 std::uint64_t seq, Index worker)
{
    HIMA_FATAL("%s",
               shardRecvError(channel, what, seq, worker).describe().c_str());
}

// --------------------------------------------------------------------
// SocketListener
// --------------------------------------------------------------------

SocketListener::~SocketListener()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (!path_.empty())
        ::unlink(path_.c_str());
}

std::unique_ptr<SocketListener>
SocketListener::listenUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return nullptr;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str()); // stale socket file from a crashed worker
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<SocketListener>(
        new SocketListener(fd, 0, path));
}

std::unique_ptr<SocketListener>
SocketListener::listenTcp(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        ::close(fd);
        return nullptr;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<SocketListener>(
        new SocketListener(fd, ntohs(addr.sin_port), ""));
}

std::unique_ptr<SocketChannel>
SocketListener::accept()
{
    while (true) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            if (path_.empty()) // TCP listener: disable Nagle both ends
                setNoDelay(fd);
            return std::make_unique<SocketChannel>(fd);
        }
        if (errno != EINTR)
            return nullptr;
    }
}

std::unique_ptr<SocketChannel>
SocketListener::acceptWithTimeout(int ms)
{
    // A signal mid-wait must not shrink-or-reset the budget: re-poll
    // with whatever time remains against a fixed deadline.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (true) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        const int budget = static_cast<int>(std::max<long long>(
            0, static_cast<long long>(left.count())));
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, budget);
        if (rc > 0)
            return accept(); // a pending connection: accept won't block
        if (rc == 0)
            return nullptr; // bounded wait expired
        if (errno != EINTR)
            return nullptr;
    }
}

} // namespace hima
