#include "shard/transport.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <linux/futex.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "obs/obs.h"
#include "shard/wire.h"

namespace hima {

namespace {

/** Transport wait/timeout series (slow paths only — never per frame). */
struct WaitMetrics
{
    obs::Counter *sendTimeouts;
    obs::Counter *recvTimeouts;
    obs::Counter *futexWaits;
    obs::Counter *spinExhausted;

    WaitMetrics()
    {
        obs::Registry &reg = obs::Registry::instance();
        sendTimeouts = &reg.counter("wire.timeout.send");
        recvTimeouts = &reg.counter("wire.timeout.recv");
        futexWaits = &reg.counter("wire.shm.futex_waits");
        spinExhausted = &reg.counter("wire.shm.spin_exhausted");
    }

    static WaitMetrics &
    get()
    {
        static WaitMetrics metrics;
        return metrics;
    }
};

// Waits fire data-dependently (a spin budget runs out under load), so
// they cannot rely on a warm-up call to do the one-time registration
// the zero-alloc contract pushes out of steady state; register at load.
[[maybe_unused]] const WaitMetrics &g_waitMetricsInit = WaitMetrics::get();

} // namespace

// --------------------------------------------------------------------
// Wire traffic reporting
// --------------------------------------------------------------------

std::vector<WireTrafficRow>
wireTrafficRows(const WireTrafficStats &sent,
                const WireTrafficStats &received, double steps)
{
    std::vector<WireTrafficRow> rows;
    if (steps <= 0.0)
        steps = 1.0;
    for (std::size_t t = 1; t < kMsgTypeCount; ++t) {
        const std::uint64_t frames = sent.frames[t] + received.frames[t];
        if (frames == 0)
            continue;
        WireTrafficRow row;
        row.type = static_cast<MsgType>(t);
        row.name = msgTypeName(row.type);
        row.framesPerStep = static_cast<double>(frames) / steps;
        row.bytesOutPerStep = static_cast<double>(sent.bytes[t]) / steps;
        row.bytesInPerStep =
            static_cast<double>(received.bytes[t]) / steps;
        rows.push_back(row);
    }
    return rows;
}

void
formatWireTrafficTable(const WireTrafficStats &sent,
                       const WireTrafficStats &received, double steps,
                       std::string &out)
{
    for (const WireTrafficRow &row :
         wireTrafficRows(sent, received, steps)) {
        char line[160];
        std::snprintf(line, sizeof(line),
                      "  %-17s %7.1f frames  %10.1f B out  %10.1f B in\n",
                      row.name, row.framesPerStep, row.bytesOutPerStep,
                      row.bytesInPerStep);
        out += line;
    }
}

// --------------------------------------------------------------------
// LoopbackChannel
// --------------------------------------------------------------------

LoopbackChannel::LoopbackChannel(Service service)
    : service_(std::move(service)), inbox_(*this)
{
    HIMA_ASSERT(static_cast<bool>(service_),
                "LoopbackChannel: null service");
}

void
LoopbackChannel::Inbox::sendFrame(const std::uint8_t *data, std::size_t size)
{
    owner_.push(data, size);
}

void
LoopbackChannel::push(const std::uint8_t *data, std::size_t size)
{
    receivedStats_.note(data, size);
    if (count_ == ring_.size()) {
        // Depth record: grow the ring (the only allocating path).
        ring_.emplace_back();
        // Keep the pending window contiguous after the growth point.
        if (head_ != 0) {
            std::rotate(ring_.begin(), ring_.begin() + head_,
                        ring_.end() - 1);
            head_ = 0;
        }
    }
    std::vector<std::uint8_t> &slot = ring_[(head_ + count_) % ring_.size()];
    slot.assign(data, data + size); // reuses capacity
    ++count_;
    bytesReceived_ += size;
}

void
LoopbackChannel::sendFrame(const std::uint8_t *data, std::size_t size)
{
    bytesSent_ += size;
    sentStats_.note(data, size);
    service_(data, size, inbox_);
}

bool
LoopbackChannel::recvFrame(std::vector<std::uint8_t> &frame)
{
    if (count_ == 0)
        return false;
    frame.assign(ring_[head_].begin(), ring_[head_].end());
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return true;
}

// --------------------------------------------------------------------
// Socket plumbing
// --------------------------------------------------------------------

namespace {

/** Like readFully below, reports an SO_SNDTIMEO expiry via `timedOut`. */
bool
writeFully(int fd, const std::uint8_t *data, std::size_t size,
           bool &timedOut)
{
    std::size_t done = 0;
    while (done < size) {
        // MSG_NOSIGNAL: a peer that died must surface as a recv/send
        // error the caller can report, not as a SIGPIPE process kill.
        const ssize_t n =
            ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                timedOut = true; // SO_SNDTIMEO expiry: the peer is
                                 // wedged (not reading), not dead
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

/** Like readFully, but reports an SO_RCVTIMEO expiry via `timedOut`. */
bool
readFully(int fd, std::uint8_t *data, std::size_t size, bool &timedOut)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::read(fd, data + done, size - done);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                timedOut = true; // bounded-recv expiry, not peer death
            return false; // timeout, EOF or hard error
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

void
setNoDelay(int fd)
{
    // The protocol is strict request/response with small frames; Nagle
    // only adds latency to the gather. Harmlessly fails on AF_UNIX.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

SocketChannel::SocketChannel(int fd) : fd_(fd)
{
    HIMA_ASSERT(fd_ >= 0, "SocketChannel: bad fd");
}

SocketChannel::~SocketChannel()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SocketChannel::queueFrame(const std::uint8_t *data, std::size_t size)
{
    HIMA_ASSERT(size <= kWireMaxFrameBytes, "frame too large: %zu", size);
    sentStats_.note(data, size);
    std::uint8_t len[4];
    for (int b = 0; b < 4; ++b)
        len[b] = static_cast<std::uint8_t>(size >> (8 * b));
    sendBuf_.insert(sendBuf_.end(), len, len + 4);
    sendBuf_.insert(sendBuf_.end(), data, data + size);
}

void
SocketChannel::flush()
{
    if (sendBuf_.empty())
        return;
    obs::TraceSpan span("wire.flush", sendBuf_.size());
    if (!broken_ &&
        !writeFully(fd_, sendBuf_.data(), sendBuf_.size(),
                    sendTimedOut_)) {
        if (sendTimedOut_)
            WaitMetrics::get().sendTimeouts->add();
        // Dead peer: drop the batch and let the next recvFrame() report
        // the failure in context (the coordinator turns it into a fatal
        // protocol error; a best-effort Shutdown in a destructor is
        // allowed to fail silently). An SO_SNDTIMEO expiry lands in
        // sendTimedOut_ so timedOut() diagnoses a wedged-but-alive peer
        // as a timeout rather than peer death.
        broken_ = true;
    }
    if (!broken_)
        bytesSent_ += sendBuf_.size();
    sendBuf_.clear(); // keeps capacity: steady-state sends allocate nothing
}

void
SocketChannel::sendFrame(const std::uint8_t *data, std::size_t size)
{
    // One buffered [len][payload] write per frame — a single syscall
    // instead of two even in the unbatched path.
    queueFrame(data, size);
    flush();
}

void
SocketChannel::setRecvTimeout(int ms)
{
    HIMA_ASSERT(ms >= 0, "SocketChannel: negative recv timeout %d", ms);
    // A zero timeval means "block forever" to the kernel — the exact
    // opposite of the immediate bound a caller asking for 0 means.
    // Clamp to the smallest representable bound instead.
    ms = std::max(ms, 1);
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Bound sends with the same budget: with frames in flight on both
    // directions, mutually full kernel buffers would otherwise turn
    // into an unbounded write-write deadlock. writeFully treats the
    // expiry (EAGAIN) as a failure, which flush() makes sticky.
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool
SocketChannel::recvFrame(std::vector<std::uint8_t> &frame)
{
    timedOut_ = false;
    if (broken_)
        return false;
    obs::TraceSpan span("wire.recv");
    // Every failure is sticky: a partial read leaves the stream
    // position unknown, so a later retry would misparse payload bytes
    // as a length prefix. The protocol has no mid-stream resync.
    std::uint8_t len[4];
    if (!readFully(fd_, len, 4, timedOut_)) {
        if (timedOut_)
            WaitMetrics::get().recvTimeouts->add();
        broken_ = true;
        return false;
    }
    std::uint32_t size = 0;
    for (int b = 0; b < 4; ++b)
        size |= static_cast<std::uint32_t>(len[b]) << (8 * b);
    if (size > kWireMaxFrameBytes) {
        broken_ = true; // garbage length: refuse to allocate
        return false;
    }
    frame.resize(size);
    if (size > 0 && !readFully(fd_, frame.data(), size, timedOut_)) {
        if (timedOut_)
            WaitMetrics::get().recvTimeouts->add();
        broken_ = true;
        return false;
    }
    bytesReceived_ += size + 4u;
    receivedStats_.note(frame.data(), frame.size());
    return true;
}

std::unique_ptr<SocketChannel>
SocketChannel::connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return nullptr;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return nullptr;
    }
    return std::make_unique<SocketChannel>(fd);
}

std::unique_ptr<SocketChannel>
SocketChannel::connectTcp(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return nullptr;
    }
    setNoDelay(fd);
    return std::make_unique<SocketChannel>(fd);
}

std::string
ShardError::describe() const
{
    char buf[160];
    if (kind == Kind::RecvTimeout)
        std::snprintf(buf, sizeof(buf),
                      "shard %s %llu: worker %zu exceeded the recv timeout "
                      "(dead or wedged worker)",
                      what, static_cast<unsigned long long>(seq), worker);
    else
        std::snprintf(buf, sizeof(buf),
                      "shard %s %llu: worker %zu closed the channel", what,
                      static_cast<unsigned long long>(seq), worker);
    return buf;
}

ShardError
shardRecvError(const Channel &channel, const char *what, std::uint64_t seq,
               Index worker)
{
    ShardError err;
    // Every transport self-reports timeout expiry through the Channel
    // virtual (loopback never times out; sockets and shm both do), so
    // the diagnosis needs no downcast and new backends classify
    // correctly for free.
    err.kind = channel.timedOut() ? ShardError::Kind::RecvTimeout
                                  : ShardError::Kind::ChannelClosed;
    err.worker = worker;
    err.seq = seq;
    err.what = what;
    return err;
}

void
shardRecvFailure(const Channel &channel, const char *what,
                 std::uint64_t seq, Index worker)
{
    HIMA_FATAL("%s",
               shardRecvError(channel, what, seq, worker).describe().c_str());
}

// --------------------------------------------------------------------
// SocketListener
// --------------------------------------------------------------------

SocketListener::~SocketListener()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (!path_.empty())
        ::unlink(path_.c_str());
}

std::unique_ptr<SocketListener>
SocketListener::listenUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return nullptr;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    // A socket file already on the path is either a stale leftover from
    // a crashed worker (safe to unlink) or a *live* listener that must
    // not be stolen out from under its clients. Probe-connect to tell
    // them apart: a successful connect means someone is accepting, so
    // fail the double-bind; ECONNREFUSED/ENOENT mean nobody is home.
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0) {
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (probe < 0) {
            ::close(fd);
            return nullptr;
        }
        const bool alive = ::connect(probe,
                                     reinterpret_cast<sockaddr *>(&addr),
                                     sizeof(addr)) == 0;
        ::close(probe);
        if (alive) {
            ::close(fd);
            return nullptr; // live listener on this path: refuse
        }
        ::unlink(path.c_str()); // confirmed-stale socket file
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<SocketListener>(
        new SocketListener(fd, 0, path));
}

std::unique_ptr<SocketListener>
SocketListener::listenTcp(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        ::close(fd);
        return nullptr;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<SocketListener>(
        new SocketListener(fd, ntohs(addr.sin_port), ""));
}

std::unique_ptr<SocketChannel>
SocketListener::accept()
{
    while (true) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            if (path_.empty()) // TCP listener: disable Nagle both ends
                setNoDelay(fd);
            return std::make_unique<SocketChannel>(fd);
        }
        if (errno != EINTR)
            return nullptr;
    }
}

// --------------------------------------------------------------------
// ShmChannel
// --------------------------------------------------------------------

namespace {

/**
 * One direction of the shared region: a single-producer /
 * single-consumer ring of fixed-stride frame slots. head/tail count
 * frames monotonically (slot index = count % slotCount; full = head -
 * tail == slotCount) and live on their own cache lines. dataSeq /
 * spaceSeq are eventcount futex words — bumped after every publish /
 * consume — and the waiter counters let the fast path skip the wake
 * syscall entirely while the peer is still spinning.
 */
struct alignas(64) ShmRing
{
    std::atomic<std::uint64_t> head; ///< frames published (producer-owned)
    char padHead[64 - sizeof(std::atomic<std::uint64_t>)];
    std::atomic<std::uint64_t> tail; ///< frames consumed (consumer-owned)
    char padTail[64 - sizeof(std::atomic<std::uint64_t>)];
    std::atomic<std::uint32_t> dataSeq; ///< futex word: frame published
    std::atomic<std::uint32_t> dataWaiters;
    char padData[64 - 2 * sizeof(std::atomic<std::uint32_t>)];
    std::atomic<std::uint32_t> spaceSeq; ///< futex word: slot freed
    std::atomic<std::uint32_t> spaceWaiters;
    char padSpace[64 - 2 * sizeof(std::atomic<std::uint32_t>)];
};

constexpr std::uint64_t kShmMagic = 0x31414D4948534D48ull; // "HMSHIMA1"
constexpr std::uint32_t kShmLayoutVersion = 1;

/**
 * Spin budget before sleeping on the futex. The peer is typically
 * mid-encode or mid-step for only microseconds, so a short spin dodges
 * the sleep/wake round trip on the hot path entirely — but only when
 * the peer can actually run in parallel. On a single-CPU box every
 * spin iteration delays the very thread that would publish the data,
 * so shmSpinIters() collapses the budget to zero there and waits go
 * straight to the futex (an immediate, scheduler-friendly handoff).
 */
constexpr int kShmSpinIters = 2048;

int
shmSpinIters()
{
    static const int iters =
        std::thread::hardware_concurrency() > 1 ? kShmSpinIters : 0;
    return iters;
}

/**
 * Yield budget between the spin and the futex sleep. sched_yield()
 * hands the core to the runnable peer — on a single CPU that is
 * exactly the thread that will publish the data we are waiting for —
 * so the common synchronous round trip completes with no futex
 * syscalls at all on either side (the sleeper never registers as a
 * waiter, so the producer skips its wake too). A peer that is truly
 * idle or dead exhausts the budget quickly and the wait falls through
 * to the deadline-bounded futex exactly as before.
 */
constexpr int kShmYieldTries = 64;

struct ShmHeader
{
    std::atomic<std::uint64_t> magic; ///< stored last by create(): a
                                      ///< half-built region is invisible
    std::uint32_t layoutVersion;
    std::uint32_t slotBytes;
    std::uint32_t slotCount;
    std::uint32_t pad;
    std::atomic<std::uint32_t> attached;  ///< CAS 0->1 claims the worker end
    std::atomic<std::uint32_t> closed[2]; ///< per role: this end hung up
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm rings need lock-free 64-bit atomics");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "futex words need lock-free 32-bit atomics");

constexpr std::size_t
roundUpTo(std::size_t v, std::size_t a)
{
    return (v + a - 1) / a * a;
}

constexpr std::size_t
shmSlotStride(std::size_t slotBytes)
{
    return 8 + roundUpTo(slotBytes, 8); // [u64 length][payload]
}

constexpr std::size_t
shmRingSpan(std::size_t slotBytes, std::size_t slotCount)
{
    return roundUpTo(sizeof(ShmRing) + slotCount * shmSlotStride(slotBytes),
                     64);
}

std::size_t
shmRegionSpan(std::size_t slotBytes, std::size_t slotCount)
{
    return roundUpTo(sizeof(ShmHeader), 64) +
           2 * shmRingSpan(slotBytes, slotCount);
}

ShmHeader *
shmHeader(std::uint8_t *base)
{
    return reinterpret_cast<ShmHeader *>(base);
}

/** Ring 0 carries creator→attached traffic; ring 1 the reverse. */
ShmRing *
shmRingAt(std::uint8_t *base, std::size_t slotBytes, std::size_t slotCount,
          int which)
{
    return reinterpret_cast<ShmRing *>(
        base + roundUpTo(sizeof(ShmHeader), 64) +
        static_cast<std::size_t>(which) * shmRingSpan(slotBytes, slotCount));
}

std::uint8_t *
shmSlotAt(ShmRing *ring, std::size_t slotBytes, std::size_t slotCount,
          std::uint64_t index)
{
    return reinterpret_cast<std::uint8_t *>(ring) + sizeof(ShmRing) +
           static_cast<std::size_t>(index % slotCount) *
               shmSlotStride(slotBytes);
}

long
futexWait(std::atomic<std::uint32_t> *word, std::uint32_t expected,
          const timespec *relTimeout)
{
    return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t *>(word),
                     FUTEX_WAIT, expected, relTimeout, nullptr, 0);
}

void
futexWakeAll(std::atomic<std::uint32_t> *word)
{
    ::syscall(SYS_futex, reinterpret_cast<std::uint32_t *>(word), FUTEX_WAKE,
              INT_MAX, nullptr, nullptr, 0);
}

void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

} // namespace

std::size_t
shmSlotBytesFor(const DncConfig &shard, Index hostedTiles, Index lanes)
{
    const auto n = static_cast<std::size_t>(shard.memoryRows);
    const auto w = static_cast<std::size_t>(shard.memoryWidth);
    const auto r = static_cast<std::size_t>(shard.readHeads);
    const std::size_t hosted = std::max<std::size_t>(1, hostedTiles);
    const std::size_t laneCount = std::max<std::size_t>(1, lanes);
    const std::size_t states = hosted * laneCount;
    // CheckpointState / Restore carry full MemoryUnit state per
    // (lane, tile) — memory N*W, linkage N*N, row norms + usage +
    // precedence + write weighting 4N, read weightings R*N — by far
    // the largest frame the protocol produces. The v6 body adds an
    // encoding byte and the touched-slot list (worst case 4N + counts);
    // the sparse encoding is chosen per tile only when byte-smaller
    // than dense, so the dense size plus that headroom bounds every
    // frame the encoder can emit.
    const std::size_t snapshot =
        states * (8 * (n * w + n * n + (4 + r) * n) + 4 * n + 16);
    // Scatter: one interface vector (+ per-entry framing) per lane, or
    // the span broadcast over hosted tiles.
    const std::size_t iface = 8 * (r * w + 3 * w + 8 * r + 16) + 64;
    const std::size_t scatter = std::max(laneCount, hosted) * iface;
    // Replies with weightings: reads R*W, weightings (1+R)*N, scores.
    const std::size_t reply = 8 * states * (r * w + (1 + r) * n + r + 8);
    // StatsReport scrapes are name+counter rows plus sparse histogram
    // buckets — small next to state frames, but tiny-tile configs can
    // shrink `snapshot` below a fleet scrape, so give stats a floor.
    const std::size_t stats = 64 * 1024;
    std::size_t bytes = std::max({snapshot, scatter, reply, stats}) + 512;
    bytes = roundUpTo(bytes, 4096);
    return std::min<std::size_t>(bytes, kWireMaxFrameBytes);
}

ShmChannel::ShmChannel(std::uint8_t *base, std::size_t regionBytes, int role,
                       bool creator, std::string name)
    : base_(base), regionBytes_(regionBytes), role_(role), creator_(creator),
      name_(std::move(name))
{
    const ShmHeader *hdr = shmHeader(base_);
    slotBytes_ = hdr->slotBytes;
    slotCount_ = hdr->slotCount;
}

ShmChannel::~ShmChannel()
{
    if (base_ == nullptr)
        return;
    releaseBorrowedSlot();
    markClosed();
    if (creator_ && !unlinked_)
        ::shm_unlink(name_.c_str());
    ::munmap(base_, regionBytes_);
}

std::unique_ptr<ShmChannel>
ShmChannel::create(const std::string &name, std::size_t slotBytes,
                   std::size_t slotCount)
{
    HIMA_ASSERT(!name.empty() && name.front() == '/',
                "ShmChannel: shm names start with '/'");
    HIMA_ASSERT(slotCount >= 2, "ShmChannel: need at least 2 slots");
    slotBytes = std::clamp<std::size_t>(roundUpTo(slotBytes, 8), 256,
                                        kWireMaxFrameBytes);
    const std::size_t regionBytes = shmRegionSpan(slotBytes, slotCount);
    // O_EXCL: never displace an existing name — a collision is either a
    // live channel (stealing it would corrupt SPSC ownership) or a
    // crashed run's leftover the operator should clear deliberately.
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0)
        return nullptr;
    if (::ftruncate(fd, static_cast<off_t>(regionBytes)) != 0) {
        ::close(fd);
        ::shm_unlink(name.c_str());
        return nullptr;
    }
    void *map = ::mmap(nullptr, regionBytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd, 0);
    ::close(fd); // the mapping keeps the region alive
    if (map == MAP_FAILED) {
        ::shm_unlink(name.c_str());
        return nullptr;
    }
    auto *base = static_cast<std::uint8_t *>(map);
    ShmHeader *hdr = shmHeader(base);
    // Fresh tmpfs pages are zero-filled, so head/tail/seq/attached/
    // closed already hold their initial values; stamp the geometry and
    // then publish the region with a release store of the magic.
    hdr->layoutVersion = kShmLayoutVersion;
    hdr->slotBytes = static_cast<std::uint32_t>(slotBytes);
    hdr->slotCount = static_cast<std::uint32_t>(slotCount);
    hdr->magic.store(kShmMagic, std::memory_order_release);
    return std::unique_ptr<ShmChannel>(
        new ShmChannel(base, regionBytes, /*role=*/0, /*creator=*/true,
                       name));
}

std::unique_ptr<ShmChannel>
ShmChannel::attach(const std::string &name, int timeoutMs)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(std::max(timeoutMs, 0));
    while (true) {
        const int fd = ::shm_open(name.c_str(), O_RDWR, 0);
        if (fd >= 0) {
            struct stat st{};
            const bool statOk = ::fstat(fd, &st) == 0;
            if (statOk &&
                static_cast<std::size_t>(st.st_size) >= sizeof(ShmHeader)) {
                const auto regionBytes =
                    static_cast<std::size_t>(st.st_size);
                void *map = ::mmap(nullptr, regionBytes,
                                   PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                                   0);
                ::close(fd);
                if (map != MAP_FAILED) {
                    auto *base = static_cast<std::uint8_t *>(map);
                    ShmHeader *hdr = shmHeader(base);
                    if (hdr->magic.load(std::memory_order_acquire) ==
                        kShmMagic) {
                        const bool sane =
                            hdr->layoutVersion == kShmLayoutVersion &&
                            regionBytes == shmRegionSpan(hdr->slotBytes,
                                                         hdr->slotCount);
                        std::uint32_t unclaimed = 0;
                        if (sane &&
                            hdr->attached.compare_exchange_strong(
                                unclaimed, 1, std::memory_order_acq_rel))
                            return std::unique_ptr<ShmChannel>(new ShmChannel(
                                base, regionBytes, /*role=*/1,
                                /*creator=*/false, name));
                        // Wrong layout or a peer already claimed the
                        // attached end: permanently unusable for us.
                        ::munmap(map, regionBytes);
                        return nullptr;
                    }
                    // Magic not published yet: creator mid-init, retry.
                    ::munmap(map, regionBytes);
                }
            } else {
                ::close(fd); // ftruncate pending: retry
            }
        }
        if (std::chrono::steady_clock::now() >= deadline)
            return nullptr;
        ::usleep(1000);
    }
}

void
ShmChannel::setRecvTimeout(int ms)
{
    HIMA_ASSERT(ms >= 0, "ShmChannel: negative recv timeout %d", ms);
    recvTimeoutMs_ = std::max(ms, 1); // 0 would mean "wait forever"
}

void
ShmChannel::maybeUnlink()
{
    if (!creator_ || unlinked_)
        return;
    if (shmHeader(base_)->attached.load(std::memory_order_acquire) != 0) {
        // A peer holds its own mapping now, so the name has done its
        // rendezvous job; unlinking here means a crashed run leaves no
        // /dev/shm litter behind.
        ::shm_unlink(name_.c_str());
        unlinked_ = true;
    }
}

void
ShmChannel::markClosed()
{
    ShmHeader *hdr = shmHeader(base_);
    hdr->closed[role_].store(1, std::memory_order_release);
    for (int which = 0; which < 2; ++which) {
        ShmRing *ring = shmRingAt(base_, slotBytes_, slotCount_, which);
        // Bump both eventcounts so any sleeper's futex compare fails
        // even if the wake races its registration.
        ring->dataSeq.fetch_add(1, std::memory_order_seq_cst);
        futexWakeAll(&ring->dataSeq);
        ring->spaceSeq.fetch_add(1, std::memory_order_seq_cst);
        futexWakeAll(&ring->spaceSeq);
    }
}

bool
ShmChannel::waitForFrame()
{
    ShmHeader *hdr = shmHeader(base_);
    ShmRing *ring = shmRingAt(base_, slotBytes_, slotCount_, 1 - role_);
    const std::uint64_t t = ring->tail.load(std::memory_order_relaxed);
    for (int spin = 0, budget = shmSpinIters(); spin < budget; ++spin) {
        if (ring->head.load(std::memory_order_acquire) > t)
            return true;
        if (hdr->closed[1 - role_].load(std::memory_order_acquire) != 0 &&
            ring->head.load(std::memory_order_acquire) == t)
            return false; // peer closed and the ring is drained: EOF
        cpuRelax();
    }
    WaitMetrics::get().spinExhausted->add();
    const bool bounded = recvTimeoutMs_ > 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(recvTimeoutMs_);
    int yields = kShmYieldTries;
    while (true) {
        const std::uint32_t seq = ring->dataSeq.load(std::memory_order_acquire);
        if (ring->head.load(std::memory_order_acquire) > t)
            return true;
        if (hdr->closed[1 - role_].load(std::memory_order_acquire) != 0 &&
            ring->head.load(std::memory_order_acquire) == t)
            return false;
        if (yields > 0) {
            --yields;
            ::sched_yield();
            continue;
        }
        timespec rel{};
        timespec *relPtr = nullptr;
        if (bounded) {
            const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
                deadline - std::chrono::steady_clock::now());
            if (left.count() <= 0) {
                WaitMetrics::get().recvTimeouts->add();
                timedOut_ = true;
                broken_ = true; // sticky, like a socket recv expiry
                return false;
            }
            rel.tv_sec = static_cast<time_t>(left.count() / 1000000000);
            rel.tv_nsec = static_cast<long>(left.count() % 1000000000);
            relPtr = &rel;
        }
        ring->dataWaiters.fetch_add(1, std::memory_order_seq_cst);
        // Re-check while registered: a publish that raced the
        // registration either shows up here or moved dataSeq, in which
        // case the futex compare below fails immediately.
        if (ring->head.load(std::memory_order_seq_cst) > t ||
            hdr->closed[1 - role_].load(std::memory_order_seq_cst) != 0) {
            ring->dataWaiters.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        WaitMetrics::get().futexWaits->add();
        const long rc = futexWait(&ring->dataSeq, seq, relPtr);
        ring->dataWaiters.fetch_sub(1, std::memory_order_relaxed);
        if (rc == -1 && errno == ETIMEDOUT) {
            WaitMetrics::get().recvTimeouts->add();
            timedOut_ = true;
            broken_ = true;
            return false;
        }
        // Woken, EAGAIN (the eventcount already moved) or EINTR:
        // re-evaluate against the deadline.
    }
}

bool
ShmChannel::waitForSpace()
{
    ShmHeader *hdr = shmHeader(base_);
    ShmRing *ring = shmRingAt(base_, slotBytes_, slotCount_, role_);
    const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
    for (int spin = 0, budget = shmSpinIters(); spin < budget; ++spin) {
        if (hdr->closed[1 - role_].load(std::memory_order_acquire) != 0) {
            broken_ = true; // nobody will ever drain the ring
            return false;
        }
        if (h - ring->tail.load(std::memory_order_acquire) < slotCount_)
            return true;
        cpuRelax();
    }
    WaitMetrics::get().spinExhausted->add();
    const bool bounded = recvTimeoutMs_ > 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(recvTimeoutMs_);
    int yields = kShmYieldTries;
    while (true) {
        const std::uint32_t seq =
            ring->spaceSeq.load(std::memory_order_acquire);
        if (hdr->closed[1 - role_].load(std::memory_order_acquire) != 0) {
            broken_ = true;
            return false;
        }
        if (h - ring->tail.load(std::memory_order_acquire) < slotCount_)
            return true;
        if (yields > 0) {
            --yields;
            ::sched_yield();
            continue;
        }
        timespec rel{};
        timespec *relPtr = nullptr;
        if (bounded) {
            const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
                deadline - std::chrono::steady_clock::now());
            if (left.count() <= 0) {
                // The peer is alive enough to keep the region mapped
                // but is not consuming: the send-side analogue of an
                // SO_SNDTIMEO expiry (wedged, not dead).
                WaitMetrics::get().sendTimeouts->add();
                timedOut_ = true;
                broken_ = true;
                return false;
            }
            rel.tv_sec = static_cast<time_t>(left.count() / 1000000000);
            rel.tv_nsec = static_cast<long>(left.count() % 1000000000);
            relPtr = &rel;
        }
        ring->spaceWaiters.fetch_add(1, std::memory_order_seq_cst);
        if (hdr->closed[1 - role_].load(std::memory_order_seq_cst) != 0 ||
            h - ring->tail.load(std::memory_order_seq_cst) < slotCount_) {
            ring->spaceWaiters.fetch_sub(1, std::memory_order_relaxed);
            continue;
        }
        WaitMetrics::get().futexWaits->add();
        const long rc = futexWait(&ring->spaceSeq, seq, relPtr);
        ring->spaceWaiters.fetch_sub(1, std::memory_order_relaxed);
        if (rc == -1 && errno == ETIMEDOUT) {
            WaitMetrics::get().sendTimeouts->add();
            timedOut_ = true;
            broken_ = true;
            return false;
        }
    }
}

void
ShmChannel::publish(std::size_t payloadBytes)
{
    ShmRing *ring = shmRingAt(base_, slotBytes_, slotCount_, role_);
    const std::uint64_t h = ring->head.load(std::memory_order_relaxed);
    std::uint8_t *slot = shmSlotAt(ring, slotBytes_, slotCount_, h);
    const auto len = static_cast<std::uint64_t>(payloadBytes);
    std::memcpy(slot, &len, sizeof(len)); // invisible until head moves
    ring->head.store(h + 1, std::memory_order_release);
    ring->dataSeq.fetch_add(1, std::memory_order_seq_cst);
    if (ring->dataWaiters.load(std::memory_order_seq_cst) != 0)
        futexWakeAll(&ring->dataSeq);
}

void
ShmChannel::sendFrame(const std::uint8_t *data, std::size_t size)
{
    obs::TraceSpan span("wire.send", size);
    sentStats_.note(data, size);
    maybeUnlink();
    if (broken_)
        return; // dropped; surfaces on the next receive (socket semantics)
    HIMA_ASSERT(size <= slotBytes_,
                "ShmChannel: %zu-byte frame exceeds the %zu-byte slots "
                "(size the region with shmSlotBytesFor)",
                size, slotBytes_);
    if (!waitForSpace())
        return;
    ShmRing *ring = shmRingAt(base_, slotBytes_, slotCount_, role_);
    std::uint8_t *slot = shmSlotAt(ring, slotBytes_, slotCount_,
                                   ring->head.load(std::memory_order_relaxed));
    std::memcpy(slot + 8, data, size);
    publish(size);
    bytesSent_ += size + 8;
}

WireWriter *
ShmChannel::beginFrame()
{
    HIMA_ASSERT(!inPlaceOpen_, "ShmChannel: beginFrame without endFrame");
    inPlaceOpen_ = true;
    maybeUnlink();
    if (broken_ || !waitForSpace()) {
        // No slot will ever come (peer dead or wedged): hand the
        // encoder a discard target so call sites stay branch-free; the
        // frame is dropped at endFrame() and the failure surfaces on
        // the next receive, exactly like a socket flush to a dead peer.
        inPlaceDropped_ = true;
        discard_.resize(slotBytes_);
        slotWriter_.attachExternal(discard_.data(), discard_.size());
        return &slotWriter_;
    }
    inPlaceDropped_ = false;
    ShmRing *ring = shmRingAt(base_, slotBytes_, slotCount_, role_);
    std::uint8_t *slot = shmSlotAt(ring, slotBytes_, slotCount_,
                                   ring->head.load(std::memory_order_relaxed));
    slotWriter_.attachExternal(slot + 8, slotBytes_);
    return &slotWriter_;
}

void
ShmChannel::endFrame()
{
    HIMA_ASSERT(inPlaceOpen_, "ShmChannel: endFrame without beginFrame");
    inPlaceOpen_ = false;
    const std::size_t size = slotWriter_.size();
    sentStats_.note(slotWriter_.data(), size);
    if (!inPlaceDropped_) {
        publish(size);
        bytesSent_ += size + 8;
    }
    inPlaceDropped_ = false;
    slotWriter_.detachExternal();
}

void
ShmChannel::releaseBorrowedSlot()
{
    if (!borrowed_)
        return;
    borrowed_ = false;
    ShmRing *ring = shmRingAt(base_, slotBytes_, slotCount_, 1 - role_);
    const std::uint64_t t = ring->tail.load(std::memory_order_relaxed);
    ring->tail.store(t + 1, std::memory_order_release);
    ring->spaceSeq.fetch_add(1, std::memory_order_seq_cst);
    if (ring->spaceWaiters.load(std::memory_order_seq_cst) != 0)
        futexWakeAll(&ring->spaceSeq);
}

bool
ShmChannel::recvFrameView(const std::uint8_t *&data, std::size_t &size,
                          std::vector<std::uint8_t> &scratch)
{
    (void)scratch; // zero-copy path: the ring slot itself is the buffer
    obs::TraceSpan span("wire.recv");
    releaseBorrowedSlot();
    maybeUnlink();
    // broken_ freezes timedOut_: once the channel failed, the cause of
    // that first failure (send-wait expiry vs close) is the diagnosis,
    // and later receives must not relabel a wedged peer as dead.
    if (broken_)
        return false;
    timedOut_ = false;
    if (!waitForFrame())
        return false;
    ShmRing *ring = shmRingAt(base_, slotBytes_, slotCount_, 1 - role_);
    const std::uint64_t t = ring->tail.load(std::memory_order_relaxed);
    const std::uint8_t *slot = shmSlotAt(ring, slotBytes_, slotCount_, t);
    std::uint64_t len = 0;
    std::memcpy(&len, slot, sizeof(len));
    if (len > slotBytes_ || len > kWireMaxFrameBytes) {
        broken_ = true; // corrupt framing: refuse the slot, fail closed
        return false;
    }
    data = slot + 8;
    size = static_cast<std::size_t>(len);
    borrowed_ = true; // the slot stays on loan until the next receive
    bytesReceived_ += size + 8;
    receivedStats_.note(data, size);
    return true;
}

bool
ShmChannel::recvFrame(std::vector<std::uint8_t> &frame)
{
    const std::uint8_t *data = nullptr;
    std::size_t size = 0;
    if (!recvFrameView(data, size, frame))
        return false;
    frame.assign(data, data + size);
    releaseBorrowedSlot(); // copy taken: hand the slot back immediately
    return true;
}

std::unique_ptr<SocketChannel>
SocketListener::acceptWithTimeout(int ms)
{
    // A signal mid-wait must not shrink-or-reset the budget: re-poll
    // with whatever time remains against a fixed deadline.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (true) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        const int budget = static_cast<int>(std::max<long long>(
            0, static_cast<long long>(left.count())));
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, budget);
        if (rc > 0)
            return accept(); // a pending connection: accept won't block
        if (rc == 0)
            return nullptr; // bounded wait expired
        if (errno != EINTR)
            return nullptr;
    }
}

} // namespace hima
