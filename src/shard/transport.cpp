#include "shard/transport.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.h"
#include "shard/wire.h"

namespace hima {

// --------------------------------------------------------------------
// LoopbackChannel
// --------------------------------------------------------------------

LoopbackChannel::LoopbackChannel(Service service)
    : service_(std::move(service)), inbox_(*this)
{
    HIMA_ASSERT(static_cast<bool>(service_),
                "LoopbackChannel: null service");
}

void
LoopbackChannel::Inbox::sendFrame(const std::uint8_t *data, std::size_t size)
{
    owner_.push(data, size);
}

void
LoopbackChannel::push(const std::uint8_t *data, std::size_t size)
{
    if (count_ == ring_.size()) {
        // Depth record: grow the ring (the only allocating path).
        ring_.emplace_back();
        // Keep the pending window contiguous after the growth point.
        if (head_ != 0) {
            std::rotate(ring_.begin(), ring_.begin() + head_,
                        ring_.end() - 1);
            head_ = 0;
        }
    }
    std::vector<std::uint8_t> &slot = ring_[(head_ + count_) % ring_.size()];
    slot.assign(data, data + size); // reuses capacity
    ++count_;
    bytesReceived_ += size;
}

void
LoopbackChannel::sendFrame(const std::uint8_t *data, std::size_t size)
{
    bytesSent_ += size;
    service_(data, size, inbox_);
}

bool
LoopbackChannel::recvFrame(std::vector<std::uint8_t> &frame)
{
    if (count_ == 0)
        return false;
    frame.assign(ring_[head_].begin(), ring_[head_].end());
    head_ = (head_ + 1) % ring_.size();
    --count_;
    return true;
}

// --------------------------------------------------------------------
// Socket plumbing
// --------------------------------------------------------------------

namespace {

bool
writeFully(int fd, const std::uint8_t *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        // MSG_NOSIGNAL: a peer that died must surface as a recv/send
        // error the caller can report, not as a SIGPIPE process kill.
        const ssize_t n =
            ::send(fd, data + done, size - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool
readFully(int fd, std::uint8_t *data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::read(fd, data + done, size - done);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false; // EOF or hard error
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

SocketChannel::SocketChannel(int fd) : fd_(fd)
{
    HIMA_ASSERT(fd_ >= 0, "SocketChannel: bad fd");
}

SocketChannel::~SocketChannel()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SocketChannel::sendFrame(const std::uint8_t *data, std::size_t size)
{
    HIMA_ASSERT(size <= kWireMaxFrameBytes, "frame too large: %zu", size);
    if (broken_)
        return;
    std::uint8_t len[4];
    for (int b = 0; b < 4; ++b)
        len[b] = static_cast<std::uint8_t>(size >> (8 * b));
    if (!writeFully(fd_, len, 4) || !writeFully(fd_, data, size)) {
        // Dead peer: drop the frame and let the next recvFrame() report
        // the failure in context (the coordinator turns it into a fatal
        // protocol error; a best-effort Shutdown in a destructor is
        // allowed to fail silently).
        broken_ = true;
        return;
    }
    bytesSent_ += size + 4;
}

bool
SocketChannel::recvFrame(std::vector<std::uint8_t> &frame)
{
    if (broken_)
        return false;
    std::uint8_t len[4];
    if (!readFully(fd_, len, 4))
        return false;
    std::uint32_t size = 0;
    for (int b = 0; b < 4; ++b)
        size |= static_cast<std::uint32_t>(len[b]) << (8 * b);
    if (size > kWireMaxFrameBytes)
        return false; // garbage length: refuse to allocate
    frame.resize(size);
    if (size > 0 && !readFully(fd_, frame.data(), size))
        return false;
    bytesReceived_ += size + 4u;
    return true;
}

std::unique_ptr<SocketChannel>
SocketChannel::connectUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return nullptr;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return nullptr;
    }
    return std::make_unique<SocketChannel>(fd);
}

std::unique_ptr<SocketChannel>
SocketChannel::connectTcp(const std::string &host, std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        return nullptr;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return nullptr;
    }
    // The protocol is strict request/response with small frames; Nagle
    // only adds latency to the gather.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::make_unique<SocketChannel>(fd);
}

// --------------------------------------------------------------------
// SocketListener
// --------------------------------------------------------------------

SocketListener::~SocketListener()
{
    if (fd_ >= 0)
        ::close(fd_);
    if (!path_.empty())
        ::unlink(path_.c_str());
}

std::unique_ptr<SocketListener>
SocketListener::listenUnix(const std::string &path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        ::close(fd);
        return nullptr;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str()); // stale socket file from a crashed worker
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<SocketListener>(
        new SocketListener(fd, 0, path));
}

std::unique_ptr<SocketListener>
SocketListener::listenTcp(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return nullptr;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        ::close(fd);
        return nullptr;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::unique_ptr<SocketListener>(
        new SocketListener(fd, ntohs(addr.sin_port), ""));
}

std::unique_ptr<SocketChannel>
SocketListener::accept()
{
    while (true) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return std::make_unique<SocketChannel>(fd);
        }
        if (errno != EINTR)
            return nullptr;
    }
}

} // namespace hima
