/**
 * @file
 * Transport abstraction for the sharded DNC-D wire protocol: how framed
 * messages move between the coordinator and its tile workers.
 *
 * Two implementations cover the deployment spectrum:
 *
 *   - LoopbackChannel: in-process, synchronous. sendFrame() delivers the
 *     frame straight into a registered service (the worker's frame
 *     handler); the service's replies land in a reusable inbox ring that
 *     recvFrame() pops. Fully deterministic, no threads, no kernel —
 *     this is the test and golden-harness transport, and it still
 *     serializes every byte through the same codec the sockets use, so
 *     "bit-identical over loopback" implies "bit-identical over TCP".
 *
 *   - SocketChannel: a connected stream socket (Unix-domain or TCP),
 *     with [u32 length]-framed payloads, full-write/full-read loops and
 *     EINTR handling. SocketListener binds/accepts (TCP port 0 picks an
 *     ephemeral port, so tests never collide).
 *
 * Channels count bytes in both directions; bench_shard reports wire
 * bytes per step from these counters.
 */

#ifndef HIMA_SHARD_TRANSPORT_H
#define HIMA_SHARD_TRANSPORT_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace hima {

/** Anything that accepts outbound frames (channels, loopback inboxes). */
class FrameSink
{
  public:
    virtual ~FrameSink() = default;

    /** Queue/transmit one framed payload. */
    virtual void sendFrame(const std::uint8_t *data, std::size_t size) = 0;
};

/** A bidirectional framed message channel. */
class Channel : public FrameSink
{
  public:
    /**
     * Receive the next frame into `frame` (resized in place; capacity is
     * reused, so a steady-state receive allocates nothing).
     *
     * @return false on orderly close / nothing pending (loopback) or on
     *         a malformed length prefix
     */
    virtual bool recvFrame(std::vector<std::uint8_t> &frame) = 0;

    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesReceived() const { return bytesReceived_; }

  protected:
    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;
};

/**
 * In-process synchronous channel: the coordinator-side endpoint of a
 * worker served by direct function call.
 */
class LoopbackChannel final : public Channel
{
  public:
    /**
     * The served peer: receives one frame, emits any number of reply
     * frames into the sink (which is this channel's inbox).
     */
    using Service = std::function<void(const std::uint8_t *data,
                                       std::size_t size, FrameSink &reply)>;

    explicit LoopbackChannel(Service service);

    void sendFrame(const std::uint8_t *data, std::size_t size) override;
    bool recvFrame(std::vector<std::uint8_t> &frame) override;

  private:
    /** Reply sink: appends into the ring without exposing sendFrame. */
    class Inbox final : public FrameSink
    {
      public:
        explicit Inbox(LoopbackChannel &owner) : owner_(owner) {}
        void sendFrame(const std::uint8_t *data, std::size_t size) override;

      private:
        LoopbackChannel &owner_;
    };

    void push(const std::uint8_t *data, std::size_t size);

    Service service_;
    Inbox inbox_;
    // Ring of reusable frame buffers: grows only when depth exceeds the
    // historical maximum, so steady-state round trips never allocate.
    std::vector<std::vector<std::uint8_t>> ring_;
    std::size_t head_ = 0;  ///< next frame to pop
    std::size_t count_ = 0; ///< frames pending
};

/** A connected stream socket carrying length-prefixed frames. */
class SocketChannel final : public Channel
{
  public:
    /** Adopt a connected socket fd (takes ownership). */
    explicit SocketChannel(int fd);
    ~SocketChannel() override;

    SocketChannel(const SocketChannel &) = delete;
    SocketChannel &operator=(const SocketChannel &) = delete;

    void sendFrame(const std::uint8_t *data, std::size_t size) override;
    bool recvFrame(std::vector<std::uint8_t> &frame) override;

    /** Connect to a Unix-domain socket path; null on failure. */
    static std::unique_ptr<SocketChannel>
    connectUnix(const std::string &path);

    /** Connect to a TCP endpoint (IPv4 dotted quad); null on failure. */
    static std::unique_ptr<SocketChannel> connectTcp(const std::string &host,
                                                     std::uint16_t port);

  private:
    int fd_;
    bool broken_ = false; ///< peer died mid-send; reads report failure
};

/** Bound+listening server socket that accepts SocketChannels. */
class SocketListener
{
  public:
    ~SocketListener();

    SocketListener(const SocketListener &) = delete;
    SocketListener &operator=(const SocketListener &) = delete;

    /** Listen on a Unix-domain path (unlinks a stale file); null on error. */
    static std::unique_ptr<SocketListener>
    listenUnix(const std::string &path);

    /** Listen on 127.0.0.1:port (0 = ephemeral); null on error. */
    static std::unique_ptr<SocketListener> listenTcp(std::uint16_t port);

    /** Block until one peer connects; null on error. */
    std::unique_ptr<SocketChannel> accept();

    /** Actual bound TCP port (after port-0 resolution); 0 for Unix. */
    std::uint16_t port() const { return port_; }

    const std::string &path() const { return path_; }

  private:
    SocketListener(int fd, std::uint16_t port, std::string path)
        : fd_(fd), port_(port), path_(std::move(path))
    {}

    int fd_;
    std::uint16_t port_;
    std::string path_; ///< unlinked on destruction (Unix only)
};

} // namespace hima

#endif // HIMA_SHARD_TRANSPORT_H
