/**
 * @file
 * Transport abstraction for the sharded DNC-D wire protocol: how framed
 * messages move between the coordinator and its tile workers.
 *
 * Three implementations cover the deployment spectrum:
 *
 *   - LoopbackChannel: in-process, synchronous. sendFrame() delivers the
 *     frame straight into a registered service (the worker's frame
 *     handler); the service's replies land in a reusable inbox ring that
 *     recvFrame() pops. Fully deterministic, no threads, no kernel —
 *     this is the test and golden-harness transport, and it still
 *     serializes every byte through the same codec the sockets use, so
 *     "bit-identical over loopback" implies "bit-identical over TCP".
 *
 *   - SocketChannel: a connected stream socket (Unix-domain or TCP,
 *     TCP_NODELAY on both ends), with [u32 length]-framed payloads,
 *     full-write/full-read loops and EINTR handling. SocketListener
 *     binds/accepts (TCP port 0 picks an ephemeral port, so tests never
 *     collide). setRecvTimeout() bounds every recvFrame() so a dead or
 *     wedged peer surfaces as a step error instead of hanging the
 *     coordinator forever.
 *
 *   - ShmChannel: same-host zero-copy. One shm_open() + mmap() region
 *     holds a pair of single-producer/single-consumer frame-slot rings
 *     (one per direction), futex-signalled with a bounded spin before
 *     every sleep. Senders encode straight into the next free slot
 *     (beginFrame()/endFrame() via FrameScope) and receivers borrow the
 *     slot in place (recvFrameView()), so a step moves zero hot-path
 *     memcpys of Real arrays. The payload inside each slot is the
 *     ordinary wire encoding — decoders stay fail-closed and the socket
 *     codec remains the cross-host fallback.
 *
 * Channels support multiple outstanding frames: sendFrame()/queueFrame()
 * never wait for a reply, so a pipelined coordinator can keep a window
 * of step frames in flight per channel. queueFrame() + flush() is the
 * batched form — SocketChannel coalesces queued frames into a single
 * send() (writev-style: one syscall flushes the whole window),
 * LoopbackChannel services frames immediately in queue order, keeping
 * in-process runs deterministic.
 *
 * Channels count frames and bytes per message type in both directions
 * (WireTrafficStats); bench_shard and shard_demo report wire cost per
 * step from these counters.
 */

#ifndef HIMA_SHARD_TRANSPORT_H
#define HIMA_SHARD_TRANSPORT_H

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "shard/wire.h"

namespace hima {

/**
 * Per-message-type frame/byte counters for one direction of a channel.
 * Indexed by the raw MsgType value; slot 0 aggregates frames whose
 * header did not parse (never expected in a healthy deployment).
 * Byte counts are payload bytes (framing overhead excluded).
 */
struct WireTrafficStats
{
    std::array<std::uint64_t, kMsgTypeCount> frames{};
    std::array<std::uint64_t, kMsgTypeCount> bytes{};

    void
    note(const std::uint8_t *data, std::size_t size)
    {
        MsgType type;
        const std::size_t slot =
            peekType(data, size, type) ? static_cast<std::size_t>(type) : 0;
        ++frames[slot];
        bytes[slot] += size;
    }

    std::uint64_t
    totalFrames() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t f : frames)
            sum += f;
        return sum;
    }

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t b : bytes)
            sum += b;
        return sum;
    }

    /** Zero every counter (bench loops differencing a fresh window). */
    void
    reset()
    {
        frames.fill(0);
        bytes.fill(0);
    }

    /** Aggregate another channel's (or direction's) counters in. */
    WireTrafficStats &
    operator+=(const WireTrafficStats &other)
    {
        for (std::size_t t = 0; t < kMsgTypeCount; ++t) {
            frames[t] += other.frames[t];
            bytes[t] += other.bytes[t];
        }
        return *this;
    }

    /**
     * Counters accumulated since `base`, an earlier reading of the
     * same channel direction (monotone, so per-slot subtraction).
     */
    WireTrafficStats
    diffFrom(const WireTrafficStats &base) const
    {
        WireTrafficStats out;
        for (std::size_t t = 0; t < kMsgTypeCount; ++t) {
            out.frames[t] = frames[t] - base.frames[t];
            out.bytes[t] = bytes[t] - base.bytes[t];
        }
        return out;
    }
};

/** One non-zero per-message-type row of an aggregated traffic table. */
struct WireTrafficRow
{
    MsgType type;
    const char *name;       ///< msgTypeName(type)
    double framesPerStep;   ///< both directions combined
    double bytesOutPerStep; ///< payload bytes sent
    double bytesInPerStep;  ///< payload bytes received
};

/**
 * The non-zero message-type rows of a (sent, received) counter pair,
 * normalized by `steps` — the shared core of every per-type wire
 * report (shard_demo's console table, bench_shard's JSON rows).
 * Slot 0 (unparsed headers) is skipped; healthy runs never hit it.
 */
std::vector<WireTrafficRow> wireTrafficRows(const WireTrafficStats &sent,
                                            const WireTrafficStats &received,
                                            double steps);

/**
 * Human-readable per-type table of wireTrafficRows, one line per type
 * ("  LaneStepReply   2.0 frames   1024.0 B out  ..."), appended to
 * `out`.
 */
void formatWireTrafficTable(const WireTrafficStats &sent,
                            const WireTrafficStats &received, double steps,
                            std::string &out);

/** Anything that accepts outbound frames (channels, loopback inboxes). */
class FrameSink
{
  public:
    virtual ~FrameSink() = default;

    /** Queue/transmit one framed payload. */
    virtual void sendFrame(const std::uint8_t *data, std::size_t size) = 0;

    /**
     * Begin an in-place outbound frame: a writer whose bytes land
     * directly in transport memory (ShmChannel's next free ring slot),
     * or null when this sink has no zero-copy path and the caller
     * should encode into its own writer and sendFrame() as usual.
     * Every beginFrame() must be paired with one endFrame(); FrameScope
     * wraps the branch so call sites stay transport-agnostic.
     */
    virtual WireWriter *beginFrame() { return nullptr; }

    /** Publish the frame encoded into beginFrame()'s writer. */
    virtual void endFrame() {}
};

/**
 * One outbound frame, encoded in place when the sink supports it:
 *
 *     FrameScope frame(sink, writer_);
 *     encodeStepReply(..., frame.writer());
 *     frame.commit();
 *
 * On a zero-copy sink (ShmChannel) writer() targets the transport's own
 * slot and commit() publishes it; elsewhere writer() is the caller's
 * staging writer and commit() is a plain sendFrame(). Either way the
 * encoder sees a cleared WireWriter and produces identical wire bytes.
 */
class FrameScope
{
  public:
    FrameScope(FrameSink &sink, WireWriter &staging)
        : sink_(sink), inPlace_(sink.beginFrame()),
          writer_(inPlace_ != nullptr ? inPlace_ : &staging)
    {
        if (inPlace_ == nullptr)
            writer_->clear();
    }

    WireWriter &writer() { return *writer_; }

    void
    commit()
    {
        if (inPlace_ != nullptr)
            sink_.endFrame();
        else
            sink_.sendFrame(writer_->data(), writer_->size());
    }

  private:
    FrameSink &sink_;
    WireWriter *inPlace_;
    WireWriter *writer_;
};

/** A bidirectional framed message channel. */
class Channel : public FrameSink
{
  public:
    /**
     * Receive the next frame into `frame` (resized in place; capacity is
     * reused, so a steady-state receive allocates nothing).
     *
     * @return false on orderly close / nothing pending (loopback) /
     *         recv-timeout expiry, or on a malformed length prefix
     */
    virtual bool recvFrame(std::vector<std::uint8_t> &frame) = 0;

    /**
     * Zero-copy receive: deliver the next frame as a borrowed view,
     * valid until the next receive on this channel (sends do not
     * invalidate it — the opposite direction is a separate ring). The
     * default copies via recvFrame() into `scratch`; ShmChannel points
     * straight into its ring slot so decoders read Real arrays in
     * place.
     */
    virtual bool
    recvFrameView(const std::uint8_t *&data, std::size_t &size,
                  std::vector<std::uint8_t> &scratch)
    {
        if (!recvFrame(scratch))
            return false;
        data = scratch.data();
        size = scratch.size();
        return true;
    }

    /**
     * Queue one frame for a later flush(). The default transmits
     * immediately (loopback service order stays deterministic);
     * SocketChannel buffers so a flush() moves the whole batch in one
     * syscall.
     */
    virtual void
    queueFrame(const std::uint8_t *data, std::size_t size)
    {
        sendFrame(data, size);
    }

    /** Transmit every queued frame (no-op when nothing is buffered). */
    virtual void flush() {}

    /**
     * Bound every subsequent receive (and blocking send) to `ms`
     * milliseconds. `ms` must be positive; 0 is clamped up to 1ms —
     * POSIX reads a zero timeout as "block forever", the opposite of
     * the immediate bound a caller asking for 0 means — and a negative
     * value is fatal. The default (loopback) has nothing to bound.
     */
    virtual void setRecvTimeout(int ms) { (void)ms; }

    /**
     * True when the last receive or send failure on this channel was a
     * timeout expiry (as opposed to peer death / orderly close).
     */
    virtual bool timedOut() const { return false; }

    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesReceived() const { return bytesReceived_; }

    /** Per-message-type counters for frames handed to sendFrame/queue. */
    const WireTrafficStats &sentStats() const { return sentStats_; }

    /** Per-message-type counters for frames recvFrame() delivered. */
    const WireTrafficStats &receivedStats() const { return receivedStats_; }

  protected:
    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;
    WireTrafficStats sentStats_;
    WireTrafficStats receivedStats_;
};

/**
 * In-process synchronous channel: the coordinator-side endpoint of a
 * worker served by direct function call.
 */
class LoopbackChannel final : public Channel
{
  public:
    /**
     * The served peer: receives one frame, emits any number of reply
     * frames into the sink (which is this channel's inbox).
     */
    using Service = std::function<void(const std::uint8_t *data,
                                       std::size_t size, FrameSink &reply)>;

    explicit LoopbackChannel(Service service);

    void sendFrame(const std::uint8_t *data, std::size_t size) override;
    bool recvFrame(std::vector<std::uint8_t> &frame) override;

  private:
    /** Reply sink: appends into the ring without exposing sendFrame. */
    class Inbox final : public FrameSink
    {
      public:
        explicit Inbox(LoopbackChannel &owner) : owner_(owner) {}
        void sendFrame(const std::uint8_t *data, std::size_t size) override;

      private:
        LoopbackChannel &owner_;
    };

    void push(const std::uint8_t *data, std::size_t size);

    Service service_;
    Inbox inbox_;
    // Ring of reusable frame buffers: grows only when depth exceeds the
    // historical maximum, so steady-state round trips never allocate.
    std::vector<std::vector<std::uint8_t>> ring_;
    std::size_t head_ = 0;  ///< next frame to pop
    std::size_t count_ = 0; ///< frames pending
};

/** A connected stream socket carrying length-prefixed frames. */
class SocketChannel final : public Channel
{
  public:
    /** Adopt a connected socket fd (takes ownership). */
    explicit SocketChannel(int fd);
    ~SocketChannel() override;

    SocketChannel(const SocketChannel &) = delete;
    SocketChannel &operator=(const SocketChannel &) = delete;

    void sendFrame(const std::uint8_t *data, std::size_t size) override;
    bool recvFrame(std::vector<std::uint8_t> &frame) override;

    /** Buffer a frame; flush() sends the whole batch with one send(). */
    void queueFrame(const std::uint8_t *data, std::size_t size) override;
    void flush() override;

    /**
     * Bound every subsequent recvFrame() to `ms` milliseconds
     * (SO_RCVTIMEO); 0 is clamped to 1ms (a zero timeval means "block
     * forever" to the kernel — the opposite of the immediate bound a
     * caller asking for 0 means) and a negative value is fatal. On
     * expiry recvFrame() returns false and timedOut() reports true, so
     * the caller can fail the step with a worker-death diagnosis
     * instead of hanging. Any recv failure (timeout, close, garbage
     * length) is sticky: the stream position is unknown afterwards, so
     * the channel reports broken from then on rather than misparsing
     * payload as framing.
     *
     * Also bounds blocking sends (SO_SNDTIMEO): with multiple frames in
     * flight both peers can be mid-write at once, and if the kernel
     * buffers ever filled up on both sides a write-write deadlock would
     * otherwise hang forever. A send that cannot complete within the
     * bound marks the channel broken — and timedOut() true, so recovery
     * diagnoses a wedged-but-alive peer as a timeout, not peer death —
     * and surfaces on the next receive.
     */
    void setRecvTimeout(int ms) override;

    /**
     * True when the last failure was a timeout expiry — either the last
     * recvFrame() (reset on each receive) or a send that blew
     * SO_SNDTIMEO (sticky, like the broken channel state it implies).
     */
    bool timedOut() const override { return timedOut_ || sendTimedOut_; }

    /** Connect to a Unix-domain socket path; null on failure. */
    static std::unique_ptr<SocketChannel>
    connectUnix(const std::string &path);

    /** Connect to a TCP endpoint (IPv4 dotted quad); null on failure. */
    static std::unique_ptr<SocketChannel> connectTcp(const std::string &host,
                                                     std::uint16_t port);

  private:
    int fd_;
    bool broken_ = false;   ///< peer died mid-send; reads report failure
    bool timedOut_ = false; ///< last recv failure was SO_RCVTIMEO expiry
    bool sendTimedOut_ = false; ///< a send blew SO_SNDTIMEO (sticky)
    std::vector<std::uint8_t> sendBuf_; ///< queued [len][payload] frames
};

/** Default shm ring slot capacity when no config is available to size it. */
constexpr std::size_t kShmDefaultSlotBytes = std::size_t{1} << 20;

/** Frame slots per shm ring direction (the in-flight window bound). */
constexpr std::size_t kShmDefaultSlots = 8;

/**
 * Slot capacity (bytes) that fits every frame the protocol can produce
 * for this shard shape: the checkpoint/restore snapshot of all hosted
 * (lane, tile) memory state is the largest, followed by lane-batched
 * replies with weightings and the scatter broadcast. Rounded up to a
 * page and capped at kWireMaxFrameBytes (a frame too big for a slot is
 * too big for the socket transports as well).
 */
std::size_t shmSlotBytesFor(const DncConfig &shard, Index hostedTiles,
                            Index lanes = 1);

/**
 * Same-host zero-copy channel: a pair of single-producer /
 * single-consumer frame-slot rings in one shared-memory region.
 *
 * Layout (one shm_open() + mmap() region, offsets fixed at create()):
 * a header carrying the geometry and liveness flags, then one ring per
 * direction — head/tail frame counters on their own cache lines, futex
 * words for data/space signalling, and `slotCount` fixed-stride slots
 * of [u64 length][payload]. The payload bytes are the ordinary wire
 * encoding, so receivers decode exactly as they would a socket frame
 * (fail-closed on anything malformed) — the transport removes copies,
 * not validation.
 *
 * Zero-copy contract:
 *   - send side: beginFrame() waits for a free slot and returns a
 *     WireWriter attached to it; the encoder's bytes land directly in
 *     shared memory and endFrame() publishes them with a release store
 *     of the ring head (plus a futex wake when the peer sleeps).
 *   - recv side: recvFrameView() borrows the slot in place; the slot is
 *     returned (tail advance + space wake) on the next receive, so a
 *     decoder may read Real arrays straight out of the mapping.
 *   - sendFrame()/recvFrame() remain available as the copying forms for
 *     pre-encoded frames (recovery replay) and copy-out callers.
 *
 * Waits spin briefly before sleeping on the futex (the peer is
 * typically mid-encode for only microseconds), and every sleep is
 * bounded by setRecvTimeout() so a dead peer surfaces as a timeout or,
 * when it closed its end, as an orderly close once the ring drains.
 *
 * Rendezvous: create() builds and owns the named region (refusing to
 * displace an existing name, O_EXCL); attach() polls for the name,
 * validates the geometry, and claims the worker end with a CAS so a
 * second attacher fails instead of corrupting SPSC ownership. The
 * creator unlinks the name as soon as a peer has attached (the mapping
 * keeps the region alive), so crashed runs leave nothing behind except
 * a name the next create() refuses — callers pick fresh names per
 * worker incarnation, which is also what makes recovery work: a
 * respawned worker maps a fresh ring and the coordinator replays into
 * it.
 */
class ShmChannel final : public Channel
{
  public:
    ~ShmChannel() override;

    ShmChannel(const ShmChannel &) = delete;
    ShmChannel &operator=(const ShmChannel &) = delete;

    void sendFrame(const std::uint8_t *data, std::size_t size) override;
    bool recvFrame(std::vector<std::uint8_t> &frame) override;
    bool recvFrameView(const std::uint8_t *&data, std::size_t &size,
                       std::vector<std::uint8_t> &scratch) override;
    WireWriter *beginFrame() override;
    void endFrame() override;
    void setRecvTimeout(int ms) override;
    bool timedOut() const override { return timedOut_; }

    /**
     * Create and own a named region (`name` must start with '/'), sized
     * for `slotCount` slots of `slotBytes` per direction. Null when the
     * name already exists (a live region is never displaced) or the
     * region cannot be built. The creator end is usable immediately —
     * frames queue in the ring until a peer attaches.
     */
    static std::unique_ptr<ShmChannel>
    create(const std::string &name, std::size_t slotBytes,
           std::size_t slotCount = kShmDefaultSlots);

    /**
     * Attach to a created region, polling up to `timeoutMs` for the
     * name to appear and initialize. Null on timeout, on geometry /
     * version mismatch, or when another peer already claimed the
     * attached end.
     */
    static std::unique_ptr<ShmChannel> attach(const std::string &name,
                                              int timeoutMs);

    const std::string &name() const { return name_; }
    std::size_t slotBytes() const { return slotBytes_; }
    std::size_t slotCount() const { return slotCount_; }

    /**
     * The raw mapped region. Only for tests, which corrupt ring
     * metadata and slot framing through it to prove the receive path
     * fails closed; not part of the transport surface.
     */
    std::uint8_t *rawRegionForTest() { return base_; }
    std::size_t regionBytesForTest() const { return regionBytes_; }

  private:
    ShmChannel(std::uint8_t *base, std::size_t regionBytes, int role,
               bool creator, std::string name);

    /** Wait until the recv ring holds a frame (spin, then futex). */
    bool waitForFrame();
    /** Wait until the send ring has a free slot (spin, then futex). */
    bool waitForSpace();
    /** Return the slot borrowed by the previous recvFrameView(). */
    void releaseBorrowedSlot();
    /** Stamp the length prefix and release-publish the head slot. */
    void publish(std::size_t payloadBytes);
    /** Mark this end closed and wake any sleeping peer. */
    void markClosed();
    /** Creator side: unlink the name once a peer has attached. */
    void maybeUnlink();

    std::uint8_t *base_ = nullptr;
    std::size_t regionBytes_ = 0;
    int role_ = 0; ///< 0 = creator (coordinator end), 1 = attached end
    bool creator_ = false;
    bool unlinked_ = false;
    std::string name_;
    std::size_t slotBytes_ = 0;
    std::size_t slotCount_ = 0;
    int recvTimeoutMs_ = 0; ///< 0 = unbounded (worker side idles freely)
    bool broken_ = false;   ///< fail-closed: all later I/O reports failure
    bool timedOut_ = false; ///< last failure was a bounded-wait expiry
    bool borrowed_ = false; ///< recv slot on loan until the next receive
    bool inPlaceOpen_ = false;    ///< between beginFrame and endFrame
    bool inPlaceDropped_ = false; ///< in-place frame targets discard_
    WireWriter slotWriter_; ///< attached to the send slot by beginFrame()
    std::vector<std::uint8_t> discard_; ///< beginFrame target when broken
};

/**
 * Recoverable diagnosis of a coordinator-side receive failure: names
 * the worker and distinguishes a recv-timeout expiry (dead or wedged
 * worker) from a closed channel. The recovery path acts on this status
 * (respawn + restore + replay) instead of dying; shardRecvFailure() is
 * the fatal form kept for fail-hard deployments and no-recovery
 * configurations.
 */
struct ShardError
{
    enum class Kind
    {
        RecvTimeout,   ///< SO_RCVTIMEO expired: dead or wedged worker
        ChannelClosed, ///< orderly close / broken stream / empty loopback
    };

    Kind kind = Kind::ChannelClosed;
    Index worker = 0;
    std::uint64_t seq = 0;
    const char *what = "step"; ///< protocol unit being gathered

    /** The human-readable diagnosis shardRecvFailure() would print. */
    std::string describe() const;
};

/** Classify a receive failure without dying (the recovery path). */
ShardError shardRecvError(const Channel &channel, const char *what,
                          std::uint64_t seq, Index worker);

/**
 * Replacement-channel factory installed by the cluster harness: spawn
 * (or accept) a fresh worker process for slot `worker` and return a
 * connected channel to it, or null when no replacement can be produced
 * (which makes the loss fatal after all). The returned worker must be
 * unconfigured — the coordinator drives the Rejoin/Restore/replay
 * sequence itself.
 */
using ShardRespawnFn = std::function<std::unique_ptr<Channel>(Index worker)>;

/**
 * Fatal form of shardRecvError(): prints the same diagnosis and dies.
 * Used when no recovery is configured (no respawner, checkpointing
 * off) or when the caller explicitly asked to fail hard.
 */
[[noreturn]] void shardRecvFailure(const Channel &channel, const char *what,
                                   std::uint64_t seq, Index worker);

/** Bound+listening server socket that accepts SocketChannels. */
class SocketListener
{
  public:
    ~SocketListener();

    SocketListener(const SocketListener &) = delete;
    SocketListener &operator=(const SocketListener &) = delete;

    /**
     * Listen on a Unix-domain path; null on error. A stale socket file
     * left by a crashed worker is unlinked, but only after a probe
     * connect proves nobody is accepting on it — a second listener on a
     * live path fails instead of silently stealing the first one's
     * socket out from under its clients.
     */
    static std::unique_ptr<SocketListener>
    listenUnix(const std::string &path);

    /** Listen on 127.0.0.1:port (0 = ephemeral); null on error. */
    static std::unique_ptr<SocketListener> listenTcp(std::uint16_t port);

    /** Block until one peer connects; null on error. */
    std::unique_ptr<SocketChannel> accept();

    /**
     * Accept with a bounded wait: null when no peer connects within
     * `ms` milliseconds (EINTR-safe — signal interruptions re-wait with
     * the remaining budget). Bounds the coordinator's respawn/rejoin
     * wait so a replacement worker that never comes back surfaces as a
     * recovery failure instead of a hang.
     */
    std::unique_ptr<SocketChannel> acceptWithTimeout(int ms);

    /** Actual bound TCP port (after port-0 resolution); 0 for Unix. */
    std::uint16_t port() const { return port_; }

    const std::string &path() const { return path_; }

  private:
    SocketListener(int fd, std::uint16_t port, std::string path)
        : fd_(fd), port_(port), path_(std::move(path))
    {}

    int fd_;
    std::uint16_t port_;
    std::string path_; ///< unlinked on destruction (Unix only)
};

} // namespace hima

#endif // HIMA_SHARD_TRANSPORT_H
