/**
 * @file
 * Transport abstraction for the sharded DNC-D wire protocol: how framed
 * messages move between the coordinator and its tile workers.
 *
 * Two implementations cover the deployment spectrum:
 *
 *   - LoopbackChannel: in-process, synchronous. sendFrame() delivers the
 *     frame straight into a registered service (the worker's frame
 *     handler); the service's replies land in a reusable inbox ring that
 *     recvFrame() pops. Fully deterministic, no threads, no kernel —
 *     this is the test and golden-harness transport, and it still
 *     serializes every byte through the same codec the sockets use, so
 *     "bit-identical over loopback" implies "bit-identical over TCP".
 *
 *   - SocketChannel: a connected stream socket (Unix-domain or TCP,
 *     TCP_NODELAY on both ends), with [u32 length]-framed payloads,
 *     full-write/full-read loops and EINTR handling. SocketListener
 *     binds/accepts (TCP port 0 picks an ephemeral port, so tests never
 *     collide). setRecvTimeout() bounds every recvFrame() so a dead or
 *     wedged peer surfaces as a step error instead of hanging the
 *     coordinator forever.
 *
 * Channels support multiple outstanding frames: sendFrame()/queueFrame()
 * never wait for a reply, so a pipelined coordinator can keep a window
 * of step frames in flight per channel. queueFrame() + flush() is the
 * batched form — SocketChannel coalesces queued frames into a single
 * send() (writev-style: one syscall flushes the whole window),
 * LoopbackChannel services frames immediately in queue order, keeping
 * in-process runs deterministic.
 *
 * Channels count frames and bytes per message type in both directions
 * (WireTrafficStats); bench_shard and shard_demo report wire cost per
 * step from these counters.
 */

#ifndef HIMA_SHARD_TRANSPORT_H
#define HIMA_SHARD_TRANSPORT_H

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "shard/wire.h"

namespace hima {

/**
 * Per-message-type frame/byte counters for one direction of a channel.
 * Indexed by the raw MsgType value; slot 0 aggregates frames whose
 * header did not parse (never expected in a healthy deployment).
 * Byte counts are payload bytes (framing overhead excluded).
 */
struct WireTrafficStats
{
    std::array<std::uint64_t, kMsgTypeCount> frames{};
    std::array<std::uint64_t, kMsgTypeCount> bytes{};

    void
    note(const std::uint8_t *data, std::size_t size)
    {
        MsgType type;
        const std::size_t slot =
            peekType(data, size, type) ? static_cast<std::size_t>(type) : 0;
        ++frames[slot];
        bytes[slot] += size;
    }

    std::uint64_t
    totalFrames() const
    {
        std::uint64_t sum = 0;
        for (std::uint64_t f : frames)
            sum += f;
        return sum;
    }
};

/** Anything that accepts outbound frames (channels, loopback inboxes). */
class FrameSink
{
  public:
    virtual ~FrameSink() = default;

    /** Queue/transmit one framed payload. */
    virtual void sendFrame(const std::uint8_t *data, std::size_t size) = 0;
};

/** A bidirectional framed message channel. */
class Channel : public FrameSink
{
  public:
    /**
     * Receive the next frame into `frame` (resized in place; capacity is
     * reused, so a steady-state receive allocates nothing).
     *
     * @return false on orderly close / nothing pending (loopback) /
     *         recv-timeout expiry, or on a malformed length prefix
     */
    virtual bool recvFrame(std::vector<std::uint8_t> &frame) = 0;

    /**
     * Queue one frame for a later flush(). The default transmits
     * immediately (loopback service order stays deterministic);
     * SocketChannel buffers so a flush() moves the whole batch in one
     * syscall.
     */
    virtual void
    queueFrame(const std::uint8_t *data, std::size_t size)
    {
        sendFrame(data, size);
    }

    /** Transmit every queued frame (no-op when nothing is buffered). */
    virtual void flush() {}

    std::uint64_t bytesSent() const { return bytesSent_; }
    std::uint64_t bytesReceived() const { return bytesReceived_; }

    /** Per-message-type counters for frames handed to sendFrame/queue. */
    const WireTrafficStats &sentStats() const { return sentStats_; }

    /** Per-message-type counters for frames recvFrame() delivered. */
    const WireTrafficStats &receivedStats() const { return receivedStats_; }

  protected:
    std::uint64_t bytesSent_ = 0;
    std::uint64_t bytesReceived_ = 0;
    WireTrafficStats sentStats_;
    WireTrafficStats receivedStats_;
};

/**
 * In-process synchronous channel: the coordinator-side endpoint of a
 * worker served by direct function call.
 */
class LoopbackChannel final : public Channel
{
  public:
    /**
     * The served peer: receives one frame, emits any number of reply
     * frames into the sink (which is this channel's inbox).
     */
    using Service = std::function<void(const std::uint8_t *data,
                                       std::size_t size, FrameSink &reply)>;

    explicit LoopbackChannel(Service service);

    void sendFrame(const std::uint8_t *data, std::size_t size) override;
    bool recvFrame(std::vector<std::uint8_t> &frame) override;

  private:
    /** Reply sink: appends into the ring without exposing sendFrame. */
    class Inbox final : public FrameSink
    {
      public:
        explicit Inbox(LoopbackChannel &owner) : owner_(owner) {}
        void sendFrame(const std::uint8_t *data, std::size_t size) override;

      private:
        LoopbackChannel &owner_;
    };

    void push(const std::uint8_t *data, std::size_t size);

    Service service_;
    Inbox inbox_;
    // Ring of reusable frame buffers: grows only when depth exceeds the
    // historical maximum, so steady-state round trips never allocate.
    std::vector<std::vector<std::uint8_t>> ring_;
    std::size_t head_ = 0;  ///< next frame to pop
    std::size_t count_ = 0; ///< frames pending
};

/** A connected stream socket carrying length-prefixed frames. */
class SocketChannel final : public Channel
{
  public:
    /** Adopt a connected socket fd (takes ownership). */
    explicit SocketChannel(int fd);
    ~SocketChannel() override;

    SocketChannel(const SocketChannel &) = delete;
    SocketChannel &operator=(const SocketChannel &) = delete;

    void sendFrame(const std::uint8_t *data, std::size_t size) override;
    bool recvFrame(std::vector<std::uint8_t> &frame) override;

    /** Buffer a frame; flush() sends the whole batch with one send(). */
    void queueFrame(const std::uint8_t *data, std::size_t size) override;
    void flush() override;

    /**
     * Bound every subsequent recvFrame() to `ms` milliseconds
     * (SO_RCVTIMEO); 0 restores blocking forever. On expiry recvFrame()
     * returns false and timedOut() reports true, so the caller can fail
     * the step with a worker-death diagnosis instead of hanging. Any
     * recv failure (timeout, close, garbage length) is sticky: the
     * stream position is unknown afterwards, so the channel reports
     * broken from then on rather than misparsing payload as framing.
     *
     * Also bounds blocking sends (SO_SNDTIMEO): with multiple frames in
     * flight both peers can be mid-write at once, and if the kernel
     * buffers ever filled up on both sides a write-write deadlock would
     * otherwise hang forever. A send that cannot complete within the
     * bound marks the channel broken and surfaces on the next receive.
     */
    void setRecvTimeout(int ms);

    /** True when the last recvFrame() failure was a timeout expiry. */
    bool timedOut() const { return timedOut_; }

    /** Connect to a Unix-domain socket path; null on failure. */
    static std::unique_ptr<SocketChannel>
    connectUnix(const std::string &path);

    /** Connect to a TCP endpoint (IPv4 dotted quad); null on failure. */
    static std::unique_ptr<SocketChannel> connectTcp(const std::string &host,
                                                     std::uint16_t port);

  private:
    int fd_;
    bool broken_ = false;   ///< peer died mid-send; reads report failure
    bool timedOut_ = false; ///< last recv failure was SO_RCVTIMEO expiry
    std::vector<std::uint8_t> sendBuf_; ///< queued [len][payload] frames
};

/**
 * Recoverable diagnosis of a coordinator-side receive failure: names
 * the worker and distinguishes a recv-timeout expiry (dead or wedged
 * worker) from a closed channel. The recovery path acts on this status
 * (respawn + restore + replay) instead of dying; shardRecvFailure() is
 * the fatal form kept for fail-hard deployments and no-recovery
 * configurations.
 */
struct ShardError
{
    enum class Kind
    {
        RecvTimeout,   ///< SO_RCVTIMEO expired: dead or wedged worker
        ChannelClosed, ///< orderly close / broken stream / empty loopback
    };

    Kind kind = Kind::ChannelClosed;
    Index worker = 0;
    std::uint64_t seq = 0;
    const char *what = "step"; ///< protocol unit being gathered

    /** The human-readable diagnosis shardRecvFailure() would print. */
    std::string describe() const;
};

/** Classify a receive failure without dying (the recovery path). */
ShardError shardRecvError(const Channel &channel, const char *what,
                          std::uint64_t seq, Index worker);

/**
 * Replacement-channel factory installed by the cluster harness: spawn
 * (or accept) a fresh worker process for slot `worker` and return a
 * connected channel to it, or null when no replacement can be produced
 * (which makes the loss fatal after all). The returned worker must be
 * unconfigured — the coordinator drives the Rejoin/Restore/replay
 * sequence itself.
 */
using ShardRespawnFn = std::function<std::unique_ptr<Channel>(Index worker)>;

/**
 * Fatal form of shardRecvError(): prints the same diagnosis and dies.
 * Used when no recovery is configured (no respawner, checkpointing
 * off) or when the caller explicitly asked to fail hard.
 */
[[noreturn]] void shardRecvFailure(const Channel &channel, const char *what,
                                   std::uint64_t seq, Index worker);

/** Bound+listening server socket that accepts SocketChannels. */
class SocketListener
{
  public:
    ~SocketListener();

    SocketListener(const SocketListener &) = delete;
    SocketListener &operator=(const SocketListener &) = delete;

    /** Listen on a Unix-domain path (unlinks a stale file); null on error. */
    static std::unique_ptr<SocketListener>
    listenUnix(const std::string &path);

    /** Listen on 127.0.0.1:port (0 = ephemeral); null on error. */
    static std::unique_ptr<SocketListener> listenTcp(std::uint16_t port);

    /** Block until one peer connects; null on error. */
    std::unique_ptr<SocketChannel> accept();

    /**
     * Accept with a bounded wait: null when no peer connects within
     * `ms` milliseconds (EINTR-safe — signal interruptions re-wait with
     * the remaining budget). Bounds the coordinator's respawn/rejoin
     * wait so a replacement worker that never comes back surfaces as a
     * recovery failure instead of a hang.
     */
    std::unique_ptr<SocketChannel> acceptWithTimeout(int ms);

    /** Actual bound TCP port (after port-0 resolution); 0 for Unix. */
    std::uint16_t port() const { return port_; }

    const std::string &path() const { return path_; }

  private:
    SocketListener(int fd, std::uint16_t port, std::string path)
        : fd_(fd), port_(port), path_(std::move(path))
    {}

    int fd_;
    std::uint16_t port_;
    std::string path_; ///< unlinked on destruction (Unix only)
};

} // namespace hima

#endif // HIMA_SHARD_TRANSPORT_H
