/**
 * @file
 * Umbrella public header for the HiMA library.
 *
 * Pull this in to get the functional DNC/NTM/DNC-D models, the hardware
 * sorter models, the NoC simulator, the HiMA accelerator engine and the
 * synthetic workload suite. Individual headers remain includable on
 * their own for faster builds.
 */

#ifndef HIMA_HIMA_H
#define HIMA_HIMA_H

// Substrate
#include "common/logging.h"
#include "common/math_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/tensor.h"

// Approximation / datapath
#include "approx/fixed_point.h"
#include "approx/softmax_approx.h"
#include "approx/usage_skimming.h"

// Hardware sorters
#include "sort/bitonic.h"
#include "sort/centralized_sort.h"
#include "sort/mdsa.h"
#include "sort/merge_sorter.h"
#include "sort/two_stage_sort.h"

// DNC family models
#include "dnc/dnc.h"
#include "dnc/dncd.h"
#include "dnc/ntm.h"

// NoC
#include "noc/network.h"
#include "noc/topology.h"
#include "noc/traffic.h"

// Accelerator model
#include "arch/area_power.h"
#include "arch/baselines.h"
#include "arch/engine.h"
#include "arch/partition.h"

// Workloads
#include "workload/copy_task.h"
#include "workload/encoder.h"
#include "workload/retrieval.h"
#include "workload/task_suite.h"

#endif // HIMA_HIMA_H
