/**
 * @file
 * The HiMA timing and energy engine.
 *
 * One simulateStep() walks the Fig. 2 dataflow kernel by kernel. Each
 * kernel charges:
 *
 *   - compute cycles: its primitive-op counts (the same formulas the
 *     functional model's KernelProfiler measures) divided over the tiles
 *     it runs on and through the M-M engine / SFU / sorter throughput
 *     models;
 *   - NoC cycles: the kernel's real traffic pattern (per the configured
 *     memory partitions) injected into the cycle-level Network simulator.
 *
 * The timestep latency is the sum over the dataflow stages (the Fig. 2
 * graph is a chain at kernel granularity — each kernel consumes the
 * previous kernel's full output). Energy is accumulated per kernel and
 * per module alongside.
 *
 * DNC-D (Sec. 5.1) switches every kernel to its local shard size,
 * eliminates all inter-PT batches and drops the global sort stage.
 */

#ifndef HIMA_ARCH_ENGINE_H
#define HIMA_ARCH_ENGINE_H

#include <array>

#include "arch/area_power.h"
#include "dnc/kernel_profiler.h"
#include "noc/network.h"
#include "noc/traffic.h"
#include "sort/two_stage_sort.h"

namespace hima {

/** Timing + energy of one kernel within a step. */
struct StageTiming
{
    Kernel kernel;
    Cycle computeCycles;
    Cycle nocCycles;
    Real energyJ;

    Cycle total() const { return computeCycles + nocCycles; }
};

/** Result of one simulated DNC timestep. */
struct StepTiming
{
    std::vector<StageTiming> stages;
    Cycle totalCycles = 0;
    ModuleEnergy moduleEnergy{};

    /** Cycles spent in one kernel category. */
    Cycle categoryCycles(KernelCategory cat) const;
    /** Dynamic energy of one kernel category (J). */
    Real categoryEnergy(KernelCategory cat) const;
    Real totalEnergyJ() const;
};

/** Power report for a run (Fig. 11(c)/(d)/(f)). */
struct PowerReport
{
    Real totalW;
    Real dynamicW;
    Real leakageW;
    std::array<Real, static_cast<int>(KernelCategory::NumCategories)>
        categoryW;
    ModuleEnergy modulePower; ///< reused struct, values in watts
};

/** The HiMA machine model. */
class HimaEngine
{
  public:
    explicit HimaEngine(const ArchConfig &config,
                        const TechParams &tech = TechParams{});

    /** Simulate one DNC timestep. Deterministic; no internal state. */
    StepTiming simulateStep();

    /** Latency of one bAbI-style test (stepsPerTest timesteps), in us. */
    Real testLatencyUs();

    /** Power while running steps back to back. */
    PowerReport power();

    /** Area of this configuration. */
    AreaReport area() const { return areaReport(config_, tech_); }

    const ArchConfig &config() const { return config_; }
    const Topology &topology() const { return topology_; }

  private:
    struct OpCounts
    {
        std::uint64_t macs = 0;      ///< per most-loaded tile
        std::uint64_t elems = 0;
        std::uint64_t sfu = 0;
        std::uint64_t extWords = 0;  ///< per tile, external memory
        std::uint64_t stateWords = 0; ///< per tile, small state memories
        std::uint64_t linkWords = 0; ///< per tile, linkage memory
    };

    /** Charge one dataflow stage: compute + optional traffic batch. */
    void runStage(StepTiming &out, Kernel kernel, const OpCounts &perTile,
                  const std::vector<Message> &batch, NocMode mode,
                  bool onControllerTile = false);

    Cycle computeCycles(const OpCounts &perTile, bool onCt) const;
    Real stageEnergy(const OpCounts &perTile, Index activeTiles,
                     std::uint64_t flitHops) const;

    ArchConfig config_;
    TechParams tech_;
    Topology topology_;
    Network network_;
};

} // namespace hima

#endif // HIMA_ARCH_ENGINE_H
