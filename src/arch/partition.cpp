#include "arch/partition.h"

#include <limits>

#include "common/logging.h"

namespace hima {

std::vector<Partition>
enumeratePartitions(Index nt)
{
    HIMA_ASSERT(nt >= 1, "need at least one tile");
    std::vector<Partition> out;
    for (Index w = 1; w <= nt; ++w) {
        if (nt % w == 0)
            out.push_back({nt / w, w});
    }
    return out;
}

std::uint64_t
contentWeightingTraffic(Index n, const Partition &p)
{
    // Normalization: 2N(Nt_w - 1) element transfers (partial row norms
    // exchanged within each block row); similarity: 2(Nt_h - 1) psum
    // round trips to the softmax reducer.
    return 2ull * n * (p.blockCols - 1) + 2ull * (p.blockRows - 1);
}

std::uint64_t
memoryReadTraffic(Index n, Index w, const Partition &p)
{
    // Transpose: Nt_w (Nt_w - 1) N / Nt submatrix elements moved within
    // block rows; mat-vec psums: W (Nt_h - 1) along block columns.
    const Index nt = p.tiles();
    return static_cast<std::uint64_t>(p.blockCols) * (p.blockCols - 1) *
               (n / nt) +
           static_cast<std::uint64_t>(w) * (p.blockRows - 1);
}

Real
forwardBackwardTraffic(Index n, const Partition &p)
{
    (void)n; // the count is in length-N chunk units, independent of N
    const Real nt = static_cast<Real>(p.tiles());
    const Real nh = static_cast<Real>(p.blockRows);
    const Real nw = static_cast<Real>(p.blockCols);
    const Real forward = nh * (nh - 1.0) / nt + nw;
    const Real backward = nw * (nw - 1.0) / nt + nh;
    return forward + backward;
}

Partition
optimizeExternalPartition(Index n, Index w, Index nt, Index readHeads)
{
    Partition best = Partition::rowWise(nt);
    std::uint64_t bestCost = std::numeric_limits<std::uint64_t>::max();
    for (const Partition &p : enumeratePartitions(nt)) {
        // Weight each kernel's cost by how often it runs per step:
        // content weighting once per key (1 write + R reads), memory
        // read once per read head.
        const std::uint64_t cost =
            (1 + readHeads) * contentWeightingTraffic(n, p) +
            readHeads * memoryReadTraffic(n, w, p);
        if (cost < bestCost) {
            bestCost = cost;
            best = p;
        }
    }
    return best;
}

Partition
optimizeLinkagePartition(Index n, Index nt)
{
    Partition best = Partition::rowWise(nt);
    Real bestCost = std::numeric_limits<Real>::max();
    for (const Partition &p : enumeratePartitions(nt)) {
        const Real cost = forwardBackwardTraffic(n, p);
        if (cost < bestCost) {
            bestCost = cost;
            best = p;
        }
    }
    return best;
}

} // namespace hima
